(* Benchmark harness: regenerates every quantitative claim of the paper
   (there are no empirical tables in the original — it is a theory paper —
   so the "tables and figures" are the theorem bounds; see DESIGN.md §4 and
   EXPERIMENTS.md for the paper-vs-measured record).

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only E1    -- one experiment
     dune exec bench/main.exe -- --list       -- list experiments
     dune exec bench/main.exe -- --quick      -- reduced sweeps (CI tier)
     dune exec bench/main.exe -- --huge       -- n up to 2048 for E1/E9/E13 (see below)
     dune exec bench/main.exe -- --giant      -- E7/E8 at n = 10^4..10^6 on Net.Sparse
     dune exec bench/main.exe -- --jobs N     -- N parallel executors ("max" = all cores)
     dune exec bench/main.exe -- --json F     -- also write a JSON report to F
     dune exec bench/main.exe -- --max-wall-s S   -- exit 2 if wall-clock > S
     dune exec bench/main.exe -- --max-rss-mb M   -- exit 2 if peak RSS (VmHWM) > M MB
     dune exec bench/main.exe -- --diff A B   -- regression-diff two reports
     dune exec bench/main.exe -- --audit F    -- re-check a saved report against the
                                                 symbolic cost specs (exit 1 on mismatch)
     dune exec bench/main.exe -- --only cost-audit
                                              -- run every cost spec against one honest
                                                 execution; phase tables + extrapolation
     dune exec bench/main.exe -- --seed S     -- replay seed (threaded into every
                                                 experiment RNG/PKE and recorded in
                                                 each run record's "seed" field)
     dune exec bench/main.exe -- --only soak --seed S --schedules K
                                              -- Byzantine fault-injection sweep
     dune exec bench/main.exe -- --only soak --seed S --schedule K
                                              -- replay one fault schedule verbosely
     dune exec bench/main.exe -- --async      -- event-transport variants: E1/E6/E9
                                                 async rows; with --only soak, the
                                                 sweep runs every case on a derived
                                                 adversarially-scheduled transport

   Communication complexity is measured per the paper's definition (§3.1):
   bits sent by all parties in an honest execution.

   Execution model: every experiment describes its metered work as an
   array of independent, seed-deterministic jobs and maps it through
   [Util.Pool.map_jobs], which preserves array order regardless of
   scheduling.  Each job builds its own network, RNG, and PKE instance and
   returns its [Analysis.Bench_io.run] records; tables, fits, and the JSON
   report are assembled from the result arrays on the main domain, so the
   output is byte-identical at any --jobs value (wall-clock aside).

   The --huge tier flips the parallelism inside-out: instead of many small
   sweep points fanned across the pool, it runs few very large points
   (n up to 2048) sequentially and hands the pool to the protocol itself,
   which shards each communication round across domains via
   [Netsim.Net.run_round].  Delivery and accounting are bit-identical at
   any --jobs value there too (that is the run_round contract, enforced by
   test/test_net_parallel.ml), so --diff between a --jobs 1 and a
   --jobs max huge report must show zero drift.  --huge selects only
   E1/E9/E13 by default; --huge --quick is the n = 512 smoke tier CI
   uses.  The cubic baselines (E9 naive, E13 GMW) are capped — the cap is
   printed, and is itself the point: past it only the paper's protocols
   are feasible. *)

let fmt_bits = Analysis.Table.fmt_bits

(* --quick shrinks the sweep lists so the whole suite fits a CI budget;
   [pick] selects per-experiment.  [quick] is set once at startup, before
   any job runs, so reading it from worker domains is race-free. *)
let quick = ref false
let pick ~full ~reduced = if !quick then reduced else full

(* --huge: few very large sweep points, parallelized inside each run via
   [Netsim.Net.run_round] instead of across runs.  Set once at startup. *)
let huge = ref false

(* --giant: the streaming-backend tier — E7/E8 at n = 10⁴, 10⁵ and a 10⁶
   smoke, on [Netsim.Net.Sparse] so memory is O(activity), not O(n²).
   --giant --quick is the n = 10⁴ CI smoke.  Set once at startup. *)
let giant = ref false

(* The worker pool behind [par_map]; [None] (--jobs 1) is the pure
   sequential path with zero pool overhead. *)
let pool : Util.Pool.t option ref = ref None

let par_map arr f =
  match !pool with None -> Array.map f arr | Some p -> Util.Pool.map_jobs p arr f

let par_list xs f = Array.to_list (par_map (Array.of_list xs) f)

(* --seed S: replay seed.  Every experiment's internal seed constant [k]
   is remapped through [seed_of] (identity when no --seed was given, so
   default reports stay byte-identical), threaded into RNG and simulated
   PKE construction, and recorded in each run record's optional [seed]
   field.  Set once at startup, before any job runs. *)
let base_seed : int option ref = ref None
let seed_of k = match !base_seed with None -> k | Some s -> (s * 0x3779F1) lxor k
let prng k = Util.Prng.create (seed_of k)

(* ---- symbolic cost predictions (Analysis.Costs) ----

   Every metered run evaluates its protocol's cost spec at the run's
   parameters (plus the structural observables the protocol recorded into
   an [Obs.t]) and asserts the measured counters against it: bits within
   the spec's declared-slack interval, messages and rounds exact.  A
   mismatch prints the spec's verdict and flips [cost_mismatch], which
   fails the whole bench invocation with exit 1 — the closed forms are
   part of the repo's correctness contract, not decoration.  The totals
   ride along in the run record's [predicted_*] fields so --diff can gate
   on formula drift independently of measurement drift. *)
let cost_mismatch = ref false

(* [checked_totals ~env ~spec net] — evaluate, assert against [net]'s
   counters, return the totals.  Only ever sets [cost_mismatch] to true,
   so concurrent jobs may share the flag without a lock. *)
let checked_totals ~env ~spec net =
  let totals = Analysis.Costs.totals env spec in
  let v =
    Analysis.Costs.check ~locality:(Netsim.Net.max_locality net) env spec
      ~bits:(Netsim.Net.total_bits net) ~messages:(Netsim.Net.messages_sent net)
      ~rounds:(Netsim.Net.rounds net)
  in
  if not v.Analysis.Costs.ok then begin
    cost_mismatch := true;
    Printf.eprintf "COST MISMATCH [%s]:\n" spec.Analysis.Costs.name;
    List.iter (Printf.eprintf "  %s\n") v.Analysis.Costs.detail
  end;
  totals

let zero_totals =
  { Analysis.Costs.bits_hi = 0; bits_lo = 0; messages = 0; rounds = 0 }

(* Trial-summed experiments (E6/E7) accumulate one prediction per trial
   into the aggregated record. *)
let add_totals a b =
  {
    Analysis.Costs.bits_hi = a.Analysis.Costs.bits_hi + b.Analysis.Costs.bits_hi;
    bits_lo = a.Analysis.Costs.bits_lo + b.Analysis.Costs.bits_lo;
    messages = a.Analysis.Costs.messages + b.Analysis.Costs.messages;
    rounds = a.Analysis.Costs.rounds + b.Analysis.Costs.rounds;
  }

let run_of_net ?predicted ~experiment ~series ~n ~h ~wall_ms net =
  {
    Analysis.Bench_io.experiment;
    series;
    n;
    h;
    bits = Netsim.Net.total_bits net;
    messages = Netsim.Net.messages_sent net;
    rounds = Netsim.Net.rounds net;
    wall_ms;
    seed = !base_seed;
    peak_rss_mb = Analysis.Bench_io.peak_rss_mb ();
    predicted_bits = Option.map (fun t -> t.Analysis.Costs.bits_hi) predicted;
    predicted_bits_lo = Option.map (fun t -> t.Analysis.Costs.bits_lo) predicted;
    predicted_messages = Option.map (fun t -> t.Analysis.Costs.messages) predicted;
    predicted_rounds = Option.map (fun t -> t.Analysis.Costs.rounds) predicted;
  }

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, 1000.0 *. (Unix.gettimeofday () -. t0))

let sim_pke seed =
  Crypto.Pke.make_simulated ~lwe_params:Crypto.Pke.bench_lwe_params ~seed:(seed_of seed) ()

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let fit_line label ms =
  let f, j = Analysis.Complexity.fit_with_polylog ms in
  Printf.printf "%s: fitted exponent %.2f (x polylog^%d, r2=%.3f)\n" label
    f.Analysis.Complexity.exponent j f.Analysis.Complexity.r2;
  f

let bits_measure ~x (r : Analysis.Bench_io.run) =
  { Analysis.Complexity.x = float_of_int x; value = float_of_int r.Analysis.Bench_io.bits }

(* ---- --async: event-transport variants ----

   Under --async, E1/E6/E9 re-run representative rows on the
   adversarially-scheduled event transport (Netsim.Event_net) at a fixed
   config, and the soak sweep switches to per-case random configs.
   Accounting is metered at send time, so async bits and messages are
   asserted against the same closed forms as the sync rows; measured
   rounds depend on the delivery schedule, so the sync closed form is
   printed as an informational delta instead, and the async records
   carry no rounds prediction (--audit skips them; --diff matches them
   only against other async reports via the distinct series suffix). *)
let async_mode = ref false

let async_cfg =
  {
    Netsim.Event_net.latency = Netsim.Event_net.Uniform (1, 3);
    horizon = 1;
    scheduler = Netsim.Event_net.Adversarial { hold = 0.25 };
  }

(* Protocol deadline = the transport's fairness span: every in-flight
   message lands within [span] ticks of submission, so honest async runs
   lose nothing and still produce outputs, not aborts. *)
let async_deadline = Netsim.Event_net.span async_cfg

let async_net ~seed n =
  let rng = Util.Prng.derive (prng seed) ~key:0xA5ED in
  Netsim.Net.create ~transport:(Netsim.Event_net.transport ~rng async_cfg) n

(* The async counterpart of [checked_totals]: bits within slack and
   messages exact, rounds deliberately unchecked. *)
let async_checked_totals ~env ~spec net =
  let totals = Analysis.Costs.totals env spec in
  let bits = Netsim.Net.total_bits net in
  let messages = Netsim.Net.messages_sent net in
  if
    bits < totals.Analysis.Costs.bits_lo
    || bits > totals.Analysis.Costs.bits_hi
    || messages <> totals.Analysis.Costs.messages
  then begin
    cost_mismatch := true;
    Printf.eprintf
      "COST MISMATCH [%s, async]: bits %d (predicted [%d, %d]), messages %d (predicted %d)\n"
      spec.Analysis.Costs.name bits totals.Analysis.Costs.bits_lo
      totals.Analysis.Costs.bits_hi messages totals.Analysis.Costs.messages
  end;
  totals

let async_run_of_net ~predicted ~experiment ~series ~n ~h ~wall_ms net =
  {
    (run_of_net ~predicted ~experiment ~series ~n ~h ~wall_ms net) with
    Analysis.Bench_io.predicted_rounds = None;
  }

(* Rows paired with their sync closed-form round counts. *)
let async_rounds_table rows =
  let t =
    Analysis.Table.create
      ~title:
        (Printf.sprintf "async rounds-to-completion vs sync closed form (%s)"
           (Netsim.Event_net.config_to_string async_cfg))
      ~columns:[ "series"; "n"; "rounds"; "sync form"; "delta" ]
  in
  List.iter
    (fun ((r : Analysis.Bench_io.run), sync_rounds) ->
      Analysis.Table.add_row t
        [ r.series; string_of_int r.n; string_of_int r.rounds; string_of_int sync_rounds;
          Printf.sprintf "%+d" (r.rounds - sync_rounds) ])
    rows;
  Analysis.Table.print t

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 1: Algorithm 3 communication Õ(n²/h)                   *)
(* ------------------------------------------------------------------ *)

(* Cost spec of one honest Algorithm 3 run, evaluated against [net]'s
   counters via the observables recorded into [obs]. *)
let alg3_totals ?(async = false) ~pke ~circuit ~input_width ~n ~obs net =
  let open Analysis.Costs in
  let spec =
    Mpc.Mpc_abort.cost_spec ~pke
      ~depth:(Const (Circuit.depth circuit))
      ~input_width:(Const input_width)
      ~out_bits:(Const (Circuit.num_outputs circuit))
      ~n:(Const n) ~lambda:(Const 8)
  in
  (if async then async_checked_totals else checked_totals) ~env:(env ~obs []) ~spec net

let run_alg3 ?pool ?(async = false) ~n ~h ~seed () =
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
  let pke = sim_pke seed in
  let circuit = Circuit.parity ~n in
  let config = { Mpc.Mpc_abort.params; pke; circuit; input_width = 1 } in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> i land 1) in
  let net = if async then async_net ~seed n else Netsim.Net.create n in
  let deadline = if async then async_deadline else 1 in
  let rng = prng seed in
  let obs = Analysis.Costs.Obs.create () in
  let outs =
    Mpc.Mpc_abort.run ?pool ~deadline ~obs net rng config ~corruption ~inputs
      ~adv:Mpc.Mpc_abort.honest_adv
  in
  assert (Array.for_all Mpc.Outcome.is_output outs);
  (net, alg3_totals ~async ~pke ~circuit ~input_width:1 ~n ~obs net)

(* The --async E1 rows: same protocol and seeds as the h = n/4 sweep, on
   the adversarial event transport with the phase deadline at the
   transport's span. *)
let e1_async () =
  section "E1  (--async) Algorithm 3 on the adversarial event transport";
  let rows =
    par_list
      (pick ~full:[ 64; 128; 256 ] ~reduced:[ 64; 128 ])
      (fun n ->
        let h = n / 4 in
        let (net, predicted), wall_ms = timed (run_alg3 ~async:true ~n ~h ~seed:n) in
        ( async_run_of_net ~predicted ~experiment:"E1" ~series:"n-sweep h=n/4 (async)" ~n ~h
            ~wall_ms net,
          predicted.Analysis.Costs.rounds ))
  in
  async_rounds_table rows;
  List.map fst rows

(* One huge-tier E1 row, shared verbatim by [e1_huge] and the dist job
   fleet ("bench.e1") — byte-identity of the records at any --workers
   count is by construction. *)
let e1_row ?pool n =
  let h = n / 4 in
  let (net, predicted), wall_ms = timed (run_alg3 ?pool ~n ~h ~seed:n) in
  run_of_net ~predicted ~experiment:"E1" ~series:"n-sweep h=n/4" ~n ~h ~wall_ms net

let e1_huge () =
  section "E1  (huge tier) Algorithm 3 at n up to 2048";
  Printf.printf
    "same protocol, series, and seeds as the full tier's h = n/4 sweep,\n\
     pushed to n = 2048; each run shards its rounds across the --jobs pool\n\
     via Net.run_round, so records are bit-identical at any --jobs value.\n\n";
  let rows = List.map (e1_row ?pool:!pool) (pick ~full:[ 512; 1024; 2048 ] ~reduced:[ 512 ]) in
  let t =
    Analysis.Table.create ~title:"sweep n at fixed ratio h = n/4 (n^2/h = 4n: expect ~linear)"
      ~columns:[ "n"; "h"; "bits"; "bits*h/n^2"; "wall ms" ]
  in
  List.iter
    (fun (r : Analysis.Bench_io.run) ->
      Analysis.Table.add_row t
        [ string_of_int r.n; string_of_int r.h; fmt_bits r.bits;
          Printf.sprintf "%.0f"
            (float_of_int r.bits *. float_of_int r.h /. float_of_int (r.n * r.n));
          Printf.sprintf "%.0f" r.wall_ms ])
    rows;
  Analysis.Table.print t;
  rows

let e1 () =
  if !huge then e1_huge ()
  else begin
  section "E1  Theorem 1: Algorithm 3 uses O~(n^2/h) bits";
  Printf.printf "paper: total communication O(n^2 h^-1 poly(lambda, D, log n))\n\n";
  let r1 =
    par_list
      (pick ~full:[ 64; 128; 256; 384; 512 ] ~reduced:[ 64; 128; 256 ])
      (fun n ->
        let h = n / 4 in
        let (net, predicted), wall_ms = timed (run_alg3 ~n ~h ~seed:n) in
        run_of_net ~predicted ~experiment:"E1" ~series:"n-sweep h=n/4" ~n ~h ~wall_ms net)
  in
  let t = Analysis.Table.create ~title:"sweep n at fixed ratio h = n/4 (n^2/h = 4n: expect ~linear)" ~columns:[ "n"; "h"; "bits"; "bits*h/n^2" ] in
  let ms_n =
    List.map
      (fun (r : Analysis.Bench_io.run) ->
        Analysis.Table.add_row t
          [ string_of_int r.n; string_of_int r.h; fmt_bits r.bits;
            Printf.sprintf "%.0f"
              (float_of_int r.bits *. float_of_int r.h /. float_of_int (r.n * r.n)) ];
        bits_measure ~x:r.n r)
      r1
  in
  Analysis.Table.print t;
  ignore (fit_line "exponent in n at fixed h/n (paper: n^2/h = 4n here, so ~1)" ms_n);
  print_newline ();
  let r2 =
    par_list
      (pick ~full:[ 48; 96; 192; 288 ] ~reduced:[ 48; 96; 192 ])
      (fun n ->
        let (net, predicted), wall_ms = timed (run_alg3 ~n ~h:12 ~seed:(4000 + n)) in
        run_of_net ~predicted ~experiment:"E1" ~series:"n-sweep h=12" ~n ~h:12 ~wall_ms net)
  in
  let tf = Analysis.Table.create ~title:"sweep n at fixed h = 12 (expect ~n^2 polylog)" ~columns:[ "n"; "bits" ] in
  let ms_f =
    List.map
      (fun (r : Analysis.Bench_io.run) ->
        Analysis.Table.add_row tf [ string_of_int r.n; fmt_bits r.bits ];
        bits_measure ~x:r.n r)
      r2
  in
  Analysis.Table.print tf;
  ignore (fit_line "exponent in n at fixed h (paper: ~2)" ms_f);
  print_newline ();
  let r3 =
    par_list
      (pick ~full:[ 16; 32; 64; 128; 224 ] ~reduced:[ 32; 64; 128 ])
      (fun h ->
        let (net, predicted), wall_ms = timed (run_alg3 ~n:256 ~h ~seed:(1000 + h)) in
        run_of_net ~predicted ~experiment:"E1" ~series:"h-sweep n=256" ~n:256 ~h ~wall_ms net)
  in
  let t2 = Analysis.Table.create ~title:"sweep h (n = 256)" ~columns:[ "h"; "bits"; "bits*h" ] in
  let ms_h =
    List.map
      (fun (r : Analysis.Bench_io.run) ->
        Analysis.Table.add_row t2
          [ string_of_int r.h; fmt_bits r.bits; fmt_bits (r.bits * r.h) ];
        bits_measure ~x:r.h r)
      r3
  in
  Analysis.Table.print t2;
  ignore (fit_line "exponent in h at fixed n (paper: ~-1; the committee-internal |C|^2 terms push toward -2 until h >> log^2 n)" ms_h);
  r1 @ r2 @ r3 @ (if !async_mode then e1_async () else [])
  end

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 2: gossip MPC, Õ(n³/h) bits, locality Õ(n/h)           *)
(* ------------------------------------------------------------------ *)

let run_thm2 ~n ~h ~seed =
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
  let circuit = Circuit.parity ~n in
  let config = { Mpc.Local_mpc.params; pke = sim_pke seed; circuit; input_width = 1 } in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> i land 1) in
  let net = Netsim.Net.create n in
  let rng = prng seed in
  let obs = Analysis.Costs.Obs.create () in
  let outs =
    Mpc.Local_mpc.run_theorem2 ?pool:!pool ~obs net rng config ~corruption ~inputs
      ~adv:Mpc.Local_mpc.honest_theorem2_adv
  in
  assert (Array.for_all Mpc.Outcome.is_output outs);
  let predicted =
    let open Analysis.Costs in
    let spec =
      Mpc.Local_mpc.cost_spec_theorem2 ~n:(Const n) ~h:(Const h) ~lambda:(Const 8)
        ~alpha:(Const 2)
        ~depth:(Const (Circuit.depth circuit))
        ~input_width:(Const 1)
        ~out_bits:(Const (Circuit.num_outputs circuit))
    in
    checked_totals ~env:(env ~obs []) ~spec net
  in
  (net, predicted)

let e2 () =
  section "E2  Theorem 2: gossip MPC uses O~(n^3/h) bits with locality O~(n/h)";
  Printf.printf "paper: O(n^3 h^-1 poly) bits, locality O(lambda n h^-1 log n)\n\n";
  let r1 =
    par_list
      (pick ~full:[ 32; 64; 96; 128 ] ~reduced:[ 32; 64; 96 ])
      (fun n ->
        let h = n / 4 in
        let (net, predicted), wall_ms = timed (fun () -> run_thm2 ~n ~h ~seed:n) in
        (run_of_net ~predicted ~experiment:"E2" ~series:"n-sweep h=n/4" ~n ~h ~wall_ms net,
         Netsim.Net.max_locality net))
  in
  let t =
    Analysis.Table.create ~title:"sweep n (h = n/4)"
      ~columns:[ "n"; "h"; "bits"; "locality"; "(n/h)*ln n" ]
  in
  let ms =
    List.map
      (fun ((r : Analysis.Bench_io.run), loc) ->
        Analysis.Table.add_row t
          [ string_of_int r.n; string_of_int r.h; fmt_bits r.bits; string_of_int loc;
            Printf.sprintf "%.0f"
              (float_of_int r.n /. float_of_int r.h *. log (float_of_int r.n)) ];
        bits_measure ~x:r.n r)
      r1
  in
  Analysis.Table.print t;
  ignore (fit_line "bits exponent in n at fixed h/n (paper: n^3/h = 4n^2 here, so ~2)" ms);
  print_newline ();
  let r2 =
    par_list
      (pick ~full:[ 12; 24; 48; 80 ] ~reduced:[ 24; 48; 80 ])
      (fun h ->
        let (net, predicted), wall_ms = timed (fun () -> run_thm2 ~n:96 ~h ~seed:(2000 + h)) in
        (run_of_net ~predicted ~experiment:"E2" ~series:"h-sweep n=96" ~n:96 ~h ~wall_ms net,
         Netsim.Net.max_locality net))
  in
  let t2 = Analysis.Table.create ~title:"sweep h (n = 96)" ~columns:[ "h"; "bits"; "locality" ] in
  let ms_h =
    List.map
      (fun ((r : Analysis.Bench_io.run), loc) ->
        Analysis.Table.add_row t2 [ string_of_int r.h; fmt_bits r.bits; string_of_int loc ];
        bits_measure ~x:r.h r)
      r2
  in
  Analysis.Table.print t2;
  ignore (fit_line "bits exponent in h at fixed n (paper: ~-1; locality shrinks with h too)" ms_h);
  List.map fst r1 @ List.map fst r2

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 4: Algorithm 8, Õ(n³/h^{3/2}) bits, locality Õ(n/√h)   *)
(* ------------------------------------------------------------------ *)

(* Cost spec of one Theorem 4 run; shared by E3 and E10 (the cover-size
   override flows through the cover fan-out observables, so the same
   formulas cover both). *)
let thm4_totals ~pke ~circuit ~input_width ~n ~h ~alpha ~obs net =
  let open Analysis.Costs in
  let spec =
    Mpc.Local_mpc.cost_spec_theorem4 ~pke
      ~depth:(Const (Circuit.depth circuit))
      ~input_width:(Const input_width)
      ~out_bits:(Const (Circuit.num_outputs circuit))
      ~n:(Const n) ~h:(Const h) ~lambda:(Const 8) ~alpha:(Const alpha)
  in
  checked_totals ~env:(env ~obs []) ~spec net

let run_thm4 ~n ~h ~seed =
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:1 () in
  let pke = sim_pke seed in
  let circuit = Circuit.parity ~n in
  let config = { Mpc.Local_mpc.params; pke; circuit; input_width = 1 } in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> i land 1) in
  let net = Netsim.Net.create n in
  let rng = prng seed in
  let obs = Analysis.Costs.Obs.create () in
  let outs, costs =
    Mpc.Local_mpc.run_theorem4_metered ?pool:!pool ~obs net rng config ~corruption ~inputs
      ~adv:Mpc.Local_mpc.honest_theorem4_adv
  in
  ignore outs;
  (net, costs, thm4_totals ~pke ~circuit ~input_width:1 ~n ~h ~alpha:1 ~obs net)

let e3 () =
  section "E3  Theorem 4: Algorithm 8 uses O~(n^3/h^1.5) bits, locality O~(n/sqrt h)";
  Printf.printf
    "paper: O(n^3 h^-3/2 poly) bits, locality O(lambda n h^-1/2 log n)\n\
     note: at simulation scales alpha*log n/sqrt h is near 1, so committees\n\
     are large and the asymptotic regime is only partially visible; the\n\
     h-dependence and the locality gap vs the clique are the reproducible\n\
     shape.\n\n";
  let r1 =
    par_list
      (pick ~full:[ 32; 64; 96; 128; 160 ] ~reduced:[ 32; 64; 96 ])
      (fun n ->
        let h = n / 4 in
        let (net, _, predicted), wall_ms = timed (fun () -> run_thm4 ~n ~h ~seed:n) in
        (run_of_net ~predicted ~experiment:"E3" ~series:"n-sweep h=n/4" ~n ~h ~wall_ms net,
         Netsim.Net.max_locality net))
  in
  let t =
    Analysis.Table.create ~title:"sweep n (h = n/4)"
      ~columns:[ "n"; "h"; "bits"; "locality"; "clique" ]
  in
  let ms =
    List.map
      (fun ((r : Analysis.Bench_io.run), loc) ->
        Analysis.Table.add_row t
          [ string_of_int r.n; string_of_int r.h; fmt_bits r.bits; string_of_int loc;
            string_of_int (r.n - 1) ];
        bits_measure ~x:r.n r)
      r1
  in
  Analysis.Table.print t;
  ignore (fit_line "bits exponent in n at fixed h/n (paper: n^3/h^1.5 = 8n^1.5 here; committee saturation inflates it)" ms);
  print_newline ();
  let r2 =
    par_list
      (pick ~full:[ 16; 32; 64; 100 ] ~reduced:[ 32; 64; 100 ])
      (fun h ->
        let (net, _, predicted), wall_ms = timed (fun () -> run_thm4 ~n:128 ~h ~seed:(3000 + h)) in
        (run_of_net ~predicted ~experiment:"E3" ~series:"h-sweep n=128" ~n:128 ~h ~wall_ms net,
         Netsim.Net.max_locality net))
  in
  let t2 =
    Analysis.Table.create ~title:"sweep h (n = 128)"
      ~columns:[ "h"; "bits"; "locality"; "n/sqrt(h)" ]
  in
  let ms_h =
    List.map
      (fun ((r : Analysis.Bench_io.run), loc) ->
        Analysis.Table.add_row t2
          [ string_of_int r.h; fmt_bits r.bits; string_of_int loc;
            Printf.sprintf "%.0f" (128.0 /. sqrt (float_of_int r.h)) ];
        bits_measure ~x:r.h r)
      r2
  in
  Analysis.Table.print t2;
  ignore (fit_line "bits exponent in h at fixed n (paper: ~-1.5)" ms_h);
  List.map fst r1 @ List.map fst r2

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 3: lower bound via the isolation attack                *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4  Theorem 3: Omega(n^2/h) bits / Omega(n/h) locality are necessary";
  let n = 96 in
  Printf.printf
    "paper: any protocol where some party talks to < n/8(h-1) peers admits an\n\
     adversary that isolates it and forces disagreement WITHOUT abort.\n\
     strawman: d-local gossip broadcast without verification; sweep d.\n\n";
  let hs = [ 4; 12 ] and degrees = [ 1; 2; 4; 8; 16; 32 ] in
  (* One Monte Carlo batch (up to 400 trials) per (h, degree) point. *)
  let points = List.concat_map (fun h -> List.map (fun d -> (h, d)) degrees) hs in
  let rates =
    par_list points (fun (h, degree) ->
        let rng = prng (n + h + degree) in
        Mpc.Lower_bound.measure rng ~n ~h ~degree
          ~trials:(pick ~full:400 ~reduced:80)
          ~victim_is_sender:false)
  in
  let rate_tbl = Hashtbl.create 16 in
  List.iter2 (fun p r -> Hashtbl.replace rate_tbl p r) points rates;
  List.iter
    (fun h ->
      let threshold = Mpc.Lower_bound.threshold ~n ~h in
      Printf.printf "n = %d, h = %d, threshold n/8(h-1) = %.1f\n" n h threshold;
      let t =
        Analysis.Table.create ~title:""
          ~columns:[ "degree"; "isolation rate"; "attack success"; "analytic isolation" ]
      in
      List.iter
        (fun degree ->
          let rates = Hashtbl.find rate_tbl (h, degree) in
          Analysis.Table.add_row t
            [ string_of_int degree;
              Analysis.Table.fmt_prob rates.Mpc.Lower_bound.isolation_rate;
              Analysis.Table.fmt_prob rates.Mpc.Lower_bound.success_rate;
              Analysis.Table.fmt_prob
                (Mpc.Lower_bound.isolation_probability_bound ~n ~h ~degree:(2 * degree)) ])
        degrees;
      Analysis.Table.print t;
      print_newline ())
    hs;
  Printf.printf "shape check: success is constant below the threshold and dies above it.\n";
  []

(* ------------------------------------------------------------------ *)
(* E5 — Lemma 5: succinct equality testing                             *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5  Lemma 5: equality testing with O(lambda log n) bits";
  Printf.printf "paper: detect m1 <> m2 w.p. >= 1 - n^-lambda with O(lambda log n) bits\n\n";
  let soundness =
    par_list [ 2; 4; 8 ] (fun lambda ->
        let n = 64 in
        let params = Mpc.Params.make ~n ~h:32 ~lambda ~alpha:2 () in
        let rng = prng lambda in
        let net = Netsim.Net.create 2 in
        let trials = 1000 in
        let fa = ref 0 in
        for _ = 1 to trials do
          let len = 64 + Util.Prng.int rng 192 in
          let m1 = Util.Prng.bytes rng len in
          let m2 = Bytes.copy m1 in
          let pos = Util.Prng.int rng len in
          Bytes.set m2 pos (Char.chr (Char.code (Bytes.get m2 pos) lxor 0x5A));
          let f1, _ = Mpc.Equality.run net rng params ~p1:0 ~p2:1 ~m1 ~m2 in
          if f1 then incr fa
        done;
        let _, hi = Util.Stats.binomial_ci ~successes:!fa ~trials in
        (lambda, !fa, hi, float_of_int n ** float_of_int (-lambda)))
  in
  let t =
    Analysis.Table.create ~title:"soundness (1000 near-equal pairs each)"
      ~columns:[ "lambda"; "false accepts"; "95% CI upper"; "paper bound n^-lambda" ]
  in
  List.iter
    (fun (lambda, fa, hi, bound) ->
      Analysis.Table.add_row t
        [ string_of_int lambda; string_of_int fa; Analysis.Table.fmt_prob hi;
          Printf.sprintf "%.2e" bound ])
    soundness;
  Analysis.Table.print t;
  print_newline ();
  let params = Mpc.Params.make ~n:64 ~h:32 ~lambda:8 ~alpha:2 () in
  let comm =
    par_list
      [ 100; 1_000; 10_000; 100_000; 1_000_000 ]
      (fun len ->
        let rng = prng len in
        let net = Netsim.Net.create 2 in
        let m = Util.Prng.bytes rng len in
        ignore (Mpc.Equality.run net rng params ~p1:0 ~p2:1 ~m1:m ~m2:(Bytes.copy m));
        (len, Netsim.Net.total_bits net))
  in
  let t2 =
    Analysis.Table.create ~title:"communication vs message size (lambda=8, n=64)"
      ~columns:[ "message bytes"; "bits exchanged" ]
  in
  List.iter
    (fun (len, bits) -> Analysis.Table.add_row t2 [ string_of_int len; string_of_int bits ])
    comm;
  Analysis.Table.print t2;
  Printf.printf "shape check: bits grow (sub-)logarithmically in |m|, never linearly.\n";
  []

(* ------------------------------------------------------------------ *)
(* E6 — Claims 12/14: committee election                               *)
(* ------------------------------------------------------------------ *)

(* The --async E6 rows: one honest election per (n, h) on the event
   transport.  Single-trial (the sync rows aggregate 20) — the point is
   the rounds-vs-closed-form delta, not abort statistics. *)
let e6_async () =
  section "E6  (--async) CommitteeElect on the adversarial event transport";
  let rows =
    par_list
      (pick ~full:[ (64, 16); (128, 32); (256, 64) ] ~reduced:[ (64, 16); (128, 32) ])
      (fun (n, h) ->
        let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
        let corruption = Netsim.Corruption.none ~n in
        let net = async_net ~seed:(n * h) n in
        let rng = prng (n * h) in
        let obs = Analysis.Costs.Obs.create () in
        let outs, wall_ms =
          timed (fun () ->
              Mpc.Committee.run ~deadline:async_deadline ~obs net rng params ~corruption
                ~adv:Mpc.Committee.honest_adv)
        in
        assert (Array.length outs = n);
        let predicted =
          let open Analysis.Costs in
          async_checked_totals ~env:(env ~obs [])
            ~spec:(Mpc.Committee.cost_spec ~n:(Const n) ~lambda:(Const 8))
            net
        in
        ( async_run_of_net ~predicted ~experiment:"E6" ~series:"single-trial (async)" ~n ~h
            ~wall_ms net,
          predicted.Analysis.Costs.rounds ))
  in
  async_rounds_table rows;
  List.map fst rows

let e6 () =
  section "E6  Claims 12 & 14: CommitteeElect";
  Printf.printf
    "paper: O~(n^2/h) bits; w.h.p. >= 1 honest member, consistent views,\n\
     |C| <= 2pn, and honest runs abort with negligible probability.\n\n";
  (* One job per (n, h) row: the trials share an RNG stream, so they stay
     sequential inside the job and the row totals are seed-deterministic. *)
  let rows =
    par_list
      (pick
         ~full:[ (64, 16); (128, 32); (256, 64); (512, 128) ]
         ~reduced:[ (64, 16); (128, 32); (256, 64) ])
      (fun (n, h) ->
        let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
        let rng0 = prng (n * h) in
        let trials = pick ~full:20 ~reduced:5 in
        let bits_acc = ref 0 and size_acc = ref 0 in
        let msgs_acc = ref 0 and rounds_acc = ref 0 in
        let member_ok = ref 0 and consistent = ref 0 and aborts = ref 0 in
        let pred_acc = ref zero_totals in
        let (), wall_ms =
          timed (fun () ->
              for seed = 1 to trials do
                let corruption = Netsim.Corruption.random rng0 ~n ~h in
                let net = Netsim.Net.create n in
                let rng = prng seed in
                let obs = Analysis.Costs.Obs.create () in
                let outs =
                  Mpc.Committee.run ~obs net rng params ~corruption
                    ~adv:Mpc.Committee.honest_adv
                in
                (let open Analysis.Costs in
                 let spec = Mpc.Committee.cost_spec ~n:(Const n) ~lambda:(Const 8) in
                 pred_acc := add_totals !pred_acc (checked_totals ~env:(env ~obs []) ~spec net));
                bits_acc := !bits_acc + Netsim.Net.total_bits net;
                msgs_acc := !msgs_acc + Netsim.Net.messages_sent net;
                rounds_acc := !rounds_acc + Netsim.Net.rounds net;
                if Mpc.Outcome.some_honest_aborted outs corruption then incr aborts;
                match Mpc.Committee.consistent_committee outs corruption with
                | Some c ->
                  incr consistent;
                  size_acc := !size_acc + List.length c;
                  if List.exists (Netsim.Corruption.is_honest corruption) c then
                    incr member_ok
                | None -> ()
              done)
        in
        let run =
          {
            Analysis.Bench_io.experiment = "E6";
            series = Printf.sprintf "%d-trial total" trials;
            n;
            h;
            bits = !bits_acc;
            messages = !msgs_acc;
            rounds = !rounds_acc;
            wall_ms;
            seed = !base_seed;
            peak_rss_mb = Analysis.Bench_io.peak_rss_mb ();
            predicted_bits = Some !pred_acc.Analysis.Costs.bits_hi;
            predicted_bits_lo = Some !pred_acc.Analysis.Costs.bits_lo;
            predicted_messages = Some !pred_acc.Analysis.Costs.messages;
            predicted_rounds = Some !pred_acc.Analysis.Costs.rounds;
          }
        in
        ( run,
          (trials, !size_acc, !consistent, !member_ok, !aborts,
           Mpc.Params.committee_bound params) ))
  in
  let t =
    Analysis.Table.create ~title:"20 trials per row (random corruption, honest behavior)"
      ~columns:
        [ "n"; "h"; "bits"; "E[|C|]"; "bound 2pn"; "honest member"; "consistent"; "aborts" ]
  in
  List.iter
    (fun ((r : Analysis.Bench_io.run), (trials, size_acc, consistent, member_ok, aborts, bound)) ->
      Analysis.Table.add_row t
        [ string_of_int r.n; string_of_int r.h; fmt_bits (r.bits / trials);
          string_of_int (size_acc / max 1 consistent);
          string_of_int bound;
          Printf.sprintf "%d/%d" member_ok trials;
          Printf.sprintf "%d/%d" consistent trials;
          Printf.sprintf "%d/%d" aborts trials ])
    rows;
  Analysis.Table.print t;
  if !async_mode then List.map fst rows @ e6_async () else
  List.map fst rows

(* ------------------------------------------------------------------ *)
(* E7 — Claim 20: the sparse routing network                           *)
(* ------------------------------------------------------------------ *)

(* The giant tier exercises exactly the memory shape the streaming
   backend exists for: [Net.Sparse] allocates party state on first touch,
   [Sparse_network.run_iter] streams outcomes so the n-element [Iset]
   array (gigabytes at n = 10⁶) is never materialized, and connectivity
   is decided by a streaming union-find over the same edge set the
   full-tier BFS walks.  Honest hop relations are symmetric (i samples j
   ⟹ i notifies j ⟹ i ∈ outs(j) unless j aborted), so unioning each
   undirected edge at its higher-id endpoint — by which time the lower
   endpoint's abort status is known — yields the BFS verdict exactly;
   test_net_sparse pins the two against each other at dense scales. *)
let e7_giant () =
  section "E7  (giant tier) SparseNetwork on the streaming backend, n up to 10^6";
  Printf.printf
    "same protocol as the full tier, run on Net.Sparse: party state is\n\
     allocated lazily and outcomes stream through run_iter, so n = 10^5\n\
     fits comfortably under 2 GB peak RSS and n = 10^6 completes.\n\n";
  let points =
    pick
      ~full:[ (10_000, 2_500, 2); (100_000, 50_000, 1); (1_000_000, 1_000_000, 1) ]
      ~reduced:[ (10_000, 2_500, 1) ]
  in
  let rows =
    List.map
      (fun (n, h, trials) ->
        let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
        let sparse_spec =
          let open Analysis.Costs in
          Mpc.Sparse_network.cost_spec ~n:(Const n) ~h:(Const h) ~lambda:(Const 8)
            ~alpha:(Const 2)
        in
        let rng0 = prng (7 * n) in
        let connected = ref 0 and aborts = ref 0 and maxdeg = ref 0 in
        let bits_acc = ref 0 and msgs_acc = ref 0 and rounds_acc = ref 0 in
        let pred_acc = ref zero_totals in
        let (), wall_ms =
          timed (fun () ->
              for seed = 1 to trials do
                let corruption = Netsim.Corruption.random rng0 ~n ~h in
                let net = Netsim.Net.create ~backend:Netsim.Net.Sparse n in
                let rng = prng seed in
                (* Union-find scaffolding: one int per party plus an
                   abort byte — 9n bytes, versus the n Iset outcomes the
                   full-tier path retains. *)
                let parent = Array.init n (fun i -> i) in
                let find i =
                  let r = ref i in
                  while parent.(!r) <> !r do
                    r := parent.(!r)
                  done;
                  let j = ref i in
                  while parent.(!j) <> !r do
                    let next = parent.(!j) in
                    parent.(!j) <- !r;
                    j := next
                  done;
                  !r
                in
                let aborted = Bytes.make n '\000' in
                let honest_abort = ref false in
                let first_active = ref (-1) in
                Mpc.Sparse_network.run_iter net rng params ~corruption
                  ~adv:Mpc.Sparse_network.honest_adv ~f:(fun i out ->
                    match out with
                    | Mpc.Outcome.Abort _ ->
                      Bytes.set aborted i '\001';
                      if Netsim.Corruption.is_honest corruption i then honest_abort := true
                    | Mpc.Outcome.Output s ->
                      maxdeg := max !maxdeg (Util.Iset.cardinal s);
                      if Netsim.Corruption.is_honest corruption i then begin
                        if !first_active < 0 then first_active := i;
                        Util.Iset.iter
                          (fun j ->
                            if
                              j < i
                              && Netsim.Corruption.is_honest corruption j
                              && Bytes.get aborted j = '\000'
                            then begin
                              let ri = find i and rj = find j in
                              if ri <> rj then parent.(ri) <- rj
                            end)
                          s
                      end);
                pred_acc :=
                  add_totals !pred_acc
                    (checked_totals ~env:(Analysis.Costs.env []) ~spec:sparse_spec net);
                bits_acc := !bits_acc + Netsim.Net.total_bits net;
                msgs_acc := !msgs_acc + Netsim.Net.messages_sent net;
                rounds_acc := !rounds_acc + Netsim.Net.rounds net;
                let all_connected = ref true in
                if !first_active >= 0 then begin
                  let root = find !first_active in
                  for i = 0 to n - 1 do
                    if
                      Netsim.Corruption.is_honest corruption i
                      && Bytes.get aborted i = '\000'
                      && find i <> root
                    then all_connected := false
                  done
                end;
                if !all_connected then incr connected;
                if !honest_abort then incr aborts
              done)
        in
        let run =
          {
            Analysis.Bench_io.experiment = "E7";
            series = Printf.sprintf "giant %d-trial total" trials;
            n;
            h;
            bits = !bits_acc;
            messages = !msgs_acc;
            rounds = !rounds_acc;
            wall_ms;
            seed = !base_seed;
            peak_rss_mb = Analysis.Bench_io.peak_rss_mb ();
            predicted_bits = Some !pred_acc.Analysis.Costs.bits_hi;
            predicted_bits_lo = Some !pred_acc.Analysis.Costs.bits_lo;
            predicted_messages = Some !pred_acc.Analysis.Costs.messages;
            predicted_rounds = Some !pred_acc.Analysis.Costs.rounds;
          }
        in
        (run, (trials, !connected, !aborts, !maxdeg, Mpc.Params.sparse_degree params)))
      points
  in
  let t =
    Analysis.Table.create ~title:"streaming backend (Net.Sparse), alpha = 2"
      ~columns:
        [ "n"; "h"; "d"; "max degree"; "cap 3d"; "connected"; "honest aborts"; "wall s";
          "peak rss" ]
  in
  List.iter
    (fun ((r : Analysis.Bench_io.run), (trials, connected, aborts, maxdeg, d)) ->
      Analysis.Table.add_row t
        [ string_of_int r.n; string_of_int r.h; string_of_int d; string_of_int maxdeg;
          string_of_int (3 * d); Printf.sprintf "%d/%d" connected trials;
          Printf.sprintf "%d/%d" aborts trials;
          Printf.sprintf "%.1f" (r.wall_ms /. 1000.0);
          (match r.peak_rss_mb with Some mb -> Printf.sprintf "%.0fMB" mb | None -> "-") ])
    rows;
  Analysis.Table.print t;
  List.map fst rows

let e7 () =
  if !giant then e7_giant ()
  else begin
  section "E7  Claim 20: SparseNetwork degree bound and honest connectivity";
  Printf.printf "paper: max degree O(alpha n log n / h); honest subgraph connected w.h.p.\n\n";
  let rows =
    par_list
      (pick
         ~full:[ (64, 16); (128, 32); (256, 64); (512, 256) ]
         ~reduced:[ (64, 16); (128, 32); (256, 64) ])
      (fun (n, h) ->
        let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:3 () in
        let sparse_spec =
          let open Analysis.Costs in
          Mpc.Sparse_network.cost_spec ~n:(Const n) ~h:(Const h) ~lambda:(Const 8)
            ~alpha:(Const 3)
        in
        let rng0 = prng (7 * n) in
        let trials = pick ~full:20 ~reduced:5 in
        let connected = ref 0 and aborts = ref 0 and maxdeg = ref 0 in
        let bits_acc = ref 0 and msgs_acc = ref 0 and rounds_acc = ref 0 in
        let pred_acc = ref zero_totals in
        let (), wall_ms =
          timed (fun () ->
              for seed = 1 to trials do
                let corruption = Netsim.Corruption.random rng0 ~n ~h in
                let net = Netsim.Net.create n in
                let rng = prng seed in
                let obs = Analysis.Costs.Obs.create () in
                let outs =
                  Mpc.Sparse_network.run ~obs net rng params ~corruption
                    ~adv:Mpc.Sparse_network.honest_adv
                in
                (* The obs carries the trial's structural union_degmax, so
                   checked_totals also asserts the spec's max_locality
                   formula against the measured peer counts. *)
                pred_acc :=
                  add_totals !pred_acc
                    (checked_totals ~env:(Analysis.Costs.env ~obs []) ~spec:sparse_spec net);
                bits_acc := !bits_acc + Netsim.Net.total_bits net;
                msgs_acc := !msgs_acc + Netsim.Net.messages_sent net;
                rounds_acc := !rounds_acc + Netsim.Net.rounds net;
                maxdeg := max !maxdeg (Mpc.Sparse_network.max_degree outs);
                if Mpc.Sparse_network.honest_subgraph_connected outs corruption then
                  incr connected;
                if
                  List.exists
                    (fun i -> Mpc.Outcome.is_abort outs.(i))
                    (Netsim.Corruption.honest_list corruption)
                then incr aborts
              done)
        in
        let run =
          {
            Analysis.Bench_io.experiment = "E7";
            series = Printf.sprintf "%d-trial total" trials;
            n;
            h;
            bits = !bits_acc;
            messages = !msgs_acc;
            rounds = !rounds_acc;
            wall_ms;
            seed = !base_seed;
            peak_rss_mb = Analysis.Bench_io.peak_rss_mb ();
            predicted_bits = Some !pred_acc.Analysis.Costs.bits_hi;
            predicted_bits_lo = Some !pred_acc.Analysis.Costs.bits_lo;
            predicted_messages = Some !pred_acc.Analysis.Costs.messages;
            predicted_rounds = Some !pred_acc.Analysis.Costs.rounds;
          }
        in
        (run, (trials, !connected, !aborts, !maxdeg, Mpc.Params.sparse_degree params)))
  in
  let t =
    Analysis.Table.create ~title:"20 trials per row"
      ~columns:[ "n"; "h"; "d"; "max degree"; "cap 3d"; "connected"; "honest aborts" ]
  in
  List.iter
    (fun ((r : Analysis.Bench_io.run), (trials, connected, aborts, maxdeg, d)) ->
      Analysis.Table.add_row t
        [ string_of_int r.n; string_of_int r.h; string_of_int d;
          string_of_int maxdeg; string_of_int (3 * d);
          Printf.sprintf "%d/%d" connected trials; Printf.sprintf "%d/%d" aborts trials ])
    rows;
  Analysis.Table.print t;
  List.map fst rows
  end

(* ------------------------------------------------------------------ *)
(* E8 — Claim 23: the covering claim                                   *)
(* ------------------------------------------------------------------ *)

(* E8 is network-free Monte Carlo, so its giant rows carry zero
   accounting; the records exist to pin the sweep's wall time and peak
   RSS in the committed giant baseline. *)
let e8_giant () =
  section "E8  (giant tier) covering Monte Carlo at n up to 10^6";
  Printf.printf
    "same covering experiment as the full tier at n = 10^4..10^6: committee\n\
     sampled Bernoulli(alpha log n / sqrt h), each honest member covers\n\
     s = n/sqrt(h) parties.\n\n";
  let points =
    pick
      ~full:[ (10_000, 2_500, 3); (100_000, 50_000, 2); (1_000_000, 1_000_000, 1) ]
      ~reduced:[ (10_000, 2_500, 1) ]
  in
  let rows =
    List.map
      (fun (n, h, trials) ->
        let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
        let s = Mpc.Params.cover_size params in
        let p = Mpc.Params.local_committee_prob params in
        let rng = prng (n + h) in
        let covered_all = ref 0 and honest_members_acc = ref 0 in
        let (), wall_ms =
          timed (fun () ->
              for _ = 1 to trials do
                let committee = Util.Prng.subset_bernoulli rng ~n ~p in
                let honest_members = List.filter (fun c -> c mod 2 = 0) committee in
                honest_members_acc := !honest_members_acc + List.length honest_members;
                let covered = Bytes.make n '\000' in
                List.iter
                  (fun _c ->
                    List.iter
                      (fun i -> Bytes.set covered i '\001')
                      (Util.Prng.sample_without_replacement rng ~n ~k:s))
                  honest_members;
                let all = ref true in
                for i = 0 to n - 1 do
                  if Bytes.get covered i = '\000' then all := false
                done;
                if !all then incr covered_all
              done)
        in
        let run =
          {
            Analysis.Bench_io.experiment = "E8";
            series = Printf.sprintf "giant %d-trial total (no net)" trials;
            n;
            h;
            bits = 0;
            messages = 0;
            rounds = 0;
            wall_ms;
            seed = !base_seed;
            peak_rss_mb = Analysis.Bench_io.peak_rss_mb ();
            (* Network-free Monte Carlo: the spec is the zero spec, and
               the zero accounting must match it. *)
            predicted_bits = Some 0;
            predicted_bits_lo = Some 0;
            predicted_messages = Some 0;
            predicted_rounds = Some 0;
          }
        in
        (run, (s, trials, !honest_members_acc, !covered_all)))
      points
  in
  let t =
    Analysis.Table.create ~title:"giant covering sweep, alpha = 2"
      ~columns:[ "n"; "h"; "s = n/sqrt h"; "E[|C and H|]"; "all covered"; "wall s" ]
  in
  List.iter
    (fun ((r : Analysis.Bench_io.run), (s, trials, honest_members_acc, covered_all)) ->
      Analysis.Table.add_row t
        [ string_of_int r.n; string_of_int r.h; string_of_int s;
          string_of_int (honest_members_acc / trials);
          Printf.sprintf "%d/%d" covered_all trials;
          Printf.sprintf "%.1f" (r.wall_ms /. 1000.0) ])
    rows;
  Analysis.Table.print t;
  List.map fst rows

let e8 () =
  if !giant then e8_giant ()
  else begin
  section "E8  Claim 23: every party is covered by an honest committee member";
  Printf.printf
    "paper: with |C and H| >= alpha sqrt(h) log n / 2 honest members and\n\
     |S_c| = n/sqrt(h), every party is in some honest member's cover w.p.\n\
     1 - n^-Omega(alpha).  Monte Carlo over the protocol's own randomness,\n\
     with half the parties honest.\n\n";
  let rows =
    par_list
      [ (64, 32); (128, 64); (256, 128); (512, 256) ]
      (fun (n, h) ->
        let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
        let s = Mpc.Params.cover_size params in
        let p = Mpc.Params.local_committee_prob params in
        let rng = prng (n + h) in
        let trials = pick ~full:50 ~reduced:20 in
        let covered_all = ref 0 and honest_members_acc = ref 0 in
        for _ = 1 to trials do
          let committee = Util.Prng.subset_bernoulli rng ~n ~p in
          let honest_members = List.filter (fun c -> c mod 2 = 0) committee in
          honest_members_acc := !honest_members_acc + List.length honest_members;
          let covered = Array.make n false in
          List.iter
            (fun _c ->
              List.iter
                (fun i -> covered.(i) <- true)
                (Util.Prng.sample_without_replacement rng ~n ~k:s))
            honest_members;
          if Array.for_all (fun c -> c) covered then incr covered_all
        done;
        (n, h, s, trials, !honest_members_acc, !covered_all))
  in
  let t =
    Analysis.Table.create ~title:"50 trials per row"
      ~columns:[ "n"; "h"; "s = n/sqrt h"; "E[|C and H|]"; "all covered" ]
  in
  List.iter
    (fun (n, h, s, trials, honest_members_acc, covered_all) ->
      Analysis.Table.add_row t
        [ string_of_int n; string_of_int h; string_of_int s;
          string_of_int (honest_members_acc / trials);
          Printf.sprintf "%d/%d" covered_all trials ])
    rows;
  Analysis.Table.print t;
  []
  end

(* ------------------------------------------------------------------ *)
(* E9 — §2.1 baseline: GL05 O(n³) vs fingerprinted Õ(n²)               *)
(* ------------------------------------------------------------------ *)

(* Cost spec of one honest all-to-all over the full party set with
   uniform [len]-byte inputs (closed form: no observables). *)
let a2a_totals ?(async = false) ~variant ~n ~len net =
  let open Analysis.Costs in
  let spec =
    Mpc.All_to_all.cost_spec ~variant ~k:(Const n)
      ~idsum:(Const (varint_sum_ids (List.init n (fun i -> i))))
      ~len:(Const len) ~n:(Const n) ~lambda:(Const 8)
  in
  (if async then async_checked_totals else checked_totals) ~env:(env []) ~spec net

(* The --async E9 rows: both variants at small n on the event transport,
   512-byte inputs as in the full tier. *)
let e9_async () =
  section "E9  (--async) all-to-all broadcast on the adversarial event transport";
  let rows =
    par_list [ 8; 16; 32 ] (fun n ->
        let params = Mpc.Params.make ~n ~h:(n / 2) ~lambda:8 ~alpha:2 () in
        let corruption = Netsim.Corruption.none ~n in
        let participants = List.init n (fun i -> i) in
        let input i =
          Crypto.Kdf.expand ~key:(Bytes.of_string (string_of_int i)) ~info:"e9" 512
        in
        let cost name variant =
          let net = async_net ~seed:n n in
          let rng = prng n in
          let outs, wall_ms =
            timed (fun () ->
                Mpc.All_to_all.run ~deadline:async_deadline net rng params ~variant
                  ~participants ~input ~corruption ~adv:Mpc.All_to_all.honest_adv)
          in
          assert (List.for_all (fun (_, o) -> Mpc.Outcome.is_output o) outs);
          let predicted = a2a_totals ~async:true ~variant ~n ~len:512 net in
          ( async_run_of_net ~predicted ~experiment:"E9" ~series:name ~n ~h:(n / 2) ~wall_ms
              net,
            predicted.Analysis.Costs.rounds )
        in
        ( cost "naive 512B (async)" Mpc.All_to_all.Naive,
          cost "fingerprinted 512B (async)" Mpc.All_to_all.Fingerprinted ))
  in
  let flat = List.concat_map (fun (a, b) -> [ a; b ]) rows in
  async_rounds_table flat;
  List.map fst flat

(* One huge-tier E9 row, shared verbatim by [e9_huge] and the dist
   paths (the naive sessions through Dist.run_program and the
   "bench.e9fp" job fleet) — same keys, same seeds, same counters. *)
let e9_row ?pool ~n name variant =
  let params = Mpc.Params.make ~n ~h:(n / 2) ~lambda:8 ~alpha:2 () in
  let corruption = Netsim.Corruption.none ~n in
  let participants = List.init n (fun i -> i) in
  let input i = Crypto.Kdf.expand ~key:(Bytes.of_string (string_of_int i)) ~info:"e9" 64 in
  let net = Netsim.Net.create n in
  let rng = prng n in
  let outs, wall_ms =
    timed (fun () ->
        Mpc.All_to_all.run ?pool net rng params ~variant ~participants ~input ~corruption
          ~adv:Mpc.All_to_all.honest_adv)
  in
  assert (List.for_all (fun (_, o) -> Mpc.Outcome.is_output o) outs);
  let predicted = a2a_totals ~variant ~n ~len:64 net in
  run_of_net ~predicted ~experiment:"E9" ~series:name ~n ~h:(n / 2) ~wall_ms net

let e9_huge () =
  section "E9  (huge tier) all-to-all broadcast at n up to 2048";
  Printf.printf
    "64-byte inputs keep one round's in-flight traffic in memory at\n\
     n = 2048.  naive is O(n^3 l) and capped at n <= 128 — the cap is the\n\
     point: past it only the fingerprinted protocol is feasible.\n\n";
  let naive_rows =
    List.map
      (fun n -> e9_row ?pool:!pool ~n "naive 64B" Mpc.All_to_all.Naive)
      (pick ~full:[ 64; 128 ] ~reduced:[ 64 ])
  in
  let fp_rows =
    List.map
      (fun n -> e9_row ?pool:!pool ~n "fingerprinted 64B" Mpc.All_to_all.Fingerprinted)
      (pick ~full:[ 256; 512; 1024; 2048 ] ~reduced:[ 1024 ])
  in
  let t =
    Analysis.Table.create ~title:"64-byte inputs, honest runs"
      ~columns:[ "series"; "n"; "bits"; "wall ms" ]
  in
  List.iter
    (fun (r : Analysis.Bench_io.run) ->
      Analysis.Table.add_row t
        [ r.series; string_of_int r.n; fmt_bits r.bits; Printf.sprintf "%.0f" r.wall_ms ])
    (naive_rows @ fp_rows);
  Analysis.Table.print t;
  naive_rows @ fp_rows

let e9 () =
  if !huge then e9_huge ()
  else begin
  section "E9  Sec 2.1: all-to-all broadcast, naive O(n^3 l) vs fingerprinted O~(n^2)";
  Printf.printf "paper: the fingerprint optimization shaves a factor n off GL05.\n\n";
  let rows =
    par_list [ 8; 16; 32; 48 ] (fun n ->
        let params = Mpc.Params.make ~n ~h:(n / 2) ~lambda:8 ~alpha:2 () in
        let corruption = Netsim.Corruption.none ~n in
        let participants = List.init n (fun i -> i) in
        let input i =
          Crypto.Kdf.expand ~key:(Bytes.of_string (string_of_int i)) ~info:"e9" 512
        in
        let cost name variant =
          let net = Netsim.Net.create n in
          let rng = prng n in
          let outs, wall_ms =
            timed (fun () ->
                Mpc.All_to_all.run net rng params ~variant ~participants ~input ~corruption
                  ~adv:Mpc.All_to_all.honest_adv)
          in
          assert (List.for_all (fun (_, o) -> Mpc.Outcome.is_output o) outs);
          let predicted = a2a_totals ~variant ~n ~len:512 net in
          run_of_net ~predicted ~experiment:"E9" ~series:name ~n ~h:(n / 2) ~wall_ms net
        in
        let naive = cost "naive 512B" Mpc.All_to_all.Naive in
        let fp = cost "fingerprinted 512B" Mpc.All_to_all.Fingerprinted in
        (naive, fp))
  in
  let t =
    Analysis.Table.create ~title:"512-byte inputs, honest run"
      ~columns:[ "n"; "naive bits"; "fingerprinted bits"; "speedup" ]
  in
  let ratios =
    List.map
      (fun ((naive : Analysis.Bench_io.run), (fp : Analysis.Bench_io.run)) ->
        Analysis.Table.add_row t
          [ string_of_int naive.n; fmt_bits naive.bits; fmt_bits fp.bits;
            Analysis.Table.fmt_ratio (float_of_int naive.bits /. float_of_int fp.bits) ];
        (float_of_int naive.n, float_of_int naive.bits /. float_of_int fp.bits))
      rows
  in
  Analysis.Table.print t;
  let slope, _, _ = Util.Stats.linear_fit (List.rev ratios) in
  Printf.printf "speedup grows linearly in n (slope %.2f per party) — the factor-n win.\n" slope;
  List.concat_map (fun (naive, fp) -> [ naive; fp ]) rows
  @ (if !async_mode then e9_async () else [])
  end

(* ------------------------------------------------------------------ *)
(* E10 — Equation (1): phase decomposition of Algorithm 8              *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10  Equation (1): Algorithm 8 phase balance";
  Printf.printf
    "paper: cost = O(|C| d n) election + O~(|C|^2 s) interaction + O~(|C|^2)\n\
     computation, balanced at |C| = s = O~(n/sqrt h).  We sweep the cover\n\
     size s around the optimum n/sqrt(h) at fixed (n, h).\n\n";
  let n = 96 and h = 25 in
  let rows =
    par_list
      (pick ~full:[ 1; 2; 5; 19; 38; 96 ] ~reduced:[ 2; 5; 19; 38 ])
      (fun s ->
        let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:1 () in
        let pke = sim_pke 10 in
        let circuit = Circuit.parity ~n in
        let config = { Mpc.Local_mpc.params; pke; circuit; input_width = 1 } in
        let corruption = Netsim.Corruption.none ~n in
        let inputs = Array.init n (fun i -> i land 1) in
        let net = Netsim.Net.create n in
        let rng = prng (100 + s) in
        let obs = Analysis.Costs.Obs.create () in
        let (outs, costs), wall_ms =
          timed (fun () ->
              Mpc.Local_mpc.run_theorem4_metered ~cover_size:s ?pool:!pool ~obs net rng config
                ~corruption ~inputs ~adv:Mpc.Local_mpc.honest_theorem4_adv)
        in
        let aborts =
          Array.fold_left (fun a o -> a + if Mpc.Outcome.is_abort o then 1 else 0) 0 outs
        in
        let predicted = thm4_totals ~pke ~circuit ~input_width:1 ~n ~h ~alpha:1 ~obs net in
        ( run_of_net ~predicted ~experiment:"E10" ~series:(Printf.sprintf "cover s=%d" s) ~n
            ~h ~wall_ms net,
          (s, costs, aborts) ))
  in
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:1 () in
  let t =
    Analysis.Table.create
      ~title:
        (Printf.sprintf "n = %d, h = %d, optimum s = n/sqrt(h) = %d" n h
           (Mpc.Params.cover_size params))
      ~columns:
        [ "s"; "election"; "cover+out"; "exchange"; "equality"; "compute"; "total"; "aborts" ]
  in
  List.iter
    (fun ((r : Analysis.Bench_io.run), (s, costs, aborts)) ->
      Analysis.Table.add_row t
        [ string_of_int s; fmt_bits costs.Mpc.Local_mpc.election_bits;
          fmt_bits (costs.Mpc.Local_mpc.cover_bits + costs.Mpc.Local_mpc.output_bits);
          fmt_bits costs.Mpc.Local_mpc.exchange_bits;
          fmt_bits costs.Mpc.Local_mpc.equality_bits;
          fmt_bits (costs.Mpc.Local_mpc.keygen_bits + costs.Mpc.Local_mpc.compute_bits);
          fmt_bits r.bits; string_of_int aborts ])
    rows;
  Analysis.Table.print t;
  Printf.printf
    "shape check: small s under-covers (aborts); large s inflates the exchange\n\
     term |C|^2 s; the optimum sits near n/sqrt(h) with zero aborts.\n";
  List.map fst rows

(* ------------------------------------------------------------------ *)
(* E11 — round complexity                                              *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11  Round complexity of the protocols (GL05 comparison)";
  let n = 48 and h = 24 in
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
  let corruption = Netsim.Corruption.none ~n in
  (* Each protocol closure also returns its evaluated cost-spec totals,
     so every E11 row carries (and is checked against) its prediction. *)
  let protocols : (string * (Netsim.Net.t -> Analysis.Costs.totals)) list =
    [
      ( "single-source broadcast (naive)",
        fun net ->
          let rng = prng 1 in
          ignore
            (Mpc.Broadcast.run net rng params ~variant:Mpc.Broadcast.Naive ~sender:0
               ~value:(Bytes.make 64 'v') ~corruption ~adv:Mpc.Broadcast.honest_adv);
          let open Analysis.Costs in
          let spec =
            Mpc.Broadcast.cost_spec ~variant:Mpc.Broadcast.Naive ~n:(Const n)
              ~lambda:(Const 8) ~len:(Const 64)
          in
          checked_totals ~env:(env []) ~spec net );
      ( "single-source broadcast (fingerprinted)",
        fun net ->
          let rng = prng 2 in
          ignore
            (Mpc.Broadcast.run net rng params ~variant:Mpc.Broadcast.Fingerprinted ~sender:0
               ~value:(Bytes.make 64 'v') ~corruption ~adv:Mpc.Broadcast.honest_adv);
          let open Analysis.Costs in
          let spec =
            Mpc.Broadcast.cost_spec ~variant:Mpc.Broadcast.Fingerprinted ~n:(Const n)
              ~lambda:(Const 8) ~len:(Const 64)
          in
          checked_totals ~env:(env []) ~spec net );
      ( "all-to-all broadcast (fingerprinted)",
        fun net ->
          let rng = prng 3 in
          ignore
            (Mpc.All_to_all.run net rng params ~variant:Mpc.All_to_all.Fingerprinted
               ~participants:(List.init n (fun i -> i))
               ~input:(fun i -> Bytes.make 64 (Char.chr (65 + (i mod 26))))
               ~corruption ~adv:Mpc.All_to_all.honest_adv);
          a2a_totals ~variant:Mpc.All_to_all.Fingerprinted ~n ~len:64 net );
      ( "committee election (Alg 2)",
        fun net ->
          let rng = prng 4 in
          let obs = Analysis.Costs.Obs.create () in
          ignore
            (Mpc.Committee.run ~obs net rng params ~corruption ~adv:Mpc.Committee.honest_adv);
          let open Analysis.Costs in
          let spec = Mpc.Committee.cost_spec ~n:(Const n) ~lambda:(Const 8) in
          checked_totals ~env:(env ~obs []) ~spec net );
      ( "MPC with abort (Alg 3, Thm 1)",
        fun net ->
          let rng = prng 5 in
          let pke = sim_pke 11 in
          let circuit = Circuit.parity ~n in
          let config = { Mpc.Mpc_abort.params; pke; circuit; input_width = 1 } in
          let obs = Analysis.Costs.Obs.create () in
          ignore
            (Mpc.Mpc_abort.run ~obs net rng config ~corruption ~inputs:(Array.make n 0)
               ~adv:Mpc.Mpc_abort.honest_adv);
          alg3_totals ~pke ~circuit ~input_width:1 ~n ~obs net );
      ( "gossip MPC (Thm 2)",
        fun net ->
          let rng = prng 6 in
          let circuit = Circuit.parity ~n in
          let config = { Mpc.Local_mpc.params; pke = sim_pke 12; circuit; input_width = 1 } in
          let obs = Analysis.Costs.Obs.create () in
          ignore
            (Mpc.Local_mpc.run_theorem2 ?pool:!pool ~obs net rng config ~corruption
               ~inputs:(Array.make n 0) ~adv:Mpc.Local_mpc.honest_theorem2_adv);
          let open Analysis.Costs in
          let spec =
            Mpc.Local_mpc.cost_spec_theorem2 ~n:(Const n) ~h:(Const h) ~lambda:(Const 8)
              ~alpha:(Const 2)
              ~depth:(Const (Circuit.depth circuit))
              ~input_width:(Const 1)
              ~out_bits:(Const (Circuit.num_outputs circuit))
          in
          checked_totals ~env:(env ~obs []) ~spec net );
      ( "local MPC (Alg 8, Thm 4)",
        fun net ->
          let rng = prng 7 in
          let pke = sim_pke 13 in
          let circuit = Circuit.parity ~n in
          let config = { Mpc.Local_mpc.params; pke; circuit; input_width = 1 } in
          let obs = Analysis.Costs.Obs.create () in
          ignore
            (Mpc.Local_mpc.run_theorem4 ?pool:!pool ~obs net rng config ~corruption
               ~inputs:(Array.make n 0) ~adv:Mpc.Local_mpc.honest_theorem4_adv);
          thm4_totals ~pke ~circuit ~input_width:1 ~n ~h ~alpha:2 ~obs net );
    ]
  in
  let rows =
    par_list protocols (fun (name, f) ->
        let net = Netsim.Net.create n in
        let predicted, wall_ms = timed (fun () -> f net) in
        ( run_of_net ~predicted ~experiment:"E11" ~series:name ~n ~h ~wall_ms net,
          Netsim.Net.max_locality net ))
  in
  let t =
    Analysis.Table.create
      ~title:(Printf.sprintf "n = %d, h = %d, honest runs" n h)
      ~columns:[ "protocol"; "rounds"; "bits"; "max locality" ]
  in
  List.iter
    (fun ((r : Analysis.Bench_io.run), loc) ->
      Analysis.Table.add_row t
        [ r.series; string_of_int r.rounds; fmt_bits r.bits; string_of_int loc ])
    rows;
  Analysis.Table.print t;
  Printf.printf "constant round counts, as in GL05 (locality protocols add gossip rounds).\n";
  List.map fst rows

(* ------------------------------------------------------------------ *)
(* E12 — crypto substrate microbenchmarks (bechamel)                   *)
(* ------------------------------------------------------------------ *)

(* Deliberately sequential: bechamel's ns/op estimates would be distorted
   by concurrent load, so this experiment ignores --jobs. *)
let e12 () =
  section "E12  Crypto substrate microbenchmarks (Bechamel, ns/op)";
  let open Bechamel in
  let open Toolkit in
  let rng = prng 99 in
  let data64 = Util.Prng.bytes rng 64 in
  let data4k = Util.Prng.bytes rng 4096 in
  let key = Util.Prng.bytes rng 32 in
  let lwe_pk, lwe_sk = Crypto.Lwe.keygen rng in
  let ct1 = Crypto.Lwe.encrypt_bytes rng lwe_pk (Bytes.make 1 'x') in
  let prime = Field.Primality.random_prime_bits rng ~bits:29 in
  let ske_key = Crypto.Ske.keygen rng in
  let ske_ct = Crypto.Ske.encrypt rng ske_key data64 in
  let lamport_sk, lamport_pk = Crypto.Lamport.keygen ~seed:key in
  let lamport_sig = Crypto.Lamport.sign lamport_sk data64 in
  let shamir_rng = Util.Prng.copy rng in
  let tests =
    [
      Test.make ~name:"sha256-64B" (Staged.stage (fun () -> Crypto.Sha256.digest data64));
      Test.make ~name:"sha256-4KB" (Staged.stage (fun () -> Crypto.Sha256.digest data4k));
      Test.make ~name:"hmac-64B" (Staged.stage (fun () -> Crypto.Hmac.mac ~key data64));
      Test.make ~name:"regev-encrypt-1B"
        (Staged.stage (fun () -> Crypto.Lwe.encrypt_bytes rng lwe_pk (Bytes.make 1 'x')));
      Test.make ~name:"regev-decrypt-1B"
        (Staged.stage (fun () -> Crypto.Lwe.decrypt_bytes lwe_sk ct1));
      Test.make ~name:"fingerprint-residue-4KB"
        (Staged.stage (fun () -> Crypto.Fingerprint.residue data4k prime));
      Test.make ~name:"shamir-share-3of5-64B"
        (Staged.stage (fun () ->
             Crypto.Secret_sharing.share_bytes_shamir shamir_rng ~threshold:3 ~parties:5 data64));
      Test.make ~name:"ske-encrypt-64B"
        (Staged.stage (fun () -> Crypto.Ske.encrypt rng ske_key data64));
      Test.make ~name:"ske-decrypt-64B"
        (Staged.stage (fun () -> Crypto.Ske.decrypt ske_key ske_ct));
      Test.make ~name:"lamport-verify-64B"
        (Staged.stage (fun () -> Crypto.Lamport.verify lamport_pk data64 lamport_sig));
    ]
  in
  let grouped = Test.make_grouped ~name:"crypto" ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg
      ~limit:(pick ~full:1000 ~reduced:200)
      ~stabilize:false
      ~quota:(Time.second (pick ~full:0.25 ~reduced:0.05))
      ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Analysis.Table.create ~title:"" ~columns:[ "primitive"; "ns/op" ] in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      Analysis.Table.add_row t [ name; Printf.sprintf "%.0f" est ])
    (List.sort compare rows);
  Analysis.Table.print t;
  []

(* ------------------------------------------------------------------ *)
(* E13 — baseline crossover: GMW vs Algorithm 3                        *)
(* ------------------------------------------------------------------ *)

let e13_huge () =
  section "E13  (huge tier) GMW vs Algorithm 3 deep past the crossover";
  Printf.printf
    "GMW's Theta(n^2)-per-gate traffic is capped at n <= 384 (tens of\n\
     seconds of simulated all-to-all openings beyond); Algorithm 3\n\
     continues to n = 2048 where committee delegation wins outright.\n\n";
  let gmw_point n =
    let circuit = Circuit.majority ~n in
    let inputs = Array.init n (fun i -> i land 1) in
    let corruption = Netsim.Corruption.none ~n in
    let net = Netsim.Net.create n in
    let rng = prng n in
    let (), wall_ms =
      timed (fun () ->
          ignore
            (Mpc.Gmw.run net rng ~circuit ~input_width:1 ~inputs ~corruption
               ~adv:Mpc.Gmw.honest_adv))
    in
    let predicted =
      let open Analysis.Costs in
      let spec = Mpc.Gmw.cost_spec ~circuit ~input_width:1 ~n:(Const n) in
      checked_totals ~env:(env []) ~spec net
    in
    run_of_net ~predicted ~experiment:"E13" ~series:"gmw majority" ~n ~h:0 ~wall_ms net
  in
  let alg3_point n =
    let circuit = Circuit.majority ~n in
    let inputs = Array.init n (fun i -> i land 1) in
    let corruption = Netsim.Corruption.none ~n in
    let params = Mpc.Params.make ~n ~h:(n / 4) ~lambda:8 ~alpha:2 () in
    let pke = sim_pke n in
    let config = { Mpc.Mpc_abort.params; pke; circuit; input_width = 1 } in
    let net = Netsim.Net.create n in
    let rng = prng (n + 1) in
    let obs = Analysis.Costs.Obs.create () in
    let (), wall_ms =
      timed (fun () ->
          ignore
            (Mpc.Mpc_abort.run ?pool:!pool ~obs net rng config ~corruption ~inputs
               ~adv:Mpc.Mpc_abort.honest_adv))
    in
    let predicted = alg3_totals ~pke ~circuit ~input_width:1 ~n ~obs net in
    run_of_net ~predicted ~experiment:"E13" ~series:"alg3 majority h=n/4" ~n ~h:(n / 4)
      ~wall_ms net
  in
  let gmw_rows = List.map gmw_point (pick ~full:[ 384 ] ~reduced:[ 128 ]) in
  let alg3_rows = List.map alg3_point (pick ~full:[ 512; 1024; 2048 ] ~reduced:[ 512 ]) in
  let t =
    Analysis.Table.create ~title:"honest runs, h = n/4 for Alg 3"
      ~columns:[ "series"; "n"; "bits"; "wall ms" ]
  in
  List.iter
    (fun (r : Analysis.Bench_io.run) ->
      Analysis.Table.add_row t
        [ r.series; string_of_int r.n; fmt_bits r.bits; Printf.sprintf "%.0f" r.wall_ms ])
    (gmw_rows @ alg3_rows);
  Analysis.Table.print t;
  gmw_rows @ alg3_rows

let e13 () =
  if !huge then e13_huge ()
  else begin
  section "E13  Baseline: generic GMW vs the committee protocol (Algorithm 3)";
  Printf.printf
    "the intro's motivation: generic point-to-point MPC pays Theta(n^2) per\n\
     multiplicative gate (every Beaver opening is an all-to-all exchange),\n\
     while Algorithm 3 delegates to a committee and pays O~(n^2/h) total.\n\
     f = majority(n), so the gate count itself grows with n.\n\n";
  let rows =
    par_list
      (pick ~full:[ 16; 32; 64; 128; 256; 384 ] ~reduced:[ 16; 32; 64; 128 ])
      (fun n ->
        let circuit = Circuit.majority ~n in
        let inputs = Array.init n (fun i -> i land 1) in
        let corruption = Netsim.Corruption.none ~n in
        let gmw =
          let net = Netsim.Net.create n in
          let rng = prng n in
          let (), wall_ms =
            timed (fun () ->
                ignore
                  (Mpc.Gmw.run net rng ~circuit ~input_width:1 ~inputs ~corruption
                     ~adv:Mpc.Gmw.honest_adv))
          in
          let predicted =
            let open Analysis.Costs in
            let spec = Mpc.Gmw.cost_spec ~circuit ~input_width:1 ~n:(Const n) in
            checked_totals ~env:(env []) ~spec net
          in
          run_of_net ~predicted ~experiment:"E13" ~series:"gmw majority" ~n ~h:0 ~wall_ms net
        in
        let alg3 =
          let params = Mpc.Params.make ~n ~h:(n / 4) ~lambda:8 ~alpha:2 () in
          let pke = sim_pke n in
          let config = { Mpc.Mpc_abort.params; pke; circuit; input_width = 1 } in
          let net = Netsim.Net.create n in
          let rng = prng (n + 1) in
          let obs = Analysis.Costs.Obs.create () in
          let (), wall_ms =
            timed (fun () ->
                ignore
                  (Mpc.Mpc_abort.run ~obs net rng config ~corruption ~inputs
                     ~adv:Mpc.Mpc_abort.honest_adv))
          in
          let predicted = alg3_totals ~pke ~circuit ~input_width:1 ~n ~obs net in
          run_of_net ~predicted ~experiment:"E13" ~series:"alg3 majority h=n/4" ~n ~h:(n / 4)
            ~wall_ms net
        in
        (gmw, alg3, Mpc.Gmw.triples_used ~circuit))
  in
  let t =
    Analysis.Table.create ~title:"honest runs, h = n/4 for Alg 3"
      ~columns:[ "n"; "AND gates"; "GMW bits"; "Alg 3 bits"; "winner" ]
  in
  List.iter
    (fun ((gmw : Analysis.Bench_io.run), (alg3 : Analysis.Bench_io.run), gates) ->
      Analysis.Table.add_row t
        [ string_of_int gmw.n; string_of_int gates; fmt_bits gmw.bits; fmt_bits alg3.bits;
          (if gmw.bits < alg3.bits then
             Printf.sprintf "GMW %.1fx" (float_of_int alg3.bits /. float_of_int gmw.bits)
           else Printf.sprintf "Alg3 %.1fx" (float_of_int gmw.bits /. float_of_int alg3.bits))
        ])
    rows;
  Analysis.Table.print t;
  Printf.printf
    "shape check: GMW wins at small n (tiny constants), Algorithm 3 overtakes\n\
     as n grows — the crossover the paper's committee delegation buys.\n\
     GMW also gives no abort guarantee against active adversaries (see\n\
     test_gmw's share-flip attack), unlike every protocol in this library.\n";
  List.concat_map (fun (gmw, alg3, _) -> [ gmw; alg3 ]) rows
  end

(* ------------------------------------------------------------------ *)
(* E14 — Remark 10: poly(lambda, D) vs poly(lambda, C)                 *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14  Remark 10: LWE/depth-based vs OT/size-based instantiation";
  Printf.printf
    "paper: replacing the LWE-based Theorem 9 machinery by two-round OT +\n\
     garbled circuits weakens the assumption but the broadcast payload\n\
     grows with circuit SIZE C instead of depth D.  Left: the Theorem 9\n\
     round-1 payload under both polynomials.  Right: a concrete n = 2 data\n\
     point — our real Yao+LWE-OT protocol vs Algorithm 3 at n = 2.\n\n";
  let t =
    Analysis.Table.create ~title:"Theorem 9 round-1 bytes per party (lambda = 8, 8-bit inputs)"
      ~columns:[ "f"; "D"; "C"; "poly(l,D) bytes"; "poly(l,C) bytes"; "ratio" ]
  in
  List.iter
    (fun (name, circuit) ->
      let d = Circuit.depth circuit and c = Circuit.size circuit in
      let by_depth = Mpc.Cost_model.round1_bytes ~lambda:8 ~depth:d ~input_bits:8 in
      let by_size = Mpc.Cost_model.round1_bytes ~lambda:8 ~depth:c ~input_bits:8 in
      Analysis.Table.add_row t
        [ name; string_of_int d; string_of_int c; string_of_int by_depth;
          string_of_int by_size;
          Analysis.Table.fmt_ratio (float_of_int by_size /. float_of_int by_depth) ])
    [
      ("parity(64)", Circuit.parity ~n:64);
      ("majority(64)", Circuit.majority ~n:64);
      ("sum(16, w=8)", Circuit.sum ~n:16 ~width:8);
      ("auction(16, w=8)", Circuit.second_price_auction ~n:16 ~width:8);
    ];
  Analysis.Table.print t;
  print_newline ();
  (* Yao and Alg 3 share one RNG stream per width (Alg 3's randomness
     continues where Yao's stopped), so both stay in a single job. *)
  let rows =
    par_list [ 2; 4; 8 ] (fun width ->
        let circuit = Circuit.sum ~n:2 ~width in
        let rng = prng width in
        let yao =
          let net = Netsim.Net.create 2 in
          let (), wall_ms =
            timed (fun () ->
                match Mpc.Two_party.run net rng ~circuit ~input_width:width ~x0:1 ~x1:2 with
                | Mpc.Outcome.Output _ -> ()
                | Mpc.Outcome.Abort r -> failwith (Mpc.Outcome.reason_to_string r))
          in
          let predicted =
            let spec = Mpc.Two_party.cost_spec ~circuit ~input_width:width in
            checked_totals ~env:(Analysis.Costs.env []) ~spec net
          in
          run_of_net ~predicted ~experiment:"E14" ~series:(Printf.sprintf "yao w=%d" width)
            ~n:2 ~h:1 ~wall_ms net
        in
        let alg3 =
          let params = Mpc.Params.make ~n:2 ~h:1 ~lambda:8 ~alpha:2 () in
          let pke = (module Crypto.Pke.Regev : Crypto.Pke.S) in
          let config = { Mpc.Mpc_abort.params; pke; circuit; input_width = width } in
          let net = Netsim.Net.create 2 in
          let corruption = Netsim.Corruption.none ~n:2 in
          let obs = Analysis.Costs.Obs.create () in
          let (), wall_ms =
            timed (fun () ->
                ignore
                  (Mpc.Mpc_abort.run ~obs net rng config ~corruption ~inputs:[| 1; 2 |]
                     ~adv:Mpc.Mpc_abort.honest_adv))
          in
          let predicted = alg3_totals ~pke ~circuit ~input_width:width ~n:2 ~obs net in
          run_of_net ~predicted ~experiment:"E14" ~series:(Printf.sprintf "alg3 w=%d" width)
            ~n:2 ~h:1 ~wall_ms net
        in
        (width, yao, alg3))
  in
  let t2 =
    Analysis.Table.create ~title:"concrete n = 2: sum of two w-bit words, measured bits"
      ~columns:[ "w"; "Yao + LWE-OT (Remark 10)"; "Alg 3 (n=2, h=1)" ]
  in
  List.iter
    (fun (width, (yao : Analysis.Bench_io.run), (alg3 : Analysis.Bench_io.run)) ->
      Analysis.Table.add_row t2 [ string_of_int width; fmt_bits yao.bits; fmt_bits alg3.bits ])
    rows;
  Analysis.Table.print t2;
  Printf.printf
    "shape check: the size/depth gap is mild for shallow circuits and grows\n\
     with C/D — Remark 10's trade is visible and quantified.\n";
  List.concat_map (fun (_, yao, alg3) -> [ yao; alg3 ]) rows

(* ------------------------------------------------------------------ *)
(* pool-micro — Util.Pool.map_jobs dispatch overhead                   *)
(* ------------------------------------------------------------------ *)

(* Deliberately sequential and ignores --jobs: each measurement owns its
   pool (created and shut down here), and bechamel's ns/op estimates would
   be distorted by concurrent load.  Trivial jobs isolate pure scheduling
   cost — the atomic job-counter claim, worker wakeup, and result-slot
   write per job — which is the overhead every [Net.run_round] shard and
   every par_list sweep point pays on top of its real work. *)
let pool_micro () =
  section "pool-micro  Util.Pool.map_jobs dispatch overhead (ns/job)";
  let open Bechamel in
  let open Toolkit in
  let njobs = 256 in
  let jobs = Array.init njobs (fun i -> i) in
  let widths = [ 1; 8; 64 ] in
  let pools = List.map (fun d -> (d, Util.Pool.create ~num_domains:d ())) widths in
  let tests =
    List.map
      (fun (d, p) ->
        Test.make
          ~name:(Printf.sprintf "domains-%02d" d)
          (Staged.stage (fun () -> ignore (Util.Pool.map_jobs p jobs (fun x -> x + 1)))))
      pools
  in
  let grouped = Test.make_grouped ~name:"pool" ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg
      ~limit:(pick ~full:1000 ~reduced:200)
      ~stabilize:false
      ~quota:(Time.second (pick ~full:0.25 ~reduced:0.05))
      ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t =
    Analysis.Table.create
      ~title:(Printf.sprintf "%d trivial jobs per call, caller participates" njobs)
      ~columns:[ "pool"; "ns/call"; "ns/job" ]
  in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      Analysis.Table.add_row t
        [ name; Printf.sprintf "%.0f" est; Printf.sprintf "%.1f" (est /. float_of_int njobs) ])
    (List.sort compare rows);
  Analysis.Table.print t;
  Printf.printf
    "shape check: ns/job grows with pool width on a loaded machine (more\n\
     workers contending for the same counter) — batching per shard, as\n\
     run_round does, is what keeps the overhead amortized.\n";
  List.iter (fun (_, p) -> Util.Pool.shutdown p) pools;
  []

(* ------------------------------------------------------------------ *)
(* fp-micro — single-pass multi-prime fingerprint kernel throughput    *)
(* ------------------------------------------------------------------ *)

(* Byte/prime throughput of the E9 hot-loop kernel: [residues_many]
   (one pass per cache block, all primes per word) against the reference
   per-prime [residue] sweep, at message sizes 64B..1MB and prime counts
   t = 1/8/64.  Deliberately sequential and ignores --jobs, like E12 and
   pool-micro: bechamel's ns/op estimates would be distorted by
   concurrent load.  The t = 1 rows pin the kernel's no-win floor (one
   prime has nothing to interleave); the t = 64 rows are where the
   independent division chains overlap and the message is read once
   instead of 64 times. *)
let fp_micro () =
  section "fp-micro  Fingerprint.residues_many vs per-prime residue";
  let open Bechamel in
  let open Toolkit in
  let rng = prng 4242 in
  let sizes =
    pick ~full:[ 64; 4096; 65536; 1048576 ] ~reduced:[ 64; 65536 ]
  in
  let ts = pick ~full:[ 1; 8; 64 ] ~reduced:[ 1; 8 ] in
  let cases =
    List.concat_map
      (fun size ->
        let msg = Util.Prng.bytes rng size in
        List.map (fun t -> (size, t, msg, Crypto.Fingerprint.sample_primes rng t)) ts)
      sizes
  in
  let tests =
    List.concat_map
      (fun (size, t, msg, primes) ->
        let name impl = Printf.sprintf "%s-%dB-t%02d" impl size t in
        [
          Test.make ~name:(name "many")
            (Staged.stage (fun () -> Crypto.Fingerprint.residues_many msg primes));
          Test.make ~name:(name "loop")
            (Staged.stage (fun () -> Array.map (Crypto.Fingerprint.residue msg) primes));
        ])
      cases
  in
  let grouped = Test.make_grouped ~name:"fp" ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg
      ~limit:(pick ~full:1000 ~reduced:200)
      ~stabilize:false
      ~quota:(Time.second (pick ~full:0.25 ~reduced:0.05))
      ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t =
    Analysis.Table.create ~title:"throughput = msg bytes x primes / wall"
      ~columns:[ "case"; "ns/op"; "MBxprime/s" ]
  in
  let est_of name =
    match Hashtbl.find_opt results name with
    | Some r -> (match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan)
    | None -> nan
  in
  List.iter
    (fun (size, tcount, _, _) ->
      List.iter
        (fun impl ->
          let name = Printf.sprintf "fp/%s-%dB-t%02d" impl size tcount in
          let est = est_of name in
          let mbps = float_of_int (size * tcount) /. est *. 1000.0 in
          Analysis.Table.add_row t
            [ name; Printf.sprintf "%.0f" est; Printf.sprintf "%.0f" mbps ])
        [ "many"; "loop" ])
    cases;
  Analysis.Table.print t;
  Printf.printf
    "shape check: many/loop converge at t = 1 and diverge as t grows —\n\
     the kernel's win is one message sweep (and overlapped divisions)\n\
     for all t primes, so it scales with t while loop pays t sweeps.\n";
  []

(* ------------------------------------------------------------------ *)
(* cost-audit — symbolic cost specs vs measured accounting             *)
(* ------------------------------------------------------------------ *)

(* --only cost-audit: one honest execution of every protocol with a cost
   spec; each spec's per-phase breakdown is printed next to the measured
   counters and the totals are asserted — bits within the declared slack,
   messages and rounds exact.  Any mismatch fails the invocation with
   exit 1 (through [cost_mismatch]), which is what CI gates on.  Gossip
   and Enc_func have no standalone case here because their entry points
   need a routing graph / an elected committee; their specs are exercised
   through every pipeline that embeds them (local-committee, Thm 2,
   Alg 3, Alg 8).  Closes with the extrapolation table: the closed-form
   specs evaluated at n = 10⁴..10⁶ — three orders of magnitude past what
   the simulator executes — at the paper's h regimes. *)
let cost_audit () =
  section "cost-audit  Symbolic cost specs vs measured accounting";
  let n = pick ~full:48 ~reduced:16 in
  let h = n / 2 in
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
  let corruption = Netsim.Corruption.none ~n in
  let open Analysis.Costs in
  let a2a_case variant =
    let spec =
      Mpc.All_to_all.cost_spec ~variant ~k:(Const n)
        ~idsum:(Const (varint_sum_ids (List.init n (fun i -> i))))
        ~len:(Const 64) ~n:(Const n) ~lambda:(Const 8)
    in
    fun () ->
      let net = Netsim.Net.create n in
      let rng = prng 43 in
      ignore
        (Mpc.All_to_all.run net rng params ~variant
           ~participants:(List.init n (fun i -> i))
           ~input:(fun i -> Bytes.make 64 (Char.chr (65 + (i mod 26))))
           ~corruption ~adv:Mpc.All_to_all.honest_adv);
      (net, spec, env [])
  in
  let cases : (unit -> Netsim.Net.t * spec * env) list =
    [
      (fun () ->
        let eqp = Mpc.Params.make ~n:64 ~h:32 ~lambda:8 ~alpha:2 () in
        let net = Netsim.Net.create 2 in
        let rng = prng 41 in
        let m = Util.Prng.bytes rng 1024 in
        ignore (Mpc.Equality.run net rng eqp ~p1:0 ~p2:1 ~m1:m ~m2:(Bytes.copy m));
        (net, Mpc.Equality.cost_spec_run ~n:(Const 64) ~lambda:(Const 8) ~len:(Const 1024),
         env []));
      (fun () ->
        let net = Netsim.Net.create n in
        let rng = prng 42 in
        ignore
          (Mpc.Broadcast.run net rng params ~variant:Mpc.Broadcast.Naive ~sender:0
             ~value:(Bytes.make 64 'v') ~corruption ~adv:Mpc.Broadcast.honest_adv);
        ( net,
          Mpc.Broadcast.cost_spec ~variant:Mpc.Broadcast.Naive ~n:(Const n) ~lambda:(Const 8)
            ~len:(Const 64),
          env [] ));
      (fun () ->
        let net = Netsim.Net.create n in
        let rng = prng 42 in
        ignore
          (Mpc.Broadcast.run net rng params ~variant:Mpc.Broadcast.Fingerprinted ~sender:0
             ~value:(Bytes.make 64 'v') ~corruption ~adv:Mpc.Broadcast.honest_adv);
        ( net,
          Mpc.Broadcast.cost_spec ~variant:Mpc.Broadcast.Fingerprinted ~n:(Const n)
            ~lambda:(Const 8) ~len:(Const 64),
          env [] ));
      a2a_case Mpc.All_to_all.Naive;
      a2a_case Mpc.All_to_all.Fingerprinted;
      (fun () ->
        let net = Netsim.Net.create n in
        let rng = prng 44 in
        let obs = Obs.create () in
        ignore
          (Mpc.Sparse_network.run ~obs net rng params ~corruption
             ~adv:Mpc.Sparse_network.honest_adv);
        ( net,
          Mpc.Sparse_network.cost_spec ~n:(Const n) ~h:(Const h) ~lambda:(Const 8)
            ~alpha:(Const 2),
          env ~obs [] ));
      (fun () ->
        (* Standalone gossip over a deterministic degree-4 graph (ring +
           distance-2 chords): every party hears the rumor, so the spec's
           max_locality formula (graph_degmax) is exact. *)
        let net = Netsim.Net.create n in
        let rng = prng 52 in
        let graph =
          Array.init n (fun i ->
              Util.Iset.of_list
                [ (i + 1) mod n; (i + n - 1) mod n; (i + 2) mod n; (i + n - 2) mod n ])
        in
        let obs = Obs.create () in
        ignore
          (Mpc.Gossip.run ~obs net rng params ~graph
             ~sources:[ (0, Bytes.make 64 'r') ]
             ~corruption ~adv:Mpc.Gossip.honest_adv);
        (net, Mpc.Gossip.cost_spec ~len:(Const 64), env ~obs []));
      (fun () ->
        let net = Netsim.Net.create n in
        let rng = prng 45 in
        let obs = Obs.create () in
        ignore (Mpc.Committee.run ~obs net rng params ~corruption ~adv:Mpc.Committee.honest_adv);
        (net, Mpc.Committee.cost_spec ~n:(Const n) ~lambda:(Const 8), env ~obs []));
      (fun () ->
        let net = Netsim.Net.create n in
        let rng = prng 46 in
        let obs = Obs.create () in
        ignore
          (Mpc.Local_committee.run ~obs net rng params ~corruption
             ~adv:Mpc.Local_committee.honest_adv);
        ( net,
          Mpc.Local_committee.cost_spec ~n:(Const n) ~h:(Const h) ~lambda:(Const 8)
            ~alpha:(Const 2),
          env ~obs [] ));
      (fun () ->
        let pke = sim_pke 47 in
        let circuit = Circuit.parity ~n in
        let config = { Mpc.Mpc_abort.params; pke; circuit; input_width = 1 } in
        let net = Netsim.Net.create n in
        let rng = prng 47 in
        let obs = Obs.create () in
        ignore
          (Mpc.Mpc_abort.run ~obs net rng config ~corruption
             ~inputs:(Array.init n (fun i -> i land 1))
             ~adv:Mpc.Mpc_abort.honest_adv);
        ( net,
          Mpc.Mpc_abort.cost_spec ~pke
            ~depth:(Const (Circuit.depth circuit))
            ~input_width:(Const 1)
            ~out_bits:(Const (Circuit.num_outputs circuit))
            ~n:(Const n) ~lambda:(Const 8),
          env ~obs [] ));
      (fun () ->
        let circuit = Circuit.parity ~n in
        let config = { Mpc.Local_mpc.params; pke = sim_pke 48; circuit; input_width = 1 } in
        let net = Netsim.Net.create n in
        let rng = prng 48 in
        let obs = Obs.create () in
        ignore
          (Mpc.Local_mpc.run_theorem2 ~obs net rng config ~corruption
             ~inputs:(Array.init n (fun i -> i land 1))
             ~adv:Mpc.Local_mpc.honest_theorem2_adv);
        ( net,
          Mpc.Local_mpc.cost_spec_theorem2 ~n:(Const n) ~h:(Const h) ~lambda:(Const 8)
            ~alpha:(Const 2)
            ~depth:(Const (Circuit.depth circuit))
            ~input_width:(Const 1)
            ~out_bits:(Const (Circuit.num_outputs circuit)),
          env ~obs [] ));
      (fun () ->
        let pke = sim_pke 49 in
        let circuit = Circuit.parity ~n in
        let config = { Mpc.Local_mpc.params; pke; circuit; input_width = 1 } in
        let net = Netsim.Net.create n in
        let rng = prng 49 in
        let obs = Obs.create () in
        ignore
          (Mpc.Local_mpc.run_theorem4 ~obs net rng config ~corruption
             ~inputs:(Array.init n (fun i -> i land 1))
             ~adv:Mpc.Local_mpc.honest_theorem4_adv);
        ( net,
          Mpc.Local_mpc.cost_spec_theorem4 ~pke
            ~depth:(Const (Circuit.depth circuit))
            ~input_width:(Const 1)
            ~out_bits:(Const (Circuit.num_outputs circuit))
            ~n:(Const n) ~h:(Const h) ~lambda:(Const 8) ~alpha:(Const 2),
          env ~obs [] ));
      (fun () ->
        let ng = 32 in
        let circuit = Circuit.majority ~n:ng in
        let net = Netsim.Net.create ng in
        let rng = prng 50 in
        ignore
          (Mpc.Gmw.run net rng ~circuit ~input_width:1
             ~inputs:(Array.init ng (fun i -> i land 1))
             ~corruption:(Netsim.Corruption.none ~n:ng) ~adv:Mpc.Gmw.honest_adv);
        (net, Mpc.Gmw.cost_spec ~circuit ~input_width:1 ~n:(Const ng), env []));
      (fun () ->
        let circuit = Circuit.sum ~n:2 ~width:8 in
        let net = Netsim.Net.create 2 in
        let rng = prng 51 in
        (match Mpc.Two_party.run net rng ~circuit ~input_width:8 ~x0:3 ~x1:5 with
        | Mpc.Outcome.Output _ -> ()
        | Mpc.Outcome.Abort r -> failwith (Mpc.Outcome.reason_to_string r));
        (net, Mpc.Two_party.cost_spec ~circuit ~input_width:8, env []));
    ]
  in
  let all_ok = ref true in
  List.iter
    (fun case ->
      let net, spec, e = case () in
      let bits = Netsim.Net.total_bits net
      and messages = Netsim.Net.messages_sent net
      and rounds = Netsim.Net.rounds net in
      let v = check ~locality:(Netsim.Net.max_locality net) e spec ~bits ~messages ~rounds in
      Analysis.Table.print (phase_table e spec);
      Printf.printf "measured: %d bits, %d messages, %d rounds -> %s\n\n" bits messages
        rounds
        (if v.ok then "OK" else "MISMATCH");
      if not v.ok then begin
        all_ok := false;
        cost_mismatch := true;
        List.iter (Printf.printf "  %s\n") v.detail
      end)
    cases;
  Printf.printf "cost-audit: %s\n"
    (if !all_ok then "all specs match the measured accounting"
     else "MISMATCHES FOUND (exit 1)");
  (* Extrapolation: the closed-form specs evaluated where the simulator
     cannot follow.  The naive all-to-all column stops at n = 10^5: at
     10^6 its O(n^3 l) bit count overflows 63-bit arithmetic — which is
     the paper's point about that baseline.  Pipeline specs (Alg 3,
     Thm 2/4) consume realized observables, so they extrapolate through
     EXPERIMENTS.md's formulas rather than this table. *)
  let e = env [] in
  let isqrt x = int_of_float (sqrt (float_of_int x)) in
  let t =
    Analysis.Table.create
      ~title:"closed-form extrapolation (lambda = 8, 64-byte inputs, bits upper bounds)"
      ~columns:
        [ "n"; "h"; "sparse net"; "a2a naive"; "a2a fingerprinted"; "equality 1MB" ]
  in
  List.iter
    (fun (np, hp) ->
      let sparse =
        (totals e
           (Mpc.Sparse_network.cost_spec ~n:(Const np) ~h:(Const hp) ~lambda:(Const 8)
              ~alpha:(Const 2)))
          .bits_hi
      in
      let a2a variant =
        (totals e
           (Mpc.All_to_all.cost_spec ~variant ~k:(Const np)
              ~idsum:(sum_varint_below (Const np))
              ~len:(Const 64) ~n:(Const np) ~lambda:(Const 8)))
          .bits_hi
      in
      let eq =
        (totals e
           (Mpc.Equality.cost_spec_run ~n:(Const np) ~lambda:(Const 8)
              ~len:(Const 1_000_000)))
          .bits_hi
      in
      Analysis.Table.add_row t
        [ string_of_int np; string_of_int hp; fmt_bits sparse;
          (if np > 100_000 then "overflow" else fmt_bits (a2a Mpc.All_to_all.Naive));
          fmt_bits (a2a Mpc.All_to_all.Fingerprinted); fmt_bits eq ])
    (List.concat_map
       (fun np -> [ (np, np / 4); (np, isqrt np) ])
       [ 10_000; 100_000; 1_000_000 ]);
  Analysis.Table.print t;
  Printf.printf
    "the factor-n gap between the all-to-all columns is Sec 2.1's claim,\n\
     now as evaluated formulas rather than fitted exponents.\n";
  []

(* ------------------------------------------------------------------ *)
(* soak — Byzantine fault-injection sweep (opt-in via --only soak)      *)
(* ------------------------------------------------------------------ *)

(* --schedules K: how many fault schedules the sweep covers (default 200,
   30 under --quick).  --schedule K: replay exactly one schedule id and
   print each case verbosely — the command the soak runner prints for any
   violation.  Both set once at startup. *)
let soak_schedules : int option ref = ref None
let soak_schedule : int option ref = ref None

let soak () =
  let seed = match !base_seed with Some s -> s | None -> 1 in
  let describe_count rep =
    Printf.sprintf "%d cases over %d schedules" rep.Mpc.Soak.total_cases
      rep.Mpc.Soak.total_schedules
  in
  let async = !async_mode in
  (match !soak_schedule with
  | Some k ->
    (* Replay mode: one schedule id, every protocol, verbose verdicts. *)
    section
      (Printf.sprintf "soak replay: seed %d, schedule %d%s" seed k
         (if async then " (async event transport)" else ""));
    let cases = Mpc.Soak.run_schedule ~async ~seed ~schedule:k () in
    List.iter
      (fun c ->
        match c.Mpc.Soak.violation with
        | None ->
          Printf.printf "ok        %-16s n=%-3d h=%-3d spec: %s\n" c.Mpc.Soak.protocol
            c.Mpc.Soak.n c.Mpc.Soak.h
            (Netsim.Faults.spec_to_string c.Mpc.Soak.spec)
        | Some _ -> print_endline (Mpc.Soak.describe (Mpc.Soak.shrink c)))
      cases;
    if List.exists (fun c -> c.Mpc.Soak.violation <> None) cases then exit 1
  | None ->
    let schedules =
      match !soak_schedules with Some k -> k | None -> pick ~full:200 ~reduced:30
    in
    let plist = if async then Mpc.Soak.async_protocols else Mpc.Soak.protocols in
    section
      (Printf.sprintf "soak%s: %d fault schedules x %d protocols, seed %d"
         (if async then " (async event transport)" else "")
         schedules (List.length plist) seed);
    let rep = Mpc.Soak.run_sweep ?pool:!pool ~async ~seed ~schedules () in
    Printf.printf "%s: %d violation(s)\n" (describe_count rep)
      (List.length rep.Mpc.Soak.violations);
    List.iter (fun c -> print_endline (Mpc.Soak.describe c)) rep.Mpc.Soak.violations;
    (* Mutation sanity check: the deliberately broken broadcast variant
       (echo-equality check disabled) must be flagged within the same
       budget, proving the harness can actually fail. *)
    let cn = Mpc.Soak.canary ?pool:!pool ~seed ~schedules:(min schedules 30) () in
    Printf.printf "canary broken-broadcast (%s): %d violation(s) — %s\n" (describe_count cn)
      (List.length cn.Mpc.Soak.violations)
      (if cn.Mpc.Soak.violations = [] then "NOT caught (harness failure)"
       else "caught, as required");
    (match cn.Mpc.Soak.violations with
    | c :: _ -> print_endline (Mpc.Soak.describe c)
    | [] -> ());
    if rep.Mpc.Soak.violations <> [] || cn.Mpc.Soak.violations = [] then exit 1);
  []

(* ------------------------------------------------------------------ *)
(* dist-serve — multi-process session serving (--workers N)            *)
(* ------------------------------------------------------------------ *)

(* The worker fleet, created in main() BEFORE the domain pool (forking a
   multi-domain OCaml runtime is undefined) and only when
   [--only dist-serve --workers N>0] asks for it. *)
let dist_engine : Netsim.Dist.t option ref = ref None
let dist_workers = ref 0
let dist_crash = ref None (* --crash-schedule S *)

(* Domains available to each worker's inner pool: the --jobs budget
   split across the fleet.  Set before the fork so children inherit it;
   each worker lazily creates (and caches) its own pool — domains must
   never exist in the pre-fork image. *)
let dist_inner_jobs = ref 0
let dist_worker_pool : (int * Util.Pool.t) option ref = ref None

let dist_job_pool () =
  let inner = !dist_inner_jobs in
  if inner <= 0 then None
  else
    match !dist_worker_pool with
    | Some (d, p) when d = inner -> Some p
    | _ ->
      let p = Util.Pool.create ~num_domains:inner () in
      dist_worker_pool := Some (inner, p);
      Some p

(* Wire form of a run record for job results.  peak_rss_mb is filled by
   [run_of_net] in the worker process, so the coordinator's report
   carries genuine per-worker high-water marks. *)
let encode_run w (r : Analysis.Bench_io.run) =
  let open Util.Codec in
  write_string w r.Analysis.Bench_io.experiment;
  write_string w r.series;
  write_varint w r.n;
  write_varint w r.h;
  write_varint w r.bits;
  write_varint w r.messages;
  write_varint w r.rounds;
  write_int64 w (Int64.bits_of_float r.wall_ms);
  write_option w (fun w s -> write_int64 w (Int64.of_int s)) r.seed;
  write_option w (fun w f -> write_int64 w (Int64.bits_of_float f)) r.peak_rss_mb;
  write_option w write_varint r.predicted_bits;
  write_option w write_varint r.predicted_bits_lo;
  write_option w write_varint r.predicted_messages;
  write_option w write_varint r.predicted_rounds

let decode_run r =
  let open Util.Codec in
  let experiment = read_string r in
  let series = read_string r in
  let n = read_varint r in
  let h = read_varint r in
  let bits = read_varint r in
  let messages = read_varint r in
  let rounds = read_varint r in
  let wall_ms = Int64.float_of_bits (read_int64 r) in
  let seed = read_option r (fun r -> Int64.to_int (read_int64 r)) in
  let peak_rss_mb = read_option r (fun r -> Int64.float_of_bits (read_int64 r)) in
  let predicted_bits = read_option r read_varint in
  let predicted_bits_lo = read_option r read_varint in
  let predicted_messages = read_option r read_varint in
  let predicted_rounds = read_option r read_varint in
  {
    Analysis.Bench_io.experiment;
    series;
    n;
    h;
    bits;
    messages;
    rounds;
    wall_ms;
    seed;
    peak_rss_mb;
    predicted_bits;
    predicted_bits_lo;
    predicted_messages;
    predicted_rounds;
  }

(* Job bodies run the exact huge-tier row helpers; the result frame
   carries the row plus whether its cost-spec assertion tripped (the
   flag lives per-process, so workers report and the coordinator ORs). *)
let () =
  let with_mismatch_flag f =
    let before = !cost_mismatch in
    cost_mismatch := false;
    let row = f () in
    let tripped = !cost_mismatch in
    cost_mismatch := before || tripped;
    Util.Codec.encode
      (fun w () ->
        Util.Codec.write_bool w tripped;
        encode_run w row)
      ()
  in
  Netsim.Dist.register_job "bench.e1" (fun args ->
      let n = Util.Codec.decode Util.Codec.read_varint args in
      with_mismatch_flag (fun () -> e1_row ?pool:(dist_job_pool ()) n));
  Netsim.Dist.register_job "bench.e9fp" (fun args ->
      let n = Util.Codec.decode Util.Codec.read_varint args in
      with_mismatch_flag (fun () ->
          e9_row ?pool:(dist_job_pool ()) ~n "fingerprinted 64B" Mpc.All_to_all.Fingerprinted));
  Mpc.Dist_programs.register ()

let e_dist_serve () =
  let workers = !dist_workers in
  section
    (if workers > 0 then
       Printf.sprintf "dist-serve  sessions over %d worker process%s" workers
         (if workers = 1 then "" else "es")
     else "dist-serve  in-process reference (--workers 0)");
  Printf.printf
    "naive all-to-all sessions shard their parties over the fleet via\n\
     Dist.run_program (gathered sends replay through the in-process\n\
     simulator in canonical order, so accounting is byte-identical at any\n\
     --workers count), and the huge-tier E1/E9 rows run as jobs over the\n\
     same fleet.  --diff against a --workers 0 report gates the identity.\n\n";
  (* A --crash-schedule derives which worker dies, and when, from the
     same keyed Faults machinery the soak runner uses: crash stages 1/2
     map to the scatter of rounds 1/2 of the first session. *)
  let crash_point =
    match !dist_crash with
    | Some s when workers > 0 ->
      let faults =
        Netsim.Faults.make (prng 0xD157) ~schedule:s ~n:workers
          { Netsim.Faults.honest with crash = 1.0; crash_stage = 2 }
      in
      let w =
        match
          List.find_opt
            (fun w -> Netsim.Faults.crashed faults ~me:w ~stage:2)
            (List.init workers (fun w -> w))
        with
        | Some w -> w
        | None -> 0
      in
      let r = if Netsim.Faults.crashed faults ~me:w ~stage:1 then 1 else 2 in
      Printf.printf
        "crash schedule %d: worker %d dies on the round-%d scatter of the first session\n\
         and while running its first job; both recover by spare promotion + replay.\n\n"
        s w r;
      Some (w, r)
    | _ -> None
  in
  let serve_row i n =
    let args = Mpc.Dist_programs.encode_args ~len:64 ~info:"e9" in
    let net = Netsim.Net.create n in
    let crash = if i = 0 then crash_point else None in
    let verdicts, wall_ms =
      timed (fun () ->
          match !dist_engine with
          | Some t -> Netsim.Dist.run_program ?crash t ~name:"a2a.naive" ~n ~args ~net
          | None -> Netsim.Dist.run_local ~name:"a2a.naive" ~n ~args ~net)
    in
    Array.iteri
      (fun i v ->
        if Util.Codec.read_varint (Util.Codec.reader v) <> 1 then
          failwith (Printf.sprintf "dist-serve: party %d aborted in an honest session" i))
      verdicts;
    let predicted = a2a_totals ~variant:Mpc.All_to_all.Naive ~n ~len:64 net in
    run_of_net ~predicted ~experiment:"E9" ~series:"naive 64B" ~n ~h:(n / 2) ~wall_ms net
  in
  let session_rows = List.mapi serve_row (pick ~full:[ 64; 128 ] ~reduced:[ 64 ]) in
  let job_specs =
    List.map (fun n -> ("bench.e1", n)) (pick ~full:[ 512; 1024; 2048 ] ~reduced:[ 512 ])
    @ List.map (fun n -> ("bench.e9fp", n)) (pick ~full:[ 256; 512; 1024; 2048 ] ~reduced:[ 1024 ])
  in
  let job_rows =
    match !dist_engine with
    | Some t ->
      let jobs =
        List.map
          (fun (name, n) ->
            (name, Util.Codec.encode (fun w () -> Util.Codec.write_varint w n) ()))
          job_specs
      in
      let crash_job = Option.map (fun (w, _) -> w mod List.length jobs) crash_point in
      Netsim.Dist.run_jobs ?crash:crash_job t jobs
      |> List.map (fun b ->
             let tripped, row =
               Util.Codec.decode
                 (fun r ->
                   let tripped = Util.Codec.read_bool r in
                   (tripped, decode_run r))
                 b
             in
             if tripped then cost_mismatch := true;
             row)
    | None ->
      List.map
        (fun (name, n) ->
          if name = "bench.e1" then e1_row ?pool:!pool n
          else e9_row ?pool:!pool ~n "fingerprinted 64B" Mpc.All_to_all.Fingerprinted)
        job_specs
  in
  let rows = session_rows @ job_rows in
  let t =
    Analysis.Table.create ~title:"served rows (session + job)"
      ~columns:[ "experiment"; "series"; "n"; "bits"; "wall ms"; "rss MB" ]
  in
  List.iter
    (fun (r : Analysis.Bench_io.run) ->
      Analysis.Table.add_row t
        [ r.experiment; r.series; string_of_int r.n; fmt_bits r.bits;
          Printf.sprintf "%.0f" r.wall_ms;
          (match r.peak_rss_mb with Some f -> Printf.sprintf "%.0f" f | None -> "-") ])
    rows;
  Analysis.Table.print t;
  (match !dist_engine with
  | Some t ->
    let stats = Netsim.Dist.stats t in
    let tt =
      Analysis.Table.create ~title:"worker fleet"
        ~columns:[ "worker"; "pid"; "sessions"; "jobs"; "respawns"; "peak_rss_mb" ]
    in
    Array.iteri
      (fun i (s : Netsim.Dist.stat) ->
        Analysis.Table.add_row tt
          [ string_of_int i; string_of_int s.pid; string_of_int s.sessions;
            string_of_int s.jobs_run; string_of_int s.respawns;
            (match s.peak_rss_mb with Some f -> Printf.sprintf "%.0f" f | None -> "-") ])
      stats;
    Analysis.Table.print tt
  | None -> ());
  rows

(* ------------------------------------------------------------------ *)

let experiments : (string * string * (unit -> Analysis.Bench_io.run list)) list =
  [
    ("E1", "Theorem 1: Alg 3 communication O~(n^2/h)", e1);
    ("E2", "Theorem 2: gossip MPC O~(n^3/h), locality O~(n/h)", e2);
    ("E3", "Theorem 4: Alg 8 O~(n^3/h^1.5), locality O~(n/sqrt h)", e3);
    ("E4", "Theorem 3: lower bound isolation attack", e4);
    ("E5", "Lemma 5: succinct equality testing", e5);
    ("E6", "Claims 12/14: committee election", e6);
    ("E7", "Claim 20: sparse network", e7);
    ("E8", "Claim 23: covering", e8);
    ("E9", "Sec 2.1: naive vs fingerprinted all-to-all", e9);
    ("E10", "Equation (1): Alg 8 phase balance", e10);
    ("E11", "round complexity", e11);
    ("E12", "crypto microbenchmarks", e12);
    ("E13", "baseline: GMW vs Algorithm 3 crossover", e13);
    ("E14", "Remark 10: depth-based vs size-based cost", e14);
    ("pool-micro", "Pool.map_jobs dispatch overhead (ns/job)", pool_micro);
    ("fp-micro", "Fingerprint kernel byte/prime throughput", fp_micro);
  ]

(* Opt-in experiments: runnable via --only, never part of the default
   sweep (soak is adversarial — it contributes no honest-cost run records
   and gates on predicates instead). *)
let extra_experiments : (string * string * (unit -> Analysis.Bench_io.run list)) list =
  [
    ("soak", "Byzantine fault-injection soak (--seed S --schedules K | --schedule K)", soak);
    ( "cost-audit",
      "symbolic cost specs vs measured counters (+ n=10^4..10^6 extrapolation)",
      cost_audit );
    ( "dist-serve",
      "sessions + jobs over sharded worker processes (--workers N, --crash-schedule S)",
      e_dist_serve );
  ]

let all_experiments = experiments @ extra_experiments

let valid_ids () = String.concat " " (List.map (fun (id, _, _) -> id) all_experiments)

(* --list metadata: which tier flags cover each experiment and what each
   tier sweeps.  Hand-maintained next to the experiment bodies above —
   when a sweep changes, change its line here in the same commit. *)
let sweep_info : (string * string * string list) list =
  [
    ( "E1", "full quick huge",
      [ "full:  n in {64..512} h=n/4; n in {48..288} h=12; h in {16..224} n=256";
        "huge:  n in {512,1024,2048} h=n/4 (--quick: n=512)" ] );
    ( "E2", "full quick",
      [ "full:  n in {32,64,96,128} h=n/4; h in {12,24,48,80} n=96" ] );
    ( "E3", "full quick",
      [ "full:  n in {32,64,96,128,160} h=n/4; h in {16,32,64,100} n=128" ] );
    ( "E4", "full quick",
      [ "full:  n=96, h in {4,12} x degree in {1..32}, 400 trials (--quick: 80)" ] );
    ( "E5", "full quick",
      [ "full:  lambda in {2,4,8} x 1000 pairs; |m| in {1e2..1e6} bytes" ] );
    ( "E6", "full quick",
      [ "full:  (n,h) in {(64,16)..(512,128)}, 20 trials (--quick: drops n=512, 5 trials)" ] );
    ( "E7", "full quick giant",
      [ "full:  (n,h) in {(64,16)..(512,256)}, 20 trials (--quick: drops n=512, 5 trials)";
        "giant: Net.Sparse, (n,h,trials) in {(1e4,2500,2),(1e5,5e4,1),(1e6,1e6,1)} (--quick: (1e4,2500,1))" ] );
    ( "E8", "full quick giant",
      [ "full:  (n,h) in {(64,32)..(512,256)}, 50 trials (--quick: 20)";
        "giant: (n,h,trials) in {(1e4,2500,3),(1e5,5e4,2),(1e6,1e6,1)} (--quick: (1e4,2500,1))" ] );
    ( "E9", "full quick huge",
      [ "full:  n in {8,16,32,48}, naive vs fingerprinted, 512B inputs";
        "huge:  naive n in {64,128}; fingerprinted n in {256..2048} (--quick: 64 / 1024), 64B inputs" ] );
    ( "E10", "full quick",
      [ "full:  n=96 h=25, cover size s in {1,2,5,19,38,96} (--quick: {2,5,19,38})" ] );
    ( "E11", "full quick", [ "both:  n=48 h=24, one round-count row per protocol" ] );
    ( "E12", "full quick",
      [ "both:  crypto primitive ns/op (bechamel); --quick shrinks quotas; ignores --jobs" ] );
    ( "E13", "full quick huge",
      [ "full:  n in {16..384} both protocols (--quick: n <= 128)";
        "huge:  gmw n=384, alg3 n in {512,1024,2048} (--quick: 128 / 512)" ] );
    ( "E14", "full quick", [ "both:  widths w in {2,4,8}; Yao+LWE-OT vs Alg 3 at n=2" ] );
    ( "pool-micro", "full quick",
      [ "both:  pool widths {1,8,64}, 256 jobs/call; ignores --jobs" ] );
    ( "fp-micro", "full quick",
      [ "full:  sizes {64,4K,64K,1M} x t in {1,8,64} (--quick: {64,64K} x {1,8}); ignores --jobs" ] );
    ( "soak", "opt-in (--only soak)",
      [ "sweep: 200 fault schedules (--quick: 30); --schedules K / --schedule K override";
        "--async: every case on a derived adversarially-scheduled event transport" ] );
    ( "cost-audit", "opt-in (--only cost-audit)",
      [ "14 honest executions, one per cost spec, phase tables + assertions";
        "closed-form extrapolation table at n = 10^4..10^6" ] );
    ( "dist-serve", "opt-in (--only dist-serve)",
      [ "sessions: naive a2a n in {64,128} via Dist.run_program (--quick: {64})";
        "jobs: E1 n in {512..2048}, E9 fp n in {256..2048} over the fleet (--quick: 512 / 1024)";
        "--workers N shards over N processes (0 = in-process reference);";
        "--crash-schedule S kills one worker mid-round + mid-job, recovered by replay" ] );
  ]

(* --audit FILE: re-check a saved report against the symbolic cost specs
   without re-running any protocol.  Two kinds of checks:
   - any record carrying predicted_* fields is checked for internal
     consistency (measured bits within [lo, hi], messages/rounds equal);
   - E7 and E8 records are re-derived from the closed-form specs even
     when the report predates the predicted_* fields (the giant
     baselines): trial count is parsed from the series label, E7's
     per-trial sparse-network spec is scaled by it (giant tier runs
     alpha = 2, the full tier alpha = 3), and E8's network-free Monte
     Carlo gets the zero spec.
   Exits 1 on any mismatch so CI can gate dated baselines on it. *)
let audit_report path =
  let rep =
    try Analysis.Bench_io.load path with
    | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | Failure msg | Analysis.Json.Parse_error msg ->
      Printf.eprintf "error: %s is not a bench report: %s\n" path msg;
      exit 1
  in
  let checked = ref 0 and mismatched = ref 0 and skipped = ref 0 in
  let scan fmt s = try Some (Scanf.sscanf s fmt (fun k -> k)) with _ -> None in
  List.iter
    (fun (r : Analysis.Bench_io.run) ->
      let check_against (t : Analysis.Costs.totals) =
        incr checked;
        let complain fmt =
          Printf.ksprintf
            (fun msg ->
              incr mismatched;
              Printf.printf "MISMATCH %s / %s (n=%d h=%d): %s\n" r.experiment r.series r.n
                r.h msg)
            fmt
        in
        if r.bits < t.Analysis.Costs.bits_lo || r.bits > t.Analysis.Costs.bits_hi then
          complain "bits %d outside predicted [%d, %d]" r.bits t.Analysis.Costs.bits_lo
            t.Analysis.Costs.bits_hi;
        if r.messages <> t.Analysis.Costs.messages then
          complain "messages %d <> predicted %d" r.messages t.Analysis.Costs.messages;
        if r.rounds <> t.Analysis.Costs.rounds then
          complain "rounds %d <> predicted %d" r.rounds t.Analysis.Costs.rounds
      in
      let scale k (t : Analysis.Costs.totals) =
        {
          Analysis.Costs.bits_hi = k * t.Analysis.Costs.bits_hi;
          bits_lo = k * t.Analysis.Costs.bits_lo;
          messages = k * t.Analysis.Costs.messages;
          rounds = k * t.Analysis.Costs.rounds;
        }
      in
      match r.experiment with
      | "E7" -> (
        let sparse alpha =
          let open Analysis.Costs in
          totals (env [])
            (Mpc.Sparse_network.cost_spec ~n:(Const r.n) ~h:(Const r.h) ~lambda:(Const 8)
               ~alpha:(Const alpha))
        in
        match (scan "giant %d-trial total" r.series, scan "%d-trial total" r.series) with
        | Some k, _ -> check_against (scale k (sparse 2))
        | None, Some k -> check_against (scale k (sparse 3))
        | None, None -> incr skipped)
      | "E8" ->
        (* Network-free Monte Carlo: every counter must be zero. *)
        check_against zero_totals
      | _ -> (
        match (r.predicted_bits, r.predicted_messages, r.predicted_rounds) with
        | Some hi, Some m, Some rr ->
          check_against
            {
              Analysis.Costs.bits_hi = hi;
              bits_lo = Option.value r.predicted_bits_lo ~default:hi;
              messages = m;
              rounds = rr;
            }
        | _ -> incr skipped))
    rep.Analysis.Bench_io.runs;
  Printf.printf
    "audited %s: %d run records, %d checked against specs, %d without predictions, %d \
     mismatches\n"
    path
    (List.length rep.Analysis.Bench_io.runs)
    !checked !skipped !mismatched;
  if !checked = 0 then begin
    Printf.eprintf "error: nothing to audit — no record carries predictions or a closed form\n";
    exit 1
  end;
  exit (if !mismatched > 0 then 1 else 0)

let iso_date () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

let find_arg args flag =
  let rec go = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go args

let parse_jobs s =
  if s = "max" then Util.Pool.default_num_domains () + 1
  else
    match int_of_string_opt s with
    | Some j when j >= 1 -> j
    | _ ->
      Printf.eprintf "error: --jobs expects a positive integer or \"max\", got %S\n" s;
      exit 1

let () =
  let args = Array.to_list Sys.argv in
  (* The protocol hot loops are allocation-heavy (one short-lived message,
     selection, and reader per pair), and in OCaml 5 every minor
     collection is a stop-the-world with real syscall cost.  A 8M-word
     minor heap turns thousands of minor collections per huge-tier
     experiment into tens; space_overhead 200 keeps the major GC off the
     hot path for the same reason.  The giant tier inverts both choices:
     its footprint is long-lived party state, not message churn, so a
     lower space_overhead buys headroom — and the runtime reserves
     address space for Max_domains x minor_heap_size up front, so the
     8M-word heap alone would reserve ~8GB and trip the CI smoke's
     address-space ulimit before main even runs.  Accounting
     (bits/messages/rounds) is GC-independent, so dated baselines are
     unaffected except wall_ms and peak_rss_mb. *)
  (if List.mem "--giant" args then
     Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20; Gc.space_overhead = 80 }
   else Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 23; Gc.space_overhead = 200 });
  let rec find_diff = function
    | "--diff" :: a :: b :: _ -> Some (a, b)
    | _ :: rest -> find_diff rest
    | [] -> None
  in
  match find_diff args with
  | Some (a, b) ->
    (* Regression-diff two saved reports; exit 1 on accounting drift so CI
       can gate on it (wall-clock changes alone do not fail the diff). *)
    let load path =
      try Analysis.Bench_io.load path with
      | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
      | Failure msg | Analysis.Json.Parse_error msg ->
        Printf.eprintf "error: %s is not a bench report: %s\n" path msg;
        exit 1
    in
    let before = load a and after = load b in
    let matched, drifted = Analysis.Bench_io.print_diff ~before ~after in
    if matched = 0 then begin
      Printf.eprintf
        "error: no comparable runs between %s and %s — the reports cover disjoint \
         experiment/series/n/h keys (e.g. a --quick report diffed against a full-tier one)\n"
        a b;
      exit 1
    end;
    exit (if drifted > 0 then 1 else 0)
  | None -> (
    match find_arg args "--audit" with
    | Some path -> audit_report path
    | None ->
    if List.mem "--list" args then
      List.iter
        (fun (id, desc, _) ->
          Printf.printf "%-4s %s\n" id desc;
          match List.find_opt (fun (sid, _, _) -> sid = id) sweep_info with
          | None -> ()
          | Some (_, tiers, sweeps) ->
            Printf.printf "       tiers: %s\n" tiers;
            List.iter (Printf.printf "       %s\n") sweeps)
        all_experiments
    else begin
      quick := List.mem "--quick" args;
      huge := List.mem "--huge" args;
      giant := List.mem "--giant" args;
      async_mode := List.mem "--async" args;
      if !huge && !giant then begin
        Printf.eprintf "error: --huge and --giant select disjoint tiers; pick one\n";
        exit 1
      end;
      let int_arg flag =
        match find_arg args flag with
        | None -> None
        | Some s ->
          (match int_of_string_opt s with
          | Some v -> Some v
          | None ->
            Printf.eprintf "error: %s expects an integer, got %S\n" flag s;
            exit 1)
      in
      base_seed := int_arg "--seed";
      soak_schedules := int_arg "--schedules";
      soak_schedule := int_arg "--schedule";
      (dist_workers :=
         match int_arg "--workers" with
         | None -> 0
         | Some w when w >= 0 -> w
         | Some w ->
           Printf.eprintf "error: --workers expects a non-negative integer, got %d\n" w;
           exit 1);
      dist_crash := int_arg "--crash-schedule";
      let json_path = find_arg args "--json" in
      let max_wall_s = Option.map float_of_string (find_arg args "--max-wall-s") in
      let max_rss_mb = Option.map float_of_string (find_arg args "--max-rss-mb") in
      let jobs = match find_arg args "--jobs" with None -> 1 | Some s -> parse_jobs s in
      (* Fork the dist fleet BEFORE any domain exists — forking a
         multi-domain OCaml runtime is undefined behavior.  Each worker
         gets its share of the --jobs budget for a worker-local inner
         pool (created lazily, post-fork). *)
      if !dist_workers > 0 && find_arg args "--only" = Some "dist-serve" then begin
        dist_inner_jobs := max 0 ((jobs - 1) / !dist_workers);
        dist_engine := Some (Netsim.Dist.create ~workers:!dist_workers ())
      end;
      if jobs > 1 then pool := Some (Util.Pool.create ~num_domains:(jobs - 1) ());
      let selected =
        match find_arg args "--only" with
        | None ->
          (* The huge tier only covers the experiments with huge sweeps;
             anything else can still be requested explicitly via --only
             (it then runs its normal full/quick sweep). *)
          if !huge then
            List.filter (fun (id, _, _) -> List.mem id [ "E1"; "E9"; "E13" ]) experiments
          else if !giant then
            (* Only E7/E8 have giant sweeps: they are the protocols whose
               cost model stays tractable at n = 10^6 (sparse routing and
               network-free covering).  Everything else can still be
               requested with --only and runs its normal tier. *)
            List.filter (fun (id, _, _) -> List.mem id [ "E7"; "E8" ]) experiments
          else experiments
        | Some id ->
          (match List.filter (fun (eid, _, _) -> eid = id) all_experiments with
          | [] ->
            Printf.eprintf "error: unknown experiment id %S; valid ids: %s\n" id
              (valid_ids ());
            exit 1
          | sel -> sel)
      in
      let t0 = Unix.gettimeofday () in
      let results =
        List.map
          (fun (id, _, f) ->
            let s = Unix.gettimeofday () in
            let runs = f () in
            let ms = 1000.0 *. (Unix.gettimeofday () -. s) in
            Printf.printf "[%.1fs]\n%!" (ms /. 1000.0);
            (id, ms, runs))
          selected
      in
      let total_wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      Option.iter Util.Pool.shutdown !pool;
      Option.iter Netsim.Dist.shutdown !dist_engine;
      Printf.printf "\nall experiments done in %.1fs (jobs=%d)%s\n" (total_wall_ms /. 1000.0)
        jobs
        (match (!huge, !giant, !quick) with
        | true, _, true -> " (huge smoke tier)"
        | true, _, false -> " (huge tier)"
        | false, true, true -> " (giant smoke tier)"
        | false, true, false -> " (giant tier)"
        | false, false, true -> " (quick tier)"
        | false, false, false -> "");
      (match json_path with
      | Some path ->
        let report =
          {
            Analysis.Bench_io.date = iso_date ();
            quick = !quick;
            jobs;
            total_wall_ms;
            experiment_wall_ms = List.map (fun (id, ms, _) -> (id, ms)) results;
            runs = List.concat_map (fun (_, _, runs) -> runs) results;
          }
        in
        Analysis.Bench_io.save path report;
        Printf.printf "wrote %d run records to %s\n" (List.length report.Analysis.Bench_io.runs)
          path
      | None -> ());
      (match max_wall_s with
      | Some budget when total_wall_ms > 1000.0 *. budget ->
        Printf.eprintf "wall-clock budget exceeded: %.1fs > %.1fs (at jobs=%d)\n"
          (total_wall_ms /. 1000.0) budget jobs;
        exit 2
      | _ -> ());
      (match max_rss_mb with
      | Some budget -> (
        (* The hard memory gate for CI's giant smoke: VmHWM is the
           process-wide high-water, so it bounds every run above.  Where
           /proc is unavailable the budget cannot be checked — warn and
           pass rather than fail a platform, the Linux CI lane is the
           enforcing one. *)
        match Analysis.Bench_io.peak_rss_mb () with
        | Some peak when peak > budget ->
          Printf.eprintf "peak-RSS budget exceeded: %.0fMB > %.0fMB\n" peak budget;
          exit 2
        | Some peak -> Printf.printf "peak RSS %.0fMB within budget %.0fMB\n" peak budget
        | None ->
          Printf.eprintf "warning: --max-rss-mb set but /proc/self/status is unreadable\n")
      | None -> ());
      (* Every checked_totals call above recorded spec-vs-measured
         mismatches here; failing at the very end lets a full run report
         all of them rather than dying at the first. *)
      if !cost_mismatch then begin
        Printf.eprintf "cost specs disagree with measured accounting (see COST MISMATCH above)\n";
        exit 1
      end
    end)
