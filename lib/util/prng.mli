(** Deterministic, splittable pseudo-random number generator.

    All randomness used by the protocols and experiments flows through this
    module, so every run is reproducible from a single integer seed.  The
    implementation is SplitMix64 for seeding and state splitting, with a
    Xoshiro256** core for the main stream.  It is {e not} cryptographically
    secure; cryptographic randomness in the library is derived from
    {!Crypto.Sha256} in counter mode seeded by values drawn here (adequate
    for a simulation, documented in DESIGN.md). *)

type t

(** [create seed] makes a fresh generator from a 64-bit seed. *)
val create : int -> t

(** [split t] derives an independent generator; [t] advances. *)
val split : t -> t

(** [derive t ~key] is a counter-keyed child stream: a pure function of
    [t]'s current state and [key].  The parent is read but {e not}
    advanced, so the result does not depend on the order (or domain) in
    which children are derived — [derive] with distinct keys can be called
    concurrently from parallel jobs and still yields the same streams as
    any sequential derivation order.  Distinct keys give independent
    streams (up to the quality of the SplitMix64 mix).  Note that drawing
    from the parent {e between} two derivations changes the state the
    second child is keyed against — derive all children from one fixed
    parent position. *)
val derive : t -> key:int -> t

(** [copy t] duplicates the current state (same future stream). *)
val copy : t -> t

(** [bits64 t] returns 64 uniformly random bits as an [int64]. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)
val bernoulli : t -> float -> bool

(** [byte t] is uniform in [\[0, 255\]]. *)
val byte : t -> int

(** [bytes t len] is a fresh uniformly random byte string. *)
val bytes : t -> int -> bytes

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample_without_replacement t ~n ~k] returns [k] distinct values drawn
    uniformly from [\[0, n)], in increasing order. Requires [0 <= k <= n]. *)
val sample_without_replacement : t -> n:int -> k:int -> int list

(** [sample_into t ~n ~k ~scratch ~dst ~pos] writes the same [k] sorted
    draws [sample_without_replacement t ~n ~k] would return into
    [dst.(pos) .. dst.(pos + k - 1)], consuming the identical draw
    sequence from [t].  In the dense regime ([2k >= n]) it is
    allocation-free, using [scratch] (length >= [n], contents ignored)
    as permutation space — hot-loop callers keep one scratch per worker
    and reuse it across calls. *)
val sample_into :
  t -> n:int -> k:int -> scratch:int array -> dst:int array -> pos:int -> unit

(** [pick t lst] picks a uniform element. Requires a non-empty list. *)
val pick : t -> 'a list -> 'a

(** [subset_bernoulli t ~n ~p] independently includes each of [0..n-1] with
    probability [p]; returns the included indices in increasing order. *)
val subset_bernoulli : t -> n:int -> p:float -> int list
