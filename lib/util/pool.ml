(* A batch is the unit of work published to the pool.  Workers that wake
   up late (after the batch is already drained) still hold a reference to
   *their* batch, whose [next] counter is exhausted — they take zero jobs
   and never touch a newer batch's counter, which is what makes reusing
   the pool across map_jobs calls race-free. *)
type batch = {
  run : int -> unit;
  len : int;
  next : int Atomic.t;
  mutable remaining : int; (* jobs not yet completed; under the pool mutex *)
  counts : int array; (* jobs drained per executor; slot i owned by executor i *)
}

type t = {
  n : int;
  m : Mutex.t;
  work_cv : Condition.t; (* workers wait here for a new generation *)
  done_cv : Condition.t; (* the caller waits here for batch completion *)
  mutable gen : int;
  mutable current : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable last_counts : int array option; (* instrumentation; caller-domain reads only *)
}

let clamp_domains d = max 0 (min d 64)

let default_num_domains () = max 0 (min (Domain.recommended_domain_count () - 1) 15)

(* True while the current domain is executing pool work: for the lifetime
   of a worker domain, and inside [map_jobs] on the calling domain.  A
   nested [map_jobs] (e.g. [Netsim.Net.run_round ~pool] called from a
   protocol that is itself running as a pool job) must not publish a
   second batch — workers are already busy and the caller would deadlock
   waiting on them — so it runs its jobs inline instead.  Inline execution
   returns the same results (the scheduling model is order-insensitive by
   construction), only the parallelism degenerates. *)
let inside_pool : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Drain [b]: claim indices until the counter runs past the end.  Returns
   how many jobs this domain completed so the caller can settle the
   batch's [remaining] under the mutex.  [who] is this executor's slot in
   [b.counts] (workers 0..n-1, the caller n) — each slot is written by
   exactly one domain, and the caller only reads them after [remaining]
   reaches zero under the mutex, so the counts need no atomics. *)
let drain (b : batch) ~who =
  let completed = ref 0 in
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.len then begin
      b.run i;
      incr completed;
      go ()
    end
  in
  go ();
  (* A worker that woke up late drains 0 jobs; skipping the write keeps it
     from touching [counts] after the caller has already collected them.
     Nonzero contributions are written before [settle] decrements
     [remaining], so the caller's read after completion is ordered. *)
  if !completed > 0 then b.counts.(who) <- b.counts.(who) + !completed;
  !completed

let settle t b completed =
  Mutex.lock t.m;
  b.remaining <- b.remaining - completed;
  if b.remaining = 0 then Condition.broadcast t.done_cv;
  Mutex.unlock t.m

let worker t ~who =
  Domain.DLS.set inside_pool true;
  let my_gen = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while (not t.stop) && t.gen = !my_gen do
      Condition.wait t.work_cv t.m
    done;
    if t.stop then Mutex.unlock t.m
    else begin
      my_gen := t.gen;
      let b = t.current in
      Mutex.unlock t.m;
      (match b with
      | Some b -> settle t b (drain b ~who)
      | None -> ());
      loop ()
    end
  in
  loop ()

let create ?num_domains () =
  let n = clamp_domains (Option.value num_domains ~default:(default_num_domains ())) in
  let t =
    {
      n;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      gen = 0;
      current = None;
      stop = false;
      domains = [];
      last_counts = None;
    }
  in
  t.domains <- List.init n (fun who -> Domain.spawn (fun () -> worker t ~who));
  t

let num_domains t = t.n
let last_job_counts t = Option.map Array.copy t.last_counts

let map_jobs t jobs f =
  let len = Array.length jobs in
  if len = 0 then [||]
  else if Domain.DLS.get inside_pool then
    (* Nested call from a worker (or from a job running on the calling
       domain): run inline.  Same results, no second batch. *)
    Array.map f jobs
  else begin
    Domain.DLS.set inside_pool true;
    Fun.protect ~finally:(fun () -> Domain.DLS.set inside_pool false) @@ fun () ->
    let results = Array.make len None in
    let run i =
      let r =
        try Ok (f jobs.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r
    in
    let b =
      { run; len; next = Atomic.make 0; remaining = len; counts = Array.make (t.n + 1) 0 }
    in
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.map_jobs: pool is shut down"
    end;
    t.current <- Some b;
    t.gen <- t.gen + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    (* The caller is a worker too: with num_domains = 0 it does everything,
       and otherwise it never sits idle while jobs remain. *)
    let completed = drain b ~who:t.n in
    Mutex.lock t.m;
    b.remaining <- b.remaining - completed;
    while b.remaining > 0 do
      Condition.wait t.done_cv t.m
    done;
    t.current <- None;
    Mutex.unlock t.m;
    t.last_counts <- Some b.counts;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* remaining = 0 implies every slot was written *))
      results
  end

(* Greedy LPT (longest-processing-time) bin packing: place items
   heaviest-first into the currently lightest bin.  Classic bound: the
   heaviest bin carries at most (4/3 - 1/(3·bins)) of the optimum, so as
   long as no single item dominates (w_max <= 1.5x the mean bin load) no
   bin exceeds 2x the mean — the balance property test_net_parallel
   asserts.  Everything is deterministic: ties break on the lower index,
   and each bin lists its items in ascending index order. *)
let pack_bins ~weights ~bins =
  let n = Array.length weights in
  let bins = max 1 bins in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare weights.(b) weights.(a) with 0 -> compare a b | c -> c)
    order;
  let loads = Array.make bins 0 in
  let members = Array.make bins [] in
  Array.iter
    (fun i ->
      let best = ref 0 in
      for b = 1 to bins - 1 do
        if loads.(b) < loads.(!best) then best := b
      done;
      loads.(!best) <- loads.(!best) + weights.(i);
      members.(!best) <- i :: members.(!best))
    order;
  Array.map (fun l -> Array.of_list (List.sort compare l)) members

let shutdown t =
  Mutex.lock t.m;
  let already = t.stop in
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  if not already then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end
