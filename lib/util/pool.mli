(** Fixed-size [Domain]-based worker pool with a deterministic parallel
    map — the multicore execution engine under [bench/main.exe] and any
    future parallel sweep.

    {b Scheduling model.}  {!map_jobs} publishes a job array to the pool;
    workers (plus the calling domain, which always participates) claim
    jobs by index from a shared atomic counter and write each result back
    at the job's own index.  Aggregation order is therefore the array
    order — {e independent of scheduling} — so any output assembled from
    the result array (tables, fitted exponents, JSON records) is
    bit-identical whatever the worker count.  Only wall-clock changes.

    {b Domain-safety contract.}  Jobs run concurrently on separate
    domains, so the job function must not touch shared mutable state:
    every [Netsim.Net.t], [Util.Prng.t], cache or accumulator it uses
    must be created inside the job (or be immutable).  All protocol
    modules in this library follow that discipline — their memo tables
    ([Equality.pairwise], [View_check], [All_to_all], [Enc_func],
    [Garble]) are per-call — so a job that builds its own network and RNG
    is safe by construction.  The pool itself adds the necessary
    synchronization: results written by a worker happen-before the return
    of {!map_jobs}.

    A pool holds its domains until {!shutdown}; idle workers block on a
    condition variable and cost nothing between calls. *)

type t

(** Default worker count: [Domain.recommended_domain_count () - 1]
    (reserving the calling domain), clamped to [0, 15]. *)
val default_num_domains : unit -> int

(** [create ?num_domains ()] spawns the worker domains immediately.
    [num_domains] is clamped to [0, 64] (counts above the core count are
    legal and simply oversubscribe — the pool microbenchmark uses this to
    measure dispatch overhead at fixed worker counts); [0] is legal —
    {!map_jobs} then runs every job on the calling domain, which is the
    degenerate sequential case. *)
val create : ?num_domains:int -> unit -> t

(** Workers actually spawned (after clamping). *)
val num_domains : t -> int

(** [map_jobs t jobs f] = [Array.map f jobs], computed by the pool.
    Results land at their job's index, so the output equals the
    sequential map regardless of scheduling.  If any [f jobs.(i)] raises,
    the remaining jobs still run to completion and the exception of the
    {e lowest} such index is re-raised in the caller (deterministically).
    Reentrancy: a {!map_jobs} issued from inside a job (on any pool) does
    not publish a second batch — it runs its jobs inline on the current
    domain and returns the same results.  This is what lets
    [Netsim.Net.run_round ~pool] be called from protocol code that is
    itself executing as a pool job: the nested call degenerates to the
    sequential map, which is observationally identical. *)
val map_jobs : t -> 'a array -> ('a -> 'b) -> 'b array

(** Instrumentation: how many jobs each executor drained in the most
    recent {e non-inline} {!map_jobs} call on this pool — slots [0..n-1]
    are the worker domains, slot [n] the calling domain; the counts sum to
    the batch length.  [None] until a batch has run.  Nested (inline)
    calls leave the record untouched.  The split between executors is
    scheduling-dependent (workers race for jobs), so treat it as a load
    observation, not something to assert exact values on. *)
val last_job_counts : t -> int array option

(** [pack_bins ~weights ~bins] partitions indices [0 .. length weights - 1]
    into [max 1 bins] bins by greedy LPT (heaviest item first, into the
    currently lightest bin).  Deterministic — ties break on the lower
    index — and each bin lists its indices in ascending order.  Guarantee:
    when no single weight exceeds 1.5x the mean bin load, no bin's total
    exceeds 2x the mean (LPT's 4/3 bound).  Used by [Netsim.Net.run_round]
    for size-aware sharding; pure, needs no pool. *)
val pack_bins : weights:int array -> bins:int -> int array array

(** Terminates the workers (idempotent).  Further {!map_jobs} calls raise
    [Invalid_argument]. *)
val shutdown : t -> unit
