(* SplitMix64 seeding/derivation + Xoshiro256** core, computed on pairs of
   32-bit limbs held in native ints.

   The obvious implementation (this module's original one) works on
   [int64]; without flambda every [Int64] operation boxes its result, so
   one Xoshiro step allocates ~30 words and one [derive] (six SplitMix64
   steps) several hundred — and the equality protocol derives a child
   stream per PAIR, putting the PRNG at the top of the E9 allocation
   profile.  Splitting each 64-bit word into two 32-bit limbs keeps the
   whole computation in immediate ints: a step allocates nothing, and
   [derive] allocates exactly one child record.

   Exactness: every limb stays in [0, 2^32); sums of a few limb products
   fit the 63-bit native int; and where a 32x32 product may exceed 2^63
   (so native arithmetic wraps), the wrap is harmless because it is
   modulo 2^63 and we only keep the product modulo 2^32, which divides
   it.  The full 64-bit low product needed by SplitMix64's multiplies is
   reassembled from a 16/32 split whose partial products are exact.  A
   test pins this arithmetic word-for-word against a straight [Int64]
   reference implementation.

   References: Steele, Lea, Flood (2014) for SplitMix64; Blackman &
   Vigna for Xoshiro256**. *)

type t = {
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* Output scratch: the last generated 64-bit word, as limbs.  Draw
     operations own the generator (single-domain, like all its state);
     [derive] never touches these fields on the parent. *)
  mutable oh : int;
  mutable ol : int;
}

let m32 = 0xFFFFFFFF

(* SplitMix64 finalizer: given the already-incremented state (zh, zl),
   mix and leave the output word in [dst.oh]/[dst.ol]. *)
let sm_mix_into dst zh zl =
  (* z ^= z >> 30 *)
  let xh = zh lxor (zh lsr 30)
  and xl = zl lxor (((zl lsr 30) lor (zh lsl 2)) land m32) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let t = (xl land 0xFFFF) * 0x1CE4E5B9 in
  let u = (xl lsr 16) * 0x1CE4E5B9 in
  let lo_full = t + ((u land 0xFFFF) lsl 16) in
  let ph =
    ((lo_full lsr 32) + (u lsr 16) + (xl * 0xBF58476D) + (xh * 0x1CE4E5B9)) land m32
  in
  let pl = lo_full land m32 in
  (* z ^= z >> 27 *)
  let xh = ph lxor (ph lsr 27)
  and xl = pl lxor (((pl lsr 27) lor (ph lsl 5)) land m32) in
  (* z *= 0x94D049BB133111EB *)
  let t = (xl land 0xFFFF) * 0x133111EB in
  let u = (xl lsr 16) * 0x133111EB in
  let lo_full = t + ((u land 0xFFFF) lsl 16) in
  let qh =
    ((lo_full lsr 32) + (u lsr 16) + (xl * 0x94D049BB) + (xh * 0x133111EB)) land m32
  in
  let ql = lo_full land m32 in
  (* z ^= z >> 31 *)
  dst.oh <- qh lxor (qh lsr 31);
  dst.ol <- ql lxor (((ql lsr 31) lor (qh lsl 1)) land m32)

(* Four SplitMix64 steps expand the seed into the Xoshiro state, written
   into [dst] (which doubles as the mix scratch).  The golden-ratio
   increment 0x9E3779B97F4A7C15 is applied before each mix, as in the
   reference. *)
let expand_seed_into dst seedh seedl =
  let l1 = seedl + 0x7F4A7C15 in
  let h1 = (seedh + 0x9E3779B9 + (l1 lsr 32)) land m32 in
  let l1 = l1 land m32 in
  sm_mix_into dst h1 l1;
  dst.s0h <- dst.oh;
  dst.s0l <- dst.ol;
  let l2 = l1 + 0x7F4A7C15 in
  let h2 = (h1 + 0x9E3779B9 + (l2 lsr 32)) land m32 in
  let l2 = l2 land m32 in
  sm_mix_into dst h2 l2;
  dst.s1h <- dst.oh;
  dst.s1l <- dst.ol;
  let l3 = l2 + 0x7F4A7C15 in
  let h3 = (h2 + 0x9E3779B9 + (l3 lsr 32)) land m32 in
  let l3 = l3 land m32 in
  sm_mix_into dst h3 l3;
  dst.s2h <- dst.oh;
  dst.s2l <- dst.ol;
  let l4 = l3 + 0x7F4A7C15 in
  let h4 = (h3 + 0x9E3779B9 + (l4 lsr 32)) land m32 in
  let l4 = l4 land m32 in
  sm_mix_into dst h4 l4;
  dst.s3h <- dst.oh;
  dst.s3l <- dst.ol;
  (* Xoshiro must not start at the all-zero state. *)
  if
    dst.s0h lor dst.s0l lor dst.s1h lor dst.s1l lor dst.s2h lor dst.s2l lor dst.s3h
    lor dst.s3l
    = 0
  then begin
    dst.s0h <- 0;
    dst.s0l <- 1;
    dst.s1h <- 0;
    dst.s1l <- 2;
    dst.s2h <- 0;
    dst.s2l <- 3;
    dst.s3h <- 0;
    dst.s3l <- 4
  end

let fresh () =
  { s0h = 0; s0l = 0; s1h = 0; s1l = 0; s2h = 0; s2l = 0; s3h = 0; s3l = 0; oh = 0; ol = 0 }

let of_seed_limbs seedh seedl =
  let t = fresh () in
  expand_seed_into t seedh seedl;
  t

(* [create seed] seeds from the sign-extended 64-bit image of [seed],
   exactly [Int64.of_int seed]. *)
let create seed = of_seed_limbs ((seed asr 32) land m32) (seed land m32)

(* Xoshiro256** step: advance the state and leave the output word in
   [t.oh]/[t.ol].  All arithmetic is immediate-int; nothing allocates. *)
let step t =
  let s1h = t.s1h and s1l = t.s1l in
  (* result = rotl(s1 * 5, 7) * 9 *)
  let pf = s1l * 5 in
  let pl = pf land m32 in
  let ph = ((s1h * 5) + (pf lsr 32)) land m32 in
  let rh = ((ph lsl 7) lor (pl lsr 25)) land m32 in
  let rl = ((pl lsl 7) lor (ph lsr 25)) land m32 in
  let qf = rl * 9 in
  t.ol <- qf land m32;
  t.oh <- ((rh * 9) + (qf lsr 32)) land m32;
  (* tmp = s1 << 17 *)
  let th = ((s1h lsl 17) lor (s1l lsr 15)) land m32 in
  let tl = (s1l lsl 17) land m32 in
  t.s2h <- t.s2h lxor t.s0h;
  t.s2l <- t.s2l lxor t.s0l;
  t.s3h <- t.s3h lxor s1h;
  t.s3l <- t.s3l lxor s1l;
  t.s1h <- s1h lxor t.s2h;
  t.s1l <- s1l lxor t.s2l;
  t.s0h <- t.s0h lxor t.s3h;
  t.s0l <- t.s0l lxor t.s3l;
  t.s2h <- t.s2h lxor th;
  t.s2l <- t.s2l lxor tl;
  (* s3 = rotl(s3, 45) — a 32-bit limb swap plus rotl 13. *)
  let h3 = t.s3h and l3 = t.s3l in
  t.s3h <- ((l3 lsl 13) lor (h3 lsr 19)) land m32;
  t.s3l <- ((h3 lsl 13) lor (l3 lsr 19)) land m32

let bits64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.oh) 32) (Int64.of_int t.ol)

let split t =
  step t;
  of_seed_limbs t.oh t.ol

let copy t =
  {
    s0h = t.s0h;
    s0l = t.s0l;
    s1h = t.s1h;
    s1l = t.s1l;
    s2h = t.s2h;
    s2l = t.s2l;
    s3h = t.s3h;
    s3l = t.s3l;
    oh = 0;
    ol = 0;
  }

let derive t ~key =
  (* Counter-keyed child stream: a pure function of the parent's current
     state and [key].  Unlike [split], the parent is only read, never
     advanced (and its scratch is untouched), so deriving many children
     is order- and domain-independent — the property parallel per-pair
     protocol code relies on.  The four state words are folded with
     rotations (so permuted states map to different digests) and the key
     is pushed through two SplitMix64 steps before the seed expansion
     adds four more, decorrelating adjacent keys. *)
  let dh =
    t.s0h
    lxor (((t.s1h lsl 17) lor (t.s1l lsr 15)) land m32)
    lxor (((t.s2h lsl 31) lor (t.s2l lsr 1)) land m32)
    lxor (((t.s3l lsl 15) lor (t.s3h lsr 17)) land m32)
  and dl =
    t.s0l
    lxor (((t.s1l lsl 17) lor (t.s1h lsr 15)) land m32)
    lxor (((t.s2l lsl 31) lor (t.s2h lsr 1)) land m32)
    lxor (((t.s3h lsl 15) lor (t.s3l lsr 17)) land m32)
  in
  let sth = dh lxor ((key asr 32) land m32) and stl = dl lxor (key land m32) in
  (* seed = splitmix(st) ^ splitmix(st') — the child record doubles as
     scratch for the two mixes before its state is expanded in place. *)
  let child = fresh () in
  let l1 = stl + 0x7F4A7C15 in
  let h1 = (sth + 0x9E3779B9 + (l1 lsr 32)) land m32 in
  let l1 = l1 land m32 in
  sm_mix_into child h1 l1;
  let o1h = child.oh and o1l = child.ol in
  let l2 = l1 + 0x7F4A7C15 in
  let h2 = (h1 + 0x9E3779B9 + (l2 lsr 32)) land m32 in
  let l2 = l2 land m32 in
  sm_mix_into child h2 l2;
  expand_seed_into child (o1h lxor child.oh) (o1l lxor child.ol);
  child

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec go () =
    step t;
    let r = (t.oh lsl 30) lor (t.ol lsr 2) in
    let v = r mod bound in
    if r - v > mask - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 random bits scaled to [0,1). *)
  step t;
  let r = (t.oh lsl 21) lor (t.ol lsr 11) in
  float_of_int r *. (1.0 /. 9007199254740992.0)

let bool t =
  step t;
  t.ol land 1 = 1

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let byte t =
  step t;
  t.ol land 0xFF

let bytes t len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (byte t))
  done;
  b

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  if k = 0 then []
  else if 2 * k >= n then begin
    (* Dense case: shuffle a full index array and keep a prefix. *)
    let arr = Array.init n (fun i -> i) in
    shuffle t arr;
    Array.sub arr 0 k |> Array.to_list |> List.sort compare
  end
  else begin
    (* Sparse case: rejection sampling into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let rec fill count =
      if count = k then ()
      else
        let v = int t n in
        if Hashtbl.mem seen v then fill count
        else begin
          Hashtbl.add seen v ();
          fill (count + 1)
        end
    in
    fill 0;
    Hashtbl.fold (fun v () acc -> v :: acc) seen [] |> List.sort compare
  end

let sample_into t ~n ~k ~scratch ~dst ~pos =
  if k < 0 || k > n then invalid_arg "Prng.sample_into";
  if k = 0 then ()
  else if 2 * k >= n then begin
    (* Dense case, allocation-free: Fisher-Yates over the identity prefix
       of [scratch] (draw-for-draw the [shuffle] loop on an [n]-array),
       then an in-place insertion sort of the kept prefix — the same
       sorted k-subset [sample_without_replacement] returns, without the
       per-call array/list/polymorphic-sort churn. *)
    if Array.length scratch < n then invalid_arg "Prng.sample_into: scratch too short";
    for x = 0 to n - 1 do
      scratch.(x) <- x
    done;
    for i = n - 1 downto 1 do
      let j = int t (i + 1) in
      let tmp = scratch.(i) in
      scratch.(i) <- scratch.(j);
      scratch.(j) <- tmp
    done;
    Array.blit scratch 0 dst pos k;
    for x = pos + 1 to pos + k - 1 do
      let v = dst.(x) in
      let y = ref (x - 1) in
      while !y >= pos && dst.(!y) > v do
        dst.(!y + 1) <- dst.(!y);
        decr y
      done;
      dst.(!y + 1) <- v
    done
  end
  else
    (* Sparse case: rejection sampling dominates, so reuse the list path. *)
    List.iteri (fun i v -> dst.(pos + i) <- v) (sample_without_replacement t ~n ~k)

let pick t lst =
  match lst with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth lst (int t (List.length lst))

let subset_bernoulli t ~n ~p =
  let rec go i acc =
    if i >= n then List.rev acc
    else if bernoulli t p then go (i + 1) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []
