type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used to expand a seed into the four Xoshiro words and to
   derive split-off generators.  Reference: Steele, Lea, Flood (2014). *)
let splitmix_next (state : int64 ref) : int64 =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 (seed : int64) : t =
  let st = ref seed in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  (* Xoshiro must not start at the all-zero state. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let rotl (x : int64) (k : int) : int64 =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* Xoshiro256** next. *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let derive t ~key =
  (* Counter-keyed child stream: a pure function of the parent's current
     state and [key].  Unlike [split], the parent is only read, never
     advanced, so deriving many children is order-independent — the
     property parallel per-pair protocol code relies on.  The four state
     words are folded with rotations (so permuted states map to different
     digests) and the key is pushed through two SplitMix64 steps before
     [of_seed64] adds four more, decorrelating adjacent keys. *)
  let open Int64 in
  let digest =
    logxor (logxor t.s0 (rotl t.s1 17)) (logxor (rotl t.s2 31) (rotl t.s3 47))
  in
  let st = ref (logxor digest (of_int key)) in
  let seed = logxor (splitmix_next st) (splitmix_next st) in
  of_seed64 seed

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 random bits scaled to [0,1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let byte t = Int64.to_int (Int64.logand (bits64 t) 0xFFL)

let bytes t len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (byte t))
  done;
  b

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  if k = 0 then []
  else if 2 * k >= n then begin
    (* Dense case: shuffle a full index array and keep a prefix. *)
    let arr = Array.init n (fun i -> i) in
    shuffle t arr;
    Array.sub arr 0 k |> Array.to_list |> List.sort compare
  end
  else begin
    (* Sparse case: rejection sampling into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let rec fill count =
      if count = k then ()
      else
        let v = int t n in
        if Hashtbl.mem seen v then fill count
        else begin
          Hashtbl.add seen v ();
          fill (count + 1)
        end
    in
    fill 0;
    Hashtbl.fold (fun v () acc -> v :: acc) seen [] |> List.sort compare
  end

let pick t lst =
  match lst with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth lst (int t (List.length lst))

let subset_bernoulli t ~n ~p =
  let rec go i acc =
    if i >= n then List.rev acc
    else if bernoulli t p then go (i + 1) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []
