type writer = Buffer.t

let writer () = Buffer.create 64
let contents w = Buffer.to_bytes w

(* Reusing one writer across many messages keeps the Buffer's grown
   capacity, so the per-message cost is one [contents] copy instead of a
   fresh allocation plus O(log size) doubling copies. *)
let reset w = Buffer.clear w

let encode_into w f v =
  Buffer.clear w;
  f w v;
  Buffer.to_bytes w

(* Varints use the LEB128-style 7-bits-per-byte scheme on the two's
   complement representation, so negative ints terminate (10 bytes max). *)
let write_varint w v =
  let rec go v =
    let low = v land 0x7F in
    let rest = v lsr 7 in
    if rest = 0 then Buffer.add_char w (Char.chr low)
    else begin
      Buffer.add_char w (Char.chr (low lor 0x80));
      go rest
    end
  in
  go v

let write_int64 w v =
  for i = 0 to 7 do
    Buffer.add_char w (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let write_bool w b = Buffer.add_char w (if b then '\001' else '\000')

let write_byte w v =
  if v < 0 || v > 255 then invalid_arg "Codec.write_byte";
  Buffer.add_char w (Char.chr v)

let write_raw w b = Buffer.add_bytes w b

let write_bytes w b =
  write_varint w (Bytes.length b);
  Buffer.add_bytes w b

let write_string w s =
  write_varint w (String.length s);
  Buffer.add_string w s

let write_list w f lst =
  write_varint w (List.length lst);
  List.iter (fun x -> f w x) lst

let write_array w f arr =
  write_varint w (Array.length arr);
  Array.iter (fun x -> f w x) arr

let write_pair w fa fb (a, b) =
  fa w a;
  fb w b

let write_option w f = function
  | None -> write_bool w false
  | Some v ->
    write_bool w true;
    f w v

(* A reader is a cursor over a [limit]-bounded window of [data]; the
   whole-buffer constructor sets the window to the full buffer, [of_sub]
   to a slice — decoding a message embedded in a larger buffer then needs
   no [Bytes.sub] copy. *)
type reader = { data : bytes; mutable pos : int; limit : int }

exception Decode_error of string

let reader data = { data; pos = 0; limit = Bytes.length data }

let of_sub data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg
      (Printf.sprintf "Codec.of_sub: [%d, %d+%d) outside buffer of %d bytes" pos pos len
         (Bytes.length data));
  { data; pos; limit = pos + len }

let at_end r = r.pos >= r.limit
let pos r = r.pos

(* Every decode error names the failing offset and, where a length was
   involved, the expected vs available byte counts — framed socket
   traffic (Netsim.Wire) surfaces these messages verbatim, and "which
   offset of which frame" is the whole diagnosis. *)
let need r k =
  if k < 0 then
    raise (Decode_error (Printf.sprintf "negative length %d at offset %d" k r.pos));
  if r.pos + k > r.limit then
    raise
      (Decode_error
         (Printf.sprintf "need %d bytes at offset %d, but only %d remain (window ends at %d)"
            k r.pos (r.limit - r.pos) r.limit))

let read_byte r =
  need r 1;
  let v = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let read_varint r =
  let start = r.pos in
  let rec go shift acc =
    if shift > 62 then
      raise
        (Decode_error
           (Printf.sprintf "varint at offset %d too long (10th continuation byte at offset %d)"
              start r.pos));
    let b = read_byte r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_int64 r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.get r.data (r.pos + i))))
  done;
  r.pos <- r.pos + 8;
  !v

let read_bool r =
  match read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> raise (Decode_error (Printf.sprintf "bad bool byte %d at offset %d" b (r.pos - 1)))

let read_raw r len =
  need r len;
  let b = Bytes.sub r.data r.pos len in
  r.pos <- r.pos + len;
  b

let read_bytes r =
  let len = read_varint r in
  read_raw r len

(* ---- Zero-copy views ---- *)

type view = { buf : bytes; off : int; len : int }

let read_raw_view r len =
  need r len;
  let v = { buf = r.data; off = r.pos; len } in
  r.pos <- r.pos + len;
  v

let read_bytes_view r =
  let len = read_varint r in
  read_raw_view r len

let view_to_bytes v = Bytes.sub v.buf v.off v.len

let view_equal_bytes v b =
  v.len = Bytes.length b
  &&
  let k = ref 0 in
  while !k < v.len && Bytes.unsafe_get v.buf (v.off + !k) = Bytes.unsafe_get b !k do
    incr k
  done;
  !k = v.len

let reader_of_view v = { data = v.buf; pos = v.off; limit = v.off + v.len }

let write_view w v = Buffer.add_subbytes w v.buf v.off v.len

let read_string r = Bytes.to_string (read_bytes r)

(* Every list/array element occupies at least one wire byte, so a count
   exceeding the remaining window is garbage (a torn or corrupted frame).
   Rejecting it BEFORE allocating matters: [Array.init] materializes the
   full array up front, so an unchecked 2^40 claimed by a flipped varint
   is an out-of-memory bomb rather than a clean [Decode_error]. *)
let read_count r len =
  if len > r.limit - r.pos then
    raise
      (Decode_error
         (Printf.sprintf "implausible count %d at offset %d (only %d bytes left)" len r.pos
            (r.limit - r.pos)));
  len

let read_list r f =
  let len = read_count r (read_varint r) in
  List.init len (fun _ -> f r)

let read_array r f =
  let len = read_count r (read_varint r) in
  Array.init len (fun _ -> f r)

let read_pair r fa fb =
  let a = fa r in
  let b = fb r in
  (a, b)

let read_option r f = if read_bool r then Some (f r) else None

let encode f v =
  let w = writer () in
  f w v;
  contents w

let trailing r =
  raise
    (Decode_error
       (Printf.sprintf "%d trailing bytes at offset %d (window ends at %d)" (r.limit - r.pos)
          r.pos r.limit))

let decode f b =
  let r = reader b in
  let v = f r in
  if not (at_end r) then trailing r;
  v

let decode_view f v =
  let r = reader_of_view v in
  let x = f r in
  if not (at_end r) then trailing r;
  x

let varint_size v =
  let rec go v acc = if v lsr 7 = 0 then acc else go (v lsr 7) (acc + 1) in
  go v 1

let encode_int_list lst = encode (fun w -> write_list w write_varint) lst
let decode_int_list b = decode (fun r -> read_list r read_varint) b
