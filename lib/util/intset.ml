(* Open-addressing int hash set: power-of-two table, linear probing,
   [-1] = empty.  Load factor is kept <= 1/2 so probe chains stay short
   even with the cheap multiplicative hash. *)

type t = { mutable slots : int array; mutable size : int }

let min_capacity = 8

let rec pow2_at_least k n = if n >= k then n else pow2_at_least k (n * 2)

let create ?(capacity = min_capacity) () =
  let cap = pow2_at_least (max min_capacity capacity) min_capacity in
  { slots = Array.make cap (-1); size = 0 }

(* Fibonacci hashing: multiply by 2^63/phi and keep the top bits.  Party
   ids are small and sequential, which a plain [v land mask] would pack
   into one clustered run; the multiply spreads them over the table. *)
let[@inline] slot_of slots v =
  let mask = Array.length slots - 1 in
  (v * 0x2545F4914F6CDD1D) lsr 8 land mask

let[@inline] probe slots v =
  (* Returns the index holding [v], or the empty index where it would
     be inserted.  The table always has empty slots (load <= 1/2), so
     the scan terminates. *)
  let mask = Array.length slots - 1 in
  let i = ref (slot_of slots v) in
  while
    let s = Array.unsafe_get slots !i in
    s >= 0 && s <> v
  do
    i := (!i + 1) land mask
  done;
  !i

let mem t v = v >= 0 && Array.unsafe_get t.slots (probe t.slots v) = v

let grow t =
  let old = t.slots in
  t.slots <- Array.make (2 * Array.length old) (-1);
  Array.iter (fun v -> if v >= 0 then t.slots.(probe t.slots v) <- v) old

let add t v =
  if v < 0 then invalid_arg "Intset.add: negative element";
  let i = probe t.slots v in
  if Array.unsafe_get t.slots i <> v then begin
    t.slots.(i) <- v;
    t.size <- t.size + 1;
    if 2 * t.size > Array.length t.slots then grow t
  end

let cardinal t = t.size
let iter f t = Array.iter (fun v -> if v >= 0 then f v) t.slots
let fold f t init =
  Array.fold_left (fun acc v -> if v >= 0 then f v acc else acc) init t.slots

let to_sorted_list t =
  let l = fold (fun v acc -> v :: acc) t [] in
  List.sort compare l

let to_iset t = fold Iset.add t Iset.empty
