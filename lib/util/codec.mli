(** Binary serialization for protocol messages.

    Every message that crosses the simulated network is encoded through this
    module, so communication complexity is measured on real byte strings
    rather than on abstract message counts.  The format is a simple
    length-prefixed binary encoding: varints for integers, raw bytes for
    strings, and recursively encoded containers. *)

(** {1 Writer} *)

type writer

val writer : unit -> writer

(** [contents w] returns the bytes written so far. *)
val contents : writer -> bytes

(** [reset w] empties [w] but keeps its grown capacity — the cheap way to
    reuse one writer across the many messages of a round instead of
    allocating (and doubling) a fresh [Buffer] per message. *)
val reset : writer -> unit

(** [encode_into w f v] = [reset w; f w v; contents w]: encode through a
    caller-owned scratch writer.  The returned bytes are a fresh copy, so
    the scratch can be reused immediately.  {b Domain ownership:} a
    scratch writer is mutable state — it must be owned by a single domain
    (create it inside the pool job, or only use it from the calling
    domain); sharing one writer across concurrent [Net.run_round] party
    steps races. *)
val encode_into : writer -> (writer -> 'a -> unit) -> 'a -> bytes

val write_varint : writer -> int -> unit
val write_int64 : writer -> int64 -> unit
val write_bool : writer -> bool -> unit
val write_byte : writer -> int -> unit
val write_bytes : writer -> bytes -> unit

(** [write_raw w b] appends [b] without a length prefix. *)
val write_raw : writer -> bytes -> unit

val write_string : writer -> string -> unit
val write_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val write_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val write_pair : writer -> (writer -> 'a -> unit) -> (writer -> 'b -> unit) -> 'a * 'b -> unit
val write_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit

(** {1 Reader} *)

type reader

(** Raised on malformed input.  The message always names the failing
    absolute offset (within the reader's underlying buffer), and — when a
    length was involved — the expected vs available byte counts and the
    window end, so a bad frame on a socket can be diagnosed from the
    message alone. *)
exception Decode_error of string

val reader : bytes -> reader

(** [of_sub b ~pos ~len] is a reader over the window [\[pos, pos+len)] of
    [b] — no copy is taken.  Raises [Invalid_argument] if the window is
    outside [b].  The window bounds every read: consuming past
    [pos + len] raises {!Decode_error} exactly as running off the end of
    a whole-buffer reader does, and {!at_end} answers relative to the
    window. *)
val of_sub : bytes -> pos:int -> len:int -> reader

(** [at_end r] is true when every byte has been consumed. *)
val at_end : reader -> bool

(** Current absolute offset within the underlying buffer — the same
    offset {!Decode_error} messages report.  Framing layers use it to
    count trailing bytes without copying the frame out. *)
val pos : reader -> int

val read_varint : reader -> int
val read_int64 : reader -> int64
val read_bool : reader -> bool
val read_byte : reader -> int
val read_bytes : reader -> bytes

(** [read_raw r len] reads exactly [len] bytes with no length prefix. *)
val read_raw : reader -> int -> bytes

(** {1 Zero-copy views}

    A [view] is an offset/length window into a buffer — the zero-copy
    counterpart of {!read_raw}/{!read_bytes}, for hot paths that would
    otherwise [Bytes.sub] every embedded value of every message.

    {b Ownership contract:} a view {e aliases} the reader's underlying
    buffer; it is valid for as long as that buffer is, and must be
    treated as read-only — mutating either aliases the other.  Simulator
    payloads are immutable by convention (senders never touch a payload
    after [Net.send], receivers never write into one), so views over
    received messages are safe to hold for the rest of the round,
    including from [Net.run_round] worker domains (the payload was
    published by the round's sequential commit phase).  Copy out with
    {!view_to_bytes} anything that must outlive the buffer. *)

type view = { buf : bytes; off : int; len : int }

(** [read_raw_view r len] consumes [len] bytes and returns their window —
    the zero-copy {!read_raw}. *)
val read_raw_view : reader -> int -> view

(** [read_bytes_view r] reads a varint length prefix and returns the
    payload window — the zero-copy {!read_bytes}. *)
val read_bytes_view : reader -> view

(** [view_to_bytes v] copies the window out. *)
val view_to_bytes : view -> bytes

(** [view_equal_bytes v b] — content equality against a byte string,
    without materializing the view. *)
val view_equal_bytes : view -> bytes -> bool

(** [reader_of_view v] is [of_sub v.buf ~pos:v.off ~len:v.len]. *)
val reader_of_view : view -> reader

(** [write_view w v] appends the window to [w] without an intermediate
    copy (no length prefix, like {!write_raw}). *)
val write_view : writer -> view -> unit

val read_string : reader -> string
val read_list : reader -> (reader -> 'a) -> 'a list
val read_array : reader -> (reader -> 'a) -> 'a array
val read_pair : reader -> (reader -> 'a) -> (reader -> 'b) -> 'a * 'b
val read_option : reader -> (reader -> 'a) -> 'a option

(** {1 Whole-message helpers} *)

(** [encode f v] runs [f] on a fresh writer and returns the bytes. *)
val encode : (writer -> 'a -> unit) -> 'a -> bytes

(** [decode f b] decodes [b] entirely; raises {!Decode_error} on trailing or
    missing bytes. *)
val decode : (reader -> 'a) -> bytes -> 'a

(** [decode_view f v] decodes the window entirely — [decode] without the
    [Bytes.sub]. *)
val decode_view : (reader -> 'a) -> view -> 'a

(** [varint_size v] is the encoded size of [v] in bytes (for cost models). *)
val varint_size : int -> int

(** Encoders for common shapes used across protocols. *)
val encode_int_list : int list -> bytes
val decode_int_list : bytes -> int list
