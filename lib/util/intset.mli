(** Compact mutable set of non-negative ints — open addressing over a
    flat [int array].

    The streaming network backend keeps one of these per {e touched}
    party for peer/locality tracking, so the representation is sized for
    "hundreds of thousands of instances holding tens of elements each":
    a three-word record plus one unboxed int array, no per-element boxes.
    Compare [(int, unit) Hashtbl.t] (a bucket array plus a four-word
    cons per element) or the persistent {!Iset} (a five-word AVL node
    per element) — at n = 10⁶ parties with degree ~80 the difference is
    gigabytes.

    Membership is linear probing over a power-of-two table at load
    factor <= 1/2; elements are stored directly, [(-1)] marks an empty
    slot, which is why members must be [>= 0].  Not domain-safe: an
    instance is single-owner mutable state, like the network that holds
    it. *)

type t

(** [create ?capacity ()] — an empty set.  [capacity] is a size hint
    (rounded up to a power of two, default 8); the table grows by
    doubling regardless. *)
val create : ?capacity:int -> unit -> t

(** [add t v] inserts [v] ([>= 0], else [Invalid_argument]); no-op when
    already present. *)
val add : t -> int -> unit

val mem : t -> int -> bool

(** Number of elements, O(1). *)
val cardinal : t -> int

(** [iter f t] — {e unspecified} order (table order). *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Members in increasing order (sorts on each call). *)
val to_sorted_list : t -> int list

(** The same elements as a persistent {!Iset}. *)
val to_iset : t -> Iset.t
