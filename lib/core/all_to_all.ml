type variant = Naive | Fingerprinted

type adv = {
  input_value : (me:int -> dst:int -> bytes) option;
  drop : (src:int -> dst:int -> bool) option;
  eq : Equality.adv;
}

let honest_adv = { input_value = None; drop = None; eq = Equality.honest_adv }

(* A party's "view" after the distribution round: its own input plus what it
   heard from each other participant ([None] = silence). *)
let write_view_msg w view =
  Util.Codec.write_list w
    (fun w (id, v) ->
      Util.Codec.write_varint w id;
      Util.Codec.write_option w Util.Codec.write_bytes v)
    view

(* Cost phases (see Analysis.Costs) for an honest run over [k] members
   with uniform [len]-byte inputs.  [idsum] is Σ varint_size(id) over the
   member ids (the id column of the view encoding; callers with a prefix
   range use [Costs.sum_varint_below]).  Naive: distribute + batched echo
   (2 rounds).  Fingerprinted: distribute + Equality.pairwise over the
   encoded views (3 rounds). *)
let cost_phases ~variant ~pre ~k ~idsum ~len ~n ~lambda =
  let open Analysis.Costs in
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let ordered = Mul [ k; Sub (k, Const 1) ] in
  let distribute =
    exact ~label:(jn "distribute") ~edge:"member->member"
      ~bits:(Cost_expr.bits (Mul [ ordered; len ]))
      ~messages:ordered ~rounds:(Const 1)
  in
  match variant with
  | Naive ->
    (* Echo payload: presence bitmap + every present framed value; honest
       runs have all k present. *)
    let echo_payload =
      Add [ Ceil_div (k, Const 8); Mul [ k; Add [ varint_e len; len ] ] ]
    in
    [
      distribute;
      exact ~label:(jn "echo") ~edge:"member->member"
        ~bits:(Cost_expr.bits (Mul [ ordered; echo_payload ]))
        ~messages:ordered ~rounds:(Const 1);
    ]
  | Fingerprinted ->
    (* write_view_msg: varint k, then per member varint id + option byte +
       framed value. *)
    let view_bytes =
      Add [ varint_e k; idsum; Mul [ k; Add [ Const 1; varint_e len; len ] ] ]
    in
    distribute
    :: Equality.cost_phases_pairwise ~pre:(jn "eq") ~k ~maxlen:view_bytes ~n ~lambda

let cost_spec ~variant ~k ~idsum ~len ~n ~lambda =
  {
    Analysis.Costs.name =
      (match variant with
      | Naive -> "all_to_all.naive"
      | Fingerprinted -> "all_to_all.fingerprinted");
    phases = cost_phases ~variant ~pre:"" ~k ~idsum ~len ~n ~lambda;
    max_locality = None;
  }

let run ?pool ?deadline net rng params ~variant ~participants ~input ~corruption ~adv =
  (* Input thunks may consume randomness; evaluate once per participant so
     the value sent, echoed and placed in views is identical.  The cache is
     filled on the calling domain before any sharded round (thunks may pull
     from the shared RNG) and is read-only afterwards, so party steps can
     consult it from worker domains. *)
  let input =
    let cache = Hashtbl.create 16 in
    fun i ->
      match Hashtbl.find_opt cache i with
      | Some v -> v
      | None ->
        let v = input i in
        Hashtbl.replace cache i v;
        v
  in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let should_drop ~src ~dst =
    is_corrupt src && match adv.drop with Some f -> f ~src ~dst | None -> false
  in
  let members = List.sort_uniq compare participants in
  List.iter (fun i -> ignore (input i)) members;
  (* Distribution round (both variants): everyone sends its (claimed) input
     to every other participant. *)
  let distribute () =
    let (_ : unit list) =
      Netsim.Net.run_round ?pool net ~parties:members (fun p ->
          let src = Netsim.Net.Party.id p in
          let value = input src in
          List.iter
            (fun dst ->
              if dst <> src && not (should_drop ~src ~dst) then begin
                let v =
                  match adv.input_value with
                  | Some f when is_corrupt src -> f ~me:src ~dst
                  | _ -> value
                in
                Netsim.Net.Party.send p ~dst v
              end)
            members)
    in
    Netsim.Net.step_until_quiet ?deadline net
  in
  match variant with
  | Naive ->
    (* |S| parallel single-source broadcasts restricted to the subset, run
       simultaneously: one distribution round (raw values per ordered
       pair), then one echo round in which each party re-broadcasts its
       ENTIRE received vector as a single batched message — a Bitpack
       presence bitmap (one bit per sender in member order) followed by
       the present values.  Wire cost stays Θ(|S|³·ℓ) in the echoes (the
       naive baseline the fingerprinted variant beats), but the per-value
       option framing of the old one-message-per-sender echo collapses to
       one bit, and message count drops from O(|S|³) to O(|S|²). *)
    let member_arr = Array.of_list members in
    let n_members = Array.length member_arr in
    let index_of = Hashtbl.create n_members in
    Array.iteri (fun k m -> Hashtbl.replace index_of m k) member_arr;
    distribute ();
    (* Collection + echo round, one sharded pass: each party drains its
       per-sender queues into its received row, then broadcasts the row as
       one batched echo message. *)
    let rows =
      Netsim.Net.run_round ?pool net ~parties:members (fun p ->
          let i = Netsim.Net.Party.id p in
          let row =
            Array.map
              (fun sender ->
                if sender = i then Some (input sender)
                else Netsim.Net.Party.recv_one p ~src:sender)
              member_arr
          in
          let w = Util.Codec.writer () in
          Bitpack.pack_into w (Array.map (fun v -> v <> None) row);
          Array.iter
            (function Some v -> Util.Codec.write_bytes w v | None -> ())
            row;
          let payload = Util.Codec.contents w in
          List.iter
            (fun dst ->
              if dst <> i && not (should_drop ~src:i ~dst) then
                Netsim.Net.Party.send p ~dst payload)
            members;
          row)
    in
    let row_arr = Array.of_list rows in
    Netsim.Net.step_until_quiet ?deadline net;
    (* Zero-copy echo decode: the presence bitmap and every echoed value
       stay as views into the received payload (which is immutable once
       delivered — the Codec ownership contract), so decoding a Θ(|S|·ℓ)
       echo allocates Θ(|S|) small view records instead of copying every
       value back out of it. *)
    let decode_echo payload =
      match
        Util.Codec.decode
          (fun r ->
            let bitmap = Util.Codec.read_raw_view r ((n_members + 7) / 8) in
            let vec = Array.make n_members None in
            for k = 0 to n_members - 1 do
              if Bitpack.test bitmap k then vec.(k) <- Some (Util.Codec.read_bytes_view r)
            done;
            vec)
          payload
      with
      | vec -> Some vec
      | exception Util.Codec.Decode_error _ -> None
    in
    (* Output round: compare every echo against the own row, per party. *)
    Netsim.Net.run_round ?pool net ~parties:members (fun p ->
        let i = Netsim.Net.Party.id p in
        let mine_row = row_arr.(Hashtbl.find index_of i) in
        let echoes =
          List.filter_map
            (fun j ->
              if j = i then None
              else
                Some
                  (match Netsim.Net.Party.recv_one p ~src:j with
                  | Some payload -> decode_echo payload
                  | None -> None))
            members
        in
        (* A silent or garbled peer voids every sender's consistency, as a
           peer silent in every per-sender phase did before batching. *)
        let all_echoed = List.for_all (fun e -> e <> None) echoes in
        let ok = ref all_echoed in
        let view = ref [] in
        for k = n_members - 1 downto 0 do
          let sender = member_arr.(k) in
          let mine = mine_row.(k) in
          let agreed =
            all_echoed
            && List.for_all
                 (fun e ->
                   match e with
                   | None -> false
                   | Some vec -> (
                     match (mine, vec.(k)) with
                     | Some a, Some b -> Util.Codec.view_equal_bytes b a
                     | None, None -> true
                     | _ -> false))
                 echoes
          in
          if not agreed then ok := false;
          match (if agreed then mine else None) with
          | Some v -> view := (sender, v) :: !view
          | None -> ()
        done;
        if !ok && List.length !view = n_members then (i, Outcome.Output !view)
        else (i, Outcome.Abort (Outcome.Equivocation "all-to-all naive mismatch")))
  | Fingerprinted ->
    (* Round 1: everyone sends their input to every other participant. *)
    distribute ();
    let views_in_order =
      Netsim.Net.run_round ?pool net ~parties:members (fun p ->
          let i = Netsim.Net.Party.id p in
          List.map
            (fun src ->
              if src = i then (src, Some (input src))
              else (src, Netsim.Net.Party.recv_one p ~src))
            members)
    in
    let views = Hashtbl.create 16 in
    List.iter2 (fun i view -> Hashtbl.replace views i view) members views_in_order;
    (* Round 2: pairwise equality over the concatenated views.  View
       encodings go through one shared scratch writer: Equality.pairwise
       evaluates [value] once per member on the calling domain (its
       sizing fold fills the cache before any sharded phase), so the
       scratch is single-owner and its grown capacity is reused across
       all |S| encodes instead of re-doubling a Buffer per member. *)
    let view_scratch = Util.Codec.writer () in
    let verdicts =
      Equality.pairwise ?pool ?deadline net rng params ~members
        ~value:(fun i ->
          Util.Codec.encode_into view_scratch write_view_msg (Hashtbl.find views i))
        ~corruption ~adv:adv.eq
    in
    List.map
      (fun (i, passed) ->
        let view = Hashtbl.find views i in
        let complete = List.for_all (fun (_, v) -> v <> None) view in
        if passed && complete then
          (i, Outcome.Output (List.map (fun (id, v) -> (id, Option.get v)) view))
        else if not complete then (i, Outcome.Abort (Outcome.Missing "silent participant"))
        else (i, Outcome.Abort (Outcome.Equality_failed "view fingerprints differ")))
      verdicts
