type variant = Naive | Fingerprinted

type adv = {
  input_value : (me:int -> dst:int -> bytes) option;
  drop : (src:int -> dst:int -> bool) option;
  eq : Equality.adv;
}

let honest_adv = { input_value = None; drop = None; eq = Equality.honest_adv }

(* A party's "view" after the distribution round: its own input plus what it
   heard from each other participant ([None] = silence). *)
let encode_view view =
  Util.Codec.encode
    (fun w ->
      Util.Codec.write_list w (fun w (id, v) ->
          Util.Codec.write_varint w id;
          Util.Codec.write_option w Util.Codec.write_bytes v))
    view

let run net rng params ~variant ~participants ~input ~corruption ~adv =
  (* Input thunks may consume randomness; evaluate once per participant so
     the value sent, echoed and placed in views is identical. *)
  let input =
    let cache = Hashtbl.create 16 in
    fun i ->
      match Hashtbl.find_opt cache i with
      | Some v -> v
      | None ->
        let v = input i in
        Hashtbl.replace cache i v;
        v
  in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let should_drop ~src ~dst =
    is_corrupt src && match adv.drop with Some f -> f ~src ~dst | None -> false
  in
  let members = List.sort_uniq compare participants in
  match variant with
  | Naive ->
    (* |S| parallel single-source broadcasts restricted to the subset, run
       simultaneously: one distribution round (raw values per ordered
       pair), then one echo round in which each party re-broadcasts its
       ENTIRE received vector as a single batched message — a Bitpack
       presence bitmap (one bit per sender in member order) followed by
       the present values.  Wire cost stays Θ(|S|³·ℓ) in the echoes (the
       naive baseline the fingerprinted variant beats), but the per-value
       option framing of the old one-message-per-sender echo collapses to
       one bit, and message count drops from O(|S|³) to O(|S|²). *)
    let member_arr = Array.of_list members in
    let n_members = Array.length member_arr in
    (* Distribution round. *)
    List.iter
      (fun src ->
        let value = input src in
        List.iter
          (fun dst ->
            if dst <> src && not (should_drop ~src ~dst) then begin
              let v =
                match adv.input_value with
                | Some f when is_corrupt src -> f ~me:src ~dst
                | _ -> value
              in
              Netsim.Net.send net ~src ~dst v
            end)
          members)
      members;
    Netsim.Net.step net;
    let received = Hashtbl.create 16 in
    List.iter
      (fun i ->
        List.iter
          (fun sender ->
            let v =
              if sender = i then Some (input sender)
              else
                match Netsim.Net.recv_from net ~dst:i ~src:sender with
                | [ v ] -> Some v
                | _ -> None
            in
            Hashtbl.replace received (sender, i) v)
          members)
      members;
    (* Echo round: one batched message per ordered pair. *)
    let encode_echo i =
      let present =
        Array.map (fun s -> Hashtbl.find received (s, i) <> None) member_arr
      in
      let w = Util.Codec.writer () in
      Util.Codec.write_raw w (Bitpack.pack present);
      Array.iter
        (fun s ->
          match Hashtbl.find received (s, i) with
          | Some v -> Util.Codec.write_bytes w v
          | None -> ())
        member_arr;
      Util.Codec.contents w
    in
    let decode_echo payload =
      match
        Util.Codec.decode
          (fun r ->
            let bitmap = Util.Codec.read_raw r ((n_members + 7) / 8) in
            let present = Bitpack.unpack bitmap ~nbits:n_members in
            let vec = Array.make n_members None in
            for k = 0 to n_members - 1 do
              if present.(k) then vec.(k) <- Some (Util.Codec.read_bytes r)
            done;
            vec)
          payload
      with
      | vec -> Some vec
      | exception Util.Codec.Decode_error _ -> None
    in
    List.iter
      (fun i ->
        let payload = encode_echo i in
        List.iter
          (fun dst ->
            if dst <> i && not (should_drop ~src:i ~dst) then
              Netsim.Net.send net ~src:i ~dst payload)
          members)
      members;
    Netsim.Net.step net;
    List.map
      (fun i ->
        let echoes =
          List.filter_map
            (fun j ->
              if j = i then None
              else
                Some
                  (match Netsim.Net.recv_from net ~dst:i ~src:j with
                  | [ p ] -> decode_echo p
                  | _ -> None))
            members
        in
        (* A silent or garbled peer voids every sender's consistency, as a
           peer silent in every per-sender phase did before batching. *)
        let all_echoed = List.for_all (fun e -> e <> None) echoes in
        let ok = ref all_echoed in
        let view = ref [] in
        for k = n_members - 1 downto 0 do
          let sender = member_arr.(k) in
          let mine = Hashtbl.find received (sender, i) in
          let agreed =
            all_echoed
            && List.for_all
                 (fun e ->
                   match e with
                   | None -> false
                   | Some vec -> (
                     match (mine, vec.(k)) with
                     | Some a, Some b -> Bytes.equal a b
                     | None, None -> true
                     | _ -> false))
                 echoes
          in
          if not agreed then ok := false;
          (match (if agreed then mine else None) with
          | Some v -> view := (sender, v) :: !view
          | None -> ());
          if not agreed then Hashtbl.replace received (sender, i) None
        done;
        if !ok && List.length !view = n_members then (i, Outcome.Output !view)
        else (i, Outcome.Abort (Outcome.Equivocation "all-to-all naive mismatch")))
      members
  | Fingerprinted ->
    (* Round 1: everyone sends their input to every other participant. *)
    List.iter
      (fun src ->
        let value = input src in
        List.iter
          (fun dst ->
            if dst <> src && not (should_drop ~src ~dst) then begin
              let v =
                match adv.input_value with
                | Some f when is_corrupt src -> f ~me:src ~dst
                | _ -> value
              in
              Netsim.Net.send net ~src ~dst v
            end)
          members)
      members;
    Netsim.Net.step net;
    let views = Hashtbl.create 16 in
    List.iter
      (fun i ->
        let view =
          List.map
            (fun src ->
              if src = i then (src, Some (input src))
              else
                match Netsim.Net.recv_from net ~dst:i ~src with
                | [ v ] -> (src, Some v)
                | _ -> (src, None))
            members
        in
        Hashtbl.replace views i view)
      members;
    (* Round 2: pairwise equality over the concatenated views. *)
    let verdicts =
      Equality.pairwise net rng params ~members
        ~value:(fun i -> encode_view (Hashtbl.find views i))
        ~corruption ~adv:adv.eq
    in
    List.map
      (fun (i, passed) ->
        let view = Hashtbl.find views i in
        let complete = List.for_all (fun (_, v) -> v <> None) view in
        if passed && complete then
          (i, Outcome.Output (List.map (fun (id, v) -> (id, Option.get v)) view))
        else if not complete then (i, Outcome.Abort (Outcome.Missing "silent participant"))
        else (i, Outcome.Abort (Outcome.Equality_failed "view fingerprints differ")))
      verdicts
