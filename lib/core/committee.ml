type adv = {
  false_claim : (me:int -> bool) option;
  claim_subset : (me:int -> dst:int -> bool) option;
  eq : Equality.adv;
}

let honest_adv = { false_claim = None; claim_subset = None; eq = Equality.honest_adv }

type view = { committee : int list; elected : bool }

(* Shared one-byte claim notification (payloads are immutable by
   convention, so one buffer serves every send). *)
let claim_payload = Bytes.make 1 '\001'

(* Cost phases (see Analysis.Costs): one claim-notification round (K·(n−1)
   one-byte messages, K = the sampled number of claimants, recorded as
   observable [claims] under [pre]) followed by View_check's two rounds.
   Total rounds: 3, a constant — itself one of the paper's claims. *)
let cost_phases ~pre ~n ~lambda =
  let open Analysis.Costs in
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let claims = Var (jn "claims") in
  exact ~label:(jn "claims") ~edge:"claimant->all"
    ~bits:(Cost_expr.bits (Mul [ claims; Sub (n, Const 1) ]))
    ~messages:(Mul [ claims; Sub (n, Const 1) ])
    ~rounds:(Const 1)
  :: View_check.cost_phases ~pre:(jn "vc") ~n ~lambda

let cost_spec ~n ~lambda =
  let open Analysis.Costs in
  {
    name = "committee.run";
    phases = cost_phases ~pre:"" ~n ~lambda;
    (* Exact locality: a claimant notifies all n−1 peers, so with K ≥ 1
       claims some party touches everyone (and View_check's committee
       traffic is a subset of those peers); with K = 0 nothing is sent
       at all.  Exact under honest_adv even with corrupted parties. *)
    max_locality = Some (Mul [ Ge (Var "claims", Const 1); Sub (n, Const 1) ]);
  }

let run ?pool ?deadline ?obs net rng params ~corruption ~adv =
  let n = Netsim.Net.n net in
  let p = Params.committee_prob params in
  let bound = Params.committee_bound params in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  (* Step 1: Bernoulli coins (corrupted parties may ignore theirs). *)
  let coin = Array.init n (fun _ -> Util.Prng.bernoulli rng p) in
  let claims =
    Array.init n (fun i ->
        match adv.false_claim with
        | Some f when is_corrupt i -> f ~me:i
        | _ -> coin.(i))
  in
  (match obs with
  | Some o ->
    Analysis.Costs.Obs.set o "claims"
      (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 claims)
  | None -> ());
  (* Step 2: election notification. *)
  for i = 0 to n - 1 do
    if claims.(i) then
      for dst = 0 to n - 1 do
        if dst <> i then begin
          let deliver =
            match adv.claim_subset with
            | Some f when is_corrupt i -> f ~me:i ~dst
            | _ -> true
          in
          if deliver then Netsim.Net.send net ~src:i ~dst claim_payload
        end
      done
  done;
  Netsim.Net.step_until_quiet ?deadline net;
  (* Step 3: collect views, abort on too many claims.  Per-party inbox
     drains are independent, so the collection shards across domains.
     Only the active frontier is stepped; a party nobody claimed to sees
     the empty view it would have computed anyway, and the claim bound is
     >= 1 (ceil of a positive number) so the empty view never aborts —
     the restriction is exact.  Results carry their party id because the
     frontier is no longer positional. *)
  let views = Array.make n [] in
  let aborted = Array.make n false in
  let collected =
    Netsim.Net.run_round ?pool net
      ~parties:(Netsim.Net.active_parties net)
      (fun p ->
        ( Netsim.Net.Party.id p,
          List.map fst (Netsim.Net.Party.recv p) |> List.sort_uniq compare ))
  in
  List.iter
    (fun (i, senders) ->
      views.(i) <- senders;
      if List.length senders >= bound then aborted.(i) <- true)
    collected;
  (* Step 4: pairwise equality over committee views. *)
  View_check.run ?deadline
    ?obs:(Option.map (fun o -> Analysis.Costs.Obs.scoped o "vc") obs)
    net rng params ~claims ~views ~corruption ~eq:adv.eq ~aborted;
  Array.init n (fun i ->
      if aborted.(i) then
        Outcome.Abort
          (if List.length views.(i) >= bound then Outcome.Flooded "too many committee claims"
           else Outcome.Equality_failed "committee views differ")
      else
        Outcome.Output
          { committee = View_check.self_view ~claims ~views i; elected = claims.(i) })

let consistent_committee outs corruption =
  let honest_member_views =
    List.filter_map
      (fun i ->
        match outs.(i) with
        | Outcome.Output v when v.elected -> Some v.committee
        | _ -> None)
      (Netsim.Corruption.honest_list corruption)
  in
  match honest_member_views with
  | [] -> None
  | first :: rest -> if List.for_all (( = ) first) rest then Some first else None
