(** A classical baseline: GMW-style n-party computation over point-to-point
    channels with additive secret sharing and Beaver multiplication triples.

    This is the "generic MPC" yardstick the paper's committee-based
    protocols are designed to beat as [n] grows: every AND gate costs one
    Beaver opening, and every opening is an all-to-all exchange of shares —
    [Θ(n²)] bits {e per gate}, versus Algorithm 3's [Õ(n²/h)] {e total}.
    Experiment E13 measures the crossover.

    Model notes (documented in DESIGN.md §3):
    - Beaver triples come from a trusted dealer (the CRS in spirit; a real
      dishonest-majority preprocessing would itself need the paper's
      machinery, which is the point of the comparison).  Triple bits are
      {e not} counted as protocol communication; the online phase is.
    - The protocol is semi-honest: it computes correctly when parties
      follow it.  It has {b no} abort mechanism — running it against our
      active adversaries shows exactly the failure the paper's protocols
      exist to prevent (see the tests), since without verification a single
      lying party silently corrupts the output.

    Shares: party [i] holds bit [xᵢ] with [x = ⊕ᵢ xᵢ].  XOR/NOT are local;
    AND uses one triple; outputs are opened by exchanging shares. *)

type adv = {
  flip_share : (me:int -> gate_index:int -> bool) option;
      (** a corrupted party flips its share during an opening — undetectable
          in plain GMW, which is the baseline's weakness *)
}

val honest_adv : adv

(** [run net rng ~circuit ~input_width ~inputs ~corruption ~adv] — every
    party ends with the (claimed) output bits; with [honest_adv] these
    equal [Circuit.eval].  Returns the per-party packed outputs. *)
val run :
  Netsim.Net.t ->
  Util.Prng.t ->
  circuit:Circuit.t ->
  input_width:int ->
  inputs:int array ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  bytes array

(** [triples_used ~circuit] — the number of AND gates = Beaver triples the
    dealer must supply. *)
val triples_used : circuit:Circuit.t -> int

(** Closed-form cost spec of {!run} (see {!Analysis.Costs}): input
    sharing, one batched Beaver opening per layer containing
    multiplicative gates, and the output opening — each an all-pairs
    exchange of one packed message, so [n(n−1)] messages per phase and
    rounds = 2 + the number of multiplicative layers.  Exact (no
    randomness in any payload size). *)
val cost_spec :
  circuit:Circuit.t -> input_width:int -> n:Analysis.Costs.expr -> Analysis.Costs.spec
