(** Registered {!Netsim.Dist} programs for the protocol library.

    [a2a.naive] replicates the honest [All_to_all.run ~variant:Naive]
    party over participants [0..n-1] with KDF-derived inputs (the E9
    naive workload): byte-identical send sequence, payloads, round
    structure and verdicts, deterministic in [(args, me)] alone so a
    crashed worker replays to the same state.  Args are
    {!encode_args}[ ~len ~info]; party [i]'s input is
    [Crypto.Kdf.expand ~key:(string_of_int i) ~info len]. *)

(** Codec-encode the [a2a.naive] argument record. *)
val encode_args : len:int -> info:string -> bytes

(** Party [i]'s input under the given args — same derivation the program
    uses, for in-process comparison runs. *)
val input_of : info:string -> len:int -> int -> bytes

(** The wire form of an [a2a.naive] verdict; applying it to
    [All_to_all.run Naive] outcomes yields the exact bytes the dist
    program returns, which is how the byte-identity tests compare. *)
val encode_a2a_outcome : (int * bytes) list Outcome.t -> bytes

(** Register all programs (idempotent).  Call before
    {!Netsim.Dist.create} so forked workers inherit the registry. *)
val register : unit -> unit
