(** All-to-All (simultaneous) Broadcast with abort — the functionality
    [F_SB] of §3.3, implemented over point-to-point channels.

    Two variants, matching §2.1 of the paper:

    - {!Naive} — the Goldwasser–Lindell construction: [|S|] parallel runs
      of single-source broadcast with full echoes, [O(|S|³·ℓ)] bits.
    - {!Fingerprinted} — the paper's optimization: everyone sends their
      input to everyone ([O(|S|²·ℓ)]), then the [|S|] concatenated views
      are pairwise equality-tested with [O(λ log)]-bit fingerprints
      ([O(|S|²·λ·log n)]).  This is the [Õ(n²)] protocol of Remark 8, and
      the committee-internal broadcast used by the encrypted functionality.

    [participants] restricts the protocol to a subset of the network (the
    paper runs [F_SB] both on all [n] parties and inside committees).

    Domain-safety: the [input i] memo and the per-receiver echo tables
    are per-call; nothing is cached at module level, so concurrent runs
    on distinct networks (see {!Netsim.Net}) are safe.  With [~pool] the
    per-party distribution, collection/echo, and output rounds run
    through {!Netsim.Net.run_round}, sharding parties across domains;
    all [input] thunks are forced on the calling domain first (they may
    consume shared randomness), and the adversary callbacks must be pure
    (all of {!Attacks}' are).  Output is bit-identical at any domain
    count. *)

type variant = Naive | Fingerprinted

type adv = {
  input_value : (me:int -> dst:int -> bytes) option;
      (** equivocate: what a corrupted party claims its input is, per peer *)
  drop : (src:int -> dst:int -> bool) option;
  eq : Equality.adv;  (** misbehavior inside the verification step *)
}

val honest_adv : adv

(** [run net rng params ~variant ~participants ~input ~corruption ~adv] —
    each participant either outputs the full vector of participant inputs
    (as [(id, value)] sorted by id) or aborts.  Result is ordered like
    [participants]. *)
val run :
  ?pool:Util.Pool.t ->
  ?deadline:int ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  variant:variant ->
  participants:int list ->
  input:(int -> bytes) ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  (int * (int * bytes) list Outcome.t) list

(** {1 Cost specs} (see {!Analysis.Costs})

    Honest-run accounting over [k] members with uniform [len]-byte
    inputs; [idsum] = Σ varint_size(id) over the member ids.  Naive is
    exact; Fingerprinted carries the fingerprint-residue slack from its
    embedded {!Equality.cost_phases_pairwise}. *)

val cost_phases :
  variant:variant ->
  pre:string ->
  k:Analysis.Costs.expr ->
  idsum:Analysis.Costs.expr ->
  len:Analysis.Costs.expr ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  Analysis.Costs.phase list

val cost_spec :
  variant:variant ->
  k:Analysis.Costs.expr ->
  idsum:Analysis.Costs.expr ->
  len:Analysis.Costs.expr ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  Analysis.Costs.spec
