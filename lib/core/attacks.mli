(** Canned adversary strategies used by the test suite and the
    experiments.  Each constructor builds the hook record of the protocol
    it attacks; tests assert that every one of these either fails to break
    agreement or triggers an honest abort (the paper's guarantee). *)

(** {1 Broadcast attacks} *)

(** The classic equivocation: the corrupted sender sends [v1] to even-id
    parties and [v2] to odd-id parties. *)
val equivocating_sender : v1:bytes -> v2:bytes -> Broadcast.adv

(** Corrupted echoers claim they received [fake] regardless of the truth. *)
val lying_echo : fake:bytes -> Broadcast.adv

(** The corrupted sender sends only to the given recipients (partial
    silence). *)
val partial_sender : recipients:Util.Iset.t -> Broadcast.adv

(** {1 All-to-all attacks} *)

(** Corrupted parties report input [v1] to lower-id peers and [v2] to
    higher-id peers. *)
val split_input : v1:bytes -> v2:bytes -> All_to_all.adv

(** {1 Committee election attacks} *)

(** Every corrupted party claims election, but tells only the parties with
    id below [cutoff] (equivocating the claim). *)
val selective_claim : cutoff:int -> Committee.adv

(** Every corrupted party claims election loudly (inflation attack —
    should trip the [2pn] flood bound when there are many). *)
val claim_all : Committee.adv

(** Corrupted committee members lie in the view equality test (answer
    "equal" always). *)
val lying_view_check : Committee.adv

(** {1 MPC (Algorithm 3) attacks} *)

(** Corrupted committee members forward a corrupted public key to half the
    network. *)
val pk_equivocation : Mpc_abort.adv

(** Corrupted parties send different ciphertexts to different committee
    members. *)
val ct_equivocation : Mpc_abort.adv

(** Corrupted committee members send invalid partial decryptions inside
    [F_Comp]. *)
val bad_partial_decryptions : Mpc_abort.adv

(** Corrupted committee members forward a flipped output to half the
    network. *)
val output_tamper : Mpc_abort.adv

(** {1 Gossip attacks} *)

(** Corrupted parties flip one byte of every rumor they forward to
    higher-id neighbors. *)
val gossip_equivocate : Gossip.adv

(** Corrupted parties forge a rumor claiming [origin] said [value]. *)
val gossip_forge : origin:int -> value:bytes -> Gossip.adv

(** Corrupted parties refuse to forward warnings. *)
val gossip_suppress_warnings : Gossip.adv

(** {1 Sparse network attacks} *)

(** All corrupted parties also connect to [victim] (the flooding/DDoS
    attack of §2.3 — should trip the victim's [2d] bound). *)
val flood_victim : victim:int -> Sparse_network.adv

(** {1 Theorem 4 attacks} *)

(** Corrupted members alter ciphertexts they relay in the step 6
    exchange. *)
val exchange_tamper : Local_mpc.theorem4_adv

(** Corrupted members forward a wrong output to their covers. *)
val t4_output_tamper : Local_mpc.theorem4_adv

(** {1 Helpers} *)

(** [flip_byte b] — [b] with its first byte XOR 0xFF (distinct non-empty
    value of the same length); empty input becomes ["\255"]. *)
val flip_byte : bytes -> bytes

(** {1 The generic adversary compiler}

    [fuzz rng ~schedule ~n spec] builds a {!Netsim.Faults} schedule (a
    pure function of [rng]'s position, the schedule id and the spec), and
    the [fuzz_*] builders compile it into each protocol's hook record:
    message-suppressing hooks draw {!Netsim.Faults.drops} (drop + crash),
    value hooks go through {!Netsim.Faults.corrupt_payload}
    (flip/truncate/replay/equivocate), boolean lies draw pure
    {!Netsim.Faults.decide} coins at {!Netsim.Faults.value_prob}, and
    out-of-thin-air amplification (forged rumors, claim inflation, extra
    routing targets) reuses the [duplicate] probability.  Equality-test
    hooks are compiled stateless — {!Equality.pairwise} runs them from
    per-pair parallel jobs, outside the per-party ownership contract the
    replay slot requires.  Every builder documents its stage map (the
    phase indices crash-at-stage-r silences). *)

val fuzz : Util.Prng.t -> schedule:int -> n:int -> Netsim.Faults.spec -> Netsim.Faults.t

val fuzz_equality : Netsim.Faults.t -> stage:int -> Equality.adv
val fuzz_broadcast : Netsim.Faults.t -> sender:int -> value:bytes -> Broadcast.adv
val fuzz_all_to_all : Netsim.Faults.t -> input:(int -> bytes) -> All_to_all.adv
val fuzz_committee : Netsim.Faults.t -> Committee.adv
val fuzz_gossip : ?stage:int -> Netsim.Faults.t -> Gossip.adv
val fuzz_enc_func : Netsim.Faults.t -> stage:int -> Enc_func.adv
val fuzz_sparse : Netsim.Faults.t -> Sparse_network.adv
val fuzz_mpc_abort : Netsim.Faults.t -> Mpc_abort.adv
val fuzz_theorem2 : Netsim.Faults.t -> Local_mpc.theorem2_adv
val fuzz_theorem4 : Netsim.Faults.t -> Local_mpc.theorem4_adv
