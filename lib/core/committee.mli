(** Algorithm 2 — [CommitteeElect], the self-election protocol.

    Each party flips a coin with bias [p = min(1, α·ln n / h)]; winners
    notify the whole network; everyone aborts if too many claims arrive
    ([≥ 2pn], step 3); finally the claimed committee members pairwise
    equality-test their views of the committee (step 4).

    Guarantees (Claims 12 and 14): [Õ(n²/h)] bits of communication; with
    probability [1 - n^{-Ω(min(α,λ))}] either someone aborts or the
    committee contains at least one honest party and all honest committee
    members share the same view [C]. *)

type adv = {
  false_claim : (me:int -> bool) option;
      (** a corrupted party claims election regardless of its coin *)
  claim_subset : (me:int -> dst:int -> bool) option;
      (** equivocate: notify only some parties of the claim *)
  eq : Equality.adv;
}

val honest_adv : adv

(** The result at one party: its view of the committee (sorted ids,
    including itself if elected), or an abort. *)
type view = { committee : int list; elected : bool }

(** With [~pool], the step-3 view collection (each party draining and
    deduplicating its claim inbox) shards across domains via
    {!Netsim.Net.run_round}; coins, claims, and the equality phase stay
    on the calling domain.  Output is bit-identical at any domain
    count.

    [?obs] records cost-spec observables: [claims] (number of claimant
    parties) plus View_check's observables under prefix [vc]. *)
val run :
  ?pool:Util.Pool.t ->
  ?deadline:int ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  view Outcome.t array

(** Cost phases of {!run} (see {!Analysis.Costs}): the claim-notification
    round plus {!View_check.cost_phases} under prefix [vc] — always
    exactly 3 rounds. *)
val cost_phases :
  pre:string ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  Analysis.Costs.phase list

val cost_spec : n:Analysis.Costs.expr -> lambda:Analysis.Costs.expr -> Analysis.Costs.spec

(** [consistent_committee outs corruption] — the common honest-member view
    if all honest elected members agree, used by the MPC protocols to
    continue with the elected committee.  [None] when no honest party was
    elected or views diverge. *)
val consistent_committee : view Outcome.t array -> Netsim.Corruption.t -> int list option
