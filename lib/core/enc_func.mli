(** The encrypted functionality [F\[PKE, f\]] of §3.3 — the Theorem 9
    machinery the committee uses to compute on encrypted inputs.

    Theorem 9 (Mukherjee–Wichs MKFHE + UC NIZK from LWE) says any
    functionality can be securely computed with:

    + one {b simultaneous broadcast} among the participants, each message
      of size [poly(λ, D, ℓ_in)] — here executed as a real run of the
      fingerprinted {!All_to_all} protocol restricted to the participants,
      carrying payloads sized by {!Cost_model.round1_bytes};
    + for each {e secret} output bit delivered to recipient [i], a
      {b partial decryption} plus NIZK proof of size [poly(λ, D)] from
      every other participant — real point-to-point messages sized by
      {!Cost_model.partial_dec_bytes}.

    {b Public vs private outputs.}  A [public_output] is a value every
    participant can derive locally from the round-1 broadcast — e.g. the
    joint public key of [F_Gen], which in TFHE/MKFHE is the combination of
    the broadcast key shares and needs {e no} decryption.  It costs nothing
    beyond the broadcast.  [private_outputs] model actual decrypted values
    and pay the per-bit partial-decryption traffic.

    The {e logical} result is produced by a trusted evaluator closure (the
    ideal functionality), while the above bits flow on the simulated
    network; DESIGN.md §3 documents why this preserves everything the
    paper's claims depend on.  NIZK soundness is modeled by a validity
    tag: honest messages carry tag 0 and any adversarial deviation is
    visible as a non-zero tag or malformed length (a sound proof system
    makes deviation detectable — that detectability is all we keep).

    Domain-safety: the input memo and the broadcast-consistency table are
    per-call; a run touches only the network/RNG/PKE instance it is
    handed, so jobs that own those (see {!Netsim.Net}) can run this
    concurrently.

    Parallelism: with [~pool] the round-1 broadcast, the partial
    decryption fan-out, and the per-recipient verification all shard
    through [Netsim.Net.run_round] (the fan-out and collection are
    rng-free); results and accounting are byte-identical at any jobs
    count. *)

type result = {
  public_output : bytes;
      (** locally derivable from round-1; delivered to every participant *)
  private_outputs : (int * bytes) list;
      (** per-recipient secret outputs; pay partial-decryption traffic *)
}

type adv = {
  sb : All_to_all.adv;  (** misbehavior during the round-1 broadcast *)
  substitute_input : (me:int -> bytes -> bytes) option;
      (** ideal-world input substitution by corrupted participants *)
  tamper_partial : (me:int -> dst:int -> bool) option;
      (** send an invalid partial decryption (detected by the NIZK) *)
  drop_partial : (me:int -> dst:int -> bool) option;
}

val honest_adv : adv

(** [run net rng params ~participants ~private_input ~depth ~eval
    ~corruption ~adv] executes one Theorem 9 protocol instance.

    [eval inputs] receives the (possibly adversarially substituted)
    private inputs as [(party, bytes)] pairs and returns the outputs.
    Recipients of private outputs must be participants.

    On success each participant receives
    [(public_output, its private output or empty)]. *)
val run :
  ?pool:Util.Pool.t ->
  ?deadline:int ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  participants:int list ->
  private_input:(int -> bytes) ->
  depth:int ->
  eval:((int * bytes) list -> result) ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  (int * (bytes * bytes) Outcome.t) list

(** Cost phases of {!run} (see {!Analysis.Costs}) for [k] participants
    (id varint sizes summing to [idsum]) with uniform [inbits]-bit
    private inputs, [recipients] parties receiving a nonempty
    [outbytes]-byte private output, and circuit depth [depth]: a
    fingerprinted {!All_to_all} over {!Cost_model.round1_bytes}-sized
    payloads (3 rounds, sub-phases under [pre].sb), then one
    partial-decryption round of [recipients·(k−1)] messages sized
    [1 + partial_dec_bytes·blocks(8·outbytes)].  Total 4 rounds; only
    fingerprint residues carry slack. *)
val cost_phases :
  pre:string ->
  k:Analysis.Costs.expr ->
  idsum:Analysis.Costs.expr ->
  depth:Analysis.Costs.expr ->
  inbits:Analysis.Costs.expr ->
  outbytes:Analysis.Costs.expr ->
  recipients:Analysis.Costs.expr ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  Analysis.Costs.phase list

val cost_spec :
  k:Analysis.Costs.expr ->
  idsum:Analysis.Costs.expr ->
  depth:Analysis.Costs.expr ->
  inbits:Analysis.Costs.expr ->
  outbytes:Analysis.Costs.expr ->
  recipients:Analysis.Costs.expr ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  Analysis.Costs.spec
