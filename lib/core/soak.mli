(** Randomized Byzantine soak testing: sweep the protocol suite under
    {!Netsim.Faults} schedules and assert the paper's selective-abort
    predicates on every run.

    One {e case} is a single protocol execution, fully determined by a
    [(seed, schedule-id, protocol)] triple: the case derives keyed
    {!Util.Prng} substreams for its dimensions ([n], [h]), corruption
    pattern ({!Netsim.Corruption.random} or [targeting], victim at the
    boundaries or inside), fault spec, protocol randomness, and fault
    schedule — so any reported violation replays byte-identically from
    its printed command.  The spec substream is independent of the
    others, which is what makes {!shrink} sound: re-running with a
    smaller spec perturbs nothing else.

    Checked predicates, per protocol:
    - {!Outcome.agreement_or_abort} everywhere (the paper's guarantee);
    - honest-sender correctness for broadcast, honest-entry correctness
      for all-to-all vectors, honest-origin correctness for gossip,
      honest-elected view agreement for committee election;
    - no escaped exception ({!Netsim.Net.Livelock} and any other raise
      is reported as a violation with the replay command).

    The deliberately broken ["broken-broadcast"] variant (echo-equality
    check disabled, first-heard-wins) is excluded from {!protocols}; the
    {!canary} sweep runs it and must find violations — proving the
    harness can actually fail. *)

type case = {
  protocol : string;
  seed : int;
  schedule : int;
  n : int;
  h : int;
  spec : Netsim.Faults.spec;
  async : bool;  (** ran on an adversarially-scheduled event transport *)
  violation : string option;  (** [None] = all predicates held *)
}

(** The default entry points, in execution order: ["broadcast-naive"],
    ["broadcast-fp"], ["all-to-all"], ["committee"], ["gossip"],
    ["mpc-abort"], ["theorem2"], ["theorem4"]. *)
val protocols : string list

(** The deadline-aware subset swept in async mode: ["broadcast-naive"],
    ["broadcast-fp"], ["all-to-all"], ["committee"], ["gossip"].  Each of
    these turns a message missing its round deadline into its own
    failed-check/abort path, which is exactly what the async predicates
    probe. *)
val async_protocols : string list

(** [run_case ?spec ?async ~seed ~schedule protocol] executes one case.
    With [?spec] the derived fault spec is overridden (the shrinking
    move) — every other derived quantity is unchanged.  With
    [~async:true] the case runs on a {!Netsim.Event_net} transport: the
    latency/horizon/scheduler config is drawn from the case's own keyed
    substream, the adversarial delivery scheduler from
    {!Netsim.Faults.scheduler_stream} (so timing replays with the payload
    faults), and every deadline-aware phase waits up to the transport's
    fairness span.  Raises [Invalid_argument] on an unknown protocol
    name, or on [~async:true] for a protocol outside
    {!async_protocols}. *)
val run_case :
  ?spec:Netsim.Faults.spec -> ?async:bool -> seed:int -> schedule:int -> string -> case

(** All protocols (default {!protocols}, or {!async_protocols} when
    [~async:true]) at one schedule id. *)
val run_schedule :
  ?protocols:string list -> ?async:bool -> seed:int -> schedule:int -> unit -> case list

(** [shrink case] greedily disables one fault kind at a time, keeping a
    kind disabled whenever the violation still reproduces without it;
    returns the minimal still-violating case.  Identity on non-violating
    cases. *)
val shrink : case -> case

(** The exact command that reproduces this case's schedule. *)
val replay_command : case -> string

(** One paragraph per violation: protocol, (n, h), the (shrunk) spec,
    the failed predicate, and the replay command. *)
val describe : case -> string

type report = {
  total_cases : int;
  total_schedules : int;
  violations : case list;  (** already shrunk *)
}

(** [run_sweep ?pool ?protocols ?async ~seed ~schedules ()] — schedule
    ids [0 .. schedules-1], optionally fanned across a {!Util.Pool} (each
    schedule builds its own networks, RNGs and fault engines, so jobs
    share nothing).  With [~async:true] every case runs on its derived
    event transport (see {!run_case}) and the default protocol list is
    {!async_protocols}.  Violations are shrunk before reporting (the
    shrink replays under the same transport). *)
val run_sweep :
  ?pool:Util.Pool.t ->
  ?protocols:string list ->
  ?async:bool ->
  seed:int ->
  schedules:int ->
  unit ->
  report

(** [canary ~seed ~schedules] sweeps the broken-broadcast variant and
    returns its violations (expected non-empty: the variant outputs the
    first value heard and never cross-checks, so an equivocating fault
    schedule splits honest outputs without any abort). *)
val canary : ?pool:Util.Pool.t -> seed:int -> schedules:int -> unit -> report
