module Codec = Util.Codec

let encode_args ~len ~info =
  Codec.encode
    (fun w () ->
      Codec.write_varint w len;
      Codec.write_string w info)
    ()

let decode_args args =
  Codec.decode
    (fun r ->
      let len = Codec.read_varint r in
      let info = Codec.read_string r in
      (len, info))
    args

let input_of ~info ~len i = Crypto.Kdf.expand ~key:(Bytes.of_string (string_of_int i)) ~info len

(* Verdict wire form, shared by the worker-side program and the
   in-process comparison path. *)
let encode_a2a_outcome outcome =
  Codec.encode
    (fun w (o : (int * bytes) list Outcome.t) ->
      match o with
      | Outcome.Output view ->
        Codec.write_varint w 1;
        Codec.write_list w
          (fun w (id, v) ->
            Codec.write_varint w id;
            Codec.write_bytes w v)
          view
      | Outcome.Abort (Outcome.Equivocation s) ->
        Codec.write_varint w 0;
        Codec.write_string w s
      | Outcome.Abort reason ->
        Codec.write_varint w 2;
        Codec.write_string w (Outcome.reason_to_string reason))
    outcome

(* The honest All_to_all [Naive] party, as a [Dist.party_step]: same
   send order, same payload bytes, same verdicts as [All_to_all.run
   ~variant:Naive] over participants [0..n-1] with KDF-derived inputs —
   the byte-identity the dist tests and the bench's [--diff] gate pin.
   Deterministic in [(args, me)] alone, so a crashed worker's replay
   reconstructs the exact same run. *)
let a2a_naive ~n ~args ~me =
  let len, info = decode_args args in
  let input i = input_of ~info ~len i in
  let mine = input me in
  let row = ref [||] in
  let recv_one inbox ~src =
    match List.filter (fun (s, _) -> s = src) inbox with
    | [ (_, payload) ] -> Some payload
    | _ -> None
  in
  fun ~round ~inbox ~send ->
    match round with
    | 0 ->
      (* Distribution: raw input to every other member, ascending. *)
      for dst = 0 to n - 1 do
        if dst <> me then send ~dst mine
      done;
      None
    | 1 ->
      (* Echo: presence bitmap over the received row + present values,
         one batched payload to everyone. *)
      let r =
        Array.init n (fun sender ->
            if sender = me then Some mine else recv_one inbox ~src:sender)
      in
      row := r;
      let w = Codec.writer () in
      Bitpack.pack_into w (Array.map (fun v -> v <> None) r);
      Array.iter (function Some v -> Codec.write_bytes w v | None -> ()) r;
      let payload = Codec.contents w in
      for dst = 0 to n - 1 do
        if dst <> me then send ~dst payload
      done;
      None
    | 2 ->
      (* Decision: compare every echo against the own row. *)
      let decode_echo payload =
        match
          Codec.decode
            (fun r ->
              let bitmap = Codec.read_raw_view r ((n + 7) / 8) in
              let vec = Array.make n None in
              for k = 0 to n - 1 do
                if Bitpack.test bitmap k then vec.(k) <- Some (Codec.read_bytes_view r)
              done;
              vec)
            payload
        with
        | vec -> Some vec
        | exception Codec.Decode_error _ -> None
      in
      let echoes =
        List.filter_map
          (fun j ->
            if j = me then None
            else
              Some
                (match recv_one inbox ~src:j with
                | Some payload -> decode_echo payload
                | None -> None))
          (List.init n (fun j -> j))
      in
      let all_echoed = List.for_all (fun e -> e <> None) echoes in
      let ok = ref all_echoed in
      let view = ref [] in
      for k = n - 1 downto 0 do
        let my_val = !row.(k) in
        let agreed =
          all_echoed
          && List.for_all
               (fun e ->
                 match e with
                 | None -> false
                 | Some vec -> (
                   match (my_val, vec.(k)) with
                   | Some a, Some b -> Codec.view_equal_bytes b a
                   | None, None -> true
                   | _ -> false))
               echoes
        in
        if not agreed then ok := false;
        match (if agreed then my_val else None) with
        | Some v -> view := (k, v) :: !view
        | None -> ()
      done;
      let outcome =
        if !ok && List.length !view = n then Outcome.Output !view
        else Outcome.Abort (Outcome.Equivocation "all-to-all naive mismatch")
      in
      Some (encode_a2a_outcome outcome)
    | _ -> invalid_arg "dist a2a.naive: stepped past the decision round"

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Netsim.Dist.register_program "a2a.naive" a2a_naive
  end
