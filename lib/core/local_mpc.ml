type config = {
  params : Params.t;
  pke : (module Crypto.Pke.S);
  circuit : Circuit.t;
  input_width : int;
}

let expected_output config ~inputs =
  let bits = Circuit.pack_inputs ~width:config.input_width (Array.to_list inputs) in
  Bitpack.pack (Circuit.eval config.circuit bits)

(* ------------------------------------------------------------------ *)
(* Theorem 2: MPC over gossip                                          *)
(* ------------------------------------------------------------------ *)

type theorem2_adv = {
  sparse : Sparse_network.adv;
  gossip_r1 : Gossip.adv;
  gossip_pdec : Gossip.adv;
  substitute_input : (me:int -> int -> int) option;
  tamper_pdec : (me:int -> bool) option;
}

let honest_theorem2_adv =
  {
    sparse = Sparse_network.honest_adv;
    gossip_r1 = Gossip.honest_adv;
    gossip_pdec = Gossip.honest_adv;
    substitute_input = None;
    tamper_pdec = None;
  }

(* Cost phases of [run_theorem2] (see Analysis.Costs): the routing
   network (closed form), then two gossip phases — the Theorem 9 round-1
   messages (observables under [pre].g1) and the partial decryptions
   (under [pre].g2).  Payload sizes are closed-form in λ, D and the
   input/output widths; everything is exact (gossip has no slack). *)
let cost_phases_theorem2 ~pre ~n ~h ~lambda ~alpha ~depth ~input_width ~out_bits =
  let open Analysis.Costs in
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let r1_len =
    Cost_expr.round1_bytes ~lambda ~depth
      ~input_bits:(Mul [ Const 8; Ceil_div (input_width, Const 8) ])
  in
  let pdec_len =
    Cost_expr.pdec_payload ~lambda ~depth ~out_bytes:(Ceil_div (out_bits, Const 8))
  in
  (Sparse_network.cost_spec ~n ~h ~lambda ~alpha).Analysis.Costs.phases
  @ Gossip.cost_phases ~pre:(jn "g1") ~len:r1_len
  @ Gossip.cost_phases ~pre:(jn "g2") ~len:pdec_len

let cost_spec_theorem2 ~n ~h ~lambda ~alpha ~depth ~input_width ~out_bits =
  {
    Analysis.Costs.name = "local_mpc.theorem2";
    phases = cost_phases_theorem2 ~pre:"" ~n ~h ~lambda ~alpha ~depth ~input_width ~out_bits;
    max_locality = None;
  }

let run_theorem2 ?pool ?obs net rng config ~corruption ~inputs ~adv =
  let params = config.params in
  let n = Netsim.Net.n net in
  let sub_obs name = Option.map (fun o -> Analysis.Costs.Obs.scoped o name) obs in
  if Array.length inputs <> n then invalid_arg "Local_mpc.run_theorem2: wrong input count";
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let depth = Circuit.depth config.circuit in
  let lambda = params.Params.lambda in
  (* Effective inputs after ideal-world substitution. *)
  let effective = Array.mapi (fun i x ->
      match adv.substitute_input with
      | Some f when is_corrupt i -> f ~me:i x
      | _ -> x)
      inputs
  in
  (* Phase 1: routing network. *)
  let sparse_outs = Sparse_network.run ?pool net rng params ~corruption ~adv:adv.sparse in
  let graph =
    Array.map
      (function Outcome.Output s -> s | Outcome.Abort _ -> Util.Iset.empty)
      sparse_outs
  in
  let aborted = Array.map Outcome.is_abort sparse_outs in
  (* Phase 2: gossip the Theorem 9 round-1 messages (key shares + encrypted
     inputs + NIZKs, sized by the cost model and bound to the sender's
     effective input). *)
  let r1_message i =
    let input_bytes = Bitpack.int_to_bytes effective.(i) ~width:config.input_width in
    let len =
      Cost_model.round1_bytes ~lambda ~depth ~input_bits:(8 * Bytes.length input_bytes)
    in
    let tag =
      Printf.sprintf "t2round1/%d/%s" i
        (Crypto.Sha256.to_hex (Crypto.Sha256.digest input_bytes))
    in
    Cost_model.filler ~tag ~len
  in
  let sources =
    List.filter_map
      (fun i -> if aborted.(i) then None else Some (i, r1_message i))
      (List.init n (fun i -> i))
  in
  let g1 =
    Gossip.run ?pool ?obs:(sub_obs "g1") net rng params ~graph ~sources ~corruption
      ~adv:adv.gossip_r1
  in
  let r1_views = Array.make n None in
  for i = 0 to n - 1 do
    match g1.(i) with
    | Outcome.Abort _ -> aborted.(i) <- true
    | Outcome.Output rumors ->
      if List.length rumors < n then aborted.(i) <- true
        (* a silent party means its round-1 message is missing: abort *)
      else r1_views.(i) <- Some rumors
  done;
  (* Phase 3: gossip the partial decryptions — one per party, covering the
     single public output of f (1 validity byte + poly(λ,D) per output
     bit). *)
  let out_bytes = (Circuit.num_outputs config.circuit + 7) / 8 in
  let pdec_message i =
    let per_block = Cost_model.partial_dec_bytes ~lambda ~depth in
    let body =
      Cost_model.filler ~tag:(Printf.sprintf "t2pdec/%d" i)
        ~len:(per_block * Cost_model.blocks (8 * out_bytes))
    in
    let tampered =
      is_corrupt i && match adv.tamper_pdec with Some f -> f ~me:i | None -> false
    in
    Bytes.cat (Bytes.make 1 (if tampered then '\001' else '\000')) body
  in
  let pdec_sources =
    List.filter_map
      (fun i -> if aborted.(i) then None else Some (i, pdec_message i))
      (List.init n (fun i -> i))
  in
  let g2 =
    Gossip.run ?pool ?obs:(sub_obs "g2") net rng params ~graph ~sources:pdec_sources
      ~corruption ~adv:adv.gossip_pdec
  in
  (* The ideal functionality's output on the effective inputs. *)
  let out =
    let bits = Circuit.pack_inputs ~width:config.input_width (Array.to_list effective) in
    Bitpack.pack (Circuit.eval config.circuit bits)
  in
  Array.init n (fun i ->
      if aborted.(i) then
        match sparse_outs.(i) with
        | Outcome.Abort r -> Outcome.Abort r
        | Outcome.Output _ -> Outcome.Abort (Outcome.Upstream "round-1 gossip")
      else
        match g2.(i) with
        | Outcome.Abort r -> Outcome.Abort r
        | Outcome.Output pdecs ->
          if List.length pdecs < n then Outcome.Abort (Outcome.Missing "partial decryption")
          else if
            List.exists
              (fun (_, payload) -> Bytes.length payload = 0 || Bytes.get payload 0 <> '\000')
              pdecs
          then Outcome.Abort (Outcome.Bad_proof "partial decryption NIZK")
          else Outcome.Output out)

(* ------------------------------------------------------------------ *)
(* Theorem 4: Algorithm 8                                              *)
(* ------------------------------------------------------------------ *)

type theorem4_adv = {
  election : Local_committee.adv;
  encf : Enc_func.adv;
  pk_forward : (me:int -> dst:int -> bytes -> bytes) option;
  input_ct : (me:int -> dst:int -> bytes -> bytes) option;
  exchange_tamper : (me:int -> dst:int -> party:int -> bytes -> bytes) option;
  eq : Equality.adv;
  out_forward : (me:int -> dst:int -> bytes -> bytes) option;
}

let honest_theorem4_adv =
  {
    election = Local_committee.honest_adv;
    encf = Enc_func.honest_adv;
    pk_forward = None;
    input_ct = None;
    exchange_tamper = None;
    eq = Equality.honest_adv;
    out_forward = None;
  }

type theorem4_costs = {
  election_bits : int;
  keygen_bits : int;
  cover_bits : int;
  exchange_bits : int;
  equality_bits : int;
  compute_bits : int;
  output_bits : int;
}

let encode_ct_view view =
  Util.Codec.encode
    (fun w ->
      Util.Codec.write_list w (fun w (id, ct) ->
          Util.Codec.write_varint w id;
          Util.Codec.write_option w Util.Codec.write_bytes ct))
    view

let encode_exchange entries =
  Util.Codec.encode
    (fun w ->
      Util.Codec.write_list w (fun w (id, ct) ->
          Util.Codec.write_varint w id;
          Util.Codec.write_bytes w ct))
    entries

let decode_exchange b =
  match
    Util.Codec.decode
      (fun r ->
        Util.Codec.read_list r (fun r ->
            let id = Util.Codec.read_varint r in
            let ct = Util.Codec.read_bytes r in
            (id, ct)))
      b
  with
  | v -> Some v
  | exception Util.Codec.Decode_error _ -> None

(* Cost phases of [run_theorem4] (see Analysis.Costs): the nine
   Algorithm 8 steps.  Observables recorded by [run_theorem4_metered
   ?obs] under [pre]: [members]/[memb_idsum] after election, [pk_sends]
   and [out_sends] (cover fan-outs, Σ_c |S_c \ {c}| over members holding
   the value), [input_sends] (step-5 submissions), the step-6 exchange
   structure ([exch_senders], [exch_hdr], [exch_idsum], [exch_entries] —
   the encode_exchange framing reconstructed arithmetically), [ctv_some]
   (populated entries in the widest merged view), plus sub-protocol
   observables under [pre].lc / [pre].gen / [pre].eq / [pre].comp.  The
   keygen/compute Enc_func runs are guarded on a nonempty committee and
   the step-7 equality on K ≥ 2; the step-4/5/6/9 [Net.step] calls are
   unconditional.  Only fingerprint residues carry slack. *)
let cost_phases_theorem4 ~pre ~pke ~depth ~input_width ~out_bits ~n ~h ~lambda ~alpha =
  let open Analysis.Costs in
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let v name = Var (jn name) in
  let k = v "members" in
  let idsum = v "memb_idsum" in
  let seed_bytes = Call ("seed_bytes", (fun a -> max 8 (a.(0) / 8)), [| lambda |]) in
  let seed_bits = Mul [ Const 8; seed_bytes ] in
  let pk_b = Cost_expr.pke_pk_bytes pke in
  let ct_b = Cost_expr.pke_ct_bytes pke ~plaintext_len:(Ceil_div (input_width, Const 8)) in
  let out_b = Ceil_div (out_bits, Const 8) in
  let eqv_b =
    Add
      [
        varint_e n;
        sum_varint_below n;
        n;
        Mul [ v "ctv_some"; Add [ varint_e ct_b; ct_b ] ];
      ]
  in
  let exch_msgs = Mul [ v "exch_senders"; Sub (v "exch_senders", Const 1) ] in
  let exch_payload_sum =
    Add [ v "exch_hdr"; v "exch_idsum"; Mul [ v "exch_entries"; Add [ varint_e ct_b; ct_b ] ] ]
  in
  let fan label sends payload_b =
    exact ~label:(jn label) ~edge:"member->cover"
      ~bits:(Cost_expr.bits (Mul [ sends; payload_b ]))
      ~messages:sends ~rounds:(Const 1)
  in
  Local_committee.cost_phases ~pre:(jn "lc") ~n ~h ~lambda ~alpha
  @ guard (Ge (k, Const 1))
      (Enc_func.cost_phases ~pre:(jn "gen") ~k ~idsum ~depth:(Const 1) ~inbits:seed_bits
         ~outbytes:(Const 1) ~recipients:(Const 0) ~n ~lambda)
  @ [
      fan "pk_cover" (v "pk_sends") pk_b;
      exact ~label:(jn "input") ~edge:"party->member"
        ~bits:(Cost_expr.bits (Mul [ v "input_sends"; ct_b ]))
        ~messages:(v "input_sends") ~rounds:(Const 1);
      (* Step 6: every active member sends its whole collected batch to
         each other active member — (K'−1) copies of Σ_c payload_c. *)
      exact ~label:(jn "exchange") ~edge:"member->member"
        ~bits:
          (Cost_expr.bits (Mul [ Sub (v "exch_senders", Const 1); exch_payload_sum ]))
        ~messages:exch_msgs ~rounds:(Const 1);
    ]
  @ guard (Ge (k, Const 2))
      (Equality.cost_phases_pairwise ~pre:(jn "eq") ~k ~maxlen:eqv_b ~n ~lambda)
  @ guard (Ge (k, Const 1))
      (Enc_func.cost_phases ~pre:(jn "comp") ~k ~idsum ~depth ~inbits:seed_bits
         ~outbytes:out_b ~recipients:k ~n ~lambda)
  @ [ fan "output" (v "out_sends") out_b ]

let cost_spec_theorem4 ~pke ~depth ~input_width ~out_bits ~n ~h ~lambda ~alpha =
  {
    Analysis.Costs.name = "local_mpc.theorem4";
    phases =
      cost_phases_theorem4 ~pre:"" ~pke ~depth ~input_width ~out_bits ~n ~h ~lambda ~alpha;
    max_locality = None;
  }

let run_theorem4_metered ?cover_size ?pool ?obs net rng config ~corruption ~inputs ~adv =
  let module P = (val config.pke : Crypto.Pke.S) in
  let params = config.params in
  let n = Netsim.Net.n net in
  let ob key value =
    match obs with Some o -> Analysis.Costs.Obs.set o key value | None -> ()
  in
  let sub_obs name = Option.map (fun o -> Analysis.Costs.Obs.scoped o name) obs in
  if Array.length inputs <> n then invalid_arg "Local_mpc.run_theorem4: wrong input count";
  if n * config.input_width <> config.circuit.Circuit.num_inputs then
    invalid_arg "Local_mpc.run_theorem4: circuit arity mismatch";
  let s = match cover_size with Some s -> max 1 (min n s) | None -> Params.cover_size params in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let mark () = Netsim.Net.snapshot net in
  let bits_since before =
    (Netsim.Net.diff_snapshot ~before ~after:(Netsim.Net.snapshot net)).Netsim.Net.snap_bits
  in
  let abort = Array.make n None in
  let set_abort i r = if abort.(i) = None then abort.(i) <- Some r in
  let active i = abort.(i) = None in

  (* ---- Step 1: local committee election ---- *)
  let s0 = mark () in
  let election =
    Local_committee.run ?pool ?obs:(sub_obs "lc") net rng params ~corruption
      ~adv:adv.election
  in
  Array.iteri
    (fun i o -> match o with Outcome.Abort r -> set_abort i r | Outcome.Output _ -> ())
    election.Local_committee.views;
  let my_view i =
    match election.Local_committee.views.(i) with
    | Outcome.Output v -> Some v
    | Outcome.Abort _ -> None
  in
  let members =
    List.filter
      (fun i ->
        active i && match my_view i with Some v -> v.Committee.elected | None -> false)
      (List.init n (fun i -> i))
  in
  ob "members" (List.length members);
  ob "memb_idsum" (List.fold_left (fun acc i -> acc + Util.Codec.varint_size i) 0 members);
  let election_bits = bits_since s0 in

  (* ---- Step 2: F_Gen inside the committee ---- *)
  let s1 = mark () in
  let keypair = ref None in
  let gen_results =
    if members = [] then []
    else
      Enc_func.run ?pool net rng params ~participants:members
        ~private_input:(fun i ->
          Crypto.Kdf.expand
            ~key:(Util.Prng.bytes rng 32)
            ~info:(Printf.sprintf "t4rgen/%d" i)
            (max 8 (params.Params.lambda / 8)))
        ~depth:1
        ~eval:(fun member_inputs ->
          let seed =
            List.fold_left
              (fun acc (_, r) -> Crypto.Sha256.digest (Bytes.cat acc r))
              (Bytes.of_string "t4-fgen") member_inputs
          in
          let pk, sk = P.keygen_seeded seed in
          keypair := Some (pk, sk);
          { Enc_func.public_output = P.public_key_bytes pk; private_outputs = [] })
        ~corruption ~adv:adv.encf
  in
  let member_pk = Hashtbl.create 8 in
  List.iter
    (fun (i, out) ->
      match out with
      | Outcome.Output (pkb, _) -> Hashtbl.replace member_pk i pkb
      | Outcome.Abort r -> set_abort i r)
    gen_results;
  let keygen_bits = bits_since s1 in

  (* ---- Steps 3-5: cover sampling, pk distribution, input collection ---- *)
  let s2 = mark () in
  let covers = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if active c then begin
        let sample = Util.Prng.sample_without_replacement rng ~n ~k:s in
        Hashtbl.replace covers c sample
      end)
    members;
  (* Step 4: forward pk to the cover.  Rng-free member fan-out — shards
     through run_round like mpc_abort step 3; the commit replays sends in
     ascending member id, exactly the sequential List.iter order. *)
  let cover_sends holds =
    List.fold_left
      (fun acc c ->
        if active c && holds c then
          acc + List.length (List.filter (fun d -> d <> c) (Hashtbl.find covers c))
        else acc)
      0 members
  in
  ob "pk_sends" (cover_sends (Hashtbl.mem member_pk));
  let (_ : unit list) =
    Netsim.Net.run_round ?pool net ~parties:members (fun p ->
        let c = Netsim.Net.Party.id p in
        if active c then
          match Hashtbl.find_opt member_pk c with
          | Some pkb ->
            List.iter
              (fun dst ->
                if dst <> c then begin
                  let payload =
                    match adv.pk_forward with
                    | Some f when is_corrupt c -> f ~me:c ~dst pkb
                    | _ -> pkb
                  in
                  Netsim.Net.Party.send p ~dst payload
                end)
              (Hashtbl.find covers c)
          | None -> ())
  in
  Netsim.Net.step net;
  (* Parties learn their responsible members and check pk consistency:
     pure per-inbox collection, sharded; the abort bookkeeping is applied
     sequentially afterwards. *)
  let party_pk = Array.make n None in
  let responsible = Array.make n [] in
  let pk_checks =
    Netsim.Net.run_round ?pool net
      ~parties:(List.init n (fun i -> i))
      (fun p ->
        let i = Netsim.Net.Party.id p in
        let msgs = Netsim.Net.Party.recv p in
        let senders = List.sort_uniq compare (List.map fst msgs) in
        (* Committee members know pk directly. *)
        let copies = List.map snd msgs in
        let copies =
          match Hashtbl.find_opt member_pk i with Some own -> own :: copies | None -> copies
        in
        match copies with
        | [] -> (senders, `No_copies) (* uncovered non-member: abort at the end *)
        | first :: rest ->
          if List.for_all (Bytes.equal first) rest then (senders, `Pk first)
          else (senders, `Conflict))
  in
  List.iteri
    (fun i (senders, verdict) ->
      responsible.(i) <- senders;
      match verdict with
      | `No_copies -> ()
      | `Pk first -> party_pk.(i) <- Some first
      | `Conflict ->
        if active i then set_abort i (Outcome.Equivocation "conflicting public keys"))
    pk_checks;
  (* Step 5: parties encrypt and send their input to responsible members. *)
  let input_bytes i = Bitpack.int_to_bytes inputs.(i) ~width:config.input_width in
  let own_ct = Hashtbl.create 8 in
  let input_sends = ref 0 in
  for i = 0 to n - 1 do
    if active i then
      match party_pk.(i) with
      | Some pkb -> (
        match P.public_key_of_bytes pkb with
        | None -> set_abort i (Outcome.Malformed "public key")
        | Some pk ->
          let ct = P.encrypt rng pk (input_bytes i) in
          if Hashtbl.mem member_pk i then Hashtbl.replace own_ct i ct;
          List.iter
            (fun c ->
              if c <> i then begin
                let payload =
                  match adv.input_ct with
                  | Some f when is_corrupt i -> f ~me:i ~dst:c ct
                  | _ -> ct
                in
                incr input_sends;
                Netsim.Net.send net ~src:i ~dst:c payload
              end)
            responsible.(i))
      | None -> ()
  done;
  ob "input_sends" !input_sends;
  Netsim.Net.step net;
  (* Input collection: each member filters its own inbox against its
     cover — rng-free, sharded; the table is filled on the calling domain
     from the returned entries. *)
  let collected = Hashtbl.create 8 in
  let collect_members = List.filter active members in
  let collect_results =
    Netsim.Net.run_round ?pool net ~parties:collect_members (fun p ->
        let c = Netsim.Net.Party.id p in
        let msgs = Netsim.Net.Party.recv p in
        let mine = Hashtbl.find covers c in
        let entries =
          List.filter_map
            (fun (src, ct) -> if List.mem src mine then Some (src, ct) else None)
            msgs
        in
        let entries =
          match Hashtbl.find_opt own_ct c with
          | Some ct when List.mem c mine -> (c, ct) :: entries
          | _ -> entries
        in
        List.sort compare entries)
  in
  List.iter2
    (fun c entries -> Hashtbl.replace collected c entries)
    collect_members collect_results;
  let cover_bits = bits_since s2 in

  (* ---- Step 6: members exchange their collected inputs ---- *)
  let s3 = mark () in
  (* Both halves are rng-free: the O(|C|²) encode-and-send fan-out (the
     CPU-heavy exchange encoding) and the per-member merge each shard
     through run_round; abort bookkeeping lands after the round. *)
  let active_members = List.filter active members in
  ob "exch_senders" (List.length active_members);
  let exch_hdr, exch_idsum, exch_entries =
    List.fold_left
      (fun (hdr, idsum, cnt) c ->
        let entries = Hashtbl.find collected c in
        ( hdr + Util.Codec.varint_size (List.length entries),
          idsum
          + List.fold_left (fun a (id, _) -> a + Util.Codec.varint_size id) 0 entries,
          cnt + List.length entries ))
      (0, 0, 0) active_members
  in
  ob "exch_hdr" exch_hdr;
  ob "exch_idsum" exch_idsum;
  ob "exch_entries" exch_entries;
  let (_ : unit list) =
    Netsim.Net.run_round ?pool net ~parties:active_members (fun p ->
        let c = Netsim.Net.Party.id p in
        let entries = Hashtbl.find collected c in
        List.iter
          (fun c' ->
            if c' <> c then begin
              let entries =
                match adv.exchange_tamper with
                | Some f when is_corrupt c ->
                  List.map (fun (party, ct) -> (party, f ~me:c ~dst:c' ~party ct)) entries
                | _ -> entries
              in
              Netsim.Net.Party.send p ~dst:c' (encode_exchange entries)
            end)
          active_members)
  in
  Netsim.Net.step net;
  let merged = Hashtbl.create 8 in
  let merge_results =
    Netsim.Net.run_round ?pool net ~parties:active_members (fun p ->
        let c = Netsim.Net.Party.id p in
        let tbl = Hashtbl.create n in
        let conflict = ref false in
        let add (id, ct) =
          match Hashtbl.find_opt tbl id with
          | None -> Hashtbl.replace tbl id ct
          | Some prev -> if not (Bytes.equal prev ct) then conflict := true
        in
        List.iter add (Hashtbl.find collected c);
        List.iter
          (fun (_, payload) ->
            match decode_exchange payload with
            | Some entries -> List.iter add entries
            | None -> conflict := true)
          (Netsim.Net.Party.recv p);
        if !conflict then `Conflict
        else `View (List.init n (fun i -> (i, Hashtbl.find_opt tbl i))))
  in
  List.iter2
    (fun c result ->
      match result with
      | `Conflict -> set_abort c (Outcome.Equivocation "conflicting ciphertexts in exchange")
      | `View view -> Hashtbl.replace merged c view)
    active_members merge_results;
  let exchange_bits = bits_since s3 in

  (* ---- Step 7: pairwise equality on the merged views ---- *)
  let s4 = mark () in
  let eq_members = List.filter (fun c -> active c && Hashtbl.mem merged c) members in
  ob "ctv_some"
    (List.fold_left
       (fun acc c ->
         let view = Hashtbl.find merged c in
         max acc (List.length (List.filter (fun (_, ct) -> ct <> None) view)))
       0 eq_members);
  let verdicts =
    if List.length eq_members >= 2 then
      Equality.pairwise ?pool net rng params ~members:eq_members
        ~value:(fun c -> encode_ct_view (Hashtbl.find merged c))
        ~corruption ~adv:adv.eq
    else List.map (fun c -> (c, true)) eq_members
  in
  List.iter
    (fun (c, ok) ->
      if (not ok) && not (is_corrupt c) then
        set_abort c (Outcome.Equality_failed "merged ciphertext views differ"))
    verdicts;
  let equality_bits = bits_since s4 in

  (* ---- Step 8: F_Comp ---- *)
  let s5 = mark () in
  let comp_members = List.filter active members in
  let comp_results =
    if comp_members = [] then []
    else
      Enc_func.run ?pool net rng params ~participants:comp_members
        ~private_input:(fun c ->
          Crypto.Kdf.expand
            ~key:(Bytes.of_string (Printf.sprintf "t4skshare/%d" c))
            ~info:"share" (max 8 (params.Params.lambda / 8)))
        ~depth:(Circuit.depth config.circuit)
        ~eval:(fun _ ->
          let canonical =
            let honest_members =
              List.filter (fun c -> Netsim.Corruption.is_honest corruption c) comp_members
            in
            match (honest_members, comp_members) with
            | c :: _, _ -> ( match Hashtbl.find_opt merged c with Some v -> v | None -> [])
            | [], c :: _ -> ( match Hashtbl.find_opt merged c with Some v -> v | None -> [])
            | [], [] -> []
          in
          let sk = match !keypair with Some (_, sk) -> sk | None -> assert false in
          let bit_inputs =
            if canonical = [] then
              List.init (n * config.input_width) (fun _ -> false)
            else
              List.concat_map
                (fun (i, ct) ->
                  let value =
                    match ct with
                    | Some ct -> (
                      match P.decrypt sk ct with
                      | Some pt -> Bitpack.bytes_to_int pt ~width:config.input_width
                      | None -> 0)
                    | None -> if is_corrupt i then 0 else inputs.(i)
                  in
                  List.init config.input_width (fun k -> (value lsr k) land 1 = 1))
                canonical
          in
          let out = Circuit.eval config.circuit (Array.of_list bit_inputs) in
          let packed = Bitpack.pack out in
          {
            Enc_func.public_output = Bytes.empty;
            private_outputs = List.map (fun c -> (c, packed)) comp_members;
          })
        ~corruption ~adv:adv.encf
  in
  let member_out = Hashtbl.create 8 in
  List.iter
    (fun (c, out) ->
      match out with
      | Outcome.Output (_, o) -> Hashtbl.replace member_out c o
      | Outcome.Abort r -> set_abort c r)
    comp_results;
  let compute_bits = bits_since s5 in

  (* ---- Step 9: output to covers ---- *)
  (* Mirrors mpc_abort step 7: rng-free output fan-out and per-party
     collection both shard; classification stays on the calling domain. *)
  let s6 = mark () in
  ob "out_sends" (cover_sends (Hashtbl.mem member_out));
  let (_ : unit list) =
    Netsim.Net.run_round ?pool net ~parties:members (fun p ->
        let c = Netsim.Net.Party.id p in
        if active c then
          match Hashtbl.find_opt member_out c with
          | Some out ->
            List.iter
              (fun dst ->
                if dst <> c then begin
                  let payload =
                    match adv.out_forward with
                    | Some f when is_corrupt c -> f ~me:c ~dst out
                    | _ -> out
                  in
                  Netsim.Net.Party.send p ~dst payload
                end)
              (Hashtbl.find covers c)
          | None -> ())
  in
  Netsim.Net.step net;
  let final = Array.make n (Outcome.Abort (Outcome.Missing "no output received")) in
  let final_copies =
    Netsim.Net.run_round ?pool net
      ~parties:(List.init n (fun i -> i))
      (fun p ->
        let i = Netsim.Net.Party.id p in
        let copies = List.map snd (Netsim.Net.Party.recv p) in
        match Hashtbl.find_opt member_out i with Some own -> own :: copies | None -> copies)
  in
  List.iteri
    (fun i copies ->
      match abort.(i) with
      | Some r -> final.(i) <- Outcome.Abort r
      | None -> (
        match copies with
        | [] -> final.(i) <- Outcome.Abort (Outcome.Missing "no output received (uncovered)")
        | first :: rest ->
          if List.for_all (Bytes.equal first) rest then final.(i) <- Outcome.Output first
          else final.(i) <- Outcome.Abort (Outcome.Equivocation "conflicting outputs")))
    final_copies;
  let output_bits = bits_since s6 in
  ( final,
    {
      election_bits;
      keygen_bits;
      cover_bits;
      exchange_bits;
      equality_bits;
      compute_bits;
      output_bits;
    } )

let run_theorem4 ?pool ?obs net rng config ~corruption ~inputs ~adv =
  fst (run_theorem4_metered ?pool ?obs net rng config ~corruption ~inputs ~adv)
