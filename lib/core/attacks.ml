let flip_byte b =
  if Bytes.length b = 0 then Bytes.make 1 '\255'
  else begin
    let out = Bytes.copy b in
    Bytes.set out 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
    out
  end

(* ---- Broadcast ---- *)

let equivocating_sender ~v1 ~v2 =
  {
    Broadcast.sender_value = Some (fun ~dst -> if dst mod 2 = 0 then v1 else v2);
    echo_value = None;
    drop = None;
  }

let lying_echo ~fake =
  {
    Broadcast.sender_value = None;
    echo_value = Some (fun ~me:_ ~dst:_ _received -> fake);
    drop = None;
  }

let partial_sender ~recipients =
  {
    Broadcast.sender_value = None;
    echo_value = None;
    drop = Some (fun ~src:_ ~dst -> not (Util.Iset.mem dst recipients));
  }

(* ---- All-to-all ---- *)

let split_input ~v1 ~v2 =
  {
    All_to_all.input_value = Some (fun ~me ~dst -> if dst < me then v1 else v2);
    drop = None;
    eq = Equality.honest_adv;
  }

(* ---- Committee election ---- *)

let selective_claim ~cutoff =
  {
    Committee.false_claim = Some (fun ~me:_ -> true);
    claim_subset = Some (fun ~me:_ ~dst -> dst < cutoff);
    eq = Equality.honest_adv;
  }

let claim_all =
  {
    Committee.false_claim = Some (fun ~me:_ -> true);
    claim_subset = None;
    eq = Equality.honest_adv;
  }

let lying_view_check =
  {
    Committee.false_claim = None;
    claim_subset = None;
    eq =
      {
        Equality.tamper_fp = None;
        lie_verdict = Some (fun ~me:_ ~dst:_ _truth -> true);
      };
  }

(* ---- MPC (Algorithm 3) ---- *)

let pk_equivocation =
  {
    Mpc_abort.honest_adv with
    Mpc_abort.pk_forward = Some (fun ~me:_ ~dst pkb -> if dst mod 2 = 0 then flip_byte pkb else pkb);
  }

let ct_equivocation =
  {
    Mpc_abort.honest_adv with
    Mpc_abort.input_ct = Some (fun ~me:_ ~dst ct -> if dst mod 2 = 0 then flip_byte ct else ct);
  }

let bad_partial_decryptions =
  {
    Mpc_abort.honest_adv with
    Mpc_abort.encf =
      {
        Enc_func.honest_adv with
        Enc_func.tamper_partial = Some (fun ~me:_ ~dst:_ -> true);
      };
  }

let output_tamper =
  {
    Mpc_abort.honest_adv with
    Mpc_abort.out_forward = Some (fun ~me:_ ~dst out -> if dst mod 2 = 0 then flip_byte out else out);
  }

(* ---- Gossip ---- *)

let gossip_equivocate =
  {
    Gossip.honest_adv with
    Gossip.equivocate =
      Some (fun ~me ~origin:_ ~dst v -> if dst > me then Some (flip_byte v) else None);
  }

let gossip_forge ~origin ~value =
  { Gossip.honest_adv with Gossip.forge = Some (fun ~me:_ -> [ (origin, value) ]) }

let gossip_suppress_warnings = { Gossip.honest_adv with Gossip.spread_warning = false }

(* ---- Sparse network ---- *)

let flood_victim ~victim =
  {
    Sparse_network.extra_targets = Some (fun ~me:_ -> [ victim ]);
    drop_notify = None;
  }

(* ---- Theorem 4 ---- *)

let exchange_tamper =
  {
    Local_mpc.honest_theorem4_adv with
    Local_mpc.exchange_tamper =
      Some (fun ~me:_ ~dst ~party:_ ct -> if dst mod 2 = 0 then flip_byte ct else ct);
  }

let t4_output_tamper =
  {
    Local_mpc.honest_theorem4_adv with
    Local_mpc.out_forward =
      Some (fun ~me:_ ~dst out -> if dst mod 2 = 0 then flip_byte out else out);
  }

(* ---- The generic adversary compiler -------------------------------- *)

(* Each builder maps one protocol's hook record onto a [Netsim.Faults.t]
   schedule.  Conventions:

   - hooks that suppress a message use [Faults.drops] (which folds in the
     crash stage, so a crashed party falls silent mid-protocol);
   - hooks that substitute a value use [Faults.corrupt_payload]
     (flip / truncate / replay / equivocate, at most one per message);
   - boolean misbehavior hooks (lie, tamper, forge, false claims) draw a
     pure [Faults.decide] coin: value-shaped lies at [Faults.value_prob],
     out-of-thin-air amplification (forged rumors, claim inflation, extra
     sparse-network targets) at the [duplicate] probability;
   - equality-test hooks are kept stateless ([decide] only, never the
     replay slot): [Equality.pairwise] invokes them from per-pair parallel
     jobs, outside the per-party ownership contract the replay slot needs.

   Stage numbers follow each protocol's phase order, so crash-at-stage-r
   silences a party from phase r onward; the per-builder maps are noted
   inline. *)

module F = Netsim.Faults

let fuzz rng ~schedule ~n spec = F.make rng ~schedule ~n spec

(* Stages: [stage] = fingerprint sends, [stage+1] = verdict bits. *)
let fuzz_equality f ~stage =
  let vp = F.value_prob (F.spec f) in
  {
    Equality.tamper_fp =
      Some
        (fun ~me ~dst fp ->
          if F.decide f ~stage ~me ~dst ~p:vp then begin
            let residues = Array.copy fp.Crypto.Fingerprint.residues in
            if Array.length residues > 0 then
              residues.(0) <- (residues.(0) + 1) mod max 2 fp.Crypto.Fingerprint.primes.(0);
            { fp with Crypto.Fingerprint.residues }
          end
          else fp);
    lie_verdict =
      Some (fun ~me ~dst v -> if F.decide f ~stage:(stage + 1) ~me ~dst ~p:vp then not v else v);
  }

(* Stages: 0 = sender fan-out, 1 = echoes. *)
let fuzz_broadcast f ~sender ~value =
  {
    Broadcast.sender_value = Some (fun ~dst -> F.corrupt_payload f ~stage:0 ~me:sender ~dst value);
    echo_value = Some (fun ~me ~dst received -> F.corrupt_payload f ~stage:1 ~me ~dst received);
    drop =
      Some (fun ~src ~dst -> F.drops f ~stage:(if src = sender then 0 else 1) ~me:src ~dst);
  }

(* Stages: 0 = input distribution, 1-2 = the equality phase. *)
let fuzz_all_to_all f ~input =
  {
    All_to_all.input_value =
      Some (fun ~me ~dst -> F.corrupt_payload f ~stage:0 ~me ~dst (input me));
    drop = Some (fun ~src ~dst -> F.drops f ~stage:0 ~me:src ~dst);
    eq = fuzz_equality f ~stage:1;
  }

(* Stages: 0 = claim coin, 1 = claim fan-out, 2-3 = view equality. *)
let fuzz_committee f =
  let sp = F.spec f in
  {
    Committee.false_claim =
      Some
        (fun ~me ->
          (not (F.crashed f ~me ~stage:0)) && F.decide f ~stage:0 ~me ~dst:(-1) ~p:sp.F.duplicate);
    claim_subset = Some (fun ~me ~dst -> not (F.drops f ~stage:1 ~me ~dst));
    eq = fuzz_equality f ~stage:2;
  }

(* Stages: [stage] = round-0 forgeries, [stage+1] = every forwarding
   round, [stage+2] = warning spreading. *)
let fuzz_gossip ?(stage = 0) f =
  let sp = F.spec f in
  {
    Gossip.equivocate =
      Some
        (fun ~me ~origin:_ ~dst v ->
          let v' = F.corrupt_payload f ~stage:(stage + 1) ~me ~dst v in
          if v' == v then None else Some v');
    forge =
      Some
        (fun ~me ->
          if F.decide f ~stage ~me ~dst:(-1) ~p:sp.F.duplicate then begin
            let r = F.stream f ~stage ~me ~dst:(-1) ~salt:7 in
            let origin = Util.Prng.int r (F.n f) in
            [ (origin, Util.Prng.bytes r (1 + Util.Prng.int r 8)) ]
          end
          else []);
    drop = Some (fun ~me ~origin:_ ~dst -> F.drops f ~stage:(stage + 1) ~me ~dst);
    spread_warning = sp.F.drop = 0.0 && sp.F.crash = 0.0;
  }

(* Stages: [stage] = the round-1 simultaneous broadcast (and its equality
   phase), [stage+1] = partial decryptions. *)
let fuzz_enc_func f ~stage =
  let vp = F.value_prob (F.spec f) in
  {
    Enc_func.sb =
      {
        All_to_all.input_value = None;
        drop = Some (fun ~src ~dst -> F.drops f ~stage ~me:src ~dst);
        eq = fuzz_equality f ~stage;
      };
    substitute_input =
      Some (fun ~me b -> F.corrupt_payload f ~replay:false ~stage ~me ~dst:(-1) b);
    tamper_partial = Some (fun ~me ~dst -> F.decide f ~stage:(stage + 1) ~me ~dst ~p:vp);
    drop_partial = Some (fun ~me ~dst -> F.drops f ~stage:(stage + 1) ~me ~dst);
  }

(* Stages: 0-3 committee election, 4-5 F_Gen, 6 pk forwarding, 7 input
   ciphertexts, 8-9 ciphertext equality, 10 output forwarding. *)
let fuzz_mpc_abort f =
  {
    Mpc_abort.committee = fuzz_committee f;
    encf = fuzz_enc_func f ~stage:4;
    pk_forward = Some (fun ~me ~dst pk -> F.corrupt_payload f ~stage:6 ~me ~dst pk);
    input_ct = Some (fun ~me ~dst ct -> F.corrupt_payload f ~stage:7 ~me ~dst ct);
    eq = fuzz_equality f ~stage:8;
    out_forward = Some (fun ~me ~dst out -> F.corrupt_payload f ~stage:10 ~me ~dst out);
  }

(* Stages: 0 = the sparse routing graph, 1-3 = round-1 gossip, 4-6 =
   partial-decryption gossip, 7 = input substitution / pdec tampering. *)
let fuzz_sparse f =
  let sp = F.spec f in
  {
    Sparse_network.extra_targets =
      Some
        (fun ~me ->
          if F.decide f ~stage:0 ~me ~dst:(-1) ~p:sp.F.duplicate then
            [ Util.Prng.int (F.stream f ~stage:0 ~me ~dst:(-1) ~salt:8) (F.n f) ]
          else []);
    drop_notify = Some (fun ~me ~dst -> F.drops f ~stage:0 ~me ~dst);
  }

let fuzz_theorem2 f =
  let vp = F.value_prob (F.spec f) in
  {
    Local_mpc.sparse = fuzz_sparse f;
    gossip_r1 = fuzz_gossip f ~stage:1;
    gossip_pdec = fuzz_gossip f ~stage:4;
    substitute_input =
      Some (fun ~me x -> if F.decide f ~stage:7 ~me ~dst:(-1) ~p:vp then x lxor 1 else x);
    tamper_pdec = Some (fun ~me -> F.decide f ~stage:7 ~me ~dst:(-2) ~p:vp);
  }

(* Stages: 0 = routing graph, 1-3 = claim gossip, 4 = claims and view
   equality, 5-6 = F_Gen, 7 = pk to covers, 8 = input ciphertexts, 9 =
   step-6 exchange and step-7 equality, 10 = output forwarding. *)
let fuzz_theorem4 f =
  let sp = F.spec f in
  {
    Local_mpc.election =
      {
        Local_committee.sparse = fuzz_sparse f;
        gossip = fuzz_gossip f ~stage:1;
        false_claim =
          Some
            (fun ~me ->
              (not (F.crashed f ~me ~stage:4))
              && F.decide f ~stage:4 ~me ~dst:(-1) ~p:sp.F.duplicate);
        eq = fuzz_equality f ~stage:4;
      };
    encf = fuzz_enc_func f ~stage:5;
    pk_forward = Some (fun ~me ~dst pk -> F.corrupt_payload f ~stage:7 ~me ~dst pk);
    input_ct = Some (fun ~me ~dst ct -> F.corrupt_payload f ~stage:8 ~me ~dst ct);
    exchange_tamper =
      Some (fun ~me ~dst ~party:_ ct -> F.corrupt_payload f ~stage:9 ~me ~dst ct);
    eq = fuzz_equality f ~stage:9;
    out_forward = Some (fun ~me ~dst out -> F.corrupt_payload f ~stage:10 ~me ~dst out);
  }
