(** Two-party semi-honest computation from garbled circuits + LWE OT —
    the Remark 10 instantiation at [n = 2], run over the network simulator
    so its communication is measured like every other protocol.

    Party 0 (the garbler) garbles [f], sends the tables and its own active
    input labels; party 1 (the evaluator) obtains its input labels via one
    {!Crypto.Ot} instance per input bit, evaluates, and returns the result
    to the garbler (both learn [f(x₀, x₁)]).

    Communication is [O(C·λ)] for the tables plus [O(ℓ·poly(λ))] for the
    OTs — size-dependent, exactly the [poly(λ, C)] trade Remark 10
    describes (the E14 ablation compares it against the depth-based
    Theorem 9 cost). *)

(** [run net rng ~circuit ~input_width ~x0 ~x1] — the circuit takes
    [2·input_width] input bits: party 0's word then party 1's word.
    Returns (party 0's output, party 1's output) as packed bits, or an
    abort on malformed data. *)
val run :
  Netsim.Net.t ->
  Util.Prng.t ->
  circuit:Circuit.t ->
  input_width:int ->
  x0:int ->
  x1:int ->
  (bytes * bytes) Outcome.t

(** Exact cost spec of a successful {!run} (see {!Analysis.Costs}): three
    messages / three rounds — batched OT round-1 keys, the garbler's
    tables + labels + OT replies (structural size via
    {!Crypto.Garble.blob_size}), and the packed output.  No slack. *)
val cost_spec : circuit:Circuit.t -> input_width:int -> Analysis.Costs.spec
