type variant = Naive | Fingerprinted

type adv = {
  sender_value : (dst:int -> bytes) option;
  echo_value : (me:int -> dst:int -> bytes -> bytes) option;
  drop : (src:int -> dst:int -> bool) option;
}

let honest_adv = { sender_value = None; echo_value = None; drop = None }

(* Echo payloads: either the full received value (naive) or a fingerprint
   of it (optimized).  "I received nothing" is an explicit marker so that a
   silent sender is detected. *)
let encode_echo_naive v = Util.Codec.encode (fun w -> Util.Codec.write_option w Util.Codec.write_bytes) v

(* Zero-copy decode: the echoed value stays a view into the received
   payload (immutable once delivered — the Codec ownership contract) and
   is compared in place, so a naive echo round at size ℓ no longer copies
   ℓ bytes per (echoer, checker) pair. *)
let decode_echo_naive b =
  match Util.Codec.decode (fun r -> Util.Codec.read_option r Util.Codec.read_bytes_view) b with
  | v -> Some v
  | exception Util.Codec.Decode_error _ -> None

let encode_echo_fp fp =
  Util.Codec.encode (fun w -> Util.Codec.write_option w Crypto.Fingerprint.encode) fp

let decode_echo_fp b =
  match Util.Codec.decode (fun r -> Util.Codec.read_option r Crypto.Fingerprint.decode) b with
  | v -> Some v
  | exception Util.Codec.Decode_error _ -> None

(* Cost spec (see Analysis.Costs) for an honest run over [n] parties and a
   [len]-byte value: the sender's fan-out round, then the all-to-all echo
   round — full framed value (naive) or option-framed fingerprint.  Two
   rounds in both variants. *)
let cost_spec ~variant ~n ~lambda ~len =
  let open Analysis.Costs in
  let nm1 = Sub (n, Const 1) in
  let send =
    exact ~label:"send" ~edge:"sender->all"
      ~bits:(Cost_expr.bits (Mul [ nm1; len ]))
      ~messages:nm1 ~rounds:(Const 1)
  in
  let echo_msgs = Mul [ n; nm1 ] in
  let echo =
    match variant with
    | Naive ->
      (* write_option Some + write_bytes: 1 + varint(len) + len. *)
      exact ~label:"echo" ~edge:"all->all"
        ~bits:(Cost_expr.bits (Mul [ echo_msgs; Add [ Const 1; varint_e len; len ] ]))
        ~messages:echo_msgs ~rounds:(Const 1)
    | Fingerprinted ->
      let t = Cost_expr.fp_t ~lambda ~n ~len:(Max (len, Const 1)) in
      bounded ~label:"echo" ~edge:"all->all"
        ~bits:
          (Cost_expr.bits (Mul [ echo_msgs; Add [ Const 1; Cost_expr.fp_bytes_hi t ] ]))
        ~slack:(Cost_expr.bits (Mul [ echo_msgs; Cost_expr.fp_slack_bytes t ]))
        ~reason:Cost_expr.fp_reason ~messages:echo_msgs ~rounds:(Const 1)
  in
  {
    name =
      (match variant with
      | Naive -> "broadcast.naive"
      | Fingerprinted -> "broadcast.fingerprinted");
    phases = [ send; echo ];
    max_locality = None;
  }

let run ?pool ?deadline net rng params ~variant ~sender ~value ~corruption ~adv =
  let n = Netsim.Net.n net in
  let all_parties = List.init n (fun i -> i) in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let should_drop ~src ~dst =
    is_corrupt src && match adv.drop with Some f -> f ~src ~dst | None -> false
  in
  (* Step 1: broadcast step. *)
  for dst = 0 to n - 1 do
    if dst <> sender && not (should_drop ~src:sender ~dst) then begin
      let v =
        match adv.sender_value with
        | Some f when is_corrupt sender -> f ~dst
        | _ -> value
      in
      Netsim.Net.send net ~src:sender ~dst v
    end
  done;
  Netsim.Net.step_until_quiet ?deadline net;
  (* Per-party collection of the sender's value shards across domains:
     each party only drains its own inbox. *)
  let received = Array.make n None in
  let collected =
    Netsim.Net.run_round ?pool net ~parties:all_parties (fun p ->
        let i = Netsim.Net.Party.id p in
        if i = sender then Some value
        else
          match Netsim.Net.Party.recv_from p ~src:sender with
          | [ v ] -> Some v
          | _ -> None)
  in
  List.iteri (fun i v -> received.(i) <- v) collected;
  (* Step 2: verification step — every party tells every other what it
     received (full value or fingerprint). *)
  let aborted = Array.make n false in
  let mark_aborted verdicts =
    List.iteri (fun i bad -> if bad then aborted.(i) <- true) verdicts
  in
  (match variant with
  | Naive ->
    (* The naive echo consumes no randomness, so both the fan-out and the
       output check run through the sharded driver. *)
    let (_ : unit list) =
      Netsim.Net.run_round ?pool net ~parties:all_parties (fun p ->
          let i = Netsim.Net.Party.id p in
          let honest_payload = encode_echo_naive received.(i) in
          for dst = 0 to n - 1 do
            if dst <> i && not (should_drop ~src:i ~dst) then begin
              let payload =
                match adv.echo_value with
                | Some f when is_corrupt i -> encode_echo_naive (Some (f ~me:i ~dst (Option.value received.(i) ~default:Bytes.empty)))
                | _ -> honest_payload
              in
              Netsim.Net.Party.send p ~dst payload
            end
          done)
    in
    Netsim.Net.step_until_quiet ?deadline net;
    (* Step 3: output step. *)
    mark_aborted
      (Netsim.Net.run_round ?pool net ~parties:all_parties (fun p ->
           let i = Netsim.Net.Party.id p in
           let mine = received.(i) in
           let msgs = Netsim.Net.Party.recv p in
           let bad = ref (List.length msgs < n - 1) in
           List.iter
             (fun (_, payload) ->
               match decode_echo_naive payload with
               | None -> bad := true
               | Some theirs ->
                 let same =
                   match (mine, theirs) with
                   | Some a, Some b -> Util.Codec.view_equal_bytes b a
                   | None, None -> true
                   | _ -> false
                 in
                 if not same then bad := true)
             msgs;
           !bad))
  | Fingerprinted ->
    let t = Params.fingerprint_t params ~msg_len:(max 1 (Bytes.length value)) in
    (* The echo fan-out draws fingerprint keys from the shared [rng], so
       it must stay on the calling domain in party order. *)
    for i = 0 to n - 1 do
      let fp = Option.map (fun v -> Crypto.Fingerprint.make rng ~t v) received.(i) in
      let honest_payload = encode_echo_fp fp in
      for dst = 0 to n - 1 do
        if dst <> i && not (should_drop ~src:i ~dst) then begin
          let payload =
            match adv.echo_value with
            | Some f when is_corrupt i ->
              let fake = f ~me:i ~dst (Option.value received.(i) ~default:Bytes.empty) in
              encode_echo_fp (Some (Crypto.Fingerprint.make rng ~t fake))
            | _ -> honest_payload
          in
          Netsim.Net.send net ~src:i ~dst payload
        end
      done
    done;
    Netsim.Net.step_until_quiet ?deadline net;
    mark_aborted
      (Netsim.Net.run_round ?pool net ~parties:all_parties (fun p ->
           let i = Netsim.Net.Party.id p in
           let mine = received.(i) in
           let msgs = Netsim.Net.Party.recv p in
           let bad = ref (List.length msgs < n - 1) in
           List.iter
             (fun (_, payload) ->
               match decode_echo_fp payload with
               | None -> bad := true
               | Some theirs ->
                 let same =
                   match (mine, theirs) with
                   | Some v, Some fp -> Crypto.Fingerprint.check fp v
                   | None, None -> true
                   | _ -> false
                 in
                 if not same then bad := true)
             msgs;
           !bad)));
  Array.init n (fun i ->
      if aborted.(i) then Outcome.Abort (Outcome.Equivocation "broadcast echo mismatch")
      else
        match received.(i) with
        | Some v -> Outcome.Output v
        | None -> Outcome.Abort (Outcome.Missing "no value from sender"))
