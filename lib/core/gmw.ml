type adv = { flip_share : (me:int -> gate_index:int -> bool) option }

let honest_adv = { flip_share = None }

(* ---- Circuit flattening ----

   Assign every physically-distinct gate a dense index in topological
   order, so shares can live in flat arrays and AND gates can be batched
   by circuit depth (one opening round per layer). *)

type flat_gate =
  | FInput of int
  | FConst of bool
  | FNot of int
  | FXor of int * int
  | FAnd of int * int
  | FOr of int * int

type flat = {
  gates : flat_gate array;
  depths : int array;
  outputs : int array; (* gate ids of the circuit outputs *)
}

let flatten (circuit : Circuit.t) : flat =
  let ids = Hashtbl.create 256 in
  let gates = ref [] in
  let depths = ref [] in
  let count = ref 0 in
  (* Physical identity memo, mirroring Circuit's internal Memo. *)
  let find g =
    let h = Hashtbl.hash g in
    let rec scan = function
      | [] -> None
      | (g', id) :: _ when g' == g -> Some id
      | _ :: rest -> scan rest
    in
    scan (Hashtbl.find_all ids h)
  in
  let add g id =
    let h = Hashtbl.hash g in
    Hashtbl.add ids h (g, id)
  in
  let rec go (g : Circuit.gate) =
    match find (Obj.repr g) with
    | Some id -> id
    | None ->
      let flat, depth =
        match g with
        | Circuit.Input i -> (FInput i, 0)
        | Circuit.Const b -> (FConst b, 0)
        | Circuit.Not a ->
          let ia = go a in
          (* Strictly increasing levels: a NOT above a multiplicative gate
             must evaluate after that gate's opening round. *)
          (FNot ia, 1 + List.nth !depths (!count - 1 - ia))
        | Circuit.Xor (a, b) ->
          let ia = go a in
          let ib = go b in
          let da = List.nth !depths (!count - 1 - ia) in
          let db = List.nth !depths (!count - 1 - ib) in
          (FXor (ia, ib), 1 + max da db)
        | Circuit.And (a, b) ->
          let ia = go a in
          let ib = go b in
          let da = List.nth !depths (!count - 1 - ia) in
          let db = List.nth !depths (!count - 1 - ib) in
          (FAnd (ia, ib), 1 + max da db)
        | Circuit.Or (a, b) ->
          let ia = go a in
          let ib = go b in
          let da = List.nth !depths (!count - 1 - ia) in
          let db = List.nth !depths (!count - 1 - ib) in
          (FOr (ia, ib), 1 + max da db)
      in
      let id = !count in
      incr count;
      gates := flat :: !gates;
      depths := depth :: !depths;
      add (Obj.repr g) id;
      id
  in
  let outputs = Array.of_list (List.map go circuit.Circuit.outputs) in
  {
    gates = Array.of_list (List.rev !gates);
    depths = Array.of_list (List.rev !depths);
    outputs;
  }

let triples_used ~circuit =
  let f = flatten circuit in
  Array.fold_left
    (fun acc g -> match g with FAnd _ | FOr _ -> acc + 1 | _ -> acc)
    0 f.gates

(* Cost spec (see Analysis.Costs): fully closed-form given the circuit —
   input sharing, one batched Beaver opening per layer that actually
   contains multiplicative gates (layers without them neither send nor
   step), and the output opening.  Every phase is an all-pairs exchange
   of one packed message. *)
let cost_spec ~circuit ~input_width ~n =
  let open Analysis.Costs in
  let flat = flatten circuit in
  let layer_mults = Hashtbl.create 16 in
  Array.iteri
    (fun id g ->
      match g with
      | FAnd _ | FOr _ ->
        let l = flat.depths.(id) in
        Hashtbl.replace layer_mults l (1 + try Hashtbl.find layer_mults l with Not_found -> 0)
      | _ -> ())
    flat.gates;
  let layers =
    List.sort compare (Hashtbl.fold (fun l m acc -> (l, m) :: acc) layer_mults [])
  in
  let pairs = Mul [ n; Sub (n, Const 1) ] in
  let exchange label payload_bytes =
    exact ~label ~edge:"all-pairs"
      ~bits:(Mul [ Const 8; pairs; Const payload_bytes ])
      ~messages:pairs ~rounds:(Const 1)
  in
  {
    name = "gmw.run";
    phases =
      (exchange "input_share" ((input_width + 7) / 8)
      :: List.map
           (fun (l, m) -> exchange (Printf.sprintf "layer%d" l) (((2 * m) + 7) / 8))
           layers)
      @ [ exchange "output" ((Array.length flat.outputs + 7) / 8) ];
    max_locality = None;
  }

(* ---- Bit-packing helpers for batched openings ---- *)

let pack_bits bits =
  let n = List.length bits in
  let out = Bytes.make ((n + 7) / 8) '\000' in
  List.iteri
    (fun k b ->
      if b then
        Bytes.set out (k / 8) (Char.chr (Char.code (Bytes.get out (k / 8)) lor (1 lsl (k mod 8)))))
    bits;
  out

let unpack_bits b ~count =
  List.init count (fun k ->
      k / 8 < Bytes.length b
      && (Char.code (Bytes.get b (k / 8)) lsr (k mod 8)) land 1 = 1)

let run net rng ~circuit ~input_width ~inputs ~corruption ~adv =
  let n = Netsim.Net.n net in
  if Array.length inputs <> n then invalid_arg "Gmw.run: wrong input count";
  if n * input_width <> circuit.Circuit.num_inputs then
    invalid_arg "Gmw.run: circuit arity mismatch";
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let flat = flatten circuit in
  let num_gates = Array.length flat.gates in
  (* shares.(party).(gate) *)
  let shares = Array.init n (fun _ -> Array.make num_gates false) in

  (* ---- Input sharing ----
     Wire w = party (w / input_width)'s bit (w mod input_width).  The owner
     samples n-1 random shares, keeps the XOR-completion, and sends each
     other party one packed message with all its wire shares. *)
  let input_bit owner k = (inputs.(owner) lsr k) land 1 = 1 in
  let owner_shares =
    Array.init n (fun owner ->
        Array.init input_width (fun k ->
            let rand = Array.init n (fun _ -> Util.Prng.bool rng) in
            (* Overwrite the owner's slot so the XOR equals the true bit. *)
            let others = ref false in
            Array.iteri (fun j b -> if j <> owner then others := !others <> b) rand;
            rand.(owner) <- !others <> input_bit owner k;
            rand))
  in
  for owner = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if dst <> owner then
        Netsim.Net.send net ~src:owner ~dst
          (pack_bits (List.init input_width (fun k -> owner_shares.(owner).(k).(dst))))
    done
  done;
  Netsim.Net.step net;
  let wire_share = Array.make_matrix n circuit.Circuit.num_inputs false in
  for me = 0 to n - 1 do
    for owner = 0 to n - 1 do
      let bits =
        if owner = me then List.init input_width (fun k -> owner_shares.(me).(k).(me))
        else
          match Netsim.Net.recv_from net ~dst:me ~src:owner with
          | [ b ] -> unpack_bits b ~count:input_width
          | _ -> List.init input_width (fun _ -> false)
      in
      List.iteri (fun k b -> wire_share.(me).((owner * input_width) + k) <- b) bits
    done
  done;

  (* ---- Beaver triples from the trusted dealer ----
     triple.(gate) = per-party (a, b, c) shares with (⊕a)(⊕b) = ⊕c. *)
  let triples = Hashtbl.create 64 in
  Array.iteri
    (fun id g ->
      match g with
      | FAnd _ | FOr _ ->
        let a = Util.Prng.bool rng and b = Util.Prng.bool rng in
        let c = a && b in
        let sa = Array.init n (fun _ -> Util.Prng.bool rng) in
        let sb = Array.init n (fun _ -> Util.Prng.bool rng) in
        let sc = Array.init n (fun _ -> Util.Prng.bool rng) in
        let fix arr v =
          let x = ref false in
          for j = 1 to n - 1 do
            x := !x <> arr.(j)
          done;
          arr.(0) <- !x <> v
        in
        fix sa a;
        fix sb b;
        fix sc c;
        Hashtbl.replace triples id (sa, sb, sc)
      | _ -> ())
    flat.gates;

  (* ---- Layer-by-layer evaluation ---- *)
  let max_depth = Array.fold_left max 0 flat.depths in
  for layer = 0 to max_depth do
    (* Local gates of this layer first. *)
    Array.iteri
      (fun id g ->
        if flat.depths.(id) = layer then
          match g with
          | FInput w -> for p = 0 to n - 1 do shares.(p).(id) <- wire_share.(p).(w) done
          | FConst b ->
            for p = 0 to n - 1 do
              shares.(p).(id) <- (p = 0 && b)
            done
          | FNot a ->
            for p = 0 to n - 1 do
              shares.(p).(id) <- (if p = 0 then not shares.(p).(a) else shares.(p).(a))
            done
          | FXor (a, b) ->
            for p = 0 to n - 1 do
              shares.(p).(id) <- shares.(p).(a) <> shares.(p).(b)
            done
          | FAnd _ | FOr _ -> ())
      flat.gates;
    (* Beaver openings for this layer's multiplicative gates, batched. *)
    let layer_ands =
      let acc = ref [] in
      Array.iteri
        (fun id g ->
          if flat.depths.(id) = layer then
            match g with FAnd (a, b) | FOr (a, b) -> acc := (id, a, b) :: !acc | _ -> ())
        flat.gates;
      List.rev !acc
    in
    if layer_ands <> [] then begin
      (* Each party broadcasts (d_i, e_i) for every gate in the layer. *)
      let my_de = Array.make_matrix n (2 * List.length layer_ands) false in
      List.iteri
        (fun k (id, ga, gb) ->
          let sa, sb, _ = Hashtbl.find triples id in
          for p = 0 to n - 1 do
            (* For OR gates, the multiplication inputs are the raw shares;
               the or-completion happens after. *)
            let xa = shares.(p).(ga) and xb = shares.(p).(gb) in
            let d = ref (xa <> sa.(p)) and e = ref (xb <> sb.(p)) in
            (if is_corrupt p then
               match adv.flip_share with
               | Some f when f ~me:p ~gate_index:id -> d := not !d
               | _ -> ());
            my_de.(p).(2 * k) <- !d;
            my_de.(p).((2 * k) + 1) <- !e
          done)
        layer_ands;
      for src = 0 to n - 1 do
        let payload = pack_bits (Array.to_list my_de.(src)) in
        for dst = 0 to n - 1 do
          if dst <> src then Netsim.Net.send net ~src ~dst payload
        done
      done;
      Netsim.Net.step net;
      (* Everyone reconstructs the public d, e per gate. *)
      let received = Array.make n [||] in
      for me = 0 to n - 1 do
        let all = Array.make_matrix n (2 * List.length layer_ands) false in
        for src = 0 to n - 1 do
          let bits =
            if src = me then Array.to_list my_de.(me)
            else
              match Netsim.Net.recv_from net ~dst:me ~src with
              | [ b ] -> unpack_bits b ~count:(2 * List.length layer_ands)
              | _ -> List.init (2 * List.length layer_ands) (fun _ -> false)
          in
          List.iteri (fun j b -> all.(src).(j) <- b) bits
        done;
        received.(me) <- Array.init (2 * List.length layer_ands) (fun j ->
            let x = ref false in
            for src = 0 to n - 1 do
              x := !x <> all.(src).(j)
            done;
            !x)
      done;
      List.iteri
        (fun k (id, ga, gb) ->
          let sa, sb, sc = Hashtbl.find triples id in
          for p = 0 to n - 1 do
            let d = received.(p).(2 * k) and e = received.(p).((2 * k) + 1) in
            let z =
              sc.(p) <> (d && sb.(p)) <> (e && sa.(p)) <> (p = 0 && d && e)
            in
            let z =
              match flat.gates.(id) with
              | FOr _ ->
                (* x or y = x ⊕ y ⊕ (x ∧ y) *)
                shares.(p).(ga) <> shares.(p).(gb) <> z
              | _ -> z
            in
            shares.(p).(id) <- z
          done)
        layer_ands
    end
  done;

  (* ---- Output opening: exchange output-wire shares ---- *)
  let out_count = Array.length flat.outputs in
  for src = 0 to n - 1 do
    let payload =
      pack_bits (Array.to_list (Array.map (fun gid -> shares.(src).(gid)) flat.outputs))
    in
    for dst = 0 to n - 1 do
      if dst <> src then Netsim.Net.send net ~src ~dst payload
    done
  done;
  Netsim.Net.step net;
  Array.init n (fun me ->
      let acc = Array.map (fun gid -> shares.(me).(gid)) flat.outputs in
      for src = 0 to n - 1 do
        if src <> me then begin
          let bits =
            match Netsim.Net.recv_from net ~dst:me ~src with
            | [ b ] -> unpack_bits b ~count:out_count
            | _ -> List.init out_count (fun _ -> false)
          in
          List.iteri (fun j b -> acc.(j) <- acc.(j) <> b) bits
        end
      done;
      Bitpack.pack acc)
