let self_view ~claims ~views i =
  if claims.(i) then List.sort_uniq compare (i :: views.(i)) else views.(i)

let encode_fp fp = Util.Codec.encode Crypto.Fingerprint.encode fp

let decode_fp b =
  match Util.Codec.decode Crypto.Fingerprint.decode b with
  | fp -> Some fp
  | exception Util.Codec.Decode_error _ -> None

(* Cost phases (see Analysis.Costs).  Observables recorded by [run] under
   [pre]: [maxlen] (longest encoded claimant view — input to the
   fingerprint sizing, not a wire measurement), [fp_pairs] (mutual pairs
   whose lower id had not aborted before round A) and [pairs] (all mutual
   pairs; round B answers each).  Both steps always run, so rounds = 2. *)
let cost_phases ~pre ~n ~lambda =
  let open Analysis.Costs in
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let v s = Var (jn s) in
  let t = Cost_expr.fp_t ~lambda ~n ~len:(v "maxlen") in
  [
    bounded ~label:(jn "fingerprints") ~edge:"claimant->claimant"
      ~bits:(Cost_expr.bits (Mul [ v "fp_pairs"; Cost_expr.fp_bytes_hi t ]))
      ~slack:(Cost_expr.bits (Mul [ v "fp_pairs"; Cost_expr.fp_slack_bytes t ]))
      ~reason:Cost_expr.fp_reason ~messages:(v "fp_pairs") ~rounds:(Const 1);
    exact ~label:(jn "verdicts") ~edge:"claimant->claimant"
      ~bits:(Cost_expr.bits (v "pairs"))
      ~messages:(v "pairs") ~rounds:(Const 1);
  ]

let run ?deadline ?obs net rng params ~claims ~views ~corruption ~eq ~aborted =
  let n = Netsim.Net.n net in
  let ob k v = match obs with Some o -> Analysis.Costs.Obs.set o k v | None -> () in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  (* Encode each claimant's view once: the same bytes are fingerprinted by
     [i] and re-hashed by every partner [j], so per-pair re-encoding was a
     quadratic allocation hot spot at n = 512. *)
  let encoded = Array.make n Bytes.empty in
  for i = 0 to n - 1 do
    if claims.(i) then
      encoded.(i) <- Util.Codec.encode_int_list (self_view ~claims ~views i)
  done;
  let encoded_view i = encoded.(i) in
  let max_len =
    let len = ref 1 in
    for i = 0 to n - 1 do
      if claims.(i) then len := max !len (Bytes.length (encoded_view i))
    done;
    !len
  in
  let t = Params.fingerprint_t params ~msg_len:max_len in
  ob "maxlen" max_len;
  (* Adjacency bitmap: [mutual] is evaluated for every ordered pair, and
     [List.mem] over committee-sized view lists made it O(n^2 |C|). *)
  let sees = Array.make (n * n) false in
  for i = 0 to n - 1 do
    List.iter (fun j -> if j >= 0 && j < n then sees.((i * n) + j) <- true) views.(i)
  done;
  let mutual i j =
    claims.(i) && claims.(j) && sees.((i * n) + j) && sees.((j * n) + i)
  in
  (* Structural counts for the cost spec: how many ordered-pair channels
     each round uses.  Round A skips pairs whose lower id already aborted;
     round B answers every mutual pair, so the two counts can differ. *)
  let fp_pairs = ref 0 and pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if mutual i j then begin
        incr pairs;
        if not aborted.(i) then incr fp_pairs
      end
    done
  done;
  ob "fp_pairs" !fp_pairs;
  ob "pairs" !pairs;
  (* Round A: lower id sends its fingerprint. *)
  let my_fp = Array.make n None in
  for i = 0 to n - 1 do
    if claims.(i) && not aborted.(i) then
      my_fp.(i) <- Some (Crypto.Fingerprint.make rng ~t (encoded_view i))
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if mutual i j && not aborted.(i) then
        match my_fp.(i) with
        | Some fp ->
          let fp =
            match eq.Equality.tamper_fp with
            | Some f when is_corrupt i -> f ~me:i ~dst:j fp
            | _ -> fp
          in
          Netsim.Net.send net ~src:i ~dst:j (encode_fp fp)
        | None -> ()
    done
  done;
  Netsim.Net.step_until_quiet ?deadline net;
  (* Round B: receivers verify and reply one bit. *)
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      if mutual i j then begin
        let verdict =
          (* [recv_one] drains like [recv_from] and is [Some] exactly on
             the one-message case the [[ b ]] pattern matched. *)
          match Netsim.Net.recv_one net ~dst:j ~src:i with
          | Some b -> (
            match decode_fp b with
            | Some fp -> Crypto.Fingerprint.check fp (encoded_view j)
            | None -> false)
          | None -> false
        in
        if (not verdict) && not (is_corrupt j) then aborted.(j) <- true;
        let reported =
          match eq.Equality.lie_verdict with
          | Some f when is_corrupt j -> f ~me:j ~dst:i verdict
          | _ -> verdict
        in
        Netsim.Net.send net ~src:j ~dst:i
          (Bytes.make 1 (if reported then '\001' else '\000'))
      end
    done
  done;
  Netsim.Net.step_until_quiet ?deadline net;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if mutual i j then begin
        let accepted =
          match Netsim.Net.recv_one net ~dst:i ~src:j with
          | Some b when Bytes.length b = 1 -> Bytes.get b 0 = '\001'
          | _ -> false
        in
        if not accepted then aborted.(i) <- true
      end
    done
  done
