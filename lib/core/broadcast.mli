(** Single-source Broadcast with abort (Goldwasser–Lindell 2005, as
    described in §2.1 of the paper).

    Three steps: the sender sends [m] to everyone; every party echoes what
    it received to everyone; a party aborts if it ever sees two different
    values, and outputs the common value otherwise.

    Two verification variants:
    - {!Naive} — parties echo the full message: [O(n²·|m|)] bits.
    - {!Fingerprinted} — parties echo an [O(λ log n)]-bit fingerprint
      instead (the §2.1 optimization): [O(n·|m| + n²·λ·log n)] bits.

    Since the model has no PKI, a corrupted sender can equivocate and
    corrupted echoers can lie — the guarantee is only agreement-or-abort,
    which is exactly what the tests assert. *)

type variant = Naive | Fingerprinted

(** Adversary hooks (applied only to corrupted parties):
    [sender_value ~dst] substitutes the value the corrupted {e sender}
    sends to [dst] (equivocation); [echo_value ~me ~dst received]
    substitutes a corrupted party's echo; [drop ~src ~dst] suppresses a
    corrupted party's message entirely. *)
type adv = {
  sender_value : (dst:int -> bytes) option;
  echo_value : (me:int -> dst:int -> bytes -> bytes) option;
  drop : (src:int -> dst:int -> bool) option;
}

val honest_adv : adv

(** [run net rng params ~variant ~sender ~value ~corruption ~adv] — returns
    the per-party outcome: the broadcast value or an abort.  The sender's
    own outcome is its input value (it trivially "receives" it).

    With [~pool], the receive collection, the {!Naive} echo fan-out, and
    both variants' output checks shard across domains via
    {!Netsim.Net.run_round}; the {!Fingerprinted} echo fan-out stays on
    the calling domain because it draws fingerprint keys from the shared
    [rng].  Results and accounting are bit-identical at any domain count;
    adversary callbacks must be pure (all of {!Attacks}' are). *)
val run :
  ?pool:Util.Pool.t ->
  ?deadline:int ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  variant:variant ->
  sender:int ->
  value:bytes ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  bytes Outcome.t array

(** Closed-form cost spec of an honest {!run} at [n] parties broadcasting
    a [len]-byte value (see {!Analysis.Costs}): fan-out round plus echo
    round, 2 rounds in both variants; the {!Fingerprinted} echo carries
    the declared fingerprint-residue slack. *)
val cost_spec :
  variant:variant ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  len:Analysis.Costs.expr ->
  Analysis.Costs.spec
