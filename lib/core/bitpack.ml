let pack bits =
  let nbits = Array.length bits in
  let out = Bytes.make ((nbits + 7) / 8) '\000' in
  Array.iteri
    (fun k b ->
      if b then
        Bytes.set out (k / 8)
          (Char.chr (Char.code (Bytes.get out (k / 8)) lor (1 lsl (k mod 8)))))
    bits;
  out

let pack_into w bits =
  let nbits = Array.length bits in
  let nbytes = (nbits + 7) / 8 in
  for byte = 0 to nbytes - 1 do
    let acc = ref 0 in
    let base = byte * 8 in
    let hi = min 8 (nbits - base) - 1 in
    for j = 0 to hi do
      if Array.unsafe_get bits (base + j) then acc := !acc lor (1 lsl j)
    done;
    Util.Codec.write_byte w !acc
  done

let test (v : Util.Codec.view) k =
  if k < 0 || k / 8 >= v.Util.Codec.len then false
  else
    (Char.code (Bytes.get v.Util.Codec.buf (v.Util.Codec.off + (k / 8))) lsr (k mod 8))
    land 1
    = 1

let unpack b ~nbits =
  Array.init nbits (fun k ->
      if k / 8 >= Bytes.length b then false
      else (Char.code (Bytes.get b (k / 8)) lsr (k mod 8)) land 1 = 1)

let int_to_bytes v ~width = pack (Array.init width (fun k -> (v lsr k) land 1 = 1))

let bytes_to_int b ~width =
  let bits = unpack b ~nbits:width in
  let v = ref 0 in
  for k = width - 1 downto 0 do
    v := (!v lsl 1) lor (if bits.(k) then 1 else 0)
  done;
  !v
