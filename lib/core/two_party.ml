let garbler = 0
let evaluator = 1

(* Cost spec (see Analysis.Costs): three point-to-point messages, each
   exactly sized from the codec framing — the evaluator's batched OT
   round-1 keys, the garbler's tables + own labels + OT replies, and the
   evaluator's packed output bits.  Everything is structural: OT blobs
   are fixed-size for the default LWE params, label transfers are
   16 bytes each, and the garbled tables have a label-independent size
   ({!Crypto.Garble.blob_size}). *)
let cost_spec ~circuit ~input_width =
  let open Analysis.Costs in
  let vs = Util.Codec.varint_size in
  let framed b = vs b + b in
  let r1 = Crypto.Ot.round1_size in
  let r2 = Crypto.Ot.round2_size ~plaintext_len:Crypto.Garble.label_size in
  let msg1 = vs input_width + (input_width * framed r1) in
  let msg2 =
    framed (Crypto.Garble.blob_size circuit)
    + (vs input_width + (input_width * framed Crypto.Garble.label_size))
    + (vs input_width + (input_width * framed r2))
  in
  let msg3 = (Circuit.num_outputs circuit + 7) / 8 in
  let one label b dir =
    exact ~label ~edge:dir
      ~bits:(Const (8 * b))
      ~messages:(Const 1) ~rounds:(Const 1)
  in
  {
    name = "two_party.yao";
    phases =
      [
        one "ot_round1" msg1 "evaluator->garbler";
        one "tables+ot_round2" msg2 "garbler->evaluator";
        one "output" msg3 "evaluator->garbler";
      ];
    max_locality = None;
  }

let run net rng ~circuit ~input_width ~x0 ~x1 =
  if Netsim.Net.n net < 2 then invalid_arg "Two_party.run: need two parties";
  if circuit.Circuit.num_inputs <> 2 * input_width then
    invalid_arg "Two_party.run: circuit must take two input words";
  (* Round 1: evaluator sends one OT first message per input bit. *)
  let ot_states =
    Array.init input_width (fun k ->
        let choice = (x1 lsr k) land 1 = 1 in
        Crypto.Ot.receiver_round1 rng ~choice)
  in
  let ot_round1 =
    Util.Codec.encode
      (fun w () ->
        Util.Codec.write_list w
          (fun w (msg, _) -> Util.Codec.write_bytes w msg)
          (Array.to_list ot_states))
      ()
  in
  Netsim.Net.send net ~src:evaluator ~dst:garbler ot_round1;
  Netsim.Net.step net;
  (* Garbler: garble, answer the OTs with the evaluator-wire labels, and
     attach tables + its own active labels. *)
  let g = Crypto.Garble.garble rng circuit in
  let reply =
    match Netsim.Net.recv_from net ~dst:garbler ~src:evaluator with
    | [ r1 ] -> (
      match
        Util.Codec.decode (fun r -> Util.Codec.read_list r Util.Codec.read_bytes) r1
      with
      | exception Util.Codec.Decode_error _ -> None
      | round1s when List.length round1s = input_width ->
        let ot_replies =
          List.mapi
            (fun k round1 ->
              let wire = input_width + k in
              let l0, l1 = Crypto.Garble.input_labels g ~wire in
              Crypto.Ot.sender_round2 rng ~round1 ~m0:l0 ~m1:l1)
            round1s
        in
        if List.exists Option.is_none ot_replies then None
        else begin
          let own_labels =
            List.init input_width (fun k ->
                let l0, l1 = Crypto.Garble.input_labels g ~wire:k in
                if (x0 lsr k) land 1 = 1 then l1 else l0)
          in
          Some
            (Util.Codec.encode
               (fun w () ->
                 Util.Codec.write_bytes w (Crypto.Garble.tables g);
                 Util.Codec.write_list w Util.Codec.write_bytes own_labels;
                 Util.Codec.write_list w Util.Codec.write_bytes
                   (List.map Option.get ot_replies))
               ())
        end
      | _ -> None)
    | _ -> None
  in
  match reply with
  | None -> Outcome.Abort (Outcome.Malformed "OT round 1")
  | Some payload -> (
    Netsim.Net.send net ~src:garbler ~dst:evaluator payload;
    Netsim.Net.step net;
    (* Evaluator: finish the OTs, assemble labels, evaluate. *)
    match Netsim.Net.recv_from net ~dst:evaluator ~src:garbler with
    | [ msg ] -> (
      match
        Util.Codec.decode
          (fun r ->
            let tables = Util.Codec.read_bytes r in
            let own = Util.Codec.read_list r Util.Codec.read_bytes in
            let ots = Util.Codec.read_list r Util.Codec.read_bytes in
            (tables, own, ots))
          msg
      with
      | exception Util.Codec.Decode_error _ -> Outcome.Abort (Outcome.Malformed "garbler message")
      | tables, own_labels, ot_replies ->
        if List.length own_labels <> input_width || List.length ot_replies <> input_width
        then Outcome.Abort (Outcome.Malformed "label arity")
        else begin
          let my_labels =
            List.mapi
              (fun k round2 -> Crypto.Ot.receiver_finish (snd ot_states.(k)) ~round2)
              ot_replies
          in
          if List.exists Option.is_none my_labels then
            Outcome.Abort Outcome.Decryption_failed
          else begin
            let input_labels =
              Array.of_list (own_labels @ List.map Option.get my_labels)
            in
            match Crypto.Garble.eval ~tables ~input_labels with
            | None -> Outcome.Abort (Outcome.Malformed "garbled tables")
            | Some out_bits ->
              let packed = Bitpack.pack out_bits in
              (* Round 3: the evaluator shares the output with the garbler. *)
              Netsim.Net.send net ~src:evaluator ~dst:garbler packed;
              Netsim.Net.step net;
              let g_out =
                match Netsim.Net.recv_from net ~dst:garbler ~src:evaluator with
                | [ b ] -> b
                | _ -> Bytes.empty
              in
              Outcome.Output (g_out, packed)
          end
        end)
    | _ -> Outcome.Abort (Outcome.Missing "garbler reply"))
