type case = {
  protocol : string;
  seed : int;
  schedule : int;
  n : int;
  h : int;
  spec : Netsim.Faults.spec;
  async : bool;
  violation : string option;
}

let protocols =
  [
    "broadcast-naive";
    "broadcast-fp";
    "all-to-all";
    "committee";
    "gossip";
    "mpc-abort";
    "theorem2";
    "theorem4";
  ]

(* The async sweep covers the deadline-aware entry points: each of these
   degrades a late message into its own failed-check/abort path, so an
   adversarial delivery schedule can at worst force the abort the paper
   already permits.  The MPC pipelines are exercised through their
   committee/equality/broadcast components rather than end-to-end. *)
let async_protocols =
  [ "broadcast-naive"; "broadcast-fp"; "all-to-all"; "committee"; "gossip" ]

(* Fixed per-protocol substream keys: adding an entry point must not
   shift any existing protocol's derived randomness (replay commands in
   old reports stay valid). *)
let proto_key = function
  | "broadcast-naive" -> 1
  | "broadcast-fp" -> 2
  | "all-to-all" -> 3
  | "committee" -> 4
  | "gossip" -> 5
  | "mpc-abort" -> 6
  | "theorem2" -> 7
  | "theorem4" -> 8
  | "broken-broadcast" -> 99
  | p -> invalid_arg (Printf.sprintf "Soak.run_case: unknown protocol %S" p)

(* The MPC protocols run full elections + F_Gen + F_Comp per case; keep
   their networks a notch smaller so a 200-schedule sweep stays cheap. *)
let heavy p = List.mem p [ "mpc-abort"; "theorem2"; "theorem4" ]

(* ---- predicate helpers ---- *)

let pairs_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (i, x) (j, y) -> i = j && Bytes.equal x y) a b

let find_honest_violating corruption outs check =
  let bad = ref None in
  Array.iteri
    (fun i o ->
      if !bad = None && Netsim.Corruption.is_honest corruption i then
        match o with
        | Outcome.Output v -> ( match check i v with Some d -> bad := Some d | None -> ())
        | Outcome.Abort _ -> ())
    outs;
  !bad

(* ---- per-protocol runners ----
   Each returns [Some detail] on a predicate violation, [None] otherwise.
   Runners draw protocol dimensions from [r_dims] and hand [r_run] to the
   protocol — both independent of the fault-spec substream, so shrinking
   replays the identical execution under a smaller spec.  [~deadline] is
   the per-phase round timeout for deadline-aware protocols (1 on the
   synchronous transport; the transport's fairness span under async). *)

let run_broadcast variant ~net ~params ~corruption ~faults ~r_dims ~r_run ~deadline =
  let n = Netsim.Net.n net in
  let sender = Util.Prng.int r_dims n in
  let value = Util.Prng.bytes r_dims (1 + Util.Prng.int r_dims 24) in
  let adv = Attacks.fuzz_broadcast faults ~sender ~value in
  let outs = Broadcast.run ~deadline net r_run params ~variant ~sender ~value ~corruption ~adv in
  if not (Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption) then
    Some "agreement-or-abort violated"
  else if Netsim.Corruption.is_honest corruption sender then
    find_honest_violating corruption outs (fun i v ->
        if Bytes.equal v value then None
        else Some (Printf.sprintf "honest sender, party %d output a different value" i))
  else None

let run_all_to_all ~net ~params ~corruption ~faults ~r_dims ~r_run ~deadline =
  let n = Netsim.Net.n net in
  let variant = if Util.Prng.bool r_dims then All_to_all.Fingerprinted else All_to_all.Naive in
  let inputs = Array.init n (fun _ -> Util.Prng.bytes r_dims (1 + Util.Prng.int r_dims 12)) in
  let adv = Attacks.fuzz_all_to_all faults ~input:(fun i -> inputs.(i)) in
  let results =
    All_to_all.run ~deadline net r_run params ~variant ~participants:(List.init n Fun.id)
      ~input:(fun i -> inputs.(i))
      ~corruption ~adv
  in
  let outs = Array.of_list (List.map snd results) in
  if not (Outcome.agreement_or_abort ~equal:pairs_equal outs corruption) then
    Some "agreement-or-abort violated"
  else
    find_honest_violating corruption outs (fun i vec ->
        let bad = ref None in
        List.iter
          (fun (j, v) ->
            if !bad = None && Netsim.Corruption.is_honest corruption j
               && not (Bytes.equal v inputs.(j)) then
              bad :=
                Some (Printf.sprintf "party %d's vector misreports honest party %d's input" i j))
          vec;
        !bad)

let run_committee ~net ~params ~corruption ~faults ~r_dims:_ ~r_run ~deadline =
  let adv = Attacks.fuzz_committee faults in
  let outs = Committee.run ~deadline net r_run params ~corruption ~adv in
  (* Claims 12/14: all honest *elected* members share the committee view,
     unless some honest party aborted. *)
  let honest_views =
    List.filter_map
      (fun i ->
        match outs.(i) with
        | Outcome.Output v when v.Committee.elected -> Some v.Committee.committee
        | _ -> None)
      (Netsim.Corruption.honest_list corruption)
  in
  match honest_views with
  | [] -> None
  | first :: rest ->
    if List.for_all (( = ) first) rest || Outcome.some_honest_aborted outs corruption then None
    else Some "honest elected members hold diverging views without abort"

let run_gossip ~net ~params ~corruption ~faults ~r_dims ~r_run ~deadline =
  let n = Netsim.Net.n net in
  let graph = Array.init n (fun i -> Util.Iset.remove i (Util.Iset.range 0 (n - 1))) in
  let k = 1 + Util.Prng.int r_dims (min 3 (n - 1)) in
  let origins = Util.Prng.sample_without_replacement r_dims ~n ~k in
  let sources =
    List.map (fun o -> (o, Util.Prng.bytes r_dims (1 + Util.Prng.int r_dims 12))) origins
  in
  let adv = Attacks.fuzz_gossip faults in
  let outs = Gossip.run ~deadline net r_run params ~graph ~sources ~corruption ~adv in
  if not (Outcome.agreement_or_abort ~equal:pairs_equal outs corruption) then
    Some "agreement-or-abort violated"
  else
    (* Honest-origin correctness: the complete graph is trivially
       connected on the honest parties, so Claim 21 applies — any honest
       non-aborting party must hold the true value for an honest origin. *)
    find_honest_violating corruption outs (fun i heard ->
        let bad = ref None in
        List.iter
          (fun (o, v) ->
            if !bad = None && Netsim.Corruption.is_honest corruption o then
              match List.assoc_opt o heard with
              | Some v' when Bytes.equal v v' -> ()
              | Some _ -> bad := Some (Printf.sprintf "party %d heard a forged value for honest origin %d" i o)
              | None -> bad := Some (Printf.sprintf "party %d never heard honest origin %d" i o))
          sources;
        !bad)

let mpc_config ~params ~r_dims n =
  let pke_seed = Util.Prng.int r_dims 1_000_000 in
  ( Crypto.Pke.make_simulated ~seed:pke_seed (),
    Circuit.parity ~n,
    Array.init n (fun _ -> Util.Prng.int r_dims 2),
    params )

let run_mpc_abort ~net ~params ~corruption ~faults ~r_dims ~r_run ~deadline:_ =
  let n = Netsim.Net.n net in
  let pke, circuit, inputs, params = mpc_config ~params ~r_dims n in
  let config = { Mpc_abort.params; pke; circuit; input_width = 1 } in
  let adv = Attacks.fuzz_mpc_abort faults in
  let outs = Mpc_abort.run net r_run config ~corruption ~inputs ~adv in
  if not (Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption) then
    Some "agreement-or-abort violated"
  else None

let run_theorem2 ~net ~params ~corruption ~faults ~r_dims ~r_run ~deadline:_ =
  let n = Netsim.Net.n net in
  let pke, circuit, inputs, params = mpc_config ~params ~r_dims n in
  let config = { Local_mpc.params; pke; circuit; input_width = 1 } in
  let adv = Attacks.fuzz_theorem2 faults in
  let outs = Local_mpc.run_theorem2 net r_run config ~corruption ~inputs ~adv in
  if not (Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption) then
    Some "agreement-or-abort violated"
  else None

let run_theorem4 ~net ~params ~corruption ~faults ~r_dims ~r_run ~deadline:_ =
  let n = Netsim.Net.n net in
  let pke, circuit, inputs, params = mpc_config ~params ~r_dims n in
  let config = { Local_mpc.params; pke; circuit; input_width = 1 } in
  let adv = Attacks.fuzz_theorem4 faults in
  let outs = Local_mpc.run_theorem4 net r_run config ~corruption ~inputs ~adv in
  if not (Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption) then
    Some "agreement-or-abort violated"
  else None

(* The mutation sanity check: Goldwasser–Lindell broadcast with the echo
   round (and hence the equality check) deleted — each party believes the
   first value it hears.  An equivocating fault schedule must split the
   honest outputs without triggering any abort, which the selective-abort
   predicate flags; a harness that cannot catch this variant could not
   catch a real regression either. *)
let run_broken_broadcast ~net ~params:_ ~corruption ~faults ~r_dims ~r_run:_ ~deadline:_ =
  let n = Netsim.Net.n net in
  let value = Util.Prng.bytes r_dims (8 + Util.Prng.int r_dims 8) in
  let sender =
    match Netsim.Corruption.corrupted_list corruption with s :: _ -> s | [] -> 0
  in
  for dst = 0 to n - 1 do
    if dst <> sender then
      if Netsim.Corruption.is_corrupted corruption sender then
        Netsim.Faults.send faults net ~stage:0 ~src:sender ~dst value
      else Netsim.Net.send net ~src:sender ~dst value
  done;
  Netsim.Net.step net;
  let outs =
    Array.init n (fun i ->
        if i = sender then Outcome.Output value
        else
          match Netsim.Net.recv_from net ~dst:i ~src:sender with
          | v :: _ -> Outcome.Output v
          | [] -> Outcome.Abort (Outcome.Missing "broken-broadcast: no value received"))
  in
  if not (Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption) then
    Some "agreement-or-abort violated (echo check disabled)"
  else None

let runner = function
  | "broadcast-naive" -> run_broadcast Broadcast.Naive
  | "broadcast-fp" -> run_broadcast Broadcast.Fingerprinted
  | "all-to-all" -> run_all_to_all
  | "committee" -> run_committee
  | "gossip" -> run_gossip
  | "mpc-abort" -> run_mpc_abort
  | "theorem2" -> run_theorem2
  | "theorem4" -> run_theorem4
  | "broken-broadcast" -> run_broken_broadcast
  | p -> invalid_arg (Printf.sprintf "Soak.run_case: unknown protocol %S" p)

(* A generous bound: the deepest protocol (theorem2's double gossip) uses
   a few dozen rounds at soak sizes, so only a genuine livelock hits it. *)
let soak_max_rounds = 5000

let run_case ?spec ?(async = false) ~seed ~schedule protocol =
  if async && not (List.mem protocol async_protocols) then
    invalid_arg
      (Printf.sprintf "Soak.run_case: protocol %S has no async (deadline-aware) mode" protocol);
  let run = runner protocol in
  (* Independent keyed substreams per concern: overriding the spec (the
     shrinking move) must not perturb dimensions, corruption, protocol
     randomness, or the fault schedule itself.  Key 6 ([r_net]) is drawn
     only in async mode, so sync replays from old reports are unchanged. *)
  let root = Util.Prng.create seed in
  let rs = Util.Prng.derive root ~key:(0x50AC lxor (schedule * 0x9E3779B1)) in
  let rc = Util.Prng.derive rs ~key:(proto_key protocol) in
  let r_dims = Util.Prng.derive rc ~key:1 in
  let r_spec = Util.Prng.derive rc ~key:2 in
  let r_corr = Util.Prng.derive rc ~key:3 in
  let r_run = Util.Prng.derive rc ~key:4 in
  let r_flt = Util.Prng.derive rc ~key:5 in
  let n = if heavy protocol then Util.Prng.int_in r_dims 6 9 else Util.Prng.int_in r_dims 6 14 in
  let h = Util.Prng.int_in r_dims 1 (n - 1) in
  let sp = match spec with Some s -> s | None -> Netsim.Faults.random_spec r_spec in
  let corruption =
    if Util.Prng.bool r_corr then Netsim.Corruption.random r_corr ~n ~h
    else
      let victim =
        match Util.Prng.int r_corr 3 with
        | 0 -> 0
        | 1 -> n - 1
        | _ -> Util.Prng.int r_corr n
      in
      Netsim.Corruption.targeting r_corr ~n ~h ~victim
  in
  let faults = Attacks.fuzz r_flt ~schedule ~n sp in
  let net, deadline =
    if async then begin
      (* Transport config from its own substream; the adversarial delivery
         scheduler draws from the fault schedule's reserved slot, so the
         message timing replays from the same (seed, schedule) pair as the
         payload faults.  deadline = span: fairness guarantees any honest
         in-flight message lands within [span] ticks of submission, so an
         honest run loses nothing and a late (adversarially held) message
         can only force the abort path the predicates already accept. *)
      let cfg = Netsim.Event_net.random_config (Util.Prng.derive rc ~key:6) in
      let transport =
        Netsim.Event_net.transport ~rng:(Netsim.Faults.scheduler_stream faults) cfg
      in
      ( Netsim.Net.create ~transport ~max_rounds:soak_max_rounds n,
        Netsim.Event_net.span cfg )
    end
    else (Netsim.Net.create ~max_rounds:soak_max_rounds n, 1)
  in
  let params = Params.make ~n ~h ~lambda:8 ~alpha:2 () in
  let violation =
    try run ~net ~params ~corruption ~faults ~r_dims ~r_run ~deadline
    with e -> Some ("exception: " ^ Printexc.to_string e)
  in
  { protocol; seed; schedule; n; h; spec = sp; async; violation }

let run_schedule ?protocols:ps ?(async = false) ~seed ~schedule () =
  let ps =
    match ps with Some ps -> ps | None -> if async then async_protocols else protocols
  in
  List.map (fun p -> run_case ~async ~seed ~schedule p) ps

let shrink case =
  match case.violation with
  | None -> case
  | Some _ ->
    List.fold_left
      (fun best kind ->
        let cand = Netsim.Faults.disable kind best.spec in
        let c =
          run_case ~spec:cand ~async:best.async ~seed:best.seed ~schedule:best.schedule
            best.protocol
        in
        match c.violation with Some _ -> c | None -> best)
      case
      (Netsim.Faults.enabled case.spec)

let replay_command c =
  Printf.sprintf "dune exec bench/main.exe -- --only soak --seed %d --schedule %d%s" c.seed
    c.schedule
    (if c.async then " --async" else "")

let describe c =
  Printf.sprintf
    "VIOLATION %s%s: n=%d h=%d seed=%d schedule=%d\n\
    \  minimal spec: %s\n\
    \  failure: %s\n\
    \  replay: %s"
    c.protocol
    (if c.async then " [async]" else "")
    c.n c.h c.seed c.schedule
    (Netsim.Faults.spec_to_string c.spec)
    (Option.value c.violation ~default:"-")
    (replay_command c)

type report = { total_cases : int; total_schedules : int; violations : case list }

let sweep_with ?pool ?(async = false) ~protocols ~seed ~schedules () =
  let ids = Array.init (max 0 schedules) Fun.id in
  let per_schedule =
    match pool with
    | None -> Array.map (fun k -> run_schedule ~protocols ~async ~seed ~schedule:k ()) ids
    | Some p ->
      Util.Pool.map_jobs p ids (fun k -> run_schedule ~protocols ~async ~seed ~schedule:k ())
  in
  let cases = List.concat (Array.to_list per_schedule) in
  let violations =
    List.filter_map
      (fun c -> if c.violation = None then None else Some (shrink c))
      cases
  in
  { total_cases = List.length cases; total_schedules = Array.length ids; violations }

let run_sweep ?pool ?protocols:ps ?(async = false) ~seed ~schedules () =
  let ps =
    match ps with Some ps -> ps | None -> if async then async_protocols else protocols
  in
  sweep_with ?pool ~async ~protocols:ps ~seed ~schedules ()

let canary ?pool ~seed ~schedules () =
  sweep_with ?pool ~protocols:[ "broken-broadcast" ] ~seed ~schedules ()
