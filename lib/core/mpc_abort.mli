(** Algorithm 3 — the communication-optimal MPC-with-abort protocol
    (Theorem 1): [Õ(n²/h)] bits against a static malicious adversary
    corrupting up to [n - h] parties, over point-to-point channels with no
    broadcast and no PKI.

    Protocol flow (§4.2):
    + {!Committee.run} elects a committee [C] with at least one honest
      member w.h.p.;
    + the committee runs [F_Gen] ({!Enc_func}) to create a public key
      [pk] whose secret key exists only inside the (simulated) threshold
      functionality;
    + every committee member forwards [pk] to the whole network — parties
      abort on conflicting copies;
    + every party encrypts its input under [pk] ({!Crypto.Pke}) and sends
      the ciphertext to the committee members it knows of;
    + the committee equality-tests their concatenated ciphertext vectors
      (Algorithm 3 step 5);
    + the committee runs [F_Comp] to evaluate the circuit on the decrypted
      inputs;
    + every committee member forwards the output to the whole network —
      parties abort on conflicting copies.

    The guarantee is selective abort: every honest party either outputs
    [f(x₁, …, xₙ)] (with corrupted inputs possibly substituted) or ⊥. *)

type config = {
  params : Params.t;
  pke : (module Crypto.Pke.S);
  circuit : Circuit.t;
  input_width : int;  (** bits of input per party; [n·input_width] must
                          equal the circuit's input count *)
}

type adv = {
  committee : Committee.adv;
  encf : Enc_func.adv;
  pk_forward : (me:int -> dst:int -> bytes -> bytes) option;
      (** corrupted member forwards a wrong public key *)
  input_ct : (me:int -> dst:int -> bytes -> bytes) option;
      (** corrupted party equivocates its ciphertext across members *)
  eq : Equality.adv;
  out_forward : (me:int -> dst:int -> bytes -> bytes) option;
      (** corrupted member forwards a wrong output *)
}

val honest_adv : adv

(** Per-party result: the packed circuit output bits (see {!Bitpack}).

    With [~pool], the heaviest per-round loops shard across domains via
    {!Netsim.Net.run_round}: the committee's claim collection (step 1,
    through {!Committee.run}), the pk fan-out and conflict check (step 3),
    the members' ciphertext-view assembly (step 4), and the output fan-out
    and conflict check (step 7).  Everything that draws from the shared
    [rng] — coins, key generation, input encryption, equality
    fingerprints — stays on the calling domain in party order, so results
    and accounting are bit-identical at any domain count.

    [?obs] records the structural observables the cost spec consumes
    (committee size, fan-out sender counts, ciphertext submissions,
    populated view entries — see {!cost_phases}); recording happens only
    on the calling domain. *)
val run :
  ?pool:Util.Pool.t ->
  ?deadline:int ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  config ->
  corruption:Netsim.Corruption.t ->
  inputs:int array ->
  adv:adv ->
  bytes Outcome.t array

(** [expected_output config ~inputs] — the honest functionality value, for
    checking correctness in tests. *)
val expected_output : config -> inputs:int array -> bytes

(** Phase-level communication metering, for the E1/E10 experiments. *)
type phase_costs = {
  election_bits : int;
  keygen_bits : int;
  pk_forward_bits : int;
  input_bits : int;
  equality_bits : int;
  compute_bits : int;
  output_bits : int;
}

(** [run_metered] — like {!run} but also returns per-phase bit counts. *)
val run_metered :
  ?pool:Util.Pool.t ->
  ?deadline:int ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  config ->
  corruption:Netsim.Corruption.t ->
  inputs:int array ->
  adv:adv ->
  bytes Outcome.t array * phase_costs

(** Cost phases of {!run} (see {!Analysis.Costs}): the seven Algorithm 3
    steps composed from {!Committee.cost_phases}, {!Enc_func.cost_phases}
    (keygen at depth 1, compute at [depth]), the step-5
    {!Equality.cost_phases_pairwise} on ciphertext views, and the exact
    step-3/4/7 fan-outs.  Consumes the observables {!run} records under
    [pre] ([members], [memb_idsum], [pk_senders], [input_sends],
    [ctv_some], [out_senders]) and under [pre].comm / [pre].gen /
    [pre].eq / [pre].comp.  [out_bits] is the circuit's output bit count;
    [depth] and [input_width] are the circuit depth and per-party input
    width.  Keygen/compute are guarded on a nonempty committee and the
    equality on K ≥ 2; only fingerprint residues carry slack. *)
val cost_phases :
  pre:string ->
  pke:(module Crypto.Pke.S) ->
  depth:Analysis.Costs.expr ->
  input_width:Analysis.Costs.expr ->
  out_bits:Analysis.Costs.expr ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  Analysis.Costs.phase list

val cost_spec :
  pke:(module Crypto.Pke.S) ->
  depth:Analysis.Costs.expr ->
  input_width:Analysis.Costs.expr ->
  out_bits:Analysis.Costs.expr ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  Analysis.Costs.spec
