(** Algorithm 5 — [SparseNetwork], establishing a sparse routing graph.

    Each party samples [d = α·(n/h)·log n] random outgoing hops and
    notifies them; the graph is bidirectional (hop relations are
    symmetric).  A party that receives more than [2d] incoming connections
    aborts — with honest parties this happens with probability
    [n^{-Ω(α)}], so crossing the threshold indicates a targeted flooding
    attack (Algorithm 5 step 3).

    Guarantees (Claim 20): max degree [O(α·n·log n/h)], and the subgraph
    induced by the honest parties is connected w.h.p. *)

type adv = {
  extra_targets : (me:int -> int list) option;
      (** corrupted parties connect to extra victims (the "DDoS" attack) *)
  drop_notify : (me:int -> dst:int -> bool) option;
      (** corrupted parties fail to notify some sampled hops *)
}

val honest_adv : adv

(** Per-party neighbor set, or abort.  With [~pool], the step-3
    collection (inbox drain + neighbor-set build) shards across domains
    through [Net.run_round]; outcomes are identical at any job count.
    With [~obs], records [union_degmax] — the sampled hop graph's max
    union degree |out(i) ∪ in(i)|, computed structurally from the hop
    arrays — which the cost spec's [max_locality] formula consumes. *)
val run :
  ?pool:Util.Pool.t ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  Util.Iset.t Outcome.t array

(** Closed-form cost spec of {!run} under [honest_adv] (see
    {!Analysis.Costs}): n·min(d, n−1) one-byte notifications in one
    round, exact even with corrupted parties present (the honest
    adversary's hooks are inert). *)
val cost_spec :
  n:Analysis.Costs.expr ->
  h:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  alpha:Analysis.Costs.expr ->
  Analysis.Costs.spec

(** [run_iter ~f ...] is {!run} delivered as a stream: [f i outcome] is
    called once per party in ascending [i] with exactly the outcomes
    {!run} would store.  Without a pool no more than one neighbor set is
    live at a time, so a giant-n caller (E7 at n = 10⁵–10⁶) can fold
    degree/abort statistics without ever materializing the n-element
    outcome array — which is gigabytes of [Iset] nodes at n = 10⁶. *)
val run_iter :
  ?pool:Util.Pool.t ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  f:(int -> Util.Iset.t Outcome.t -> unit) ->
  unit

(** [honest_subgraph_connected outs corruption] — true when the honest
    parties that did not abort form a connected subgraph under the mutual
    neighbor relation (the Claim 20 property measured by experiment E7). *)
val honest_subgraph_connected : Util.Iset.t Outcome.t array -> Netsim.Corruption.t -> bool

(** [max_degree outs] — over non-aborted parties. *)
val max_degree : Util.Iset.t Outcome.t array -> int
