(** The committee-view verification step shared by Algorithm 2 (step 4)
    and Algorithm 7 (step 5): every pair of claimed committee members with
    mutual knowledge of each other runs [Equality_λ] on their
    (self-inclusive) views of the committee, over direct channels.

    Mutates [aborted]: an honest party whose test fails is marked.

    Domain-safety: the per-claimant view encodings and the adjacency
    bitmap are allocated per call; the only state crossing the call
    boundary is the caller-owned [aborted] array.  Safe under
    [Util.Pool] jobs that own their network/RNG/arrays. *)

(** [?obs] records the structural observables the cost spec needs
    ([maxlen], [fp_pairs], [pairs]); see {!cost_phases}. *)
val run :
  ?deadline:int ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  claims:bool array ->
  views:int list array ->
  corruption:Netsim.Corruption.t ->
  eq:Equality.adv ->
  aborted:bool array ->
  unit

(** Cost phases of {!run} (always exactly 2 rounds): C(claimants, 2)
    mutual-pair fingerprints, then one verdict byte per mutual pair.
    Observable variables are read under label/obs prefix [pre]. *)
val cost_phases :
  pre:string ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  Analysis.Costs.phase list

(** [self_view ~claims ~views i] — party [i]'s view of the committee
    including itself when elected (the string compared by the tests and
    carried into the MPC protocols). *)
val self_view : claims:bool array -> views:int list array -> int -> int list
