(* Shared sub-expressions for the per-protocol cost specs.

   Every formula that sizes a wire object goes through a [Call] into the
   same function the protocol itself uses ([Fingerprint.residues_needed],
   [Cost_model.round1_bytes], a PKE module's [ciphertext_size], ...), so
   the spec and the encoder cannot drift apart silently: a wire-format
   change shows up as a cost-audit mismatch, not a stale formula. *)

open Analysis.Costs

let c k = Const k
let bits = bits_of_bytes

(* Fingerprint test count for a value of [len] bytes — the exact function
   [Params.fingerprint_t] delegates to. *)
let fp_t ~lambda ~n ~len =
  Call
    ( "fp_t",
      (fun a -> Crypto.Fingerprint.residues_needed ~lambda:a.(0) ~n:a.(1) ~msg_len:a.(2)),
      [| lambda; n; len |] )

(* Upper-bound wire bytes of a [t]-residue fingerprint
   ([Fingerprint.encode]: varint t, t primes, varint t, t residues).
   Primes are exactly 29 bits ([random_prime_bits ~bits:29] samples from
   [2^28, 2^29)), so each prime varint is exactly 5 bytes; residues lie in
   [0, p) and encode in 1–5 bytes depending on the sampled value, so the
   bound charges 5 and declares a 4-byte-per-residue slack. *)
let fp_bytes_hi t = Add [ Mul [ c 2; varint_e t ]; Mul [ c 10; t ] ]
let fp_slack_bytes t = Mul [ c 4; t ]

let fp_reason =
  "residue varints are 1-5 bytes depending on the sampled value; the bound charges 5 per residue"

(* [Cost_model] sizes, by Call so depth/width changes flow through. *)
let round1_bytes ~lambda ~depth ~input_bits =
  Call
    ( "round1_bytes",
      (fun a -> Cost_model.round1_bytes ~lambda:a.(0) ~depth:a.(1) ~input_bits:a.(2)),
      [| lambda; depth; input_bits |] )

(* The per-recipient partial-decryption payload of [Enc_func]: a validity
   byte plus one share per packed output block. *)
let pdec_payload ~lambda ~depth ~out_bytes =
  Call
    ( "pdec_payload",
      (fun a ->
        1 + (Cost_model.partial_dec_bytes ~lambda:a.(0) ~depth:a.(1) * Cost_model.blocks (8 * max 1 a.(2)))),
      [| lambda; depth; out_bytes |] )

(* PKE wire sizes, taken from the same first-class module the protocol
   encrypts with. *)
let pke_pk_bytes (module P : Crypto.Pke.S) = c P.public_key_size

let pke_ct_bytes (module P : Crypto.Pke.S) ~plaintext_len =
  Call
    ("ct_bytes", (fun a -> P.ciphertext_size ~plaintext_len:a.(0)), [| plaintext_len |])

(* Sparse-network degree actually used: [Params.sparse_degree] capped at
   n − 1 by the sampler. *)
let sparse_degree ~n ~h ~lambda ~alpha =
  Call
    ( "sparse_degree",
      (fun a ->
        let p = Params.make ~n:(max 2 a.(0)) ~h:a.(1) ~lambda:a.(2) ~alpha:a.(3) () in
        min (Params.sparse_degree p) (a.(0) - 1)),
      [| n; h; lambda; alpha |] )
