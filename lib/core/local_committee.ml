type adv = {
  sparse : Sparse_network.adv;
  gossip : Gossip.adv;
  false_claim : (me:int -> bool) option;
  eq : Equality.adv;
}

let honest_adv =
  {
    sparse = Sparse_network.honest_adv;
    gossip = Gossip.honest_adv;
    false_claim = None;
    eq = Equality.honest_adv;
  }

type result = {
  views : Committee.view Outcome.t array;
  graph : Util.Iset.t array;
}

let claim_payload = Bytes.make 1 '\001'

(* Cost phases (see Analysis.Costs): the sparse routing network (closed
   form), the claim gossip over the sampled graph (gossip observables
   under [pre].gossip, claim payloads are 1 byte), then View_check's two
   rounds (observables under [pre].vc). *)
let cost_phases ~pre ~n ~h ~lambda ~alpha =
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let sparse = (Sparse_network.cost_spec ~n ~h ~lambda ~alpha).Analysis.Costs.phases in
  sparse
  @ Gossip.cost_phases ~pre:(jn "gossip") ~len:(Analysis.Costs.Const 1)
  @ View_check.cost_phases ~pre:(jn "vc") ~n ~lambda

let cost_spec ~n ~h ~lambda ~alpha =
  {
    Analysis.Costs.name = "local_committee.run";
    phases = cost_phases ~pre:"" ~n ~h ~lambda ~alpha;
    max_locality = None;
  }

let run ?pool ?obs net rng params ~corruption ~adv =
  let n = Netsim.Net.n net in
  let p = Params.local_committee_prob params in
  let bound = Params.local_committee_bound params in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  (* Step 1: the routing network. *)
  let sparse_outs = Sparse_network.run ?pool net rng params ~corruption ~adv:adv.sparse in
  let graph =
    Array.map
      (function Outcome.Output s -> s | Outcome.Abort _ -> Util.Iset.empty)
      sparse_outs
  in
  let aborted = Array.map (fun o -> Outcome.is_abort o) sparse_outs in
  (* Step 2: coins with bias alpha*log n / sqrt(h). *)
  let coin = Array.init n (fun _ -> Util.Prng.bernoulli rng p) in
  let claims =
    Array.init n (fun i ->
        match adv.false_claim with
        | Some f when is_corrupt i -> f ~me:i
        | _ -> coin.(i))
  in
  (* Step 3: gossip the claims (null input for non-claimants). *)
  let sources =
    List.filter_map
      (fun i -> if claims.(i) && not aborted.(i) then Some (i, claim_payload) else None)
      (List.init n (fun i -> i))
  in
  let gossip_outs =
    Gossip.run ?pool
      ?obs:(Option.map (fun o -> Analysis.Costs.Obs.scoped o "gossip") obs)
      net rng params ~graph ~sources ~corruption ~adv:adv.gossip
  in
  let views = Array.make n [] in
  for i = 0 to n - 1 do
    match gossip_outs.(i) with
    | Outcome.Abort _ -> aborted.(i) <- true
    | Outcome.Output rumors ->
      (* C_i: the claims received for other parties. *)
      views.(i) <- List.filter_map (fun (origin, _) -> if origin <> i then Some origin else None) rumors;
      (* Step 4: too many claims → abort. *)
      if List.length views.(i) >= bound then aborted.(i) <- true
  done;
  (* Step 5: equality among mutually-known committee members over direct
     channels. *)
  View_check.run
    ?obs:(Option.map (fun o -> Analysis.Costs.Obs.scoped o "vc") obs)
    net rng params ~claims ~views ~corruption ~eq:adv.eq ~aborted;
  let view_outs =
    Array.init n (fun i ->
        if aborted.(i) then
          Outcome.Abort
            (match sparse_outs.(i) with
            | Outcome.Abort r -> r
            | Outcome.Output _ ->
              if List.length views.(i) >= bound then
                Outcome.Flooded "too many committee claims"
              else Outcome.Equality_failed "committee views differ or gossip warned")
        else
          Outcome.Output
            {
              Committee.committee = View_check.self_view ~claims ~views i;
              elected = claims.(i);
            })
  in
  { views = view_outs; graph }
