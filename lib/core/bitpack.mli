(** Packing bit vectors (circuit inputs/outputs) into byte strings for
    encryption and transmission. Bit [k] lives at byte [k/8], position
    [k mod 8] (LSB first). *)

val pack : bool array -> bytes
val unpack : bytes -> nbits:int -> bool array

(** [pack_into w bits] appends exactly [pack bits] to [w] — byte-identical
    wire output, without materializing the intermediate byte string. *)
val pack_into : Util.Codec.writer -> bool array -> unit

(** [test v k] — bit [k] of a packed bitmap read as a zero-copy
    {!Util.Codec.view}; [false] past the end (mirroring {!unpack}'s
    padding semantics). *)
val test : Util.Codec.view -> int -> bool

(** [int_to_bytes v ~width] — little-endian packing of the low [width] bits
    of [v]. *)
val int_to_bytes : int -> width:int -> bytes

(** [bytes_to_int b ~width] — inverse of {!int_to_bytes}. *)
val bytes_to_int : bytes -> width:int -> int
