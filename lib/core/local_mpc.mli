(** The locality protocols: Theorem 2 (near-optimal locality) and
    Theorem 4 / Algorithm 8 (the communication–locality tradeoff).

    {b Theorem 2} ([run_theorem2]): all [n] parties execute the Theorem 9
    protocol where the simultaneous broadcast is implemented by
    {!Gossip} over the {!Sparse_network} routing graph, and the partial
    decryptions are gossiped as well.  Communication [Õ(n³/h)], locality
    [Õ(n/h)] (each party only ever talks to its graph neighbors).

    {b Theorem 4} ([run_theorem4], Algorithm 8): elect a committee locally
    ({!Local_committee}), then sparsify the committee–network interaction:
    each member [c] samples a cover set [S_c ⊂ [n]] of size [s = n/√h]
    and is "responsible" for it — it forwards the public key to [S_c],
    collects their encrypted inputs, exchanges collected inputs with the
    other members (step 6), equality-checks the merged views (step 7),
    engages in [F_Comp] (step 8) and forwards the output back to [S_c]
    (step 9).  By the covering claim (Claim 23) every party is covered by
    an honest member w.h.p.  Communication [Õ(n³/h^{3/2})], locality
    [Õ(n/√h)]. *)

type config = {
  params : Params.t;
  pke : (module Crypto.Pke.S);
  circuit : Circuit.t;
  input_width : int;
}

type theorem2_adv = {
  sparse : Sparse_network.adv;
  gossip_r1 : Gossip.adv;      (** misbehavior while gossiping round-1 messages *)
  gossip_pdec : Gossip.adv;    (** misbehavior while gossiping partial decryptions *)
  substitute_input : (me:int -> int -> int) option;
  tamper_pdec : (me:int -> bool) option;
      (** corrupted party gossips an invalid partial decryption *)
}

val honest_theorem2_adv : theorem2_adv

(** Per-party packed circuit output, or abort.

    [?pool] shards the rng-free halves of both gossip phases
    ([Gossip.run]'s per-party fan-out/collection) across domains; the
    routing network and all stream draws stay on the calling domain, so
    results and accounting are byte-identical at any jobs count. *)
val run_theorem2 :
  ?pool:Util.Pool.t ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  config ->
  corruption:Netsim.Corruption.t ->
  inputs:int array ->
  adv:theorem2_adv ->
  bytes Outcome.t array

(** Cost phases of {!run_theorem2} (see {!Analysis.Costs}): the sparse
    routing network (closed form) and the two gossip phases — round-1
    messages under [pre].g1, partial decryptions under [pre].g2 —
    consuming the observables {!run_theorem2} records into [?obs].
    [out_bits] is the circuit's output bit count.  Fully exact. *)
val cost_phases_theorem2 :
  pre:string ->
  n:Analysis.Costs.expr ->
  h:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  alpha:Analysis.Costs.expr ->
  depth:Analysis.Costs.expr ->
  input_width:Analysis.Costs.expr ->
  out_bits:Analysis.Costs.expr ->
  Analysis.Costs.phase list

val cost_spec_theorem2 :
  n:Analysis.Costs.expr ->
  h:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  alpha:Analysis.Costs.expr ->
  depth:Analysis.Costs.expr ->
  input_width:Analysis.Costs.expr ->
  out_bits:Analysis.Costs.expr ->
  Analysis.Costs.spec

type theorem4_adv = {
  election : Local_committee.adv;
  encf : Enc_func.adv;
  pk_forward : (me:int -> dst:int -> bytes -> bytes) option;
  input_ct : (me:int -> dst:int -> bytes -> bytes) option;
  exchange_tamper : (me:int -> dst:int -> party:int -> bytes -> bytes) option;
      (** corrupted member forwards altered ciphertexts in step 6 *)
  eq : Equality.adv;
  out_forward : (me:int -> dst:int -> bytes -> bytes) option;
}

val honest_theorem4_adv : theorem4_adv

(** Phase costs matching Equation (1) of the paper. *)
type theorem4_costs = {
  election_bits : int;   (** LocalCommitteeElect, [O(|C|·d·n)] *)
  keygen_bits : int;     (** F_Gen inside the committee *)
  cover_bits : int;      (** pk to covers + inputs back, [O(|C|·s·b)] *)
  exchange_bits : int;   (** member-to-member input exchange, [Õ(|C|²·s)] *)
  equality_bits : int;   (** pairwise equality, [Õ(|C|²)] *)
  compute_bits : int;    (** F_Comp, [Õ(|C|²)] *)
  output_bits : int;     (** outputs to covers *)
}

(** [?pool] shards the rng-free per-party halves (pk fan-out to covers,
    pk-consistency checks, input collection, the O(|C|²) exchange
    encode-and-send plus merge, output fan-out and final collection)
    through [Netsim.Net.run_round], and hands the pool to the election
    gossip, [Enc_func] and the step-7 [Equality.pairwise].  Cover
    sampling, input encryption and every other stream draw stay
    sequential on the calling domain, so verdicts and accounting are
    byte-identical at any jobs count. *)
val run_theorem4 :
  ?pool:Util.Pool.t ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  config ->
  corruption:Netsim.Corruption.t ->
  inputs:int array ->
  adv:theorem4_adv ->
  bytes Outcome.t array

(** [run_theorem4_metered] additionally returns the Equation (1) phase
    decomposition, and allows overriding the committee bias and cover size
    for the E10 balance experiment.  [?obs] records the structural
    observables {!cost_phases_theorem4} consumes (committee size, cover
    fan-out counts, input submissions, exchange framing, populated merged
    view entries, plus sub-protocol observables under [pre].lc / .gen /
    .eq / .comp); recording happens only on the calling domain. *)
val run_theorem4_metered :
  ?cover_size:int ->
  ?pool:Util.Pool.t ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  config ->
  corruption:Netsim.Corruption.t ->
  inputs:int array ->
  adv:theorem4_adv ->
  bytes Outcome.t array * theorem4_costs

(** Cost phases of {!run_theorem4} (see {!Analysis.Costs}): the nine
    Algorithm 8 steps composed from {!Local_committee.cost_phases},
    {!Enc_func.cost_phases} (keygen at depth 1, compute at [depth]), the
    step-7 {!Equality.cost_phases_pairwise} on merged views, and the
    exact cover/exchange fan-outs.  Keygen/compute are guarded on a
    nonempty committee, the equality on K ≥ 2; only fingerprint residues
    carry slack. *)
val cost_phases_theorem4 :
  pre:string ->
  pke:(module Crypto.Pke.S) ->
  depth:Analysis.Costs.expr ->
  input_width:Analysis.Costs.expr ->
  out_bits:Analysis.Costs.expr ->
  n:Analysis.Costs.expr ->
  h:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  alpha:Analysis.Costs.expr ->
  Analysis.Costs.phase list

val cost_spec_theorem4 :
  pke:(module Crypto.Pke.S) ->
  depth:Analysis.Costs.expr ->
  input_width:Analysis.Costs.expr ->
  out_bits:Analysis.Costs.expr ->
  n:Analysis.Costs.expr ->
  h:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  alpha:Analysis.Costs.expr ->
  Analysis.Costs.spec

val expected_output : config -> inputs:int array -> bytes
