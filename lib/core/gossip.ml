type adv = {
  equivocate : (me:int -> origin:int -> dst:int -> bytes -> bytes option) option;
  forge : (me:int -> (int * bytes) list) option;
  drop : (me:int -> origin:int -> dst:int -> bool) option;
  spread_warning : bool;
}

let honest_adv = { equivocate = None; forge = None; drop = None; spread_warning = true }

(* Wire format: everything a party says to one neighbor in one round rides
   in a single batched message instead of many tiny ones.  A batch is a
   varint item count, a {!Bitpack}ed item-kind bitmap (bit k set = item k
   is a warning, clear = rumor), then the rumor bodies (varint origin,
   length-prefixed value) in item order.  The per-item tag byte of the old
   one-message-per-rumor format becomes one bit, and per-round message
   counts drop from O(rumors x degree) to O(degree). *)
type item = Rumor of int * bytes | Warning

(* Received items carry zero-copy views into the delivered payload: a
   rumor's body is only copied out ([view_to_bytes]) the first time a
   party hears it.  Every later duplicate — and with degree d each rumor
   arrives ~d times — is compared ([view_equal_bytes]) and dropped
   without materializing.  Payloads are immutable by convention, so the
   views stay valid for the whole drain (see the Codec ownership
   contract). *)
type rx_item = Rx_rumor of int * Util.Codec.view | Rx_warning

type parsed = Batch of rx_item list | Garbage

let encode_batch items =
  Util.Codec.encode
    (fun w items ->
      Util.Codec.write_varint w (List.length items);
      let kinds =
        Array.of_list (List.map (function Warning -> true | Rumor _ -> false) items)
      in
      Util.Codec.write_raw w (Bitpack.pack kinds);
      List.iter
        (function
          | Warning -> ()
          | Rumor (origin, value) ->
            Util.Codec.write_varint w origin;
            Util.Codec.write_bytes w value)
        items)
    items

let parse payload =
  match
    Util.Codec.decode
      (fun r ->
        let count = Util.Codec.read_varint r in
        if count < 0 || count > 8 * Bytes.length payload then
          raise (Util.Codec.Decode_error "bad batch count");
        let kinds = Bitpack.unpack (Util.Codec.read_raw r ((count + 7) / 8)) ~nbits:count in
        let items = ref [] in
        for k = 0 to count - 1 do
          let it =
            if kinds.(k) then Rx_warning
            else begin
              let origin = Util.Codec.read_varint r in
              let value = Util.Codec.read_bytes_view r in
              Rx_rumor (origin, value)
            end
          in
          items := it :: !items
        done;
        List.rev !items)
      payload
  with
  | items -> Batch items
  | exception Util.Codec.Decode_error _ -> Garbage

(* Cost phases (see Analysis.Costs) for an honest run whose rumor values
   are all [len] bytes.  Gossip traffic depends on the sampled graph, so
   the spec is written over structural observables recorded by [run]
   under [pre]: [batches] (messages), [rounds], [rumors] (rumor items
   summed over all batches), [hdr_bytes] (Σ varint(item count)),
   [bitmap_bytes] (Σ ⌈count/8⌉ kind bitmaps) and [origin_bytes]
   (Σ varint(origin)).  The observables are item counts and id widths —
   never payload lengths — so the byte reconstruction below still checks
   the wire format of [encode_batch]. *)
let cost_phases ~pre ~len =
  let open Analysis.Costs in
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let v s = Var (jn s) in
  [
    exact ~label:(jn "batches") ~edge:"graph-neighbors"
      ~bits:
        (Cost_expr.bits
           (Add
              [
                v "hdr_bytes";
                v "bitmap_bytes";
                v "origin_bytes";
                Mul [ v "rumors"; Add [ varint_e len; len ] ];
              ]))
      ~messages:(v "batches") ~rounds:(v "rounds");
  ]

let cost_spec ~len =
  {
    Analysis.Costs.name = "gossip.run";
    phases = cost_phases ~pre:"" ~len;
    (* Exact when every party hears at least one rumor (connected graph,
       ≥ 1 honest source): a party that hears forwards to {e all} its
       graph neighbors, so its peer set is exactly its neighbor set and
       the max locality is the graph's max degree — recorded by [run] as
       the structural observable [graph_degmax]. *)
    max_locality = Some (Var "graph_degmax");
  }

let run ?pool ?(deadline = 1) ?obs net _rng _params ~graph ~sources ~corruption ~adv =
  if deadline < 1 then invalid_arg "Gossip.run: deadline must be >= 1";
  let n = Netsim.Net.n net in
  if Array.length graph <> n then invalid_arg "Gossip.run: graph arity";
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let heard : (int, bytes) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 8) in
  let forwarded = Array.init n (fun _ -> Hashtbl.create 8) in
  let warned = Array.make n false in
  let warning_sent = Array.make n false in
  let neighbors i = Util.Iset.to_sorted_list graph.(i) in
  (* A round's outgoing traffic is a list of (src, dst, payload) batches:
     everything [src] says to [dst] in the round rides in one encoded
     message.  Batches produced by one round are sent at the top of the
     next — a batch produced when the round cap strikes is dropped
     unsent, exactly as the pre-parallel queue-based implementation
     dropped its unflushed queue. *)
  let batch_up src items =
    (* Group (dst, item) records per dst, preserving first-enqueue dst
       order and per-dst item order. *)
    let per_dst : (int, item list ref) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (dst, item) ->
        match Hashtbl.find_opt per_dst dst with
        | Some items -> items := item :: !items
        | None ->
          Hashtbl.add per_dst dst (ref [ item ]);
          order := dst :: !order)
      items;
    List.map
      (fun dst -> (src, dst, encode_batch (List.rev !(Hashtbl.find per_dst dst))))
      (List.rev !order)
  in
  (* [forward_rumor] and [send_warning] write only party [me]'s slots of
     the state arrays and enqueue through the caller-supplied [enqueue] —
     shard-safe when run inside a [Net.run_round] compute phase. *)
  let forward_rumor enqueue me origin value =
    if not (Hashtbl.mem forwarded.(me) origin) then begin
      Hashtbl.replace forwarded.(me) origin ();
      List.iter
        (fun dst ->
          if dst <> me then begin
            let dropped =
              is_corrupt me
              && match adv.drop with Some f -> f ~me ~origin ~dst | None -> false
            in
            if not dropped then begin
              let v =
                if is_corrupt me then
                  match adv.equivocate with
                  | Some f -> ( match f ~me ~origin ~dst value with Some v -> v | None -> value)
                  | None -> value
                else value
              in
              enqueue dst (Rumor (origin, v))
            end
          end)
        (neighbors me)
    end
  in
  let send_warning enqueue me =
    if not warning_sent.(me) then begin
      warning_sent.(me) <- true;
      if (not (is_corrupt me)) || adv.spread_warning then
        List.iter (fun dst -> if dst <> me then enqueue dst Warning) (neighbors me)
    end
  in
  (* Round 0 (calling domain): sources inject their own rumors; corrupted
     parties may also forge rumors for arbitrary origins.  All round-0
     enqueues share one queue so that a party that is both a source and a
     forger still emits a single batch per destination. *)
  let round0_queue = ref [] in
  (* (src, dst, item), newest first *)
  List.iter
    (fun (origin, value) ->
      Hashtbl.replace heard.(origin) origin value;
      forward_rumor
        (fun dst item -> round0_queue := (origin, dst, item) :: !round0_queue)
        origin origin value)
    sources;
  for i = 0 to n - 1 do
    if is_corrupt i then
      match adv.forge with
      | Some f ->
        List.iter
          (fun (origin, value) ->
            (* Forged rumors bypass the "heard" bookkeeping: the forger
               just transmits them. *)
            List.iter
              (fun dst ->
                if dst <> i then
                  round0_queue := (i, dst, Rumor (origin, value)) :: !round0_queue)
              (neighbors i))
          (f ~me:i)
      | None -> ()
  done;
  let round0 =
    let msgs = List.rev !round0_queue in
    let per_pair : (int * int, item list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (src, dst, item) ->
        match Hashtbl.find_opt per_pair (src, dst) with
        | Some items -> items := item :: !items
        | None ->
          Hashtbl.add per_pair (src, dst) (ref [ item ]);
          order := (src, dst) :: !order)
      msgs;
    ref
      (List.map
         (fun (src, dst) ->
           (src, dst, encode_batch (List.rev !(Hashtbl.find per_pair (src, dst)))))
         (List.rev !order))
  in
  (* Gossip rounds until quiescence, bounded by (2n + 2) · deadline as a
     safety net.  The bound used to be a private loop counter; it now
     rides the shared [Net] watchdog via [with_round_limit] (below), so
     it is enforced — and, if ever overrun by a bug, reported via
     [Net.Livelock]'s registered printer — in one place.  The loop stops
     {e before} tripping the watchdog ([steps_remaining] guard): hitting
     the cap degrades gracefully to whatever each party heard, exactly
     the old local-counter behavior.  The deadline factor covers event
     transports, where one flood hop can take up to [span] ticks instead
     of one.

     Each iteration sends the previous round's batches, steps, then runs
     the {e active frontier}'s drain-and-forward steps — sharded across
     domains when a pool is supplied; batch contents and ordering are
     independent of the domain count.  Iterating [Net.active_parties]
     instead of [0 .. n-1] is exact, not an approximation: a party with
     an empty inbox drains nothing, mutates nothing, and batches nothing,
     so skipping it is unobservable — while at n = 10⁶ with degree ~40
     it is the difference between O(frontier) and O(n) work per round. *)
  let cap = ((2 * n) + 2) * deadline in
  let round = ref 0 in
  let batches = ref !round0 in
  (* Observable recording happens here on the calling domain (never inside
     the sharded compute closures): each outgoing batch is re-parsed for
     its structural item counts.  [parse] only extracts structure — the
     predicted byte count is reconstructed arithmetically by the cost
     spec, so a framing change in [encode_batch] still shows up as a
     mismatch against the measured accounting. *)
  let observe_batch =
    match obs with
    | None -> fun _ -> ()
    | Some o ->
      let add = Analysis.Costs.Obs.add o in
      fun payload ->
        add "batches" 1;
        (match parse payload with
        | Garbage -> ()
        | Batch items ->
          let count = List.length items in
          add "hdr_bytes" (Util.Codec.varint_size count);
          add "bitmap_bytes" ((count + 7) / 8);
          List.iter
            (function
              | Rx_warning -> ()
              | Rx_rumor (origin, v) ->
                add "rumors" 1;
                add "origin_bytes" (Util.Codec.varint_size origin);
                add "value_bytes"
                  (let len = v.Util.Codec.len in
                   Util.Codec.varint_size len + len))
            items)
  in
  (match obs with
  | None -> ()
  | Some o ->
    (* Pre-bind every counter so quiescent runs still have all spec
       variables defined. *)
    List.iter
      (fun k -> Analysis.Costs.Obs.add o k 0)
      [ "batches"; "hdr_bytes"; "bitmap_bytes"; "rumors"; "origin_bytes"; "value_bytes" ];
    (* Structural max degree of the routing graph (self-loops excluded —
       parties never message themselves).  Derived from the graph alone,
       never from wire traffic, so the spec's locality formula is a
       genuine structure-vs-accounting cross-check. *)
    let degmax = ref 0 in
    Array.iteri
      (fun i s ->
        let d = Util.Iset.cardinal s - (if Util.Iset.mem i s then 1 else 0) in
        if d > !degmax then degmax := d)
      graph;
    Analysis.Costs.Obs.set o "graph_degmax" !degmax);
  Netsim.Net.with_round_limit net ~extra:cap (fun () ->
  (* The loop also keeps spinning while messages are still in flight
     (event transports deliver a hop over several ticks): exiting with
     traffic en route would silently drop rumors.  On the synchronous
     transports [in_flight] is always 0 here, so the condition — and the
     iteration count — is exactly the historical one. *)
  while (!batches <> [] || Netsim.Net.in_flight net > 0)
        && Netsim.Net.steps_remaining net > 0 do
    incr round;
    List.iter
      (fun (src, dst, payload) ->
        observe_batch payload;
        Netsim.Net.send net ~src ~dst payload)
      !batches;
    Netsim.Net.step net;
    let produced =
      Netsim.Net.run_round ?pool net ~parties:(Netsim.Net.active_parties net) (fun p ->
          let me = Netsim.Net.Party.id p in
          let inbox = Netsim.Net.Party.recv p in
          let out = ref [] in
          let enqueue dst item = out := (dst, item) :: !out in
          let on_item = function
            | Rx_warning ->
              if not warned.(me) then begin
                warned.(me) <- true;
                send_warning enqueue me
              end
            | Rx_rumor (origin, v) ->
              if not warned.(me) then begin
                match Hashtbl.find_opt heard.(me) origin with
                | None ->
                  (* First hearing: copy out of the payload window, since
                     the stored rumor outlives this round's buffers. *)
                  let value = Util.Codec.view_to_bytes v in
                  Hashtbl.replace heard.(me) origin value;
                  forward_rumor enqueue me origin value
                | Some prev ->
                  if not (Util.Codec.view_equal_bytes v prev) then begin
                    (* Equivocation detected: warn and abort. *)
                    warned.(me) <- true;
                    send_warning enqueue me
                  end
              end
          in
          List.iter
            (fun (_, payload) ->
              match parse payload with
              | Batch items -> List.iter on_item items
              | Garbage ->
                if not warned.(me) then begin
                  warned.(me) <- true;
                  send_warning enqueue me
                end)
            inbox;
          batch_up me (List.rev !out))
    in
    batches := List.concat produced
  done);
  (match obs with
  | None -> ()
  | Some o -> Analysis.Costs.Obs.set o "rounds" !round);
  Array.init n (fun i ->
      if warned.(i) then Outcome.Abort (Outcome.Equivocation "conflicting rumor or warning")
      else
        Outcome.Output
          (Hashtbl.fold (fun origin value acc -> (origin, value) :: acc) heard.(i) []
          |> List.sort compare))
