type config = {
  params : Params.t;
  pke : (module Crypto.Pke.S);
  circuit : Circuit.t;
  input_width : int;
}

type adv = {
  committee : Committee.adv;
  encf : Enc_func.adv;
  pk_forward : (me:int -> dst:int -> bytes -> bytes) option;
  input_ct : (me:int -> dst:int -> bytes -> bytes) option;
  eq : Equality.adv;
  out_forward : (me:int -> dst:int -> bytes -> bytes) option;
}

let honest_adv =
  {
    committee = Committee.honest_adv;
    encf = Enc_func.honest_adv;
    pk_forward = None;
    input_ct = None;
    eq = Equality.honest_adv;
    out_forward = None;
  }

type phase_costs = {
  election_bits : int;
  keygen_bits : int;
  pk_forward_bits : int;
  input_bits : int;
  equality_bits : int;
  compute_bits : int;
  output_bits : int;
}

let expected_output config ~inputs =
  let bits = Circuit.pack_inputs ~width:config.input_width (Array.to_list inputs) in
  Bitpack.pack (Circuit.eval config.circuit bits)

(* A committee member's concatenated view of all parties' ciphertexts, with
   explicit missing markers, sorted by party id — the string m_c that the
   pairwise equality tests of step 5 compare. *)
let encode_ct_view view =
  Util.Codec.encode
    (fun w ->
      Util.Codec.write_list w (fun w (id, ct) ->
          Util.Codec.write_varint w id;
          Util.Codec.write_option w Util.Codec.write_bytes ct))
    view

(* Cost phases (see Analysis.Costs): the seven steps of Algorithm 3,
   composed from the sub-protocol specs.  Structural observables recorded
   by [run_metered ?obs] under [pre]: [members] (committee size K after
   election), [memb_idsum] (Σ varint_size over member ids), [pk_senders]
   and [out_senders] (members that actually fan out in steps 3/7),
   [input_sends] (ciphertext submissions of step 4), [ctv_some] (populated
   entries in the widest member ciphertext view of step 5), plus the
   sub-protocol observables under [pre].comm / [pre].gen / [pre].eq /
   [pre].comp.  Byte counts are reconstructed arithmetically from the
   encoders' framing; only fingerprint residues carry slack.  The keygen
   and compute {!Enc_func} runs are skipped when the committee is empty
   and the equality when K < 2 (guarded); the step-3/4/7 [Net.step] calls
   are unconditional, so those rounds are not. *)
let cost_phases ~pre ~pke ~depth ~input_width ~out_bits ~n ~lambda =
  let open Analysis.Costs in
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let v name = Var (jn name) in
  let k = v "members" in
  let idsum = v "memb_idsum" in
  let seed_bytes = Call ("seed_bytes", (fun a -> max 8 (a.(0) / 8)), [| lambda |]) in
  let seed_bits = Mul [ Const 8; seed_bytes ] in
  let pk_b = Cost_expr.pke_pk_bytes pke in
  let ct_b = Cost_expr.pke_ct_bytes pke ~plaintext_len:(Ceil_div (input_width, Const 8)) in
  let out_b = Ceil_div (out_bits, Const 8) in
  (* m_c of step 5: write_list over all n parties of (varint id ·
     write_option write_bytes ct); every entry costs its id varint plus
     one option byte, populated ones add the ciphertext with its length
     varint. *)
  let eqv_b =
    Add
      [
        varint_e n;
        sum_varint_below n;
        n;
        Mul [ v "ctv_some"; Add [ varint_e ct_b; ct_b ] ];
      ]
  in
  let fan label senders payload_b =
    exact ~label:(jn label) ~edge:"member->all"
      ~bits:(Cost_expr.bits (Mul [ senders; Sub (n, Const 1); payload_b ]))
      ~messages:(Mul [ senders; Sub (n, Const 1) ])
      ~rounds:(Const 1)
  in
  Committee.cost_phases ~pre:(jn "comm") ~n ~lambda
  @ guard (Ge (k, Const 1))
      (Enc_func.cost_phases ~pre:(jn "gen") ~k ~idsum ~depth:(Const 1) ~inbits:seed_bits
         ~outbytes:(Const 1) ~recipients:(Const 0) ~n ~lambda)
  @ [
      fan "pk_forward" (v "pk_senders") pk_b;
      exact ~label:(jn "input") ~edge:"party->member"
        ~bits:(Cost_expr.bits (Mul [ v "input_sends"; ct_b ]))
        ~messages:(v "input_sends") ~rounds:(Const 1);
    ]
  @ guard (Ge (k, Const 2))
      (Equality.cost_phases_pairwise ~pre:(jn "eq") ~k ~maxlen:eqv_b ~n ~lambda)
  @ guard (Ge (k, Const 1))
      (Enc_func.cost_phases ~pre:(jn "comp") ~k ~idsum ~depth ~inbits:seed_bits
         ~outbytes:out_b ~recipients:k ~n ~lambda)
  @ [ fan "output" (v "out_senders") out_b ]

let cost_spec ~pke ~depth ~input_width ~out_bits ~n ~lambda =
  {
    Analysis.Costs.name = "mpc_abort.run";
    phases = cost_phases ~pre:"" ~pke ~depth ~input_width ~out_bits ~n ~lambda;
    max_locality = None;
  }

let run_metered ?pool ?deadline ?obs net rng config ~corruption ~inputs ~adv =
  let module P = (val config.pke : Crypto.Pke.S) in
  let params = config.params in
  let n = Netsim.Net.n net in
  if Array.length inputs <> n then invalid_arg "Mpc_abort.run: wrong input count";
  if n * config.input_width <> config.circuit.Circuit.num_inputs then
    invalid_arg "Mpc_abort.run: circuit arity mismatch";
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let ob key value =
    match obs with Some o -> Analysis.Costs.Obs.set o key value | None -> ()
  in
  let sub_obs name = Option.map (fun o -> Analysis.Costs.Obs.scoped o name) obs in
  let mark_phase () = Netsim.Net.snapshot net in
  let phase_bits before =
    (Netsim.Net.diff_snapshot ~before ~after:(Netsim.Net.snapshot net)).Netsim.Net.snap_bits
  in

  let abort = Array.make n None in
  let set_abort i r = if abort.(i) = None then abort.(i) <- Some r in
  let active i = abort.(i) = None in

  (* ---- Step 1: committee election ---- *)
  let s0 = mark_phase () in
  let views = Committee.run ?pool ?deadline ?obs:(sub_obs "comm") net rng params ~corruption ~adv:adv.committee in
  Array.iteri
    (fun i o -> match o with Outcome.Abort r -> set_abort i r | Outcome.Output _ -> ())
    views;
  let my_view i =
    match views.(i) with Outcome.Output v -> Some v | Outcome.Abort _ -> None
  in
  let members =
    List.filter
      (fun i ->
        active i && match my_view i with Some v -> v.Committee.elected | None -> false)
      (List.init n (fun i -> i))
  in
  ob "members" (List.length members);
  ob "memb_idsum" (List.fold_left (fun acc i -> acc + Util.Codec.varint_size i) 0 members);
  let election_bits = phase_bits s0 in

  (* ---- Step 2: F_Gen — threshold key generation inside the committee ---- *)
  let s1 = mark_phase () in
  let keypair = ref None in
  let gen_results =
    if members = [] then []
    else
      Enc_func.run ?pool ?deadline net rng params ~participants:members
        ~private_input:(fun i ->
          Crypto.Kdf.expand
            ~key:(Util.Prng.bytes rng 32)
            ~info:(Printf.sprintf "rgen/%d" i)
            (max 8 (params.Params.lambda / 8)))
        ~depth:1
        ~eval:(fun member_inputs ->
          (* r := combination of all contributions; (pk, sk) := Gen(1^λ; r).
             The secret key exists only inside this closure — the ideal
             threshold functionality. *)
          let seed =
            List.fold_left
              (fun acc (_, r) -> Crypto.Sha256.digest (Bytes.cat acc r))
              (Bytes.of_string "fgen-seed") member_inputs
          in
          let pk, sk = P.keygen_seeded seed in
          keypair := Some (pk, sk);
          (* The joint public key is locally derivable from the round-1
             broadcast (TFHE key combination) — a public output. *)
          { Enc_func.public_output = P.public_key_bytes pk; private_outputs = [] })
        ~corruption ~adv:adv.encf
  in
  let member_pk = Hashtbl.create 8 in
  List.iter
    (fun (i, out) ->
      match out with
      | Outcome.Output (pkb, _) -> Hashtbl.replace member_pk i pkb
      | Outcome.Abort r -> set_abort i r)
    gen_results;
  let keygen_bits = phase_bits s1 in

  (* ---- Step 3: pk forwarding to the whole network ---- *)
  (* Both halves of the phase are rng-free per-party loops, so they shard
     across domains: the member fan-out (O(|C|·n) sends) and the per-party
     conflict check each run through {!Netsim.Net.run_round}; abort
     bookkeeping is applied on the calling domain afterwards. *)
  let s2 = mark_phase () in
  ob "pk_senders"
    (List.length (List.filter (fun c -> active c && Hashtbl.mem member_pk c) members));
  let (_ : unit list) =
    Netsim.Net.run_round ?pool net ~parties:members (fun p ->
        let c = Netsim.Net.Party.id p in
        if active c then
          match Hashtbl.find_opt member_pk c with
          | Some pkb ->
            for dst = 0 to n - 1 do
              if dst <> c then begin
                let payload =
                  match adv.pk_forward with
                  | Some f when is_corrupt c -> f ~me:c ~dst pkb
                  | _ -> pkb
                in
                Netsim.Net.Party.send p ~dst payload
              end
            done
          | None -> ())
  in
  Netsim.Net.step_until_quiet ?deadline net;
  let party_pk = Array.make n None in
  let pk_verdicts =
    Netsim.Net.run_round ?pool net
      ~parties:(List.init n (fun i -> i))
      (fun p ->
        let i = Netsim.Net.Party.id p in
        let copies = List.map snd (Netsim.Net.Party.recv p) in
        let copies =
          match Hashtbl.find_opt member_pk i with Some own -> own :: copies | None -> copies
        in
        match copies with
        | [] -> `No_key
        | first :: rest ->
          if List.for_all (Bytes.equal first) rest then `Pk first else `Conflict)
  in
  List.iteri
    (fun i verdict ->
      match verdict with
      | `No_key -> if active i then set_abort i (Outcome.Missing "no public key received")
      | `Pk first -> party_pk.(i) <- Some first
      | `Conflict ->
        if active i then set_abort i (Outcome.Equivocation "conflicting public keys"))
    pk_verdicts;
  let pk_forward_bits = phase_bits s2 in

  (* ---- Step 4: input encryption and submission ---- *)
  let s3 = mark_phase () in
  let input_bytes i = Bitpack.int_to_bytes inputs.(i) ~width:config.input_width in
  (* Committee members encrypt their own input locally (no transmission). *)
  let own_ct = Hashtbl.create 8 in
  let input_sends = ref 0 in
  for i = 0 to n - 1 do
    if active i then
      match (party_pk.(i), my_view i) with
      | Some pkb, Some v -> (
        match P.public_key_of_bytes pkb with
        | None -> set_abort i (Outcome.Malformed "public key")
        | Some pk ->
          let ct = P.encrypt rng pk (input_bytes i) in
          if List.mem i v.Committee.committee then Hashtbl.replace own_ct i ct;
          List.iter
            (fun c ->
              if c <> i then begin
                let payload =
                  match adv.input_ct with
                  | Some f when is_corrupt i -> f ~me:i ~dst:c ct
                  | _ -> ct
                in
                incr input_sends;
                Netsim.Net.send net ~src:i ~dst:c payload
              end)
            v.Committee.committee)
      | _ -> ()
  done;
  ob "input_sends" !input_sends;
  Netsim.Net.step_until_quiet ?deadline net;
  (* Encryption above consumes the shared [rng] and stays sequential; the
     members' ciphertext-view assembly below is pure per-inbox work and
     shards across domains. *)
  let member_cts = Hashtbl.create 8 in
  let ct_members = List.filter active members in
  let ct_views =
    Netsim.Net.run_round ?pool net ~parties:ct_members (fun p ->
        let c = Netsim.Net.Party.id p in
        let msgs = Netsim.Net.Party.recv p in
        let tbl = Hashtbl.create n in
        List.iter
          (fun (src, ct) ->
            match Hashtbl.find_opt tbl src with
            | None -> Hashtbl.replace tbl src (Some ct)
            | Some (Some prev) when Bytes.equal prev ct -> ()
            | Some _ -> Hashtbl.replace tbl src None)
          msgs;
        (match Hashtbl.find_opt own_ct c with
        | Some ct -> Hashtbl.replace tbl c (Some ct)
        | None -> ());
        List.init n (fun i ->
            (i, match Hashtbl.find_opt tbl i with Some (Some ct) -> Some ct | _ -> None)))
  in
  List.iter2 (fun c view -> Hashtbl.replace member_cts c view) ct_members ct_views;
  let input_phase_bits = phase_bits s3 in

  (* ---- Step 5: pairwise equality on ciphertext views ---- *)
  let s4 = mark_phase () in
  let eq_members = List.filter active members in
  ob "ctv_some"
    (List.fold_left
       (fun acc c ->
         let view = Hashtbl.find member_cts c in
         max acc (List.length (List.filter (fun (_, ct) -> ct <> None) view)))
       0 eq_members);
  let verdicts =
    if List.length eq_members >= 2 then
      Equality.pairwise ?pool ?deadline net rng params ~members:eq_members
        ~value:(fun c -> encode_ct_view (Hashtbl.find member_cts c))
        ~corruption ~adv:adv.eq
    else List.map (fun c -> (c, true)) eq_members
  in
  List.iter
    (fun (c, ok) ->
      if (not ok) && not (is_corrupt c) then
        set_abort c (Outcome.Equality_failed "ciphertext views differ"))
    verdicts;
  let equality_bits = phase_bits s4 in

  (* ---- Step 6: F_Comp — compute the output inside the committee ---- *)
  let s5 = mark_phase () in
  let comp_members = List.filter active members in
  let comp_results =
    if comp_members = [] then []
    else
      Enc_func.run ?pool ?deadline net rng params ~participants:comp_members
        ~private_input:(fun c ->
          Crypto.Kdf.expand
            ~key:(Bytes.of_string (Printf.sprintf "skshare/%d" c))
            ~info:"share" (max 8 (params.Params.lambda / 8)))
        ~depth:(Circuit.depth config.circuit)
        ~eval:(fun _ ->
          (* Trusted evaluation on the canonical ciphertext view: decrypt
             with the functionality's secret key and evaluate f.  All honest
             member views passed the equality test, so the lowest-id honest
             member's view is the committee's common view. *)
          let canonical =
            let honest_members =
              List.filter (fun c -> Netsim.Corruption.is_honest corruption c) comp_members
            in
            match (honest_members, comp_members) with
            | c :: _, _ -> Hashtbl.find member_cts c
            | [], c :: _ -> Hashtbl.find member_cts c
            | [], [] -> []
          in
          let sk = match !keypair with Some (_, sk) -> sk | None -> assert false in
          let bit_inputs =
            List.concat_map
              (fun (i, ct) ->
                (* A missing or undecryptable ciphertext becomes the default
                   input 0 — the ideal-world input substitution semantics. *)
                let value =
                  match ct with
                  | Some ct -> (
                    match P.decrypt sk ct with
                    | Some pt -> Bitpack.bytes_to_int pt ~width:config.input_width
                    | None -> 0)
                  | None -> if is_corrupt i then 0 else inputs.(i)
                in
                List.init config.input_width (fun k -> (value lsr k) land 1 = 1))
              canonical
          in
          let out = Circuit.eval config.circuit (Array.of_list bit_inputs) in
          let packed = Bitpack.pack out in
          (* Out is a decrypted value: every member receives it as a private
             output, paying the partial-decryption traffic of Theorem 9. *)
          {
            Enc_func.public_output = Bytes.empty;
            private_outputs = List.map (fun c -> (c, packed)) comp_members;
          })
        ~corruption ~adv:adv.encf
  in
  let member_out = Hashtbl.create 8 in
  List.iter
    (fun (c, out) ->
      match out with
      | Outcome.Output (_, o) -> Hashtbl.replace member_out c o
      | Outcome.Abort r -> set_abort c r)
    comp_results;
  let compute_bits = phase_bits s5 in

  (* ---- Step 7: output forwarding ---- *)
  (* Same shape as step 3: rng-free fan-out plus per-party conflict check,
     both sharded; the abort verdicts merge on the calling domain. *)
  let s6 = mark_phase () in
  ob "out_senders"
    (List.length (List.filter (fun c -> active c && Hashtbl.mem member_out c) members));
  let (_ : unit list) =
    Netsim.Net.run_round ?pool net ~parties:members (fun p ->
        let c = Netsim.Net.Party.id p in
        if active c then
          match Hashtbl.find_opt member_out c with
          | Some out ->
            for dst = 0 to n - 1 do
              if dst <> c then begin
                let payload =
                  match adv.out_forward with
                  | Some f when is_corrupt c -> f ~me:c ~dst out
                  | _ -> out
                in
                Netsim.Net.Party.send p ~dst payload
              end
            done
          | None -> ())
  in
  Netsim.Net.step_until_quiet ?deadline net;
  let final = Array.make n (Outcome.Abort (Outcome.Missing "no output received")) in
  let classified =
    Netsim.Net.run_round ?pool net
      ~parties:(List.init n (fun i -> i))
      (fun p ->
        let i = Netsim.Net.Party.id p in
        let copies = List.map snd (Netsim.Net.Party.recv p) in
        let copies =
          match Hashtbl.find_opt member_out i with Some own -> own :: copies | None -> copies
        in
        match copies with
        | [] -> Outcome.Abort (Outcome.Missing "no output received")
        | first :: rest ->
          if List.for_all (Bytes.equal first) rest then Outcome.Output first
          else Outcome.Abort (Outcome.Equivocation "conflicting outputs"))
  in
  List.iteri
    (fun i out ->
      match abort.(i) with
      | Some r -> final.(i) <- Outcome.Abort r
      | None -> final.(i) <- out)
    classified;
  let output_bits = phase_bits s6 in
  ( final,
    {
      election_bits;
      keygen_bits;
      pk_forward_bits;
      input_bits = input_phase_bits;
      equality_bits;
      compute_bits;
      output_bits;
    } )

let run ?pool ?deadline ?obs net rng config ~corruption ~inputs ~adv =
  fst (run_metered ?pool ?deadline ?obs net rng config ~corruption ~inputs ~adv)
