type adv = {
  extra_targets : (me:int -> int list) option;
  drop_notify : (me:int -> dst:int -> bool) option;
}

let honest_adv = { extra_targets = None; drop_notify = None }

(* One shared notification payload: the simulator treats payloads as
   immutable, so every honest notification can ride the same byte string
   instead of allocating n·d fresh one-byte buffers. *)
let notify_payload = Bytes.make 1 '\001'

let outcome_of_inbox ~bound ~out_hops i inbox =
  let incoming = List.sort_uniq compare (List.map fst inbox) in
  if List.length incoming > bound then
    Outcome.Abort (Outcome.Flooded "incoming degree above 2d")
  else
    Outcome.Output
      (Array.fold_left
         (fun s v -> Util.Iset.add v s)
         (Util.Iset.of_list incoming) out_hops.(i))

(* Cost spec (see Analysis.Costs): fully closed-form — every party sends
   one 1-byte notification to each of its min(d, n−1) distinct sampled
   hops, in one round.  Under [honest_adv] this holds for corrupted
   parties too (the adversary hooks are inert), so the E7 sweeps audit
   exactly even with random corruption. *)
let cost_spec ~n ~h ~lambda ~alpha =
  let open Analysis.Costs in
  let deff = Cost_expr.sparse_degree ~n ~h ~lambda ~alpha in
  let sends = Mul [ n; deff ] in
  {
    name = "sparse_network.run";
    phases =
      [
        exact ~label:"notify" ~edge:"party->hops" ~bits:(Cost_expr.bits sends)
          ~messages:sends ~rounds:(Const 1);
      ];
    (* The hop graph is sampled, so the locality has no closed form in
       the public parameters alone; the exact value is the max union
       degree |out(i) ∪ in(i)| of the sampled graph, recorded by [run]
       as the structural observable [union_degmax] (computed from the
       hop arrays, never from wire traffic — a genuine cross-check).
       Exact under honest_adv. *)
    max_locality = Some (Var "union_degmax");
  }

(* Structural max union degree of the sampled hop graph: each party's
   peers are its own out-hops plus every party that sampled it.  Binary
   search keeps this O(n·d·log d) — the hop arrays are sorted by
   construction (sorted sample, order-preserving shift). *)
let union_degmax out_hops =
  let n = Array.length out_hops in
  let mem_sorted a v =
    let lo = ref 0 and hi = ref (Array.length a) in
    while !hi - !lo > 0 do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) < v then lo := mid + 1 else hi := mid
    done;
    !lo < Array.length a && a.(!lo) = v
  in
  let extra_in = Array.make n 0 in
  Array.iteri
    (fun j hops ->
      Array.iter
        (fun dst ->
          if not (mem_sorted out_hops.(dst) j) then extra_in.(dst) <- extra_in.(dst) + 1)
        hops)
    out_hops;
  let best = ref 0 in
  for i = 0 to n - 1 do
    let d = Array.length out_hops.(i) + extra_in.(i) in
    if d > !best then best := d
  done;
  !best

let run_iter ?pool ?obs net rng params ~corruption ~adv ~f =
  let n = Netsim.Net.n net in
  let d = Params.sparse_degree params in
  let bound = Params.degree_bound params in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  (* Step 1: sample outgoing hops (distinct, excluding self).  Int arrays,
     not lists: at n = 10⁶ the three cons-cell words per hop alone cost
     ~1 GB where the flat arrays cost a third of that. *)
  let out_hops =
    Array.init n (fun i ->
        let sample =
          Util.Prng.sample_without_replacement rng ~n:(n - 1) ~k:(min d (n - 1))
        in
        (* Map [0, n-2] onto [0, n-1] \ {i}. *)
        let a = Array.of_list sample in
        for k = 0 to Array.length a - 1 do
          if a.(k) >= i then a.(k) <- a.(k) + 1
        done;
        a)
  in
  (match obs with
  | Some o -> Analysis.Costs.Obs.set o "union_degmax" (union_degmax out_hops)
  | None -> ());
  (* Step 2: notification.  Corrupted parties may add extra targets (to
     flood a victim) or silently skip some notifications. *)
  for i = 0 to n - 1 do
    if is_corrupt i then begin
      let extra = match adv.extra_targets with Some f -> f ~me:i | None -> [] in
      let targets = List.sort_uniq compare (extra @ Array.to_list out_hops.(i)) in
      List.iter
        (fun dst ->
          if dst <> i then begin
            let dropped =
              match adv.drop_notify with Some f -> f ~me:i ~dst | None -> false
            in
            if not dropped then Netsim.Net.send net ~src:i ~dst notify_payload
          end)
        targets
    end
    else
      (* Honest hops exclude self by construction and arrive sorted. *)
      Array.iter
        (fun dst -> Netsim.Net.send net ~src:i ~dst notify_payload)
        out_hops.(i)
  done;
  Netsim.Net.step net;
  (* Step 3: collect incoming notifications; abort on a flooded inbox.
     (The paper's step 3 text garbles the inequality; per the proof of
     Claim 20 the abort condition is |N_in| exceeding twice the expected
     degree.)  Outcomes stream through [f] in ascending party order; the
     sequential path never holds more than one neighbor set live, which
     is what keeps the n = 10⁶ runs inside memory (n retained [Iset]s of
     degree d are gigabytes). *)
  (match pool with
  | None ->
    for i = 0 to n - 1 do
      f i (outcome_of_inbox ~bound ~out_hops i (Netsim.Net.recv net ~dst:i))
    done
  | Some _ ->
    let outs =
      Netsim.Net.run_round ?pool net
        ~parties:(List.init n (fun i -> i))
        (fun p ->
          let i = Netsim.Net.Party.id p in
          outcome_of_inbox ~bound ~out_hops i (Netsim.Net.Party.recv p))
    in
    List.iteri f outs)

let run ?pool ?obs net rng params ~corruption ~adv =
  let outs = Array.make (Netsim.Net.n net) (Outcome.Output Util.Iset.empty) in
  run_iter ?pool ?obs net rng params ~corruption ~adv ~f:(fun i o -> outs.(i) <- o);
  outs

let honest_subgraph_connected outs corruption =
  let honest_active =
    List.filter
      (fun i -> Outcome.is_output outs.(i))
      (Netsim.Corruption.honest_list corruption)
  in
  match honest_active with
  | [] -> true
  | start :: _ ->
    let neighbor_set i =
      match outs.(i) with Outcome.Output s -> s | Outcome.Abort _ -> Util.Iset.empty
    in
    let honest_set = Util.Iset.of_list honest_active in
    let visited = Hashtbl.create 64 in
    let rec bfs = function
      | [] -> ()
      | i :: rest ->
        if Hashtbl.mem visited i then bfs rest
        else begin
          Hashtbl.replace visited i ();
          let next =
            Util.Iset.fold
              (fun j acc ->
                if Util.Iset.mem j honest_set && not (Hashtbl.mem visited j) then j :: acc
                else acc)
              (neighbor_set i) []
          in
          bfs (next @ rest)
        end
    in
    bfs [ start ];
    List.for_all (Hashtbl.mem visited) honest_active

let max_degree outs =
  Array.fold_left
    (fun acc o ->
      match o with
      | Outcome.Output s -> max acc (Util.Iset.cardinal s)
      | Outcome.Abort _ -> acc)
    0 outs
