(** Algorithm 7 — [LocalCommitteeElect]: committee election over the
    sparse routing network, for the Theorem 4 tradeoff protocol.

    Steps: establish the routing graph (Algorithm 5); flip coins with the
    {e larger} bias [p = min(1, α·log n / √h)] (the committee must be big
    enough for the covering claim of Algorithm 8); announce self-election
    via {!Gossip} instead of direct messages (locality!); abort on [≥ 2pn]
    claims; finally the claimed members equality-check their views over
    direct channels (committee-internal channels are within the locality
    budget, Claim 24).

    Guarantees (Claim 22): w.h.p. at least [α·√h·log n / 2] honest members
    and consistent honest views; [|C| ≤ 2α·n·log n/√h]; communication
    [Õ(n³/h^{3/2})]. *)

type adv = {
  sparse : Sparse_network.adv;
  gossip : Gossip.adv;
  false_claim : (me:int -> bool) option;
  eq : Equality.adv;
}

val honest_adv : adv

type result = {
  views : Committee.view Outcome.t array;
  graph : Util.Iset.t array;
      (** the routing graph (empty neighbor sets for aborted parties) *)
}

(** [?pool] shards the claim-gossip rounds across domains
    ([Gossip.run]'s rng-free halves); the election coins and the routing
    network stay on the calling domain for stream fidelity. *)
val run :
  ?pool:Util.Pool.t ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  result

(** Cost phases of {!run} (see {!Analysis.Costs}): sparse network (closed
    form) + claim gossip (observables under [pre].gossip) + view check
    (observables under [pre].vc).  Rounds: 1 + gossip rounds + 2. *)
val cost_phases :
  pre:string ->
  n:Analysis.Costs.expr ->
  h:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  alpha:Analysis.Costs.expr ->
  Analysis.Costs.phase list

val cost_spec :
  n:Analysis.Costs.expr ->
  h:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  alpha:Analysis.Costs.expr ->
  Analysis.Costs.spec
