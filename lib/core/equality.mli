(** Algorithm 1 — [Equality_λ], the succinct equality test.

    Two parties holding strings [m₁, m₂] detect inequality with probability
    [≥ 1 - n^{-λ}] while exchanging only [O(λ log n)] bits: P₁ samples
    random primes and sends the residues of [m₁]; P₂ compares against the
    residues of [m₂] and answers with one bit.

    {!pairwise} runs the test between every pair of a set of parties in two
    network rounds (all fingerprints, then all verdict bits) — this is the
    verification step used by All-to-All Broadcast (§2.1), by CommitteeElect
    (Algorithm 2 step 4), and by the MPC protocols (Algorithm 3 step 5,
    Algorithm 8 step 7).

    Domain-safety: {!pairwise} memoizes [value i] and each member's
    residues, but both caches live inside the call — no state survives it
    or is shared between concurrent runs, so parallel jobs that own their
    network and RNG ({!Netsim.Net} contract) may run this freely. *)

(** How a corrupted party misbehaves in equality tests.  [tamper_fp] lets a
    corrupted sender substitute the fingerprint it sends; [lie_verdict]
    lets a corrupted responder flip its answer bit. *)
type adv = {
  tamper_fp : (me:int -> dst:int -> Crypto.Fingerprint.fp -> Crypto.Fingerprint.fp) option;
  lie_verdict : (me:int -> dst:int -> bool -> bool) option;
}

val honest_adv : adv

(** [run net rng params ~p1 ~p2 ~m1 ~m2] — the two-party protocol of
    Algorithm 1 between parties [p1] (sender of the fingerprint) and [p2].
    Returns the flags output by [(p1, p2)]. Used directly in tests; the
    protocols use {!pairwise}.

    [?deadline] (here and on {!pairwise}) is the per-phase round timeout
    forwarded to [Net.step_until_quiet]: on the synchronous transports
    any value behaves identically to the default lockstep step, while on
    an event transport each protocol phase waits up to [deadline] ticks
    for in-flight traffic; a message still missing then surfaces as the
    protocol's own failed-check path ([false] verdicts here), never as a
    livelock. *)
val run :
  ?deadline:int ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  p1:int ->
  p2:int ->
  m1:bytes ->
  m2:bytes ->
  bool * bool

(** [pairwise ?pool net rng params ~members ~value ~corruption ~adv] —
    every unordered pair [{i, j}] of [members] runs [Equality_λ] on their
    values (the lower id sends the fingerprint).  Returns, for each member
    in the order given, [true] iff all tests it participated in accepted.

    {b Randomness.}  The CRS draws a pool of [2t] random primes from
    [rng] (after all values are fixed); each pair then selects its own
    [t]-subset through a keyed substream [Prng.derive rng ~key:(i·n + j)].
    Each selected prime is a uniformly random prime sampled after the
    values were fixed, so Lemma 5's per-pair union bound is unchanged,
    while members still evaluate Horner once per pool prime rather than
    once per pair.

    {b Parallelism.}  With [~pool], the per-member residue tables and the
    ~|members|²/2 per-pair jobs (fingerprint build/encode, residue
    comparison) are dispatched through [Util.Pool.map_jobs]; because every
    pair's randomness comes from its keyed substream — a pure function of
    the parent stream position and the key — and sends are committed back
    in pair order on the calling domain, transcripts and verdicts are
    byte-identical at any jobs count.

    Cost: [O(|members|² · λ · log n)] bits in two rounds. *)
val pairwise :
  ?pool:Util.Pool.t ->
  ?deadline:int ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  members:int list ->
  value:(int -> bytes) ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  (int * bool) list

(** {1 Cost specs} (see {!Analysis.Costs})

    Exact message/round counts; bits carry the declared fingerprint-residue
    slack.  Expression arguments: [n]/[lambda] the security parameters,
    [len] the (max) compared value length in bytes. *)

(** Closed-form spec for {!run}: one fingerprint, one verdict byte, two
    rounds. *)
val cost_spec_run : n:Analysis.Costs.expr -> lambda:Analysis.Costs.expr -> len:Analysis.Costs.expr -> Analysis.Costs.spec

(** Phases of {!pairwise} over [k] members comparing values of (max)
    [maxlen] bytes — C(k,2) fingerprints then C(k,2) verdict bytes, one
    round each (both steps run even for [k < 2]).  [pre] prefixes phase
    labels for embedding into pipeline specs. *)
val cost_phases_pairwise :
  pre:string ->
  k:Analysis.Costs.expr ->
  maxlen:Analysis.Costs.expr ->
  n:Analysis.Costs.expr ->
  lambda:Analysis.Costs.expr ->
  Analysis.Costs.phase list
