type result = {
  public_output : bytes;
  private_outputs : (int * bytes) list;
}

type adv = {
  sb : All_to_all.adv;
  substitute_input : (me:int -> bytes -> bytes) option;
  tamper_partial : (me:int -> dst:int -> bool) option;
  drop_partial : (me:int -> dst:int -> bool) option;
}

let honest_adv =
  {
    sb = All_to_all.honest_adv;
    substitute_input = None;
    tamper_partial = None;
    drop_partial = None;
  }

(* Round-1 message: the MKFHE public key + encrypted input + NIZK, modeled
   as pseudorandom filler of the exact Theorem 9 size, domain-separated per
   sender so distinct parties' messages differ (as real ciphertexts would). *)
let round1_message params ~depth ~me ~input =
  let input_bits = 8 * Bytes.length input in
  let len = Cost_model.round1_bytes ~lambda:params.Params.lambda ~depth ~input_bits in
  let tag =
    Printf.sprintf "round1/%d/%s" me (Crypto.Sha256.to_hex (Crypto.Sha256.digest input))
  in
  Cost_model.filler ~tag ~len

(* Partial decryption carrier: 1 validity byte + poly(lambda, D) bytes per
   output bit.  Tag 0 = honest (NIZK verifies), anything else = detected. *)
let partial_dec_message params ~depth ~me ~dst ~out_bytes ~tampered =
  let per_block = Cost_model.partial_dec_bytes ~lambda:params.Params.lambda ~depth in
  let body_len = per_block * Cost_model.blocks (8 * max 1 out_bytes) in
  let tag = Printf.sprintf "pdec/%d/%d" me dst in
  let body = Cost_model.filler ~tag ~len:body_len in
  let head = Bytes.make 1 (if tampered then '\001' else '\000') in
  Bytes.cat head body

(* Cost phases (see Analysis.Costs): the round-1 simultaneous broadcast
   is a fingerprinted All_to_all run over [k] members carrying
   [Cost_model.round1_bytes]-sized payloads, then every participant sends
   a partial decryption to each of the [recipients] parties holding a
   nonempty private output (one step), and the final collection drains
   inboxes without stepping.  All phase parameters are closed-form given
   the participant set and the output layout; only the embedded
   fingerprint residues carry slack. *)
let cost_phases ~pre ~k ~idsum ~depth ~inbits ~outbytes ~recipients ~n ~lambda =
  let open Analysis.Costs in
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let r1 = Cost_expr.round1_bytes ~lambda ~depth ~input_bits:inbits in
  let pdec = Cost_expr.pdec_payload ~lambda ~depth ~out_bytes:outbytes in
  let pdec_msgs = Mul [ recipients; Sub (k, Const 1) ] in
  All_to_all.cost_phases ~variant:All_to_all.Fingerprinted ~pre:(jn "sb") ~k ~idsum ~len:r1
    ~n ~lambda
  @ [
      exact ~label:(jn "pdec") ~edge:"member->recipient"
        ~bits:(Cost_expr.bits (Mul [ pdec_msgs; pdec ]))
        ~messages:pdec_msgs ~rounds:(Const 1);
    ]

let cost_spec ~k ~idsum ~depth ~inbits ~outbytes ~recipients ~n ~lambda =
  {
    Analysis.Costs.name = "enc_func.run";
    phases = cost_phases ~pre:"" ~k ~idsum ~depth ~inbits ~outbytes ~recipients ~n ~lambda;
    max_locality = None;
  }

let run ?pool ?deadline net rng params ~participants ~private_input ~depth ~eval ~corruption ~adv =
  let members = List.sort_uniq compare participants in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  (* Evaluate each party's input exactly once: input thunks may consume
     fresh randomness, and the same value must be used consistently in the
     broadcast, the views, and the ideal evaluation. *)
  let input_cache = Hashtbl.create 16 in
  let effective_input i =
    match Hashtbl.find_opt input_cache i with
    | Some x -> x
    | None ->
      let x = private_input i in
      let x =
        match adv.substitute_input with
        | Some f when is_corrupt i -> f ~me:i x
        | _ -> x
      in
      Hashtbl.replace input_cache i x;
      x
  in
  (* Phase 1: simultaneous broadcast of the round-1 messages. *)
  let sb_results =
    All_to_all.run ?pool ?deadline net rng params ~variant:All_to_all.Fingerprinted
      ~participants:members
      ~input:(fun i -> round1_message params ~depth ~me:i ~input:(effective_input i))
      ~corruption ~adv:adv.sb
  in
  let sb_ok = Hashtbl.create 16 in
  List.iter (fun (i, out) -> Hashtbl.replace sb_ok i (Outcome.is_output out)) sb_results;
  (* The ideal functionality evaluates on the effective inputs. *)
  let result = eval (List.map (fun i -> (i, effective_input i)) members) in
  List.iter
    (fun (recipient, _) ->
      if not (List.mem recipient members) then
        invalid_arg "Enc_func.run: eval produced output for a non-participant")
    result.private_outputs;
  let private_for i =
    match List.assoc_opt i result.private_outputs with Some b -> b | None -> Bytes.empty
  in
  (* Phase 2: partial decryptions toward every recipient of a private
     output.  Rng-free (filler-based carriers), so the per-sender fan-out
     shards through run_round; commit order (ascending sender id) matches
     the previous sequential List.iter over the sorted member list. *)
  ignore
    (Netsim.Net.run_round ?pool net ~parties:members (fun p ->
         let sender = Netsim.Net.Party.id p in
         if Hashtbl.find sb_ok sender then
           List.iter
             (fun recipient ->
               if recipient <> sender then begin
                 let out = private_for recipient in
                 if Bytes.length out > 0 then begin
                   let dropped =
                     is_corrupt sender
                     &&
                     match adv.drop_partial with
                     | Some f -> f ~me:sender ~dst:recipient
                     | None -> false
                   in
                   if not dropped then begin
                     let tampered =
                       is_corrupt sender
                       &&
                       match adv.tamper_partial with
                       | Some f -> f ~me:sender ~dst:recipient
                       | None -> false
                     in
                     let msg =
                       partial_dec_message params ~depth ~me:sender ~dst:recipient
                         ~out_bytes:(Bytes.length out) ~tampered
                     in
                     Netsim.Net.Party.send p ~dst:recipient msg
                   end
                 end
               end)
             members)
      : unit list);
  Netsim.Net.step_until_quiet ?deadline net;
  (* Phase 3: recipients verify the proofs and assemble their outputs.
     Pure per-recipient collection (each drains only its own inbox), so it
     shards too; run_round returns results in member-list order, exactly
     the List.map it replaces. *)
  Netsim.Net.run_round ?pool net ~parties:members (fun p ->
      let i = Netsim.Net.Party.id p in
      if not (Hashtbl.find sb_ok i) then
        (i, Outcome.Abort (Outcome.Upstream "round-1 broadcast"))
      else begin
        let out = private_for i in
        if Bytes.length out = 0 then (i, Outcome.Output (result.public_output, Bytes.empty))
        else begin
          let msgs = Netsim.Net.Party.recv p in
          let senders = List.sort_uniq compare (List.map fst msgs) in
          let expected = List.filter (fun j -> j <> i) members in
          if List.exists (fun j -> not (List.mem j senders)) expected then
            (i, Outcome.Abort (Outcome.Missing "partial decryption"))
          else begin
            let all_valid =
              List.for_all
                (fun (_, payload) -> Bytes.length payload > 0 && Bytes.get payload 0 = '\000')
                msgs
            in
            if all_valid then (i, Outcome.Output (result.public_output, out))
            else (i, Outcome.Abort (Outcome.Bad_proof "partial decryption NIZK"))
          end
        end
      end)
