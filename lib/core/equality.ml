type adv = {
  tamper_fp : (me:int -> dst:int -> Crypto.Fingerprint.fp -> Crypto.Fingerprint.fp) option;
  lie_verdict : (me:int -> dst:int -> bool -> bool) option;
}

let honest_adv = { tamper_fp = None; lie_verdict = None }

let encode_fp fp = Util.Codec.encode Crypto.Fingerprint.encode fp

let decode_fp b =
  match Util.Codec.decode Crypto.Fingerprint.decode b with
  | fp -> Some fp
  | exception Util.Codec.Decode_error _ -> None

let run net rng params ~p1 ~p2 ~m1 ~m2 =
  let t = Params.fingerprint_t params ~msg_len:(max (Bytes.length m1) (Bytes.length m2)) in
  let fp = Crypto.Fingerprint.make rng ~t m1 in
  Netsim.Net.send net ~src:p1 ~dst:p2 (encode_fp fp);
  Netsim.Net.step net;
  let verdict =
    match Netsim.Net.recv_from net ~dst:p2 ~src:p1 with
    | [ b ] -> ( match decode_fp b with Some fp -> Crypto.Fingerprint.check fp m2 | None -> false)
    | _ -> false
  in
  Netsim.Net.send net ~src:p2 ~dst:p1 (Bytes.make 1 (if verdict then '\001' else '\000'));
  Netsim.Net.step net;
  let p1_flag =
    match Netsim.Net.recv_from net ~dst:p1 ~src:p2 with
    | [ b ] when Bytes.length b = 1 -> Bytes.get b 0 = '\001'
    | _ -> false
  in
  (p1_flag, verdict)

(* Run [body pos] for every [pos] in [0, n): chunked across the pool when
   one is supplied, plain loop otherwise.  [body] must be pure per
   position (it may write to per-position slots of caller-owned arrays —
   the Netsim.Net domain-safety discipline), so chunking is invisible. *)
let par_positions pool ~n body =
  match pool with
  | Some p when n > 1 ->
    let nchunks = max 1 (min n ((Util.Pool.num_domains p + 1) * 8)) in
    let chunks = Array.init nchunks (fun c -> (c * n / nchunks, (c + 1) * n / nchunks)) in
    let (_ : unit array) =
      Util.Pool.map_jobs p chunks (fun (lo, hi) ->
          for pos = lo to hi - 1 do
            body pos
          done)
    in
    ()
  | _ ->
    for pos = 0 to n - 1 do
      body pos
    done

let pairwise ?pool net rng params ~members ~value ~corruption ~adv =
  let members_arr = Array.of_list members in
  (* Callers often encode large views in [value]; evaluate once per member
     (it is consulted again for sizing and for tamper-recovery checks).
     The [max_len] fold below touches every member, so by the time
     parallel jobs read the cache it is complete and never mutated. *)
  let value =
    let cache = Hashtbl.create 16 in
    fun i ->
      match Hashtbl.find_opt cache i with
      | Some v -> v
      | None ->
        let v = value i in
        Hashtbl.replace cache i v;
        v
  in
  let k = Array.length members_arr in
  let net_n = Netsim.Net.n net in
  let ok = Hashtbl.create k in
  List.iter (fun m -> Hashtbl.replace ok m true) members;
  let fail m = Hashtbl.replace ok m false in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  (* Fingerprint length: members may hold different-length values; size the
     test for the longest so soundness covers all pairs. *)
  let max_len = List.fold_left (fun acc m -> max acc (Bytes.length (value m))) 1 members in
  let t = Params.fingerprint_t params ~msg_len:max_len in
  (* Prime pool: the CRS samples 2t random primes once, after all values
     are fixed; each pair's keyed substream (below) then selects its own
     t-subset.  Every selected prime is a uniformly random 29-bit prime
     sampled after the values were fixed, so the per-pair union bound of
     Lemma 5 is unchanged; selecting from a shared pool (rather than
     sampling per pair) is what lets each member run Horner once per pool
     prime instead of once per pair — Θ(k) less work on the hot path. *)
  let pool_size = 2 * t in
  let crs_primes = Crypto.Fingerprint.sample_primes rng pool_size in
  (* Per-member residue tables over the whole pool: rng-free, so the
     Horner evaluations (the CPU-heavy half at large values) can shard. *)
  let member_residues = Array.make k [||] in
  par_positions pool ~n:k (fun idx ->
      let v = value members_arr.(idx) in
      member_residues.(idx) <- Array.map (Crypto.Fingerprint.residue v) crs_primes);
  (* The pair's substream is keyed by the ordered pair of party ids — a
     pure function of the parent stream position and the key, so jobs can
     derive it in any scheduling order and produce identical transcripts. *)
  let pair_selection i j =
    let child = Util.Prng.derive rng ~key:((i * net_n) + j) in
    Array.of_list (Util.Prng.sample_without_replacement child ~n:pool_size ~k:t)
  in
  (* Enumerate pairs in round-1 send order (sender-major, exactly the
     order the sequential loop used); [posmat] recovers a pair's position
     for the round-2 (receiver-major) commit. *)
  let pairs = Array.make (k * (k - 1) / 2) 0 in
  let posmat = Array.make (k * k) (-1) in
  let npairs = ref 0 in
  Array.iteri
    (fun idx i ->
      Array.iteri
        (fun jdx j ->
          if i < j then begin
            pairs.(!npairs) <- (idx * k) + jdx;
            posmat.((idx * k) + jdx) <- !npairs;
            incr npairs
          end)
        members_arr)
    members_arr;
  let npairs = !npairs in
  let decode_pos pos =
    let code = pairs.(pos) in
    (code / k, code mod k)
  in
  (* Round 1: each pair's fingerprint, built in parallel, committed in
     pair order.  Bits on the wire are a pure function of (seed, key), so
     the transcript is identical at any jobs count. *)
  let payloads = Array.make npairs Bytes.empty in
  par_positions pool ~n:npairs (fun pos ->
      let idx, jdx = decode_pos pos in
      let i = members_arr.(idx) and j = members_arr.(jdx) in
      let sel = pair_selection i j in
      let fp =
        { Crypto.Fingerprint.primes = Array.map (fun s -> crs_primes.(s)) sel;
          residues = Array.map (fun s -> member_residues.(idx).(s)) sel }
      in
      let fp =
        match adv.tamper_fp with
        | Some f when is_corrupt i -> f ~me:i ~dst:j fp
        | _ -> fp
      in
      payloads.(pos) <- encode_fp fp);
  for pos = 0 to npairs - 1 do
    let idx, jdx = decode_pos pos in
    Netsim.Net.send net ~src:members_arr.(idx) ~dst:members_arr.(jdx) payloads.(pos)
  done;
  Netsim.Net.step net;
  (* Round 2: receivers check and answer one bit.  Draining the inboxes
     touches shared network state, so it stays sequential; the residue
     comparisons (and tamper-recovery Horner re-checks) parallelize. *)
  let incoming = Array.make npairs [] in
  for pos = 0 to npairs - 1 do
    let idx, jdx = decode_pos pos in
    incoming.(pos) <-
      Netsim.Net.recv_from net ~dst:members_arr.(jdx) ~src:members_arr.(idx)
  done;
  let verdicts = Array.make npairs false in
  let reported = Array.make npairs false in
  par_positions pool ~n:npairs (fun pos ->
      let idx, jdx = decode_pos pos in
      let i = members_arr.(idx) and j = members_arr.(jdx) in
      let verdict =
        match incoming.(pos) with
        | [ b ] -> (
          match decode_fp b with
          | Some fp -> (
            (* The expected primes: re-derive the pair's selection.  Same
               primes: compare residues directly; different primes (a
               tampered message): fall back to recompute. *)
            let sel = pair_selection i j in
            let expected = Array.map (fun s -> crs_primes.(s)) sel in
            if fp.Crypto.Fingerprint.primes = expected then
              fp.Crypto.Fingerprint.residues
              = Array.map (fun s -> member_residues.(jdx).(s)) sel
            else Crypto.Fingerprint.check fp (value j))
          | None -> false)
        | _ -> false
      in
      verdicts.(pos) <- verdict;
      reported.(pos) <-
        (match adv.lie_verdict with
        | Some f when is_corrupt j -> f ~me:j ~dst:i verdict
        | _ -> verdict));
  (* Commit in receiver-major order — the order the sequential loop sent
     verdict bits in — and apply the verdict bookkeeping on the way. *)
  Array.iteri
    (fun jdx j ->
      Array.iteri
        (fun idx i ->
          if i < j then begin
            let pos = posmat.((idx * k) + jdx) in
            if not verdicts.(pos) then fail j;
            Netsim.Net.send net ~src:j ~dst:i
              (Bytes.make 1 (if reported.(pos) then '\001' else '\000'))
          end)
        members_arr)
    members_arr;
  Netsim.Net.step net;
  Array.iter
    (fun i ->
      Array.iter
        (fun j ->
          if i < j then begin
            let accepted =
              match Netsim.Net.recv_from net ~dst:i ~src:j with
              | [ b ] when Bytes.length b = 1 -> Bytes.get b 0 = '\001'
              | _ -> false
            in
            if not accepted then fail i
          end)
        members_arr)
    members_arr;
  List.map (fun m -> (m, Hashtbl.find ok m)) members
