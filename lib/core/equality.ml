type adv = {
  tamper_fp : (me:int -> dst:int -> Crypto.Fingerprint.fp -> Crypto.Fingerprint.fp) option;
  lie_verdict : (me:int -> dst:int -> bool -> bool) option;
}

let honest_adv = { tamper_fp = None; lie_verdict = None }

let encode_fp fp = Util.Codec.encode Crypto.Fingerprint.encode fp

let decode_fp b =
  match Util.Codec.decode Crypto.Fingerprint.decode b with
  | fp -> Some fp
  | exception Util.Codec.Decode_error _ -> None

let run net rng params ~p1 ~p2 ~m1 ~m2 =
  let t = Params.fingerprint_t params ~msg_len:(max (Bytes.length m1) (Bytes.length m2)) in
  let fp = Crypto.Fingerprint.make rng ~t m1 in
  Netsim.Net.send net ~src:p1 ~dst:p2 (encode_fp fp);
  Netsim.Net.step net;
  let verdict =
    match Netsim.Net.recv_from net ~dst:p2 ~src:p1 with
    | [ b ] -> ( match decode_fp b with Some fp -> Crypto.Fingerprint.check fp m2 | None -> false)
    | _ -> false
  in
  Netsim.Net.send net ~src:p2 ~dst:p1 (Bytes.make 1 (if verdict then '\001' else '\000'));
  Netsim.Net.step net;
  let p1_flag =
    match Netsim.Net.recv_from net ~dst:p1 ~src:p2 with
    | [ b ] when Bytes.length b = 1 -> Bytes.get b 0 = '\001'
    | _ -> false
  in
  (p1_flag, verdict)

let pairwise net rng params ~members ~value ~corruption ~adv =
  let members_arr = Array.of_list members in
  (* Callers often encode large views in [value]; evaluate once per member
     (it is consulted again for sizing and for tamper-recovery checks). *)
  let value =
    let cache = Hashtbl.create 16 in
    fun i ->
      match Hashtbl.find_opt cache i with
      | Some v -> v
      | None ->
        let v = value i in
        Hashtbl.replace cache i v;
        v
  in
  let k = Array.length members_arr in
  let ok = Hashtbl.create k in
  List.iter (fun m -> Hashtbl.replace ok m true) members;
  let fail m = Hashtbl.replace ok m false in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  (* Fingerprint length: members may hold different-length values; size the
     test for the longest so soundness covers all pairs. *)
  let max_len = List.fold_left (fun acc m -> max acc (Bytes.length (value m))) 1 members in
  let t = Params.fingerprint_t params ~msg_len:max_len in
  (* One shared prime set per phase, sampled after all values are fixed —
     the CRS provides this shared randomness in the paper's model.  Each
     member then evaluates its own residues exactly once, instead of
     re-running Horner per pair; the bits on the wire are unchanged and the
     union-bound soundness analysis is identical. *)
  let primes = Crypto.Fingerprint.sample_primes rng t in
  let my_fp =
    Array.map
      (fun i ->
        let v = value i in
        { Crypto.Fingerprint.primes;
          residues = Array.map (Crypto.Fingerprint.residue v) primes })
      members_arr
  in
  let fp_of i =
    let rec find idx = if members_arr.(idx) = i then my_fp.(idx) else find (idx + 1) in
    find 0
  in
  Array.iteri
    (fun idx i ->
      let base_fp = my_fp.(idx) in
      Array.iter
        (fun j ->
          if i < j then begin
            let fp =
              match adv.tamper_fp with
              | Some f when is_corrupt i -> f ~me:i ~dst:j base_fp
              | _ -> base_fp
            in
            Netsim.Net.send net ~src:i ~dst:j (encode_fp fp)
          end)
        members_arr)
    members_arr;
  Netsim.Net.step net;
  (* Round 2: receivers check and answer one bit. *)
  Array.iter
    (fun j ->
      Array.iter
        (fun i ->
          if i < j then begin
            let verdict =
              match Netsim.Net.recv_from net ~dst:j ~src:i with
              | [ b ] -> (
                match decode_fp b with
                | Some fp -> (
                  (* Same primes: compare residues directly; different
                     primes (a tampered message): fall back to recompute. *)
                  let mine = fp_of j in
                  if fp.Crypto.Fingerprint.primes = mine.Crypto.Fingerprint.primes then
                    fp.Crypto.Fingerprint.residues = mine.Crypto.Fingerprint.residues
                  else Crypto.Fingerprint.check fp (value j))
                | None -> false)
              | _ -> false
            in
            if not verdict then fail j;
            let reported =
              match adv.lie_verdict with
              | Some f when is_corrupt j -> f ~me:j ~dst:i verdict
              | _ -> verdict
            in
            Netsim.Net.send net ~src:j ~dst:i
              (Bytes.make 1 (if reported then '\001' else '\000'))
          end)
        members_arr)
    members_arr;
  Netsim.Net.step net;
  Array.iter
    (fun i ->
      Array.iter
        (fun j ->
          if i < j then begin
            let accepted =
              match Netsim.Net.recv_from net ~dst:i ~src:j with
              | [ b ] when Bytes.length b = 1 -> Bytes.get b 0 = '\001'
              | _ -> false
            in
            if not accepted then fail i
          end)
        members_arr)
    members_arr;
  List.map (fun m -> (m, Hashtbl.find ok m)) members
