type adv = {
  tamper_fp : (me:int -> dst:int -> Crypto.Fingerprint.fp -> Crypto.Fingerprint.fp) option;
  lie_verdict : (me:int -> dst:int -> bool -> bool) option;
}

let honest_adv = { tamper_fp = None; lie_verdict = None }

(* ---- cost specs (see Analysis.Costs) ---------------------------------- *)

let cost_spec_run ~n ~lambda ~len =
  let open Analysis.Costs in
  let t = Cost_expr.fp_t ~lambda ~n ~len in
  {
    name = "equality.run";
    phases =
      [
        bounded ~label:"fingerprint" ~edge:"p1->p2"
          ~bits:(Cost_expr.bits (Cost_expr.fp_bytes_hi t))
          ~slack:(Cost_expr.bits (Cost_expr.fp_slack_bytes t))
          ~reason:Cost_expr.fp_reason ~messages:(Const 1) ~rounds:(Const 1);
        exact ~label:"verdict" ~edge:"p2->p1" ~bits:(Const 8) ~messages:(Const 1)
          ~rounds:(Const 1);
      ];
    max_locality = None;
  }

(* Both steps of [pairwise] run even when there are fewer than 2 members
   (the send loops are just empty), so rounds is unconditionally 2;
   callers that skip the whole call below a threshold wrap these in
   [Costs.guard]. *)
let cost_phases_pairwise ~pre ~k ~maxlen ~n ~lambda =
  let open Analysis.Costs in
  let jn s = if pre = "" then s else pre ^ "." ^ s in
  let t = Cost_expr.fp_t ~lambda ~n ~len:maxlen in
  let pairs = Choose2 k in
  [
    bounded ~label:(jn "fingerprints") ~edge:"member->member"
      ~bits:(Cost_expr.bits (Mul [ pairs; Cost_expr.fp_bytes_hi t ]))
      ~slack:(Cost_expr.bits (Mul [ pairs; Cost_expr.fp_slack_bytes t ]))
      ~reason:Cost_expr.fp_reason ~messages:pairs ~rounds:(Const 1);
    exact ~label:(jn "verdicts") ~edge:"member->member" ~bits:(Cost_expr.bits pairs)
      ~messages:pairs ~rounds:(Const 1);
  ]

let encode_fp fp = Util.Codec.encode Crypto.Fingerprint.encode fp

let decode_fp b =
  match Util.Codec.decode Crypto.Fingerprint.decode b with
  | fp -> Some fp
  | exception Util.Codec.Decode_error _ -> None

let run ?deadline net rng params ~p1 ~p2 ~m1 ~m2 =
  let t = Params.fingerprint_t params ~msg_len:(max (Bytes.length m1) (Bytes.length m2)) in
  let fp = Crypto.Fingerprint.make rng ~t m1 in
  Netsim.Net.send net ~src:p1 ~dst:p2 (encode_fp fp);
  Netsim.Net.step_until_quiet ?deadline net;
  let verdict =
    match Netsim.Net.recv_from net ~dst:p2 ~src:p1 with
    | [ b ] -> ( match decode_fp b with Some fp -> Crypto.Fingerprint.check fp m2 | None -> false)
    | _ -> false
  in
  Netsim.Net.send net ~src:p2 ~dst:p1 (Bytes.make 1 (if verdict then '\001' else '\000'));
  Netsim.Net.step_until_quiet ?deadline net;
  let p1_flag =
    match Netsim.Net.recv_from net ~dst:p1 ~src:p2 with
    | [ b ] when Bytes.length b = 1 -> Bytes.get b 0 = '\001'
    | _ -> false
  in
  (p1_flag, verdict)

(* Run [body st pos] for every [pos] in [0, n): chunked across the pool
   when one is supplied, plain loop otherwise.  [init ()] builds one
   per-chunk scratch state (e.g. a reusable [Codec.writer]) owned by
   exactly one domain for the chunk's lifetime — the Util.Pool scratch
   discipline.  [body] must otherwise be pure per position (it may write
   to per-position slots of caller-owned arrays — the Netsim.Net
   domain-safety discipline), so chunking is invisible. *)
let par_positions pool ~n ~init body =
  match pool with
  | Some p when n > 1 ->
    let nchunks = max 1 (min n ((Util.Pool.num_domains p + 1) * 8)) in
    let chunks = Array.init nchunks (fun c -> (c * n / nchunks, (c + 1) * n / nchunks)) in
    let (_ : unit array) =
      Util.Pool.map_jobs p chunks (fun (lo, hi) ->
          let st = init () in
          for pos = lo to hi - 1 do
            body st pos
          done)
    in
    ()
  | _ ->
    let st = init () in
    for pos = 0 to n - 1 do
      body st pos
    done

let no_scratch () = ()

let pairwise ?pool ?deadline net rng params ~members ~value ~corruption ~adv =
  let members_arr = Array.of_list members in
  (* Callers often encode large views in [value]; evaluate once per member
     (it is consulted again for sizing and for tamper-recovery checks).
     The [max_len] fold below touches every member, so by the time
     parallel jobs read the cache it is complete and never mutated. *)
  let value =
    let cache = Hashtbl.create 16 in
    fun i ->
      match Hashtbl.find_opt cache i with
      | Some v -> v
      | None ->
        let v = value i in
        Hashtbl.replace cache i v;
        v
  in
  let k = Array.length members_arr in
  let net_n = Netsim.Net.n net in
  let ok = Hashtbl.create k in
  List.iter (fun m -> Hashtbl.replace ok m true) members;
  let fail m = Hashtbl.replace ok m false in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  (* Fingerprint length: members may hold different-length values; size the
     test for the longest so soundness covers all pairs. *)
  let max_len = List.fold_left (fun acc m -> max acc (Bytes.length (value m))) 1 members in
  let t = Params.fingerprint_t params ~msg_len:max_len in
  (* Prime pool: the CRS samples 2t random primes once, after all values
     are fixed; each pair's keyed substream (below) then selects its own
     t-subset.  Every selected prime is a uniformly random 29-bit prime
     sampled after the values were fixed, so the per-pair union bound of
     Lemma 5 is unchanged; selecting from a shared pool (rather than
     sampling per pair) is what lets each member run Horner once per pool
     prime instead of once per pair — Θ(k) less work on the hot path. *)
  let pool_size = 2 * t in
  let crs_primes = Crypto.Fingerprint.sample_primes rng pool_size in
  (* Per-member residue tables over the whole pool: rng-free, so the
     Horner evaluations (the CPU-heavy half at large values) can shard. *)
  let member_residues = Array.make k [||] in
  par_positions pool ~n:k ~init:no_scratch (fun () idx ->
      let v = value members_arr.(idx) in
      member_residues.(idx) <- Crypto.Fingerprint.residues_many v crs_primes);
  (* Enumerate pairs in round-1 send order (sender-major, exactly the
     order the sequential loop used); [posmat] recovers a pair's position
     for the round-2 (receiver-major) commit. *)
  let pairs = Array.make (k * (k - 1) / 2) 0 in
  let posmat = Array.make (k * k) (-1) in
  let npairs = ref 0 in
  Array.iteri
    (fun idx i ->
      Array.iteri
        (fun jdx j ->
          if i < j then begin
            pairs.(!npairs) <- (idx * k) + jdx;
            posmat.((idx * k) + jdx) <- !npairs;
            incr npairs
          end)
        members_arr)
    members_arr;
  let npairs = !npairs in
  (* Round 1: each pair's fingerprint, built in parallel, committed in
     pair order.  Bits on the wire are a pure function of (seed, key), so
     the transcript is identical at any jobs count. *)
  let payloads = Array.make npairs Bytes.empty in
  (* Selections are remembered across the two rounds: [Prng.derive] reads
     the parent without advancing it and nothing draws from [rng] between
     the rounds, so the round-2 recompute was a pure duplicate — caching
     it halves the per-pair derive+shuffle work with a bit-identical
     transcript.  Every selected index is < pool_size = 2t, which fits a
     byte whenever pool_size <= 256 (any non-degenerate message length),
     so the cache is one packed byte per selection — Θ(k²t) bytes, not
     boxed-int words; page faults on fresh heap are the dominant kernel
     cost at k = 2048.  In the t > 128 corner the cache is skipped and
     round 2 re-derives the pair's substream — a pure function of
     (seed, key), so the transcript is unchanged either way.  Pool jobs
     write disjoint slices (the Util.Pool discipline). *)
  let sel_store = if pool_size <= 256 then Some (Bytes.create (npairs * t)) else None in
  (* The pair's substream is keyed by the ordered pair of party ids — a
     pure function of the parent stream position and the key, so jobs can
     derive it in any scheduling order and produce identical transcripts.
     [sample_into] writes the pair's sorted t-subset into the chunk's
     reusable [sel] scratch: the same draws as the list-returning
     sampler, none of its per-pair array, list and polymorphic-sort
     churn. *)
  let pair_scratch () =
    (Util.Codec.writer (), Array.make pool_size 0, Array.make t 0)
  in
  let select_pair ~perm ~sel i j =
    let child = Util.Prng.derive rng ~key:((i * net_n) + j) in
    Util.Prng.sample_into child ~n:pool_size ~k:t ~scratch:perm ~dst:sel ~pos:0
  in
  par_positions pool ~n:npairs ~init:pair_scratch
    (fun (scratch, perm, sel) pos ->
      let code = pairs.(pos) in
      let idx = code / k and jdx = code mod k in
      let i = members_arr.(idx) and j = members_arr.(jdx) in
      select_pair ~perm ~sel i j;
      (match sel_store with
      | Some store ->
        let off = pos * t in
        for s = 0 to t - 1 do
          Bytes.unsafe_set store (off + s) (Char.unsafe_chr sel.(s))
        done
      | None -> ());
      match adv.tamper_fp with
      | Some f when is_corrupt i ->
        (* Tamper path: materialize the record so the adversary can mangle
           it, then encode through the chunk's scratch writer. *)
        let fp =
          { Crypto.Fingerprint.primes = Array.map (fun s -> crs_primes.(s)) sel;
            residues = Array.map (fun s -> member_residues.(idx).(s)) sel
          }
        in
        let fp = f ~me:i ~dst:j fp in
        payloads.(pos) <- Util.Codec.encode_into scratch Crypto.Fingerprint.encode fp
      | _ ->
        (* Honest fast path: stream [Fingerprint.encode]'s exact wire
           layout (varint array of primes, varint array of residues)
           straight from the CRS tables — no fp record, no per-selection
           arrays, no per-pair Buffer.  Byte-identical to the record
           path, so the transcript (and the bits accounting derived from
           it) cannot move. *)
        Util.Codec.reset scratch;
        let res = member_residues.(idx) in
        Util.Codec.write_varint scratch t;
        for s = 0 to t - 1 do
          Util.Codec.write_varint scratch crs_primes.(sel.(s))
        done;
        Util.Codec.write_varint scratch t;
        for s = 0 to t - 1 do
          Util.Codec.write_varint scratch res.(sel.(s))
        done;
        payloads.(pos) <- Util.Codec.contents scratch);
  for pos = 0 to npairs - 1 do
    let code = pairs.(pos) in
    Netsim.Net.send net ~src:members_arr.(code / k) ~dst:members_arr.(code mod k)
      payloads.(pos)
  done;
  Netsim.Net.step_until_quiet ?deadline net;
  (* Round 2: receivers check and answer one bit.  Draining the inboxes
     touches shared network state, so it stays sequential; the residue
     comparisons (and tamper-recovery Horner re-checks) parallelize. *)
  let incoming = Array.make npairs None in
  for pos = 0 to npairs - 1 do
    let code = pairs.(pos) in
    incoming.(pos) <-
      Netsim.Net.recv_one net ~dst:members_arr.(code mod k) ~src:members_arr.(code / k)
  done;
  let verdicts = Array.make npairs false in
  let reported = Array.make npairs false in
  (* Honest round-2 fast path: walk the incoming payload once, comparing
     each decoded varint against the expected value — no fp record, no
     residue arrays.  Any deviation (wrong length, wrong prime or residue,
     trailing bytes, malformed varint) abandons the walk and re-runs the
     full decode-and-check slow path, so adversarial semantics are
     untouched; an accepted walk is exactly the condition under which the
     slow path would answer [true]. *)
  let verify_fast b sel res =
    let r = Util.Codec.reader b in
    match
      Util.Codec.read_varint r = t
      && (let ok = ref true in
          let s = ref 0 in
          while !ok && !s < t do
            if Util.Codec.read_varint r <> crs_primes.(sel.(!s)) then ok := false;
            incr s
          done;
          !ok)
      && Util.Codec.read_varint r = t
      && (let ok = ref true in
          let s = ref 0 in
          while !ok && !s < t do
            if Util.Codec.read_varint r <> res.(sel.(!s)) then ok := false;
            incr s
          done;
          !ok)
      && Util.Codec.at_end r
    with
    | ok -> ok
    | exception Util.Codec.Decode_error _ -> false
  in
  (* Refill [sel] with pair [pos]'s selection: unpacked from the byte
     store, or re-derived in the corner where it wasn't cached. *)
  let reload_selection ~perm ~sel pos i j =
    match sel_store with
    | Some store ->
      let off = pos * t in
      for s = 0 to t - 1 do
        sel.(s) <- Char.code (Bytes.unsafe_get store (off + s))
      done
    | None -> select_pair ~perm ~sel i j
  in
  par_positions pool ~n:npairs ~init:pair_scratch
    (fun (_, perm, sel) pos ->
      let code = pairs.(pos) in
      let jdx = code mod k in
      let i = members_arr.(code / k) and j = members_arr.(jdx) in
      reload_selection ~perm ~sel pos i j;
      let verdict =
        match incoming.(pos) with
        | Some b ->
          let res = member_residues.(jdx) in
          verify_fast b sel res
          || (match decode_fp b with
             | Some fp -> (
               (* The expected primes: the pair's cached selection.  Same
                  primes: compare residues directly; different primes (a
                  tampered message): fall back to recompute. *)
               let expected = Array.map (fun s -> crs_primes.(s)) sel in
               if fp.Crypto.Fingerprint.primes = expected then
                 fp.Crypto.Fingerprint.residues = Array.map (fun s -> res.(s)) sel
               else Crypto.Fingerprint.check fp (value j))
             | None -> false)
        | None -> false
      in
      verdicts.(pos) <- verdict;
      reported.(pos) <-
        (match adv.lie_verdict with
        | Some f when is_corrupt j -> f ~me:j ~dst:i verdict
        | _ -> verdict));
  (* Commit in receiver-major order — the order the sequential loop sent
     verdict bits in — and apply the verdict bookkeeping on the way.
     The two 1-byte verdict payloads are shared across all Θ(k²) sends:
     delivered payloads are read-only by convention, so aliasing one
     bytes value from every mailbox is safe and saves an allocation per
     pair. *)
  let verdict_yes = Bytes.make 1 '\001' and verdict_no = Bytes.make 1 '\000' in
  Array.iteri
    (fun jdx j ->
      Array.iteri
        (fun idx i ->
          if i < j then begin
            let pos = posmat.((idx * k) + jdx) in
            if not verdicts.(pos) then fail j;
            Netsim.Net.send net ~src:j ~dst:i
              (if reported.(pos) then verdict_yes else verdict_no)
          end)
        members_arr)
    members_arr;
  Netsim.Net.step_until_quiet ?deadline net;
  Array.iter
    (fun i ->
      Array.iter
        (fun j ->
          if i < j then begin
            let accepted =
              match Netsim.Net.recv_one net ~dst:i ~src:j with
              | Some b when Bytes.length b = 1 -> Bytes.get b 0 = '\001'
              | _ -> false
            in
            if not accepted then fail i
          end)
        members_arr)
    members_arr;
  List.map (fun m -> (m, Hashtbl.find ok m)) members
