(** Algorithm 6 — [Gossip], responsible gossip over the sparse routing
    graph: the locality-friendly implementation of simultaneous broadcast.

    Sources inject [(origin, value)] rumors; every party forwards each
    origin's rumor to its neighbors {b at most once}.  If a party ever
    hears two {e different} values for the same origin (an equivocation —
    possible because there is no PKI and anyone can forge "S said x"), it
    floods a warning and aborts; warnings are themselves forwarded once
    and poison every honest party they reach (the "responsible gossip"
    rule of §2.3).

    Guarantees (Claim 21): with the honest subgraph connected, either some
    honest party aborts or all honest parties agree on every origin's
    value; total communication [O(k · d·n · ℓ)] for [k] sources over a
    degree-[d] graph. *)

type adv = {
  equivocate : (me:int -> origin:int -> dst:int -> bytes -> bytes option) option;
      (** substitute the value a corrupted party forwards for [origin]
          toward [dst]; [None] = forward faithfully *)
  forge : (me:int -> (int * bytes) list) option;
      (** rumors a corrupted party invents out of thin air, as
          [(origin, value)] *)
  drop : (me:int -> origin:int -> dst:int -> bool) option;
      (** suppress forwarding of [origin]'s rumor to [dst] *)
  spread_warning : bool;
      (** whether corrupted parties forward warnings (honest ones always do) *)
}

val honest_adv : adv

(** Per-party result: the origin→value map it gossiped together (sorted
    association list), or an abort.

    With [~pool], every gossip round's drain-and-forward step runs
    through {!Netsim.Net.run_round}: parties are sharded across domains,
    each mutating only its own slots of the rumor/warning state, and the
    produced batches are merged in ascending party id — so traffic and
    outcomes are bit-identical at any domain count.  Adversary callbacks
    must be pure (all of {!Attacks}' are). *)
val run :
  ?pool:Util.Pool.t ->
  ?deadline:int ->
  ?obs:Analysis.Costs.Obs.t ->
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  graph:Util.Iset.t array ->
  sources:(int * bytes) list ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  (int * bytes) list Outcome.t array

(** Cost phases of {!run} for honest traffic with uniform [len]-byte rumor
    values, over the structural observables [run] records into [?obs]
    under prefix [pre] ([batches], [rounds], [rumors], [hdr_bytes],
    [bitmap_bytes], [origin_bytes]); see {!Analysis.Costs}.  The byte
    count is reconstructed arithmetically from [encode_batch]'s framing,
    so it is exact — no slack. *)
val cost_phases : pre:string -> len:Analysis.Costs.expr -> Analysis.Costs.phase list

val cost_spec : len:Analysis.Costs.expr -> Analysis.Costs.spec
