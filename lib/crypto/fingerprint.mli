(** Succinct string fingerprints — the substrate of the paper's
    [Equality_λ] test (Algorithm 1 / Lemma 5).

    The paper samples one random prime [p ∈ [n^λ]] and exchanges [m mod p].
    To avoid arbitrary-precision arithmetic we instead sample [t]
    independent 29-bit primes and send the [t] residues: a single random
    29-bit prime is wrong on a fixed pair [m₁ ≠ m₂] with probability at most
    [log₂(max|m|·256) / π(2²⁹) ≲ |m|·2⁻²⁴] ... concretely, the number of
    prime divisors of [m₁ - m₂] below 2²⁹ is at most [8·|m|/29], while there
    are more than 2²⁴ such primes, so each prime fails with probability
    [< |m|/2²¹] and [t] independent primes fail with probability
    [< (|m|/2²¹)^t].  {!residues_needed} picks [t] to reach the paper's
    [n^{-λ}] target.  The communicated size is [t·(4+4)] bytes =
    [O(λ log n)] bits, exactly the paper's cost. *)

type fp = { primes : int array; residues : int array }

(** [residues_needed ~lambda ~n ~msg_len] — the number [t] of independent
    primes needed so the failure probability is at most [n^-lambda].
    For [msg_len ≥ 29/8·2²⁴] (~61 MB) the per-prime divisor bound
    degenerates (≥ 1); it is clamped at 1/2 so [t] stays finite and
    monotone — [ceil (lambda·log₂ n)] primes at the clamp — instead of
    the division collapsing to a meaningless value. *)
val residues_needed : lambda:int -> n:int -> msg_len:int -> int

(** [sample_primes rng t] draws [t] random 29-bit primes. *)
val sample_primes : Util.Prng.t -> int -> int array

(** [residue msg p] is the big-endian integer value of [msg] mod [p]
    (Horner; [p < 2³¹]).  Reference implementation — one full sweep of
    [msg] per call; batch work goes through {!residues_many}. *)
val residue : bytes -> int -> int

(** Block size of the {!residues_many} kernel in bytes (a multiple of 4;
    exposed so tests can pin lengths that straddle block boundaries). *)
val block_bytes : int

(** [residues_many ?pool msg primes] = [Array.map (residue msg) primes],
    computed in a single pass over [msg] per {!block_bytes}-sized block:
    each block is loaded once and folded into {e all} accumulators
    word-by-word (the division chains of distinct primes are independent,
    so the CPU overlaps their latencies), then combined across blocks by
    Horner with the precomputed per-prime constant [2^(8·block_bytes) mod
    p].  Bit-identical to the per-prime loop for any block decomposition.

    [?pool] shards the {e prime} dimension across domains when the
    [t × |msg|] work is large enough to amortize dispatch; each job owns a
    disjoint slice of the result array (the [Util.Pool] discipline), so
    the output is independent of the domain count.  Calls issued from
    inside a pool job run inline (see {!Util.Pool.map_jobs}). *)
val residues_many : ?pool:Util.Pool.t -> bytes -> int array -> int array

(** [make ?pool rng ~t msg] samples primes and computes the fingerprint
    (residues via {!residues_many}). *)
val make : ?pool:Util.Pool.t -> Util.Prng.t -> t:int -> bytes -> fp

(** [check ?pool fp msg] recomputes the residues of [msg] at [fp.primes]
    in one {!residues_many} sweep and compares — the receiver side of
    Algorithm 1. *)
val check : ?pool:Util.Pool.t -> fp -> bytes -> bool

(** [matches fp1 fp2] — equality of two fingerprints over the same primes;
    [Invalid_argument] if the primes differ. *)
val matches : fp -> fp -> bool

(** Encoded wire size in bytes, computed arithmetically (no allocation);
    always equals [Bytes.length (Util.Codec.encode encode fp)]. *)
val size_bytes : fp -> int

(** Serialization. *)
val encode : Util.Codec.writer -> fp -> unit
val decode : Util.Codec.reader -> fp
