type label = bytes

let label_size = 16
let tag_size = 4
let row_size = label_size + tag_size

let select_bit (k : bytes) = Char.code (Bytes.get k (label_size - 1)) land 1

(* ---- Flattened circuit (topological order, physical-identity memo) ---- *)

type fgate =
  | GInput of int
  | GConst of bool
  | GNot of int
  | GBin of int * int (* children; the truth table lives in the rows *)

let truth (g : Circuit.gate) a b =
  match g with
  | Circuit.And _ -> a && b
  | Circuit.Or _ -> a || b
  | Circuit.Xor _ -> a <> b
  | _ -> assert false

let flatten (circuit : Circuit.t) =
  let ids = Hashtbl.create 256 in
  let rev_gates = ref [] in
  let count = ref 0 in
  let find g =
    let h = Hashtbl.hash g in
    let rec scan = function
      | [] -> None
      | (g', id) :: _ when g' == g -> Some id
      | _ :: rest -> scan rest
    in
    scan (Hashtbl.find_all ids h)
  in
  let rec go (g : Circuit.gate) =
    match find (Obj.repr g) with
    | Some id -> id
    | None ->
      let fg =
        match g with
        | Circuit.Input i -> GInput i
        | Circuit.Const b -> GConst b
        | Circuit.Not a -> GNot (go a)
        | Circuit.And (a, b) | Circuit.Or (a, b) | Circuit.Xor (a, b) ->
          let ia = go a in
          let ib = go b in
          GBin (ia, ib)
      in
      let id = !count in
      incr count;
      rev_gates := (fg, g) :: !rev_gates;
      Hashtbl.add ids (Hashtbl.hash (Obj.repr g)) (Obj.repr g, id);
      id
  in
  let outputs = List.map go circuit.Circuit.outputs in
  (Array.of_list (List.rev !rev_gates), Array.of_list outputs)

(* ---- Garbling ---- *)

type garbled = {
  circuit : Circuit.t;
  labels : (bytes * bytes) array; (* per flattened gate: (K0, K1) *)
  gate_of_wire : int array;       (* input wire -> flattened gate id *)
  blob : bytes;                   (* the transferable tables *)
}

let hash_row ka kb gate_id =
  let w = Util.Codec.writer () in
  Util.Codec.write_raw w ka;
  Util.Codec.write_raw w kb;
  Util.Codec.write_varint w gate_id;
  Bytes.sub (Sha256.digest (Util.Codec.contents w)) 0 row_size

let xor_bytes a b =
  Bytes.init (Bytes.length a) (fun i ->
      Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))

let fresh_label rng ~select =
  let k = Util.Prng.bytes rng label_size in
  let last = Char.code (Bytes.get k (label_size - 1)) in
  Bytes.set k (label_size - 1) (Char.chr ((last land 0xFE) lor select));
  k

let fresh_pair rng =
  let p = if Util.Prng.bool rng then 1 else 0 in
  (fresh_label rng ~select:p, fresh_label rng ~select:(1 - p))

let garble rng circuit =
  let gates, outputs = flatten circuit in
  let num = Array.length gates in
  let labels = Array.make num (Bytes.empty, Bytes.empty) in
  let gate_of_wire = Array.make circuit.Circuit.num_inputs (-1) in
  let w = Util.Codec.writer () in
  Util.Codec.write_varint w num;
  Array.iteri
    (fun id (fg, orig) ->
      match fg with
      | GInput wire ->
        labels.(id) <- fresh_pair rng;
        gate_of_wire.(wire) <- id;
        Util.Codec.write_byte w 0;
        Util.Codec.write_varint w wire
      | GConst b ->
        let pair = fresh_pair rng in
        labels.(id) <- pair;
        (* The evaluator receives the active label directly. *)
        Util.Codec.write_byte w 1;
        Util.Codec.write_bytes w (if b then snd pair else fst pair)
      | GNot child ->
        (* Swapped alias: K_not^b = K_child^{1-b}; the evaluator just
           carries the child's active label forward. *)
        let c0, c1 = labels.(child) in
        labels.(id) <- (c1, c0);
        Util.Codec.write_byte w 2;
        Util.Codec.write_varint w child
      | GBin (ia, ib) ->
        let pair = fresh_pair rng in
        labels.(id) <- pair;
        let rows = Array.make 4 Bytes.empty in
        List.iter
          (fun (va, vb) ->
            let ka = if va then snd labels.(ia) else fst labels.(ia) in
            let kb = if vb then snd labels.(ib) else fst labels.(ib) in
            let out = truth orig va vb in
            let kc = if out then snd pair else fst pair in
            let plain = Bytes.cat kc (Bytes.make tag_size '\000') in
            let row_idx = (2 * select_bit ka) + select_bit kb in
            rows.(row_idx) <- xor_bytes (hash_row ka kb id) plain)
          [ (false, false); (false, true); (true, false); (true, true) ];
        Util.Codec.write_byte w 3;
        Util.Codec.write_varint w ia;
        Util.Codec.write_varint w ib;
        Array.iter (fun r -> Util.Codec.write_raw w r) rows)
    gates;
  (* Output decode map: permute bit of each output wire. *)
  Util.Codec.write_list w
    (fun w out_id ->
      Util.Codec.write_varint w out_id;
      Util.Codec.write_byte w (select_bit (fst labels.(out_id))))
    (Array.to_list outputs);
  { circuit; labels; gate_of_wire; blob = Util.Codec.contents w }

let input_labels g ~wire =
  let id = g.gate_of_wire.(wire) in
  if id < 0 then invalid_arg "Garble.input_labels: unused wire";
  g.labels.(id)

let encode g ~inputs =
  if Array.length inputs <> g.circuit.Circuit.num_inputs then
    invalid_arg "Garble.encode: wrong input arity";
  Array.mapi
    (fun wire b ->
      let id = g.gate_of_wire.(wire) in
      if id < 0 then Bytes.make label_size '\000'
      else if b then snd g.labels.(id)
      else fst g.labels.(id))
    inputs

let tables g = Bytes.copy g.blob

let eval ~tables ~input_labels =
  match
    let r = Util.Codec.reader tables in
    let num = Util.Codec.read_varint r in
    let active = Array.make num Bytes.empty in
    for id = 0 to num - 1 do
      match Util.Codec.read_byte r with
      | 0 ->
        let wire = Util.Codec.read_varint r in
        if wire >= Array.length input_labels then
          raise (Util.Codec.Decode_error "missing input label");
        active.(id) <- input_labels.(wire)
      | 1 -> active.(id) <- Util.Codec.read_bytes r
      | 2 ->
        let child = Util.Codec.read_varint r in
        active.(id) <- active.(child)
      | 3 ->
        let ia = Util.Codec.read_varint r in
        let ib = Util.Codec.read_varint r in
        let rows = Array.init 4 (fun _ -> Util.Codec.read_raw r row_size) in
        let ka = active.(ia) and kb = active.(ib) in
        let row = rows.((2 * select_bit ka) + select_bit kb) in
        let plain = xor_bytes (hash_row ka kb id) row in
        let kc = Bytes.sub plain 0 label_size in
        let tag = Bytes.sub plain label_size tag_size in
        if not (Bytes.equal tag (Bytes.make tag_size '\000')) then
          raise (Util.Codec.Decode_error "garbled row authentication failed");
        active.(id) <- kc
      | _ -> raise (Util.Codec.Decode_error "bad gate tag")
    done;
    let outs =
      Util.Codec.read_list r (fun r ->
          let out_id = Util.Codec.read_varint r in
          let permute = Util.Codec.read_byte r in
          select_bit active.(out_id) lxor permute = 1)
    in
    Array.of_list outs
  with
  | outs -> Some outs
  | exception Util.Codec.Decode_error _ -> None
  | exception Invalid_argument _ -> None

let size_bytes g = Bytes.length g.blob

(* Structural blob size: every field the garbler writes is either fixed
   width (gate tags, rows, labels) or a varint of a structural quantity
   (gate ids, wire ids), so the size is label-independent and computable
   without garbling. *)
let blob_size circuit =
  let gates, outputs = flatten circuit in
  let vs = Util.Codec.varint_size in
  let total = ref (vs (Array.length gates)) in
  Array.iter
    (fun (fg, _) ->
      total :=
        !total + 1
        +
        match fg with
        | GInput wire -> vs wire
        | GConst _ -> vs label_size + label_size
        | GNot child -> vs child
        | GBin (ia, ib) -> vs ia + vs ib + (4 * row_size))
    gates;
  total := !total + vs (Array.length outputs);
  Array.iter (fun out_id -> total := !total + vs out_id + 1) outputs;
  !total
