(** 1-out-of-2 oblivious transfer from LWE, in two rounds.

    The classic construction from "lossy" public keys: the receiver with
    choice bit [c] generates one real Regev key pair and one uniformly
    random public key (indistinguishable from real under LWE), placing the
    real one in slot [c].  The sender encrypts [m₀] under slot 0 and [m₁]
    under slot 1; the receiver can decrypt only slot [c].

    - Receiver privacy: the two public keys are computationally
      indistinguishable, so the sender learns nothing about [c].
    - Sender privacy (semi-honest): a uniformly random Regev key has no
      functional secret key, so the other message is hidden.

    This instantiates the OT required by Remark 10 (there in its
    maliciously-secure two-round form; ours is the semi-honest core, which
    is what the two-party example and the E14 ablation exercise). *)

type receiver_state

(** [receiver_round1 rng ~choice] — the receiver's first message (two
    public keys) and its private state. *)
val receiver_round1 : Util.Prng.t -> choice:bool -> bytes * receiver_state

(** [sender_round2 rng ~round1 ~m0 ~m1] — the sender's reply: both
    messages encrypted under the respective keys.  [None] if the first
    message is malformed. *)
val sender_round2 : Util.Prng.t -> round1:bytes -> m0:bytes -> m1:bytes -> bytes option

(** [receiver_finish st ~round2] — the chosen message. *)
val receiver_finish : receiver_state -> round2:bytes -> bytes option

(** Exact message sizes for cost accounting, mirroring the encoders byte
    for byte: two length-prefixed Regev public keys (round 1) / two
    length-prefixed ciphertext blobs (round 2). *)
val round1_size : int
val round2_size : plaintext_len:int -> int
