type receiver_state = { choice : bool; sk : Lwe.secret_key }

let params = Lwe.default_params

(* A uniformly random "public key": fresh uniform matrix and vector.  Under
   LWE this is indistinguishable from a real key, and it carries no usable
   secret key — the lossy branch of the OT. *)
let random_pk rng =
  let w = Util.Codec.writer () in
  Util.Codec.write_varint w params.Lwe.dim;
  Util.Codec.write_varint w params.Lwe.samples;
  Util.Codec.write_varint w params.Lwe.q;
  Util.Codec.write_varint w params.Lwe.err_bound;
  for _ = 1 to params.Lwe.samples * (params.Lwe.dim + 1) do
    let v = Util.Prng.int rng params.Lwe.q in
    Util.Codec.write_byte w (v land 0xFF);
    Util.Codec.write_byte w ((v lsr 8) land 0xFF)
  done;
  Util.Codec.decode Lwe.decode_public_key (Util.Codec.contents w)

let encode_pk pk = Util.Codec.encode Lwe.encode_public_key pk

let receiver_round1 rng ~choice =
  let real_pk, sk = Lwe.keygen ~params rng in
  let fake_pk = random_pk rng in
  let pk0, pk1 = if choice then (fake_pk, real_pk) else (real_pk, fake_pk) in
  let msg =
    Util.Codec.encode
      (fun w () ->
        Util.Codec.write_bytes w (encode_pk pk0);
        Util.Codec.write_bytes w (encode_pk pk1))
      ()
  in
  (msg, { choice; sk })

let sender_round2 rng ~round1 ~m0 ~m1 =
  match
    Util.Codec.decode
      (fun r ->
        let pk0 = Util.Codec.read_bytes r in
        let pk1 = Util.Codec.read_bytes r in
        (pk0, pk1))
      round1
  with
  | exception Util.Codec.Decode_error _ -> None
  | pk0b, pk1b -> (
    match
      ( Util.Codec.decode Lwe.decode_public_key pk0b,
        Util.Codec.decode Lwe.decode_public_key pk1b )
    with
    | exception Util.Codec.Decode_error _ -> None
    | pk0, pk1 ->
      let ct0 = Lwe.encrypt_bytes rng pk0 m0 in
      let ct1 = Lwe.encrypt_bytes rng pk1 m1 in
      Some
        (Util.Codec.encode
           (fun w () ->
             Util.Codec.write_bytes w ct0;
             Util.Codec.write_bytes w ct1)
           ()))

let receiver_finish st ~round2 =
  match
    Util.Codec.decode
      (fun r ->
        let ct0 = Util.Codec.read_bytes r in
        let ct1 = Util.Codec.read_bytes r in
        (ct0, ct1))
      round2
  with
  | exception Util.Codec.Decode_error _ -> None
  | ct0, ct1 -> Lwe.decrypt_bytes st.sk (if st.choice then ct1 else ct0)

(* Exact wire sizes, mirroring the encoders above byte for byte: an
   encoded public key is the 4-varint params header plus 2 bytes per
   matrix/vector coordinate, and each round message is two write_bytes
   frames (varint length prefix + payload). *)
let encoded_pk_size =
  Util.Codec.varint_size params.Lwe.dim
  + Util.Codec.varint_size params.Lwe.samples
  + Util.Codec.varint_size params.Lwe.q
  + Util.Codec.varint_size params.Lwe.err_bound
  + Lwe.public_key_size params

let round1_size = 2 * (Util.Codec.varint_size encoded_pk_size + encoded_pk_size)

let round2_size ~plaintext_len =
  let ct = Lwe.ciphertext_blob_size params ~plaintext_len in
  2 * (Util.Codec.varint_size ct + ct)
