type fp = { primes : int array; residues : int array }

let prime_bits = 29

let residues_needed ~lambda ~n ~msg_len =
  (* Failure of one prime: #(29-bit prime divisors of a |m|-byte difference)
     / #(29-bit primes) <= (8*msg_len/29) / 2^24 approx. msg_len <= 2^20 in
     practice, so one prime fails with prob < 2^-6; solve
     (per_prime)^t <= n^-lambda. *)
  let per_prime =
    let divisors = max 1 (8 * max 1 msg_len / prime_bits) in
    float_of_int divisors /. (2.0 ** 24.0)
  in
  let target = -.float_of_int lambda *. log (float_of_int (max 2 n)) in
  let t = int_of_float (ceil (target /. log per_prime)) in
  max 1 t

let sample_primes rng t =
  Array.init t (fun _ -> Field.Primality.random_prime_bits rng ~bits:prime_bits)

(* Horner evaluation of the message as a base-256 number mod p, 4 bytes per
   step: acc < p < 2^29, so (acc lsl 32) lor word < 2^62 never overflows a
   63-bit int.  Same residues as the byte-at-a-time loop, ~4x fewer
   divisions — this is the hot loop of every equality test. *)
let residue msg p =
  let len = Bytes.length msg in
  let acc = ref 0 in
  let k = ref 0 in
  while !k + 4 <= len do
    let word = Int32.to_int (Bytes.get_int32_be msg !k) land 0xFFFFFFFF in
    acc := ((!acc lsl 32) lor word) mod p;
    k := !k + 4
  done;
  while !k < len do
    acc := ((!acc lsl 8) lor Char.code (Bytes.get msg !k)) mod p;
    incr k
  done;
  !acc

let make rng ~t msg =
  let primes = sample_primes rng t in
  { primes; residues = Array.map (residue msg) primes }

let check fp msg =
  Array.for_all2 (fun p r -> residue msg p = r) fp.primes fp.residues

let matches fp1 fp2 =
  if fp1.primes <> fp2.primes then
    invalid_arg "Fingerprint.matches: prime sets differ";
  fp1.residues = fp2.residues

let encode w fp =
  Util.Codec.write_array w Util.Codec.write_varint fp.primes;
  Util.Codec.write_array w Util.Codec.write_varint fp.residues

let decode r =
  let primes = Util.Codec.read_array r Util.Codec.read_varint in
  let residues = Util.Codec.read_array r Util.Codec.read_varint in
  if Array.length primes <> Array.length residues then
    raise (Util.Codec.Decode_error "fingerprint arity mismatch");
  { primes; residues }

let size_bytes fp = Bytes.length (Util.Codec.encode encode fp)
