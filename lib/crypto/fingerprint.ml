type fp = { primes : int array; residues : int array }

let prime_bits = 29

(* The per-prime failure bound (#29-bit prime divisors of the difference /
   #29-bit primes) exceeds 1 once msg_len >= 29/8 * 2^24 bytes (~61 MB):
   past that point the crude divisor count says nothing and the raw
   formula would take the log of a number >= 1.  Clamp each prime's
   failure probability at 1/2 — t then degrades gracefully to the
   ceil(lambda*log2 n) primes a one-bit-per-prime bound needs, instead of
   collapsing to a nonsensical t = 1 via int_of_float nan. *)
let degenerate_per_prime = 0.5

let residues_needed ~lambda ~n ~msg_len =
  (* Failure of one prime: #(29-bit prime divisors of a |m|-byte difference)
     / #(29-bit primes) <= (8*msg_len/29) / 2^24 approx. msg_len <= 2^20 in
     practice, so one prime fails with prob < 2^-6; solve
     (per_prime)^t <= n^-lambda. *)
  let per_prime =
    let divisors = max 1 (8 * max 1 msg_len / prime_bits) in
    min degenerate_per_prime (float_of_int divisors /. (2.0 ** 24.0))
  in
  let target = -.float_of_int lambda *. log (float_of_int (max 2 n)) in
  let t = int_of_float (ceil (target /. log per_prime)) in
  max 1 t

let sample_primes rng t =
  Array.init t (fun _ -> Field.Primality.random_prime_bits rng ~bits:prime_bits)

(* Horner evaluation of the message as a base-256 number mod p, 4 bytes per
   step: acc < p < 2^29, so (acc lsl 32) lor word < 2^62 never overflows a
   63-bit int.  Same residues as the byte-at-a-time loop, ~4x fewer
   divisions — this is the hot loop of every equality test. *)
let residue msg p =
  let len = Bytes.length msg in
  let acc = ref 0 in
  let k = ref 0 in
  while !k + 4 <= len do
    let word = Int32.to_int (Bytes.get_int32_be msg !k) land 0xFFFFFFFF in
    acc := ((!acc lsl 32) lor word) mod p;
    k := !k + 4
  done;
  while !k < len do
    acc := ((!acc lsl 8) lor Char.code (Bytes.get msg !k)) mod p;
    incr k
  done;
  !acc

(* ---- Single-pass blocked multi-prime kernel ------------------------- *)

(* [residues_many] computes [residue msg p] for every prime of an array in
   ONE sweep over the message per cache-sized block, instead of the t full
   sweeps of [Array.map (residue msg)].  Two effects dominate:

   - the message bytes are loaded once per block and reused for all t
     primes while the block is L1-resident, so memory traffic is
     independent of t;
   - the inner loop updates t accumulators per 4-byte word, so the t
     division chains are mutually independent and the CPU overlaps their
     latencies — the per-prime Horner chain is serial in its own acc and
     stalls on every idiv.

   Blocks combine by Horner-over-blocks: with B = block_bytes and
   step_p = 2^(8B) mod p (precomputed once per prime),

     residue (b_1 .. b_m tail) p
       = fold (fun acc b_k -> (acc * step_p + residue b_k p) mod p) 0,
     then Horner-continue the (< B)-byte tail from the folded acc.

   acc * step + block_res < 2^58 + 2^29, so nothing overflows 63-bit
   ints.  Chunking a base-256 evaluation never changes its value mod p,
   so the result is bit-identical to [residue] — QCheck-pinned across
   block boundaries in test_fp_kernel. *)

let block_bytes = 4096

external get32u : bytes -> int -> int32 = "%caml_bytes_get32u"
external swap32 : int32 -> int32 = "%bswap_int32"

(* Big-endian 32-bit word at byte offset [k]; caller guarantees bounds. *)
let[@inline] word_be msg k =
  let w = if Sys.big_endian then get32u msg k else swap32 (get32u msg k) in
  Int32.to_int w land 0xFFFFFFFF

(* Residues for the prime slice [lo, hi) of [primes], written into the
   same slice of [out].  Slices are disjoint across pool jobs, which is
   the [Util.Pool] ownership discipline for result arrays. *)
let rec residues_slice msg primes out lo hi =
  let len = Bytes.length msg in
  let nfull = len / block_bytes in
  let width = hi - lo in
  if width = 1 then
    (* One prime has nothing to interleave: the reference sweep keeps its
       accumulator in a register and skips the step-constant setup. *)
    out.(lo) <- residue msg primes.(lo)
  else if nfull = 0 then
    (* Sub-block message: the tail loop below is the whole kernel; skip
       the per-prime pow_mod setup entirely. *)
    residues_tail msg primes out lo hi 0
  else begin
  (* Per-prime step constant 2^(8*block_bytes) mod p, indexed from 0. *)
  let step =
    Array.init width (fun k ->
        Field.Modarith.pow_mod 256 block_bytes primes.(lo + k))
  in
  let bacc = Array.make width 0 in
  for b = 0 to nfull - 1 do
    let base = b * block_bytes in
    (* Block-local residues from 0: one pass over the block, all primes. *)
    Array.fill bacc 0 width 0;
    let off = ref base in
    let stop = base + block_bytes in
    while !off < stop do
      let w = word_be msg !off in
      for k = 0 to width - 1 do
        Array.unsafe_set bacc k
          (((Array.unsafe_get bacc k lsl 32) lor w)
          mod Array.unsafe_get primes (lo + k))
      done;
      off := !off + 4
    done;
    (* Horner over blocks: fold this block into the running residues. *)
    for k = 0 to width - 1 do
      let p = Array.unsafe_get primes (lo + k) in
      out.(lo + k) <- ((out.(lo + k) * Array.unsafe_get step k) + Array.unsafe_get bacc k) mod p
    done
  done;
  (* Tail block (< block_bytes): Horner-continue the running residues
     directly — it is the last chunk, so no step constant is needed. *)
  residues_tail msg primes out lo hi (nfull * block_bytes)
  end

(* Word-then-byte Horner continuation over [msg[from..len)], updating all
   accumulators of the slice per word — the single-pass tail of the
   blocked kernel, also the whole kernel for sub-block messages. *)
and residues_tail msg primes out lo hi from =
  let len = Bytes.length msg in
  let width = hi - lo in
  let off = ref from in
  while !off + 4 <= len do
    let w = word_be msg !off in
    for k = 0 to width - 1 do
      Array.unsafe_set out (lo + k)
        (((Array.unsafe_get out (lo + k) lsl 32) lor w)
        mod Array.unsafe_get primes (lo + k))
    done;
    off := !off + 4
  done;
  while !off < len do
    let c = Char.code (Bytes.unsafe_get msg !off) in
    for k = 0 to width - 1 do
      Array.unsafe_set out (lo + k)
        (((Array.unsafe_get out (lo + k) lsl 8) lor c)
        mod Array.unsafe_get primes (lo + k))
    done;
    incr off
  done

(* Sharding the PRIME dimension pays only when each shard still sweeps a
   large message for several primes; below this many prime*byte units the
   dispatch overhead wins. *)
let shard_min_work = 1 lsl 18

let residues_many ?pool msg primes =
  let t = Array.length primes in
  let out = Array.make t 0 in
  (match pool with
  | Some pl
    when t >= 2
         && Bytes.length msg * t >= shard_min_work
         && Util.Pool.num_domains pl > 0 ->
    let shards = min t (Util.Pool.num_domains pl + 1) in
    let bounds = Array.init shards (fun s -> (s * t / shards, (s + 1) * t / shards)) in
    let (_ : unit array) =
      Util.Pool.map_jobs pl bounds (fun (lo, hi) -> residues_slice msg primes out lo hi)
    in
    ()
  | _ -> residues_slice msg primes out 0 t);
  out

let make ?pool rng ~t msg =
  let primes = sample_primes rng t in
  { primes; residues = residues_many ?pool msg primes }

let check ?pool fp msg =
  fp.residues = residues_many ?pool msg fp.primes

let matches fp1 fp2 =
  if fp1.primes <> fp2.primes then
    invalid_arg "Fingerprint.matches: prime sets differ";
  fp1.residues = fp2.residues

let encode w fp =
  Util.Codec.write_array w Util.Codec.write_varint fp.primes;
  Util.Codec.write_array w Util.Codec.write_varint fp.residues

let decode r =
  let primes = Util.Codec.read_array r Util.Codec.read_varint in
  let residues = Util.Codec.read_array r Util.Codec.read_varint in
  if Array.length primes <> Array.length residues then
    raise (Util.Codec.Decode_error "fingerprint arity mismatch");
  { primes; residues }

(* Wire size, computed arithmetically — encoding the whole fingerprint
   just to measure it allocated a full copy per call. *)
let size_bytes fp =
  let varints a =
    Array.fold_left
      (fun acc v -> acc + Util.Codec.varint_size v)
      (Util.Codec.varint_size (Array.length a))
      a
  in
  varints fp.primes + varints fp.residues
