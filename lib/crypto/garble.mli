(** Yao garbled circuits with point-and-permute.

    Remark 10 of the paper notes that the LWE-based Theorem 9 machinery
    (cost [poly(λ, D)]) can be replaced by maliciously-secure two-round OT
    plus garbled circuits at cost [poly(λ, C)] — trading the stronger
    assumption for a dependence on circuit {e size} rather than depth.
    This module provides the garbling half of that instantiation, for the
    two-party protocol ({!Two_party}) and the E14 ablation.

    Construction: each wire carries two 16-byte labels whose last bit is
    the permute bit; every binary gate is a four-row table, row
    [(σ_a, σ_b)] holding [H(K_a ‖ K_b ‖ gate_id) ⊕ (K_c ‖ tag)] — the
    evaluator decrypts exactly one row per gate and learns nothing else.
    NOT gates are free (label swap at garble time).  No free-XOR, no
    row-reduction: clarity over squeezing bytes.

    Domain-safety: the wire-id table built during garbling belongs to the
    call, and a [garbled] value is immutable once returned; distinct
    garble/eval calls share nothing, so parallel bench jobs may use this
    module without coordination. *)

type garbled

(** Input labels for one wire: the pair [(label₀, label₁)] (garbler side). *)
type label = bytes

(** [garble rng circuit] — garbled tables plus the label maps. *)
val garble : Util.Prng.t -> Circuit.t -> garbled

(** [input_labels g ~wire] — the two labels of an input wire (garbler
    keeps these; it sends the one matching its own input bit, and runs OT
    for the evaluator's wires). *)
val input_labels : garbled -> wire:int -> label * label

(** [encode g ~inputs] — active labels for a full input assignment. *)
val encode : garbled -> inputs:bool array -> label array

(** Everything the evaluator needs: tables + output decode map (a
    transferable blob; input labels travel separately). *)
val tables : garbled -> bytes

(** [eval ~tables ~input_labels] — returns the output bits, or [None] on a
    malformed garbling/labels.  Pure: no secrets needed. *)
val eval : tables:bytes -> input_labels:label array -> bool array option

(** [size_bytes g] — encoded table size (the communication of sending the
    garbled circuit), ~[4·(16+1)·C] bytes. *)
val size_bytes : garbled -> int

(** [blob_size circuit] — the exact {!size_bytes} any garbling of
    [circuit] will have, computed structurally (every encoded field is
    fixed-width or a varint of a wire/gate id, never label-dependent). *)
val blob_size : Circuit.t -> int

val label_size : int
