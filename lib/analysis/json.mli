(** Minimal JSON values: just enough to persist and reload benchmark
    reports ({!Bench_io}) without external dependencies.

    [to_string] and [parse] round-trip every value this library produces;
    the parser handles standard JSON with the caveat that [\u] escapes
    outside ASCII decode to ['?'] (the reports never emit them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [to_string ?pretty v] — compact by default; [~pretty:true] indents by
    two spaces and ends with a newline (the on-disk report format). *)
val to_string : ?pretty:bool -> t -> string

(** [parse s] — raises {!Parse_error} on malformed input. *)
val parse : string -> t

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val get_int : t -> int option
val get_float : t -> float option
val get_string : t -> string option
val get_bool : t -> bool option
val get_list : t -> t list option
