(** Persisted benchmark reports: the [--json] output of [bench/main.exe]
    and the regression-diff logic behind its [--diff] mode.

    A report is a JSON object (schema {!schema}) holding one {!run} record
    per metered protocol execution — experiment id, series label, (n, h),
    the simulator's accounting counters, and wall-clock — plus per-
    experiment and total wall times.  Two reports from different commits
    can be diffed to catch both performance regressions (wall-clock) and
    accounting drift (bits/messages/rounds changing without a deliberate
    protocol change). *)

val schema : string

(** The pre-[--jobs] schema ([mpc-aborts-bench/1]); {!report_of_json}
    still accepts it, defaulting {!type-report.jobs} to [1]. *)
val legacy_schema : string

(** The pre-[peak_rss_mb] schema ([mpc-aborts-bench/2]); also accepted,
    loading with {!type-run.peak_rss_mb} = [None]. *)
val legacy_schema_2 : string

(** The pre-[predicted_*] schema ([mpc-aborts-bench/3]); also accepted,
    loading with every predicted field [None]. *)
val legacy_schema_3 : string

type run = {
  experiment : string;  (** e.g. ["E1"] *)
  series : string;  (** which sweep within the experiment, e.g. ["n-sweep h=n/4"] *)
  n : int;
  h : int;
  bits : int;  (** total bits sent, the paper's §3.1 communication measure *)
  messages : int;
  rounds : int;
  wall_ms : float;
  seed : int option;
      (** the harness-level [--seed] the run was produced under; [None]
          (the default seeding) omits the key from the JSON entirely, so
          older readers that ignore unknown keys keep working *)
  peak_rss_mb : float option;
      (** process peak resident set (VmHWM) when the record was made —
          monotone over the process, so within one report it brackets
          each run's memory high-water.  [None] (non-Linux, or a report
          predating the field) omits the key.  Informational in diffs,
          like wall time: it depends on jobs count, GC settings, and what
          ran earlier in the process, so it never gates; the hard memory
          gate is CI's address-space ulimit and [--max-rss-mb]. *)
  predicted_bits : int option;
      (** upper bound on [bits] from the protocol's symbolic cost spec
          ({!Costs}), evaluated at this run's parameters and observables;
          [None] on reports predating the field or runs without a spec *)
  predicted_bits_lo : int option;
      (** lower end of the spec's declared-slack interval; equals
          [predicted_bits] for exact specs (the JSON key is then elided
          and reconstructed on load) *)
  predicted_messages : int option;  (** always exact when present *)
  predicted_rounds : int option;  (** always exact when present *)
}

type report = {
  date : string;  (** ISO-8601 UTC *)
  quick : bool;  (** produced by the reduced [--quick] CI tier *)
  jobs : int;
      (** parallel executors used ([--jobs]); affects only wall-clock
          fields — bits/messages/rounds are deterministic at any value *)
  total_wall_ms : float;
  experiment_wall_ms : (string * float) list;
  runs : run list;
}

val report_to_json : report -> Json.t

(** Raises [Failure] on schema mismatch or malformed fields. *)
val report_of_json : Json.t -> report

(** [save path report] — pretty-printed JSON, trailing newline. *)
val save : string -> report -> unit

(** [load path] — raises [Sys_error] / [Failure] / {!Json.Parse_error}. *)
val load : string -> report

(** [diff_table ~before ~after] — one row per run present in both reports
    (matched on experiment/series/n/h): accounting deltas and wall-clock
    speedup.  Also returns (matched, drifted) counts, where a drifted run
    changed bits, messages, or rounds. *)
val diff_table : before:report -> after:report -> Table.t * int * int

(** [print_diff ~before ~after] prints the table plus a summary line and
    returns [(matched, drifted)] so the caller can fail both on
    accounting drift and on a vacuous diff with no comparable runs. *)
val print_diff : before:report -> after:report -> int * int

(** [peak_rss_mb ()] — the process's peak resident set in MB, read from
    [/proc/self/status] (VmHWM).  [None] where unavailable (non-Linux).
    Monotone non-decreasing over the process lifetime. *)
val peak_rss_mb : unit -> float option
