(** Scaling-law measurement: run a metered experiment over a parameter sweep
    and fit the exponent, to check the paper's asymptotic claims in the way
    an empirical evaluation would (slopes on a log-log plot).

    For example, Theorem 1 claims total communication [Õ(n²/h)]: we sweep
    [n] at fixed [h/n] and expect a fitted exponent near 2 in [n] (the
    polylog factors push it slightly above), and sweep [h] at fixed [n]
    expecting an exponent near [-1]. *)

type measurement = {
  x : float;            (** the swept parameter (n, h, d, ...) *)
  value : float;        (** measured cost (bits, locality, ...) *)
}

type fit = {
  exponent : float;     (** fitted k in value ≈ c·x^k *)
  constant : float;
  r2 : float;           (** goodness of fit in log-log space *)
}

(** [sweep ~xs ~runs f] runs [f ~x ~rep] for every x and repetition and
    averages the measured value per x. *)
val sweep : xs:int list -> runs:int -> (x:int -> rep:int -> float) -> measurement list

(** [fit ms] — least squares in log-log space over the points with
    positive coordinates (non-positive points cannot enter a log-log
    regression and are dropped).  Raises [Invalid_argument] when fewer
    than 2 such points remain — a single point or an all-zero series has
    no slope, and the old NaN result passed every tolerance check
    silently. *)
val fit : measurement list -> fit

(** [fit_with_polylog ms] — fits [value ≈ c·x^k·(log x)^j] by first dividing
    out the best integer [j ∈ 0..3]; returns the fit with highest r².
    Useful because the paper's bounds are all [Õ(·)].  Raises
    [Invalid_argument] on degenerate input exactly like {!fit}. *)
val fit_with_polylog : measurement list -> fit * int

(** [check_exponent ~expected ~tolerance fit] — true when the fitted
    exponent is within [tolerance] of [expected]. *)
val check_exponent : expected:float -> tolerance:float -> fit -> bool
