type measurement = { x : float; value : float }
type fit = { exponent : float; constant : float; r2 : float }

let sweep ~xs ~runs f =
  List.map
    (fun x ->
      let values = List.init runs (fun rep -> f ~x ~rep) in
      { x = float_of_int x; value = Util.Stats.mean values })
    xs

(* Log-log regression needs at least two points with positive coordinates;
   anything less used to flow through [Util.Stats.loglog_exponent] and come
   back as NaN (or a garbage slope through a single point), which then
   passed every [check_exponent] tolerance silently.  Fail loudly
   instead. *)
let require_fittable name ms =
  let positive = List.filter (fun m -> m.x > 0.0 && m.value > 0.0) ms in
  if List.length positive < 2 then
    invalid_arg
      (Printf.sprintf
         "Analysis.Complexity.%s: need >= 2 measurements with positive x and value (got %d of %d)"
         name (List.length positive) (List.length ms));
  positive

let fit ms =
  let pts = List.map (fun m -> (m.x, m.value)) (require_fittable "fit" ms) in
  let exponent, constant, r2 = Util.Stats.loglog_exponent pts in
  { exponent; constant; r2 }

let fit_with_polylog ms =
  let ms = require_fittable "fit_with_polylog" ms in
  let candidates =
    List.map
      (fun j ->
        let adjusted =
          List.map
            (fun m ->
              let logf = log (max 2.0 m.x) ** float_of_int j in
              { m with value = m.value /. logf })
            ms
        in
        (fit adjusted, j))
      [ 0; 1; 2; 3 ]
  in
  List.fold_left
    (fun ((best_fit, _) as best) ((f, _) as cand) ->
      if f.r2 > best_fit.r2 then cand else best)
    (List.hd candidates) (List.tl candidates)

let check_exponent ~expected ~tolerance f = abs_float (f.exponent -. expected) <= tolerance
