type expr =
  | Const of int
  | Var of string
  | Add of expr list
  | Sub of expr * expr
  | Mul of expr list
  | Ceil_div of expr * expr
  | Min of expr * expr
  | Max of expr * expr
  | Choose2 of expr
  | Ge of expr * expr
  | Call of string * (int array -> int) * expr array

module Obs = struct
  type t = { tbl : (string, int) Hashtbl.t; prefix : string }

  let create () = { tbl = Hashtbl.create 32; prefix = "" }
  let scoped t p = { t with prefix = t.prefix ^ p ^ "." }
  let set t k v = Hashtbl.replace t.tbl (t.prefix ^ k) v

  let add t k v =
    let key = t.prefix ^ k in
    Hashtbl.replace t.tbl key (v + Option.value (Hashtbl.find_opt t.tbl key) ~default:0)

  let get_opt t k = Hashtbl.find_opt t.tbl k

  let bindings t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

type env = { vars : (string * int) list; obs : Obs.t option }

let env ?obs vars = { vars; obs }

let lookup e name =
  match List.assoc_opt name e.vars with
  | Some v -> v
  | None -> (
    match Option.bind e.obs (fun o -> Obs.get_opt o name) with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Costs.eval: unbound variable %S" name))

let rec eval e = function
  | Const c -> c
  | Var name -> lookup e name
  | Add xs -> List.fold_left (fun acc x -> acc + eval e x) 0 xs
  | Sub (a, b) -> eval e a - eval e b
  | Mul xs -> List.fold_left (fun acc x -> acc * eval e x) 1 xs
  | Ceil_div (a, b) ->
    let b = eval e b in
    if b <= 0 then invalid_arg "Costs.eval: Ceil_div by non-positive";
    (eval e a + b - 1) / b
  | Min (a, b) -> min (eval e a) (eval e b)
  | Max (a, b) -> max (eval e a) (eval e b)
  | Choose2 k ->
    let k = eval e k in
    k * (k - 1) / 2
  | Ge (a, b) -> if eval e a >= eval e b then 1 else 0
  | Call (_, f, args) -> f (Array.map (eval e) args)

let rec to_string = function
  | Const c -> string_of_int c
  | Var v -> v
  | Add xs -> "(" ^ String.concat " + " (List.map to_string xs) ^ ")"
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Mul xs -> String.concat "*" (List.map to_string xs)
  | Ceil_div (a, b) -> Printf.sprintf "ceil(%s / %s)" (to_string a) (to_string b)
  | Min (a, b) -> Printf.sprintf "min(%s, %s)" (to_string a) (to_string b)
  | Max (a, b) -> Printf.sprintf "max(%s, %s)" (to_string a) (to_string b)
  | Choose2 k -> Printf.sprintf "C(%s,2)" (to_string k)
  | Ge (a, b) -> Printf.sprintf "[%s >= %s]" (to_string a) (to_string b)
  | Call (name, _, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (Array.to_list (Array.map to_string args)))

(* ---- common sub-expressions ---- *)

let varint_e x = Call ("varint", (fun a -> Util.Codec.varint_size a.(0)), [| x |])

(* Σ_{i=0}^{k-1} varint_size i, analytically: values in [2^(7w-7), 2^(7w)-1]
   take w bytes, so sum the widths band by band — O(1) in k, which matters
   because the extrapolation table evaluates specs at n = 10⁶ and beyond. *)
let sum_varint_below_int k =
  let rec bands acc lo w =
    if lo >= k then acc
    else
      let hi = if w >= 9 then max_int else (1 lsl (7 * w)) - 1 in
      let upper = min hi (k - 1) in
      bands (acc + ((upper - lo + 1) * w)) (upper + 1) (w + 1)
  in
  if k <= 0 then 0 else bands 0 0 1

let sum_varint_below k = Call ("sum_varint_below", (fun a -> sum_varint_below_int a.(0)), [| k |])
let varint_sum_ids ids = List.fold_left (fun acc id -> acc + Util.Codec.varint_size id) 0 ids
let bits_of_bytes e = Mul [ Const 8; e ]

(* ---- specs ---- *)

type phase = {
  label : string;
  edge : string;
  bits : expr;
  bits_slack : expr;
  reason : string;
  messages : expr;
  rounds : expr;
}

let exact ~label ~edge ~bits ~messages ~rounds =
  { label; edge; bits; bits_slack = Const 0; reason = ""; messages; rounds }

let bounded ~label ~edge ~bits ~slack ~reason ~messages ~rounds =
  { label; edge; bits; bits_slack = slack; reason; messages; rounds }

let rec prefix_vars p = function
  | Const _ as e -> e
  | Var v -> Var (p ^ "." ^ v)
  | Add xs -> Add (List.map (prefix_vars p) xs)
  | Sub (a, b) -> Sub (prefix_vars p a, prefix_vars p b)
  | Mul xs -> Mul (List.map (prefix_vars p) xs)
  | Ceil_div (a, b) -> Ceil_div (prefix_vars p a, prefix_vars p b)
  | Min (a, b) -> Min (prefix_vars p a, prefix_vars p b)
  | Max (a, b) -> Max (prefix_vars p a, prefix_vars p b)
  | Choose2 k -> Choose2 (prefix_vars p k)
  | Ge (a, b) -> Ge (prefix_vars p a, prefix_vars p b)
  | Call (name, f, args) -> Call (name, f, Array.map (prefix_vars p) args)

let prefix_phases p phases =
  List.map
    (fun ph ->
      {
        ph with
        label = p ^ "." ^ ph.label;
        bits = prefix_vars p ph.bits;
        bits_slack = prefix_vars p ph.bits_slack;
        messages = prefix_vars p ph.messages;
        rounds = prefix_vars p ph.rounds;
      })
    phases

let guard g phases =
  let scale e = Mul [ g; e ] in
  List.map
    (fun ph ->
      {
        ph with
        bits = scale ph.bits;
        bits_slack = scale ph.bits_slack;
        messages = scale ph.messages;
        rounds = scale ph.rounds;
      })
    phases

(* [max_locality], when present, is a closed form for the network's
   measured [Net.max_locality] on an honest run — the per-party count of
   distinct peers.  Unlike bits/messages/rounds it does NOT sum across
   phases (two phases touching the same peers cost their union, not
   their sum), so it lives on the spec, is only meaningful standalone
   (pipeline specs embedding other phases leave it [None]), and is
   checked exactly when the caller supplies a measurement. *)
type spec = { name : string; phases : phase list; max_locality : expr option }
type totals = { bits_hi : int; bits_lo : int; messages : int; rounds : int }

let totals e spec =
  List.fold_left
    (fun acc ph ->
      let hi = eval e ph.bits in
      {
        bits_hi = acc.bits_hi + hi;
        bits_lo = acc.bits_lo + hi - eval e ph.bits_slack;
        messages = acc.messages + eval e ph.messages;
        rounds = acc.rounds + eval e ph.rounds;
      })
    { bits_hi = 0; bits_lo = 0; messages = 0; rounds = 0 }
    spec.phases

type verdict = { ok : bool; detail : string list }

let check ?locality e spec ~bits ~messages ~rounds =
  let t = totals e spec in
  let detail = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> detail := s :: !detail) fmt in
  if bits > t.bits_hi || bits < t.bits_lo then
    fail "%s: measured bits %d outside predicted [%d, %d]" spec.name bits t.bits_lo t.bits_hi;
  if messages <> t.messages then
    fail "%s: measured messages %d <> predicted %d" spec.name messages t.messages;
  if rounds <> t.rounds then
    fail "%s: measured rounds %d <> predicted %d" spec.name rounds t.rounds;
  (match (spec.max_locality, locality) with
  | Some formula, Some measured -> (
    (* A formula may refer to observables the caller did not record
       (e.g. a run without an [Obs.t]); an unbound variable means "not
       checkable here", not a mismatch. *)
    match eval e formula with
    | predicted ->
      if predicted <> measured then
        fail "%s: measured max_locality %d <> predicted %d" spec.name measured predicted
    | exception Invalid_argument _ -> ())
  | _ -> ());
  { ok = !detail = []; detail = List.rev !detail }

let phase_table e spec =
  let t =
    Table.create ~title:(Printf.sprintf "cost spec: %s" spec.name)
      ~columns:[ "phase"; "edge"; "bits (hi)"; "slack"; "messages"; "rounds" ]
  in
  List.iter
    (fun ph ->
      Table.add_row t
        [
          ph.label;
          ph.edge;
          string_of_int (eval e ph.bits);
          string_of_int (eval e ph.bits_slack);
          string_of_int (eval e ph.messages);
          string_of_int (eval e ph.rounds);
        ])
    spec.phases;
  let tot = totals e spec in
  Table.add_row t
    [
      "TOTAL";
      "";
      string_of_int tot.bits_hi;
      string_of_int (tot.bits_hi - tot.bits_lo);
      string_of_int tot.messages;
      string_of_int tot.rounds;
    ];
  (match spec.max_locality with
  | Some f -> (
    match eval e f with
    | v -> Table.add_row t [ "max_locality"; "peers/party"; string_of_int v; ""; ""; "" ]
    | exception Invalid_argument _ -> ())
  | None -> ());
  t
