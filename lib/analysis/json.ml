type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf ~indent ~level v =
  let pad l = if indent then Buffer.add_string buf (String.make (2 * l) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun k item ->
        if k > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun k (key, item) ->
        if k > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        escape_to buf key;
        Buffer.add_string buf (if indent then ": " else ":");
        emit buf ~indent ~level:(level + 1) item)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  emit buf ~indent:pretty ~level:0 v;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- parsing (recursive descent over the JSON subset we emit) ---- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let parse_literal c lit value =
  if
    c.pos + String.length lit <= String.length c.s
    && String.sub c.s c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else fail c (Printf.sprintf "expected %s" lit)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c; go ()
      | Some '\\' -> Buffer.add_char buf '\\'; advance c; go ()
      | Some '/' -> Buffer.add_char buf '/'; advance c; go ()
      | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
      | Some 'r' -> Buffer.add_char buf '\r'; advance c; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
      | Some 'b' -> Buffer.add_char buf '\b'; advance c; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
        let hex = String.sub c.s c.pos 4 in
        let code = try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape" in
        (* We only emit escapes for control characters; decode BMP code
           points below 0x80 directly and replace the rest. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else Buffer.add_char buf '?';
        c.pos <- c.pos + 4;
        go ()
      | _ -> fail c "bad escape")
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while (match peek c with Some ch when is_num_char ch -> true | _ -> false) do
    advance c
  done;
  let text = String.sub c.s start (c.pos - start) in
  if text = "" then fail c "expected number";
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "malformed number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec go () =
        items := parse_value c :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          go ()
        | Some ']' -> advance c
        | _ -> fail c "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws c;
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          go ()
        | Some '}' -> advance c
        | _ -> fail c "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing input";
  v

(* ---- accessors ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let get_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let get_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List l -> Some l | _ -> None
