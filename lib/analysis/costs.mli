(** Symbolic cost engine: closed-form integer expressions for the exact
    bit/message/round accounting of every protocol in [lib/core], checked
    against the measured [Netsim.Net] counters.

    The paper states its results as asymptotic bounds — Õ(n²/h) for
    Theorem 1, Õ(n³/h) and Õ(n³/h^{3/2}) for the locality theorems — and
    the bench harness until now only checked them as fitted log-log
    exponents ({!Complexity.fit}), which tolerates constant-factor drift.
    This module makes the accounting an identity instead: each protocol
    exports a {!spec} — a list of {!phase}s, each giving closed-form
    expressions for the bits, messages and rounds it contributes per edge
    class — and the bench harness evaluates the spec at every sweep point
    and asserts it against the measured counters, exactly or within a
    declared one-sided slack.

    Expressions are exact integer arithmetic (no floats except inside
    opaque {!constructor-Call} nodes that reuse the protocols' own sizing
    code, e.g. [Cost_model.round1_bytes]), so evaluation at n = 10⁶
    extrapolates the paper's claims far past what the simulator can
    execute. *)

(** Integer cost expression.  Evaluation is exact 63-bit integer
    arithmetic; variables resolve against an {!env}. *)
type expr =
  | Const of int
  | Var of string  (** resolved by {!eval} against the environment *)
  | Add of expr list
  | Sub of expr * expr
  | Mul of expr list
  | Ceil_div of expr * expr  (** ⌈a / b⌉ for b > 0 *)
  | Min of expr * expr
  | Max of expr * expr
  | Choose2 of expr  (** k(k−1)/2 — unordered pairs *)
  | Ge of expr * expr  (** indicator: 1 when a ≥ b, else 0 *)
  | Call of string * (int array -> int) * expr array
      (** [Call (name, f, args)] — an opaque named integer function over
          evaluated arguments.  This is how specs reuse the exact sizing
          code the protocols themselves call ([Cost_model.round1_bytes],
          [Fingerprint.residues_needed], [Codec.varint_size], a PKE
          module's [ciphertext_size], ...) so the formula and the wire
          format cannot drift apart.  [name] appears in pretty-printing. *)

(** Structural observables of a run's realized randomness.

    Most specs are closed-form in the public parameters alone, but the
    randomized protocols have cost terms that depend on sampled values —
    the committee size, the number of gossip batches, which parties a
    Theorem 4 cover hit.  Those are not predictable a priori, but they are
    {e observable}: the protocol can record the structural count (never a
    measured byte length) into an [Obs.t] as it runs, and the spec refers
    to it as a {!constructor-Var}.  The prediction then remains a genuine
    cross-check: bits are still derived from wire-format structure, not
    read back from the accounting being audited. *)
module Obs : sig
  type t

  val create : unit -> t

  (** [scoped t p] — a handle recording through the same table with key
      prefix [p ^ "."] prepended (composes: sub-protocols of sub-protocols
      get ["a.b.key"]).  Used when a pipeline runs a sub-protocol and the
      pipeline's spec embeds the sub-protocol's phases under a prefix. *)
  val scoped : t -> string -> t

  (** [set t k v] — bind (prefixed) [k] to [v], replacing any previous
      binding. *)
  val set : t -> string -> int -> unit

  (** [add t k v] — add [v] to (prefixed) [k], treating unbound as 0. *)
  val add : t -> string -> int -> unit

  (** Lookup by full (already-prefixed) key, ignoring the handle's own
      prefix. *)
  val get_opt : t -> string -> int option

  (** All bindings with full keys, sorted by key. *)
  val bindings : t -> (string * int) list
end

type env

(** [env ?obs bindings] — variable environment: [bindings] first, then
    the observation table.  {!eval} raises [Invalid_argument] naming the
    variable when neither binds it. *)
val env : ?obs:Obs.t -> (string * int) list -> env

val eval : env -> expr -> int

(** Pretty-print an expression (infix, [Call] by name). *)
val to_string : expr -> string

(** {1 Common sub-expressions} *)

(** LEB128 varint width of a value, as used by [Util.Codec]. *)
val varint_e : expr -> expr

(** [sum_varint_below k] — Σ_{i=0}^{k−1} varint_size(i), closed form
    (the encoded size of the id column when ids are [0..k−1]). *)
val sum_varint_below : expr -> expr

(** Exact integer [Σ varint_size(id)] over a concrete id list (for
    member sets that are not a prefix range). *)
val varint_sum_ids : int list -> int

(** [bits_of_bytes e] = [8·e]. *)
val bits_of_bytes : expr -> expr

(** {1 Specs} *)

(** One protocol phase over one edge class. [bits] is an upper bound;
    the measured value must lie in [[bits − bits_slack, bits]].
    [bits_slack] is [Const 0] (and [reason = ""]) for exact phases.
    [messages] and [rounds] are always exact. *)
type phase = {
  label : string;
  edge : string;  (** e.g. ["member->member"], ["party->all"] *)
  bits : expr;
  bits_slack : expr;
  reason : string;  (** why the slack exists; [""] when exact *)
  messages : expr;
  rounds : expr;
}

(** Exact phase: slack 0, no reason. *)
val exact : label:string -> edge:string -> bits:expr -> messages:expr -> rounds:expr -> phase

(** Phase with a declared one-sided slack and its documented reason. *)
val bounded :
  label:string ->
  edge:string ->
  bits:expr ->
  slack:expr ->
  reason:string ->
  messages:expr ->
  rounds:expr ->
  phase

(** [prefix_phases p phases] — relabel phases and rewrite every
    {!constructor-Var} [v] to [p ^ "." ^ v]: embeds a sub-protocol's
    phases into a pipeline spec, matching {!Obs.scoped} key prefixes.
    Callers bind the scoped parameter variables (e.g. ["keygen.k"]) in
    the environment. *)
val prefix_phases : string -> phase list -> phase list

(** [guard g phases] — multiply every field of every phase by indicator
    expression [g] (typically [Ge (k, Const 2)]): models sub-protocols a
    pipeline skips entirely below a threshold, including their rounds. *)
val guard : expr -> phase list -> phase list

(** A protocol's cost model: summed {!phase}s plus an optional symbolic
    locality bound.  [max_locality], when present, is a closed form for
    the measured [Netsim.Net.max_locality] of an honest run — the
    maximum over parties of distinct peers touched.  Locality does {e
    not} sum across phases (phases touching the same peers cost their
    union), so the formula lives on the whole spec and only standalone
    specs carry one; pipeline specs that embed other protocols' phases
    leave it [None]. *)
type spec = { name : string; phases : phase list; max_locality : expr option }

type totals = { bits_hi : int; bits_lo : int; messages : int; rounds : int }

val totals : env -> spec -> totals

(** Mismatch detail for one phase-summed counter. *)
type verdict = {
  ok : bool;
  detail : string list;
      (** human-readable mismatch lines, empty when [ok] *)
}

(** [check env spec ~bits ~messages ~rounds] — measured totals against
    the spec: bits within [[lo, hi]], messages and rounds exact.  With
    [?locality] and a spec carrying a [max_locality] formula, the
    measured maximum locality is additionally checked {e exactly};
    a formula referring to an observable the caller never recorded is
    silently skipped (unbound variable = "not checkable here"), never
    reported as a mismatch. *)
val check : ?locality:int -> env -> spec -> bits:int -> messages:int -> rounds:int -> verdict

(** Per-phase breakdown at an environment: one row per phase
    (label, edge, bits hi, slack, messages, rounds) plus a totals row,
    and a [max_locality] row when the spec declares a checkable
    formula. *)
val phase_table : env -> spec -> Table.t
