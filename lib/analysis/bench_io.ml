let schema = "mpc-aborts-bench/4"

(* /1 reports predate the --jobs flag; they load with [jobs = 1], which is
   accurate — the old harness was sequential.  /2 reports predate the
   optional per-run [peak_rss_mb] field; they load with it [None].  /3
   reports predate the symbolic-cost [predicted_*] fields; they load with
   all of them [None]. *)
let legacy_schema = "mpc-aborts-bench/1"
let legacy_schema_2 = "mpc-aborts-bench/2"
let legacy_schema_3 = "mpc-aborts-bench/3"

type run = {
  experiment : string;
  series : string;
  n : int;
  h : int;
  bits : int;
  messages : int;
  rounds : int;
  wall_ms : float;
  seed : int option;
  peak_rss_mb : float option;
  predicted_bits : int option;
  predicted_bits_lo : int option;
  predicted_messages : int option;
  predicted_rounds : int option;
}

type report = {
  date : string;
  quick : bool;
  jobs : int;
  total_wall_ms : float;
  experiment_wall_ms : (string * float) list;
  runs : run list;
}

(* ---- JSON encoding ---- *)

let run_to_json r =
  Json.Obj
    ([
       ("experiment", Json.String r.experiment);
       ("series", Json.String r.series);
       ("n", Json.Int r.n);
       ("h", Json.Int r.h);
       ("bits", Json.Int r.bits);
       ("messages", Json.Int r.messages);
       ("rounds", Json.Int r.rounds);
       ("wall_ms", Json.Float r.wall_ms);
     ]
    (* Optional keys are emitted only when present, so reports from sites
       that never set them are byte-identical to before and older readers
       that ignore unknown keys keep working. *)
    @ (match r.seed with None -> [] | Some s -> [ ("seed", Json.Int s) ])
    @ (match r.peak_rss_mb with
      | None -> []
      | Some mb -> [ ("peak_rss_mb", Json.Float mb) ])
    @ (match r.predicted_bits with None -> [] | Some v -> [ ("predicted_bits", Json.Int v) ])
    (* The lower bound is only emitted when a declared slack makes it
       differ from the upper bound, so exact predictions stay one key. *)
    @ (match (r.predicted_bits_lo, r.predicted_bits) with
      | Some lo, Some hi when lo <> hi -> [ ("predicted_bits_lo", Json.Int lo) ]
      | _ -> [])
    @ (match r.predicted_messages with
      | None -> []
      | Some v -> [ ("predicted_messages", Json.Int v) ])
    @
    match r.predicted_rounds with
    | None -> []
    | Some v -> [ ("predicted_rounds", Json.Int v) ])

let report_to_json rep =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("date", Json.String rep.date);
      ("quick", Json.Bool rep.quick);
      ("jobs", Json.Int rep.jobs);
      ("total_wall_ms", Json.Float rep.total_wall_ms);
      ( "experiments",
        Json.List
          (List.map
             (fun (id, ms) ->
               Json.Obj [ ("experiment", Json.String id); ("wall_ms", Json.Float ms) ])
             rep.experiment_wall_ms) );
      ("runs", Json.List (List.map run_to_json rep.runs));
    ]

(* ---- JSON decoding ---- *)

let field name get j =
  match Option.bind (Json.member name j) get with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Bench_io: missing or malformed field %S" name)

let run_of_json j =
  {
    experiment = field "experiment" Json.get_string j;
    series = field "series" Json.get_string j;
    n = field "n" Json.get_int j;
    h = field "h" Json.get_int j;
    bits = field "bits" Json.get_int j;
    messages = field "messages" Json.get_int j;
    rounds = field "rounds" Json.get_int j;
    wall_ms = field "wall_ms" Json.get_float j;
    seed = Option.bind (Json.member "seed" j) Json.get_int;
    peak_rss_mb = Option.bind (Json.member "peak_rss_mb" j) Json.get_float;
    predicted_bits = Option.bind (Json.member "predicted_bits" j) Json.get_int;
    predicted_bits_lo =
      (* Reconstruct the elided exact case: lo defaults to the upper
         bound whenever a prediction is present at all. *)
      (match Option.bind (Json.member "predicted_bits_lo" j) Json.get_int with
      | Some lo -> Some lo
      | None -> Option.bind (Json.member "predicted_bits" j) Json.get_int);
    predicted_messages = Option.bind (Json.member "predicted_messages" j) Json.get_int;
    predicted_rounds = Option.bind (Json.member "predicted_rounds" j) Json.get_int;
  }

let report_of_json j =
  (match Json.member "schema" j with
  | Some (Json.String s)
    when s = schema || s = legacy_schema || s = legacy_schema_2 || s = legacy_schema_3 -> ()
  | Some (Json.String s) -> failwith (Printf.sprintf "Bench_io: unknown schema %S" s)
  | _ -> failwith "Bench_io: missing schema field");
  {
    date = field "date" Json.get_string j;
    quick = (match Option.bind (Json.member "quick" j) Json.get_bool with Some b -> b | None -> false);
    jobs = (match Option.bind (Json.member "jobs" j) Json.get_int with Some v -> v | None -> 1);
    total_wall_ms = field "total_wall_ms" Json.get_float j;
    experiment_wall_ms =
      field "experiments" Json.get_list j
      |> List.map (fun e -> (field "experiment" Json.get_string e, field "wall_ms" Json.get_float e));
    runs = field "runs" Json.get_list j |> List.map run_of_json;
  }

let save path rep =
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (report_to_json rep));
  close_out oc

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  report_of_json (Json.parse s)

(* ---- diffing two reports ---- *)

let run_key r = (r.experiment, r.series, r.n, r.h)

let pct_delta ~before ~after =
  if after = before then "="
  else if before = 0 then "new"
  else
    let pct = 100.0 *. (float_of_int after -. float_of_int before) /. float_of_int before in
    (* Never let a real drift round down to a clean-looking 0.0%. *)
    if Float.abs pct < 0.05 then Printf.sprintf "%+d" (after - before)
    else Printf.sprintf "%+.1f%%" pct

let speedup ~before ~after =
  if after <= 0.0 then "-" else Printf.sprintf "%.2fx" (before /. after)

let diff_table ~before ~after =
  (* Wall-clock comparisons between reports produced at different --jobs
     counts measure the parallel speedup, not a regression: label the
     column as informational.  Accounting columns (bits/messages/rounds)
     are jobs-independent by the determinism contract and always gate. *)
  let jobs_differ = before.jobs <> after.jobs in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "bench diff: %s (%s) vs %s (%s)" before.date
           (if before.quick then "quick" else "full")
           after.date
           (if after.quick then "quick" else "full"))
      ~columns:
        [ "experiment"; "series"; "n"; "h"; "bits"; "d-bits"; "d-msgs"; "d-rounds"; "d-pred";
          (if jobs_differ then "speedup (info)" else "speedup"); "rss (info)" ]
  in
  (* Peak RSS is informational like wall time: it is a property of the
     whole process (GC settings, jobs count, what ran before), not of the
     protocol, so it never counts as drift. *)
  let fmt_rss = function Some mb -> Printf.sprintf "%.0fMB" mb | None -> "-" in
  let rss_cell ~b ~a =
    match (b, a) with None, None -> "-" | _ -> Printf.sprintf "%s -> %s" (fmt_rss b) (fmt_rss a)
  in
  let after_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace after_tbl (run_key r) r) after.runs;
  let matched = ref 0 and drifted = ref 0 in
  List.iter
    (fun b ->
      match Hashtbl.find_opt after_tbl (run_key b) with
      | None -> ()
      | Some a ->
        incr matched;
        (* Predicted fields gate only when both records carry them: a /3
           baseline diffed against a /4 report must not flag every row as
           drifted just because the new side gained predictions. *)
        let opt_drift bo ao = match (bo, ao) with Some x, Some y -> x <> y | _ -> false in
        if
          a.bits <> b.bits || a.messages <> b.messages || a.rounds <> b.rounds
          || opt_drift b.predicted_bits a.predicted_bits
          || opt_drift b.predicted_bits_lo a.predicted_bits_lo
          || opt_drift b.predicted_messages a.predicted_messages
          || opt_drift b.predicted_rounds a.predicted_rounds
        then incr drifted;
        Table.add_row t
          [
            b.experiment;
            b.series;
            string_of_int b.n;
            string_of_int b.h;
            Table.fmt_bits a.bits;
            pct_delta ~before:b.bits ~after:a.bits;
            pct_delta ~before:b.messages ~after:a.messages;
            pct_delta ~before:b.rounds ~after:a.rounds;
            (match (b.predicted_bits, a.predicted_bits) with
            | Some pb, Some pa -> pct_delta ~before:pb ~after:pa
            | None, Some _ -> "new"
            | _ -> "-");
            speedup ~before:b.wall_ms ~after:a.wall_ms;
            rss_cell ~b:b.peak_rss_mb ~a:a.peak_rss_mb;
          ])
    before.runs;
  (t, !matched, !drifted)

(* ---- process peak RSS ---- *)

let peak_rss_mb () =
  (* VmHWM ("high water mark") in /proc/self/status is the process's peak
     resident set in kB, maintained by the kernel — monotone over the
     process lifetime, free to read.  Linux-only by construction; any
     platform without the file (or with a different layout) reports
     [None] and the harness simply omits the field. *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
          (* "VmHWM:\t  123456 kB" — whitespace-trimmed digit prefix. *)
          let rest = String.trim (String.sub line 6 (String.length line - 6)) in
          let len = String.length rest in
          let j = ref 0 in
          while !j < len && rest.[!j] >= '0' && rest.[!j] <= '9' do
            incr j
          done;
          if !j = 0 then None
          else
            match int_of_string_opt (String.sub rest 0 !j) with
            | Some kb -> Some (float_of_int kb /. 1024.0)
            | None -> None
        end
        else scan ()
    in
    let r = scan () in
    close_in ic;
    r

let print_diff ~before ~after =
  let t, matched, drifted = diff_table ~before ~after in
  Table.print t;
  Printf.printf
    "\n%d comparable runs; %d with accounting drift (bits/messages/rounds changed).\n\
     total wall: %.1fs (jobs=%d) -> %.1fs (jobs=%d) (%s)\n"
    matched drifted
    (before.total_wall_ms /. 1000.0)
    before.jobs
    (after.total_wall_ms /. 1000.0)
    after.jobs
    (speedup ~before:before.total_wall_ms ~after:after.total_wall_ms);
  if before.jobs <> after.jobs then
    Printf.printf
      "note: reports were produced at different --jobs counts (%d vs %d); wall-time\n\
       deltas above are informational (they measure parallel speedup, not drift).\n\
       Only accounting drift — bits/messages/rounds/locality/verdicts — gates.\n"
      before.jobs after.jobs;
  (matched, drifted)
