(** The delivery seam under {!Net}: a transport owns every message that
    has been sent but not yet delivered, and decides — when the round
    clock ticks — which of them become readable.

    {!Net.send} meters a message (bits, message count, peer bits) and
    then hands it to the transport via [submit]; {!Net.step} calls
    [advance], and the transport calls [deliver] back once per message it
    releases, in the order it wants them to arrive.  Mailboxes,
    accounting, and the round clock stay in {!Net}; the transport is
    {e only} the in-flight buffer plus the delivery schedule.  That split
    is what lets the synchronous backend stay byte-identical while an
    event-queue backend ({!Event_net}) reorders and delays traffic under
    the same protocol code — and it is the seam a future socket-backed
    transport plugs into.

    Contract required of any implementation:
    - {b Eventual delivery.}  Every submitted message is delivered after
      finitely many [advance] calls ([Net]'s livelock watchdog assumes
      this; {!Event_net} enforces it with a per-message forced-delivery
      bound).
    - {b Determinism.}  The delivery schedule is a pure function of the
      submission sequence and the transport's construction arguments
      (including any PRNG state captured at construction) — never of
      wall-clock time or domain scheduling.
    - {b Single owner.}  Same as [Net.t]: no internal locking, one
      owning domain.

    The synchronous transports below reproduce the historical lockstep
    semantics {e exactly}: one [advance] delivers everything in flight,
    senders in ascending id order, each sender's messages in send order. *)

type t = {
  name : string;  (** for reports and error messages, e.g. ["sync"] *)
  submit : src:int -> dst:int -> bytes -> unit;
      (** Take ownership of one metered message. *)
  advance : deliver:(src:int -> dst:int -> bytes -> unit) -> unit;
      (** One clock tick: release zero or more in-flight messages through
          [deliver].  Called by {!Net.step} only when [in_flight () > 0],
          so an implementation may treat ticks as relative to activity. *)
  in_flight : unit -> int;  (** Messages submitted but not yet delivered. *)
}

(** Lockstep delivery over a dense per-sender queue array — the
    historical {!Net.Dense} pending structure, verbatim: [submit] is
    O(1), [advance] walks sender ids [0 .. n-1] and empties each queue in
    send order. *)
val sync_dense : n:int -> t

(** Lockstep delivery for the sparse backend: per-{e active}-sender
    queues in a hash table, [advance] sorts the (few) active sender ids
    to realize the exact dense delivery order — the historical
    {!Net.Sparse} pending structure, verbatim. *)
val sync_sparse : unit -> t
