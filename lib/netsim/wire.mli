(** Length-prefixed [Util.Codec] frames over a file descriptor — the
    framing layer under {!Dist}'s coordinator/worker protocol.

    A frame on the wire is a {!Util.Codec} varint byte length followed by
    that many payload bytes; the payload is itself Codec-encoded and is
    decoded with the usual whole-message discipline (trailing bytes are a
    {!Util.Codec.Decode_error}, whose message carries the failing
    offset).

    The connection buffers in both directions: reads refill a growable
    input buffer in large chunks (a cheap frame never costs a syscall per
    byte), and writes accumulate into an output buffer until {!flush} —
    so a round's worth of small cross-shard payloads coalesces into one
    [write(2)] per link, which is the per-link frame coalescing the
    coordinator's hot path relies on.

    Single-owner, no locking — same contract as [Net.t].  Peer death
    (EOF, [EPIPE], [ECONNRESET]) surfaces as {!Closed} from whichever
    call observes it; {!Dist} turns that into respawn-and-replay. *)

type t

(** Raised when the peer is gone: EOF on read, or a broken pipe /
    connection reset on write or flush. *)
exception Closed

(** Wrap a connected stream fd (socketpair or socket).  The fd is
    managed by the caller except that {!close} closes it. *)
val of_fd : Unix.file_descr -> t

val fd : t -> Unix.file_descr

(** [queue t enc] appends one frame (length prefix + [enc]-written
    payload) to the output buffer without writing to the fd. *)
val queue : t -> (Util.Codec.writer -> unit) -> unit

(** Write out all buffered frames.  No-op when nothing is queued. *)
val flush : t -> unit

(** [send t enc] is [queue] followed by {!flush} — one frame, one write. *)
val send : t -> (Util.Codec.writer -> unit) -> unit

(** [recv t dec] blocks for the next complete frame and decodes its
    payload with [dec] (whole-message: trailing bytes raise).  Raises
    {!Closed} on EOF at a frame boundary or mid-frame.  A frame is
    consumed even when [dec] raises — a bad payload never desyncs the
    stream, so the caller can keep reading after reporting it. *)
val recv : t -> (Util.Codec.reader -> 'a) -> 'a

(** A complete frame is already buffered — {!recv} would return without
    touching the fd.  Check before multiplexing on [Unix.select]: a
    buffered frame makes the fd look idle. *)
val has_buffered_frame : t -> bool

(** [recv_deadline t ~deadline dec] is {!recv} bounded by an absolute
    wall-clock deadline ([Unix.gettimeofday] scale): [None] if no
    complete frame arrives in time.  Nothing is consumed on timeout —
    partially received frame bytes stay buffered, so the stream remains
    in sync and a later [recv]/[recv_deadline] resumes exactly where
    this one stopped.  This is the heartbeat primitive under {!Dist}'s
    [worker_timeout_s]: a worker that is alive but silent (e.g. stopped
    by a signal, or wedged in a loop) never EOFs its socket, so a plain
    {!recv} would block the coordinator forever. *)
val recv_deadline : t -> deadline:float -> (Util.Codec.reader -> 'a) -> 'a option

(** Close the underlying fd (idempotent).  Subsequent calls raise
    {!Closed}. *)
val close : t -> unit
