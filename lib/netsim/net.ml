(* High-throughput core.

   The simulator used to keep one global [pending] list (stable-sorted on
   every [step]) and plain association lists for inboxes (re-reversed and
   partitioned on every [recv_from]).  At the sweep sizes the experiments
   run (n up to 512 and beyond), that bookkeeping dominated wall-clock.

   The rewrite buckets traffic by sender at both ends:

   - Sent-but-undelivered messages live in a {!Transport.t} (per-sender
     FIFOs for the synchronous transports).  [send] is O(1) and the sync
     [advance] delivers by walking sender ids in increasing order — which
     IS the documented delivery order (sender id, then send order), so no
     sort is ever needed.  [Net] keeps mailboxes, accounting, and the
     round clock; the transport keeps only the in-flight buffer and the
     delivery schedule, so an event-queue transport (Event_net) can delay
     and reorder under identical protocol code.
   - Each recipient keeps an arrival-order [log] (growable array of
     cells) plus per-sender FIFOs of the same cells, built lazily in a
     hash table keyed by sender.  [recv] walks the log once; [recv_from]
     pops only that sender's queue, so it is O(messages from that sender)
     and repeated polling of an empty pair costs O(1).  A cell popped by
     one view is marked dead so the other view skips it.

   Two representations sit behind one [t]:

   - {b Dense} — the original layout: one inbox and counter slot per
     party, a peer bitmap of n²/8 bytes total (pending queues in
     [Transport.sync_dense]).  O(1) everything, but Θ(n²) resident even
     when almost every party is idle, which caps runs near n = 2048.
   - {b Sparse} — party state ([pstate]: inbox log, per-sender FIFOs,
     bit counters, an {!Util.Intset} of peers) is allocated on first
     touch and held in an [(int, pstate) Hashtbl]; undelivered traffic
     lives in [Transport.sync_sparse]'s per-{e active-sender} hash of
     FIFOs.  Memory is O(touched parties + in-flight messages), so the
     sparse-graph protocols (Algs 5–7) run at n = 10⁵–10⁶.  [advance]
     sorts the active sender ids (O(a log a), a = active senders) to
     realize the exact dense delivery order.

   Delivery order, accounting, and the external API are identical
   between backends and to the original list-based implementation (see
   test_netsim's model-equivalence property and test_net_sparse's
   dense≡sparse differential suite). *)

type backend = Dense | Sparse

type cell = { c_src : int; c_payload : bytes; mutable c_live : bool }

let dummy_cell = { c_src = -1; c_payload = Bytes.empty; c_live = false }

type inbox = {
  mutable log : cell array; (* arrival order; indices < log_len are valid *)
  mutable log_len : int;
  mutable live : int; (* number of undrained cells in the log *)
  by_sender : cell Queue.t option array; (* indexed by sender id, lazily allocated *)
}

(* Sparse per-party state: everything the dense backend spreads over five
   parallel arrays, packed into one lazily created record.  [p_by_sender]
   replaces the O(n) option array with a hash keyed by the (few) senders
   that actually addressed this party; [p_peers] replaces the n/8-byte
   bitmap row with a compact int set sized to the party's degree. *)
type pstate = {
  mutable p_log : cell array;
  mutable p_log_len : int;
  mutable p_live : int;
  p_by_sender : (int, cell Queue.t) Hashtbl.t;
  mutable p_sent_bits : int;
  mutable p_recv_bits : int;
  p_peers : Util.Intset.t;
}

type dense = {
  inboxes : inbox array;
  sent_bits : int array;
  recv_bits : int array;
  peer_bits : bytes array; (* peer_bits.(i): bit j set iff i exchanged with j *)
}

type sparse = { states : (int, pstate) Hashtbl.t }

type repr = D of dense | S of sparse

exception Livelock of { rounds : int; max_rounds : int }

let () =
  Printexc.register_printer (function
    | Livelock { rounds; max_rounds } ->
      Some
        (Printf.sprintf "Netsim.Net.Livelock: round clock hit %d (max_rounds = %d)" rounds
           max_rounds)
    | _ -> None)

type t = {
  num_parties : int;
  mutable max_rounds : int option; (* mutable for [with_round_limit] *)
  net_backend : backend;
  transport : Transport.t; (* owns sent-but-undelivered messages *)
  deliver : src:int -> dst:int -> bytes -> unit; (* into [repr]'s mailboxes *)
  mutable round : int;
  mutable total_messages : int;
  mutable total_sent_bits : int; (* running sum — [total_bits] must be O(1)
                                    when only a handful of the n counters
                                    are materialized *)
  repr : repr;
}

let n t = t.num_parties
let backend t = t.net_backend

let check_party t i name =
  if i < 0 || i >= t.num_parties then
    invalid_arg (Printf.sprintf "Net.%s: party %d out of range" name i)

(* ---- Sparse party state ---------------------------------------------- *)

let fresh_pstate () =
  {
    p_log = [||];
    p_log_len = 0;
    p_live = 0;
    p_by_sender = Hashtbl.create 4;
    p_sent_bits = 0;
    p_recv_bits = 0;
    p_peers = Util.Intset.create ();
  }

let pstate s i =
  match Hashtbl.find_opt s.states i with
  | Some p -> p
  | None ->
    let p = fresh_pstate () in
    Hashtbl.add s.states i p;
    p

let pstate_opt s i = Hashtbl.find_opt s.states i

(* ---- Sending --------------------------------------------------------- *)

(* Peer tracking is a bit per (party, peer): [send] marks two bits with no
   allocation, where the persistent-set version paid two [Iset.add]
   (O(log n) alloc each) on EVERY message — the single hottest line of the
   all-to-all distribute phase under a GC-bound profile. *)
let[@inline] mark_peer d i j =
  let b = d.peer_bits.(i) in
  let k = j lsr 3 in
  Bytes.unsafe_set b k
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b k) lor (1 lsl (j land 7))))

let send t ~src ~dst payload =
  check_party t src "send";
  check_party t dst "send";
  if src = dst then invalid_arg "Net.send: self-send";
  let bits = 8 * Bytes.length payload in
  (match t.repr with
  | D d ->
    d.sent_bits.(src) <- d.sent_bits.(src) + bits;
    d.recv_bits.(dst) <- d.recv_bits.(dst) + bits;
    mark_peer d src dst;
    mark_peer d dst src
  | S s ->
    let ps = pstate s src in
    ps.p_sent_bits <- ps.p_sent_bits + bits;
    Util.Intset.add ps.p_peers dst;
    let pd = pstate s dst in
    pd.p_recv_bits <- pd.p_recv_bits + bits;
    Util.Intset.add pd.p_peers src);
  (* Metering happens at send time regardless of when (or in what order)
     the transport chooses to deliver — cost is a property of what the
     protocol said, not of the schedule. *)
  t.transport.Transport.submit ~src ~dst payload;
  t.total_sent_bits <- t.total_sent_bits + bits;
  t.total_messages <- t.total_messages + 1

(* ---- Delivery -------------------------------------------------------- *)

let deliver_dense d ~src ~dst payload =
  let ib = d.inboxes.(dst) in
  let cell = { c_src = src; c_payload = payload; c_live = true } in
  (if ib.log_len = Array.length ib.log then begin
     let grown = Array.make (max 8 (2 * ib.log_len)) dummy_cell in
     Array.blit ib.log 0 grown 0 ib.log_len;
     ib.log <- grown
   end);
  ib.log.(ib.log_len) <- cell;
  ib.log_len <- ib.log_len + 1;
  ib.live <- ib.live + 1;
  let q =
    match ib.by_sender.(src) with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      ib.by_sender.(src) <- Some q;
      q
  in
  Queue.push cell q

let deliver_sparse s ~src ~dst payload =
  let p = pstate s dst in
  let cell = { c_src = src; c_payload = payload; c_live = true } in
  (if p.p_log_len = Array.length p.p_log then begin
     let grown = Array.make (max 8 (2 * p.p_log_len)) dummy_cell in
     Array.blit p.p_log 0 grown 0 p.p_log_len;
     p.p_log <- grown
   end);
  p.p_log.(p.p_log_len) <- cell;
  p.p_log_len <- p.p_log_len + 1;
  p.p_live <- p.p_live + 1;
  let q =
    match Hashtbl.find_opt p.p_by_sender src with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add p.p_by_sender src q;
      q
  in
  Queue.push cell q

let create ?(backend = Dense) ?transport ?max_rounds num_parties =
  if num_parties <= 0 then invalid_arg "Net.create: need at least one party";
  (match max_rounds with
  | Some m when m <= 0 -> invalid_arg "Net.create: max_rounds must be positive"
  | _ -> ());
  let repr =
    match backend with
    | Dense ->
      D
        {
          inboxes =
            Array.init num_parties (fun _ ->
                { log = [||]; log_len = 0; live = 0; by_sender = Array.make num_parties None });
          sent_bits = Array.make num_parties 0;
          recv_bits = Array.make num_parties 0;
          peer_bits =
            Array.init num_parties (fun _ -> Bytes.make ((num_parties + 7) / 8) '\000');
        }
    | Sparse -> S { states = Hashtbl.create 64 }
  in
  let transport =
    match transport with
    | Some tr -> tr
    | None -> (
      match backend with
      | Dense -> Transport.sync_dense ~n:num_parties
      | Sparse -> Transport.sync_sparse ())
  in
  let deliver =
    match repr with
    | D d -> fun ~src ~dst payload -> deliver_dense d ~src ~dst payload
    | S s -> fun ~src ~dst payload -> deliver_sparse s ~src ~dst payload
  in
  {
    num_parties;
    max_rounds;
    net_backend = backend;
    transport;
    deliver;
    round = 0;
    total_messages = 0;
    total_sent_bits = 0;
    repr;
  }

let step t =
  (* Livelock watchdog: a fuzzed adversary that keeps a protocol loop
     alive forever should fail diagnosably, not hang CI.  The clock a
     [max_rounds] bound counts is the same virtual clock the transports
     tick on (one tick per [step]), so under the event transport this is
     a virtual-time bound on the whole schedule, not just on lockstep
     rounds.  Checked before delivery so the raise leaves the clock and
     mailboxes untouched. *)
  (match t.max_rounds with
  | Some m when t.round >= m -> raise (Livelock { rounds = t.round; max_rounds = m })
  | _ -> ());
  (* One transport tick.  The synchronous transports deliver everything
     in flight in the canonical order (ascending sender id, then send
     order); the event transport releases whatever its schedule says is
     due.  Skipped entirely when nothing is in flight, so idle steps
     stay O(1) on the sparse backend. *)
  if t.transport.Transport.in_flight () > 0 then t.transport.Transport.advance ~deliver:t.deliver;
  t.round <- t.round + 1

let in_flight t = t.transport.Transport.in_flight ()

let step_until_quiet ?(deadline = 1) t =
  if deadline < 1 then invalid_arg "Net.step_until_quiet: deadline must be >= 1";
  step t;
  let steps = ref 1 in
  while !steps < deadline && in_flight t > 0 do
    step t;
    incr steps
  done

let steps_remaining t =
  match t.max_rounds with Some m -> max 0 (m - t.round) | None -> max_int

let with_round_limit t ~extra f =
  if extra <= 0 then invalid_arg "Net.with_round_limit: extra must be positive";
  let saved = t.max_rounds in
  let cap = t.round + extra in
  (* Only ever tighten: a create-time bound stays authoritative. *)
  t.max_rounds <- Some (match saved with Some m -> min m cap | None -> cap);
  Fun.protect ~finally:(fun () -> t.max_rounds <- saved) f

(* ---- Receiving ------------------------------------------------------- *)

let reset_inbox ib =
  (* Drop cell references so drained payloads can be collected. *)
  for k = 0 to ib.log_len - 1 do
    ib.log.(k) <- dummy_cell
  done;
  ib.log_len <- 0;
  ib.live <- 0

let reset_pstate_inbox p =
  for k = 0 to p.p_log_len - 1 do
    p.p_log.(k) <- dummy_cell
  done;
  p.p_log_len <- 0;
  p.p_live <- 0;
  (* [reset] (not [clear]) drops the bucket array back to its initial
     size: a party that was hot once must not pin a large table forever. *)
  Hashtbl.reset p.p_by_sender

let recv t ~dst =
  check_party t dst "recv";
  match t.repr with
  | D d ->
    let ib = d.inboxes.(dst) in
    if ib.live = 0 then begin
      reset_inbox ib;
      []
    end
    else begin
      let acc = ref [] in
      for k = ib.log_len - 1 downto 0 do
        let c = ib.log.(k) in
        if c.c_live then begin
          c.c_live <- false;
          (match ib.by_sender.(c.c_src) with
          | Some q -> Queue.clear q
          | None -> ());
          acc := (c.c_src, c.c_payload) :: !acc
        end
      done;
      reset_inbox ib;
      !acc
    end
  | S s -> (
    match pstate_opt s dst with
    | None -> []
    | Some p ->
      if p.p_live = 0 then begin
        reset_pstate_inbox p;
        []
      end
      else begin
        let acc = ref [] in
        for k = p.p_log_len - 1 downto 0 do
          let c = p.p_log.(k) in
          if c.c_live then begin
            c.c_live <- false;
            acc := (c.c_src, c.c_payload) :: !acc
          end
        done;
        (* No per-sender queue clears needed: the whole index is reset. *)
        reset_pstate_inbox p;
        !acc
      end)

let recv_from t ~dst ~src =
  check_party t dst "recv_from";
  match t.repr with
  | D d -> (
    let ib = d.inboxes.(dst) in
    match ib.by_sender.(src) with
    | None -> []
    | Some q ->
      let k = Queue.length q in
      if k = 0 then []
      else begin
        let acc = ref [] in
        while not (Queue.is_empty q) do
          let c = Queue.pop q in
          c.c_live <- false;
          acc := c.c_payload :: !acc
        done;
        ib.live <- ib.live - k;
        if ib.live = 0 then reset_inbox ib;
        List.rev !acc
      end)
  | S s -> (
    match pstate_opt s dst with
    | None -> []
    | Some p -> (
      match Hashtbl.find_opt p.p_by_sender src with
      | None -> []
      | Some q ->
        let k = Queue.length q in
        if k = 0 then []
        else begin
          let acc = ref [] in
          while not (Queue.is_empty q) do
            let c = Queue.pop q in
            c.c_live <- false;
            acc := c.c_payload :: !acc
          done;
          p.p_live <- p.p_live - k;
          if p.p_live = 0 then reset_pstate_inbox p;
          List.rev !acc
        end))

(* [Some payload] iff exactly one message is queued — the lockstep common
   case — draining the queue either way, so network state afterwards is
   identical to [recv_from] matched against [[v]], without the per-call
   list build. *)
let drain_one q =
  let k = Queue.length q in
  if k = 0 then (0, None)
  else if k = 1 then begin
    let c = Queue.pop q in
    c.c_live <- false;
    (1, Some c.c_payload)
  end
  else begin
    while not (Queue.is_empty q) do
      let c = Queue.pop q in
      c.c_live <- false
    done;
    (k, None)
  end

let recv_one t ~dst ~src =
  check_party t dst "recv_one";
  match t.repr with
  | D d -> (
    let ib = d.inboxes.(dst) in
    match ib.by_sender.(src) with
    | None -> None
    | Some q ->
      let k, result = drain_one q in
      if k > 0 then begin
        ib.live <- ib.live - k;
        if ib.live = 0 then reset_inbox ib
      end;
      result)
  | S s -> (
    match pstate_opt s dst with
    | None -> None
    | Some p -> (
      match Hashtbl.find_opt p.p_by_sender src with
      | None -> None
      | Some q ->
        let k, result = drain_one q in
        if k > 0 then begin
          p.p_live <- p.p_live - k;
          if p.p_live = 0 then reset_pstate_inbox p
        end;
        result))

let peek t ~dst =
  check_party t dst "peek";
  match t.repr with
  | D d ->
    let ib = d.inboxes.(dst) in
    let acc = ref [] in
    for k = ib.log_len - 1 downto 0 do
      let c = ib.log.(k) in
      if c.c_live then acc := (c.c_src, c.c_payload) :: !acc
    done;
    !acc
  | S s -> (
    match pstate_opt s dst with
    | None -> []
    | Some p ->
      let acc = ref [] in
      for k = p.p_log_len - 1 downto 0 do
        let c = p.p_log.(k) in
        if c.c_live then acc := (c.c_src, c.c_payload) :: !acc
      done;
      !acc)

(* ---- Accounting ------------------------------------------------------ *)

let rounds t = t.round

let bits_sent t i =
  check_party t i "bits_sent";
  match t.repr with
  | D d -> d.sent_bits.(i)
  | S s -> ( match pstate_opt s i with Some p -> p.p_sent_bits | None -> 0)

let bits_received t i =
  check_party t i "bits_received";
  match t.repr with
  | D d -> d.recv_bits.(i)
  | S s -> ( match pstate_opt s i with Some p -> p.p_recv_bits | None -> 0)

let total_bits t = t.total_sent_bits
let total_bits_of t parties = List.fold_left (fun acc i -> acc + bits_sent t i) 0 parties

let peers t i =
  check_party t i "peers";
  (* Rebuilt on demand: [peers] is a reporting call (end of run), while
     [send] is the hot loop — both representations optimize for the
     latter and reconstitute the set here. *)
  match t.repr with
  | D d ->
    let b = d.peer_bits.(i) in
    let s = ref Util.Iset.empty in
    for j = t.num_parties - 1 downto 0 do
      if (Char.code (Bytes.unsafe_get b (j lsr 3)) lsr (j land 7)) land 1 = 1 then
        s := Util.Iset.add j !s
    done;
    !s
  | S s -> ( match pstate_opt s i with Some p -> Util.Intset.to_iset p.p_peers | None -> Util.Iset.empty)

let popcount8 =
  Array.init 256 (fun v ->
      let c = ref 0 in
      for k = 0 to 7 do
        c := !c + ((v lsr k) land 1)
      done;
      !c)

let locality t i =
  check_party t i "locality";
  match t.repr with
  | D d ->
    let b = d.peer_bits.(i) in
    let c = ref 0 in
    for k = 0 to Bytes.length b - 1 do
      c := !c + Array.unsafe_get popcount8 (Char.code (Bytes.unsafe_get b k))
    done;
    !c
  | S s -> ( match pstate_opt s i with Some p -> Util.Intset.cardinal p.p_peers | None -> 0)

let max_locality t =
  match t.repr with
  | D _ ->
    let best = ref 0 in
    for i = 0 to t.num_parties - 1 do
      best := max !best (locality t i)
    done;
    !best
  | S s ->
    (* Untouched parties have locality 0, so folding over the touched
       ones is exact. *)
    Hashtbl.fold (fun _ p acc -> max acc (Util.Intset.cardinal p.p_peers)) s.states 0

let messages_sent t = t.total_messages

let active_parties t =
  match t.repr with
  | D d ->
    let acc = ref [] in
    for i = t.num_parties - 1 downto 0 do
      if d.inboxes.(i).live > 0 then acc := i :: !acc
    done;
    !acc
  | S s ->
    List.sort compare
      (Hashtbl.fold (fun i p acc -> if p.p_live > 0 then i :: acc else acc) s.states [])

(* Undrained-inbox size — the [run_round] shard weight. *)
let live_of t i =
  match t.repr with
  | D d -> d.inboxes.(i).live
  | S s -> ( match pstate_opt s i with Some p -> p.p_live | None -> 0)

(* ---- Intra-round parallel party stepping ---------------------------- *)

(* [run_round] splits one protocol round into two phases:

   - a {e compute} phase in which every listed party runs its step
     function.  A step may drain its own inbox ([Party.recv],
     [Party.recv_from], [Party.peek] reach only the party's own mailbox —
     state no other party touches) and buffers its sends into a private
     outbox, so concurrent steps share {e no} mutable state and the phase
     can be sharded across pool domains;

   - a sequential {e commit} phase on the calling domain that replays the
     outboxes through [send] in ascending sender id, each outbox in send
     order.

   Because [pending] is already bucketed per sender and every counter
   update is commutative (sums, set unions), the committed network state
   is a pure function of {i which} messages each party produced — not of
   shard count or scheduling — so delivery order, bit/locality/message
   accounting, and all later [recv]s are bit-identical at any domain
   count.  See test_net_parallel's differential property.

   Sparse caveat: [Party.recv]/[recv_from]/[recv_one] lazily create and
   reset entries in the shared [states] hash from worker domains, which
   would race.  They do not — a party whose pstate is absent receives
   nothing, and the reset-on-empty path never {e removes} hash entries,
   only mutates the pstate record it found.  The one genuinely shared
   mutation, pstate {e creation}, happens only in [send] (commit phase,
   sequential) and [deliver_sparse] ([step], sequential).  A compute
   phase therefore only ever reads the hash structure and mutates
   per-party records its shard exclusively owns — the same partitioned
   ownership the dense backend gets from array indexing. *)

module Party = struct
  type p = { net : t; me : int; outbox : (int * bytes) Queue.t }

  let id p = p.me
  let recv p = recv p.net ~dst:p.me
  let recv_from p ~src = recv_from p.net ~dst:p.me ~src
  let recv_one p ~src = recv_one p.net ~dst:p.me ~src
  let peek p = peek p.net ~dst:p.me

  let send p ~dst payload =
    (* Validate eagerly (same checks as [send]) so a bad destination
       faults inside the offending party's step, but touch nothing
       shared: the real send happens at commit. *)
    check_party p.net dst "send";
    if p.me = dst then invalid_arg "Net.send: self-send";
    Queue.push (dst, payload) p.outbox
end

let run_round ?pool t ~parties f =
  let ps = Array.of_list parties in
  let len = Array.length ps in
  (* Shard ownership must be exclusive: a duplicated party would be
     stepped by two domains at once.  The membership structure is sized
     to the frontier, not to n — an O(n) scratch array per call would
     dominate at n = 10⁶ with a 100-party frontier. *)
  let check_dup =
    if t.num_parties <= 1 lsl 16 then begin
      let seen = Array.make t.num_parties false in
      fun i ->
        if seen.(i) then invalid_arg "Net.run_round: duplicate party";
        seen.(i) <- true
    end
    else begin
      let seen = Hashtbl.create (2 * max 1 len) in
      fun i ->
        if Hashtbl.mem seen i then invalid_arg "Net.run_round: duplicate party";
        Hashtbl.add seen i ()
    end
  in
  Array.iter
    (fun i ->
      check_party t i "run_round";
      check_dup i)
    ps;
  let handles =
    Array.map (fun me -> { Party.net = t; me; outbox = Queue.create () }) ps
  in
  (* Compute phase. *)
  let results =
    match pool with
    | None ->
      (* Explicit ascending loop: party steps run in list order, exactly
         the pre-run_round sequential code path. *)
      let out = Array.make len None in
      for k = 0 to len - 1 do
        out.(k) <- Some (f handles.(k))
      done;
      Array.map Option.get out
    | Some pool ->
      let nshards = max 1 (min len (Util.Pool.num_domains pool + 1)) in
      (* Size-aware sharding: weight each party by its undrained inbox
         (+1 so empty-inbox parties still count), then greedy-bin-pack so
         a single hot party no longer drags a whole contiguous block onto
         one worker.  Shard composition is deterministic (pure function of
         the inbox sizes, which are jobs-independent) and invisible to the
         output: results land at each party's own index and the commit
         below orders by party id, not by shard. *)
      let weights = Array.map (fun me -> 1 + live_of t me) ps in
      let shards = Util.Pool.pack_bins ~weights ~bins:nshards in
      let out = Array.make len None in
      let (_ : unit array) =
        Util.Pool.map_jobs pool shards (fun shard ->
            Array.iter (fun j -> out.(j) <- Some (f handles.(j))) shard)
      in
      Array.map Option.get out
  in
  (* Commit phase: ascending sender id, each outbox in send order. *)
  let order = Array.init len (fun k -> k) in
  Array.sort (fun a b -> compare ps.(a) ps.(b)) order;
  Array.iter
    (fun k ->
      let h = handles.(k) in
      Queue.iter (fun (dst, payload) -> send t ~src:h.Party.me ~dst payload) h.Party.outbox)
    order;
  Array.to_list results

type snapshot = { snap_bits : int; snap_msgs : int; snap_rounds : int }

let snapshot t =
  { snap_bits = total_bits t; snap_msgs = t.total_messages; snap_rounds = t.round }

let diff_snapshot ~before ~after =
  {
    snap_bits = after.snap_bits - before.snap_bits;
    snap_msgs = after.snap_msgs - before.snap_msgs;
    snap_rounds = after.snap_rounds - before.snap_rounds;
  }
