(* High-throughput core.

   The simulator used to keep one global [pending] list (stable-sorted on
   every [step]) and plain association lists for inboxes (re-reversed and
   partitioned on every [recv_from]).  At the sweep sizes the experiments
   run (n up to 512 and beyond), that bookkeeping dominated wall-clock.

   The rewrite buckets traffic by sender at both ends:

   - [pending.(src)] is a FIFO of [(dst, payload)].  [send] is O(1) and
     [step] delivers by walking sender ids in increasing order — which IS
     the documented delivery order (sender id, then send order), so no
     sort is ever needed.
   - Each recipient keeps an arrival-order [log] (growable array of
     cells) plus per-sender FIFOs of the same cells, built lazily in a
     hash table keyed by sender.  [recv] walks the log once; [recv_from]
     pops only that sender's queue, so it is O(messages from that sender)
     and repeated polling of an empty pair costs O(1).  A cell popped by
     one view is marked dead so the other view skips it.

   Delivery order, accounting, and the external API are identical to the
   list-based implementation (see test_netsim's model-equivalence
   property test). *)

type cell = { c_src : int; c_payload : bytes; mutable c_live : bool }

let dummy_cell = { c_src = -1; c_payload = Bytes.empty; c_live = false }

type inbox = {
  mutable log : cell array; (* arrival order; indices < log_len are valid *)
  mutable log_len : int;
  mutable live : int; (* number of undrained cells in the log *)
  by_sender : cell Queue.t option array; (* indexed by sender id, lazily allocated *)
}

exception Livelock of { rounds : int; max_rounds : int }

let () =
  Printexc.register_printer (function
    | Livelock { rounds; max_rounds } ->
      Some
        (Printf.sprintf "Netsim.Net.Livelock: round clock hit %d (max_rounds = %d)" rounds
           max_rounds)
    | _ -> None)

type t = {
  num_parties : int;
  max_rounds : int option;
  mutable round : int;
  inboxes : inbox array;
  pending : (int * bytes) Queue.t array; (* per sender: (dst, payload) *)
  mutable pending_count : int;
  sent_bits : int array;
  recv_bits : int array;
  peer_bits : bytes array; (* peer_bits.(i): bit j set iff i exchanged with j *)
  mutable total_messages : int;
}

let create ?max_rounds num_parties =
  if num_parties <= 0 then invalid_arg "Net.create: need at least one party";
  (match max_rounds with
  | Some m when m <= 0 -> invalid_arg "Net.create: max_rounds must be positive"
  | _ -> ());
  {
    num_parties;
    max_rounds;
    round = 0;
    inboxes =
      Array.init num_parties (fun _ ->
          { log = [||]; log_len = 0; live = 0; by_sender = Array.make num_parties None });
    pending = Array.init num_parties (fun _ -> Queue.create ());
    pending_count = 0;
    sent_bits = Array.make num_parties 0;
    recv_bits = Array.make num_parties 0;
    peer_bits = Array.init num_parties (fun _ -> Bytes.make ((num_parties + 7) / 8) '\000');
    total_messages = 0;
  }

let n t = t.num_parties

let check_party t i name =
  if i < 0 || i >= t.num_parties then
    invalid_arg (Printf.sprintf "Net.%s: party %d out of range" name i)

(* Peer tracking is a bit per (party, peer): [send] marks two bits with no
   allocation, where the persistent-set version paid two [Iset.add]
   (O(log n) alloc each) on EVERY message — the single hottest line of the
   all-to-all distribute phase under a GC-bound profile. *)
let[@inline] mark_peer t i j =
  let b = t.peer_bits.(i) in
  let k = j lsr 3 in
  Bytes.unsafe_set b k
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b k) lor (1 lsl (j land 7))))

let send t ~src ~dst payload =
  check_party t src "send";
  check_party t dst "send";
  if src = dst then invalid_arg "Net.send: self-send";
  let bits = 8 * Bytes.length payload in
  t.sent_bits.(src) <- t.sent_bits.(src) + bits;
  t.recv_bits.(dst) <- t.recv_bits.(dst) + bits;
  mark_peer t src dst;
  mark_peer t dst src;
  t.total_messages <- t.total_messages + 1;
  Queue.push (dst, payload) t.pending.(src);
  t.pending_count <- t.pending_count + 1

let deliver t ~src ~dst payload =
  let ib = t.inboxes.(dst) in
  let cell = { c_src = src; c_payload = payload; c_live = true } in
  (if ib.log_len = Array.length ib.log then begin
     let grown = Array.make (max 8 (2 * ib.log_len)) dummy_cell in
     Array.blit ib.log 0 grown 0 ib.log_len;
     ib.log <- grown
   end);
  ib.log.(ib.log_len) <- cell;
  ib.log_len <- ib.log_len + 1;
  ib.live <- ib.live + 1;
  let q =
    match ib.by_sender.(src) with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      ib.by_sender.(src) <- Some q;
      q
  in
  Queue.push cell q

let step t =
  (* Livelock watchdog: a fuzzed adversary that keeps a protocol loop
     alive forever should fail diagnosably, not hang CI.  Checked before
     delivery so the raise leaves the clock and mailboxes untouched. *)
  (match t.max_rounds with
  | Some m when t.round >= m -> raise (Livelock { rounds = t.round; max_rounds = m })
  | _ -> ());
  (* Deterministic delivery: senders in increasing id order, each sender's
     messages in send order — no sort required. *)
  if t.pending_count > 0 then begin
    for src = 0 to t.num_parties - 1 do
      let q = t.pending.(src) in
      while not (Queue.is_empty q) do
        let dst, payload = Queue.pop q in
        deliver t ~src ~dst payload
      done
    done;
    t.pending_count <- 0
  end;
  t.round <- t.round + 1

let reset_inbox ib =
  (* Drop cell references so drained payloads can be collected. *)
  for k = 0 to ib.log_len - 1 do
    ib.log.(k) <- dummy_cell
  done;
  ib.log_len <- 0;
  ib.live <- 0

let recv t ~dst =
  check_party t dst "recv";
  let ib = t.inboxes.(dst) in
  if ib.live = 0 then begin
    reset_inbox ib;
    []
  end
  else begin
    let acc = ref [] in
    for k = ib.log_len - 1 downto 0 do
      let c = ib.log.(k) in
      if c.c_live then begin
        c.c_live <- false;
        (match ib.by_sender.(c.c_src) with
        | Some q -> Queue.clear q
        | None -> ());
        acc := (c.c_src, c.c_payload) :: !acc
      end
    done;
    reset_inbox ib;
    !acc
  end

let recv_from t ~dst ~src =
  check_party t dst "recv_from";
  let ib = t.inboxes.(dst) in
  match ib.by_sender.(src) with
  | None -> []
  | Some q ->
    let k = Queue.length q in
    if k = 0 then []
    else begin
      let acc = ref [] in
      while not (Queue.is_empty q) do
        let c = Queue.pop q in
        c.c_live <- false;
        acc := c.c_payload :: !acc
      done;
      ib.live <- ib.live - k;
      if ib.live = 0 then reset_inbox ib;
      List.rev !acc
    end

let recv_one t ~dst ~src =
  check_party t dst "recv_one";
  let ib = t.inboxes.(dst) in
  match ib.by_sender.(src) with
  | None -> None
  | Some q ->
    let k = Queue.length q in
    if k = 0 then None
    else begin
      (* [Some payload] iff exactly one message is queued — the lockstep
         common case — draining the queue either way, so network state
         afterwards is identical to [recv_from] matched against [[v]],
         without the per-call list build. *)
      let result =
        if k = 1 then begin
          let c = Queue.pop q in
          c.c_live <- false;
          Some c.c_payload
        end
        else begin
          while not (Queue.is_empty q) do
            let c = Queue.pop q in
            c.c_live <- false
          done;
          None
        end
      in
      ib.live <- ib.live - k;
      if ib.live = 0 then reset_inbox ib;
      result
    end

let peek t ~dst =
  check_party t dst "peek";
  let ib = t.inboxes.(dst) in
  let acc = ref [] in
  for k = ib.log_len - 1 downto 0 do
    let c = ib.log.(k) in
    if c.c_live then acc := (c.c_src, c.c_payload) :: !acc
  done;
  !acc

let rounds t = t.round

let bits_sent t i =
  check_party t i "bits_sent";
  t.sent_bits.(i)

let bits_received t i =
  check_party t i "bits_received";
  t.recv_bits.(i)

let total_bits t = Array.fold_left ( + ) 0 t.sent_bits
let total_bits_of t parties = List.fold_left (fun acc i -> acc + bits_sent t i) 0 parties

let peers t i =
  check_party t i "peers";
  (* Rebuilt on demand: [peers] is a reporting call (end of run), while
     [send] is the hot loop — the bitmap representation optimizes for the
     latter and reconstitutes the set here. *)
  let b = t.peer_bits.(i) in
  let s = ref Util.Iset.empty in
  for j = t.num_parties - 1 downto 0 do
    if (Char.code (Bytes.unsafe_get b (j lsr 3)) lsr (j land 7)) land 1 = 1 then
      s := Util.Iset.add j !s
  done;
  !s

let popcount8 =
  Array.init 256 (fun v ->
      let c = ref 0 in
      for k = 0 to 7 do
        c := !c + ((v lsr k) land 1)
      done;
      !c)

let locality t i =
  check_party t i "locality";
  let b = t.peer_bits.(i) in
  let c = ref 0 in
  for k = 0 to Bytes.length b - 1 do
    c := !c + Array.unsafe_get popcount8 (Char.code (Bytes.unsafe_get b k))
  done;
  !c

let max_locality t =
  let best = ref 0 in
  for i = 0 to t.num_parties - 1 do
    best := max !best (locality t i)
  done;
  !best

let messages_sent t = t.total_messages

(* ---- Intra-round parallel party stepping ---------------------------- *)

(* [run_round] splits one protocol round into two phases:

   - a {e compute} phase in which every listed party runs its step
     function.  A step may drain its own inbox ([Party.recv],
     [Party.recv_from], [Party.peek] reach only the party's own mailbox —
     state no other party touches) and buffers its sends into a private
     outbox, so concurrent steps share {e no} mutable state and the phase
     can be sharded across pool domains;

   - a sequential {e commit} phase on the calling domain that replays the
     outboxes through [send] in ascending sender id, each outbox in send
     order.

   Because [pending] is already bucketed per sender and every counter
   update is commutative (sums, set unions), the committed network state
   is a pure function of {i which} messages each party produced — not of
   shard count or scheduling — so delivery order, bit/locality/message
   accounting, and all later [recv]s are bit-identical at any domain
   count.  See test_net_parallel's differential property. *)

module Party = struct
  type p = { net : t; me : int; outbox : (int * bytes) Queue.t }

  let id p = p.me
  let recv p = recv p.net ~dst:p.me
  let recv_from p ~src = recv_from p.net ~dst:p.me ~src
  let recv_one p ~src = recv_one p.net ~dst:p.me ~src
  let peek p = peek p.net ~dst:p.me

  let send p ~dst payload =
    (* Validate eagerly (same checks as [send]) so a bad destination
       faults inside the offending party's step, but touch nothing
       shared: the real send happens at commit. *)
    check_party p.net dst "send";
    if p.me = dst then invalid_arg "Net.send: self-send";
    Queue.push (dst, payload) p.outbox
end

let run_round ?pool t ~parties f =
  let ps = Array.of_list parties in
  let len = Array.length ps in
  (* Shard ownership must be exclusive: a duplicated party would be
     stepped by two domains at once. *)
  let seen = Array.make t.num_parties false in
  Array.iter
    (fun i ->
      check_party t i "run_round";
      if seen.(i) then invalid_arg "Net.run_round: duplicate party";
      seen.(i) <- true)
    ps;
  let handles =
    Array.map (fun me -> { Party.net = t; me; outbox = Queue.create () }) ps
  in
  (* Compute phase. *)
  let results =
    match pool with
    | None ->
      (* Explicit ascending loop: party steps run in list order, exactly
         the pre-run_round sequential code path. *)
      let out = Array.make len None in
      for k = 0 to len - 1 do
        out.(k) <- Some (f handles.(k))
      done;
      Array.map Option.get out
    | Some pool ->
      let nshards = max 1 (min len (Util.Pool.num_domains pool + 1)) in
      (* Size-aware sharding: weight each party by its undrained inbox
         (+1 so empty-inbox parties still count), then greedy-bin-pack so
         a single hot party no longer drags a whole contiguous block onto
         one worker.  Shard composition is deterministic (pure function of
         the inbox sizes, which are jobs-independent) and invisible to the
         output: results land at each party's own index and the commit
         below orders by party id, not by shard. *)
      let weights = Array.map (fun me -> 1 + t.inboxes.(me).live) ps in
      let shards = Util.Pool.pack_bins ~weights ~bins:nshards in
      let out = Array.make len None in
      let (_ : unit array) =
        Util.Pool.map_jobs pool shards (fun shard ->
            Array.iter (fun j -> out.(j) <- Some (f handles.(j))) shard)
      in
      Array.map Option.get out
  in
  (* Commit phase: ascending sender id, each outbox in send order. *)
  let order = Array.init len (fun k -> k) in
  Array.sort (fun a b -> compare ps.(a) ps.(b)) order;
  Array.iter
    (fun k ->
      let h = handles.(k) in
      Queue.iter (fun (dst, payload) -> send t ~src:h.Party.me ~dst payload) h.Party.outbox)
    order;
  Array.to_list results

type snapshot = { snap_bits : int; snap_msgs : int; snap_rounds : int }

let snapshot t =
  { snap_bits = total_bits t; snap_msgs = t.total_messages; snap_rounds = t.round }

let diff_snapshot ~before ~after =
  {
    snap_bits = after.snap_bits - before.snap_bits;
    snap_msgs = after.snap_msgs - before.snap_msgs;
    snap_rounds = after.snap_rounds - before.snap_rounds;
  }
