(** Discrete-event asynchronous transport: per-link latency, bounded
    reordering, and an adversarial delivery scheduler — all deterministic
    from one {!Util.Prng.t}.

    Where the synchronous transports deliver {e everything} at the next
    {!Net.step}, this one stamps each submitted message with a delivery
    time on a virtual clock that advances by one tick per [step], so
    traffic straddles rounds, arrives out of order, and can be held back
    by an adversary.  This is the eventual-delivery regime of the
    asynchronous-MPC literature, scaled down to the simulator: the
    paper's round/bit bounds assume lockstep, and the bench's [--async]
    rows measure how far rounds-to-completion drift once delivery is
    merely eventual.

    {b Determinism / replayability.}  Every random choice — latency
    draws, hold decisions, adversarial permutations — comes from
    {!Util.Prng.derive} substreams of the constructor's [rng], keyed by
    the message's submission sequence number and the virtual tick.  The
    schedule is therefore a pure function of [(rng state, config,
    submission sequence)]: the same seed replays the identical
    interleaving, which is what lets the soak runner shrink and replay
    async failures exactly like synchronous ones.

    {b Eventual-delivery fairness.}  A message submitted at tick [s]
    with drawn latency [l] becomes deliverable at [s + l] and {e must}
    be delivered by [s + l + horizon]: the adversary may hold a
    deliverable message for at most [horizon] extra ticks, and every
    latency distribution is capped, so delivery happens within
    {!span}[ cfg] ticks of submission.  {!Net}'s [max_rounds] watchdog
    — a bound on the same virtual clock — therefore remains a livelock
    guard under any adversarial schedule. *)

(** Per-link latency distribution, in virtual ticks (all >= 1; a latency
    of exactly 1 is the synchronous behavior). *)
type latency =
  | Fixed of int  (** every message takes exactly [k] ticks ([k >= 1]) *)
  | Uniform of int * int
      (** uniform in [\[lo, hi\]] inclusive ([1 <= lo <= hi]) *)
  | Heavy_tail of { cap : int }
      (** truncated Pareto-like tail: mostly 1–2 ticks, occasionally up
          to [cap] ([cap >= 1]) — stragglers without unbounded delay *)

(** Who picks the order in which deliverable messages fire. *)
type scheduler =
  | Fifo
      (** canonical order: due tick, then sender id, then submission
          order — with [Fixed 1] latency and [horizon = 0] this is
          exactly the synchronous delivery order *)
  | Adversarial of { hold : float }
      (** the adversary permutes each tick's deliverable set and holds
          any deliverable message with probability [hold] per tick
          ([0 <= hold < 1]), subject to the [horizon] fairness bound *)

type config = { latency : latency; horizon : int; scheduler : scheduler }

(** [Fixed 1] latency, [horizon = 0], [Fifo]: the event machinery
    degenerates to synchronous lockstep — the differential suite pins
    transcript equality with {!Transport.sync_dense} on this config. *)
val zero_latency_fifo : config

(** Largest latency the distribution can draw. *)
val max_latency : latency -> int

(** [span cfg] — the fairness bound: every message is delivered at most
    [span cfg] ticks after submission ([max_latency + horizon]).  A
    protocol phase that steps [span cfg] times (the [?deadline] knob on
    the {!Net.step_until_quiet}-based entry points) observes every
    message sent before the phase began. *)
val span : config -> int

(** Human-readable config, for soak logs and replay output. *)
val config_to_string : config -> string

(** [random_config rng] — draw a soak-sweep configuration (latency kind,
    horizon in [\[0, 2\]], scheduler) from [rng]; advances [rng]. *)
val random_config : Util.Prng.t -> config

(** [transport ~rng cfg] — a fresh event transport.  [rng] is copied at
    construction; the caller's generator is not advanced.  Raises
    [Invalid_argument] on out-of-range config fields. *)
val transport : rng:Util.Prng.t -> config -> Transport.t
