(** Synchronous point-to-point network simulator.

    This is the substrate every protocol in the library runs on.  It models
    exactly the paper's network: [n] parties, a complete graph of private
    point-to-point channels, lockstep synchronous rounds, and {e no}
    broadcast primitive.  A party "broadcasting" must pay [n-1] separate
    messages — which is the entire subject of the paper.

    The simulator accounts, per party:
    - bits sent and received (message payloads, 8 bits per byte),
    - the set of distinct peers communicated with ({b locality}),
    - message counts and round counts.

    Communication complexity is defined as in §3.1 of the paper: the total
    number of bits sent by all parties {e when following the protocol
    honestly}; the experiment harness therefore measures cost on
    honest runs, and separately exercises adversarial runs for the
    correctness/abort properties.

    Performance contract: mailboxes are bucketed by sender, so {!send} is
    O(1), {!step} delivers without sorting (it walks sender ids in
    ascending order, which realizes the documented delivery order
    directly), {!recv} is linear in the messages returned, and
    {!recv_from} is linear in the messages from that one sender rather
    than in the whole inbox.  Peer/locality tracking is a bit per
    (party, peer): {!send} marks two bits allocation-free, and {!peers}
    reconstitutes the set on demand (it is a reporting call, not a hot
    one).

    Two {!type-backend}s realize that contract with different memory
    shapes.  {!Dense} (the default) materializes every party's mailbox,
    counters, and an n²-bit peer bitmap up front — O(1) per operation
    but Θ(n²) resident, which caps runs near n = 2048.  {!Sparse}
    allocates a party's state lazily on first touch (first send to or
    from it) in compact hash- and {!Util.Intset}-backed structures, and
    keeps idle parties as pure aggregate accounting, so memory is
    O(touched parties + in-flight messages) and the sparse-graph
    protocols (Algorithms 5–7) run at n = 10⁵–10⁶.  Every observable —
    delivery order, drain semantics, bit/message/locality/round
    accounting, exceptions — is {e identical} between backends; the
    dense≡sparse differential suite (test_net_sparse) pins that at every
    n both can execute.

    Domain-safety contract: a [t] is single-owner mutable state with no
    internal locking.  Two domains must never touch the same instance;
    one domain may freely own many.  The bench harness's parallel
    scheduler ([Util.Pool]) relies on this: every job creates its own
    network (plus its own [Util.Prng.t] — same contract), which is
    sufficient because no protocol module in the library keeps mutable
    state that outlives a single [run] call.

    {!run_round} extends the contract {e inside} one instance for the
    duration of its compute phase: ownership of [t] is temporarily
    partitioned by party.  A worker domain that has been handed a shard
    of parties exclusively owns those parties' inboxes (the only state
    {!Party.recv}/{!Party.recv_from}/{!Party.peek} mutate) and their
    private outboxes; the network-global state — pending queues, bit and
    locality counters, the round clock — is owned by {e nobody} during
    the compute phase and only mutated by the sequential commit phase on
    the calling domain.  Party step functions must therefore reach the
    network exclusively through their {!Party.p} handle (never through
    the raw [t]), and must not share mutable state with other parties'
    steps; per-party slots of a caller-owned array (index [i] written
    only by party [i]'s step) are safe, as is any immutable or freshly
    allocated state.  {!Util.Pool.map_jobs} supplies the happens-before
    edges between the phases. *)

type t

(** Memory representation — semantics are identical, see the header. *)
type backend =
  | Dense  (** per-party arrays + n²-bit peer bitmap; O(n²) resident *)
  | Sparse  (** lazy per-party state on first touch; O(activity) resident *)

(** Raised by {!step} when the round clock reaches a [max_rounds] bound
    (set at [create] or tightened by {!with_round_limit}) — the livelock
    watchdog for adversarial runs.  The clock it counts is the same
    virtual clock the transports tick on (one tick per {!step}), so
    under {!Event_net} this is a virtual-time bound on the whole
    delivery schedule, not just on lockstep rounds. *)
exception Livelock of { rounds : int; max_rounds : int }

(** [create ?backend ?transport ?max_rounds n] — a fresh network of
    parties [0 .. n-1].  [backend] defaults to {!Dense}.

    [transport] is the delivery schedule ({!Transport.t}); it defaults
    to the synchronous lockstep transport matching [backend]
    ([Transport.sync_dense] / [Transport.sync_sparse]), which preserves
    the historical semantics bit-for-bit.  Pass [Event_net.transport]
    for asynchronous delivery with latency, reordering, and adversarial
    scheduling.

    With [~max_rounds:m] (must be positive), the [m+1]-th {!step} raises
    {!Livelock} instead of advancing, so a protocol driven into an
    unbounded loop by a fault schedule fails with a diagnosable exception
    rather than hanging.  Default: no bound, exactly the old behavior. *)
val create : ?backend:backend -> ?transport:Transport.t -> ?max_rounds:int -> int -> t

val n : t -> int

(** The representation this instance was created with. *)
val backend : t -> backend

(** {1 Sending and receiving} *)

(** [send t ~src ~dst payload] enqueues a message for delivery at the next
    {!step}.  Self-sends are free and forbidden ([Invalid_argument]). *)
val send : t -> src:int -> dst:int -> bytes -> unit

(** [step t] advances the round clock by one tick, delivering whatever
    the transport releases for that tick.  Under the default synchronous
    transports that is {e all} pending messages, readable by their
    recipients in arrival order (deterministic: sorted by sender id,
    then send order); under an event transport, only the messages whose
    schedule says they are due. *)
val step : t -> unit

(** [in_flight t] — messages sent but not yet delivered.  Always zero
    after {!step} on the synchronous transports; may stay positive for
    up to [Event_net.span] ticks on an event transport. *)
val in_flight : t -> int

(** [step_until_quiet ?deadline t] — {!step} once, then keep stepping
    while messages remain in flight, up to [deadline] steps total
    (default 1; must be >= 1).  This is the protocol-level round-timeout
    knob: on a synchronous transport the network quiesces after one step
    so any [deadline] behaves identically to plain {!step} (accounting
    and round counts unchanged), while on an event transport a phase
    that allows [deadline >= Event_net.span cfg] steps observes every
    message sent before the phase began, and a smaller deadline makes
    late messages surface as the protocol's own abort path (missing
    value / failed check) rather than a livelock. *)
val step_until_quiet : ?deadline:int -> t -> unit

(** [steps_remaining t] — how many more {!step}s the watchdog allows
    ([max_int] when unbounded).  Round-driving loops use this to stop
    {e before} tripping {!Livelock} when they have a graceful-degrade
    path. *)
val steps_remaining : t -> int

(** [with_round_limit t ~extra f] runs [f ()] with the watchdog
    tightened to [rounds t + extra] (never loosened: an existing tighter
    bound stays authoritative), restoring the previous bound on exit.
    This is how a protocol with a local round cap (gossip) expresses it
    through the one shared {!Livelock} mechanism instead of a private
    counter.  [extra] must be positive. *)
val with_round_limit : t -> extra:int -> (unit -> 'a) -> 'a

(** [recv t ~dst] drains and returns party [dst]'s inbox as
    [(sender, payload)] pairs. *)
val recv : t -> dst:int -> (int * bytes) list

(** [recv_from t ~dst ~src] — only the messages from [src] (drains just
    those). *)
val recv_from : t -> dst:int -> src:int -> bytes list

(** [recv_one t ~dst ~src] is [Some payload] iff exactly one message from
    [src] is pending (draining the queue in every case, like
    {!recv_from}) — the allocation-free form of matching {!recv_from}
    against a one-element list, for lockstep hot loops. *)
val recv_one : t -> dst:int -> src:int -> bytes option

(** [peek t ~dst] — inbox contents without draining. *)
val peek : t -> dst:int -> (int * bytes) list

(** {1 Intra-round parallel party stepping}

    One protocol round ("every party drains its mailbox, thinks, and
    posts next round's messages") as a two-phase bulk operation: a
    compute phase that may run party steps concurrently on a
    {!Util.Pool}, and a sequential commit phase that realizes the sends.
    The committed state is bit-identical at any domain count — see the
    determinism argument in EXPERIMENTS.md and the domain-safety
    contract above. *)

module Party : sig
  (** A party's capability during a {!run_round} compute phase: its own
      mailbox plus a private outbox.  Handles are only valid inside the
      step function they are passed to. *)
  type p

  val id : p -> int

  (** Same semantics as the network-level {!recv}/{!recv_from}/{!peek},
      restricted to this party's own inbox. *)

  val recv : p -> (int * bytes) list

  val recv_from : p -> src:int -> bytes list
  val recv_one : p -> src:int -> bytes option
  val peek : p -> (int * bytes) list

  (** [send p ~dst payload] buffers a send from this party.  Argument
      validation (range, self-send) happens immediately, with the same
      exceptions as the network-level {!val-send}; the message itself is
      enqueued, metered, and made deliverable only at commit. *)
  val send : p -> dst:int -> bytes -> unit
end

(** [run_round ?pool t ~parties f] steps every party in [parties]
    through [f] and returns the results in list order.

    Compute phase: with [?pool] absent, steps run sequentially in list
    order — today's plain per-party loop.  With [~pool], [parties] is cut
    into one shard per pool domain (the calling domain included), and
    shards run concurrently; each party may drain its own inbox and
    buffer sends through its {!Party.p} handle, touching no shared state.

    {b Size-aware sharding.}  Shards are not contiguous equal-count
    blocks: each party is weighted by its undrained inbox size and the
    parties are greedy-bin-packed ([Util.Pool.pack_bins], heaviest first
    into the lightest shard), so a hot party — one addressed by everyone
    this round — ends up isolated in its own shard instead of
    serializing a whole contiguous block behind it.  The packing is a
    deterministic function of the inbox sizes (themselves identical at
    any jobs count) and is unobservable in the output: results land at
    each party's own index in the returned list and the commit below
    orders by party id, never by shard.

    Commit phase (always sequential, on the calling domain): outboxes
    are replayed through {!val-send} in ascending {e sender id}, each in
    send order.  Since delivery is bucketed per sender and all counter
    updates commute, every observable — delivery order, per-party bit
    counters, locality sets, message and round counts — is identical to
    the sequential run at any domain count.

    [run_round] does not advance the round clock; call {!step} to
    deliver the committed messages, as after plain {!val-send}s.

    Raises [Invalid_argument] on an out-of-range or duplicated party.
    If a step raises, the exception propagates deterministically (the
    first offending party in list order when sequential; the first
    offending shard in shard order under a pool) and {e no} sends are
    committed. *)
val run_round : ?pool:Util.Pool.t -> t -> parties:int list -> (Party.p -> 'a) -> 'a list

(** {1 Accounting} *)

val rounds : t -> int

(** [bits_sent t i] — total payload bits sent by party [i] so far. *)
val bits_sent : t -> int -> int

val bits_received : t -> int -> int

(** [total_bits t] — sum over all parties of bits sent. *)
val total_bits : t -> int

(** [total_bits_of t parties] — bits sent by the given parties only (used to
    report honest-only communication). *)
val total_bits_of : t -> int list -> int

(** [peers t i] — the set of parties [i] has sent to or received from. *)
val peers : t -> int -> Util.Iset.t

(** [locality t i] — [|peers t i|]. *)
val locality : t -> int -> int

(** [max_locality t] — the protocol's locality in the paper's sense. *)
val max_locality : t -> int

val messages_sent : t -> int

(** [active_parties t] — the ids of parties with at least one undrained
    delivered message, in increasing order: the frontier a round-driving
    loop should iterate instead of [0 .. n-1].  Cost is O(touched
    parties) on the sparse backend (and O(n) on dense, where n is small
    by construction).  A party whose step is a no-op on an empty inbox
    is unobservable either way, so restricting a round to this frontier
    is exact, not an approximation. *)
val active_parties : t -> int list

(** [snapshot t] captures current counters; [diff_snapshot] subtracts two
    snapshots so a protocol phase can be metered in isolation. *)
type snapshot = { snap_bits : int; snap_msgs : int; snap_rounds : int }

val snapshot : t -> snapshot
val diff_snapshot : before:snapshot -> after:snapshot -> snapshot
