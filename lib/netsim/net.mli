(** Synchronous point-to-point network simulator.

    This is the substrate every protocol in the library runs on.  It models
    exactly the paper's network: [n] parties, a complete graph of private
    point-to-point channels, lockstep synchronous rounds, and {e no}
    broadcast primitive.  A party "broadcasting" must pay [n-1] separate
    messages — which is the entire subject of the paper.

    The simulator accounts, per party:
    - bits sent and received (message payloads, 8 bits per byte),
    - the set of distinct peers communicated with ({b locality}),
    - message counts and round counts.

    Communication complexity is defined as in §3.1 of the paper: the total
    number of bits sent by all parties {e when following the protocol
    honestly}; the experiment harness therefore measures cost on
    honest runs, and separately exercises adversarial runs for the
    correctness/abort properties.

    Performance contract: mailboxes are bucketed by sender, so {!send} is
    O(1), {!step} delivers without sorting (it walks sender ids in
    ascending order, which realizes the documented delivery order
    directly), {!recv} is linear in the messages returned, and
    {!recv_from} is linear in the messages from that one sender rather
    than in the whole inbox.

    Domain-safety contract: a [t] is single-owner mutable state with no
    internal locking.  Two domains must never touch the same instance;
    one domain may freely own many.  The bench harness's parallel
    scheduler ([Util.Pool]) relies on this: every job creates its own
    network (plus its own [Util.Prng.t] — same contract), which is
    sufficient because no protocol module in the library keeps mutable
    state that outlives a single [run] call. *)

type t

(** [create n] — a fresh network of parties [0 .. n-1]. *)
val create : int -> t

val n : t -> int

(** {1 Sending and receiving} *)

(** [send t ~src ~dst payload] enqueues a message for delivery at the next
    {!step}.  Self-sends are free and forbidden ([Invalid_argument]). *)
val send : t -> src:int -> dst:int -> bytes -> unit

(** [step t] delivers all pending messages and advances the round clock.
    Messages become readable by their recipients in arrival order
    (deterministic: sorted by sender id, then send order). *)
val step : t -> unit

(** [recv t ~dst] drains and returns party [dst]'s inbox as
    [(sender, payload)] pairs. *)
val recv : t -> dst:int -> (int * bytes) list

(** [recv_from t ~dst ~src] — only the messages from [src] (drains just
    those). *)
val recv_from : t -> dst:int -> src:int -> bytes list

(** [peek t ~dst] — inbox contents without draining. *)
val peek : t -> dst:int -> (int * bytes) list

(** {1 Accounting} *)

val rounds : t -> int

(** [bits_sent t i] — total payload bits sent by party [i] so far. *)
val bits_sent : t -> int -> int

val bits_received : t -> int -> int

(** [total_bits t] — sum over all parties of bits sent. *)
val total_bits : t -> int

(** [total_bits_of t parties] — bits sent by the given parties only (used to
    report honest-only communication). *)
val total_bits_of : t -> int list -> int

(** [peers t i] — the set of parties [i] has sent to or received from. *)
val peers : t -> int -> Util.Iset.t

(** [locality t i] — [|peers t i|]. *)
val locality : t -> int -> int

(** [max_locality t] — the protocol's locality in the paper's sense. *)
val max_locality : t -> int

val messages_sent : t -> int

(** [snapshot t] captures current counters; [diff_snapshot] subtracts two
    snapshots so a protocol phase can be metered in isolation. *)
type snapshot = { snap_bits : int; snap_msgs : int; snap_rounds : int }

val snapshot : t -> snapshot
val diff_snapshot : before:snapshot -> after:snapshot -> snapshot
