type t = {
  name : string;
  submit : src:int -> dst:int -> bytes -> unit;
  advance : deliver:(src:int -> dst:int -> bytes -> unit) -> unit;
  in_flight : unit -> int;
}

(* Both synchronous transports are the pending-message structures that
   used to live inside [Net.t], moved behind the interface unchanged:
   delivery order (ascending sender id, then send order) and per-call
   costs are identical, which the committed bench baselines gate. *)

let sync_dense ~n =
  let pending = Array.init n (fun _ -> Queue.create ()) in
  let count = ref 0 in
  {
    name = "sync";
    submit =
      (fun ~src ~dst payload ->
        Queue.push (dst, payload) pending.(src);
        incr count);
    advance =
      (fun ~deliver ->
        if !count > 0 then begin
          for src = 0 to n - 1 do
            let q = pending.(src) in
            while not (Queue.is_empty q) do
              let dst, payload = Queue.pop q in
              deliver ~src ~dst payload
            done
          done;
          count := 0
        end);
    in_flight = (fun () -> !count);
  }

let sync_sparse () =
  let pending : (int, (int * bytes) Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let count = ref 0 in
  {
    name = "sync";
    submit =
      (fun ~src ~dst payload ->
        let q =
          match Hashtbl.find_opt pending src with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.add pending src q;
            q
        in
        Queue.push (dst, payload) q;
        incr count);
    advance =
      (fun ~deliver ->
        if !count > 0 then begin
          let srcs = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) pending []) in
          List.iter
            (fun src ->
              let q = Hashtbl.find pending src in
              while not (Queue.is_empty q) do
                let dst, payload = Queue.pop q in
                deliver ~src ~dst payload
              done)
            srcs;
          Hashtbl.reset pending;
          count := 0
        end);
    in_flight = (fun () -> !count);
  }
