module Codec = Util.Codec

exception Worker_lost of string

type party_step = round:int -> inbox:(int * bytes) list -> send:(dst:int -> bytes -> unit) -> bytes option
type program = n:int -> args:bytes -> me:int -> party_step

let programs : (string, program) Hashtbl.t = Hashtbl.create 8
let jobs_registry : (string, bytes -> bytes) Hashtbl.t = Hashtbl.create 8
let register_program name make = Hashtbl.replace programs name make
let register_job name f = Hashtbl.replace jobs_registry name f

let find_program name =
  match Hashtbl.find_opt programs name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Dist: program %S is not registered" name)

(* ---- frame tags ---- *)

let tag_start = 1 (* C->W: open a program session *)
let tag_scatter = 2 (* C->W: one round's inbound batch *)
let tag_job = 3 (* C->W: one-shot job *)
let tag_shutdown = 4 (* C->W *)
let tag_gather = 5 (* W->C: one round's outbound sends + new verdicts *)
let tag_job_resp = 6 (* W->C *)
let tag_stat_req = 7 (* C->W *)
let tag_stat_resp = 8 (* W->C *)

(* ---- worker side ---- *)

let vmhwm_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec go () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          try Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" (fun kb ->
                  Some (float_of_int kb /. 1024.))
          with Scanf.Scan_failure _ | Failure _ -> None
        else go ()
      | exception End_of_file -> None
    in
    let r = go () in
    close_in ic;
    r

type wsession = {
  slot_of : (int, int) Hashtbl.t; (* party id -> index in [steps] *)
  steps : party_step array;
  finished : bool array;
  mutable remaining : int;
}

(* Step the listed parties (already in ascending id order) and return
   (sends as (src, dst, payload) in canonical order, new verdicts). *)
let run_shard_round s ~round msgs =
  let send_batches = ref [] (* reverse party order; each batch in call order *) in
  let newly_done = ref [] in
  List.iter
    (fun (p, inbox) ->
      match Hashtbl.find_opt s.slot_of p with
      | None -> ()
      | Some k ->
        if not s.finished.(k) then begin
          let out = ref [] in
          let send ~dst payload = out := (p, dst, payload) :: !out in
          (match s.steps.(k) ~round ~inbox ~send with
          | Some v ->
            s.finished.(k) <- true;
            s.remaining <- s.remaining - 1;
            newly_done := (p, v) :: !newly_done
          | None -> ());
          send_batches := List.rev !out :: !send_batches
        end)
    msgs;
  (List.concat (List.rev !send_batches), List.rev !newly_done)

let worker_loop wire =
  let sessions : (int, wsession) Hashtbl.t = Hashtbl.create 4 in
  let write_gather w ~sid ~round (sends, newly_done) =
    Codec.write_byte w tag_gather;
    Codec.write_varint w sid;
    Codec.write_varint w round;
    Codec.write_list w
      (fun w (src, dst, payload) ->
        Codec.write_varint w src;
        Codec.write_varint w dst;
        Codec.write_bytes w payload)
      sends;
    Codec.write_list w
      (fun w (p, v) ->
        Codec.write_varint w p;
        Codec.write_bytes w v)
      newly_done
  in
  let rec loop () =
    let continue_ =
      Wire.recv wire (fun r ->
          match Codec.read_byte r with
          | 1 (* start *) ->
            let sid = Codec.read_varint r in
            let name = Codec.read_string r in
            let n = Codec.read_varint r in
            let args = Codec.read_bytes r in
            let parties = Codec.read_array r Codec.read_varint in
            let make = find_program name in
            let slot_of = Hashtbl.create (Array.length parties) in
            Array.iteri (fun k p -> Hashtbl.replace slot_of p k) parties;
            Hashtbl.replace sessions sid
              {
                slot_of;
                steps = Array.map (fun me -> make ~n ~args ~me) parties;
                finished = Array.make (Array.length parties) false;
                remaining = Array.length parties;
              };
            true
          | 2 (* scatter *) ->
            let sid = Codec.read_varint r in
            let round = Codec.read_varint r in
            let replay = Codec.read_bool r in
            let crash = Codec.read_bool r in
            let msgs =
              Codec.read_list r (fun r ->
                  let p = Codec.read_varint r in
                  let inbox =
                    Codec.read_list r (fun r ->
                        let src = Codec.read_varint r in
                        let payload = Codec.read_bytes r in
                        (src, payload))
                  in
                  (p, inbox))
            in
            if crash && not replay then Unix._exit 42;
            let result =
              match Hashtbl.find_opt sessions sid with
              | None -> ([], []) (* whole shard finished earlier: empty ack *)
              | Some s ->
                let res = run_shard_round s ~round msgs in
                if s.remaining = 0 then Hashtbl.remove sessions sid;
                res
            in
            if not replay then
              Wire.send wire (fun w -> write_gather w ~sid ~round result);
            true
          | 3 (* job *) ->
            let jid = Codec.read_varint r in
            let name = Codec.read_string r in
            let args = Codec.read_bytes r in
            let crash = Codec.read_bool r in
            if crash then Unix._exit 42;
            let f =
              match Hashtbl.find_opt jobs_registry name with
              | Some f -> f
              | None -> invalid_arg (Printf.sprintf "Dist: job %S is not registered" name)
            in
            let result = f args in
            Wire.send wire (fun w ->
                Codec.write_byte w tag_job_resp;
                Codec.write_varint w jid;
                Codec.write_bytes w result);
            true
          | 7 (* stat request *) ->
            Wire.send wire (fun w ->
                Codec.write_byte w tag_stat_resp;
                Codec.write_option w
                  (fun w rss -> Codec.write_int64 w (Int64.bits_of_float rss))
                  (vmhwm_mb ()));
            true
          | 4 (* shutdown *) -> false
          | tag -> failwith (Printf.sprintf "dist worker: unknown frame tag %d" tag))
    in
    if continue_ then loop ()
  in
  loop ()

(* ---- coordinator side ---- *)

type slot = {
  mutable pid : int;
  mutable wire : Wire.t;
  mutable jobs_run : int;
  mutable session_count : int;
  mutable respawns : int;
}

type t = {
  slots : slot array;
  mutable spares : (int * Wire.t) list;
  mutable next_sid : int;
  mutable alive : bool;
  timeout : float option; (* heartbeat: max seconds a busy worker may stay silent *)
}

type stat = {
  pid : int;
  jobs_run : int;
  sessions : int;
  respawns : int;
  peak_rss_mb : float option;
}

let workers t = Array.length t.slots
let worker_pids t = Array.map (fun (s : slot) -> s.pid) t.slots

let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* A worker declared dead by the heartbeat may still be alive — stopped
   by a signal, or wedged in a loop — and such a process never EOFs its
   socket, and [reap]'s blocking waitpid would hang on it forever.  So
   the timeout paths SIGKILL first: after that the child is a zombie and
   promote's close-and-reap runs to completion.  Kill errors (ESRCH: it
   really did die in the meantime) are ignored. *)
let kill_silent pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let create ?(spares = 2) ?worker_timeout_s ~workers () =
  if workers < 1 then invalid_arg "Dist.create: workers must be >= 1";
  if spares < 0 then invalid_arg "Dist.create: spares must be >= 0";
  (match worker_timeout_s with
  | Some dt when dt <= 0.0 -> invalid_arg "Dist.create: worker_timeout_s must be > 0"
  | _ -> ());
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Parent-side fds created so far: each child closes every one it
     inherited, so a worker's death is visible to the coordinator as a
     clean EOF (no stray copy keeps the pair open). *)
  let parent_fds = ref [] in
  let spawn () =
    let pfd, cfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.fork () with
    | 0 ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !parent_fds;
      Unix.close pfd;
      (* _exit, never exit: the child inherited the parent's stdio
         buffers and at_exit handlers and must not run them. *)
      (try worker_loop (Wire.of_fd cfd) with
      | Wire.Closed -> Unix._exit 0
      | exn ->
        prerr_endline ("dist worker: " ^ Printexc.to_string exn);
        Unix._exit 3);
      Unix._exit 0
    | pid ->
      Unix.close cfd;
      parent_fds := pfd :: !parent_fds;
      (pid, Wire.of_fd pfd)
  in
  let slots =
    Array.init workers (fun _ ->
        let pid, wire = spawn () in
        { pid; wire; jobs_run = 0; session_count = 0; respawns = 0 })
  in
  let spares = List.init spares (fun _ -> spawn ()) in
  { slots; spares; next_sid = 0; alive = true; timeout = worker_timeout_s }

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    let stop wire pid =
      (try Wire.send wire (fun w -> Codec.write_byte w tag_shutdown) with
      | Wire.Closed -> ());
      (try Wire.close wire with Wire.Closed -> ());
      reap pid
    in
    Array.iter (fun s -> stop s.wire s.pid) t.slots;
    List.iter (fun (pid, wire) -> stop wire pid) t.spares;
    t.spares <- []
  end

(* Replace a dead worker with a spare; the caller replays its history. *)
let promote t w reason =
  let s = t.slots.(w) in
  (try Wire.close s.wire with Wire.Closed -> ());
  reap s.pid;
  match t.spares with
  | [] -> raise (Worker_lost (Printf.sprintf "worker %d died (%s); no spare left" w reason))
  | (pid, wire) :: rest ->
    t.spares <- rest;
    s.pid <- pid;
    s.wire <- wire;
    s.respawns <- s.respawns + 1

let check_alive t fn =
  if not t.alive then invalid_arg (Printf.sprintf "Dist.%s: engine is shut down" fn)

(* The shared coordinator loop.  [scatter w round msgs] delivers one
   round's inbound batch to shard [w] and [gather w] collects its
   (sends, newly_done); in the multi-process engine these are wire
   frames, in [run_local] direct calls.  Everything downstream of the
   merge is identical, which is the byte-identity argument in one
   place. *)
let coordinate ~name ~n ~net ~shards ~scatter ~gather =
  let nw = Array.length shards in
  let verdicts = Array.make n Bytes.empty in
  let have = Array.make n false in
  let done_count = ref 0 in
  let inboxes = Array.make n [] in
  let round = ref 0 in
  let rec loop () =
    let cur =
      Array.map
        (fun shard ->
          Array.to_list shard
          |> List.filter_map (fun p -> if have.(p) then None else Some (p, inboxes.(p))))
        shards
    in
    for w = 0 to nw - 1 do
      scatter w !round cur.(w)
    done;
    let per_worker = Array.init nw (fun w -> gather w !round cur.(w)) in
    (* Canonical merge: each worker's batch is already sender-ascending
       (it steps its parties in ascending id order), so a stable sort by
       sender reconstructs the exact in-process send sequence. *)
    let merged =
      List.stable_sort
        (fun (a, _, _) (b, _, _) -> compare a b)
        (List.concat_map fst (Array.to_list per_worker))
    in
    Array.iter
      (fun (_, newly_done) ->
        List.iter
          (fun (p, v) ->
            if not have.(p) then begin
              have.(p) <- true;
              verdicts.(p) <- v;
              incr done_count
            end)
          newly_done)
      per_worker;
    if merged <> [] then begin
      List.iter (fun (src, dst, payload) -> Net.send net ~src ~dst payload) merged;
      Net.step net;
      for p = 0 to n - 1 do
        let inbox = Net.recv net ~dst:p in
        inboxes.(p) <- (if have.(p) then [] else inbox)
      done
    end
    else Array.fill inboxes 0 n [];
    if !done_count < n then
      if merged = [] then
        failwith
          (Printf.sprintf "Dist %s: no progress at round %d with %d parties unfinished" name
             !round (n - !done_count))
      else begin
        incr round;
        loop ()
      end
  in
  loop ();
  verdicts

let ones n = Array.make n 1

let run_local ~name ~n ~args ~net =
  let make = find_program name in
  let session =
    {
      slot_of =
        (let h = Hashtbl.create n in
         for p = 0 to n - 1 do
           Hashtbl.replace h p p
         done;
         h);
      steps = Array.init n (fun me -> make ~n ~args ~me);
      finished = Array.make n false;
      remaining = n;
    }
  in
  let shards = [| Array.init n (fun p -> p) |] in
  let result = ref ([], []) in
  coordinate ~name ~n ~net ~shards
    ~scatter:(fun _ round msgs -> result := run_shard_round session ~round msgs)
    ~gather:(fun _ _ _ -> !result)

let run_program ?crash t ~name ~n ~args ~net =
  check_alive t "run_program";
  ignore (find_program name : program);
  let nw = Array.length t.slots in
  let shards = Util.Pool.pack_bins ~weights:(ones n) ~bins:nw in
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let history = Array.make nw [] (* reversed (round, msgs) per worker *) in
  let crashed_once = ref false in
  let send_start w =
    Wire.send t.slots.(w).wire (fun wr ->
        Codec.write_byte wr tag_start;
        Codec.write_varint wr sid;
        Codec.write_string wr name;
        Codec.write_varint wr n;
        Codec.write_bytes wr args;
        Codec.write_array wr Codec.write_varint shards.(w))
  in
  let scatter_frame wr ~round ~replay ~crash msgs =
    Codec.write_byte wr tag_scatter;
    Codec.write_varint wr sid;
    Codec.write_varint wr round;
    Codec.write_bool wr replay;
    Codec.write_bool wr crash;
    Codec.write_list wr
      (fun wr (p, inbox) ->
        Codec.write_varint wr p;
        Codec.write_list wr
          (fun wr (src, payload) ->
            Codec.write_varint wr src;
            Codec.write_bytes wr payload)
          inbox)
      msgs
  in
  let send_scatter w ~round ~crash msgs =
    Wire.send t.slots.(w).wire (fun wr -> scatter_frame wr ~round ~replay:false ~crash msgs)
  in
  (* Rebuild a dead worker on a spare: fresh Start, full history as
     replay frames (no gathers), then the current round live. *)
  let recover w ~round ~cur_msgs reason =
    promote t w reason;
    try
      send_start w;
      List.iter
        (fun (r, msgs) ->
          Wire.send t.slots.(w).wire (fun wr ->
              scatter_frame wr ~round:r ~replay:true ~crash:false msgs))
        (List.rev history.(w));
      send_scatter w ~round ~crash:false cur_msgs
    with Wire.Closed ->
      raise (Worker_lost (Printf.sprintf "worker %d replacement died during replay" w))
  in
  (* [None] = heartbeat timeout: the worker is busy but has stayed
     silent past [worker_timeout_s].  Without a timeout this blocks
     indefinitely, as before. *)
  let read_gather w ~round =
    let dec r =
        let tag = Codec.read_byte r in
        if tag <> tag_gather then
          failwith (Printf.sprintf "dist: expected gather from worker %d, got tag %d" w tag);
        let g_sid = Codec.read_varint r in
        let g_round = Codec.read_varint r in
        if g_sid <> sid || g_round <> round then
          failwith
            (Printf.sprintf "dist: gather (sid %d, round %d) from worker %d, wanted (%d, %d)"
               g_sid g_round w sid round);
        let sends =
          Codec.read_list r (fun r ->
              let src = Codec.read_varint r in
              let dst = Codec.read_varint r in
              let payload = Codec.read_bytes r in
              (src, dst, payload))
        in
        let newly_done =
          Codec.read_list r (fun r ->
              let p = Codec.read_varint r in
              let v = Codec.read_bytes r in
              (p, v))
        in
        (sends, newly_done)
    in
    match t.timeout with
    | None -> Some (Wire.recv t.slots.(w).wire dec)
    | Some dt -> Wire.recv_deadline t.slots.(w).wire ~deadline:(Unix.gettimeofday () +. dt) dec
  in
  Array.iteri
    (fun w s ->
      s.session_count <- s.session_count + 1;
      try send_start w
      with Wire.Closed ->
        promote t w "died before session start";
        send_start w)
    t.slots;
  coordinate ~name ~n ~net ~shards
    ~scatter:(fun w round msgs ->
      let crash_here =
        match crash with
        | Some (cw, cr) -> cw = w && cr = round && not !crashed_once
        | None -> false
      in
      if crash_here then crashed_once := true;
      try send_scatter w ~round ~crash:crash_here msgs
      with Wire.Closed -> recover w ~round ~cur_msgs:msgs "send failed")
    ~gather:(fun w round msgs ->
      let replacement_read () =
        match read_gather w ~round with
        | Some v -> v
        | None ->
          kill_silent t.slots.(w).pid;
          raise (Worker_lost (Printf.sprintf "worker %d replacement silent mid-round" w))
        | exception Wire.Closed ->
          raise (Worker_lost (Printf.sprintf "worker %d replacement died mid-round" w))
      in
      let result =
        match read_gather w ~round with
        | Some v -> v
        | None ->
          (* Alive-but-silent worker: SIGKILL it (a stopped process
             never EOFs, and reaping it would block), then promote a
             spare and replay as for a crash. *)
          kill_silent t.slots.(w).pid;
          recover w ~round ~cur_msgs:msgs "silent past heartbeat";
          replacement_read ()
        | exception Wire.Closed ->
          recover w ~round ~cur_msgs:msgs "died mid-round";
          replacement_read ()
      in
      history.(w) <- (round, msgs) :: history.(w);
      result)

let run_jobs ?crash t jobs =
  check_alive t "run_jobs";
  let jobs = Array.of_list jobs in
  let m = Array.length jobs in
  let nw = Array.length t.slots in
  let results = Array.make m Bytes.empty in
  let next = ref 0 in
  let current = Array.make nw None in
  let started = Array.make nw 0.0 (* dispatch time, for the heartbeat *) in
  let outstanding = ref 0 in
  let crashed_once = ref false in
  let send_job w j =
    let name, args = jobs.(j) in
    let crash_here = crash = Some j && not !crashed_once in
    if crash_here then crashed_once := true;
    let rec attempt retried =
      try
        Wire.send t.slots.(w).wire (fun wr ->
            Codec.write_byte wr tag_job;
            Codec.write_varint wr j;
            Codec.write_string wr name;
            Codec.write_bytes wr args;
            Codec.write_bool wr crash_here)
      with Wire.Closed ->
        promote t w "died before job dispatch";
        if retried then
          raise (Worker_lost (Printf.sprintf "worker %d replacement died before job %d" w j))
        else attempt true
    in
    attempt false;
    current.(w) <- Some j;
    started.(w) <- Unix.gettimeofday ();
    incr outstanding;
    t.slots.(w).jobs_run <- t.slots.(w).jobs_run + 1
  in
  let dispatch w =
    if !next < m then begin
      let j = !next in
      incr next;
      send_job w j
    end
  in
  for w = 0 to nw - 1 do
    dispatch w
  done;
  while !outstanding > 0 do
    let busy = List.filter (fun w -> current.(w) <> None) (List.init nw (fun w -> w)) in
    (* A buffered frame makes the fd look idle to select — drain those
       workers first. *)
    let ready =
      match List.filter (fun w -> Wire.has_buffered_frame t.slots.(w).wire) busy with
      | [] ->
        let fds = List.map (fun w -> Wire.fd t.slots.(w).wire) busy in
        (* With a heartbeat the wait is bounded by the earliest busy
           worker's deadline instead of the historical select(-1.) —
           this is the coordinator's only liveness guard against a
           worker that is alive but silent. *)
        let stall =
          match t.timeout with
          | None -> -1.
          | Some dt ->
            let now = Unix.gettimeofday () in
            let earliest =
              List.fold_left (fun acc w -> min acc (started.(w) +. dt)) infinity busy
            in
            max 0.0 (earliest -. now)
        in
        let readable, _, _ =
          try Unix.select fds [] [] stall
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.filter (fun w -> List.memq (Wire.fd t.slots.(w).wire) readable) busy
      | buffered -> buffered
    in
    (* Heartbeat expiry: any busy worker silent past the timeout with
       still nothing readable is treated as dead — SIGKILL (it may be
       merely stopped, and a stopped child never EOFs), promote a spare,
       re-dispatch its job. *)
    (match t.timeout with
    | Some dt when ready = [] ->
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          if now -. started.(w) >= dt then begin
            let j = match current.(w) with Some j -> j | None -> assert false in
            kill_silent t.slots.(w).pid;
            promote t w (Printf.sprintf "silent past %.3fs heartbeat on job %d" dt j);
            current.(w) <- None;
            decr outstanding;
            send_job w j
          end)
        busy
    | _ -> ());
    List.iter
      (fun w ->
        match
          Wire.recv t.slots.(w).wire (fun r ->
              let tag = Codec.read_byte r in
              if tag <> tag_job_resp then
                failwith (Printf.sprintf "dist: expected job response, got tag %d" tag);
              let jid = Codec.read_varint r in
              let result = Codec.read_bytes r in
              (jid, result))
        with
        | jid, result ->
          results.(jid) <- result;
          current.(w) <- None;
          decr outstanding;
          dispatch w
        | exception Wire.Closed ->
          (* Worker died running its job: promote a spare and re-dispatch
             the same job (crash flag already consumed, so it runs clean). *)
          let j = match current.(w) with Some j -> j | None -> assert false in
          promote t w (Printf.sprintf "died running job %d" j);
          current.(w) <- None;
          decr outstanding;
          send_job w j)
      ready
  done;
  Array.to_list results

let stats t =
  check_alive t "stats";
  Array.map
    (fun s ->
      let rss =
        try
          Wire.send s.wire (fun w -> Codec.write_byte w tag_stat_req);
          Wire.recv s.wire (fun r ->
              let tag = Codec.read_byte r in
              if tag <> tag_stat_resp then
                failwith (Printf.sprintf "dist: expected stat response, got tag %d" tag);
              Codec.read_option r (fun r -> Int64.float_of_bits (Codec.read_int64 r)))
        with Wire.Closed -> None
      in
      {
        pid = s.pid;
        jobs_run = s.jobs_run;
        sessions = s.session_count;
        respawns = s.respawns;
        peak_rss_mb = rss;
      })
    t.slots
