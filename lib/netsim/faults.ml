type kind = Drop | Duplicate | Flip | Truncate | Replay | Equivocate | Crash

let all_kinds = [ Drop; Duplicate; Flip; Truncate; Replay; Equivocate; Crash ]

let kind_to_string = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Flip -> "flip"
  | Truncate -> "truncate"
  | Replay -> "replay"
  | Equivocate -> "equivocate"
  | Crash -> "crash"

type spec = {
  drop : float;
  duplicate : float;
  flip : float;
  truncate : float;
  replay : float;
  equivocate : float;
  crash : float;
  crash_stage : int;
}

let honest =
  {
    drop = 0.0;
    duplicate = 0.0;
    flip = 0.0;
    truncate = 0.0;
    replay = 0.0;
    equivocate = 0.0;
    crash = 0.0;
    crash_stage = 8;
  }

let random_spec rng =
  (* Enabled kinds get a probability in [0.05, 0.5]: low enough that most
     messages still flow (the interesting executions are mostly-working
     ones), high enough that every enabled kind actually fires within a
     schedule. *)
  let p () = if Util.Prng.bool rng then 0.05 +. (0.45 *. Util.Prng.float rng) else 0.0 in
  let drop = p () in
  let duplicate = p () in
  let flip = p () in
  let truncate = p () in
  let replay = p () in
  let equivocate = p () in
  let crash = p () in
  let crash_stage = Util.Prng.int_in rng 1 8 in
  { drop; duplicate; flip; truncate; replay; equivocate; crash; crash_stage }

let prob s = function
  | Drop -> s.drop
  | Duplicate -> s.duplicate
  | Flip -> s.flip
  | Truncate -> s.truncate
  | Replay -> s.replay
  | Equivocate -> s.equivocate
  | Crash -> s.crash

let disable k s =
  match k with
  | Drop -> { s with drop = 0.0 }
  | Duplicate -> { s with duplicate = 0.0 }
  | Flip -> { s with flip = 0.0 }
  | Truncate -> { s with truncate = 0.0 }
  | Replay -> { s with replay = 0.0 }
  | Equivocate -> { s with equivocate = 0.0 }
  | Crash -> { s with crash = 0.0 }

let enabled s = List.filter (fun k -> prob s k > 0.0) all_kinds

let spec_to_string s =
  let parts =
    List.filter_map
      (fun k ->
        if prob s k = 0.0 then None
        else if k = Crash then Some (Printf.sprintf "crash=%.2f@<=%d" s.crash s.crash_stage)
        else Some (Printf.sprintf "%s=%.2f" (kind_to_string k) (prob s k)))
      all_kinds
  in
  if parts = [] then "honest" else String.concat " " parts

let value_prob s = min 1.0 (s.flip +. s.truncate +. s.replay +. s.equivocate)

type t = {
  base : Util.Prng.t; (* never advanced: decision streams derive from it *)
  sched : int;
  sp : spec;
  crash_at : int array; (* per party; max_int = never crashes *)
  last : bytes option array; (* per-party replay slot, owner-step mutated *)
}

(* Fold decision coordinates into one [derive] key.  [derive] pushes the
   key through two SplitMix64 steps, so a cheap multiply-xor combine is
   enough to separate slots; collisions merely correlate two decisions,
   they cannot break reproducibility. *)
let mix acc x = (acc * 0x9E3779B1) lxor (x + 0x7F4A7C15)

let key4 a b c d = mix (mix (mix (mix 0x5EED a) b) c) d

let make rng ~schedule ~n sp =
  if n <= 0 then invalid_arg "Faults.make: need at least one party";
  let base = Util.Prng.derive rng ~key:(mix 0x0FA17 schedule) in
  let crash_at =
    Array.init n (fun i ->
        let r = Util.Prng.derive base ~key:(key4 0 i 0 0) in
        if Util.Prng.bernoulli r sp.crash then Util.Prng.int_in r 1 (max 1 sp.crash_stage)
        else max_int)
  in
  { base; sched = schedule; sp; crash_at; last = Array.make n None }

let spec t = t.sp
let schedule t = t.sched
let n t = Array.length t.crash_at

let stream t ~stage ~me ~dst ~salt =
  Util.Prng.derive t.base ~key:(mix (key4 salt stage me dst) 1)

(* A slot no per-message decision uses: the whole-network scheduler is a
   property of the schedule, not of any (stage, party, recipient). *)
let scheduler_stream t = stream t ~stage:max_int ~me:(-1) ~dst:(-1) ~salt:0x5C4ED

let crashed t ~me ~stage =
  if me < 0 || me >= Array.length t.crash_at then false else stage >= t.crash_at.(me)

let drops t ~stage ~me ~dst =
  crashed t ~me ~stage
  || (t.sp.drop > 0.0 && Util.Prng.bernoulli (stream t ~stage ~me ~dst ~salt:1) t.sp.drop)

let decide t ~stage ~me ~dst ~p =
  p > 0.0 && Util.Prng.bernoulli (stream t ~stage ~me ~dst ~salt:2) p

let fresh_bytes t ~stage ~me ~dst ~len =
  Util.Prng.bytes (stream t ~stage ~me ~dst ~salt:3) (max 0 len)

let corrupt_payload t ?(replay = true) ~stage ~me ~dst payload =
  let len = Bytes.length payload in
  (* Payload-keyed streams: the same payload fanned out to many
     recipients draws the same shared coins (a consistent wrong value),
     while distinct payloads at the same slot decide independently. *)
  let ph = Hashtbl.hash payload in
  (* [rs] has no dst in its key — flip/truncate parameters are shared by
     every recipient; [rd] is per-recipient for equivocation. *)
  let rs = stream t ~stage ~me ~dst:(-1) ~salt:(mix 4 ph) in
  let rd = stream t ~stage ~me ~dst ~salt:(mix 5 ph) in
  let prev = if replay then t.last.(me) else None in
  let out =
    if Util.Prng.bernoulli rd t.sp.equivocate then Util.Prng.bytes rd len
    else if Util.Prng.bernoulli rs t.sp.flip && len > 0 then begin
      let pos = Util.Prng.int rs len in
      let mask = 1 + Util.Prng.int rs 255 in
      let out = Bytes.copy payload in
      Bytes.set out pos (Char.chr (Char.code (Bytes.get payload pos) lxor mask));
      out
    end
    else if Util.Prng.bernoulli rs t.sp.truncate && len > 0 then
      Bytes.sub payload 0 (Util.Prng.int rs len)
    else if replay && Util.Prng.bernoulli rs t.sp.replay then
      match prev with Some b -> b | None -> payload
    else payload
  in
  if replay then t.last.(me) <- Some payload;
  out

let transport t ~stage ~me ~dst payload ~push =
  if not (drops t ~stage ~me ~dst) then begin
    let p' = corrupt_payload t ~stage ~me ~dst payload in
    push p';
    if decide t ~stage ~me ~dst ~p:t.sp.duplicate then push p'
  end

let send t net ~stage ~src ~dst payload =
  transport t ~stage ~me:src ~dst payload ~push:(fun b -> Net.send net ~src ~dst b)

let send_p t p ~stage ~dst payload =
  transport t ~stage ~me:(Net.Party.id p) ~dst payload ~push:(fun b -> Net.Party.send p ~dst b)
