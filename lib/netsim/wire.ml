exception Closed

type t = {
  fd : Unix.file_descr;
  mutable rbuf : bytes;
  mutable rpos : int;  (* consumed prefix of [rbuf] *)
  mutable rlen : int;  (* filled prefix of [rbuf] *)
  wbuf : Buffer.t;
  scratch : Util.Codec.writer;  (* reused payload writer (keeps capacity) *)
  mutable closed : bool;
}

let of_fd fd =
  {
    fd;
    rbuf = Bytes.create 65536;
    rpos = 0;
    rlen = 0;
    wbuf = Buffer.create 65536;
    scratch = Util.Codec.writer ();
    closed = false;
  }

let fd t = t.fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ---- writing ---- *)

let write_varint_buf buf v =
  let rec go v =
    let low = v land 0x7F in
    let rest = v lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr low)
    else begin
      Buffer.add_char buf (Char.chr (low lor 0x80));
      go rest
    end
  in
  go v

let queue t enc =
  let payload = Util.Codec.encode_into t.scratch (fun w () -> enc w) () in
  write_varint_buf t.wbuf (Bytes.length payload);
  Buffer.add_bytes t.wbuf payload

let flush t =
  if t.closed then raise Closed;
  let data = Buffer.to_bytes t.wbuf in
  Buffer.clear t.wbuf;
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    match Unix.write t.fd data !off (len - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Closed
  done

let send t enc =
  queue t enc;
  flush t

(* ---- reading ---- *)

(* Ensure at least [k] unconsumed bytes are buffered, refilling in
   buffer-sized chunks.  Compacts (or grows) before reading so the
   needed span is always contiguous. *)
let ensure t k =
  if t.rlen - t.rpos < k then begin
    if t.rpos > 0 then begin
      Bytes.blit t.rbuf t.rpos t.rbuf 0 (t.rlen - t.rpos);
      t.rlen <- t.rlen - t.rpos;
      t.rpos <- 0
    end;
    if k > Bytes.length t.rbuf then begin
      let nb = Bytes.create (max k (2 * Bytes.length t.rbuf)) in
      Bytes.blit t.rbuf 0 nb 0 t.rlen;
      t.rbuf <- nb
    end;
    while t.rlen < k do
      if t.closed then raise Closed;
      match Unix.read t.fd t.rbuf t.rlen (Bytes.length t.rbuf - t.rlen) with
      | 0 -> raise Closed
      | got -> t.rlen <- t.rlen + got
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> raise Closed
    done
  end

(* Parse a buffered varint without consuming; returns (value, width) or
   None if more bytes are needed. *)
let peek_varint t =
  let rec go off shift acc =
    if t.rpos + off >= t.rlen then None
    else
      let b = Char.code (Bytes.get t.rbuf (t.rpos + off)) in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then Some (acc, off + 1) else go (off + 1) (shift + 7) acc
  in
  go 0 0 0

let rec read_length t =
  match peek_varint t with
  | Some (v, width) ->
    t.rpos <- t.rpos + width;
    v
  | None ->
    ensure t (t.rlen - t.rpos + 1);
    read_length t

let recv t dec =
  let len = read_length t in
  ensure t len;
  let r = Util.Codec.of_sub t.rbuf ~pos:t.rpos ~len in
  (* The frame is consumed whether or not the decoder succeeds — the
     boundary is known, so a bad payload must not desync the stream. *)
  let frame_end = t.rpos + len in
  match dec r with
  | v ->
    let trailing = frame_end - Util.Codec.pos r in
    t.rpos <- frame_end;
    if trailing > 0 then
      raise
        (Util.Codec.Decode_error
           (Printf.sprintf "frame decoder left %d trailing bytes in a %d-byte frame" trailing
              len));
    v
  | exception e ->
    t.rpos <- frame_end;
    raise e

let has_buffered_frame t =
  match peek_varint t with
  | None -> false
  | Some (len, width) -> t.rlen - t.rpos >= width + len

(* ---- deadline reads ---- *)

(* Block until [t.fd] is readable or the absolute [deadline] passes;
   [false] = timed out.  EINTR and select's own early returns re-check
   the wall clock, so the deadline is honored across signal storms. *)
let wait_readable t ~deadline =
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0.0 then false
    else
      match Unix.select [ t.fd ] [] [] left with
      | [], _, _ -> go ()
      | _ :: _, _, _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* One read syscall's worth of refill, compacting the consumed prefix
   (or doubling the buffer) first so there is always room.  Callers
   check readability beforehand, so the read returns promptly. *)
let refill_once t =
  if t.closed then raise Closed;
  if t.rlen = Bytes.length t.rbuf then
    if t.rpos > 0 then begin
      Bytes.blit t.rbuf t.rpos t.rbuf 0 (t.rlen - t.rpos);
      t.rlen <- t.rlen - t.rpos;
      t.rpos <- 0
    end
    else begin
      let nb = Bytes.create (2 * Bytes.length t.rbuf) in
      Bytes.blit t.rbuf 0 nb 0 t.rlen;
      t.rbuf <- nb
    end;
  match Unix.read t.fd t.rbuf t.rlen (Bytes.length t.rbuf - t.rlen) with
  | 0 -> raise Closed
  | got -> t.rlen <- t.rlen + got
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> raise Closed

let recv_deadline t ~deadline dec =
  (* Nothing is consumed until the whole frame is buffered: a timeout
     leaves any partial bytes in place, so the stream stays in sync and
     a later recv/recv_deadline picks up exactly where this one left
     off.  Once the frame is complete, [recv] serves it from the buffer
     without touching the fd. *)
  let rec go () =
    if has_buffered_frame t then Some (recv t dec)
    else if wait_readable t ~deadline then begin
      refill_once t;
      go ()
    end
    else None
  in
  go ()
