(** Byzantine fault injection for corrupted parties' outgoing traffic.

    A {!t} is a keyed-PRNG fault schedule: given a parent {!Util.Prng.t}
    and a schedule id, it precomputes per-party crash rounds and exposes
    decision functions — drop, duplicate, byte-flip, truncate,
    replay-previous-payload, equivocate (different payload per recipient)
    and crash-at-stage-r (silence thereafter) — each a deterministic
    function of [(parent state, schedule, stage, party, recipient,
    payload)].  Any schedule therefore reproduces byte-identically from a
    single [(seed, schedule-id)] pair, which is what the soak runner's
    replay commands rely on.

    {b Stages.}  Protocols are sliced into small integer {e stages}
    (sender fan-out = 0, echo = 1, …; each adversary compiler in
    {!Attacks} documents its stage map).  Crash-at-stage-[r] means every
    decision at [stage >= r] reports the party silent, modeling a party
    that stops mid-protocol.

    {b Domain-safety.}  All decision functions except the replay slot of
    {!corrupt_payload} are pure: they derive a child stream with
    {!Util.Prng.derive} (the parent is never advanced) and may be called
    from any domain, in any order.  {!corrupt_payload} with [~replay:true]
    (the default) additionally reads/writes a per-party last-payload slot;
    under the {!Net.run_round} ownership contract that slot is touched
    only by the owning party's step, so it is safe from any hook that is
    invoked with [~me =] the stepping party — which is every hook in the
    library {e except} {!Equality.pairwise}'s (those run one job per pair,
    so the same [me] can be live on two domains; pass [~replay:false]
    there, or better, use only the pure {!decide}). *)

type kind = Drop | Duplicate | Flip | Truncate | Replay | Equivocate | Crash

val all_kinds : kind list
val kind_to_string : kind -> string

(** Per-kind activation probabilities, each in [\[0, 1\]].  [crash] is the
    probability that a given corrupted party crashes at all; if it does,
    its crash stage is uniform in [\[1, crash_stage\]]. *)
type spec = {
  drop : float;
  duplicate : float;
  flip : float;
  truncate : float;
  replay : float;
  equivocate : float;
  crash : float;
  crash_stage : int;
}

(** All probabilities zero: injects nothing. *)
val honest : spec

(** [random_spec rng] — each kind enabled with probability 1/2; enabled
    kinds get a probability in [\[0.05, 0.5\]].  Advances [rng]. *)
val random_spec : Util.Prng.t -> spec

(** [disable k s] zeroes kind [k]'s probability (the shrinking move). *)
val disable : kind -> spec -> spec

(** Kinds with non-zero probability, in {!all_kinds} order. *)
val enabled : spec -> kind list

val spec_to_string : spec -> string

(** Combined probability that a value-mutating kind fires, used by hook
    compilers for tamper/lie decisions: [min 1 (flip + truncate + replay
    + equivocate)]. *)
val value_prob : spec -> float

type t

(** [make rng ~schedule ~n spec] — reads (never advances) [rng]:
    the same parent state and schedule id always yield the same [t]. *)
val make : Util.Prng.t -> schedule:int -> n:int -> spec -> t

val spec : t -> spec
val schedule : t -> int

(** Party count the schedule was built for. *)
val n : t -> int

(** {1 Pure decisions} *)

(** [stream t ~stage ~me ~dst ~salt] — the decision substream for one
    [(stage, party, recipient)] slot; [~dst:(-1)] for recipient-free
    decisions.  [salt] separates independent decisions at the same slot.
    Pure in [t]; each call returns a fresh generator at the same start
    position. *)
val stream : t -> stage:int -> me:int -> dst:int -> salt:int -> Util.Prng.t

(** [scheduler_stream t] — the substream that drives an adversarial
    {!Event_net} delivery scheduler for this schedule: pass it as the
    event transport's [~rng] so message timing is decided by the same
    [(seed, schedule-id)] pair as the payload faults, and replays with
    them.  Pure in [t], drawn from a slot no per-message decision uses. *)
val scheduler_stream : t -> Util.Prng.t

(** [crashed t ~me ~stage] — party [me]'s crash stage is [<= stage].
    Monotone in [stage]. *)
val crashed : t -> me:int -> stage:int -> bool

(** [drops t ~stage ~me ~dst] — suppress this message entirely: crashed,
    or the per-slot drop coin fired. *)
val drops : t -> stage:int -> me:int -> dst:int -> bool

(** [decide t ~stage ~me ~dst ~p] — a pure per-slot Bernoulli([p]) coin,
    for boolean hooks (lie, tamper, forge). *)
val decide : t -> stage:int -> me:int -> dst:int -> p:float -> bool

(** [fresh_bytes t ~stage ~me ~dst ~len] — a derived uniformly random
    payload (forgery material). *)
val fresh_bytes : t -> stage:int -> me:int -> dst:int -> len:int -> bytes

(** [corrupt_payload t ?replay ~stage ~me ~dst payload] applies at most
    one value mutation and never drops: equivocate (per-recipient random
    value of the same length), flip (same byte of the same mask for every
    recipient of this payload — a consistent lie), truncate (same prefix
    length for every recipient), or replay (the previous payload this
    party pushed through the engine).  With [~replay:false] the replay
    kind is skipped and no mutable state is touched (see the
    domain-safety note above). *)
val corrupt_payload : t -> ?replay:bool -> stage:int -> me:int -> dst:int -> bytes -> bytes

(** {1 Transport wrappers}

    The network-handle form of the engine: route a corrupted party's send
    through the schedule.  Applies, in order: crash/drop suppression,
    {!corrupt_payload}, then a duplicate coin that sends the mutated
    payload twice.  Must be called from the domain owning the sender's
    state (plain sequential code, or inside that party's [run_round]
    step). *)

val send : t -> Net.t -> stage:int -> src:int -> dst:int -> bytes -> unit

(** Same, buffering through a {!Net.Party.p} compute-phase handle. *)
val send_p : t -> Net.Party.p -> stage:int -> dst:int -> bytes -> unit
