type latency = Fixed of int | Uniform of int * int | Heavy_tail of { cap : int }
type scheduler = Fifo | Adversarial of { hold : float }
type config = { latency : latency; horizon : int; scheduler : scheduler }

let zero_latency_fifo = { latency = Fixed 1; horizon = 0; scheduler = Fifo }

let max_latency = function
  | Fixed k -> k
  | Uniform (_, hi) -> hi
  | Heavy_tail { cap } -> cap

let span cfg = max_latency cfg.latency + cfg.horizon

let latency_to_string = function
  | Fixed k -> Printf.sprintf "fixed:%d" k
  | Uniform (lo, hi) -> Printf.sprintf "uniform:%d..%d" lo hi
  | Heavy_tail { cap } -> Printf.sprintf "heavy-tail:cap=%d" cap

let config_to_string cfg =
  let sched =
    match cfg.scheduler with
    | Fifo -> "fifo"
    | Adversarial { hold } -> Printf.sprintf "adversarial:hold=%.2f" hold
  in
  Printf.sprintf "latency=%s horizon=%d scheduler=%s" (latency_to_string cfg.latency)
    cfg.horizon sched

let validate cfg =
  (match cfg.latency with
  | Fixed k when k < 1 -> invalid_arg "Event_net: Fixed latency must be >= 1"
  | Uniform (lo, hi) when lo < 1 || hi < lo ->
    invalid_arg "Event_net: Uniform latency needs 1 <= lo <= hi"
  | Heavy_tail { cap } when cap < 1 -> invalid_arg "Event_net: Heavy_tail cap must be >= 1"
  | _ -> ());
  if cfg.horizon < 0 then invalid_arg "Event_net: horizon must be >= 0";
  match cfg.scheduler with
  | Adversarial { hold } when not (hold >= 0.0 && hold < 1.0) ->
    invalid_arg "Event_net: adversarial hold must be in [0, 1)"
  | _ -> ()

let random_config rng =
  let latency =
    match Util.Prng.int rng 4 with
    | 0 -> Fixed 1
    | 1 -> Fixed 2
    | 2 -> Uniform (1, 3)
    | _ -> Heavy_tail { cap = 4 }
  in
  let horizon = Util.Prng.int rng 3 in
  let scheduler =
    match Util.Prng.int rng 3 with
    | 0 -> Fifo
    | 1 -> Adversarial { hold = 0.25 }
    | _ -> Adversarial { hold = 0.5 }
  in
  { latency; horizon; scheduler }

(* One in-flight message.  [e_seq] is the global submission number — the
   key every per-message substream is derived from, and the final
   tiebreaker that makes delivery order total. *)
type msg = { e_src : int; e_dst : int; e_payload : bytes; e_seq : int; e_due : int; e_limit : int }

let draw_latency r = function
  | Fixed k -> k
  | Uniform (lo, hi) -> Util.Prng.int_in r lo hi
  | Heavy_tail { cap } ->
    (* Truncated Pareto: P(L >= k) ~ k^(-alpha) with alpha ~ 1.4 — most
       draws are 1, the occasional straggler reaches [cap]. *)
    let u = Util.Prng.float r in
    let lat = int_of_float (1.0 /. ((1.0 -. u) ** 0.7)) in
    min cap (max 1 lat)

let transport ~rng cfg =
  validate cfg;
  let rng = Util.Prng.copy rng in
  (* Fixed-position parents for the two substream families (latency vs
     scheduling), so their per-message/per-tick keys can never collide. *)
  let r_lat = Util.Prng.derive rng ~key:1 in
  let r_sched = Util.Prng.derive rng ~key:2 in
  let now = ref 0 in
  let seq = ref 0 in
  let count = ref 0 in
  (* Due-tick buckets.  Ticks advance one at a time and every submission
     lands at least one tick in the future, so the only bucket that can
     be due when [advance] runs is the current tick's. *)
  let buckets : (int, msg Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let bucket_push due m =
    let q =
      match Hashtbl.find_opt buckets due with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add buckets due q;
        q
    in
    Queue.push m q
  in
  let submit ~src ~dst payload =
    let s = !seq in
    seq := s + 1;
    let lat = draw_latency (Util.Prng.derive r_lat ~key:s) cfg.latency in
    let due = !now + lat in
    let m =
      { e_src = src; e_dst = dst; e_payload = payload; e_seq = s; e_due = due;
        e_limit = due + cfg.horizon }
    in
    bucket_push due m;
    incr count
  in
  let advance ~deliver =
    now := !now + 1;
    match Hashtbl.find_opt buckets !now with
    | None -> ()
    | Some q ->
      Hashtbl.remove buckets !now;
      let due_now = Array.init (Queue.length q) (fun _ -> Queue.pop q) in
      (* Canonical order first: (original due, sender, submission order).
         On the zero-latency FIFO config this is exactly the synchronous
         walk — ascending sender id, then send order. *)
      Array.sort
        (fun a b ->
          let c = compare a.e_due b.e_due in
          if c <> 0 then c
          else
            let c = compare a.e_src b.e_src in
            if c <> 0 then c else compare a.e_seq b.e_seq)
        due_now;
      let releasable =
        match cfg.scheduler with
        | Fifo -> due_now
        | Adversarial { hold } ->
          (* Hold: push a deliverable message to the next tick unless its
             fairness limit says it must fire now.  Pure per-(msg, tick)
             coin, so replay is exact. *)
          let kept =
            Array.to_list due_now
            |> List.filter (fun m ->
                   if
                     m.e_limit > !now
                     && Util.Prng.bernoulli
                          (Util.Prng.derive r_sched ~key:((m.e_seq * 1_000_003) + !now))
                          hold
                   then begin
                     bucket_push (!now + 1) m;
                     false
                   end
                   else true)
          in
          let arr = Array.of_list kept in
          (* The adversary picks the firing order of what remains. *)
          Util.Prng.shuffle (Util.Prng.derive r_sched ~key:(-(!now + 1))) arr;
          arr
      in
      Array.iter
        (fun m ->
          deliver ~src:m.e_src ~dst:m.e_dst m.e_payload;
          decr count)
        releasable
  in
  {
    Transport.name = Printf.sprintf "event(%s)" (config_to_string cfg);
    submit;
    advance;
    in_flight = (fun () -> !count);
  }
