(** Multi-process execution engine: party shards in worker OS processes,
    a coordinator owning the round barrier and cross-shard routing.

    The coordinator forks [workers] pre-forked worker processes (plus
    idle spares) connected by Unix-domain socketpairs speaking the
    {!Wire} frame format.  A {e program} is a per-party step function
    registered by name before {!create} — children inherit the registry
    through [fork], so the coordinator never ships code, only names and
    [Util.Codec]-encoded arguments.

    {2 Round protocol}

    Parties [0..n-1] are sharded over workers with
    [Util.Pool.pack_bins] (greedy LPT — same assignment at any worker
    count given the same weights).  Each round the coordinator scatters
    every shard's inbound messages as one length-prefixed batch per
    worker (small payloads coalesce into a single [write(2)] per link),
    workers step their non-finished parties in ascending id order, and
    the coordinator gathers outbound sends.  Gathered sends are merged
    in canonical (sender id, send order) — each worker's batch is
    already sender-ascending, so a stable sort by sender reconstructs
    exactly the send sequence the in-process loop would produce — and
    committed through the caller's [Net.t].  The simulator therefore
    observes the identical send sequence and round structure at any
    worker count: accounting ([total_bits], [messages_sent], [rounds],
    [max_locality]) is byte-identical to {!run_local}, which is what the
    bench harness's [--diff] gate checks.

    {2 Determinism and crash recovery}

    Step functions must be deterministic in [(round, inbox)]: any
    randomness must come from keyed [Util.Prng.derive] substreams seeded
    by [(args, me)], never from ambient state.  That makes a worker's
    state a pure function of its scatter history, so when a worker dies
    mid-round the coordinator promotes a spare, replays the dead
    worker's full scatter history (replay frames produce no gathers),
    re-sends the current round's scatter live, and continues — verdicts
    and counters are byte-identical to an uninterrupted run.

    Single-owner, no locking, same contract as [Net.t]. *)

type t

(** Raised when a worker dies and no spare is left to promote, or when a
    promoted replacement dies during replay. *)
exception Worker_lost of string

(** One party's step function: called once per round with the messages
    delivered to it this round (in the simulator's delivery order, i.e.
    ascending (sender id, send order) of the previous round).  Calls
    [send] for this round's outbound messages; returns [Some verdict]
    when finished (the party is never stepped again; later inbound
    messages to it are discarded). *)
type party_step = round:int -> inbox:(int * bytes) list -> send:(dst:int -> bytes -> unit) -> bytes option

(** [register_program name make] — [make ~n ~args ~me] builds party
    [me]'s step function.  Must be called before {!create} so worker
    children inherit the registry.  Re-registering a name replaces it. *)
val register_program : string -> (n:int -> args:bytes -> me:int -> party_step) -> unit

(** [register_job name f] — a one-shot [bytes -> bytes] job for
    {!run_jobs}.  Same pre-fork inheritance rule as programs. *)
val register_job : string -> (bytes -> bytes) -> unit

(** Fork the worker fleet.  [workers >= 1]; [spares] (default 2) extra
    idle processes kept for crash promotion.  Fork before spawning any
    domains (a [Util.Pool] in the parent must be created {e after} this)
    — forking a multi-domain OCaml runtime is undefined.

    [worker_timeout_s] (must be [> 0] when given) arms a heartbeat: a
    worker that owes the coordinator a frame (a gather, or a job
    response) and stays silent longer than this is treated as dead even
    though its socket never closed — the coordinator SIGKILLs it (a
    process stopped by a signal, or wedged in a loop, never EOFs),
    promotes a spare, and replays/re-dispatches exactly as for a crash.
    Without it the coordinator's waits are unbounded ([select(-1)] /
    blocking [recv]), so an alive-but-silent worker hangs the whole
    engine.  Choose it well above the longest honest round/job time;
    {!Worker_lost} is raised when the spares run dry. *)
val create : ?spares:int -> ?worker_timeout_s:float -> workers:int -> unit -> t

val workers : t -> int

(** Current pid of each worker slot (changes when a spare is promoted).
    Exposed for fault-injection tests that stop or kill a live worker by
    pid. *)
val worker_pids : t -> int array

(** Run a registered program over [n] parties, committing all traffic
    through [net].  [crash:(w, r)] makes worker [w] exit mid-round at
    round [r] (once — the respawned replacement runs it clean), which is
    how the bench's [Faults]-derived crash schedules are injected.
    Returns per-party verdicts.  Raises [Invalid_argument] on an
    unregistered name, [Failure] if a round makes no progress with
    unfinished parties. *)
val run_program :
  ?crash:int * int -> t -> name:string -> n:int -> args:bytes -> net:Net.t -> bytes array

(** In-process reference: same loop, same canonical ordering, no worker
    processes.  [run_program] at any worker count must match this
    byte-for-byte. *)
val run_local : name:string -> n:int -> args:bytes -> net:Net.t -> bytes array

(** Run [(job name, args)] list over the fleet, one outstanding job per
    worker, multiplexed with [Unix.select]; results in input order.
    [crash:i] kills the worker running job [i] on receipt (the job is
    re-dispatched to the replacement, clean). *)
val run_jobs : ?crash:int -> t -> (string * bytes) list -> bytes list

type stat = {
  pid : int;  (** current worker pid (changes on respawn) *)
  jobs_run : int;
  sessions : int;  (** program sessions started on this slot *)
  respawns : int;  (** spare promotions into this slot *)
  peak_rss_mb : float option;  (** worker-side VmHWM, [None] off-Linux *)
}

(** Per-worker-slot statistics; queries each live worker for its own
    peak RSS. *)
val stats : t -> stat array

(** Terminate and reap the whole fleet (workers and spares).
    Idempotent. *)
val shutdown : t -> unit
