(* Locality in action: the sparse routing network (Algorithm 5) and
   responsible gossip (Algorithm 6) that power the Theorem 2 and
   Theorem 4 protocols.

   Builds a routing graph for 80 parties, broadcasts everyone's value by
   gossip, then shows two attacks: a flooding (DDoS) attack caught by the
   degree bound, and an equivocating gossiper caught by the responsible-
   gossip rule (warn and abort).

     dune exec examples/gossip_demo.exe *)

let () =
  let n = 80 and h = 40 in
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:3 () in
  Printf.printf "== Sparse routing + responsible gossip: %d parties ==\n\n" n;
  Printf.printf "routing degree d = alpha*(n/h)*ln n = %d (clique degree would be %d)\n\n"
    (Mpc.Params.sparse_degree params) (n - 1);

  (* --- 1. Honest run --- *)
  let corruption = Netsim.Corruption.none ~n in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 42 in
  let sparse = Mpc.Sparse_network.run net rng params ~corruption ~adv:Mpc.Sparse_network.honest_adv in
  let graph =
    Array.map
      (function Mpc.Outcome.Output s -> s | Mpc.Outcome.Abort _ -> Util.Iset.empty)
      sparse
  in
  Printf.printf "sparse network built: max degree %d, honest subgraph connected: %b\n"
    (Mpc.Sparse_network.max_degree sparse)
    (Mpc.Sparse_network.honest_subgraph_connected sparse corruption);
  let sources = List.init n (fun i -> (i, Bytes.of_string (Printf.sprintf "value-of-%d" i))) in
  let outs = Mpc.Gossip.run net rng params ~graph ~sources ~corruption ~adv:Mpc.Gossip.honest_adv in
  let complete =
    Array.for_all
      (function Mpc.Outcome.Output r -> List.length r = n | Mpc.Outcome.Abort _ -> false)
      outs
  in
  Printf.printf "gossip: every party heard all %d values: %b\n" n complete;
  Printf.printf "cost: %s, locality %d, rounds %d\n\n"
    (Analysis.Table.fmt_bits (Netsim.Net.total_bits net))
    (Netsim.Net.max_locality net) (Netsim.Net.rounds net);

  (* --- 2. Flooding attack --- *)
  Printf.printf "-- attack 1: every corrupted party floods connections at party 7 --\n";
  let rngc = Util.Prng.create 43 in
  let corruption2 = Netsim.Corruption.targeting rngc ~n ~h:12 ~victim:7 in
  let params_tight = Mpc.Params.make ~n ~h:n ~lambda:8 ~alpha:1 () in
  let net2 = Netsim.Net.create n in
  let sparse2 =
    Mpc.Sparse_network.run net2 rngc params_tight ~corruption:corruption2
      ~adv:(Mpc.Attacks.flood_victim ~victim:7)
  in
  (match sparse2.(7) with
  | Mpc.Outcome.Abort r -> Printf.printf "party 7 detected the flood and aborted: %s\n\n" (Mpc.Outcome.reason_to_string r)
  | Mpc.Outcome.Output s ->
    Printf.printf "party 7 accepted %d connections (under the 2d bound)\n\n" (Util.Iset.cardinal s));

  (* --- 3. Equivocating gossiper --- *)
  Printf.printf "-- attack 2: corrupted parties forward altered rumors --\n";
  let rngd = Util.Prng.create 44 in
  let corruption3 = Netsim.Corruption.random rngd ~n ~h in
  let net3 = Netsim.Net.create n in
  let outs3 =
    Mpc.Gossip.run net3 rngd params ~graph ~sources ~corruption:corruption3
      ~adv:Mpc.Attacks.gossip_equivocate
  in
  let aborted =
    List.length
      (List.filter
         (fun i -> Mpc.Outcome.is_abort outs3.(i))
         (Netsim.Corruption.honest_list corruption3))
  in
  let survived =
    List.length (Netsim.Corruption.honest_list corruption3) - aborted
  in
  Printf.printf "honest parties that detected equivocation and aborted: %d\n" aborted;
  Printf.printf "honest parties that finished: %d\n" survived;
  (* The security property: finishers agree pairwise on every origin. *)
  let views =
    List.filter_map
      (fun i -> match outs3.(i) with Mpc.Outcome.Output r -> Some r | _ -> None)
      (Netsim.Corruption.honest_list corruption3)
  in
  let consistent =
    match views with
    | [] -> true
    | first :: rest ->
      List.for_all
        (fun other ->
          List.for_all
            (fun (o, v) ->
              match List.assoc_opt o first with Some v' -> Bytes.equal v v' | None -> true)
            other)
        rest
  in
  Printf.printf "finishers mutually consistent (agreement-or-abort): %b\n" consistent
