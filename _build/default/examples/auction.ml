(* Sealed-bid second-price (Vickrey) auction with per-party private
   outputs — the multi-output protocol of Algorithm 4 (§4.3).

   Each bidder submits a private bid.  The functionality computes, for
   each party i, the pair (won_i, price): won_i tells party i whether it
   won, and price is the second-highest bid (revealed only to the
   winner).  Outputs are encrypted under per-party keys and signed by the
   committee's functionality, so a single forwarder — even a corrupted
   one — suffices to deliver them, and nobody learns another bidder's
   outcome.

     dune exec examples/auction.exe *)

let bid_width = 5 (* bids in 0..31 *)

(* Per-party output word: 1 "won" bit followed by bid_width price bits
   (price is zero for losers, so losers learn nothing but "I lost"). *)
let auction_circuit n =
  let open Circuit in
  let bids = List.init n (fun i -> Builder.input_word ~offset:(i * bid_width) ~width:bid_width) in
  let iw =
    let rec go k = if 1 lsl k >= n then k else go (k + 1) in
    max 1 (go 0)
  in
  (* Tournament for (best, best_index, second). *)
  let step (best, bidx, second) (w, widx) =
    let w_wins = Builder.lt_word best w in
    let new_best = Builder.mux w_wins w best in
    let new_bidx = Builder.mux w_wins widx bidx in
    let loser = Builder.mux w_wins best w in
    let new_second = Builder.mux (Builder.lt_word second loser) loser second in
    (new_best, new_bidx, new_second)
  in
  let indexed = List.mapi (fun i w -> (w, Builder.const_word ~width:iw i)) bids in
  let best0, bidx0, second0 =
    match indexed with
    | (w0, i0) :: rest ->
      List.fold_left step (w0, i0, Builder.const_word ~width:bid_width 0) rest
    | [] -> invalid_arg "auction_circuit"
  in
  ignore best0;
  let outputs =
    List.concat
      (List.init n (fun i ->
           let i_won = Builder.eq_word bidx0 (Builder.const_word ~width:iw i) in
           let price_if_won = Builder.and_bit i_won second0 in
           i_won :: price_if_won))
  in
  make ~num_inputs:(n * bid_width) ~outputs

let () =
  let n = 10 and h = 5 in
  Printf.printf "== Sealed-bid second-price auction: %d bidders (Algorithm 4) ==\n\n" n;
  let circuit = auction_circuit n in
  let output_width = 1 + bid_width in
  Printf.printf "circuit: %d gates, depth %d, %d output bits per bidder\n\n"
    (Circuit.size circuit) (Circuit.depth circuit) output_width;
  let config =
    {
      Mpc.Multi_output.params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 ();
      pke = (module Crypto.Pke.Regev);
      circuit;
      input_width = bid_width;
      output_width;
    }
  in
  let rng = Util.Prng.create 777 in
  let bids = Array.init n (fun _ -> Util.Prng.int rng 32) in
  Array.iteri (fun i b -> Printf.printf "bidder %d bids (privately) %d\n" i b) bids;

  let corruption = Netsim.Corruption.none ~n in
  let net = Netsim.Net.create n in
  let outs =
    Mpc.Multi_output.run net rng config ~corruption ~inputs:bids
      ~adv:Mpc.Multi_output.honest_adv
  in
  print_newline ();
  Array.iteri
    (fun i o ->
      match o with
      | Mpc.Outcome.Output v ->
        let word = Mpc.Bitpack.bytes_to_int v ~width:output_width in
        let won = word land 1 = 1 in
        let price = word lsr 1 in
        if won then Printf.printf "bidder %d: WON, pays %d (second-highest bid)\n" i price
        else Printf.printf "bidder %d: lost (learns nothing else)\n" i
      | Mpc.Outcome.Abort r ->
        Printf.printf "bidder %d: abort (%s)\n" i (Mpc.Outcome.reason_to_string r))
    outs;
  Printf.printf "\ncommunication: %s, rounds: %d, max locality: %d\n"
    (Analysis.Table.fmt_bits (Netsim.Net.total_bits net))
    (Netsim.Net.rounds net) (Netsim.Net.max_locality net);

  (* Now a corrupted forwarder tries to tamper with the winner's bundle —
     the signature check must catch it. *)
  Printf.printf "\n-- adversarial rerun: corrupted committee forwarder tampers with outputs --\n";
  let rng2 = Util.Prng.create 778 in
  let corruption2 = Netsim.Corruption.random rng2 ~n ~h in
  let adv =
    {
      Mpc.Multi_output.honest_adv with
      Mpc.Multi_output.forwarder_tamper =
        Some
          (fun ~dst:_ b ->
            (* Flip a byte inside the signed ciphertext (not the framing),
               so the failure shows up as a signature rejection. *)
            let out = Bytes.copy b in
            let pos = Bytes.length out / 2 in
            Bytes.set out pos (Char.chr (Char.code (Bytes.get out pos) lxor 0x01));
            out);
    }
  in
  let net2 = Netsim.Net.create n in
  let outs2 = Mpc.Multi_output.run net2 rng2 config ~corruption:corruption2 ~inputs:bids ~adv in
  Array.iteri
    (fun i o ->
      if Netsim.Corruption.is_honest corruption2 i then
        match o with
        | Mpc.Outcome.Output _ -> Printf.printf "bidder %d: output delivered intact\n" i
        | Mpc.Outcome.Abort Mpc.Outcome.Bad_signature ->
          Printf.printf "bidder %d: tampering caught by signature -> abort\n" i
        | Mpc.Outcome.Abort r ->
          Printf.printf "bidder %d: abort (%s)\n" i (Mpc.Outcome.reason_to_string r))
    outs2
