examples/voting.mli:
