examples/auction.mli:
