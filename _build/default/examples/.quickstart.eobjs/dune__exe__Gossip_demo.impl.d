examples/gossip_demo.ml: Analysis Array Bytes List Mpc Netsim Printf Util
