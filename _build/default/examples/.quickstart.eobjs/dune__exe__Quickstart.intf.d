examples/quickstart.mli:
