examples/quickstart.ml: Analysis Array Bytes Circuit Crypto Mpc Netsim Printf Util
