examples/auction.ml: Analysis Array Builder Bytes Char Circuit Crypto List Mpc Netsim Printf Util
