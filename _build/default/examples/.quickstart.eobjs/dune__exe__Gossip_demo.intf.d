examples/gossip_demo.mli:
