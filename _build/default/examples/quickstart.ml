(* Quickstart: 32 parties compute a majority vote with abort (Algorithm 3,
   Theorem 1) over a simulated point-to-point network, using the real
   Regev-LWE encryption backend.

     dune exec examples/quickstart.exe *)

let () =
  let n = 32 and h = 16 in
  Printf.printf "== MPC with abort quickstart: %d parties, >= %d honest ==\n\n" n h;

  (* 1. Protocol parameters (security parameter, committee concentration). *)
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in

  (* 2. The functionality: a single-bit majority vote. *)
  let circuit = Circuit.majority ~n in
  Printf.printf "functionality: majority of %d bits (circuit size %d, depth %d)\n" n
    (Circuit.size circuit) (Circuit.depth circuit);

  (* 3. Configuration: which PKE backend encrypts the inputs. *)
  let config =
    {
      Mpc.Mpc_abort.params;
      pke = (module Crypto.Pke.Regev);
      circuit;
      input_width = 1;
    }
  in

  (* 4. Everyone is honest in this run; inputs are 60% "yes". *)
  let corruption = Netsim.Corruption.none ~n in
  let rng = Util.Prng.create 2024 in
  let inputs = Array.init n (fun i -> if i mod 5 < 3 then 1 else 0) in

  (* 5. Run the protocol on a fresh synchronous network. *)
  let net = Netsim.Net.create n in
  let outs = Mpc.Mpc_abort.run net rng config ~corruption ~inputs ~adv:Mpc.Mpc_abort.honest_adv in

  (* 6. Inspect outputs: every party should hold majority(inputs). *)
  let expected = Mpc.Mpc_abort.expected_output config ~inputs in
  let ok = ref 0 and aborted = ref 0 in
  Array.iteri
    (fun i o ->
      match o with
      | Mpc.Outcome.Output v when Bytes.equal v expected -> incr ok
      | Mpc.Outcome.Output _ -> Printf.printf "party %d: WRONG OUTPUT (bug!)\n" i
      | Mpc.Outcome.Abort r ->
        incr aborted;
        Printf.printf "party %d: abort (%s)\n" i (Mpc.Outcome.reason_to_string r))
    outs;
  let verdict = Mpc.Bitpack.bytes_to_int expected ~width:1 in
  Printf.printf "\nresult: majority = %s\n" (if verdict = 1 then "yes" else "no");
  Printf.printf "parties with correct output: %d/%d  (aborts: %d)\n" !ok n !aborted;

  (* 7. What did it cost?  This is the paper's headline metric. *)
  Printf.printf "\ncommunication: %s total (%d messages, %d rounds)\n"
    (Analysis.Table.fmt_bits (Netsim.Net.total_bits net))
    (Netsim.Net.messages_sent net) (Netsim.Net.rounds net);
  Printf.printf "locality: each party talked to at most %d peers (clique would be %d)\n"
    (Netsim.Net.max_locality net) (n - 1);
  Printf.printf "\nTheorem 1 promises Õ(n²/h) bits — see `dune exec bench/main.exe -- --only E1`\n"
