(* Private referendum with a dishonest majority.

   40 parties vote yes/no; 25 of them are controlled by a malicious
   coalition that (a) follows the protocol in one run — it learns nothing
   and the tally is correct — and (b) actively attacks in a second run by
   equivocating the committee's public key and tampering with outputs.
   The paper's guarantee (security with selective abort) is exactly what
   this demonstrates: the attack never fools an honest voter into a wrong
   tally; at worst, honest voters abort.

     dune exec examples/voting.exe *)

let () =
  let n = 40 and h = 15 in
  Printf.printf "== Private referendum: %d voters, only %d guaranteed honest ==\n\n" n h;
  let circuit = Circuit.majority ~n in
  let config =
    {
      Mpc.Mpc_abort.params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 ();
      pke = Crypto.Pke.make_simulated ~seed:99 ();
      circuit;
      input_width = 1;
    }
  in
  let rng = Util.Prng.create 31337 in
  let votes = Array.init n (fun _ -> if Util.Prng.bernoulli rng 0.55 then 1 else 0) in
  let yes = Array.fold_left ( + ) 0 votes in
  Printf.printf "true tally (secret): %d yes / %d no\n\n" yes (n - yes);
  let corruption = Netsim.Corruption.random rng ~n ~h in
  Printf.printf "adversary statically corrupts %d parties\n\n" (Netsim.Corruption.num_corrupted corruption);

  (* Run 1: the coalition behaves (honest-but-curious). *)
  let net = Netsim.Net.create n in
  let outs = Mpc.Mpc_abort.run net rng config ~corruption ~inputs:votes ~adv:Mpc.Mpc_abort.honest_adv in
  let expected = Mpc.Mpc_abort.expected_output config ~inputs:votes in
  let correct =
    Mpc.Outcome.all_honest_output_value ~equal:Bytes.equal ~expected outs corruption
  in
  Printf.printf "run 1 (passive adversary): all honest voters got the tally: %b\n" correct;
  Printf.printf "  referendum result: %s\n"
    (if Mpc.Bitpack.bytes_to_int expected ~width:1 = 1 then "PASSED" else "FAILED");
  Printf.printf "  cost: %s over %d rounds\n\n"
    (Analysis.Table.fmt_bits (Netsim.Net.total_bits net)) (Netsim.Net.rounds net);

  (* Run 2: active attack — pk equivocation + output tampering. *)
  let adv =
    {
      Mpc.Attacks.pk_equivocation with
      Mpc.Mpc_abort.out_forward =
        Some (fun ~me:_ ~dst out -> if dst mod 2 = 0 then Mpc.Attacks.flip_byte out else out);
    }
  in
  let net2 = Netsim.Net.create n in
  let outs2 = Mpc.Mpc_abort.run net2 rng config ~corruption ~inputs:votes ~adv in
  let wrong = ref 0 and aborted = ref 0 and fine = ref 0 in
  Array.iteri
    (fun i o ->
      if Netsim.Corruption.is_honest corruption i then
        match o with
        | Mpc.Outcome.Output v -> if Bytes.equal v expected then incr fine else incr wrong
        | Mpc.Outcome.Abort _ -> incr aborted)
    outs2;
  Printf.printf "run 2 (active attack: pk equivocation + output tampering):\n";
  Printf.printf "  honest voters with the correct tally: %d\n" !fine;
  Printf.printf "  honest voters who aborted:            %d\n" !aborted;
  Printf.printf "  honest voters fooled into wrong tally: %d  <- must be 0\n" !wrong;
  assert (!wrong = 0);
  Printf.printf "\nThe adversary can deny the result, but never falsify it.\n"
