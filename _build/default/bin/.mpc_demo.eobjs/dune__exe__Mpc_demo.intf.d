bin/mpc_demo.mli:
