bin/gmwtest.ml: Circuit Mpc Netsim Printf Util
