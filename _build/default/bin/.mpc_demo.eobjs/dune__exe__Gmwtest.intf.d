bin/gmwtest.mli:
