bin/mpc_demo.ml: Analysis Array Circuit Crypto List Mpc Netsim Printf Sys Util
