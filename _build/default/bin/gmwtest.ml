let () =
  let rng = Util.Prng.create 5 in
  let ok = ref 0 in
  for seed = 1 to 10 do
    ignore seed;
    let width = 4 in
    let circuit = Circuit.sum ~n:2 ~width in
    let net = Netsim.Net.create 2 in
    let x0 = Util.Prng.int rng 16 and x1 = Util.Prng.int rng 16 in
    match Mpc.Two_party.run net rng ~circuit ~input_width:width ~x0 ~x1 with
    | Mpc.Outcome.Output (g, e) ->
      let expect = x0 + x1 in
      let got_g = Mpc.Bitpack.bytes_to_int g ~width:(width+1) in
      let got_e = Mpc.Bitpack.bytes_to_int e ~width:(width+1) in
      if got_g = expect && got_e = expect then incr ok
      else Printf.printf "wrong: %d+%d -> g=%d e=%d\n" x0 x1 got_g got_e;
      if seed = 1 then Printf.printf "2pc bits: %d\n" (Netsim.Net.total_bits net)
    | Mpc.Outcome.Abort r -> Printf.printf "abort: %s\n" (Mpc.Outcome.reason_to_string r)
  done;
  Printf.printf "two_party: %d/10\n" !ok
