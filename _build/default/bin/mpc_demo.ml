(* Command-line driver: run any of the paper's MPC protocols on a chosen
   functionality and print the cost report.

     dune exec bin/mpc_demo.exe -- --protocol thm1 --n 32 --h 16 --f majority
     dune exec bin/mpc_demo.exe -- --help *)

type protocol = Thm1 | Thm2 | Thm4

let protocols = [ ("thm1", Thm1); ("thm2", Thm2); ("thm4", Thm4) ]

let usage () =
  prerr_endline
    "usage: mpc_demo [--protocol thm1|thm2|thm4] [--n N] [--h H] [--f majority|parity|sum|max]\n\
    \                [--width W] [--seed S] [--corrupt] [--real-lwe]";
  exit 1

let () =
  let n = ref 32 and h = ref 16 and seed = ref 1 and width = ref 1 in
  let protocol = ref Thm1 and func = ref "majority" in
  let corrupt = ref false and real_lwe = ref false in
  let rec parse = function
    | [] -> ()
    | "--protocol" :: p :: rest ->
      (match List.assoc_opt p protocols with Some v -> protocol := v | None -> usage ());
      parse rest
    | "--n" :: v :: rest -> n := int_of_string v; parse rest
    | "--h" :: v :: rest -> h := int_of_string v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--width" :: v :: rest -> width := int_of_string v; parse rest
    | "--f" :: v :: rest -> func := v; parse rest
    | "--corrupt" :: rest -> corrupt := true; parse rest
    | "--real-lwe" :: rest -> real_lwe := true; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let n = !n and h = !h in
  let circuit, width =
    match !func with
    | "majority" -> (Circuit.majority ~n, 1)
    | "parity" -> (Circuit.parity ~n, 1)
    | "sum" -> (Circuit.sum ~n ~width:!width, !width)
    | "max" -> (Circuit.maximum ~n ~width:!width, !width)
    | _ -> usage ()
  in
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
  let pke =
    if !real_lwe then (module Crypto.Pke.Regev : Crypto.Pke.S)
    else Crypto.Pke.make_simulated ~lwe_params:Crypto.Pke.bench_lwe_params ~seed:!seed ()
  in
  let rng = Util.Prng.create !seed in
  let inputs = Array.init n (fun _ -> Util.Prng.int rng (1 lsl width)) in
  let corruption =
    if !corrupt then Netsim.Corruption.random rng ~n ~h else Netsim.Corruption.none ~n
  in
  let net = Netsim.Net.create n in
  Printf.printf "protocol=%s n=%d h=%d f=%s depth=%d corrupted=%d pke=%s\n%!"
    (fst (List.find (fun (_, v) -> v = !protocol) protocols))
    n h !func (Circuit.depth circuit)
    (Netsim.Corruption.num_corrupted corruption)
    (let module P = (val pke : Crypto.Pke.S) in P.name);
  let outs =
    match !protocol with
    | Thm1 ->
      let config = { Mpc.Mpc_abort.params; pke; circuit; input_width = width } in
      Mpc.Mpc_abort.run net rng config ~corruption ~inputs ~adv:Mpc.Mpc_abort.honest_adv
    | Thm2 ->
      let config = { Mpc.Local_mpc.params; pke; circuit; input_width = width } in
      Mpc.Local_mpc.run_theorem2 net rng config ~corruption ~inputs
        ~adv:Mpc.Local_mpc.honest_theorem2_adv
    | Thm4 ->
      let config = { Mpc.Local_mpc.params; pke; circuit; input_width = width } in
      Mpc.Local_mpc.run_theorem4 net rng config ~corruption ~inputs
        ~adv:Mpc.Local_mpc.honest_theorem4_adv
  in
  let ok = ref 0 and aborts = ref 0 in
  Array.iteri
    (fun i o ->
      if Netsim.Corruption.is_honest corruption i then
        match o with
        | Mpc.Outcome.Output _ -> incr ok
        | Mpc.Outcome.Abort r ->
          incr aborts;
          if !aborts <= 3 then
            Printf.printf "  party %d aborted: %s\n" i (Mpc.Outcome.reason_to_string r))
    outs;
  Printf.printf "honest outputs: %d, honest aborts: %d\n" !ok !aborts;
  Printf.printf "communication: %s in %d rounds; max locality %d (clique %d)\n"
    (Analysis.Table.fmt_bits (Netsim.Net.total_bits net))
    (Netsim.Net.rounds net) (Netsim.Net.max_locality net) (n - 1)
