(* Tests for the experiment harness: complexity fitting and tables. *)

let checkb = Alcotest.(check bool)

let test_sweep_averages () =
  let ms =
    Analysis.Complexity.sweep ~xs:[ 2; 4 ] ~runs:3 (fun ~x ~rep ->
        float_of_int (x * 10) +. float_of_int rep)
  in
  match ms with
  | [ a; b ] ->
    Alcotest.(check (float 1e-9)) "x=2 mean" 21.0 a.Analysis.Complexity.value;
    Alcotest.(check (float 1e-9)) "x=4 mean" 41.0 b.Analysis.Complexity.value
  | _ -> Alcotest.fail "wrong arity"

let test_fit_exact_power_law () =
  let ms =
    List.map
      (fun x -> { Analysis.Complexity.x = float_of_int x; value = 7.0 *. (float_of_int x ** 2.5) })
      [ 2; 4; 8; 16; 32 ]
  in
  let f = Analysis.Complexity.fit ms in
  checkb "exponent" true (abs_float (f.Analysis.Complexity.exponent -. 2.5) < 1e-6);
  checkb "constant" true (abs_float (f.Analysis.Complexity.constant -. 7.0) < 1e-4);
  checkb "check_exponent accepts" true
    (Analysis.Complexity.check_exponent ~expected:2.5 ~tolerance:0.01 f);
  checkb "check_exponent rejects" false
    (Analysis.Complexity.check_exponent ~expected:3.0 ~tolerance:0.1 f)

let test_fit_with_polylog () =
  (* y = x^2 * (log x)^2: the polylog fit should find j = 2 and k ≈ 2,
     where a plain fit would overshoot the exponent. *)
  let ms =
    List.map
      (fun x ->
        let fx = float_of_int x in
        { Analysis.Complexity.x = fx; value = fx *. fx *. (log fx ** 2.0) })
      [ 4; 8; 16; 32; 64; 128; 256 ]
  in
  let f, j = Analysis.Complexity.fit_with_polylog ms in
  Alcotest.(check int) "polylog power" 2 j;
  checkb "exponent near 2" true (abs_float (f.Analysis.Complexity.exponent -. 2.0) < 0.05)

let test_table_rendering () =
  let t = Analysis.Table.create ~title:"T" ~columns:[ "n"; "bits" ] in
  Analysis.Table.add_row t [ "16"; "1.00 Kb" ];
  Analysis.Table.add_row t [ "32"; "4.00 Kb" ];
  let s = Analysis.Table.render t in
  checkb "has title" true (String.length s > 0 && s.[0] = 'T');
  checkb "has rows" true
    (let contains sub =
       let rec go i =
         i + String.length sub <= String.length s
         && (String.sub s i (String.length sub) = sub || go (i + 1))
       in
       go 0
     in
     contains "16" && contains "4.00 Kb")

let test_table_arity_checked () =
  let t = Analysis.Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  checkb "raises" true
    (try
       Analysis.Table.add_row t [ "only one" ];
       false
     with Invalid_argument _ -> true)

let test_formatters () =
  Alcotest.(check string) "bits small" "512 b" (Analysis.Table.fmt_bits 512);
  Alcotest.(check string) "bits kb" "2.00 Kb" (Analysis.Table.fmt_bits 2000);
  Alcotest.(check string) "bits mb" "1.50 Mb" (Analysis.Table.fmt_bits 1_500_000);
  Alcotest.(check string) "bits gb" "2.10 Gb" (Analysis.Table.fmt_bits 2_100_000_000);
  Alcotest.(check string) "ratio" "3.10x" (Analysis.Table.fmt_ratio 3.1);
  Alcotest.(check string) "prob" "0.2500" (Analysis.Table.fmt_prob 0.25);
  Alcotest.(check string) "float" "1.23" (Analysis.Table.fmt_float 1.2345)

let () =
  Alcotest.run "analysis"
    [
      ( "complexity",
        [
          Alcotest.test_case "sweep averages" `Quick test_sweep_averages;
          Alcotest.test_case "exact power law" `Quick test_fit_exact_power_law;
          Alcotest.test_case "polylog factor" `Quick test_fit_with_polylog;
        ] );
      ( "table",
        [
          Alcotest.test_case "rendering" `Quick test_table_rendering;
          Alcotest.test_case "arity checked" `Quick test_table_arity_checked;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
    ]
