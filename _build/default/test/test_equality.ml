(* Tests for Algorithm 1 (Equality_λ) and its pairwise composition. *)

let checkb = Alcotest.(check bool)

let params n = Mpc.Params.make ~n ~h:(n / 2) ~lambda:8 ~alpha:2 ()

let test_two_party_equal () =
  let net = Netsim.Net.create 4 in
  let rng = Util.Prng.create 1 in
  let m = Bytes.of_string "identical strings here" in
  let f1, f2 = Mpc.Equality.run net rng (params 4) ~p1:0 ~p2:3 ~m1:m ~m2:(Bytes.copy m) in
  checkb "p1 accepts" true f1;
  checkb "p2 accepts" true f2

let test_two_party_unequal () =
  let net = Netsim.Net.create 4 in
  let rng = Util.Prng.create 2 in
  for i = 0 to 20 do
    let m1 = Bytes.of_string (Printf.sprintf "message number %d" i) in
    let m2 = Bytes.of_string (Printf.sprintf "message number %d!" i) in
    let f1, f2 = Mpc.Equality.run net rng (params 4) ~p1:0 ~p2:1 ~m1 ~m2 in
    checkb "p1 rejects" false f1;
    checkb "p2 rejects" false f2
  done

let test_two_party_single_bit_difference () =
  (* The adversarially-hardest case: strings differing in exactly one bit. *)
  let net = Netsim.Net.create 2 in
  let rng = Util.Prng.create 3 in
  let base = Bytes.make 64 'A' in
  for pos = 0 to 63 do
    let m2 = Bytes.copy base in
    Bytes.set m2 pos 'B';
    let f1, f2 = Mpc.Equality.run net rng (params 2) ~p1:0 ~p2:1 ~m1:base ~m2 in
    checkb "detects one-byte diff" false (f1 || f2)
  done

let test_two_party_communication_succinct () =
  (* Lemma 5: O(λ log n) bits regardless of message size. *)
  let net = Netsim.Net.create 2 in
  let rng = Util.Prng.create 4 in
  let big = Bytes.make 100_000 'x' in
  let before = Netsim.Net.total_bits net in
  ignore (Mpc.Equality.run net rng (params 2) ~p1:0 ~p2:1 ~m1:big ~m2:big);
  let bits = Netsim.Net.total_bits net - before in
  checkb "succinct" true (bits < 2048)

let test_pairwise_all_equal () =
  let net = Netsim.Net.create 8 in
  let rng = Util.Prng.create 5 in
  let corruption = Netsim.Corruption.none ~n:8 in
  let verdicts =
    Mpc.Equality.pairwise net rng (params 8) ~members:[ 0; 2; 4; 6 ]
      ~value:(fun _ -> Bytes.of_string "shared view")
      ~corruption ~adv:Mpc.Equality.honest_adv
  in
  List.iter (fun (_, ok) -> checkb "accepts" true ok) verdicts

let test_pairwise_one_outlier () =
  let net = Netsim.Net.create 8 in
  let rng = Util.Prng.create 6 in
  let corruption = Netsim.Corruption.none ~n:8 in
  let verdicts =
    Mpc.Equality.pairwise net rng (params 8) ~members:[ 0; 1; 2; 3 ]
      ~value:(fun i -> Bytes.of_string (if i = 2 then "different" else "same"))
      ~corruption ~adv:Mpc.Equality.honest_adv
  in
  (* Everyone participated in a failing test, so everyone rejects. *)
  List.iter
    (fun (m, ok) -> checkb (Printf.sprintf "member %d rejects" m) false ok)
    verdicts

let test_pairwise_two_camps () =
  let net = Netsim.Net.create 8 in
  let rng = Util.Prng.create 7 in
  let corruption = Netsim.Corruption.none ~n:8 in
  let verdicts =
    Mpc.Equality.pairwise net rng (params 8) ~members:[ 0; 1; 2; 3 ]
      ~value:(fun i -> Bytes.of_string (if i < 2 then "camp A" else "camp B"))
      ~corruption ~adv:Mpc.Equality.honest_adv
  in
  List.iter (fun (_, ok) -> checkb "everyone sees a mismatch" false ok) verdicts

let test_pairwise_tampered_fingerprint () =
  (* A corrupted member sends garbage fingerprints: honest receivers must
     reject (and the corrupted sender cannot make two honest parties with
     different values both accept). *)
  let n = 6 in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 8 in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 0 ]) in
  let adv =
    {
      Mpc.Equality.tamper_fp =
        Some
          (fun ~me:_ ~dst:_ fp ->
            { fp with Crypto.Fingerprint.residues = Array.map (fun r -> r + 1) fp.Crypto.Fingerprint.residues });
      lie_verdict = None;
    }
  in
  let verdicts =
    Mpc.Equality.pairwise net rng (params n) ~members:[ 0; 1; 2 ]
      ~value:(fun _ -> Bytes.of_string "same everywhere")
      ~corruption ~adv
  in
  (* Honest members 1 and 2 reject because 0's fingerprint fails. *)
  List.iter
    (fun (m, ok) ->
      if m <> 0 then checkb (Printf.sprintf "member %d rejects tampering" m) false ok)
    verdicts

let test_pairwise_lying_verdict_cannot_fool_receiver () =
  (* Corrupted member 3 lies "equal" to senders, but honest receivers of
     3's (honest-looking) fingerprints still detect 3's divergent value
     through their own checks of messages 3 sends... here 3 is the highest
     id so it only receives; the lie makes senders accept, but the honest
     receivers that share a pair with each other still agree.  The key
     security property: no two honest parties with DIFFERENT values both
     accept. *)
  let n = 6 in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 9 in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 3 ]) in
  let adv =
    { Mpc.Equality.tamper_fp = None; lie_verdict = Some (fun ~me:_ ~dst:_ _ -> true) }
  in
  let verdicts =
    Mpc.Equality.pairwise net rng (params n) ~members:[ 0; 1; 3 ]
      ~value:(fun i -> Bytes.of_string (if i = 1 then "divergent" else "base"))
      ~corruption ~adv
  in
  (* 0 and 1 hold different values; the 0-1 pair runs honestly, so at least
     one of them rejects. *)
  let ok0 = List.assoc 0 verdicts and ok1 = List.assoc 1 verdicts in
  checkb "honest disagreement detected" false (ok0 && ok1)

let test_pairwise_cost_scales_with_members () =
  let run k =
    let net = Netsim.Net.create 32 in
    let rng = Util.Prng.create 10 in
    let corruption = Netsim.Corruption.none ~n:32 in
    ignore
      (Mpc.Equality.pairwise net rng (params 32)
         ~members:(List.init k (fun i -> i))
         ~value:(fun _ -> Bytes.make 1000 'v')
         ~corruption ~adv:Mpc.Equality.honest_adv);
    Netsim.Net.total_bits net
  in
  let b8 = run 8 and b16 = run 16 in
  (* Quadratic in members: 16 members ≈ 4x the pairs of 8. *)
  let ratio = float_of_int b16 /. float_of_int b8 in
  checkb "quadratic growth" true (ratio > 3.0 && ratio < 5.0)

let () =
  Alcotest.run "equality"
    [
      ( "two-party",
        [
          Alcotest.test_case "equal accepts" `Quick test_two_party_equal;
          Alcotest.test_case "unequal rejects" `Quick test_two_party_unequal;
          Alcotest.test_case "single-byte difference" `Quick test_two_party_single_bit_difference;
          Alcotest.test_case "succinct communication" `Quick test_two_party_communication_succinct;
        ] );
      ( "pairwise",
        [
          Alcotest.test_case "all equal" `Quick test_pairwise_all_equal;
          Alcotest.test_case "one outlier" `Quick test_pairwise_one_outlier;
          Alcotest.test_case "two camps" `Quick test_pairwise_two_camps;
          Alcotest.test_case "tampered fingerprints" `Quick test_pairwise_tampered_fingerprint;
          Alcotest.test_case "lying verdict" `Quick test_pairwise_lying_verdict_cannot_fool_receiver;
          Alcotest.test_case "quadratic cost" `Quick test_pairwise_cost_scales_with_members;
        ] );
    ]
