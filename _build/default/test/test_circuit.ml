(* Tests for the boolean circuit library: evaluation against reference
   functions, depth/size metrics, and the ready-made functionalities. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let eval1 circuit inputs =
  let out = Circuit.eval circuit inputs in
  Alcotest.(check int) "single output" 1 (Array.length out);
  out.(0)

(* ---- basic gates ---- *)

let test_gates () =
  let open Circuit in
  let c =
    make ~num_inputs:2
      ~outputs:
        [
          And (Input 0, Input 1);
          Or (Input 0, Input 1);
          Xor (Input 0, Input 1);
          Not (Input 0);
          Const true;
        ]
  in
  let t = true and f = false in
  let out = eval c [| t; f |] in
  Alcotest.(check (array bool)) "gate semantics" [| f; t; t; f; t |] out

let test_make_rejects_bad_input_index () =
  checkb "raises" true
    (try
       ignore (Circuit.make ~num_inputs:2 ~outputs:[ Circuit.Input 2 ]);
       false
     with Invalid_argument _ -> true)

let test_eval_rejects_wrong_arity () =
  let c = Circuit.parity ~n:4 in
  checkb "raises" true
    (try
       ignore (Circuit.eval c [| true |]);
       false
     with Invalid_argument _ -> true)

let test_depth_size () =
  let open Circuit in
  let c = make ~num_inputs:2 ~outputs:[ And (Input 0, Input 1) ] in
  checki "depth" 1 (depth c);
  checki "size" 3 (size c);
  let c2 = make ~num_inputs:1 ~outputs:[ Not (Input 0) ] in
  checki "not free depth" 0 (depth c2);
  (* Shared sub-DAGs counted once. *)
  let shared = And (Input 0, Input 1) in
  let c3 = make ~num_inputs:2 ~outputs:[ Xor (shared, shared) ] in
  checki "shared size" 4 (size c3)

let test_deep_sharing_no_blowup () =
  (* A 60-level DAG whose tree unfolding is 2^60 nodes: traversals must be
     linear (this is the regression test for the exponential max_input). *)
  let g = ref (Circuit.Input 0) in
  for _ = 1 to 60 do
    g := Circuit.And (!g, !g)
  done;
  let c = Circuit.make ~num_inputs:1 ~outputs:[ !g ] in
  checki "depth 60" 60 (Circuit.depth c);
  checki "size 61" 61 (Circuit.size c);
  checkb "eval" true (eval1 c [| true |])

(* ---- majority ---- *)

let test_majority_reference () =
  let rng = Util.Prng.create 1 in
  List.iter
    (fun n ->
      let c = Circuit.majority ~n in
      for _ = 1 to 50 do
        let inputs = Array.init n (fun _ -> Util.Prng.bool rng) in
        let ones = Array.fold_left (fun a b -> a + if b then 1 else 0) 0 inputs in
        let expected = ones > n / 2 in
        checkb (Printf.sprintf "majority n=%d" n) expected (eval1 c inputs)
      done)
    [ 1; 2; 3; 4; 5; 8; 15; 16; 33 ]

(* ---- parity ---- *)

let test_parity_reference () =
  let rng = Util.Prng.create 2 in
  List.iter
    (fun n ->
      let c = Circuit.parity ~n in
      for _ = 1 to 50 do
        let inputs = Array.init n (fun _ -> Util.Prng.bool rng) in
        let expected = Array.fold_left (fun a b -> a <> b) false inputs in
        checkb (Printf.sprintf "parity n=%d" n) expected (eval1 c inputs)
      done)
    [ 1; 2; 3; 7; 32 ]

let test_parity_depth_logarithmic () =
  let c = Circuit.parity ~n:64 in
  checki "depth log2 64" 6 (Circuit.depth c)

(* ---- sum ---- *)

let test_sum_reference () =
  let rng = Util.Prng.create 3 in
  List.iter
    (fun (n, width) ->
      let c = Circuit.sum ~n ~width in
      for _ = 1 to 30 do
        let values = List.init n (fun _ -> Util.Prng.int rng (1 lsl width)) in
        let expected = List.fold_left ( + ) 0 values in
        let out = Circuit.eval c (Circuit.pack_inputs ~width values) in
        let got = Circuit.unpack_output ~width:(Array.length out) out in
        checki (Printf.sprintf "sum n=%d w=%d" n width) expected got
      done)
    [ (2, 4); (3, 4); (5, 3); (8, 8); (16, 2) ]

(* ---- maximum ---- *)

let test_maximum_reference () =
  let rng = Util.Prng.create 4 in
  List.iter
    (fun (n, width) ->
      let c = Circuit.maximum ~n ~width in
      for _ = 1 to 30 do
        let values = List.init n (fun _ -> Util.Prng.int rng (1 lsl width)) in
        let expected = List.fold_left max 0 values in
        let out = Circuit.eval c (Circuit.pack_inputs ~width values) in
        checki (Printf.sprintf "max n=%d w=%d" n width) expected
          (Circuit.unpack_output ~width out)
      done)
    [ (2, 4); (4, 4); (8, 5); (16, 3) ]

(* ---- second price auction ---- *)

let test_auction_reference () =
  let rng = Util.Prng.create 5 in
  List.iter
    (fun (n, width) ->
      let c = Circuit.second_price_auction ~n ~width in
      for _ = 1 to 30 do
        let values = List.init n (fun _ -> Util.Prng.int rng (1 lsl width)) in
        (* Reference: winner = first index with max bid; price = second
           highest (max of the rest). *)
        let maxv = List.fold_left max 0 values in
        let winner =
          let rec find i = function
            | v :: _ when v = maxv -> i
            | _ :: rest -> find (i + 1) rest
            | [] -> assert false
          in
          find 0 values
        in
        let second =
          List.fold_left max 0 (List.filteri (fun i _ -> i <> winner) values)
        in
        let out = Circuit.eval c (Circuit.pack_inputs ~width values) in
        let iw = Array.length out - width in
        let got_winner = Circuit.unpack_output ~width:iw (Array.sub out 0 iw) in
        let got_second = Circuit.unpack_output ~width (Array.sub out iw width) in
        checki (Printf.sprintf "winner n=%d" n) winner got_winner;
        checki (Printf.sprintf "price n=%d" n) second got_second
      done)
    [ (2, 4); (4, 4); (8, 3) ]

(* ---- equality check ---- *)

let test_equality_check_reference () =
  let rng = Util.Prng.create 6 in
  let c = Circuit.equality_check ~n:4 ~width:4 in
  for _ = 1 to 50 do
    let base = Util.Prng.int rng 16 in
    let all_equal = Util.Prng.bool rng in
    let values =
      if all_equal then [ base; base; base; base ]
      else [ base; base; (base + 1) mod 16; base ]
    in
    checkb "equality" all_equal (eval1 c (Circuit.pack_inputs ~width:4 values))
  done

(* ---- builders ---- *)

let test_add_word_carry () =
  let open Circuit in
  let a = Builder.input_word ~offset:0 ~width:4 in
  let b = Builder.input_word ~offset:4 ~width:4 in
  let c = make ~num_inputs:8 ~outputs:(Builder.add_word a b) in
  let rng = Util.Prng.create 7 in
  for _ = 1 to 50 do
    let x = Util.Prng.int rng 16 and y = Util.Prng.int rng 16 in
    let out = eval c (pack_inputs ~width:4 [ x; y ]) in
    checki "sum with carry" (x + y) (unpack_output ~width:5 out)
  done

let test_comparison_builders () =
  let open Circuit in
  let a = Builder.input_word ~offset:0 ~width:4 in
  let b = Builder.input_word ~offset:4 ~width:4 in
  let c =
    make ~num_inputs:8
      ~outputs:[ Builder.lt_word a b; Builder.le_word a b; Builder.eq_word a b ]
  in
  let rng = Util.Prng.create 8 in
  for _ = 1 to 100 do
    let x = Util.Prng.int rng 16 and y = Util.Prng.int rng 16 in
    let out = eval c (pack_inputs ~width:4 [ x; y ]) in
    checkb "lt" (x < y) out.(0);
    checkb "le" (x <= y) out.(1);
    checkb "eq" (x = y) out.(2)
  done

let test_mux_builder () =
  let open Circuit in
  let a = Builder.const_word ~width:4 5 in
  let b = Builder.const_word ~width:4 9 in
  let c = make ~num_inputs:1 ~outputs:(Builder.mux (Input 0) a b) in
  checki "mux true" 5 (unpack_output ~width:4 (eval c [| true |]));
  checki "mux false" 9 (unpack_output ~width:4 (eval c [| false |]))

let test_bitpack_helpers () =
  checki "bits_to_int" 6 (Circuit.bits_to_int [ false; true; true ]);
  let packed = Circuit.pack_inputs ~width:3 [ 5; 2 ] in
  Alcotest.(check (array bool)) "pack layout"
    [| true; false; true; false; true; false |]
    packed

let circuit_prop_majority_monotone =
  QCheck.Test.make ~name:"majority is monotone" ~count:200
    QCheck.(pair (int_range 1 20) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rng = Util.Prng.create seed in
      let c = Circuit.majority ~n in
      let inputs = Array.init n (fun _ -> Util.Prng.bool rng) in
      let flipped = Array.copy inputs in
      let idx = Util.Prng.int rng n in
      flipped.(idx) <- true;
      (* Turning a bit on can only turn the majority on. *)
      let before = (Circuit.eval c inputs).(0) in
      let after = (Circuit.eval c flipped).(0) in
      (not before) || after)

let () =
  Alcotest.run "circuit"
    [
      ( "core",
        [
          Alcotest.test_case "gate semantics" `Quick test_gates;
          Alcotest.test_case "bad input index" `Quick test_make_rejects_bad_input_index;
          Alcotest.test_case "wrong arity" `Quick test_eval_rejects_wrong_arity;
          Alcotest.test_case "depth & size" `Quick test_depth_size;
          Alcotest.test_case "deep sharing linear" `Quick test_deep_sharing_no_blowup;
        ] );
      ( "functionalities",
        [
          Alcotest.test_case "majority vs reference" `Quick test_majority_reference;
          Alcotest.test_case "parity vs reference" `Quick test_parity_reference;
          Alcotest.test_case "parity depth" `Quick test_parity_depth_logarithmic;
          Alcotest.test_case "sum vs reference" `Quick test_sum_reference;
          Alcotest.test_case "maximum vs reference" `Quick test_maximum_reference;
          Alcotest.test_case "auction vs reference" `Quick test_auction_reference;
          Alcotest.test_case "equality check" `Quick test_equality_check_reference;
          QCheck_alcotest.to_alcotest circuit_prop_majority_monotone;
        ] );
      ( "builders",
        [
          Alcotest.test_case "add_word carry" `Quick test_add_word_carry;
          Alcotest.test_case "comparisons" `Quick test_comparison_builders;
          Alcotest.test_case "mux" `Quick test_mux_builder;
          Alcotest.test_case "bitpack helpers" `Quick test_bitpack_helpers;
        ] );
    ]
