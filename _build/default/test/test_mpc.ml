(* Tests for Algorithm 3 — the Õ(n²/h) MPC-with-abort protocol (Thm 1). *)

let checkb = Alcotest.(check bool)

let make_config ?(pke = (module Crypto.Pke.Regev : Crypto.Pke.S)) ~n ~h ~circuit ~input_width () =
  {
    Mpc.Mpc_abort.params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 ();
    pke;
    circuit;
    input_width;
  }

let run ?(seed = 1) config ~corruption ~inputs ~adv =
  let net = Netsim.Net.create (Array.length inputs) in
  let rng = Util.Prng.create seed in
  let outs = Mpc.Mpc_abort.run net rng config ~corruption ~inputs ~adv in
  (net, outs)

let assert_all_correct config outs corruption inputs =
  let expected = Mpc.Mpc_abort.expected_output config ~inputs in
  checkb "all honest output f(x)" true
    (Mpc.Outcome.all_honest_output_value ~equal:Bytes.equal ~expected outs corruption)

let assert_safe config outs corruption inputs =
  (* Agreement-or-abort plus: any produced output is the correct one
     (inputs here are not substituted by our attack strategies). *)
  let expected = Mpc.Mpc_abort.expected_output config ~inputs in
  checkb "agreement or abort" true
    (Mpc.Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption);
  Array.iteri
    (fun i o ->
      if Netsim.Corruption.is_honest corruption i then
        match o with
        | Mpc.Outcome.Output v ->
          checkb (Printf.sprintf "party %d output correct" i) true (Bytes.equal v expected)
        | Mpc.Outcome.Abort _ -> ())
    outs

let test_honest_majority_circuit () =
  let n = 16 and h = 8 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let corruption = Netsim.Corruption.none ~n in
  for seed = 1 to 3 do
    let inputs = Array.init n (fun i -> (i + seed) mod 2) in
    let _, outs = run ~seed config ~corruption ~inputs ~adv:Mpc.Mpc_abort.honest_adv in
    assert_all_correct config outs corruption inputs
  done

let test_honest_parity_circuit () =
  let n = 12 and h = 6 in
  let config = make_config ~n ~h ~circuit:(Circuit.parity ~n) ~input_width:1 () in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> i land 1) in
  let _, outs = run config ~corruption ~inputs ~adv:Mpc.Mpc_abort.honest_adv in
  assert_all_correct config outs corruption inputs

let test_honest_sum_circuit () =
  let n = 10 and h = 5 in
  let config = make_config ~n ~h ~circuit:(Circuit.sum ~n ~width:4) ~input_width:4 () in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> (i * 7) mod 16) in
  let _, outs = run config ~corruption ~inputs ~adv:Mpc.Mpc_abort.honest_adv in
  assert_all_correct config outs corruption inputs

let test_honest_with_simulated_pke () =
  let n = 20 and h = 10 in
  let config =
    make_config ~pke:(Crypto.Pke.make_simulated ~seed:7 ()) ~n ~h ~circuit:(Circuit.majority ~n)
      ~input_width:1 ()
  in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> 1 - (i mod 2)) in
  let _, outs = run config ~corruption ~inputs ~adv:Mpc.Mpc_abort.honest_adv in
  assert_all_correct config outs corruption inputs

let test_passive_corruption_still_correct () =
  (* Corrupted parties that follow the protocol (honest-but-curious): all
     honest parties still compute f. *)
  let n = 16 and h = 8 in
  let rng = Util.Prng.create 5 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let corruption = Netsim.Corruption.random rng ~n ~h in
  let inputs = Array.init n (fun i -> i mod 2) in
  let _, outs = run config ~corruption ~inputs ~adv:Mpc.Mpc_abort.honest_adv in
  assert_all_correct config outs corruption inputs

let adversarial_case name adv =
  Alcotest.test_case name `Quick (fun () ->
      let n = 16 and h = 8 in
      let rng = Util.Prng.create 11 in
      let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
      for seed = 1 to 3 do
        let corruption = Netsim.Corruption.random rng ~n ~h in
        let inputs = Array.init n (fun i -> i mod 2) in
        let _, outs = run ~seed config ~corruption ~inputs ~adv in
        assert_safe config outs corruption inputs
      done)

let test_pk_equivocation_aborts_split () =
  (* pk equivocation sends different keys to different halves: honest
     parties must not end up with two different accepted keys leading to
     different outputs. *)
  let n = 16 and h = 8 in
  let rng = Util.Prng.create 13 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let corruption = Netsim.Corruption.random rng ~n ~h in
  let inputs = Array.init n (fun i -> i mod 2) in
  let _, outs = run config ~corruption ~inputs ~adv:Mpc.Attacks.pk_equivocation in
  assert_safe config outs corruption inputs;
  (* If any honest member is present, honest parties receiving both keys
     must abort. Check that at least the attack did not pass silently when
     a corrupted member existed. *)
  checkb "execution completed" true (Array.length outs = n)

let test_dishonest_majority () =
  (* 12 of 16 corrupted, running the output-tampering attack. *)
  let n = 16 and h = 4 in
  let rng = Util.Prng.create 17 in
  let config = make_config ~n ~h ~circuit:(Circuit.parity ~n) ~input_width:1 () in
  for seed = 1 to 3 do
    let corruption = Netsim.Corruption.random rng ~n ~h in
    let inputs = Array.init n (fun i -> (i / 2) mod 2) in
    let _, outs = run ~seed config ~corruption ~inputs ~adv:Mpc.Attacks.output_tamper in
    assert_safe config outs corruption inputs
  done

let test_metered_phases_sum_to_total () =
  let n = 12 and h = 6 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> i mod 2) in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 3 in
  let outs, costs = Mpc.Mpc_abort.run_metered net rng config ~corruption ~inputs ~adv:Mpc.Mpc_abort.honest_adv in
  assert_all_correct config outs corruption inputs;
  let sum =
    costs.Mpc.Mpc_abort.election_bits + costs.keygen_bits + costs.pk_forward_bits
    + costs.input_bits + costs.equality_bits + costs.compute_bits + costs.output_bits
  in
  Alcotest.(check int) "phases account for everything" (Netsim.Net.total_bits net) sum

let test_cost_decreases_with_h () =
  (* Theorem 1's shape at fixed n: more honest parties, less traffic. *)
  let cost h =
    let n = 48 in
    let config =
      make_config ~pke:(Crypto.Pke.make_simulated ~seed:1 ()) ~n ~h ~circuit:(Circuit.parity ~n)
        ~input_width:1 ()
    in
    let corruption = Netsim.Corruption.none ~n in
    let inputs = Array.make n 0 in
    let net, _ = run config ~corruption ~inputs ~adv:Mpc.Mpc_abort.honest_adv in
    ignore config;
    Netsim.Net.total_bits net
  in
  checkb "h=24 cheaper than h=6" true (cost 24 < cost 6)

let prop_agreement_under_mixed_attacks =
  QCheck.Test.make ~name:"mpc agreement-or-abort under random attacks" ~count:8
    QCheck.(pair (int_bound 10_000) (int_range 0 3))
    (fun (seed, attack_id) ->
      let n = 12 in
      let rng = Util.Prng.create seed in
      let h = 3 + Util.Prng.int rng 8 in
      let corruption = Netsim.Corruption.random rng ~n ~h in
      let config =
        make_config ~pke:(Crypto.Pke.make_simulated ~seed ()) ~n ~h ~circuit:(Circuit.majority ~n)
          ~input_width:1 ()
      in
      let adv =
        match attack_id with
        | 0 -> Mpc.Attacks.pk_equivocation
        | 1 -> Mpc.Attacks.ct_equivocation
        | 2 -> Mpc.Attacks.bad_partial_decryptions
        | _ -> Mpc.Attacks.output_tamper
      in
      let inputs = Array.init n (fun i -> i mod 2) in
      let _, outs = run ~seed config ~corruption ~inputs ~adv in
      let expected = Mpc.Mpc_abort.expected_output config ~inputs in
      Mpc.Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption
      && Array.for_all
           (fun o ->
             match o with Mpc.Outcome.Output v -> Bytes.equal v expected | _ -> true)
           (Array.mapi
              (fun i o -> if Netsim.Corruption.is_honest corruption i then o else Mpc.Outcome.Abort Mpc.Outcome.Bad_signature)
              outs))

let () =
  Alcotest.run "mpc_abort"
    [
      ( "honest",
        [
          Alcotest.test_case "majority" `Quick test_honest_majority_circuit;
          Alcotest.test_case "parity" `Quick test_honest_parity_circuit;
          Alcotest.test_case "sum" `Quick test_honest_sum_circuit;
          Alcotest.test_case "simulated pke backend" `Quick test_honest_with_simulated_pke;
          Alcotest.test_case "passive corruption" `Quick test_passive_corruption_still_correct;
          Alcotest.test_case "metered phases" `Quick test_metered_phases_sum_to_total;
          Alcotest.test_case "cost decreases with h" `Quick test_cost_decreases_with_h;
        ] );
      ( "adversarial",
        [
          adversarial_case "ct equivocation" Mpc.Attacks.ct_equivocation;
          adversarial_case "bad partial decryptions" Mpc.Attacks.bad_partial_decryptions;
          adversarial_case "output tamper" Mpc.Attacks.output_tamper;
          Alcotest.test_case "pk equivocation" `Quick test_pk_equivocation_aborts_split;
          Alcotest.test_case "dishonest majority" `Quick test_dishonest_majority;
          QCheck_alcotest.to_alcotest prop_agreement_under_mixed_attacks;
        ] );
    ]
