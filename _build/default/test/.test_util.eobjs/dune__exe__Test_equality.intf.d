test/test_equality.mli:
