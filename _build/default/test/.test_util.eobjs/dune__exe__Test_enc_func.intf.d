test/test_enc_func.mli:
