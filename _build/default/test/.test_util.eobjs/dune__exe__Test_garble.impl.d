test/test_garble.ml: Alcotest Array Bytes Char Circuit Crypto List Mpc Netsim Printf QCheck QCheck_alcotest Util
