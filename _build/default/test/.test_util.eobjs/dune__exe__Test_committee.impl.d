test/test_committee.ml: Alcotest Array List Mpc Netsim Util
