test/test_field.ml: Alcotest Array Field Gen List QCheck QCheck_alcotest Util
