test/test_broadcast.ml: Alcotest Array Bytes List Mpc Netsim QCheck QCheck_alcotest Util
