test/test_lower_bound.mli:
