test/test_garble.mli:
