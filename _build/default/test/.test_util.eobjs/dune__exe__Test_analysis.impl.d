test/test_analysis.ml: Alcotest Analysis List String
