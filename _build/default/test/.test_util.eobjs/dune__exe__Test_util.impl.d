test/test_util.ml: Alcotest Array Bytes Gen Int64 List Printf QCheck QCheck_alcotest Util
