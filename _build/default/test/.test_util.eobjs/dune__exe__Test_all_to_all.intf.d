test/test_all_to_all.mli:
