test/test_sparse_gossip.mli:
