test/test_core_misc.ml: Alcotest Array Bytes Int List Mpc Netsim String Util
