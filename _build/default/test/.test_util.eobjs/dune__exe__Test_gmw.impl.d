test/test_gmw.ml: Alcotest Array Bytes Circuit List Mpc Netsim Printf QCheck QCheck_alcotest Util
