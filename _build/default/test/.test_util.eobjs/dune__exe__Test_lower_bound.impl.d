test/test_lower_bound.ml: Alcotest Mpc Util
