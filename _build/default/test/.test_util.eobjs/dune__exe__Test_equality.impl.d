test/test_equality.ml: Alcotest Array Bytes Crypto List Mpc Netsim Printf Util
