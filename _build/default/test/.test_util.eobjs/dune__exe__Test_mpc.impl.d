test/test_mpc.ml: Alcotest Array Bytes Circuit Crypto Mpc Netsim Printf QCheck QCheck_alcotest Util
