test/test_local.ml: Alcotest Array Bytes Circuit Crypto List Mpc Netsim Util
