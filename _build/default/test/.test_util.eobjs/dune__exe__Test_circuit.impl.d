test/test_circuit.ml: Alcotest Array Builder Circuit List Printf QCheck QCheck_alcotest Util
