test/test_enc_func.ml: Alcotest Bytes Char List Mpc Netsim Printf Util
