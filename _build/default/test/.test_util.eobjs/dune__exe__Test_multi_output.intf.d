test/test_multi_output.mli:
