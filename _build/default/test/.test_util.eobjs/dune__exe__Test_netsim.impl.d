test/test_netsim.ml: Alcotest Bytes List Netsim Util
