test/test_crypto.ml: Alcotest Bytes Char Crypto Field List Printf String Util
