test/test_multi_output.ml: Alcotest Array Bytes Circuit Crypto List Mpc Netsim Printf Util
