test/test_core_misc.mli:
