test/test_all_to_all.ml: Alcotest Array Bytes List Mpc Netsim Printf QCheck QCheck_alcotest Util
