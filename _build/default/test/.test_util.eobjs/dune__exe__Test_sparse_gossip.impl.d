test/test_sparse_gossip.ml: Alcotest Array Bytes List Mpc Netsim Printf Util
