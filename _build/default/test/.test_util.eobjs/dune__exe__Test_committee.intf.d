test/test_committee.mli:
