(* Tests for modular arithmetic, primality, prime fields, polynomials. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- Modarith ---- *)

let test_modarith_basic () =
  checki "add" 1 (Field.Modarith.add_mod 5 3 7);
  checki "add no wrap" 5 (Field.Modarith.add_mod 2 3 7);
  checki "sub" 6 (Field.Modarith.sub_mod 2 3 7);
  checki "mul" 1 (Field.Modarith.mul_mod 3 5 7);
  checki "pow" 4 (Field.Modarith.pow_mod 2 10 10);
  checki "pow zero" 1 (Field.Modarith.pow_mod 5 0 7)

let test_modarith_pow_fermat () =
  (* Fermat's little theorem on a 30-bit prime. *)
  let p = (1 lsl 30) - 35 in
  List.iter
    (fun a -> checki "a^(p-1) = 1" 1 (Field.Modarith.pow_mod a (p - 1) p))
    [ 2; 3; 12345; 99999989 ]

let test_modarith_egcd () =
  let g, x, y = Field.Modarith.egcd 240 46 in
  checki "gcd" 2 g;
  checki "bezout" 2 ((240 * x) + (46 * y))

let test_modarith_inv () =
  let p = 1000003 in
  for a = 1 to 50 do
    let inv = Field.Modarith.inv_mod a p in
    checki "a * inv(a) = 1" 1 (Field.Modarith.mul_mod a inv p)
  done

let test_modarith_inv_noninvertible () =
  checkb "raises" true
    (try
       ignore (Field.Modarith.inv_mod 4 8);
       false
     with Invalid_argument _ -> true)

let mod_prop =
  QCheck.Test.make ~name:"mul_mod matches naive" ~count:1000
    QCheck.(triple (int_bound ((1 lsl 30) - 1)) (int_bound ((1 lsl 30) - 1)) (int_range 2 ((1 lsl 30) - 1)))
    (fun (a, b, m) ->
      let a = a mod m and b = b mod m in
      Field.Modarith.mul_mod a b m = a * b mod m)

(* ---- Primality ---- *)

let test_small_primes () =
  let primes = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 997; 7919 ] in
  List.iter (fun p -> checkb (string_of_int p) true (Field.Primality.is_prime p)) primes;
  let composites = [ 0; 1; 4; 6; 9; 15; 21; 25; 49; 91; 561; 1105; 1729; 2465 ] in
  (* 561, 1105, 1729, 2465 are Carmichael numbers — the classic MR trap. *)
  List.iter (fun c -> checkb (string_of_int c) false (Field.Primality.is_prime c)) composites

let test_known_30bit_prime () =
  checkb "2^30-35 prime" true (Field.Primality.is_prime ((1 lsl 30) - 35));
  checkb "2^30-34 composite" false (Field.Primality.is_prime ((1 lsl 30) - 34))

let test_primality_matches_trial_division () =
  let trial n =
    if n < 2 then false
    else begin
      let rec go d = if d * d > n then true else if n mod d = 0 then false else go (d + 1) in
      go 2
    end
  in
  for n = 0 to 2000 do
    checkb (string_of_int n) (trial n) (Field.Primality.is_prime n)
  done

let test_random_prime () =
  let rng = Util.Prng.create 1 in
  for _ = 1 to 50 do
    let p = Field.Primality.random_prime rng ~lo:1000 ~hi:100000 in
    checkb "prime" true (Field.Primality.is_prime p);
    checkb "range" true (p >= 1000 && p <= 100000)
  done

let test_random_prime_bits () =
  let rng = Util.Prng.create 2 in
  for _ = 1 to 20 do
    let p = Field.Primality.random_prime_bits rng ~bits:29 in
    checkb "prime" true (Field.Primality.is_prime p);
    checkb "29 bits" true (p >= 1 lsl 28 && p < 1 lsl 29)
  done

let test_random_prime_empty_interval () =
  let rng = Util.Prng.create 3 in
  checkb "raises" true
    (try
       ignore (Field.Primality.random_prime rng ~lo:24 ~hi:28);
       false
     with Invalid_argument _ -> true)

let test_next_prime () =
  checki "next_prime 14" 17 (Field.Primality.next_prime 14);
  checki "next_prime 17" 17 (Field.Primality.next_prime 17);
  checki "next_prime 0" 2 (Field.Primality.next_prime 0)

(* ---- Gf ---- *)

module F = Field.Gf.F30

let test_gf_basic_laws () =
  let rng = Util.Prng.create 4 in
  for _ = 1 to 200 do
    let a = F.random rng and b = F.random rng and c = F.random rng in
    checki "add comm" (F.add a b) (F.add b a);
    checki "mul comm" (F.mul a b) (F.mul b a);
    checki "distrib" (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c));
    checki "add neg" F.zero (F.add a (F.neg a));
    checki "sub self" F.zero (F.sub a a)
  done

let test_gf_inverse () =
  let rng = Util.Prng.create 5 in
  for _ = 1 to 200 do
    let a = F.random_nonzero rng in
    checki "a/a = 1" F.one (F.div a a);
    checki "a * inv a" F.one (F.mul a (F.inv a))
  done

let test_gf_of_int_negative () =
  checki "negative reduces" (F.p - 1) (F.of_int (-1));
  checki "wraps" 1 (F.of_int (F.p + 1))

let test_gf_make_rejects_composite () =
  checkb "raises" true
    (try
       ignore (Field.Gf.make 1000);
       false
     with Invalid_argument _ -> true)

let test_gf_make_small_prime () =
  let (module F7) = Field.Gf.make 7 in
  checki "3+5 mod 7" 1 (F7.add 3 5);
  checki "inv 3 = 5" 5 (F7.inv 3)

(* ---- Poly ---- *)

module P = Field.Poly.Make (F)

let test_poly_eval_horner () =
  (* p(x) = 2 + 3x + x^2 at x = 5: 2 + 15 + 25 = 42. *)
  let p = P.of_coeffs [| 2; 3; 1 |] in
  checki "eval" 42 (P.eval p 5);
  checki "eval at 0" 2 (P.eval p 0)

let test_poly_zero_and_normalize () =
  checki "zero degree" (-1) (P.degree P.zero);
  checki "trailing zeros trimmed" 1 (P.degree (P.of_coeffs [| 1; 2; 0; 0 |]));
  checki "eval zero poly" 0 (P.eval P.zero 17)

let test_poly_add_mul () =
  let a = P.of_coeffs [| 1; 1 |] in
  (* (1+x)^2 = 1 + 2x + x^2 *)
  let sq = P.mul a a in
  checkb "square" true (P.equal sq (P.of_coeffs [| 1; 2; 1 |]));
  let s = P.add a (P.of_coeffs [| 0; F.neg 1 |]) in
  checkb "cancellation" true (P.equal s (P.of_coeffs [| 1 |]))

let test_poly_interpolate_roundtrip () =
  let rng = Util.Prng.create 6 in
  for _ = 1 to 50 do
    let deg = Util.Prng.int rng 6 in
    let p = P.random rng ~degree:deg ~const:(F.random rng) in
    let pts = List.init (deg + 1) (fun i -> (F.of_int (i + 1), P.eval p (F.of_int (i + 1)))) in
    let q = P.interpolate pts in
    checkb "interpolation recovers" true (P.equal p q || P.degree p < deg)
  done

let test_poly_interpolate_at_zero () =
  let rng = Util.Prng.create 7 in
  for _ = 1 to 50 do
    let secret = F.random rng in
    let p = P.random rng ~degree:3 ~const:secret in
    let pts = List.init 4 (fun i -> (F.of_int (i + 1), P.eval p (F.of_int (i + 1)))) in
    checki "recovers constant" secret (P.interpolate_at_zero pts)
  done

let test_poly_interpolate_duplicate_x () =
  checkb "raises" true
    (try
       ignore (P.interpolate [ (1, 2); (1, 3) ]);
       false
     with Invalid_argument _ -> true)

let poly_prop_eval_additive =
  QCheck.Test.make ~name:"eval (p+q) = eval p + eval q" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 6) (int_bound 1000)) (list_of_size Gen.(1 -- 6) (int_bound 1000)))
    (fun (ca, cb) ->
      let pa = P.of_coeffs (Array.of_list (List.map F.of_int ca)) in
      let pb = P.of_coeffs (Array.of_list (List.map F.of_int cb)) in
      let x = 12345 in
      F.add (P.eval pa x) (P.eval pb x) = P.eval (P.add pa pb) x)

let () =
  Alcotest.run "field"
    [
      ( "modarith",
        [
          Alcotest.test_case "basic ops" `Quick test_modarith_basic;
          Alcotest.test_case "fermat" `Quick test_modarith_pow_fermat;
          Alcotest.test_case "egcd bezout" `Quick test_modarith_egcd;
          Alcotest.test_case "inverse" `Quick test_modarith_inv;
          Alcotest.test_case "non-invertible" `Quick test_modarith_inv_noninvertible;
          QCheck_alcotest.to_alcotest mod_prop;
        ] );
      ( "primality",
        [
          Alcotest.test_case "small primes & carmichael" `Quick test_small_primes;
          Alcotest.test_case "30-bit boundary" `Quick test_known_30bit_prime;
          Alcotest.test_case "matches trial division" `Quick test_primality_matches_trial_division;
          Alcotest.test_case "random prime" `Quick test_random_prime;
          Alcotest.test_case "random prime bits" `Quick test_random_prime_bits;
          Alcotest.test_case "empty interval" `Quick test_random_prime_empty_interval;
          Alcotest.test_case "next prime" `Quick test_next_prime;
        ] );
      ( "gf",
        [
          Alcotest.test_case "field laws" `Quick test_gf_basic_laws;
          Alcotest.test_case "inverses" `Quick test_gf_inverse;
          Alcotest.test_case "of_int negative" `Quick test_gf_of_int_negative;
          Alcotest.test_case "make rejects composite" `Quick test_gf_make_rejects_composite;
          Alcotest.test_case "make GF(7)" `Quick test_gf_make_small_prime;
        ] );
      ( "poly",
        [
          Alcotest.test_case "horner eval" `Quick test_poly_eval_horner;
          Alcotest.test_case "zero & normalize" `Quick test_poly_zero_and_normalize;
          Alcotest.test_case "add/mul" `Quick test_poly_add_mul;
          Alcotest.test_case "interpolate roundtrip" `Quick test_poly_interpolate_roundtrip;
          Alcotest.test_case "interpolate at zero" `Quick test_poly_interpolate_at_zero;
          Alcotest.test_case "duplicate x rejected" `Quick test_poly_interpolate_duplicate_x;
          QCheck_alcotest.to_alcotest poly_prop_eval_additive;
        ] );
    ]
