(* Tests for the encrypted functionality (Theorem 9 machinery). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let params n = Mpc.Params.make ~n ~h:(max 1 (n / 2)) ~lambda:8 ~alpha:2 ()

(* A simple functionality: XOR of all input bytes, delivered to everyone
   as a private output. *)
let xor_eval members_expected inputs =
  Alcotest.(check int) "eval sees all members" members_expected (List.length inputs);
  let acc = Bytes.make 1 '\000' in
  List.iter
    (fun (_, b) ->
      Bytes.iter
        (fun c -> Bytes.set acc 0 (Char.chr (Char.code (Bytes.get acc 0) lxor Char.code c)))
        b)
    inputs;
  {
    Mpc.Enc_func.public_output = Bytes.empty;
    private_outputs = List.map (fun (i, _) -> (i, Bytes.copy acc)) inputs;
  }

let run ?(seed = 1) ~n ~participants ~corruption ~adv ~eval () =
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create seed in
  let outs =
    Mpc.Enc_func.run net rng (params n) ~participants
      ~private_input:(fun i -> Bytes.make 4 (Char.chr (i + 65)))
      ~depth:3 ~eval ~corruption ~adv
  in
  (net, outs)

let test_honest_private_outputs () =
  let n = 8 in
  let participants = [ 0; 2; 4; 6 ] in
  let corruption = Netsim.Corruption.none ~n in
  let _, outs =
    run ~n ~participants ~corruption ~adv:Mpc.Enc_func.honest_adv
      ~eval:(xor_eval 4) ()
  in
  List.iter
    (fun (i, o) ->
      match o with
      | Mpc.Outcome.Output (_, priv) -> checki (Printf.sprintf "party %d output" i) 1 (Bytes.length priv)
      | Mpc.Outcome.Abort r -> Alcotest.failf "abort: %s" (Mpc.Outcome.reason_to_string r))
    outs

let test_honest_public_output_free () =
  (* Public outputs cost nothing beyond the round-1 broadcast. *)
  let n = 8 in
  let participants = [ 0; 1; 2; 3 ] in
  let corruption = Netsim.Corruption.none ~n in
  let eval_pub inputs =
    ignore inputs;
    { Mpc.Enc_func.public_output = Bytes.of_string "public-key-material"; private_outputs = [] }
  in
  let eval_priv inputs =
    {
      Mpc.Enc_func.public_output = Bytes.empty;
      private_outputs = List.map (fun (i, _) -> (i, Bytes.make 100 'y')) inputs;
    }
  in
  let net_pub, outs_pub = run ~n ~participants ~corruption ~adv:Mpc.Enc_func.honest_adv ~eval:eval_pub () in
  let net_priv, _ = run ~n ~participants ~corruption ~adv:Mpc.Enc_func.honest_adv ~eval:eval_priv () in
  List.iter
    (fun (_, o) ->
      match o with
      | Mpc.Outcome.Output (pub, _) ->
        checkb "public delivered" true (Bytes.equal pub (Bytes.of_string "public-key-material"))
      | Mpc.Outcome.Abort _ -> Alcotest.fail "abort")
    outs_pub;
  checkb "private outputs cost extra" true
    (Netsim.Net.total_bits net_priv > Netsim.Net.total_bits net_pub)

let test_tampered_partial_dec_detected () =
  let n = 8 in
  let participants = [ 0; 1; 2; 3 ] in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 1 ]) in
  let adv =
    { Mpc.Enc_func.honest_adv with Mpc.Enc_func.tamper_partial = Some (fun ~me:_ ~dst:_ -> true) }
  in
  let _, outs = run ~n ~participants ~corruption ~adv ~eval:(xor_eval 4) () in
  List.iter
    (fun (i, o) ->
      if Netsim.Corruption.is_honest corruption i then
        match o with
        | Mpc.Outcome.Abort (Mpc.Outcome.Bad_proof _) -> ()
        | Mpc.Outcome.Abort r ->
          Alcotest.failf "wrong abort reason: %s" (Mpc.Outcome.reason_to_string r)
        | Mpc.Outcome.Output _ -> Alcotest.fail "honest party accepted a forged proof")
    outs

let test_dropped_partial_dec_detected () =
  let n = 8 in
  let participants = [ 0; 1; 2; 3 ] in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 2 ]) in
  let adv =
    { Mpc.Enc_func.honest_adv with Mpc.Enc_func.drop_partial = Some (fun ~me:_ ~dst:_ -> true) }
  in
  let _, outs = run ~n ~participants ~corruption ~adv ~eval:(xor_eval 4) () in
  List.iter
    (fun (i, o) ->
      if Netsim.Corruption.is_honest corruption i then
        checkb (Printf.sprintf "party %d aborts on missing pdec" i) true (Mpc.Outcome.is_abort o))
    outs

let test_input_substitution_changes_output () =
  (* Ideal-world semantics: a corrupted participant may substitute its
     input; the functionality computes on the substituted value for
     everyone consistently. *)
  let n = 6 in
  let participants = [ 0; 1; 2 ] in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 1 ]) in
  let adv =
    {
      Mpc.Enc_func.honest_adv with
      Mpc.Enc_func.substitute_input = Some (fun ~me:_ _ -> Bytes.of_string "\xFF\x00\x00\x00");
    }
  in
  let _, outs_sub = run ~n ~participants ~corruption ~adv ~eval:(xor_eval 3) () in
  let _, outs_honest =
    run ~n ~participants ~corruption ~adv:Mpc.Enc_func.honest_adv ~eval:(xor_eval 3) ()
  in
  let out_of outs i =
    match List.assoc i outs with
    | Mpc.Outcome.Output (_, priv) -> priv
    | Mpc.Outcome.Abort _ -> Alcotest.fail "unexpected abort"
  in
  checkb "substitution changed the result" false
    (Bytes.equal (out_of outs_sub 0) (out_of outs_honest 0));
  (* But all honest participants agree with each other. *)
  checkb "consistent across members" true (Bytes.equal (out_of outs_sub 0) (out_of outs_sub 2))

let test_sb_equivocation_aborts () =
  (* Equivocating in the round-1 broadcast trips the fingerprint check. *)
  let n = 8 in
  let participants = [ 0; 1; 2; 3 ] in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 3 ]) in
  let adv =
    {
      Mpc.Enc_func.honest_adv with
      Mpc.Enc_func.sb =
        {
          Mpc.All_to_all.honest_adv with
          Mpc.All_to_all.input_value =
            Some (fun ~me:_ ~dst -> Bytes.make 16 (if dst < 2 then 'L' else 'R'));
        };
    }
  in
  let _, outs = run ~n ~participants ~corruption ~adv ~eval:(xor_eval 4) () in
  List.iter
    (fun (i, o) ->
      if Netsim.Corruption.is_honest corruption i then
        checkb (Printf.sprintf "party %d aborts on SB equivocation" i) true
          (Mpc.Outcome.is_abort o))
    outs

let test_round1_size_scales_with_depth () =
  let n = 6 in
  let participants = [ 0; 1; 2 ] in
  let corruption = Netsim.Corruption.none ~n in
  let cost depth =
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create 1 in
    ignore
      (Mpc.Enc_func.run net rng (params n) ~participants
         ~private_input:(fun _ -> Bytes.make 4 'i')
         ~depth
         ~eval:(fun inputs ->
           { Mpc.Enc_func.public_output = Bytes.empty;
             private_outputs = List.map (fun (i, _) -> (i, Bytes.make 1 'o')) inputs })
         ~corruption ~adv:Mpc.Enc_func.honest_adv);
    Netsim.Net.total_bits net
  in
  checkb "deeper circuits cost more" true (cost 50 > cost 1)

let test_eval_rejects_foreign_recipient () =
  let n = 6 in
  let corruption = Netsim.Corruption.none ~n in
  checkb "raises" true
    (try
       ignore
         (run ~n ~participants:[ 0; 1 ] ~corruption ~adv:Mpc.Enc_func.honest_adv
            ~eval:(fun _ ->
              { Mpc.Enc_func.public_output = Bytes.empty;
                private_outputs = [ (5, Bytes.make 1 'x') ] })
            ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "enc_func"
    [
      ( "honest",
        [
          Alcotest.test_case "private outputs" `Quick test_honest_private_outputs;
          Alcotest.test_case "public output free" `Quick test_honest_public_output_free;
          Alcotest.test_case "round-1 scales with depth" `Quick test_round1_size_scales_with_depth;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "tampered partial dec" `Quick test_tampered_partial_dec_detected;
          Alcotest.test_case "dropped partial dec" `Quick test_dropped_partial_dec_detected;
          Alcotest.test_case "input substitution" `Quick test_input_substitution_changes_output;
          Alcotest.test_case "SB equivocation" `Quick test_sb_equivocation_aborts;
          Alcotest.test_case "foreign recipient rejected" `Quick test_eval_rejects_foreign_recipient;
        ] );
    ]
