(* Tests for the Theorem 3 lower-bound reproduction (Appendix A). *)

let checkb = Alcotest.(check bool)

let test_threshold_formula () =
  Alcotest.(check (float 1e-9)) "threshold" 4.0 (Mpc.Lower_bound.threshold ~n:64 ~h:3);
  Alcotest.(check (float 1e-9)) "threshold n/8(h-1)" (100.0 /. 72.0)
    (Mpc.Lower_bound.threshold ~n:100 ~h:10)

let test_isolation_bound_monotone () =
  (* More contacts → harder to isolate. *)
  let p1 = Mpc.Lower_bound.isolation_probability_bound ~n:100 ~h:10 ~degree:1 in
  let p5 = Mpc.Lower_bound.isolation_probability_bound ~n:100 ~h:10 ~degree:5 in
  let p20 = Mpc.Lower_bound.isolation_probability_bound ~n:100 ~h:10 ~degree:20 in
  checkb "monotone" true (p1 > p5 && p5 > p20);
  checkb "probabilities" true (p1 <= 1.0 && p20 >= 0.0)

let test_attack_succeeds_below_threshold () =
  (* Degree well below n/8(h-1): the victim is isolated with constant
     probability and the attack forces disagreement without abort. *)
  let rng = Util.Prng.create 1 in
  let rates =
    Mpc.Lower_bound.measure rng ~n:96 ~h:4 ~degree:1 ~trials:200 ~victim_is_sender:false
  in
  checkb "isolation frequent" true (rates.Mpc.Lower_bound.isolation_rate > 0.5);
  checkb "attack succeeds often" true (rates.Mpc.Lower_bound.success_rate > 0.3)

let test_attack_fails_above_threshold () =
  (* Degree far above the threshold: honest contact almost surely exists
     and the attack dies. *)
  let rng = Util.Prng.create 2 in
  let rates =
    Mpc.Lower_bound.measure rng ~n:96 ~h:24 ~degree:48 ~trials:100 ~victim_is_sender:false
  in
  checkb "isolation rare" true (rates.Mpc.Lower_bound.isolation_rate < 0.05);
  checkb "attack rare" true (rates.Mpc.Lower_bound.success_rate < 0.05)

let test_sender_victim_variant () =
  let rng = Util.Prng.create 3 in
  let low =
    Mpc.Lower_bound.measure rng ~n:96 ~h:4 ~degree:1 ~trials:200 ~victim_is_sender:true
  in
  let high =
    Mpc.Lower_bound.measure rng ~n:96 ~h:24 ~degree:48 ~trials:100 ~victim_is_sender:true
  in
  checkb "sender isolation attack works at low degree" true
    (low.Mpc.Lower_bound.success_rate > high.Mpc.Lower_bound.success_rate);
  checkb "dies at high degree" true (high.Mpc.Lower_bound.success_rate < 0.1)

let test_success_rate_decreases_with_degree () =
  let rng = Util.Prng.create 4 in
  let rate degree =
    (Mpc.Lower_bound.measure rng ~n:64 ~h:8 ~degree ~trials:150 ~victim_is_sender:false)
      .Mpc.Lower_bound.success_rate
  in
  let r1 = rate 1 and r4 = rate 4 and r16 = rate 16 in
  checkb "decreasing" true (r1 >= r4 && r4 >= r16)

let test_measured_isolation_matches_analytic () =
  let rng = Util.Prng.create 5 in
  let n = 80 and h = 8 and degree = 3 in
  let rates =
    Mpc.Lower_bound.measure rng ~n ~h ~degree ~trials:400 ~victim_is_sender:false
  in
  (* The analytic bound uses ~degree contacts; the victim's real contact set
     includes incoming edges too (≈ 2·degree effective), so the measured
     rate is below the out-degree-only analytic value. Sanity band: *)
  let analytic = Mpc.Lower_bound.isolation_probability_bound ~n ~h ~degree:(2 * degree) in
  checkb "within band" true
    (abs_float (rates.Mpc.Lower_bound.isolation_rate -. analytic) < 0.25)

let test_bad_arguments () =
  let rng = Util.Prng.create 6 in
  checkb "h=1 rejected" true
    (try
       ignore (Mpc.Lower_bound.run_trial rng ~n:10 ~h:1 ~degree:2 ~victim_is_sender:false);
       false
     with Invalid_argument _ -> true);
  checkb "degree=n rejected" true
    (try
       ignore (Mpc.Lower_bound.run_trial rng ~n:10 ~h:3 ~degree:10 ~victim_is_sender:false);
       false
     with Invalid_argument _ -> true)

let test_honest_parties_never_both_values_on_success () =
  (* Internal consistency of the trial definition: success implies the
     victim was fed only the forged value. *)
  let rng = Util.Prng.create 7 in
  let successes = ref 0 in
  for _ = 1 to 100 do
    let t = Mpc.Lower_bound.run_trial rng ~n:48 ~h:4 ~degree:1 ~victim_is_sender:false in
    if t.Mpc.Lower_bound.disagreement then begin
      incr successes;
      (* Disagreement is only counted when the victim was isolated from
         honest influence on its first-heard value: with degree 1 and an
         isolated victim this is the expected mode. *)
      ()
    end
  done;
  checkb "attack reproducible" true (!successes > 0)

let () =
  Alcotest.run "lower_bound"
    [
      ( "theorem3",
        [
          Alcotest.test_case "threshold formula" `Quick test_threshold_formula;
          Alcotest.test_case "isolation bound monotone" `Quick test_isolation_bound_monotone;
          Alcotest.test_case "succeeds below threshold" `Quick test_attack_succeeds_below_threshold;
          Alcotest.test_case "fails above threshold" `Quick test_attack_fails_above_threshold;
          Alcotest.test_case "sender as victim" `Quick test_sender_victim_variant;
          Alcotest.test_case "success decreases with degree" `Quick test_success_rate_decreases_with_degree;
          Alcotest.test_case "isolation matches analytic" `Quick test_measured_isolation_matches_analytic;
          Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
          Alcotest.test_case "attack reproducible" `Quick test_honest_parties_never_both_values_on_success;
        ] );
    ]
