(* Tests for single-source broadcast with abort (GL05, §2.1): honest
   correctness and agreement-or-abort under every attack in the library. *)

let checkb = Alcotest.(check bool)

let params n = Mpc.Params.make ~n ~h:(max 1 (n / 2)) ~lambda:8 ~alpha:2 ()

let run_broadcast ?(seed = 1) ~n ~variant ~corruption ~adv value =
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create seed in
  let outs =
    Mpc.Broadcast.run net rng (params n) ~variant ~sender:0 ~value ~corruption ~adv
  in
  (net, outs)

let all_output_value outs corruption v =
  Mpc.Outcome.all_honest_output_value ~equal:Bytes.equal ~expected:v outs corruption

let agreement_or_abort outs corruption =
  Mpc.Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption

let test_honest_naive () =
  let n = 10 in
  let corruption = Netsim.Corruption.none ~n in
  let v = Bytes.of_string "announcement" in
  let _, outs =
    run_broadcast ~n ~variant:Mpc.Broadcast.Naive ~corruption ~adv:Mpc.Broadcast.honest_adv v
  in
  checkb "all output v" true (all_output_value outs corruption v)

let test_honest_fingerprinted () =
  let n = 10 in
  let corruption = Netsim.Corruption.none ~n in
  let v = Bytes.of_string "announcement" in
  let _, outs =
    run_broadcast ~n ~variant:Mpc.Broadcast.Fingerprinted ~corruption
      ~adv:Mpc.Broadcast.honest_adv v
  in
  checkb "all output v" true (all_output_value outs corruption v)

let test_fingerprinted_cheaper_than_naive () =
  let n = 16 in
  let corruption = Netsim.Corruption.none ~n in
  let v = Bytes.make 4096 'p' in
  let net1, _ =
    run_broadcast ~n ~variant:Mpc.Broadcast.Naive ~corruption ~adv:Mpc.Broadcast.honest_adv v
  in
  let net2, _ =
    run_broadcast ~n ~variant:Mpc.Broadcast.Fingerprinted ~corruption
      ~adv:Mpc.Broadcast.honest_adv v
  in
  checkb "fingerprinted wins on large messages" true
    (Netsim.Net.total_bits net2 < Netsim.Net.total_bits net1 / 4)

let test_equivocating_sender_naive () =
  let n = 12 in
  (* Sender (party 0) corrupted. *)
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 0 ]) in
  let adv = Mpc.Attacks.equivocating_sender ~v1:(Bytes.of_string "A") ~v2:(Bytes.of_string "B") in
  List.iter
    (fun variant ->
      let _, outs = run_broadcast ~n ~variant ~corruption ~adv (Bytes.of_string "A") in
      checkb "agreement or abort" true (agreement_or_abort outs corruption);
      (* With an even split, honest parties must actually abort. *)
      checkb "someone aborted" true (Mpc.Outcome.some_honest_aborted outs corruption))
    [ Mpc.Broadcast.Naive; Mpc.Broadcast.Fingerprinted ]

let test_partial_silent_sender () =
  let n = 10 in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 0 ]) in
  let adv = Mpc.Attacks.partial_sender ~recipients:(Util.Iset.of_list [ 1; 2; 3 ]) in
  List.iter
    (fun variant ->
      let _, outs = run_broadcast ~n ~variant ~corruption ~adv (Bytes.of_string "partial") in
      checkb "agreement or abort" true (agreement_or_abort outs corruption);
      checkb "silence detected" true (Mpc.Outcome.some_honest_aborted outs corruption))
    [ Mpc.Broadcast.Naive; Mpc.Broadcast.Fingerprinted ]

let test_lying_echoers () =
  let n = 12 in
  (* A minority of echoers lie about what they received; the sender is
     honest.  Honest parties may abort (adversary can always force that)
     but must never output a wrong value. *)
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 5; 6; 7 ]) in
  let adv = Mpc.Attacks.lying_echo ~fake:(Bytes.of_string "forged") in
  List.iter
    (fun variant ->
      let _, outs = run_broadcast ~n ~variant ~corruption ~adv (Bytes.of_string "true value") in
      Array.iteri
        (fun i o ->
          if Netsim.Corruption.is_honest corruption i then
            match o with
            | Mpc.Outcome.Output v ->
              checkb "never a wrong output" true (Bytes.equal v (Bytes.of_string "true value"))
            | Mpc.Outcome.Abort _ -> ())
        outs)
    [ Mpc.Broadcast.Naive; Mpc.Broadcast.Fingerprinted ]

let test_dishonest_majority_agreement_or_abort () =
  (* 8 of 12 corrupted — beyond any BA threshold, but selective abort must
     survive. *)
  let n = 12 in
  let rng = Util.Prng.create 42 in
  for seed = 1 to 10 do
    let corruption = Netsim.Corruption.random rng ~n ~h:4 in
    let adv =
      Mpc.Attacks.equivocating_sender
        ~v1:(Bytes.of_string "X")
        ~v2:(Bytes.of_string "Y")
    in
    let _, outs =
      run_broadcast ~seed ~n ~variant:Mpc.Broadcast.Fingerprinted ~corruption ~adv
        (Bytes.of_string "X")
    in
    checkb "agreement or abort" true (agreement_or_abort outs corruption)
  done

let prop_random_equivocation_safe =
  (* Property: for random corruption patterns and random two-value
     equivocations, agreement-or-abort always holds. *)
  QCheck.Test.make ~name:"broadcast agreement-or-abort under equivocation" ~count:30
    QCheck.(triple (int_range 4 14) (int_bound 10_000) bool)
    (fun (n, seed, use_naive) ->
      let rng = Util.Prng.create seed in
      let h = 2 + Util.Prng.int rng (n - 2) in
      let corruption =
        (* Force the sender corrupted so equivocation applies. *)
        let c = Netsim.Corruption.random rng ~n ~h in
        if Netsim.Corruption.is_corrupted c 0 then c
        else
          Netsim.Corruption.make ~n
            ~corrupted:
              (Util.Iset.add 0
                 (Util.Iset.remove
                    (match Netsim.Corruption.corrupted_list c with x :: _ -> x | [] -> 0)
                    (Netsim.Corruption.corrupted c)))
      in
      let adv =
        Mpc.Attacks.equivocating_sender
          ~v1:(Bytes.of_string "v1")
          ~v2:(Bytes.of_string "v2")
      in
      let variant = if use_naive then Mpc.Broadcast.Naive else Mpc.Broadcast.Fingerprinted in
      let _, outs = run_broadcast ~seed ~n ~variant ~corruption ~adv (Bytes.of_string "v1") in
      agreement_or_abort outs corruption)

let test_cost_quadratic_in_n () =
  let cost n =
    let corruption = Netsim.Corruption.none ~n in
    let net, _ =
      run_broadcast ~n ~variant:Mpc.Broadcast.Fingerprinted ~corruption
        ~adv:Mpc.Broadcast.honest_adv (Bytes.of_string "cost probe")
    in
    float_of_int (Netsim.Net.total_bits net)
  in
  let ratio = cost 32 /. cost 16 in
  checkb "roughly quadratic" true (ratio > 3.0 && ratio < 6.0)

let () =
  Alcotest.run "broadcast"
    [
      ( "honest",
        [
          Alcotest.test_case "naive" `Quick test_honest_naive;
          Alcotest.test_case "fingerprinted" `Quick test_honest_fingerprinted;
          Alcotest.test_case "fingerprinted cheaper" `Quick test_fingerprinted_cheaper_than_naive;
          Alcotest.test_case "cost quadratic" `Quick test_cost_quadratic_in_n;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "equivocating sender" `Quick test_equivocating_sender_naive;
          Alcotest.test_case "partial silence" `Quick test_partial_silent_sender;
          Alcotest.test_case "lying echoers" `Quick test_lying_echoers;
          Alcotest.test_case "dishonest majority" `Quick test_dishonest_majority_agreement_or_abort;
          QCheck_alcotest.to_alcotest prop_random_equivocation_safe;
        ] );
    ]
