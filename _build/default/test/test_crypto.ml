(* Tests for the cryptographic substrates: SHA-256 (FIPS vectors), HMAC
   (RFC 4231), KDF, Merkle trees, Lamport & Merkle signatures, Regev LWE,
   SKE, secret sharing, fingerprints, commitments, and the PKE backends. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---- SHA-256 ---- *)

let test_sha256_fips_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ]
  in
  List.iter
    (fun (msg, expected) -> checks msg expected (Crypto.Sha256.to_hex (Crypto.Sha256.digest_string msg)))
    cases

let test_sha256_million_a () =
  let msg = String.make 1_000_000 'a' in
  checks "1M a's" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.to_hex (Crypto.Sha256.digest_string msg))

let test_sha256_incremental_matches () =
  let rng = Util.Prng.create 1 in
  for _ = 1 to 50 do
    let len = Util.Prng.int rng 500 in
    let data = Util.Prng.bytes rng len in
    let one_shot = Crypto.Sha256.digest data in
    let ctx = Crypto.Sha256.init () in
    (* Feed in randomly-sized chunks. *)
    let pos = ref 0 in
    while !pos < len do
      let chunk = min (1 + Util.Prng.int rng 64) (len - !pos) in
      Crypto.Sha256.update ctx (Bytes.sub data !pos chunk);
      pos := !pos + chunk
    done;
    checkb "incremental = one-shot" true (Bytes.equal one_shot (Crypto.Sha256.finalize ctx))
  done

let test_sha256_boundary_lengths () =
  (* Around the 64-byte block boundary and the 56-byte padding pivot. *)
  List.iter
    (fun len ->
      let msg = String.make len 'x' in
      let d1 = Crypto.Sha256.digest_string msg in
      let ctx = Crypto.Sha256.init () in
      Crypto.Sha256.update_string ctx msg;
      checkb (Printf.sprintf "len %d" len) true (Bytes.equal d1 (Crypto.Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_sha256_finalize_twice_rejected () =
  let ctx = Crypto.Sha256.init () in
  ignore (Crypto.Sha256.finalize ctx);
  checkb "raises" true
    (try
       ignore (Crypto.Sha256.finalize ctx);
       false
     with Invalid_argument _ -> true)

let test_sha256_hex_roundtrip () =
  let d = Crypto.Sha256.digest_string "roundtrip" in
  checkb "hex roundtrip" true (Bytes.equal d (Crypto.Sha256.of_hex (Crypto.Sha256.to_hex d)))

(* ---- HMAC (RFC 4231 vectors) ---- *)

let test_hmac_rfc4231 () =
  (* Test case 1. *)
  let key = Bytes.make 20 '\x0b' in
  let tag = Crypto.Hmac.mac ~key (Bytes.of_string "Hi There") in
  checks "tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Crypto.Sha256.to_hex tag);
  (* Test case 2: "Jefe". *)
  let tag2 =
    Crypto.Hmac.mac ~key:(Bytes.of_string "Jefe") (Bytes.of_string "what do ya want for nothing?")
  in
  checks "tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Crypto.Sha256.to_hex tag2);
  (* Test case 3: 20x 0xaa key, 50x 0xdd data. *)
  let tag3 = Crypto.Hmac.mac ~key:(Bytes.make 20 '\xaa') (Bytes.make 50 '\xdd') in
  checks "tc3" "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Crypto.Sha256.to_hex tag3)

let test_hmac_long_key () =
  (* Keys longer than the block size are hashed first (RFC 4231 tc 6). *)
  let key = Bytes.make 131 '\xaa' in
  let tag = Crypto.Hmac.mac ~key (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First") in
  checks "tc6" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Crypto.Sha256.to_hex tag)

let test_hmac_verify () =
  let key = Bytes.of_string "k" in
  let msg = Bytes.of_string "m" in
  let tag = Crypto.Hmac.mac ~key msg in
  checkb "accepts" true (Crypto.Hmac.verify ~key msg tag);
  let bad = Bytes.copy tag in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
  checkb "rejects flipped" false (Crypto.Hmac.verify ~key msg bad);
  checkb "rejects truncated" false (Crypto.Hmac.verify ~key msg (Bytes.sub tag 0 16))

(* ---- KDF ---- *)

let test_kdf_deterministic_and_distinct () =
  let key = Bytes.of_string "master" in
  let a = Crypto.Kdf.expand ~key ~info:"a" 64 in
  let a' = Crypto.Kdf.expand ~key ~info:"a" 64 in
  let b = Crypto.Kdf.expand ~key ~info:"b" 64 in
  checkb "deterministic" true (Bytes.equal a a');
  checkb "info separates" false (Bytes.equal a b);
  checki "length" 64 (Bytes.length a);
  (* Prefix property: expanding less gives a prefix. *)
  let short = Crypto.Kdf.expand ~key ~info:"a" 10 in
  checkb "prefix" true (Bytes.equal short (Bytes.sub a 0 10))

let test_kdf_derive_int () =
  let key = Bytes.of_string "seed" in
  for bound = 1 to 50 do
    let v = Crypto.Kdf.derive_int ~key ~info:(string_of_int bound) ~bound in
    checkb "range" true (v >= 0 && v < bound)
  done

(* ---- Merkle ---- *)

let test_merkle_proofs_all_leaves () =
  let rng = Util.Prng.create 2 in
  List.iter
    (fun n_leaves ->
      let leaves = List.init n_leaves (fun i -> Bytes.cat (Util.Prng.bytes rng 10) (Bytes.of_string (string_of_int i))) in
      let tree = Crypto.Merkle.build leaves in
      let root = Crypto.Merkle.root tree in
      List.iteri
        (fun i leaf ->
          let proof = Crypto.Merkle.prove tree i in
          checkb (Printf.sprintf "n=%d leaf %d verifies" n_leaves i) true
            (Crypto.Merkle.verify ~root ~leaf proof);
          checki "proof index" i (Crypto.Merkle.proof_index proof))
        leaves)
    [ 1; 2; 3; 4; 5; 7; 8; 16; 17 ]

let test_merkle_wrong_leaf_rejected () =
  let leaves = List.init 8 (fun i -> Bytes.of_string (string_of_int i)) in
  let tree = Crypto.Merkle.build leaves in
  let root = Crypto.Merkle.root tree in
  let proof = Crypto.Merkle.prove tree 3 in
  checkb "wrong leaf" false (Crypto.Merkle.verify ~root ~leaf:(Bytes.of_string "9") proof);
  checkb "wrong root" false
    (Crypto.Merkle.verify ~root:(Crypto.Sha256.digest_string "fake") ~leaf:(Bytes.of_string "3") proof)

let test_merkle_proof_serialization () =
  let leaves = List.init 10 (fun i -> Bytes.of_string (string_of_int i)) in
  let tree = Crypto.Merkle.build leaves in
  let proof = Crypto.Merkle.prove tree 7 in
  let enc = Util.Codec.encode Crypto.Merkle.encode_proof proof in
  let proof' = Util.Codec.decode Crypto.Merkle.decode_proof enc in
  checkb "roundtrip verifies" true
    (Crypto.Merkle.verify ~root:(Crypto.Merkle.root tree) ~leaf:(Bytes.of_string "7") proof')

(* ---- Lamport ---- *)

let test_lamport_sign_verify () =
  let sk, pk = Crypto.Lamport.keygen ~seed:(Bytes.of_string "seed1") in
  let msg = Bytes.of_string "attack at dawn" in
  let signature = Crypto.Lamport.sign sk msg in
  checkb "verifies" true (Crypto.Lamport.verify pk msg signature);
  checkb "wrong message" false (Crypto.Lamport.verify pk (Bytes.of_string "attack at dusk") signature)

let test_lamport_wrong_key () =
  let sk, _ = Crypto.Lamport.keygen ~seed:(Bytes.of_string "seed1") in
  let _, pk2 = Crypto.Lamport.keygen ~seed:(Bytes.of_string "seed2") in
  let msg = Bytes.of_string "msg" in
  checkb "wrong key rejects" false (Crypto.Lamport.verify pk2 msg (Crypto.Lamport.sign sk msg))

let test_lamport_deterministic_keygen () =
  let _, pk1 = Crypto.Lamport.keygen ~seed:(Bytes.of_string "same") in
  let _, pk2 = Crypto.Lamport.keygen ~seed:(Bytes.of_string "same") in
  let e1 = Util.Codec.encode Crypto.Lamport.encode_public_key pk1 in
  let e2 = Util.Codec.encode Crypto.Lamport.encode_public_key pk2 in
  checkb "same seed, same key" true (Bytes.equal e1 e2)

(* ---- Merkle_sig ---- *)

let test_merkle_sig_many () =
  let sk, pk = Crypto.Merkle_sig.keygen ~seed:(Bytes.of_string "ms") ~height:3 in
  checki "slots" 8 (Crypto.Merkle_sig.signatures_remaining sk);
  for i = 0 to 7 do
    let msg = Bytes.of_string (Printf.sprintf "message %d" i) in
    let s = Crypto.Merkle_sig.sign sk msg in
    checkb "verifies" true (Crypto.Merkle_sig.verify pk msg s);
    checkb "wrong msg" false (Crypto.Merkle_sig.verify pk (Bytes.of_string "other") s)
  done;
  checkb "exhausted" true
    (try
       ignore (Crypto.Merkle_sig.sign sk (Bytes.of_string "one more"));
       false
     with Crypto.Merkle_sig.Out_of_signatures -> true)

let test_merkle_sig_serialization () =
  let sk, pk = Crypto.Merkle_sig.keygen ~seed:(Bytes.of_string "ser") ~height:2 in
  let msg = Bytes.of_string "serialize me" in
  let s = Crypto.Merkle_sig.sign sk msg in
  let enc = Util.Codec.encode Crypto.Merkle_sig.encode_signature s in
  let s' = Util.Codec.decode Crypto.Merkle_sig.decode_signature enc in
  checkb "roundtrip verifies" true (Crypto.Merkle_sig.verify pk msg s');
  checkb "tampered blob rejected" true
    (let bad = Bytes.copy enc in
     Bytes.set bad (Bytes.length bad / 2) 'X';
     match Util.Codec.decode Crypto.Merkle_sig.decode_signature bad with
     | s'' -> not (Crypto.Merkle_sig.verify pk msg s'')
     | exception Util.Codec.Decode_error _ -> true)

(* ---- LWE / Regev ---- *)

let test_lwe_bit_roundtrip () =
  let rng = Util.Prng.create 3 in
  let pk, sk = Crypto.Lwe.keygen rng in
  for _ = 1 to 200 do
    let b = Util.Prng.bool rng in
    let ct = Crypto.Lwe.encrypt_bit rng pk b in
    checkb "bit roundtrip" b (Crypto.Lwe.decrypt_bit sk ct)
  done

let test_lwe_bytes_roundtrip () =
  let rng = Util.Prng.create 4 in
  let pk, sk = Crypto.Lwe.keygen rng in
  List.iter
    (fun s ->
      let pt = Bytes.of_string s in
      let ct = Crypto.Lwe.encrypt_bytes rng pk pt in
      match Crypto.Lwe.decrypt_bytes sk ct with
      | Some pt' -> checkb ("roundtrip " ^ s) true (Bytes.equal pt pt')
      | None -> Alcotest.fail "decryption failed")
    [ ""; "x"; "hello world"; "\x00\xff\x7f" ]

let test_lwe_wrong_key_garbles () =
  let rng = Util.Prng.create 5 in
  let pk, _ = Crypto.Lwe.keygen rng in
  let _, sk2 = Crypto.Lwe.keygen rng in
  let pt = Bytes.of_string "secret secret secret" in
  let ct = Crypto.Lwe.encrypt_bytes rng pk pt in
  (match Crypto.Lwe.decrypt_bytes sk2 ct with
  | Some pt' -> checkb "wrong key garbles" false (Bytes.equal pt pt')
  | None -> ())

let test_lwe_homomorphic_xor () =
  let rng = Util.Prng.create 6 in
  let pk, sk = Crypto.Lwe.keygen rng in
  for _ = 1 to 50 do
    let b1 = Util.Prng.bool rng and b2 = Util.Prng.bool rng in
    let c1 = Crypto.Lwe.encrypt_bit rng pk b1 in
    let c2 = Crypto.Lwe.encrypt_bit rng pk b2 in
    checkb "xor homomorphism" (b1 <> b2) (Crypto.Lwe.decrypt_bit sk (Crypto.Lwe.add_ct pk c1 c2))
  done

let test_lwe_ciphertexts_randomized () =
  let rng = Util.Prng.create 7 in
  let pk, _ = Crypto.Lwe.keygen rng in
  let pt = Bytes.of_string "same" in
  let c1 = Crypto.Lwe.encrypt_bytes rng pk pt in
  let c2 = Crypto.Lwe.encrypt_bytes rng pk pt in
  checkb "randomized encryption" false (Bytes.equal c1 c2)

let test_lwe_sizes_match_model () =
  let rng = Util.Prng.create 8 in
  let pk, _ = Crypto.Lwe.keygen rng in
  let pkb = Util.Codec.encode Crypto.Lwe.encode_public_key pk in
  let declared = Crypto.Lwe.public_key_size Crypto.Lwe.default_params in
  (* The encoded key adds a small params header. *)
  checkb "pk size close to model" true (abs (Bytes.length pkb - declared) < 32);
  let pt = Bytes.of_string "0123456789" in
  let ct = Crypto.Lwe.encrypt_bytes rng pk pt in
  checki "ct size exact" (Crypto.Lwe.ciphertext_blob_size Crypto.Lwe.default_params ~plaintext_len:10)
    (Bytes.length ct)

let test_lwe_keygen_seeded_deterministic () =
  let pk1, _ = Crypto.Lwe.keygen_seeded (Bytes.of_string "s") in
  let pk2, _ = Crypto.Lwe.keygen_seeded (Bytes.of_string "s") in
  let e1 = Util.Codec.encode Crypto.Lwe.encode_public_key pk1 in
  let e2 = Util.Codec.encode Crypto.Lwe.encode_public_key pk2 in
  checkb "deterministic" true (Bytes.equal e1 e2)

let test_lwe_key_serialization () =
  let rng = Util.Prng.create 9 in
  let pk, sk = Crypto.Lwe.keygen rng in
  let pk' =
    Util.Codec.decode Crypto.Lwe.decode_public_key (Util.Codec.encode Crypto.Lwe.encode_public_key pk)
  in
  let sk' =
    Util.Codec.decode Crypto.Lwe.decode_secret_key (Util.Codec.encode Crypto.Lwe.encode_secret_key sk)
  in
  let pt = Bytes.of_string "serialization" in
  let ct = Crypto.Lwe.encrypt_bytes rng pk' pt in
  checkb "decrypt after roundtrip" true
    (match Crypto.Lwe.decrypt_bytes sk' ct with Some p -> Bytes.equal p pt | None -> false)

let test_lwe_bad_params_rejected () =
  let rng = Util.Prng.create 10 in
  checkb "correctness bound enforced" true
    (try
       ignore (Crypto.Lwe.keygen ~params:{ Crypto.Lwe.dim = 8; samples = 10000; q = 12289; err_bound = 10 } rng);
       false
     with Invalid_argument _ -> true)

(* ---- SKE ---- *)

let test_ske_roundtrip () =
  let rng = Util.Prng.create 11 in
  let key = Crypto.Ske.keygen rng in
  List.iter
    (fun s ->
      let pt = Bytes.of_string s in
      let ct = Crypto.Ske.encrypt rng key pt in
      checki "size model" (Crypto.Ske.ciphertext_size ~plaintext_len:(String.length s)) (Bytes.length ct);
      match Crypto.Ske.decrypt key ct with
      | Some pt' -> checkb "roundtrip" true (Bytes.equal pt pt')
      | None -> Alcotest.fail "decrypt failed")
    [ ""; "a"; "the quick brown fox"; String.make 1000 'z' ]

let test_ske_tamper_rejected () =
  let rng = Util.Prng.create 12 in
  let key = Crypto.Ske.keygen rng in
  let ct = Crypto.Ske.encrypt rng key (Bytes.of_string "authentic") in
  for pos = 0 to Bytes.length ct - 1 do
    let bad = Bytes.copy ct in
    Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor 0x01));
    checkb (Printf.sprintf "flip at %d rejected" pos) true (Crypto.Ske.decrypt key bad = None)
  done

let test_ske_wrong_key_rejected () =
  let rng = Util.Prng.create 13 in
  let k1 = Crypto.Ske.keygen rng in
  let k2 = Crypto.Ske.keygen rng in
  let ct = Crypto.Ske.encrypt rng k1 (Bytes.of_string "for k1 only") in
  checkb "wrong key" true (Crypto.Ske.decrypt k2 ct = None)

let test_ske_short_ciphertext () =
  let rng = Util.Prng.create 14 in
  let key = Crypto.Ske.keygen rng in
  checkb "too short" true (Crypto.Ske.decrypt key (Bytes.make 10 'x') = None)

(* ---- Secret sharing ---- *)

let test_additive_roundtrip () =
  let rng = Util.Prng.create 15 in
  for parties = 1 to 10 do
    let secret = Util.Prng.bytes rng 32 in
    let shares = Crypto.Secret_sharing.Additive.share rng ~parties secret in
    checki "share count" parties (List.length shares);
    checkb "reconstructs" true
      (Bytes.equal secret (Crypto.Secret_sharing.Additive.reconstruct shares))
  done

let test_additive_partial_shares_useless () =
  (* Any k-1 shares XOR to something independent of the secret: check that
     reconstructing without one share differs from the secret (w.h.p.). *)
  let rng = Util.Prng.create 16 in
  let secret = Util.Prng.bytes rng 32 in
  let shares = Crypto.Secret_sharing.Additive.share rng ~parties:5 secret in
  let partial = List.filteri (fun i _ -> i <> 2) shares in
  checkb "partial differs" false
    (Bytes.equal secret (Crypto.Secret_sharing.Additive.reconstruct partial))

module Sh = Crypto.Secret_sharing.Shamir.Make (Field.Gf.F30)

let test_shamir_threshold () =
  let rng = Util.Prng.create 17 in
  for _ = 1 to 20 do
    let secret = Field.Gf.F30.random rng in
    let shares = Sh.share rng ~threshold:3 ~parties:6 secret in
    (* Any 3 shares reconstruct. *)
    let subset = [ List.nth shares 0; List.nth shares 3; List.nth shares 5 ] in
    checki "reconstructs" secret (Sh.reconstruct subset);
    (* All shares reconstruct too. *)
    checki "full reconstructs" secret (Sh.reconstruct shares)
  done

let test_shamir_below_threshold_varies () =
  (* With 2 of threshold-3 shares, different completions give different
     secrets — the 2 shares alone cannot determine it. *)
  let rng = Util.Prng.create 18 in
  let s1 = Sh.share rng ~threshold:3 ~parties:5 42 in
  let s2 = Sh.share rng ~threshold:3 ~parties:5 42 in
  (* Same secret, fresh polynomials: pairs of shares differ. *)
  let y1 = (List.nth s1 0).Sh.y in
  let y2 = (List.nth s2 0).Sh.y in
  checkb "fresh randomness" true (y1 <> y2 || (List.nth s1 1).Sh.y <> (List.nth s2 1).Sh.y)

let test_shamir_bytes_roundtrip () =
  let rng = Util.Prng.create 19 in
  List.iter
    (fun s ->
      let secret = Bytes.of_string s in
      let shares = Crypto.Secret_sharing.share_bytes_shamir rng ~threshold:3 ~parties:5 secret in
      let indexed = List.mapi (fun i b -> (i + 1, b)) shares in
      let subset = List.filteri (fun i _ -> i = 0 || i = 2 || i = 4) indexed in
      match Crypto.Secret_sharing.reconstruct_bytes_shamir subset with
      | Some out -> checkb ("roundtrip " ^ s) true (Bytes.equal secret out)
      | None -> Alcotest.fail "reconstruction failed")
    [ ""; "x"; "secret key material"; String.make 100 '\x42' ]

let test_shamir_bytes_below_threshold () =
  let rng = Util.Prng.create 20 in
  let secret = Bytes.of_string "needs three" in
  let shares = Crypto.Secret_sharing.share_bytes_shamir rng ~threshold:3 ~parties:5 secret in
  let indexed = List.mapi (fun i b -> (i + 1, b)) shares in
  let two = List.filteri (fun i _ -> i < 2) indexed in
  checkb "refuses below threshold" true (Crypto.Secret_sharing.reconstruct_bytes_shamir two = None)

(* ---- Fingerprint ---- *)

let test_fingerprint_completeness () =
  let rng = Util.Prng.create 21 in
  for _ = 1 to 100 do
    let msg = Util.Prng.bytes rng (Util.Prng.int rng 1000) in
    let fp = Crypto.Fingerprint.make rng ~t:3 msg in
    checkb "accepts equal" true (Crypto.Fingerprint.check fp msg)
  done

let test_fingerprint_soundness () =
  let rng = Util.Prng.create 22 in
  let false_accepts = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    let len = 1 + Util.Prng.int rng 200 in
    let m1 = Util.Prng.bytes rng len in
    let m2 = Bytes.copy m1 in
    (* Single random byte flip — the hardest case for mod-p tests. *)
    let pos = Util.Prng.int rng len in
    Bytes.set m2 pos (Char.chr (Char.code (Bytes.get m2 pos) lxor (1 + Util.Prng.int rng 255)));
    let fp = Crypto.Fingerprint.make rng ~t:2 m1 in
    if Crypto.Fingerprint.check fp m2 then incr false_accepts
  done;
  checkb "soundness" true (!false_accepts = 0)

let test_fingerprint_size () =
  let rng = Util.Prng.create 23 in
  let fp = Crypto.Fingerprint.make rng ~t:4 (Bytes.make 10000 'q') in
  (* 4 primes + 4 residues, each ≤ 5 varint bytes, plus 2 length bytes. *)
  checkb "O(lambda log n) size" true (Crypto.Fingerprint.size_bytes fp <= 2 + (8 * 5))

let test_fingerprint_residues_needed_monotone () =
  let t1 = Crypto.Fingerprint.residues_needed ~lambda:4 ~n:100 ~msg_len:100 in
  let t2 = Crypto.Fingerprint.residues_needed ~lambda:16 ~n:100 ~msg_len:100 in
  let t3 = Crypto.Fingerprint.residues_needed ~lambda:4 ~n:100 ~msg_len:1000000 in
  checkb "more lambda, more primes" true (t2 >= t1);
  checkb "longer message, more primes" true (t3 >= t1);
  checkb "positive" true (t1 >= 1)

let test_fingerprint_serialization () =
  let rng = Util.Prng.create 24 in
  let fp = Crypto.Fingerprint.make rng ~t:3 (Bytes.of_string "serialize") in
  let enc = Util.Codec.encode Crypto.Fingerprint.encode fp in
  let fp' = Util.Codec.decode Crypto.Fingerprint.decode enc in
  checkb "roundtrip matches" true (Crypto.Fingerprint.matches fp fp')

(* ---- Commit ---- *)

let test_commit_verify () =
  let rng = Util.Prng.create 25 in
  let msg = Bytes.of_string "commitment" in
  let com, opening = Crypto.Commit.commit rng msg in
  checkb "verifies" true (Crypto.Commit.verify com msg opening);
  checkb "wrong msg" false (Crypto.Commit.verify com (Bytes.of_string "other") opening);
  let com2, _ = Crypto.Commit.commit rng msg in
  checkb "hiding randomness" false (Bytes.equal com com2)

(* ---- PKE backends ---- *)

let test_pke_regev_roundtrip () =
  let module P = Crypto.Pke.Regev in
  let rng = Util.Prng.create 26 in
  let pk, sk = P.keygen rng in
  let pt = Bytes.of_string "via the signature" in
  let ct = P.encrypt rng pk pt in
  checkb "roundtrip" true (match P.decrypt sk ct with Some p -> Bytes.equal p pt | None -> false)

let test_pke_sim_matches_regev_sizes () =
  let (module S) = Crypto.Pke.make_simulated ~seed:1 () in
  let rng = Util.Prng.create 27 in
  let pk, sk = S.keygen rng in
  let pt = Bytes.of_string "size-faithful" in
  let ct = S.encrypt rng pk pt in
  checki "ciphertext size equals Regev model"
    (Crypto.Pke.Regev.ciphertext_size ~plaintext_len:(Bytes.length pt))
    (Bytes.length ct);
  checki "pk size equals Regev" Crypto.Pke.Regev.public_key_size (Bytes.length (S.public_key_bytes pk));
  checkb "roundtrip" true (match S.decrypt sk ct with Some p -> Bytes.equal p pt | None -> false)

let test_pke_sim_instances_isolated () =
  (* Two simulated-PKE instances derive the same key id from the same seed
     but hold different trapdoors: B must not decrypt A's ciphertexts. *)
  let (module A) = Crypto.Pke.make_simulated ~seed:1 () in
  let (module B) = Crypto.Pke.make_simulated ~seed:2 () in
  let rng = Util.Prng.create 28 in
  let pka, ska = A.keygen_seeded (Bytes.of_string "same-seed") in
  let _, skb = B.keygen_seeded (Bytes.of_string "same-seed") in
  let pt = Bytes.of_string "for A" in
  let ct = A.encrypt rng pka pt in
  checkb "A decrypts its own" true
    (match A.decrypt ska ct with Some p -> Bytes.equal p pt | None -> false);
  checkb "B cannot decrypt A's" true
    (match B.decrypt skb ct with Some p -> not (Bytes.equal p pt) | None -> true)

let test_pke_seeded_agreement () =
  let module P = Crypto.Pke.Regev in
  let pk1, sk1 = P.keygen_seeded (Bytes.of_string "joint-randomness") in
  let pk2, _ = P.keygen_seeded (Bytes.of_string "joint-randomness") in
  checkb "same seed same pk" true (Bytes.equal (P.public_key_bytes pk1) (P.public_key_bytes pk2));
  let rng = Util.Prng.create 29 in
  let ct = P.encrypt rng pk2 (Bytes.of_string "cross") in
  checkb "cross decrypt" true
    (match P.decrypt sk1 ct with Some p -> Bytes.equal p (Bytes.of_string "cross") | None -> false)

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_fips_vectors;
          Alcotest.test_case "million a's" `Slow test_sha256_million_a;
          Alcotest.test_case "incremental = one-shot" `Quick test_sha256_incremental_matches;
          Alcotest.test_case "block boundaries" `Quick test_sha256_boundary_lengths;
          Alcotest.test_case "double finalize rejected" `Quick test_sha256_finalize_twice_rejected;
          Alcotest.test_case "hex roundtrip" `Quick test_sha256_hex_roundtrip;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "long key" `Quick test_hmac_long_key;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "kdf",
        [
          Alcotest.test_case "deterministic & separated" `Quick test_kdf_deterministic_and_distinct;
          Alcotest.test_case "derive_int range" `Quick test_kdf_derive_int;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "proofs for all leaves" `Quick test_merkle_proofs_all_leaves;
          Alcotest.test_case "wrong leaf/root rejected" `Quick test_merkle_wrong_leaf_rejected;
          Alcotest.test_case "proof serialization" `Quick test_merkle_proof_serialization;
        ] );
      ( "lamport",
        [
          Alcotest.test_case "sign/verify" `Quick test_lamport_sign_verify;
          Alcotest.test_case "wrong key" `Quick test_lamport_wrong_key;
          Alcotest.test_case "deterministic keygen" `Quick test_lamport_deterministic_keygen;
        ] );
      ( "merkle_sig",
        [
          Alcotest.test_case "many signatures + exhaustion" `Quick test_merkle_sig_many;
          Alcotest.test_case "serialization" `Quick test_merkle_sig_serialization;
        ] );
      ( "lwe",
        [
          Alcotest.test_case "bit roundtrip" `Quick test_lwe_bit_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_lwe_bytes_roundtrip;
          Alcotest.test_case "wrong key garbles" `Quick test_lwe_wrong_key_garbles;
          Alcotest.test_case "homomorphic xor" `Quick test_lwe_homomorphic_xor;
          Alcotest.test_case "randomized encryption" `Quick test_lwe_ciphertexts_randomized;
          Alcotest.test_case "sizes match model" `Quick test_lwe_sizes_match_model;
          Alcotest.test_case "seeded keygen deterministic" `Quick test_lwe_keygen_seeded_deterministic;
          Alcotest.test_case "key serialization" `Quick test_lwe_key_serialization;
          Alcotest.test_case "bad params rejected" `Quick test_lwe_bad_params_rejected;
        ] );
      ( "ske",
        [
          Alcotest.test_case "roundtrip & sizes" `Quick test_ske_roundtrip;
          Alcotest.test_case "every bit flip rejected" `Quick test_ske_tamper_rejected;
          Alcotest.test_case "wrong key" `Quick test_ske_wrong_key_rejected;
          Alcotest.test_case "short ciphertext" `Quick test_ske_short_ciphertext;
        ] );
      ( "secret_sharing",
        [
          Alcotest.test_case "additive roundtrip" `Quick test_additive_roundtrip;
          Alcotest.test_case "additive partial useless" `Quick test_additive_partial_shares_useless;
          Alcotest.test_case "shamir threshold" `Quick test_shamir_threshold;
          Alcotest.test_case "shamir fresh randomness" `Quick test_shamir_below_threshold_varies;
          Alcotest.test_case "shamir bytes roundtrip" `Quick test_shamir_bytes_roundtrip;
          Alcotest.test_case "shamir bytes below threshold" `Quick test_shamir_bytes_below_threshold;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "completeness" `Quick test_fingerprint_completeness;
          Alcotest.test_case "soundness on near-equal strings" `Quick test_fingerprint_soundness;
          Alcotest.test_case "succinct size" `Quick test_fingerprint_size;
          Alcotest.test_case "residues_needed monotone" `Quick test_fingerprint_residues_needed_monotone;
          Alcotest.test_case "serialization" `Quick test_fingerprint_serialization;
        ] );
      ( "commit",
        [ Alcotest.test_case "commit/verify/hiding" `Quick test_commit_verify ] );
      ( "pke",
        [
          Alcotest.test_case "regev roundtrip" `Quick test_pke_regev_roundtrip;
          Alcotest.test_case "simulated matches regev sizes" `Quick test_pke_sim_matches_regev_sizes;
          Alcotest.test_case "simulated instances isolated" `Quick test_pke_sim_instances_isolated;
          Alcotest.test_case "seeded keygen agreement" `Quick test_pke_seeded_agreement;
        ] );
    ]
