(* Tests for Algorithm 5 (SparseNetwork, Claim 20) and Algorithm 6
   (Gossip / responsible gossip, Claim 21). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let params ?(alpha = 3) n h = Mpc.Params.make ~n ~h ~lambda:8 ~alpha ()

(* ---- SparseNetwork ---- *)

let test_sparse_honest_no_abort () =
  let n = 40 and h = 20 in
  let corruption = Netsim.Corruption.none ~n in
  for seed = 1 to 10 do
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create seed in
    let outs = Mpc.Sparse_network.run net rng (params n h) ~corruption ~adv:Mpc.Sparse_network.honest_adv in
    Array.iteri
      (fun i o ->
        match o with
        | Mpc.Outcome.Output _ -> ()
        | Mpc.Outcome.Abort r ->
          Alcotest.failf "party %d aborted honestly: %s" i (Mpc.Outcome.reason_to_string r))
      outs
  done

let test_sparse_degree_bound () =
  (* Claim 20: max degree O(α n log n / h). *)
  let n = 60 and h = 30 in
  let corruption = Netsim.Corruption.none ~n in
  let p = params n h in
  for seed = 1 to 10 do
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create seed in
    let outs = Mpc.Sparse_network.run net rng p ~corruption ~adv:Mpc.Sparse_network.honest_adv in
    let bound = Mpc.Params.sparse_degree p * 4 in
    checkb "degree bounded" true (Mpc.Sparse_network.max_degree outs <= bound)
  done

let test_sparse_honest_connectivity () =
  (* Claim 20: the honest subgraph is connected w.h.p. *)
  let n = 50 and h = 25 in
  let rng0 = Util.Prng.create 77 in
  let failures = ref 0 in
  for seed = 1 to 20 do
    let corruption = Netsim.Corruption.random rng0 ~n ~h in
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create seed in
    let outs = Mpc.Sparse_network.run net rng (params n h) ~corruption ~adv:Mpc.Sparse_network.honest_adv in
    if not (Mpc.Sparse_network.honest_subgraph_connected outs corruption) then incr failures
  done;
  checki "always connected at alpha=3" 0 !failures

let test_sparse_flood_attack_detected () =
  (* All corrupted parties target one victim: its inbox exceeds 2d and it
     aborts (the DDoS detection of §2.3). *)
  let n = 40 and h = 8 in
  let victim = 5 in
  let rng0 = Util.Prng.create 88 in
  let corruption = Netsim.Corruption.targeting rng0 ~n ~h ~victim in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 1 in
  (* Use alpha=1 so 32 floods clearly exceed 2d. *)
  let p = params ~alpha:1 n n in
  (* h=n in params makes d tiny: d = ln n ≈ 4, bound 8 < 32 corrupted. *)
  let outs = Mpc.Sparse_network.run net rng p ~corruption ~adv:(Mpc.Attacks.flood_victim ~victim) in
  checkb "victim aborts" true (Mpc.Outcome.is_abort outs.(victim))

let test_sparse_locality () =
  (* Each party talks to O(d) peers only. *)
  let n = 60 and h = 30 in
  let corruption = Netsim.Corruption.none ~n in
  let p = params n h in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 4 in
  ignore (Mpc.Sparse_network.run net rng p ~corruption ~adv:Mpc.Sparse_network.honest_adv);
  checkb "locality O(d)" true (Netsim.Net.max_locality net <= 4 * Mpc.Params.sparse_degree p)

(* ---- Gossip ---- *)

let build_graph ?(seed = 9) ~n ~h () =
  let corruption = Netsim.Corruption.none ~n in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create seed in
  let outs = Mpc.Sparse_network.run net rng (params n h) ~corruption ~adv:Mpc.Sparse_network.honest_adv in
  Array.map
    (function Mpc.Outcome.Output s -> s | Mpc.Outcome.Abort _ -> Util.Iset.empty)
    outs

let test_gossip_honest_delivery () =
  let n = 30 and h = 15 in
  let graph = build_graph ~n ~h () in
  let corruption = Netsim.Corruption.none ~n in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 2 in
  let sources = List.init n (fun i -> (i, Bytes.of_string (Printf.sprintf "rumor-%d" i))) in
  let outs = Mpc.Gossip.run net rng (params n h) ~graph ~sources ~corruption ~adv:Mpc.Gossip.honest_adv in
  Array.iteri
    (fun i o ->
      match o with
      | Mpc.Outcome.Output rumors ->
        checki (Printf.sprintf "party %d heard all" i) n (List.length rumors);
        List.iter
          (fun (origin, v) ->
            checkb "correct rumor" true
              (Bytes.equal v (Bytes.of_string (Printf.sprintf "rumor-%d" origin))))
          rumors
      | Mpc.Outcome.Abort r -> Alcotest.failf "party %d: %s" i (Mpc.Outcome.reason_to_string r))
    outs

let test_gossip_subset_sources () =
  let n = 20 and h = 10 in
  let graph = build_graph ~n ~h () in
  let corruption = Netsim.Corruption.none ~n in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 3 in
  let sources = [ (3, Bytes.of_string "a"); (7, Bytes.of_string "b") ] in
  let outs = Mpc.Gossip.run net rng (params n h) ~graph ~sources ~corruption ~adv:Mpc.Gossip.honest_adv in
  Array.iter
    (fun o ->
      match o with
      | Mpc.Outcome.Output rumors -> checki "exactly two rumors" 2 (List.length rumors)
      | Mpc.Outcome.Abort _ -> Alcotest.fail "abort in honest gossip")
    outs

let test_gossip_forward_once_cost () =
  (* Claim 21: total bits O(k · d · n · ℓ) — forwarding once per origin. *)
  let n = 24 and h = 12 in
  let graph = build_graph ~n ~h () in
  let corruption = Netsim.Corruption.none ~n in
  let cost k =
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create 4 in
    let sources = List.init k (fun i -> (i, Bytes.make 50 'r')) in
    ignore (Mpc.Gossip.run net rng (params n h) ~graph ~sources ~corruption ~adv:Mpc.Gossip.honest_adv);
    Netsim.Net.total_bits net
  in
  let c1 = cost 4 and c2 = cost 8 in
  (* Linear in the number of sources. *)
  let ratio = float_of_int c2 /. float_of_int c1 in
  checkb "linear in sources" true (ratio > 1.5 && ratio < 2.6)

let test_gossip_equivocation_aborts () =
  let n = 24 and h = 12 in
  let graph = build_graph ~n ~h () in
  let rng0 = Util.Prng.create 5 in
  let corruption = Netsim.Corruption.random rng0 ~n ~h in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 6 in
  let sources = List.init n (fun i -> (i, Bytes.of_string (string_of_int i))) in
  let outs =
    Mpc.Gossip.run net rng (params n h) ~graph ~sources ~corruption ~adv:Mpc.Attacks.gossip_equivocate
  in
  (* Safety: honest parties that produced output agree on every origin. *)
  let honest_outputs =
    List.filter_map
      (fun i ->
        match outs.(i) with Mpc.Outcome.Output r -> Some r | Mpc.Outcome.Abort _ -> None)
      (Netsim.Corruption.honest_list corruption)
  in
  (match honest_outputs with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun other ->
        List.iter
          (fun (origin, v) ->
            match List.assoc_opt origin first with
            | Some v' -> checkb "consistent value" true (Bytes.equal v v')
            | None -> ())
          other)
      rest);
  checkb "ran" true (Array.length outs = n)

let test_gossip_forged_conflict_detected () =
  (* A corrupted party forges a rumor for an honest origin whose true rumor
     also circulates: honest parties seeing both must abort, and no honest
     party may end holding ONLY the forged value while another outputs the
     true one. *)
  let n = 24 and h = 20 in
  let graph = build_graph ~n ~h () in
  let rng0 = Util.Prng.create 7 in
  let corruption = Netsim.Corruption.random rng0 ~n ~h in
  let honest0 = List.hd (Netsim.Corruption.honest_list corruption) in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 8 in
  let sources = List.init n (fun i -> (i, Bytes.of_string (Printf.sprintf "true-%d" i))) in
  let outs =
    Mpc.Gossip.run net rng (params n h) ~graph ~sources ~corruption
      ~adv:(Mpc.Attacks.gossip_forge ~origin:honest0 ~value:(Bytes.of_string "forged"))
  in
  let honest_values =
    List.filter_map
      (fun i ->
        match outs.(i) with
        | Mpc.Outcome.Output r -> List.assoc_opt honest0 r
        | Mpc.Outcome.Abort _ -> None)
      (Netsim.Corruption.honest_list corruption)
  in
  (* All surviving honest parties agree on origin honest0's value. *)
  (match honest_values with
  | [] -> ()
  | first :: rest -> List.iter (fun v -> checkb "no split" true (Bytes.equal v first)) rest);
  checkb "ran" true (Array.length outs = n)

let test_gossip_warning_suppression_still_safe () =
  (* Corrupted parties refuse to forward warnings; the honest subgraph
     still floods them. *)
  let n = 24 and h = 16 in
  let graph = build_graph ~n ~h () in
  let rng0 = Util.Prng.create 9 in
  let corruption = Netsim.Corruption.random rng0 ~n ~h in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 10 in
  let sources = List.init n (fun i -> (i, Bytes.of_string (string_of_int i))) in
  let adv =
    {
      Mpc.Attacks.gossip_equivocate with
      Mpc.Gossip.spread_warning = false;
    }
  in
  let outs = Mpc.Gossip.run net rng (params n h) ~graph ~sources ~corruption ~adv in
  let honest_outputs =
    List.filter_map
      (fun i ->
        match outs.(i) with Mpc.Outcome.Output r -> Some r | Mpc.Outcome.Abort _ -> None)
      (Netsim.Corruption.honest_list corruption)
  in
  (match honest_outputs with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun other ->
        List.iter
          (fun (origin, v) ->
            match List.assoc_opt origin first with
            | Some v' -> checkb "no divergent outputs" true (Bytes.equal v v')
            | None -> ())
          other)
      rest);
  checkb "ran" true (Array.length outs = n)

let () =
  Alcotest.run "sparse_gossip"
    [
      ( "sparse_network",
        [
          Alcotest.test_case "honest no abort" `Quick test_sparse_honest_no_abort;
          Alcotest.test_case "degree bound" `Quick test_sparse_degree_bound;
          Alcotest.test_case "honest connectivity" `Quick test_sparse_honest_connectivity;
          Alcotest.test_case "flood attack detected" `Quick test_sparse_flood_attack_detected;
          Alcotest.test_case "locality" `Quick test_sparse_locality;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "honest delivery" `Quick test_gossip_honest_delivery;
          Alcotest.test_case "subset sources" `Quick test_gossip_subset_sources;
          Alcotest.test_case "cost linear in sources" `Quick test_gossip_forward_once_cost;
          Alcotest.test_case "equivocation safe" `Quick test_gossip_equivocation_aborts;
          Alcotest.test_case "forged conflict" `Quick test_gossip_forged_conflict_detected;
          Alcotest.test_case "warning suppression" `Quick test_gossip_warning_suppression_still_safe;
        ] );
    ]
