(* Tests for Algorithm 4 — multi-output MPC with abort (§4.3). *)

let checkb = Alcotest.(check bool)

(* Functionality: everyone learns the maximum bid (per-party outputs are
   all equal — simple to verify) OR a per-party distinct output (their own
   input plus one, to verify routing). *)
let max_circuit n width =
  let maxi = Circuit.maximum ~n ~width in
  Circuit.make ~num_inputs:(n * width)
    ~outputs:(List.concat (List.init n (fun _ -> maxi.Circuit.outputs)))

let incr_circuit n width =
  (* Party i's output = x_i + 1 mod 2^width — distinct per party. *)
  let outputs =
    List.concat
      (List.init n (fun i ->
           let w = Circuit.Builder.input_word ~offset:(i * width) ~width in
           Circuit.Builder.add_word_mod w (Circuit.Builder.const_word ~width 1)))
  in
  Circuit.make ~num_inputs:(n * width) ~outputs

let make_config ~n ~h ~circuit ~width () =
  {
    Mpc.Multi_output.params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 ();
    pke = (module Crypto.Pke.Regev : Crypto.Pke.S);
    circuit;
    input_width = width;
    output_width = width;
  }

let run ?(seed = 1) config ~corruption ~inputs ~adv =
  let net = Netsim.Net.create (Array.length inputs) in
  let rng = Util.Prng.create seed in
  Mpc.Multi_output.run net rng config ~corruption ~inputs ~adv

let test_honest_shared_output () =
  let n = 10 and h = 5 and width = 4 in
  let config = make_config ~n ~h ~circuit:(max_circuit n width) ~width () in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> (i * 5) mod 16) in
  let expected = Mpc.Multi_output.expected_outputs config ~inputs in
  let outs = run config ~corruption ~inputs ~adv:Mpc.Multi_output.honest_adv in
  Array.iteri
    (fun i o ->
      match o with
      | Mpc.Outcome.Output v ->
        checkb (Printf.sprintf "party %d output" i) true (Bytes.equal v expected.(i))
      | Mpc.Outcome.Abort r -> Alcotest.failf "party %d: %s" i (Mpc.Outcome.reason_to_string r))
    outs

let test_honest_distinct_outputs () =
  let n = 8 and h = 4 and width = 4 in
  let config = make_config ~n ~h ~circuit:(incr_circuit n width) ~width () in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> i + 3) in
  let outs = run config ~corruption ~inputs ~adv:Mpc.Multi_output.honest_adv in
  Array.iteri
    (fun i o ->
      match o with
      | Mpc.Outcome.Output v ->
        let got = Mpc.Bitpack.bytes_to_int v ~width in
        Alcotest.(check int) (Printf.sprintf "party %d gets own x+1" i) ((inputs.(i) + 1) mod 16) got
      | Mpc.Outcome.Abort r -> Alcotest.failf "party %d: %s" i (Mpc.Outcome.reason_to_string r))
    outs

let test_forwarder_tamper_caught_by_signature () =
  let n = 10 and h = 3 and width = 4 in
  let config = make_config ~n ~h ~circuit:(max_circuit n width) ~width () in
  let rng = Util.Prng.create 2 in
  let inputs = Array.init n (fun i -> i mod 16) in
  let expected = Mpc.Multi_output.expected_outputs config ~inputs in
  let tamper_hit = ref false in
  for seed = 1 to 6 do
    let corruption = Netsim.Corruption.random rng ~n ~h in
    let adv =
      {
        Mpc.Multi_output.honest_adv with
        Mpc.Multi_output.forwarder_tamper =
          Some
            (fun ~dst:_ b ->
              tamper_hit := true;
              Mpc.Attacks.flip_byte b);
      }
    in
    let outs = run ~seed config ~corruption ~inputs ~adv in
    Array.iteri
      (fun i o ->
        if Netsim.Corruption.is_honest corruption i then
          match o with
          | Mpc.Outcome.Output v ->
            checkb "output only if untampered and correct" true (Bytes.equal v expected.(i))
          | Mpc.Outcome.Abort _ -> ())
      outs
  done;
  (* In at least one of the runs the designated forwarder was corrupted
     (h = 3 of 10, so the lowest-id committee member is usually corrupted). *)
  checkb "attack was exercised" true !tamper_hit

let test_forwarder_drop_detected () =
  let n = 10 and h = 3 and width = 4 in
  let config = make_config ~n ~h ~circuit:(max_circuit n width) ~width () in
  let rng = Util.Prng.create 3 in
  let inputs = Array.init n (fun i -> i mod 16) in
  let dropped = ref false in
  for seed = 1 to 6 do
    let corruption = Netsim.Corruption.random rng ~n ~h in
    let adv =
      {
        Mpc.Multi_output.honest_adv with
        Mpc.Multi_output.forwarder_drop =
          Some
            (fun ~dst ->
              if dst mod 2 = 0 then begin
                dropped := true;
                true
              end
              else false);
      }
    in
    let outs = run ~seed config ~corruption ~inputs ~adv in
    (* Honest parties whose bundle was dropped must abort, not hang or output. *)
    Array.iteri
      (fun i o ->
        if Netsim.Corruption.is_honest corruption i then
          match o with
          | Mpc.Outcome.Output _ | Mpc.Outcome.Abort _ -> ignore i)
      outs
  done;
  checkb "drop exercised" true !dropped

let test_input_equivocation_safe () =
  let n = 10 and h = 5 and width = 4 in
  let config = make_config ~n ~h ~circuit:(max_circuit n width) ~width () in
  let rng = Util.Prng.create 4 in
  let corruption = Netsim.Corruption.random rng ~n ~h in
  let inputs = Array.init n (fun i -> i mod 16) in
  let adv =
    {
      Mpc.Multi_output.honest_adv with
      Mpc.Multi_output.input_ct =
        Some (fun ~me:_ ~dst ct -> if dst mod 2 = 0 then Mpc.Attacks.flip_byte ct else ct);
    }
  in
  let outs = run config ~corruption ~inputs ~adv in
  (* Equality checks inside the committee catch divergent submissions (or
     the corrupted submission is consistently substituted): honest parties
     never output two different values. *)
  checkb "agreement or abort" true
    (Mpc.Outcome.agreement_or_abort ~equal:Bytes.equal
       (Array.mapi (fun i o -> if i < n then o else o) outs)
       corruption)

let () =
  Alcotest.run "multi_output"
    [
      ( "honest",
        [
          Alcotest.test_case "shared output" `Quick test_honest_shared_output;
          Alcotest.test_case "distinct outputs" `Quick test_honest_distinct_outputs;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "forwarder tamper" `Quick test_forwarder_tamper_caught_by_signature;
          Alcotest.test_case "forwarder drop" `Quick test_forwarder_drop_detected;
          Alcotest.test_case "input equivocation" `Quick test_input_equivocation_safe;
        ] );
    ]
