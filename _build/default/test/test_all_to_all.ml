(* Tests for All-to-All Broadcast with abort (F_SB, §2.1 / Remark 8). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let params n = Mpc.Params.make ~n ~h:(max 1 (n / 2)) ~lambda:8 ~alpha:2 ()

let run ?(seed = 1) ~n ~variant ~participants ~corruption ~adv input =
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create seed in
  let outs =
    Mpc.All_to_all.run net rng (params n) ~variant ~participants ~input ~corruption ~adv
  in
  (net, outs)

let view_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (i, v) (j, w) -> i = j && Bytes.equal v w) a b

let test_honest_full_network () =
  let n = 8 in
  let corruption = Netsim.Corruption.none ~n in
  let input i = Bytes.of_string (Printf.sprintf "input-%d" i) in
  List.iter
    (fun variant ->
      let _, outs =
        run ~n ~variant ~participants:(List.init n (fun i -> i)) ~corruption
          ~adv:Mpc.All_to_all.honest_adv input
      in
      List.iter
        (fun (i, o) ->
          match o with
          | Mpc.Outcome.Output view ->
            checki "full view" n (List.length view);
            List.iter (fun (j, v) -> checkb "correct value" true (Bytes.equal v (input j))) view
          | Mpc.Outcome.Abort r ->
            Alcotest.failf "party %d aborted: %s" i (Mpc.Outcome.reason_to_string r))
        outs)
    [ Mpc.All_to_all.Naive; Mpc.All_to_all.Fingerprinted ]

let test_honest_subset () =
  (* Restricted to a committee — the F_Gen / F_Comp usage pattern. *)
  let n = 10 in
  let corruption = Netsim.Corruption.none ~n in
  let participants = [ 1; 3; 5; 7 ] in
  let input i = Bytes.of_string (Printf.sprintf "member-%d" i) in
  let net, outs =
    run ~n ~variant:Mpc.All_to_all.Fingerprinted ~participants ~corruption
      ~adv:Mpc.All_to_all.honest_adv input
  in
  List.iter
    (fun (_, o) ->
      match o with
      | Mpc.Outcome.Output view -> checki "subset view" 4 (List.length view)
      | Mpc.Outcome.Abort _ -> Alcotest.fail "abort in honest subset run")
    outs;
  (* Non-participants exchanged nothing. *)
  checki "party 0 silent" 0 (Netsim.Net.bits_sent net 0);
  checki "party 0 locality" 0 (Netsim.Net.locality net 0)

let test_fingerprinted_beats_naive () =
  let n = 12 in
  let corruption = Netsim.Corruption.none ~n in
  let input _ = Bytes.make 2048 'd' in
  let participants = List.init n (fun i -> i) in
  let net1, _ =
    run ~n ~variant:Mpc.All_to_all.Naive ~participants ~corruption
      ~adv:Mpc.All_to_all.honest_adv input
  in
  let net2, _ =
    run ~n ~variant:Mpc.All_to_all.Fingerprinted ~participants ~corruption
      ~adv:Mpc.All_to_all.honest_adv input
  in
  (* Naive echoes full payloads: Θ(n³·ℓ); fingerprinted sends Θ(n²·ℓ). *)
  checkb "n^2 vs n^3" true
    (Netsim.Net.total_bits net2 * 3 < Netsim.Net.total_bits net1)

let test_split_input_attack () =
  let n = 10 in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 4 ]) in
  let adv = Mpc.Attacks.split_input ~v1:(Bytes.of_string "left") ~v2:(Bytes.of_string "right") in
  let input i = Bytes.of_string (Printf.sprintf "honest-%d" i) in
  List.iter
    (fun variant ->
      let _, outs =
        run ~n ~variant ~participants:(List.init n (fun i -> i)) ~corruption ~adv input
      in
      let outcome_arr = Array.make n (Mpc.Outcome.Abort (Mpc.Outcome.Missing "x")) in
      List.iter (fun (i, o) -> outcome_arr.(i) <- o) outs;
      checkb "agreement or abort" true
        (Mpc.Outcome.agreement_or_abort ~equal:view_equal outcome_arr corruption);
      checkb "equivocation detected" true
        (Mpc.Outcome.some_honest_aborted outcome_arr corruption))
    [ Mpc.All_to_all.Naive; Mpc.All_to_all.Fingerprinted ]

let test_silent_participant () =
  let n = 8 in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 2 ]) in
  let adv =
    { Mpc.All_to_all.honest_adv with Mpc.All_to_all.drop = Some (fun ~src:_ ~dst:_ -> true) }
  in
  let _, outs =
    run ~n ~variant:Mpc.All_to_all.Fingerprinted ~participants:(List.init n (fun i -> i))
      ~corruption ~adv (fun i -> Bytes.of_string (string_of_int i))
  in
  List.iter
    (fun (i, o) ->
      if Netsim.Corruption.is_honest corruption i then
        checkb (Printf.sprintf "party %d aborts on silence" i) true (Mpc.Outcome.is_abort o))
    outs

let prop_agreement_under_random_split =
  QCheck.Test.make ~name:"all-to-all agreement-or-abort" ~count:25
    QCheck.(pair (int_range 4 10) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Util.Prng.create seed in
      let h = 2 + Util.Prng.int rng (n - 2) in
      let corruption = Netsim.Corruption.random rng ~n ~h in
      let adv =
        Mpc.Attacks.split_input ~v1:(Bytes.of_string "aa") ~v2:(Bytes.of_string "bb")
      in
      let _, outs =
        run ~seed ~n ~variant:Mpc.All_to_all.Fingerprinted
          ~participants:(List.init n (fun i -> i))
          ~corruption ~adv
          (fun i -> Bytes.of_string (string_of_int i))
      in
      let outcome_arr = Array.make n (Mpc.Outcome.Abort (Mpc.Outcome.Missing "x")) in
      List.iter (fun (i, o) -> outcome_arr.(i) <- o) outs;
      Mpc.Outcome.agreement_or_abort ~equal:view_equal outcome_arr corruption)

let () =
  Alcotest.run "all_to_all"
    [
      ( "honest",
        [
          Alcotest.test_case "full network" `Quick test_honest_full_network;
          Alcotest.test_case "committee subset" `Quick test_honest_subset;
          Alcotest.test_case "fingerprinted beats naive" `Quick test_fingerprinted_beats_naive;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "split input" `Quick test_split_input_attack;
          Alcotest.test_case "silent participant" `Quick test_silent_participant;
          QCheck_alcotest.to_alcotest prop_agreement_under_random_split;
        ] );
    ]
