(* Tests for the locality protocols: Algorithm 7 (LocalCommitteeElect),
   Theorem 2 (gossip MPC) and Theorem 4 / Algorithm 8. *)

let checkb = Alcotest.(check bool)

let make_config ~n ~h ~circuit ~input_width () =
  {
    Mpc.Local_mpc.params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 ();
    pke = (module Crypto.Pke.Regev : Crypto.Pke.S);
    circuit;
    input_width;
  }

(* ---- LocalCommitteeElect ---- *)

let test_local_committee_honest () =
  let n = 30 and h = 15 in
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
  let corruption = Netsim.Corruption.none ~n in
  for seed = 1 to 5 do
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create seed in
    let result = Mpc.Local_committee.run net rng params ~corruption ~adv:Mpc.Local_committee.honest_adv in
    (* No honest aborts, and elected members share a view. *)
    let views =
      List.filter_map
        (fun i ->
          match result.Mpc.Local_committee.views.(i) with
          | Mpc.Outcome.Output v when v.Mpc.Committee.elected -> Some v.Mpc.Committee.committee
          | Mpc.Outcome.Output _ -> None
          | Mpc.Outcome.Abort r ->
            Alcotest.failf "party %d aborted: %s" i (Mpc.Outcome.reason_to_string r))
        (List.init n (fun i -> i))
    in
    checkb "some members" true (views <> []);
    (match views with
    | [] -> ()
    | first :: rest -> List.iter (fun v -> checkb "consistent views" true (v = first)) rest)
  done

let test_local_committee_size_larger_than_global () =
  (* Algorithm 7 uses bias α log n / √h — the committee is bigger than
     Algorithm 2's (Claim 22 needs √h·log n honest members). *)
  let n = 100 and h = 64 in
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
  checkb "local bias above global bias" true
    (Mpc.Params.local_committee_prob params > Mpc.Params.committee_prob params)

let test_local_committee_false_claims_bounded () =
  let n = 30 and h = 15 in
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:2 () in
  let rng0 = Util.Prng.create 3 in
  let corruption = Netsim.Corruption.random rng0 ~n ~h in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 4 in
  let adv =
    { Mpc.Local_committee.honest_adv with Mpc.Local_committee.false_claim = Some (fun ~me:_ -> true) }
  in
  let result = Mpc.Local_committee.run net rng params ~corruption ~adv in
  (* Safety: surviving honest elected members agree. *)
  let views =
    List.filter_map
      (fun i ->
        match result.Mpc.Local_committee.views.(i) with
        | Mpc.Outcome.Output v when v.Mpc.Committee.elected -> Some v.Mpc.Committee.committee
        | _ -> None)
      (Netsim.Corruption.honest_list corruption)
  in
  (match views with
  | [] -> ()
  | first :: rest -> List.iter (fun v -> checkb "agree" true (v = first)) rest);
  checkb "ran" true (Array.length result.Mpc.Local_committee.views = n)

(* ---- Theorem 2 ---- *)

let test_theorem2_honest () =
  let n = 24 and h = 12 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> (i / 2) mod 2) in
  let expected = Mpc.Local_mpc.expected_output config ~inputs in
  for seed = 1 to 3 do
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create seed in
    let outs = Mpc.Local_mpc.run_theorem2 net rng config ~corruption ~inputs ~adv:Mpc.Local_mpc.honest_theorem2_adv in
    checkb "all correct" true
      (Mpc.Outcome.all_honest_output_value ~equal:Bytes.equal ~expected outs corruption)
  done

let test_theorem2_locality () =
  (* Theorem 2: locality O(α n log n / h) — much smaller than n-1. *)
  let n = 60 and h = 30 in
  let config = make_config ~n ~h ~circuit:(Circuit.parity ~n) ~input_width:1 () in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.make n 0 in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 5 in
  ignore (Mpc.Local_mpc.run_theorem2 net rng config ~corruption ~inputs ~adv:Mpc.Local_mpc.honest_theorem2_adv);
  let d = Mpc.Params.sparse_degree config.Mpc.Local_mpc.params in
  checkb "locality bounded by O(d)" true (Netsim.Net.max_locality net <= 4 * d);
  checkb "sparser than clique" true (Netsim.Net.max_locality net < n - 1)

let test_theorem2_gossip_equivocation_safe () =
  let n = 24 and h = 12 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let rng0 = Util.Prng.create 6 in
  let corruption = Netsim.Corruption.random rng0 ~n ~h in
  let inputs = Array.init n (fun i -> i mod 2) in
  let adv =
    { Mpc.Local_mpc.honest_theorem2_adv with Mpc.Local_mpc.gossip_r1 = Mpc.Attacks.gossip_equivocate }
  in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 7 in
  let outs = Mpc.Local_mpc.run_theorem2 net rng config ~corruption ~inputs ~adv in
  checkb "agreement or abort" true
    (Mpc.Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption)

let test_theorem2_bad_pdec_detected () =
  let n = 24 and h = 12 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let rng0 = Util.Prng.create 8 in
  let corruption = Netsim.Corruption.random rng0 ~n ~h in
  let inputs = Array.init n (fun i -> i mod 2) in
  let adv =
    { Mpc.Local_mpc.honest_theorem2_adv with Mpc.Local_mpc.tamper_pdec = Some (fun ~me:_ -> true) }
  in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 9 in
  let outs = Mpc.Local_mpc.run_theorem2 net rng config ~corruption ~inputs ~adv in
  (* Every honest party that sees the tampered proof aborts; none outputs
     a wrong value. *)
  let expected = Mpc.Local_mpc.expected_output config ~inputs in
  Array.iteri
    (fun i o ->
      if Netsim.Corruption.is_honest corruption i then
        match o with
        | Mpc.Outcome.Output v -> checkb "correct if output" true (Bytes.equal v expected)
        | Mpc.Outcome.Abort _ -> ())
    outs

(* ---- Theorem 4 ---- *)

let test_theorem4_honest () =
  let n = 25 and h = 16 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> (i / 3) mod 2) in
  let expected = Mpc.Local_mpc.expected_output config ~inputs in
  for seed = 1 to 3 do
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create seed in
    let outs = Mpc.Local_mpc.run_theorem4 net rng config ~corruption ~inputs ~adv:Mpc.Local_mpc.honest_theorem4_adv in
    checkb "all correct" true
      (Mpc.Outcome.all_honest_output_value ~equal:Bytes.equal ~expected outs corruption)
  done

let test_theorem4_metered_phases () =
  let n = 25 and h = 16 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> i mod 2) in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 4 in
  let _, costs =
    Mpc.Local_mpc.run_theorem4_metered net rng config ~corruption ~inputs
      ~adv:Mpc.Local_mpc.honest_theorem4_adv
  in
  let sum =
    costs.Mpc.Local_mpc.election_bits + costs.keygen_bits + costs.cover_bits
    + costs.exchange_bits + costs.equality_bits + costs.compute_bits + costs.output_bits
  in
  Alcotest.(check int) "phases account for everything" (Netsim.Net.total_bits net) sum

let test_theorem4_exchange_tamper_safe () =
  let n = 25 and h = 12 in
  let config = make_config ~n ~h ~circuit:(Circuit.majority ~n) ~input_width:1 () in
  let rng0 = Util.Prng.create 10 in
  let inputs = Array.init n (fun i -> i mod 2) in
  let expected = Mpc.Local_mpc.expected_output config ~inputs in
  for seed = 1 to 3 do
    let corruption = Netsim.Corruption.random rng0 ~n ~h in
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create seed in
    let outs = Mpc.Local_mpc.run_theorem4 net rng config ~corruption ~inputs ~adv:Mpc.Attacks.exchange_tamper in
    checkb "agreement or abort" true
      (Mpc.Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption);
    Array.iteri
      (fun i o ->
        if Netsim.Corruption.is_honest corruption i then
          match o with
          | Mpc.Outcome.Output v -> checkb "correct if output" true (Bytes.equal v expected)
          | Mpc.Outcome.Abort _ -> ())
      outs
  done

let test_theorem4_output_tamper_safe () =
  let n = 25 and h = 12 in
  let config = make_config ~n ~h ~circuit:(Circuit.parity ~n) ~input_width:1 () in
  let rng0 = Util.Prng.create 11 in
  let inputs = Array.init n (fun i -> (i * 3) mod 2) in
  for seed = 1 to 3 do
    let corruption = Netsim.Corruption.random rng0 ~n ~h in
    let net = Netsim.Net.create n in
    let rng = Util.Prng.create seed in
    let outs = Mpc.Local_mpc.run_theorem4 net rng config ~corruption ~inputs ~adv:Mpc.Attacks.t4_output_tamper in
    checkb "agreement or abort" true
      (Mpc.Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption)
  done

let test_theorem4_locality_below_clique () =
  (* Needs a regime where the committee bias alpha*log n/sqrt(h) is well
     below 1, otherwise the committee saturates to everyone and the
     asymptotic locality has not kicked in yet. *)
  let n = 100 and h = 81 in
  let config =
    {
      Mpc.Local_mpc.params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:1 ();
      pke = Crypto.Pke.make_simulated ~seed:3 ();
      circuit = Circuit.parity ~n;
      input_width = 1;
    }
  in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.make n 1 in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 12 in
  ignore (Mpc.Local_mpc.run_theorem4 net rng config ~corruption ~inputs ~adv:Mpc.Local_mpc.honest_theorem4_adv);
  checkb "locality below clique" true (Netsim.Net.max_locality net < n - 1)

let test_theorem4_cover_size_override () =
  (* The E10 experiment sweeps the cover size; check the knob works and a
     tiny cover leaves parties without output (uncovered → abort).  The
     committee must not saturate to everyone, or nobody is uncovered. *)
  let n = 60 and h = 36 in
  let config =
    {
      Mpc.Local_mpc.params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha:1 ();
      pke = Crypto.Pke.make_simulated ~seed:13 ();
      circuit = Circuit.majority ~n;
      input_width = 1;
    }
  in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> i mod 2) in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create 13 in
  let outs, _ =
    Mpc.Local_mpc.run_theorem4_metered ~cover_size:1 net rng config ~corruption ~inputs
      ~adv:Mpc.Local_mpc.honest_theorem4_adv
  in
  (* With cover size 1 most parties are uncovered; they abort rather than
     output garbage. *)
  let aborts = Array.fold_left (fun a o -> a + if Mpc.Outcome.is_abort o then 1 else 0) 0 outs in
  checkb "uncovered parties abort" true (aborts > 0);
  checkb "agreement or abort" true
    (Mpc.Outcome.agreement_or_abort ~equal:Bytes.equal outs corruption)

let () =
  Alcotest.run "local"
    [
      ( "local_committee",
        [
          Alcotest.test_case "honest" `Quick test_local_committee_honest;
          Alcotest.test_case "bias above global" `Quick test_local_committee_size_larger_than_global;
          Alcotest.test_case "false claims" `Quick test_local_committee_false_claims_bounded;
        ] );
      ( "theorem2",
        [
          Alcotest.test_case "honest" `Quick test_theorem2_honest;
          Alcotest.test_case "locality" `Quick test_theorem2_locality;
          Alcotest.test_case "gossip equivocation" `Quick test_theorem2_gossip_equivocation_safe;
          Alcotest.test_case "bad partial dec" `Quick test_theorem2_bad_pdec_detected;
        ] );
      ( "theorem4",
        [
          Alcotest.test_case "honest" `Quick test_theorem4_honest;
          Alcotest.test_case "metered phases" `Quick test_theorem4_metered_phases;
          Alcotest.test_case "exchange tamper" `Quick test_theorem4_exchange_tamper_safe;
          Alcotest.test_case "output tamper" `Quick test_theorem4_output_tamper_safe;
          Alcotest.test_case "locality below clique" `Quick test_theorem4_locality_below_clique;
          Alcotest.test_case "cover size override" `Quick test_theorem4_cover_size_override;
        ] );
    ]
