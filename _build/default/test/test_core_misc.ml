(* Tests for the core support modules: Params (the paper's parameter
   formulas), Outcome (the agreement-or-abort predicates), Bitpack, and
   the Theorem 9 cost model. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- Params ---- *)

let test_params_validation () =
  checkb "n too small" true
    (try ignore (Mpc.Params.make ~n:1 ~h:1 ()); false with Invalid_argument _ -> true);
  checkb "h too big" true
    (try ignore (Mpc.Params.make ~n:4 ~h:5 ()); false with Invalid_argument _ -> true);
  checkb "h zero" true
    (try ignore (Mpc.Params.make ~n:4 ~h:0 ()); false with Invalid_argument _ -> true);
  checkb "valid" true (ignore (Mpc.Params.make ~n:4 ~h:4 ()); true)

let test_committee_prob_formula () =
  (* p = min(1, alpha * ln n / h) — the Algorithm 2 step 1 bias. *)
  let p = Mpc.Params.make ~n:100 ~h:50 ~alpha:2 () in
  let expected = 2.0 *. log 100.0 /. 50.0 in
  checkb "formula" true (abs_float (Mpc.Params.committee_prob p -. expected) < 1e-9);
  (* Saturation at 1. *)
  let p2 = Mpc.Params.make ~n:100 ~h:2 ~alpha:4 () in
  checkb "capped at 1" true (Mpc.Params.committee_prob p2 = 1.0)

let test_local_committee_prob_formula () =
  (* p = min(1, alpha * ln n / sqrt h) — Algorithm 7 step 2. *)
  let p = Mpc.Params.make ~n:100 ~h:64 ~alpha:1 () in
  let expected = log 100.0 /. 8.0 in
  checkb "formula" true (abs_float (Mpc.Params.local_committee_prob p -. expected) < 1e-9);
  checkb "bigger than global" true
    (Mpc.Params.local_committee_prob p > Mpc.Params.committee_prob p)

let test_sparse_degree_formula () =
  let p = Mpc.Params.make ~n:128 ~h:32 ~alpha:2 () in
  let expected = int_of_float (ceil (2.0 *. (128.0 /. 32.0) *. log 128.0)) in
  checki "degree" expected (Mpc.Params.sparse_degree p);
  checki "bound 2d" (2 * expected) (Mpc.Params.degree_bound p);
  (* Clamped to n-1. *)
  let tiny = Mpc.Params.make ~n:4 ~h:1 ~alpha:8 () in
  checkb "clamped" true (Mpc.Params.sparse_degree tiny <= 3)

let test_cover_size_formula () =
  let p = Mpc.Params.make ~n:100 ~h:25 () in
  checki "n/sqrt h" 20 (Mpc.Params.cover_size p);
  let p2 = Mpc.Params.make ~n:10 ~h:1 () in
  checki "clamped to n" 10 (Mpc.Params.cover_size p2)

let test_params_monotonicity () =
  (* More honest parties -> smaller committees, sparser graphs. *)
  let at h = Mpc.Params.make ~n:256 ~h ~alpha:2 () in
  checkb "committee prob decreasing in h" true
    (Mpc.Params.committee_prob (at 16) > Mpc.Params.committee_prob (at 128));
  checkb "degree decreasing in h" true
    (Mpc.Params.sparse_degree (at 16) > Mpc.Params.sparse_degree (at 128));
  checkb "cover decreasing in h" true
    (Mpc.Params.cover_size (at 16) > Mpc.Params.cover_size (at 128))

(* ---- Outcome ---- *)

let mk_corruption n bad = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list bad)

let test_agreement_or_abort_cases () =
  let c = mk_corruption 4 [ 3 ] in
  let eq = Int.equal in
  (* All honest agree. *)
  checkb "agree" true
    (Mpc.Outcome.agreement_or_abort ~equal:eq
       [| Mpc.Outcome.Output 1; Output 1; Output 1; Output 99 |]
       c);
  (* Disagreement without abort: violation. *)
  checkb "split detected" false
    (Mpc.Outcome.agreement_or_abort ~equal:eq
       [| Mpc.Outcome.Output 1; Output 2; Output 1; Output 99 |]
       c);
  (* Disagreement WITH an honest abort: allowed by selective abort. *)
  checkb "abort excuses" true
    (Mpc.Outcome.agreement_or_abort ~equal:eq
       [| Mpc.Outcome.Output 1; Output 2; Abort Mpc.Outcome.Bad_signature; Output 99 |]
       c);
  (* Corrupted disagreement is irrelevant. *)
  checkb "corrupted ignored" true
    (Mpc.Outcome.agreement_or_abort ~equal:eq
       [| Mpc.Outcome.Output 1; Output 1; Output 1; Output 12345 |]
       c);
  (* Vacuous: everyone aborted. *)
  checkb "vacuous" true
    (Mpc.Outcome.agreement_or_abort ~equal:eq
       [| Mpc.Outcome.Abort Mpc.Outcome.Bad_signature;
          Abort Mpc.Outcome.Bad_signature;
          Abort Mpc.Outcome.Bad_signature;
          Output 0 |]
       c)

let test_all_honest_output_value () =
  let c = mk_corruption 3 [ 2 ] in
  checkb "all correct" true
    (Mpc.Outcome.all_honest_output_value ~equal:Int.equal ~expected:7
       [| Mpc.Outcome.Output 7; Output 7; Output 0 |] c);
  checkb "one wrong" false
    (Mpc.Outcome.all_honest_output_value ~equal:Int.equal ~expected:7
       [| Mpc.Outcome.Output 7; Output 8; Output 7 |] c);
  checkb "abort counts as failure" false
    (Mpc.Outcome.all_honest_output_value ~equal:Int.equal ~expected:7
       [| Mpc.Outcome.Output 7; Abort Mpc.Outcome.Bad_signature; Output 7 |] c)

let test_outcome_helpers () =
  checkb "is_output" true (Mpc.Outcome.is_output (Mpc.Outcome.Output 1));
  checkb "is_abort" true (Mpc.Outcome.is_abort (Mpc.Outcome.Abort Mpc.Outcome.Bad_signature));
  checkb "get" true (Mpc.Outcome.get (Mpc.Outcome.Output 5) = Some 5);
  checkb "map" true
    (Mpc.Outcome.map (( + ) 1) (Mpc.Outcome.Output 5) = Mpc.Outcome.Output 6);
  (* Every reason renders. *)
  List.iter
    (fun r -> checkb "renders" true (String.length (Mpc.Outcome.reason_to_string r) > 0))
    [
      Mpc.Outcome.Equivocation "x"; Equality_failed "x"; Flooded "x"; Missing "x";
      Malformed "x"; Bad_signature; Bad_proof "x"; Decryption_failed; Upstream "x";
    ]

(* ---- Bitpack ---- *)

let test_bitpack_roundtrip () =
  let rng = Util.Prng.create 1 in
  for _ = 1 to 200 do
    let n = Util.Prng.int rng 70 in
    let bits = Array.init n (fun _ -> Util.Prng.bool rng) in
    let packed = Mpc.Bitpack.pack bits in
    checkb "roundtrip" true (Mpc.Bitpack.unpack packed ~nbits:n = bits);
    checki "packed size" ((n + 7) / 8) (Bytes.length packed)
  done

let test_bitpack_int_roundtrip () =
  let rng = Util.Prng.create 2 in
  for _ = 1 to 200 do
    let width = 1 + Util.Prng.int rng 30 in
    let v = Util.Prng.int rng (1 lsl width) in
    let b = Mpc.Bitpack.int_to_bytes v ~width in
    checki "int roundtrip" v (Mpc.Bitpack.bytes_to_int b ~width)
  done

let test_bitpack_unpack_short_buffer () =
  (* Reading beyond the buffer yields false bits, never a crash. *)
  let bits = Mpc.Bitpack.unpack (Bytes.make 1 '\255') ~nbits:16 in
  checkb "low bits set" true bits.(0);
  checkb "high bits clear" false bits.(15)

(* ---- Cost model ---- *)

let test_cost_model_monotone () =
  let r d = Mpc.Cost_model.round1_bytes ~lambda:8 ~depth:d ~input_bits:64 in
  checkb "grows with depth" true (r 100 > r 1);
  let ri b = Mpc.Cost_model.round1_bytes ~lambda:8 ~depth:10 ~input_bits:b in
  checkb "grows with input" true (ri 1024 > ri 8);
  let rl l = Mpc.Cost_model.round1_bytes ~lambda:l ~depth:10 ~input_bits:64 in
  checkb "grows with lambda" true (rl 32 > rl 4);
  let p d = Mpc.Cost_model.partial_dec_bytes ~lambda:8 ~depth:d in
  checkb "pdec grows with depth" true (p 100 > p 1)

let test_cost_model_blocks () =
  checki "one block minimum" 1 (Mpc.Cost_model.blocks 0);
  checki "one block" 1 (Mpc.Cost_model.blocks 64);
  checki "two blocks" 2 (Mpc.Cost_model.blocks 65);
  checki "many" 16 (Mpc.Cost_model.blocks 1024)

let test_cost_model_filler () =
  let a = Mpc.Cost_model.filler ~tag:"a" ~len:100 in
  let a' = Mpc.Cost_model.filler ~tag:"a" ~len:100 in
  let b = Mpc.Cost_model.filler ~tag:"b" ~len:100 in
  checkb "deterministic" true (Bytes.equal a a');
  checkb "tag-separated" false (Bytes.equal a b);
  checki "length" 100 (Bytes.length a)

(* ---- Attacks helpers ---- *)

let test_flip_byte () =
  let b = Bytes.of_string "hello" in
  let f = Mpc.Attacks.flip_byte b in
  checkb "differs" false (Bytes.equal b f);
  checki "same length" 5 (Bytes.length f);
  checkb "only first byte" true (Bytes.sub f 1 4 = Bytes.sub b 1 4);
  checki "empty becomes 1 byte" 1 (Bytes.length (Mpc.Attacks.flip_byte Bytes.empty))

let () =
  Alcotest.run "core_misc"
    [
      ( "params",
        [
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "committee prob" `Quick test_committee_prob_formula;
          Alcotest.test_case "local committee prob" `Quick test_local_committee_prob_formula;
          Alcotest.test_case "sparse degree" `Quick test_sparse_degree_formula;
          Alcotest.test_case "cover size" `Quick test_cover_size_formula;
          Alcotest.test_case "monotone in h" `Quick test_params_monotonicity;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "agreement-or-abort" `Quick test_agreement_or_abort_cases;
          Alcotest.test_case "all honest output" `Quick test_all_honest_output_value;
          Alcotest.test_case "helpers" `Quick test_outcome_helpers;
        ] );
      ( "bitpack",
        [
          Alcotest.test_case "bit roundtrip" `Quick test_bitpack_roundtrip;
          Alcotest.test_case "int roundtrip" `Quick test_bitpack_int_roundtrip;
          Alcotest.test_case "short buffer" `Quick test_bitpack_unpack_short_buffer;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "monotonicity" `Quick test_cost_model_monotone;
          Alcotest.test_case "blocks" `Quick test_cost_model_blocks;
          Alcotest.test_case "filler" `Quick test_cost_model_filler;
        ] );
      ( "attacks",
        [ Alcotest.test_case "flip_byte" `Quick test_flip_byte ] );
    ]
