(* Tests for Yao garbling, LWE oblivious transfer, and the two-party
   protocol built from them (Remark 10's instantiation). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- Garbling ---- *)

let test_garble_families () =
  let rng = Util.Prng.create 1 in
  List.iter
    (fun (name, circuit) ->
      for _ = 1 to 10 do
        let g = Crypto.Garble.garble rng circuit in
        let inputs =
          Array.init circuit.Circuit.num_inputs (fun _ -> Util.Prng.bool rng)
        in
        let labels = Crypto.Garble.encode g ~inputs in
        match Crypto.Garble.eval ~tables:(Crypto.Garble.tables g) ~input_labels:labels with
        | Some out -> checkb name true (out = Circuit.eval circuit inputs)
        | None -> Alcotest.failf "%s: eval failed" name
      done)
    [
      ("majority", Circuit.majority ~n:8);
      ("parity", Circuit.parity ~n:9);
      ("sum", Circuit.sum ~n:4 ~width:3);
      ("maximum", Circuit.maximum ~n:4 ~width:4);
      ("auction", Circuit.second_price_auction ~n:4 ~width:3);
      ("equality", Circuit.equality_check ~n:3 ~width:4);
    ]

let test_garble_wrong_labels_detected () =
  let rng = Util.Prng.create 2 in
  let circuit = Circuit.majority ~n:5 in
  let g = Crypto.Garble.garble rng circuit in
  let inputs = [| true; false; true; true; false |] in
  let labels = Crypto.Garble.encode g ~inputs in
  (* Replace one active label by random bytes: the row tag must reject. *)
  labels.(2) <- Util.Prng.bytes rng Crypto.Garble.label_size;
  checkb "garbage label rejected" true
    (Crypto.Garble.eval ~tables:(Crypto.Garble.tables g) ~input_labels:labels = None)

let test_garble_tables_fresh_per_garbling () =
  let rng = Util.Prng.create 3 in
  let circuit = Circuit.parity ~n:4 in
  let g1 = Crypto.Garble.garble rng circuit in
  let g2 = Crypto.Garble.garble rng circuit in
  checkb "randomized garbling" false
    (Bytes.equal (Crypto.Garble.tables g1) (Crypto.Garble.tables g2))

let test_garble_size_linear_in_circuit () =
  let rng = Util.Prng.create 4 in
  let size n = Crypto.Garble.size_bytes (Crypto.Garble.garble rng (Circuit.majority ~n)) in
  let s16 = size 16 and s32 = size 32 in
  let ratio = float_of_int s32 /. float_of_int s16 in
  checkb "tables ~linear in C" true (ratio > 1.5 && ratio < 3.0)

let test_garble_labels_hide_values () =
  (* The two labels of a wire are unrelated byte strings (no shared prefix
     beyond chance): a weak but meaningful sanity check of the hiding
     structure. *)
  let rng = Util.Prng.create 5 in
  let g = Crypto.Garble.garble rng (Circuit.majority ~n:4) in
  for wire = 0 to 3 do
    let l0, l1 = Crypto.Garble.input_labels g ~wire in
    checkb "labels differ" false (Bytes.equal l0 l1);
    (* opposite select bits: point-and-permute *)
    let sel b = Char.code (Bytes.get b (Crypto.Garble.label_size - 1)) land 1 in
    checki "select bits complementary" 1 (sel l0 lxor sel l1)
  done

let prop_garble_random_circuits =
  (* Random DAGs: interleave gate constructors over a growing wire pool. *)
  QCheck.Test.make ~name:"garbled eval = plain eval on random circuits" ~count:40
    QCheck.(pair (int_range 2 6) (int_bound 1_000_000))
    (fun (num_inputs, seed) ->
      let rng = Util.Prng.create seed in
      let pool = ref (List.init num_inputs (fun i -> Circuit.Input i)) in
      for _ = 1 to 15 do
        let pick () = List.nth !pool (Util.Prng.int rng (List.length !pool)) in
        let g =
          match Util.Prng.int rng 5 with
          | 0 -> Circuit.And (pick (), pick ())
          | 1 -> Circuit.Or (pick (), pick ())
          | 2 -> Circuit.Xor (pick (), pick ())
          | 3 -> Circuit.Not (pick ())
          | _ -> Circuit.Const (Util.Prng.bool rng)
        in
        pool := g :: !pool
      done;
      let outputs = [ List.hd !pool; List.nth !pool (List.length !pool / 2) ] in
      let circuit = Circuit.make ~num_inputs ~outputs in
      let g = Crypto.Garble.garble rng circuit in
      let inputs = Array.init num_inputs (fun _ -> Util.Prng.bool rng) in
      let labels = Crypto.Garble.encode g ~inputs in
      match Crypto.Garble.eval ~tables:(Crypto.Garble.tables g) ~input_labels:labels with
      | Some out -> out = Circuit.eval circuit inputs
      | None -> false)

(* ---- Oblivious transfer ---- *)

let test_ot_both_choices () =
  let rng = Util.Prng.create 6 in
  List.iter
    (fun choice ->
      let m0 = Bytes.of_string "zero message" in
      let m1 = Bytes.of_string "one  message" in
      let r1, st = Crypto.Ot.receiver_round1 rng ~choice in
      match Crypto.Ot.sender_round2 rng ~round1:r1 ~m0 ~m1 with
      | None -> Alcotest.fail "round 2 failed"
      | Some r2 -> (
        match Crypto.Ot.receiver_finish st ~round2:r2 with
        | Some m ->
          checkb "chosen message" true (Bytes.equal m (if choice then m1 else m0))
        | None -> Alcotest.fail "finish failed"))
    [ false; true ]

let test_ot_other_message_hidden () =
  (* The receiver's state can only open its chosen slot; decrypting the
     other ciphertext with its key yields garbage (statistically never the
     other message). *)
  let rng = Util.Prng.create 7 in
  let m0 = Bytes.of_string "AAAAAAAAAAAAAAAA" in
  let m1 = Bytes.of_string "BBBBBBBBBBBBBBBB" in
  for _ = 1 to 10 do
    let r1, st = Crypto.Ot.receiver_round1 rng ~choice:false in
    match Crypto.Ot.sender_round2 rng ~round1:r1 ~m0 ~m1 with
    | None -> Alcotest.fail "round 2 failed"
    | Some r2 -> (
      (* Swap the two ciphertexts so the receiver's key targets the wrong
         slot: it must not recover m1. *)
      let ct0, ct1 =
        Util.Codec.decode
          (fun r ->
            let a = Util.Codec.read_bytes r in
            let b = Util.Codec.read_bytes r in
            (a, b))
          r2
      in
      let swapped =
        Util.Codec.encode
          (fun w () ->
            Util.Codec.write_bytes w ct1;
            Util.Codec.write_bytes w ct0)
          ()
      in
      match Crypto.Ot.receiver_finish st ~round2:swapped with
      | Some m -> checkb "lossy slot hides m1" false (Bytes.equal m m1)
      | None -> ())
  done

let test_ot_malformed_rejected () =
  let rng = Util.Prng.create 8 in
  checkb "bad round1" true
    (Crypto.Ot.sender_round2 rng ~round1:(Bytes.of_string "junk") ~m0:Bytes.empty ~m1:Bytes.empty
     = None);
  let _, st = Crypto.Ot.receiver_round1 rng ~choice:true in
  checkb "bad round2" true (Crypto.Ot.receiver_finish st ~round2:(Bytes.of_string "junk") = None)

(* ---- Two-party protocol ---- *)

let test_two_party_sum () =
  let rng = Util.Prng.create 9 in
  let width = 4 in
  let circuit = Circuit.sum ~n:2 ~width in
  for _ = 1 to 5 do
    let x0 = Util.Prng.int rng 16 and x1 = Util.Prng.int rng 16 in
    let net = Netsim.Net.create 2 in
    match Mpc.Two_party.run net rng ~circuit ~input_width:width ~x0 ~x1 with
    | Mpc.Outcome.Output (g, e) ->
      checki "garbler" (x0 + x1) (Mpc.Bitpack.bytes_to_int g ~width:(width + 1));
      checki "evaluator" (x0 + x1) (Mpc.Bitpack.bytes_to_int e ~width:(width + 1))
    | Mpc.Outcome.Abort r -> Alcotest.failf "abort: %s" (Mpc.Outcome.reason_to_string r)
  done

let test_two_party_comparison () =
  let rng = Util.Prng.create 10 in
  let width = 5 in
  let a = Circuit.Builder.input_word ~offset:0 ~width in
  let b = Circuit.Builder.input_word ~offset:width ~width in
  let circuit = Circuit.make ~num_inputs:(2 * width) ~outputs:[ Circuit.Builder.lt_word a b ] in
  for x0 = 0 to 4 do
    for x1 = 0 to 4 do
      let net = Netsim.Net.create 2 in
      match Mpc.Two_party.run net rng ~circuit ~input_width:width ~x0:(x0 * 6) ~x1:(x1 * 6) with
      | Mpc.Outcome.Output (_, e) ->
        checki
          (Printf.sprintf "%d < %d" (x0 * 6) (x1 * 6))
          (if x0 * 6 < x1 * 6 then 1 else 0)
          (Mpc.Bitpack.bytes_to_int e ~width:1)
      | Mpc.Outcome.Abort r -> Alcotest.failf "abort: %s" (Mpc.Outcome.reason_to_string r)
    done
  done

let test_two_party_cost_linear_in_size () =
  let rng = Util.Prng.create 11 in
  let cost width =
    let circuit = Circuit.sum ~n:2 ~width in
    let net = Netsim.Net.create 2 in
    (match Mpc.Two_party.run net rng ~circuit ~input_width:width ~x0:1 ~x1:2 with
    | Mpc.Outcome.Output _ -> ()
    | Mpc.Outcome.Abort _ -> Alcotest.fail "abort");
    Netsim.Net.total_bits net
  in
  (* Doubling the word width doubles both C and the OT count. *)
  let c4 = cost 4 and c8 = cost 8 in
  let ratio = float_of_int c8 /. float_of_int c4 in
  checkb "linear growth" true (ratio > 1.5 && ratio < 2.6)

let () =
  Alcotest.run "garble"
    [
      ( "garbling",
        [
          Alcotest.test_case "circuit families" `Quick test_garble_families;
          Alcotest.test_case "wrong labels detected" `Quick test_garble_wrong_labels_detected;
          Alcotest.test_case "randomized garbling" `Quick test_garble_tables_fresh_per_garbling;
          Alcotest.test_case "tables linear in C" `Quick test_garble_size_linear_in_circuit;
          Alcotest.test_case "label structure" `Quick test_garble_labels_hide_values;
          QCheck_alcotest.to_alcotest prop_garble_random_circuits;
        ] );
      ( "ot",
        [
          Alcotest.test_case "both choices" `Quick test_ot_both_choices;
          Alcotest.test_case "other message hidden" `Quick test_ot_other_message_hidden;
          Alcotest.test_case "malformed rejected" `Quick test_ot_malformed_rejected;
        ] );
      ( "two_party",
        [
          Alcotest.test_case "sum" `Quick test_two_party_sum;
          Alcotest.test_case "comparison" `Quick test_two_party_comparison;
          Alcotest.test_case "cost linear in size" `Quick test_two_party_cost_linear_in_size;
        ] );
    ]
