(* Tests for Algorithm 2 (CommitteeElect): Claims 12 and 14. *)

let checkb = Alcotest.(check bool)

let run ?(seed = 1) ?(alpha = 3) ~n ~h ~corruption ~adv () =
  let params = Mpc.Params.make ~n ~h ~lambda:8 ~alpha () in
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create seed in
  let outs = Mpc.Committee.run net rng params ~corruption ~adv in
  (params, net, outs)

let test_honest_no_abort () =
  (* Claim 14 non-triviality: honest executions abort with negligible
     probability. *)
  let n = 24 and h = 12 in
  let corruption = Netsim.Corruption.none ~n in
  for seed = 1 to 20 do
    let _, _, outs = run ~seed ~n ~h ~corruption ~adv:Mpc.Committee.honest_adv () in
    Array.iteri
      (fun i o ->
        match o with
        | Mpc.Outcome.Output _ -> ()
        | Mpc.Outcome.Abort r ->
          Alcotest.failf "party %d aborted honestly: %s (seed %d)" i
            (Mpc.Outcome.reason_to_string r) seed)
      outs
  done

let test_honest_member_exists () =
  (* Claim 14 item 1: at least one honest member w.h.p. *)
  let n = 24 and h = 12 in
  let rng = Util.Prng.create 99 in
  let failures = ref 0 in
  for seed = 1 to 30 do
    let corruption = Netsim.Corruption.random rng ~n ~h in
    let _, _, outs = run ~seed ~n ~h ~corruption ~adv:Mpc.Committee.honest_adv () in
    match Mpc.Committee.consistent_committee outs corruption with
    | Some committee -> checkb "non-empty" true (committee <> [])
    | None -> incr failures
  done;
  (* With p = 3 ln 24 / 12 ≈ 0.79 and 12 honest parties, missing every
     honest party is < 1e-8 per run. *)
  checkb "honest member present" true (!failures = 0)

let test_views_consistent () =
  (* Claim 14 item 2: all honest members share one view. *)
  let n = 20 and h = 10 in
  let rng = Util.Prng.create 7 in
  for seed = 1 to 20 do
    let corruption = Netsim.Corruption.random rng ~n ~h in
    let _, _, outs = run ~seed ~n ~h ~corruption ~adv:Mpc.Committee.honest_adv () in
    checkb "consistent" true (Mpc.Committee.consistent_committee outs corruption <> None)
  done

let test_committee_size_bound () =
  (* Claim 12: |C| ≤ 2pn. *)
  let n = 40 and h = 20 in
  let corruption = Netsim.Corruption.none ~n in
  for seed = 1 to 20 do
    let params, _, outs = run ~seed ~n ~h ~corruption ~adv:Mpc.Committee.honest_adv () in
    let bound = Mpc.Params.committee_bound params in
    Array.iter
      (fun o ->
        match o with
        | Mpc.Outcome.Output v ->
          checkb "size bound" true (List.length v.Mpc.Committee.committee <= bound + 1)
        | Mpc.Outcome.Abort _ -> ())
      outs
  done

let test_selective_claim_detected () =
  (* A corrupted party claims election to only half the network: the view
     equality tests must catch the divergence (or the liar is excluded from
     every honest view consistently). *)
  let n = 16 and h = 12 in
  let rng = Util.Prng.create 8 in
  for seed = 1 to 10 do
    let corruption = Netsim.Corruption.random rng ~n ~h in
    let adv = Mpc.Attacks.selective_claim ~cutoff:(n / 2) in
    let _, _, outs = run ~seed ~n ~h ~corruption ~adv () in
    (* Safety: honest members that did NOT abort must share the same view. *)
    checkb "agreement among non-aborted members" true
      (let views =
         List.filter_map
           (fun i ->
             match outs.(i) with
             | Mpc.Outcome.Output v when v.Mpc.Committee.elected ->
               Some v.Mpc.Committee.committee
             | _ -> None)
           (Netsim.Corruption.honest_list corruption)
       in
       match views with
       | [] -> true
       | first :: rest -> List.for_all (( = ) first) rest)
  done

let test_claim_flood_aborts () =
  (* Every corrupted party falsely claims election.  With alpha = 1,
     n = 30, h = 15 the bound is 2pn ≈ 14, far below the 15 corrupted
     claims — honest parties must detect the flood and abort. *)
  let n = 30 and h = 15 in
  let rng = Util.Prng.create 9 in
  let corruption = Netsim.Corruption.random rng ~n ~h in
  let _, _, outs = run ~alpha:1 ~n ~h ~corruption ~adv:Mpc.Attacks.claim_all () in
  checkb "flood detected" true (Mpc.Outcome.some_honest_aborted outs corruption)

let test_lying_view_check_safe () =
  (* Corrupted members answering "equal" to everything cannot make two
     honest members hold different views without abort. *)
  let n = 16 in
  let rng = Util.Prng.create 10 in
  for seed = 1 to 10 do
    let h = 4 + Util.Prng.int rng 10 in
    let corruption = Netsim.Corruption.random rng ~n ~h in
    let _, _, outs = run ~seed ~n ~h ~corruption ~adv:Mpc.Attacks.lying_view_check () in
    let honest_views =
      List.filter_map
        (fun i ->
          match outs.(i) with
          | Mpc.Outcome.Output v when v.Mpc.Committee.elected -> Some v.Mpc.Committee.committee
          | _ -> None)
        (Netsim.Corruption.honest_list corruption)
    in
    checkb "honest views agree or aborted" true
      (match honest_views with
      | [] -> true
      | first :: rest ->
        List.for_all (( = ) first) rest
        || Mpc.Outcome.some_honest_aborted outs corruption)
  done

let test_communication_near_optimal () =
  (* Claim 12: Õ(n²/h) — halving h should roughly double the bits. *)
  let cost n h =
    let corruption = Netsim.Corruption.none ~n in
    let _, net, _ = run ~n ~h ~corruption ~adv:Mpc.Committee.honest_adv () in
    float_of_int (Netsim.Net.total_bits net)
  in
  let c1 = cost 64 32 and c2 = cost 64 8 in
  checkb "more honest parties, cheaper election" true (c1 < c2)

let () =
  Alcotest.run "committee"
    [
      ( "honest",
        [
          Alcotest.test_case "no abort" `Quick test_honest_no_abort;
          Alcotest.test_case "honest member exists" `Quick test_honest_member_exists;
          Alcotest.test_case "views consistent" `Quick test_views_consistent;
          Alcotest.test_case "size bound" `Quick test_committee_size_bound;
          Alcotest.test_case "cost scales with 1/h" `Quick test_communication_near_optimal;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "selective claim" `Quick test_selective_claim_detected;
          Alcotest.test_case "claim flood aborts" `Quick test_claim_flood_aborts;
          Alcotest.test_case "lying view check" `Quick test_lying_view_check_safe;
        ] );
    ]
