(* Tests for the GMW baseline: correctness on every circuit family, cost
   shape (Θ(n²) per AND layer), and — crucially — the demonstration that
   plain GMW has NO abort guarantee: a single corrupted party silently
   corrupts everyone's output, which is exactly the failure mode the
   paper's protocols exist to prevent. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let run ?(seed = 1) ~n ~circuit ~input_width ~inputs ~corruption ~adv () =
  let net = Netsim.Net.create n in
  let rng = Util.Prng.create seed in
  let outs = Mpc.Gmw.run net rng ~circuit ~input_width ~inputs ~corruption ~adv in
  (net, outs)

let expected circuit width inputs =
  Mpc.Bitpack.pack (Circuit.eval circuit (Circuit.pack_inputs ~width (Array.to_list inputs)))

let test_correct_on_families () =
  let rng = Util.Prng.create 7 in
  List.iter
    (fun (n, circuit, width) ->
      for seed = 1 to 5 do
        let inputs = Array.init n (fun _ -> Util.Prng.int rng (1 lsl width)) in
        let corruption = Netsim.Corruption.none ~n in
        let _, outs = run ~seed ~n ~circuit ~input_width:width ~inputs ~corruption ~adv:Mpc.Gmw.honest_adv () in
        let e = expected circuit width inputs in
        Array.iteri
          (fun i o -> checkb (Printf.sprintf "party %d" i) true (Bytes.equal o e))
          outs
      done)
    [
      (8, Circuit.majority ~n:8, 1);
      (6, Circuit.parity ~n:6, 1);
      (5, Circuit.sum ~n:5 ~width:3, 3);
      (4, Circuit.maximum ~n:4 ~width:4, 4);
      (4, Circuit.second_price_auction ~n:4 ~width:3, 3);
      (4, Circuit.equality_check ~n:4 ~width:3, 3);
    ]

let test_two_parties_minimal () =
  let circuit = Circuit.sum ~n:2 ~width:4 in
  let inputs = [| 9; 5 |] in
  let corruption = Netsim.Corruption.none ~n:2 in
  let _, outs = run ~n:2 ~circuit ~input_width:4 ~inputs ~corruption ~adv:Mpc.Gmw.honest_adv () in
  checki "9+5" 14 (Mpc.Bitpack.bytes_to_int outs.(0) ~width:5);
  checki "9+5" 14 (Mpc.Bitpack.bytes_to_int outs.(1) ~width:5)

let test_triples_counted () =
  let circuit = Circuit.majority ~n:8 in
  let t = Mpc.Gmw.triples_used ~circuit in
  checkb "some multiplicative gates" true (t > 0);
  (* parity is XOR-only: zero triples. *)
  checki "parity needs no triples" 0 (Mpc.Gmw.triples_used ~circuit:(Circuit.parity ~n:8))

let test_xor_only_is_cheap () =
  (* Free-XOR structure: parity has no openings, so the only traffic is
     input sharing and output opening. *)
  let n = 10 in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.init n (fun i -> i land 1) in
  let net, _ =
    run ~n ~circuit:(Circuit.parity ~n) ~input_width:1 ~inputs ~corruption
      ~adv:Mpc.Gmw.honest_adv ()
  in
  (* input share: n*(n-1) bytes; output open: n*(n-1) bytes; nothing else. *)
  checkb "only sharing + opening" true (Netsim.Net.total_bits net <= 8 * 2 * n * (n - 1))

let test_cost_quadratic_in_n () =
  let cost n =
    let corruption = Netsim.Corruption.none ~n in
    let inputs = Array.init n (fun i -> i land 1) in
    let net, _ =
      run ~n ~circuit:(Circuit.majority ~n) ~input_width:1 ~inputs ~corruption
        ~adv:Mpc.Gmw.honest_adv ()
    in
    float_of_int (Netsim.Net.total_bits net)
  in
  (* #ANDs grows ~linearly in n and each costs Θ(n²): expect ~n³ total. *)
  let r = cost 24 /. cost 12 in
  checkb "super-quadratic growth" true (r > 5.0)

let test_full_locality () =
  (* The baseline talks to everyone — no locality at all. *)
  let n = 8 in
  let corruption = Netsim.Corruption.none ~n in
  let inputs = Array.make n 1 in
  let net, _ =
    run ~n ~circuit:(Circuit.majority ~n) ~input_width:1 ~inputs ~corruption
      ~adv:Mpc.Gmw.honest_adv ()
  in
  checki "clique locality" (n - 1) (Netsim.Net.max_locality net)

let test_share_flip_corrupts_silently () =
  (* The headline negative result: one corrupted party flips one share in
     one opening and every honest party computes a wrong output with no
     abort — plain GMW gives no agreement-or-abort guarantee in the
     malicious model.  (The paper's protocols detect exactly this.) *)
  let n = 8 in
  let circuit = Circuit.majority ~n in
  let inputs = Array.init n (fun i -> i land 1) in
  let corruption = Netsim.Corruption.make ~n ~corrupted:(Util.Iset.of_list [ 3 ]) in
  let adv = { Mpc.Gmw.flip_share = Some (fun ~me:_ ~gate_index:_ -> true) } in
  let corrupted_runs = ref 0 in
  for seed = 1 to 5 do
    let _, outs = run ~seed ~n ~circuit ~input_width:1 ~inputs ~corruption ~adv () in
    let e = expected circuit 1 inputs in
    if
      List.exists
        (fun i -> not (Bytes.equal outs.(i) e))
        (Netsim.Corruption.honest_list corruption)
    then incr corrupted_runs
  done;
  checkb "attack silently corrupts outputs" true (!corrupted_runs > 0)

let test_deterministic_given_seed () =
  let n = 6 in
  let circuit = Circuit.sum ~n ~width:2 in
  let inputs = [| 1; 2; 3; 0; 1; 2 |] in
  let corruption = Netsim.Corruption.none ~n in
  let _, o1 = run ~seed:9 ~n ~circuit ~input_width:2 ~inputs ~corruption ~adv:Mpc.Gmw.honest_adv () in
  let _, o2 = run ~seed:9 ~n ~circuit ~input_width:2 ~inputs ~corruption ~adv:Mpc.Gmw.honest_adv () in
  checkb "reproducible" true (Array.for_all2 Bytes.equal o1 o2)

let prop_random_inputs =
  QCheck.Test.make ~name:"gmw matches plain evaluation" ~count:30
    QCheck.(pair (int_range 2 8) (int_bound 100_000))
    (fun (n, seed) ->
      let rng = Util.Prng.create seed in
      let circuit = Circuit.sum ~n ~width:3 in
      let inputs = Array.init n (fun _ -> Util.Prng.int rng 8) in
      let corruption = Netsim.Corruption.none ~n in
      let _, outs =
        run ~seed ~n ~circuit ~input_width:3 ~inputs ~corruption ~adv:Mpc.Gmw.honest_adv ()
      in
      let e = expected circuit 3 inputs in
      Array.for_all (Bytes.equal e) outs)

let () =
  Alcotest.run "gmw"
    [
      ( "correctness",
        [
          Alcotest.test_case "all circuit families" `Quick test_correct_on_families;
          Alcotest.test_case "two parties" `Quick test_two_parties_minimal;
          Alcotest.test_case "triple counting" `Quick test_triples_counted;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
          QCheck_alcotest.to_alcotest prop_random_inputs;
        ] );
      ( "cost",
        [
          Alcotest.test_case "xor-only cheap" `Quick test_xor_only_is_cheap;
          Alcotest.test_case "quadratic per gate" `Quick test_cost_quadratic_in_n;
          Alcotest.test_case "no locality" `Quick test_full_locality;
        ] );
      ( "baseline weakness",
        [ Alcotest.test_case "share flip corrupts silently" `Quick test_share_flip_corrupts_silently ] );
    ]
