type t = {
  num_parties : int;
  mutable round : int;
  inboxes : (int * bytes) list array; (* per recipient, arrival order *)
  mutable pending : (int * int * bytes) list; (* (src, dst, payload), reversed *)
  sent_bits : int array;
  recv_bits : int array;
  peer_sets : Util.Iset.t array;
  mutable total_messages : int;
}

let create num_parties =
  if num_parties <= 0 then invalid_arg "Net.create: need at least one party";
  {
    num_parties;
    round = 0;
    inboxes = Array.make num_parties [];
    pending = [];
    sent_bits = Array.make num_parties 0;
    recv_bits = Array.make num_parties 0;
    peer_sets = Array.make num_parties Util.Iset.empty;
    total_messages = 0;
  }

let n t = t.num_parties

let check_party t i name =
  if i < 0 || i >= t.num_parties then
    invalid_arg (Printf.sprintf "Net.%s: party %d out of range" name i)

let send t ~src ~dst payload =
  check_party t src "send";
  check_party t dst "send";
  if src = dst then invalid_arg "Net.send: self-send";
  let bits = 8 * Bytes.length payload in
  t.sent_bits.(src) <- t.sent_bits.(src) + bits;
  t.recv_bits.(dst) <- t.recv_bits.(dst) + bits;
  t.peer_sets.(src) <- Util.Iset.add dst t.peer_sets.(src);
  t.peer_sets.(dst) <- Util.Iset.add src t.peer_sets.(dst);
  t.total_messages <- t.total_messages + 1;
  t.pending <- (src, dst, payload) :: t.pending

let step t =
  (* Deterministic delivery: stable order by sender id, preserving per-sender
     send order (pending is reversed send order). *)
  let msgs = List.rev t.pending in
  t.pending <- [];
  let sorted = List.stable_sort (fun (s1, _, _) (s2, _, _) -> compare s1 s2) msgs in
  List.iter (fun (src, dst, payload) -> t.inboxes.(dst) <- (src, payload) :: t.inboxes.(dst)) sorted;
  t.round <- t.round + 1

let recv t ~dst =
  check_party t dst "recv";
  let msgs = List.rev t.inboxes.(dst) in
  t.inboxes.(dst) <- [];
  msgs

let recv_from t ~dst ~src =
  check_party t dst "recv_from";
  let mine, rest = List.partition (fun (s, _) -> s = src) (List.rev t.inboxes.(dst)) in
  t.inboxes.(dst) <- List.rev rest;
  List.map snd mine

let peek t ~dst =
  check_party t dst "peek";
  List.rev t.inboxes.(dst)

let rounds t = t.round

let bits_sent t i =
  check_party t i "bits_sent";
  t.sent_bits.(i)

let bits_received t i =
  check_party t i "bits_received";
  t.recv_bits.(i)

let total_bits t = Array.fold_left ( + ) 0 t.sent_bits
let total_bits_of t parties = List.fold_left (fun acc i -> acc + bits_sent t i) 0 parties

let peers t i =
  check_party t i "peers";
  t.peer_sets.(i)

let locality t i = Util.Iset.cardinal (peers t i)

let max_locality t =
  let best = ref 0 in
  for i = 0 to t.num_parties - 1 do
    best := max !best (locality t i)
  done;
  !best

let messages_sent t = t.total_messages

type snapshot = { snap_bits : int; snap_msgs : int; snap_rounds : int }

let snapshot t =
  { snap_bits = total_bits t; snap_msgs = t.total_messages; snap_rounds = t.round }

let diff_snapshot ~before ~after =
  {
    snap_bits = after.snap_bits - before.snap_bits;
    snap_msgs = after.snap_msgs - before.snap_msgs;
    snap_rounds = after.snap_rounds - before.snap_rounds;
  }
