type t = { total : int; bad : Util.Iset.t }

let make ~n ~corrupted =
  if n <= 0 then invalid_arg "Corruption.make: n must be positive";
  Util.Iset.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Corruption.make: party out of range")
    corrupted;
  { total = n; bad = corrupted }

let none ~n = make ~n ~corrupted:Util.Iset.empty

let random rng ~n ~h =
  if h < 1 || h > n then invalid_arg "Corruption.random: need 1 <= h <= n";
  let bad = Util.Prng.sample_without_replacement rng ~n ~k:(n - h) in
  make ~n ~corrupted:(Util.Iset.of_list bad)

let targeting rng ~n ~h ~victim =
  if h < 1 || h > n then invalid_arg "Corruption.targeting: need 1 <= h <= n";
  if victim < 0 || victim >= n then invalid_arg "Corruption.targeting: bad victim";
  (* Pick h-1 random honest parties among the others; corrupt the rest. *)
  let others = List.filter (fun i -> i <> victim) (List.init n (fun i -> i)) in
  let arr = Array.of_list others in
  Util.Prng.shuffle rng arr;
  let honest_others = Array.to_list (Array.sub arr 0 (h - 1)) in
  let honest = Util.Iset.of_list (victim :: honest_others) in
  let bad = Util.Iset.diff (Util.Iset.range 0 (n - 1)) honest in
  make ~n ~corrupted:bad

let n t = t.total
let num_corrupted t = Util.Iset.cardinal t.bad
let num_honest t = t.total - num_corrupted t
let is_corrupted t i = Util.Iset.mem i t.bad
let is_honest t i = not (is_corrupted t i)
let corrupted t = t.bad
let honest t = Util.Iset.diff (Util.Iset.range 0 (t.total - 1)) t.bad
let honest_list t = Util.Iset.to_sorted_list (honest t)
let corrupted_list t = Util.Iset.to_sorted_list t.bad
