(** Static corruption sets.

    The paper's adversary is {b static} and {b malicious}: before the
    protocol begins it picks up to [n - h] parties to corrupt, then controls
    them arbitrarily.  This module represents who is corrupted and provides
    the samplers the experiments use (uniform corruption, targeted
    corruption around a victim, etc.). *)

type t

(** [make ~n ~corrupted] — [corrupted] must be a subset of [0..n-1]. *)
val make : n:int -> corrupted:Util.Iset.t -> t

(** [none ~n] — the all-honest execution (used for cost measurement). *)
val none : n:int -> t

(** [random rng ~n ~h] corrupts a uniformly random set of exactly [n - h]
    parties. Requires [1 <= h <= n]. *)
val random : Util.Prng.t -> n:int -> h:int -> t

(** [targeting rng ~n ~h ~victim] — the Appendix A adversary: [victim] is
    honest, the other [h - 1] honest parties are uniformly random, the rest
    are corrupted. *)
val targeting : Util.Prng.t -> n:int -> h:int -> victim:int -> t

val n : t -> int
val num_honest : t -> int
val num_corrupted : t -> int
val is_honest : t -> int -> bool
val is_corrupted : t -> int -> bool
val honest : t -> Util.Iset.t
val corrupted : t -> Util.Iset.t
val honest_list : t -> int list
val corrupted_list : t -> int list
