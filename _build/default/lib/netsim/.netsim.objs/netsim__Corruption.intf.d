lib/netsim/corruption.mli: Util
