lib/netsim/net.mli: Util
