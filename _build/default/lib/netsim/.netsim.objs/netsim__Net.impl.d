lib/netsim/net.ml: Array Bytes List Printf Util
