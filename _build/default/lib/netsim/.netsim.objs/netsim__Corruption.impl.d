lib/netsim/corruption.ml: Array List Util
