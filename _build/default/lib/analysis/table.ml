type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length cells)
         (List.length t.columns));
  t.rows <- cells :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let pad i s =
    let extra = widths.(i) - String.length s in
    (* Right-align numbers-ish cells, left-align the first column. *)
    if i = 0 then s ^ String.make extra ' ' else String.make extra ' ' ^ s
  in
  let line cells =
    Buffer.add_string buf "  ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) + 2 in
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  line t.columns;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter line rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_int v = string_of_int v

let fmt_bits b =
  let fb = float_of_int b in
  if fb >= 1e9 then Printf.sprintf "%.2f Gb" (fb /. 1e9)
  else if fb >= 1e6 then Printf.sprintf "%.2f Mb" (fb /. 1e6)
  else if fb >= 1e3 then Printf.sprintf "%.2f Kb" (fb /. 1e3)
  else Printf.sprintf "%d b" b

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let fmt_ratio v = Printf.sprintf "%.2fx" v
let fmt_prob p = Printf.sprintf "%.4f" p
