(** Aligned ASCII tables for the benchmark output.

    Each experiment in [bench/main.ml] prints one table per paper claim,
    styled like the rows a systems paper would report. *)

type t

(** [create ~title ~columns] — column headers fix the arity of every row. *)
val create : title:string -> columns:string list -> t

(** [add_row t cells] — [Invalid_argument] on arity mismatch. *)
val add_row : t -> string list -> unit

(** [render t] — the full table as a string (title, rule, header, rows). *)
val render : t -> string

(** [print t] — [render] to stdout. *)
val print : t -> unit

(** {1 Cell formatting helpers} *)

val fmt_int : int -> string

(** [fmt_bits b] — human-scaled, e.g. ["1.24 Mb"]. *)
val fmt_bits : int -> string

val fmt_float : ?decimals:int -> float -> string

(** [fmt_ratio x] — e.g. ["3.1x"]. *)
val fmt_ratio : float -> string

(** [fmt_prob p] — probability with 4 decimals. *)
val fmt_prob : float -> string
