lib/analysis/table.mli:
