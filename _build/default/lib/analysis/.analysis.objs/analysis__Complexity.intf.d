lib/analysis/complexity.mli:
