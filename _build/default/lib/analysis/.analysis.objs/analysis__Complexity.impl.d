lib/analysis/complexity.ml: List Util
