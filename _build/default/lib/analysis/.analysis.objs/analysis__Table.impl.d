lib/analysis/table.ml: Array Buffer List Printf String
