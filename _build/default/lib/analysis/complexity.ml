type measurement = { x : float; value : float }
type fit = { exponent : float; constant : float; r2 : float }

let sweep ~xs ~runs f =
  List.map
    (fun x ->
      let values = List.init runs (fun rep -> f ~x ~rep) in
      { x = float_of_int x; value = Util.Stats.mean values })
    xs

let fit ms =
  let pts = List.map (fun m -> (m.x, m.value)) ms in
  let exponent, constant, r2 = Util.Stats.loglog_exponent pts in
  { exponent; constant; r2 }

let fit_with_polylog ms =
  let candidates =
    List.map
      (fun j ->
        let adjusted =
          List.map
            (fun m ->
              let logf = log (max 2.0 m.x) ** float_of_int j in
              { m with value = m.value /. logf })
            ms
        in
        (fit adjusted, j))
      [ 0; 1; 2; 3 ]
  in
  List.fold_left
    (fun ((best_fit, _) as best) ((f, _) as cand) ->
      if f.r2 > best_fit.r2 then cand else best)
    (List.hd candidates) (List.tl candidates)

let check_exponent ~expected ~tolerance f = abs_float (f.exponent -. expected) <= tolerance
