type adv = {
  equivocate : (me:int -> origin:int -> dst:int -> bytes -> bytes option) option;
  forge : (me:int -> (int * bytes) list) option;
  drop : (me:int -> origin:int -> dst:int -> bool) option;
  spread_warning : bool;
}

let honest_adv = { equivocate = None; forge = None; drop = None; spread_warning = true }

(* Wire format: tag 0 = rumor (origin, value); tag 1 = warning. *)
let encode_rumor origin value =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.write_byte w 0;
      Util.Codec.write_varint w origin;
      Util.Codec.write_bytes w value)
    ()

let warning_msg =
  Util.Codec.encode (fun w () -> Util.Codec.write_byte w 1) ()

type parsed = Rumor of int * bytes | Warning | Garbage

let parse payload =
  match
    Util.Codec.decode
      (fun r ->
        match Util.Codec.read_byte r with
        | 0 ->
          let origin = Util.Codec.read_varint r in
          let value = Util.Codec.read_bytes r in
          Rumor (origin, value)
        | 1 -> Warning
        | _ -> Garbage)
      payload
  with
  | v -> v
  | exception Util.Codec.Decode_error _ -> Garbage

let run net _rng _params ~graph ~sources ~corruption ~adv =
  let n = Netsim.Net.n net in
  if Array.length graph <> n then invalid_arg "Gossip.run: graph arity";
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let heard : (int, bytes) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 8) in
  let forwarded = Array.init n (fun _ -> Hashtbl.create 8) in
  let warned = Array.make n false in
  let warning_sent = Array.make n false in
  (* Outgoing queue for the current round: (src, dst, payload). *)
  let queue = ref [] in
  let enqueue src dst payload = queue := (src, dst, payload) :: !queue in
  let neighbors i = Util.Iset.to_sorted_list graph.(i) in
  let forward_rumor me origin value =
    if not (Hashtbl.mem forwarded.(me) origin) then begin
      Hashtbl.replace forwarded.(me) origin ();
      List.iter
        (fun dst ->
          if dst <> me then begin
            let dropped =
              is_corrupt me
              && match adv.drop with Some f -> f ~me ~origin ~dst | None -> false
            in
            if not dropped then begin
              let v =
                if is_corrupt me then
                  match adv.equivocate with
                  | Some f -> ( match f ~me ~origin ~dst value with Some v -> v | None -> value)
                  | None -> value
                else value
              in
              enqueue me dst (encode_rumor origin v)
            end
          end)
        (neighbors me)
    end
  in
  let send_warning me =
    if not warning_sent.(me) then begin
      warning_sent.(me) <- true;
      if (not (is_corrupt me)) || adv.spread_warning then
        List.iter (fun dst -> if dst <> me then enqueue me dst warning_msg) (neighbors me)
    end
  in
  (* Round 0: sources inject their own rumors; corrupted parties may also
     forge rumors for arbitrary origins. *)
  List.iter
    (fun (origin, value) ->
      Hashtbl.replace heard.(origin) origin value;
      forward_rumor origin origin value)
    sources;
  for i = 0 to n - 1 do
    if is_corrupt i then
      match adv.forge with
      | Some f ->
        List.iter
          (fun (origin, value) ->
            (* Forged rumors bypass the "heard" bookkeeping: the forger
               just transmits them. *)
            List.iter
              (fun dst -> if dst <> i then enqueue i dst (encode_rumor origin value))
              (neighbors i))
          (f ~me:i)
      | None -> ()
  done;
  (* Gossip rounds until quiescence (bounded by 2n + 2 as a safety net). *)
  let max_rounds = (2 * n) + 2 in
  let round = ref 0 in
  while !queue <> [] && !round < max_rounds do
    incr round;
    let msgs = !queue in
    queue := [];
    List.iter (fun (src, dst, payload) -> Netsim.Net.send net ~src ~dst payload) msgs;
    Netsim.Net.step net;
    for me = 0 to n - 1 do
      let inbox = Netsim.Net.recv net ~dst:me in
      List.iter
        (fun (_, payload) ->
          match parse payload with
          | Warning ->
            if not warned.(me) then begin
              warned.(me) <- true;
              send_warning me
            end
          | Garbage ->
            if not warned.(me) then begin
              warned.(me) <- true;
              send_warning me
            end
          | Rumor (origin, value) ->
            if not warned.(me) then begin
              match Hashtbl.find_opt heard.(me) origin with
              | None ->
                Hashtbl.replace heard.(me) origin value;
                forward_rumor me origin value
              | Some prev ->
                if not (Bytes.equal prev value) then begin
                  (* Equivocation detected: warn and abort. *)
                  warned.(me) <- true;
                  send_warning me
                end
            end)
        inbox
    done
  done;
  Array.init n (fun i ->
      if warned.(i) then Outcome.Abort (Outcome.Equivocation "conflicting rumor or warning")
      else
        Outcome.Output
          (Hashtbl.fold (fun origin value acc -> (origin, value) :: acc) heard.(i) []
          |> List.sort compare))
