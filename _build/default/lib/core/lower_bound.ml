type trial = { victim_isolated : bool; disagreement : bool }
type rates = { success_rate : float; isolation_rate : float }

let threshold ~n ~h = float_of_int n /. (8.0 *. float_of_int (max 1 (h - 1)))

let isolation_probability_bound ~n ~h ~degree =
  (* The victim's contact set (size ~degree, both directions counted as
     roughly degree effective contacts) must avoid the h-1 random honest
     parties among the other n-1. *)
  let p = ref 1.0 in
  for i = 0 to h - 2 do
    let remaining = n - 1 - i in
    p := !p *. max 0.0 (1.0 -. (float_of_int degree /. float_of_int remaining))
  done;
  !p

(* The strawman low-locality broadcast: relay the first value heard to
   [degree] random peers; no verification, no abort.  Corrupted parties
   play the Appendix A strategy. *)
let run_trial rng ~n ~h ~degree ~victim_is_sender =
  if h < 2 || h > n then invalid_arg "Lower_bound.run_trial: need 2 <= h <= n";
  if degree < 1 || degree >= n then invalid_arg "Lower_bound.run_trial: bad degree";
  let victim = 0 in
  let sender = if victim_is_sender then victim else 1 in
  (* Adversary fixes the victim (and we keep the sender honest so a
     reference honest value always exists), then picks the remaining honest
     parties uniformly. *)
  let honest = Array.make n false in
  honest.(victim) <- true;
  honest.(sender) <- true;
  let others =
    List.filter (fun i -> i <> victim && i <> sender) (List.init n (fun i -> i))
  in
  let arr = Array.of_list others in
  Util.Prng.shuffle rng arr;
  let need = h - if victim_is_sender then 1 else 2 in
  Array.iteri (fun idx i -> if idx < need then honest.(i) <- true) arr;
  (* Each party samples its outgoing contacts. *)
  let out_peers =
    Array.init n (fun i ->
        Util.Prng.sample_without_replacement rng ~n:(n - 1) ~k:(min degree (n - 1))
        |> List.map (fun v -> if v >= i then v + 1 else v))
  in
  let neighbors = Array.make n Util.Iset.empty in
  Array.iteri
    (fun i peers ->
      List.iter
        (fun j ->
          neighbors.(i) <- Util.Iset.add j neighbors.(i);
          neighbors.(j) <- Util.Iset.add i neighbors.(j))
        peers)
    out_peers;
  let victim_isolated =
    Util.Iset.for_all (fun j -> not honest.(j)) neighbors.(victim)
  in
  (* Propagation.  Values: x = 0 (true), x' = 1 (forged). *)
  let x = 0 and x' = 1 in
  let heard = Array.make n [] in
  let held = Array.make n None in
  let relayed = Array.make n false in
  let pending = ref [] in
  let send dst v = pending := (dst, v) :: !pending in
  (* Round 0: the sender starts the broadcast; corrupted parties inject the
     forged value per the attack plan. *)
  List.iter (fun j -> send j x) (Util.Iset.to_sorted_list neighbors.(sender));
  held.(sender) <- Some x;
  relayed.(sender) <- true;
  for i = 0 to n - 1 do
    if not honest.(i) then
      if victim_is_sender then
        (* Impersonate the sender: gossip x' to all honest contacts. *)
        Util.Iset.iter (fun j -> if honest.(j) && j <> sender then send j x') neighbors.(i)
      else
        (* Feed the forged value to the victim only (stealth). *)
        send victim x'
  done;
  let rounds = ref 0 in
  while !pending <> [] && !rounds <= 2 * n do
    incr rounds;
    let msgs = !pending in
    pending := [];
    List.iter
      (fun (dst, v) ->
        heard.(dst) <- v :: heard.(dst);
        if honest.(dst) then begin
          (match held.(dst) with None -> held.(dst) <- Some v | Some _ -> ());
          if not relayed.(dst) then begin
            relayed.(dst) <- true;
            let v0 = Option.get held.(dst) in
            Util.Iset.iter (fun j -> send j v0) neighbors.(dst)
          end
        end
        else begin
          (* Corrupted relays keep the true value moving among non-victims
             so the attack stays undetected. *)
          if (not relayed.(dst)) && v = x then begin
            relayed.(dst) <- true;
            Util.Iset.iter
              (fun j -> if j <> victim || victim_is_sender then send j x)
              neighbors.(dst)
          end
        end)
      msgs
  done;
  (* Detection: an honest party that heard two different values would abort
     in any sound protocol; such trials are failures for the adversary. *)
  let conflict_at i =
    honest.(i)
    && List.exists (fun v -> v = x) heard.(i)
    && List.exists (fun v -> v = x') heard.(i)
  in
  let any_conflict = List.exists conflict_at (List.init n (fun i -> i)) in
  let disagreement =
    if any_conflict then false
    else if victim_is_sender then
      (* Success: some honest non-sender party adopted the forged value. *)
      List.exists
        (fun i -> honest.(i) && i <> sender && held.(i) = Some x')
        (List.init n (fun i -> i))
    else
      (* Success: the victim adopted the forged value while the (honest)
         sender of course holds the true one. *)
      held.(victim) = Some x'
  in
  { victim_isolated; disagreement }

let measure rng ~n ~h ~degree ~trials ~victim_is_sender =
  let succ = ref 0 and iso = ref 0 in
  for _ = 1 to trials do
    let t = run_trial rng ~n ~h ~degree ~victim_is_sender in
    if t.disagreement then incr succ;
    if t.victim_isolated then incr iso
  done;
  {
    success_rate = float_of_int !succ /. float_of_int trials;
    isolation_rate = float_of_int !iso /. float_of_int trials;
  }
