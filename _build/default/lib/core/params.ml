type t = { n : int; h : int; lambda : int; alpha : int }

let make ~n ~h ?(lambda = 8) ?(alpha = 4) () =
  if n < 2 then invalid_arg "Params.make: n must be at least 2";
  if h < 1 || h > n then invalid_arg "Params.make: need 1 <= h <= n";
  if lambda < 1 then invalid_arg "Params.make: lambda must be positive";
  if alpha < 1 then invalid_arg "Params.make: alpha must be positive";
  { n; h; lambda; alpha }

let log_n t = max 1.0 (log (float_of_int t.n))

let committee_prob t =
  min 1.0 (float_of_int t.alpha *. log_n t /. float_of_int t.h)

let committee_bound t =
  int_of_float (ceil (2.0 *. committee_prob t *. float_of_int t.n))

let sparse_degree t =
  let d =
    float_of_int t.alpha *. (float_of_int t.n /. float_of_int t.h) *. log_n t
  in
  max 1 (min (t.n - 1) (int_of_float (ceil d)))

let degree_bound t = 2 * sparse_degree t

let local_committee_prob t =
  min 1.0 (float_of_int t.alpha *. log_n t /. sqrt (float_of_int t.h))

let local_committee_bound t =
  int_of_float (ceil (2.0 *. local_committee_prob t *. float_of_int t.n))

let cover_size t =
  max 1 (min t.n (int_of_float (ceil (float_of_int t.n /. sqrt (float_of_int t.h)))))

let fingerprint_t t ~msg_len =
  Crypto.Fingerprint.residues_needed ~lambda:t.lambda ~n:t.n ~msg_len

let pp fmt t =
  Format.fprintf fmt "{n=%d; h=%d; lambda=%d; alpha=%d}" t.n t.h t.lambda t.alpha
