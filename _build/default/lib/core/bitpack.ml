let pack bits =
  let nbits = Array.length bits in
  let out = Bytes.make ((nbits + 7) / 8) '\000' in
  Array.iteri
    (fun k b ->
      if b then
        Bytes.set out (k / 8)
          (Char.chr (Char.code (Bytes.get out (k / 8)) lor (1 lsl (k mod 8)))))
    bits;
  out

let unpack b ~nbits =
  Array.init nbits (fun k ->
      if k / 8 >= Bytes.length b then false
      else (Char.code (Bytes.get b (k / 8)) lsr (k mod 8)) land 1 = 1)

let int_to_bytes v ~width = pack (Array.init width (fun k -> (v lsr k) land 1 = 1))

let bytes_to_int b ~width =
  let bits = unpack b ~nbits:width in
  let v = ref 0 in
  for k = width - 1 downto 0 do
    v := (!v lsl 1) lor (if bits.(k) then 1 else 0)
  done;
  !v
