(** Explicit [poly(λ, D)] cost model for the Theorem 9 machinery.

    Theorem 9 states that, assuming LWE, any interactive functionality can
    be computed with one simultaneous broadcast on inputs of size
    [poly(λ, D, ℓ_in)] plus [ℓ_out · n · poly(λ, D)] extra bits (the
    multi-key-FHE round-1 messages and the per-output partial decryptions
    with their NIZK proofs).

    The paper never instantiates the polynomial — its bounds only need
    {e some} fixed polynomial, because λ and D are constants in all four
    theorems.  We pin down a concrete instantiation: an RLWE-style scheme
    with ring dimension [Θ(λ + D)] and SIMD packing of {!slot_bits}
    plaintext bits per ciphertext block (as real FHE deployments do), so
    that every simulated message has a definite, tractable byte length
    that the network meters.  The experiments verify the paper's bounds
    {e as functions of n and h}, with these polynomials held fixed. *)

(** Plaintext SIMD slots per ciphertext block. *)
val slot_bits : int

(** Ring-dimension stand-in: [4λ + 2D]. *)
val lattice_dim : lambda:int -> depth:int -> int

(** [blocks bits] — packed ciphertext blocks needed for [bits] plaintext
    bits (at least 1). *)
val blocks : int -> int

(** Size in {b bytes} of one party's simultaneous-broadcast message in the
    Theorem 9 protocol: key material + packed input ciphertexts + NIZK. *)
val round1_bytes : lambda:int -> depth:int -> input_bits:int -> int

(** Size in {b bytes} of one partial decryption + NIZK proof, per packed
    output block, per sender. *)
val partial_dec_bytes : lambda:int -> depth:int -> int

(** [filler ~tag ~len] — deterministic pseudorandom payload bytes standing
    in for actual MKFHE material (so the network carries real bytes of the
    modeled size, and equality tests on them behave like on real data). *)
val filler : tag:string -> len:int -> bytes
