(** Algorithm 5 — [SparseNetwork], establishing a sparse routing graph.

    Each party samples [d = α·(n/h)·log n] random outgoing hops and
    notifies them; the graph is bidirectional (hop relations are
    symmetric).  A party that receives more than [2d] incoming connections
    aborts — with honest parties this happens with probability
    [n^{-Ω(α)}], so crossing the threshold indicates a targeted flooding
    attack (Algorithm 5 step 3).

    Guarantees (Claim 20): max degree [O(α·n·log n/h)], and the subgraph
    induced by the honest parties is connected w.h.p. *)

type adv = {
  extra_targets : (me:int -> int list) option;
      (** corrupted parties connect to extra victims (the "DDoS" attack) *)
  drop_notify : (me:int -> dst:int -> bool) option;
      (** corrupted parties fail to notify some sampled hops *)
}

val honest_adv : adv

(** Per-party neighbor set, or abort. *)
val run :
  Netsim.Net.t ->
  Util.Prng.t ->
  Params.t ->
  corruption:Netsim.Corruption.t ->
  adv:adv ->
  Util.Iset.t Outcome.t array

(** [honest_subgraph_connected outs corruption] — true when the honest
    parties that did not abort form a connected subgraph under the mutual
    neighbor relation (the Claim 20 property measured by experiment E7). *)
val honest_subgraph_connected : Util.Iset.t Outcome.t array -> Netsim.Corruption.t -> bool

(** [max_degree outs] — over non-aborted parties. *)
val max_degree : Util.Iset.t Outcome.t array -> int
