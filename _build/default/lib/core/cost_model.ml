(* The concrete polynomial: an RLWE-style instantiation with ring dimension
   linear in λ and D, and SIMD packing of [slot_bits] plaintext bits per
   ciphertext.  Any fixed poly(λ, D) preserves the paper's bounds — all
   four theorems treat λ and D as constants; these choices keep the
   simulation's constants tractable at thousands of parties. *)

let slot_bits = 64

let lattice_dim ~lambda ~depth = (4 * lambda) + (2 * depth)

let blocks bits = (max 1 bits + slot_bits - 1) / slot_bits

let round1_bytes ~lambda ~depth ~input_bits =
  let dim = lattice_dim ~lambda ~depth in
  (* Public key material: dim elements; one packed ciphertext (dim+1
     elements) per slot_bits of input; a NIZK of well-formedness: dim
     elements.  Two bytes per element. *)
  2 * (dim + ((dim + 1) * blocks input_bits) + dim)

let partial_dec_bytes ~lambda ~depth =
  let dim = lattice_dim ~lambda ~depth in
  (* One partial decryption share (an element vector) plus the NIZK of the
     noisy inner product, per packed output block. *)
  2 * (1 + dim)

let filler ~tag ~len =
  (* Pseudorandom payload seeded by the tag.  A fast non-cryptographic
     stream suffices: these bytes stand in for MKFHE material whose only
     observable properties here are size and value-distinctness. *)
  let digest = Crypto.Sha256.digest_string tag in
  let seed = ref 0 in
  Bytes.iteri (fun i c -> if i < 8 then seed := (!seed lsl 8) lor Char.code c) digest;
  let rng = Util.Prng.create (!seed land max_int) in
  Util.Prng.bytes rng len
