(** The Theorem 3 lower bound, reproduced as an executable attack
    (Appendix A).

    The proof: take any broadcast-with-abort protocol in which some party
    [Q] communicates with fewer than [n/8(h-1)] peers in expectation.  The
    adversary declares [Q] honest, picks the other [h-1] honest parties
    uniformly at random, and corrupts the rest.  With constant probability
    {e none} of [Q]'s contacts are honest, at which point the adversary
    can impersonate the entire network to [Q] (or impersonate [Q] to the
    network when [Q] is the sender) and force disagreement {e without any
    honest party aborting} — violating the agreement-or-abort guarantee.

    We instantiate the "protocol with low locality" as the natural
    strawman: a gossip broadcast where every party relays the first value
    it hears to [degree] random peers, with no verification machinery.
    Sweeping [degree] around [n/8(h-1)] (experiment E4) shows the attack
    succeeding with constant probability below the threshold and dying off
    above it — the shape of Theorem 3.

    This module simulates the propagation directly on adjacency lists
    (it measures probabilities, not bits; the metered protocols live in
    the other modules). *)

type trial = {
  victim_isolated : bool;
      (** none of the victim's contacts were honest — the core event of
          the proof *)
  disagreement : bool;
      (** two honest parties ended with different values and no honest
          party had any signal to abort on *)
}

(** [run_trial rng ~n ~h ~degree ~victim_is_sender] — one attack run.
    Requires [2 <= h <= n], [1 <= degree < n]. *)
val run_trial :
  Util.Prng.t -> n:int -> h:int -> degree:int -> victim_is_sender:bool -> trial

type rates = {
  success_rate : float;    (** fraction of trials with disagreement *)
  isolation_rate : float;  (** fraction of trials with an isolated victim *)
}

(** [measure rng ~n ~h ~degree ~trials ~victim_is_sender]. *)
val measure :
  Util.Prng.t -> n:int -> h:int -> degree:int -> trials:int -> victim_is_sender:bool -> rates

(** The proof's locality threshold [n / (8(h-1))]. *)
val threshold : n:int -> h:int -> float

(** [isolation_probability_bound ~n ~h ~degree] — the analytical
    probability that a fixed set of [degree] contacts misses all [h-1]
    random honest parties: [∏_{i<h-1} (1 - degree/(n-1-i))], for
    comparison against the measured isolation rate. *)
val isolation_probability_bound : n:int -> h:int -> degree:int -> float
