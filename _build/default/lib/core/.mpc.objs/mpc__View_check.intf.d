lib/core/view_check.mli: Equality Netsim Params Util
