lib/core/lower_bound.ml: Array List Option Util
