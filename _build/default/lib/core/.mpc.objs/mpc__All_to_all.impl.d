lib/core/all_to_all.ml: Broadcast Bytes Equality Hashtbl List Netsim Option Outcome Util
