lib/core/attacks.ml: All_to_all Broadcast Bytes Char Committee Enc_func Equality Gossip Local_mpc Mpc_abort Sparse_network Util
