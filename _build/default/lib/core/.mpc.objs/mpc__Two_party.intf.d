lib/core/two_party.mli: Circuit Netsim Outcome Util
