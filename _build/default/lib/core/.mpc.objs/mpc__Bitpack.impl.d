lib/core/bitpack.ml: Array Bytes Char
