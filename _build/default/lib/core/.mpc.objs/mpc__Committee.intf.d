lib/core/committee.mli: Equality Netsim Outcome Params Util
