lib/core/broadcast.ml: Array Bytes Crypto List Netsim Option Outcome Params Util
