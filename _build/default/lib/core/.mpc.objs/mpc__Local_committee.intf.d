lib/core/local_committee.mli: Committee Equality Gossip Netsim Outcome Params Sparse_network Util
