lib/core/params.ml: Crypto Format
