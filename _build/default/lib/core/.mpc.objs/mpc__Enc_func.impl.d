lib/core/enc_func.ml: All_to_all Bytes Cost_model Crypto Hashtbl List Netsim Outcome Params Printf
