lib/core/gossip.ml: Array Bytes Hashtbl List Netsim Outcome Util
