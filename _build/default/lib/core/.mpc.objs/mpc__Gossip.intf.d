lib/core/gossip.mli: Netsim Outcome Params Util
