lib/core/view_check.ml: Array Bytes Crypto Equality List Netsim Params Util
