lib/core/mpc_abort.mli: Circuit Committee Crypto Enc_func Equality Netsim Outcome Params Util
