lib/core/gmw.ml: Array Bitpack Bytes Char Circuit Hashtbl List Netsim Obj Util
