lib/core/local_mpc.ml: Array Bitpack Bytes Circuit Committee Cost_model Crypto Enc_func Equality Gossip Hashtbl List Local_committee Netsim Outcome Params Printf Sparse_network Util
