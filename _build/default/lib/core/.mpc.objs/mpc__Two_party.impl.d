lib/core/two_party.ml: Array Bitpack Bytes Circuit Crypto List Netsim Option Outcome Util
