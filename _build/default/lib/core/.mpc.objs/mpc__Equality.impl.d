lib/core/equality.ml: Array Bytes Crypto Hashtbl List Netsim Params Util
