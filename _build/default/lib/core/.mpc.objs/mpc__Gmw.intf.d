lib/core/gmw.mli: Circuit Netsim Util
