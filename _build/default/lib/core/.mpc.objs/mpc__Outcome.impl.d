lib/core/outcome.ml: Array Format List Netsim
