lib/core/committee.ml: Array Bytes Equality List Netsim Outcome Params Util View_check
