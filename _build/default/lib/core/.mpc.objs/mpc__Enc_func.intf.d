lib/core/enc_func.mli: All_to_all Netsim Outcome Params Util
