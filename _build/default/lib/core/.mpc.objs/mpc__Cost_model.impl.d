lib/core/cost_model.ml: Bytes Char Crypto Util
