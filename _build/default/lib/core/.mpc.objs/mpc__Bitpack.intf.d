lib/core/bitpack.mli:
