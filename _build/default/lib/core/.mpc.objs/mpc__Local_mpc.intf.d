lib/core/local_mpc.mli: Circuit Crypto Enc_func Equality Gossip Local_committee Netsim Outcome Params Sparse_network Util
