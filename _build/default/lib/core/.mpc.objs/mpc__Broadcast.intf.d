lib/core/broadcast.mli: Netsim Outcome Params Util
