lib/core/attacks.mli: All_to_all Broadcast Committee Gossip Local_mpc Mpc_abort Sparse_network Util
