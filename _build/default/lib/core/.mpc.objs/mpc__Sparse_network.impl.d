lib/core/sparse_network.ml: Array Bytes Hashtbl List Netsim Outcome Params Util
