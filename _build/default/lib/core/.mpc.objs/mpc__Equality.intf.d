lib/core/equality.mli: Crypto Netsim Params Util
