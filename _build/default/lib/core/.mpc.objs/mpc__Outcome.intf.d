lib/core/outcome.mli: Format Netsim
