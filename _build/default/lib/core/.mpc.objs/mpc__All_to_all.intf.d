lib/core/all_to_all.mli: Equality Netsim Outcome Params Util
