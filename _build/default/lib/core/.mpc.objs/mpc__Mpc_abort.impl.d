lib/core/mpc_abort.ml: Array Bitpack Bytes Circuit Committee Crypto Enc_func Equality Hashtbl List Netsim Outcome Params Printf Util
