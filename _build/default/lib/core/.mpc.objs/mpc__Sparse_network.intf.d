lib/core/sparse_network.mli: Netsim Outcome Params Util
