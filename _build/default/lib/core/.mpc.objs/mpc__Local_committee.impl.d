lib/core/local_committee.ml: Array Bytes Committee Equality Gossip List Netsim Outcome Params Sparse_network Util View_check
