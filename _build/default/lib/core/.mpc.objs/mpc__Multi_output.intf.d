lib/core/multi_output.mli: Circuit Committee Crypto Enc_func Equality Netsim Outcome Params Util
