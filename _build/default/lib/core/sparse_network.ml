type adv = {
  extra_targets : (me:int -> int list) option;
  drop_notify : (me:int -> dst:int -> bool) option;
}

let honest_adv = { extra_targets = None; drop_notify = None }

let run net rng params ~corruption ~adv =
  let n = Netsim.Net.n net in
  let d = Params.sparse_degree params in
  let bound = Params.degree_bound params in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  (* Step 1: sample outgoing hops (distinct, excluding self). *)
  let out_hops =
    Array.init n (fun i ->
        let sample = Util.Prng.sample_without_replacement rng ~n:(n - 1) ~k:(min d (n - 1)) in
        (* Map [0, n-2] onto [0, n-1] \ {i}. *)
        List.map (fun v -> if v >= i then v + 1 else v) sample)
  in
  (* Step 2: notification.  Corrupted parties may add extra targets (to
     flood a victim) or silently skip some notifications. *)
  for i = 0 to n - 1 do
    let targets =
      if is_corrupt i then
        let extra = match adv.extra_targets with Some f -> f ~me:i | None -> [] in
        List.sort_uniq compare (extra @ out_hops.(i))
      else out_hops.(i)
    in
    List.iter
      (fun dst ->
        if dst <> i then begin
          let dropped =
            is_corrupt i
            && match adv.drop_notify with Some f -> f ~me:i ~dst | None -> false
          in
          if not dropped then Netsim.Net.send net ~src:i ~dst (Bytes.make 1 '\001')
        end)
      targets
  done;
  Netsim.Net.step net;
  (* Step 3: collect incoming notifications; abort on a flooded inbox.
     (The paper's step 3 text garbles the inequality; per the proof of
     Claim 20 the abort condition is |N_in| exceeding twice the expected
     degree.) *)
  Array.init n (fun i ->
      let incoming = List.sort_uniq compare (List.map fst (Netsim.Net.recv net ~dst:i)) in
      if List.length incoming > bound then
        Outcome.Abort (Outcome.Flooded "incoming degree above 2d")
      else Outcome.Output (Util.Iset.of_list (incoming @ out_hops.(i))))

let honest_subgraph_connected outs corruption =
  let honest_active =
    List.filter
      (fun i -> Outcome.is_output outs.(i))
      (Netsim.Corruption.honest_list corruption)
  in
  match honest_active with
  | [] -> true
  | start :: _ ->
    let neighbor_set i =
      match outs.(i) with Outcome.Output s -> s | Outcome.Abort _ -> Util.Iset.empty
    in
    let honest_set = Util.Iset.of_list honest_active in
    let visited = Hashtbl.create 64 in
    let rec bfs = function
      | [] -> ()
      | i :: rest ->
        if Hashtbl.mem visited i then bfs rest
        else begin
          Hashtbl.replace visited i ();
          let next =
            Util.Iset.fold
              (fun j acc ->
                if Util.Iset.mem j honest_set && not (Hashtbl.mem visited j) then j :: acc
                else acc)
              (neighbor_set i) []
          in
          bfs (next @ rest)
        end
    in
    bfs [ start ];
    List.for_all (Hashtbl.mem visited) honest_active

let max_degree outs =
  Array.fold_left
    (fun acc o ->
      match o with
      | Outcome.Output s -> max acc (Util.Iset.cardinal s)
      | Outcome.Abort _ -> acc)
    0 outs
