type config = {
  params : Params.t;
  pke : (module Crypto.Pke.S);
  circuit : Circuit.t;
  input_width : int;
  output_width : int;
}

type adv = {
  committee : Committee.adv;
  encf : Enc_func.adv;
  pk_forward : (me:int -> dst:int -> bytes -> bytes) option;
  input_ct : (me:int -> dst:int -> bytes -> bytes) option;
  eq : Equality.adv;
  forwarder_tamper : (dst:int -> bytes -> bytes) option;
  forwarder_drop : (dst:int -> bool) option;
}

let honest_adv =
  {
    committee = Committee.honest_adv;
    encf = Enc_func.honest_adv;
    pk_forward = None;
    input_ct = None;
    eq = Equality.honest_adv;
    forwarder_tamper = None;
    forwarder_drop = None;
  }

let slice_output config all_bits i =
  let w = config.output_width in
  Bitpack.pack (Array.sub all_bits (i * w) w)

let expected_outputs config ~inputs =
  let bits = Circuit.pack_inputs ~width:config.input_width (Array.to_list inputs) in
  let out = Circuit.eval config.circuit bits in
  Array.init (Array.length inputs) (fun i -> slice_output config out i)

(* Party i's submission: its input ciphertext and its encrypted SKE key. *)
let encode_submission ct kct =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.write_bytes w ct;
      Util.Codec.write_bytes w kct)
    ()

let decode_submission b =
  match
    Util.Codec.decode
      (fun r ->
        let ct = Util.Codec.read_bytes r in
        let kct = Util.Codec.read_bytes r in
        (ct, kct))
      b
  with
  | v -> Some v
  | exception Util.Codec.Decode_error _ -> None
  | exception Invalid_argument _ -> None

(* The signed bundle forwarded to party i. *)
let encode_bundle ct' signature =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.write_bytes w ct';
      Crypto.Merkle_sig.encode_signature w signature)
    ()

let decode_bundle b =
  match
    Util.Codec.decode
      (fun r ->
        let ct' = Util.Codec.read_bytes r in
        let signature = Crypto.Merkle_sig.decode_signature r in
        (ct', signature))
      b
  with
  | v -> Some v
  | exception Util.Codec.Decode_error _ -> None
  | exception Invalid_argument _ -> None

let encode_ct_view view =
  Util.Codec.encode
    (fun w ->
      Util.Codec.write_list w (fun w (id, s) ->
          Util.Codec.write_varint w id;
          Util.Codec.write_option w Util.Codec.write_bytes s))
    view

let run net rng config ~corruption ~inputs ~adv =
  let module P = (val config.pke : Crypto.Pke.S) in
  let params = config.params in
  let n = Netsim.Net.n net in
  if Array.length inputs <> n then invalid_arg "Multi_output.run: wrong input count";
  if Circuit.num_outputs config.circuit <> n * config.output_width then
    invalid_arg "Multi_output.run: circuit output arity mismatch";
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let abort = Array.make n None in
  let set_abort i r = if abort.(i) = None then abort.(i) <- Some r in
  let active i = abort.(i) = None in

  (* ---- Step 1: committee election ---- *)
  let views = Committee.run net rng params ~corruption ~adv:adv.committee in
  Array.iteri
    (fun i o -> match o with Outcome.Abort r -> set_abort i r | Outcome.Output _ -> ())
    views;
  let my_view i =
    match views.(i) with Outcome.Output v -> Some v | Outcome.Abort _ -> None
  in
  let members =
    List.filter
      (fun i ->
        active i && match my_view i with Some v -> v.Committee.elected | None -> false)
      (List.init n (fun i -> i))
  in

  (* ---- Steps 2-5: F_Gen,1 (encryption pk) and F_Gen,2 (signature pk'),
     each forwarded to the whole network with conflict detection ---- *)
  let keypair = ref None in
  let sig_keys = ref None in
  let run_fgen ~tag ~eval_pk =
    if members = [] then []
    else
      Enc_func.run net rng params ~participants:(List.filter active members)
        ~private_input:(fun i ->
          Crypto.Kdf.expand
            ~key:(Util.Prng.bytes rng 32)
            ~info:(Printf.sprintf "%s/%d" tag i)
            (max 8 (params.Params.lambda / 8)))
        ~depth:1
        ~eval:(fun member_inputs ->
          let seed =
            List.fold_left
              (fun acc (_, r) -> Crypto.Sha256.digest (Bytes.cat acc r))
              (Bytes.of_string tag) member_inputs
          in
          { Enc_func.public_output = eval_pk seed; private_outputs = [] })
        ~corruption ~adv:adv.encf
  in
  let forward_and_check pk_tbl =
    (* Each member forwards its copy to everyone; parties abort on
       conflicts. Returns the per-party accepted value. *)
    List.iter
      (fun c ->
        if active c then
          match Hashtbl.find_opt pk_tbl c with
          | Some pkb ->
            for dst = 0 to n - 1 do
              if dst <> c then begin
                let payload =
                  match adv.pk_forward with
                  | Some f when is_corrupt c -> f ~me:c ~dst pkb
                  | _ -> pkb
                in
                Netsim.Net.send net ~src:c ~dst payload
              end
            done
          | None -> ())
      members;
    Netsim.Net.step net;
    Array.init n (fun i ->
        let copies = List.map snd (Netsim.Net.recv net ~dst:i) in
        let copies =
          match Hashtbl.find_opt pk_tbl i with Some own -> own :: copies | None -> copies
        in
        match copies with
        | [] ->
          if active i then set_abort i (Outcome.Missing "no key received");
          None
        | first :: rest ->
          if List.for_all (Bytes.equal first) rest then Some first
          else begin
            if active i then set_abort i (Outcome.Equivocation "conflicting keys");
            None
          end)
  in
  (* F_Gen,1: PKE key. *)
  let gen1 =
    run_fgen ~tag:"fgen1" ~eval_pk:(fun seed ->
        let pk, sk = P.keygen_seeded seed in
        keypair := Some (pk, sk);
        P.public_key_bytes pk)
  in
  let member_pk = Hashtbl.create 8 in
  List.iter
    (fun (i, out) ->
      match out with
      | Outcome.Output (pkb, _) -> Hashtbl.replace member_pk i pkb
      | Outcome.Abort r -> set_abort i r)
    gen1;
  let party_pk = forward_and_check member_pk in
  (* F_Gen,2: signature key. Height covers one signature per party. *)
  let sig_height =
    let rec go k = if 1 lsl k >= n then k else go (k + 1) in
    go 0
  in
  let gen2 =
    run_fgen ~tag:"fgen2" ~eval_pk:(fun seed ->
        let sk', pk' = Crypto.Merkle_sig.keygen ~seed ~height:sig_height in
        sig_keys := Some (sk', pk');
        Crypto.Merkle_sig.public_key_bytes pk')
  in
  let member_spk = Hashtbl.create 8 in
  List.iter
    (fun (i, out) ->
      match out with
      | Outcome.Output (pkb, _) -> Hashtbl.replace member_spk i pkb
      | Outcome.Abort r -> set_abort i r)
    gen2;
  let party_spk = forward_and_check member_spk in

  (* ---- Steps 6-7: sample kᵢ, encrypt input and key, submit ---- *)
  let ske_keys = Array.init n (fun _ -> Crypto.Ske.keygen rng) in
  let input_bytes i = Bitpack.int_to_bytes inputs.(i) ~width:config.input_width in
  let own_sub = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    if active i then
      match (party_pk.(i), my_view i) with
      | Some pkb, Some v -> (
        match P.public_key_of_bytes pkb with
        | None -> set_abort i (Outcome.Malformed "public key")
        | Some pk ->
          let ct = P.encrypt rng pk (input_bytes i) in
          let kct = P.encrypt rng pk (Crypto.Ske.key_bytes ske_keys.(i)) in
          let sub = encode_submission ct kct in
          if List.mem i v.Committee.committee then Hashtbl.replace own_sub i sub;
          List.iter
            (fun c ->
              if c <> i then begin
                let payload =
                  match adv.input_ct with
                  | Some f when is_corrupt i -> f ~me:i ~dst:c sub
                  | _ -> sub
                in
                Netsim.Net.send net ~src:i ~dst:c payload
              end)
            v.Committee.committee)
      | _ -> ()
  done;
  Netsim.Net.step net;
  let member_subs = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if active c then begin
        let msgs = Netsim.Net.recv net ~dst:c in
        let tbl = Hashtbl.create n in
        List.iter
          (fun (src, s) ->
            match Hashtbl.find_opt tbl src with
            | None -> Hashtbl.replace tbl src (Some s)
            | Some (Some prev) when Bytes.equal prev s -> ()
            | Some _ -> Hashtbl.replace tbl src None)
          msgs;
        (match Hashtbl.find_opt own_sub c with
        | Some s -> Hashtbl.replace tbl c (Some s)
        | None -> ());
        let view =
          List.init n (fun i ->
              (i, match Hashtbl.find_opt tbl i with Some (Some s) -> Some s | _ -> None))
        in
        Hashtbl.replace member_subs c view
      end)
    members;

  (* ---- Step 8: pairwise equality on submission views ---- *)
  let eq_members = List.filter active members in
  let verdicts =
    if List.length eq_members >= 2 then
      Equality.pairwise net rng params ~members:eq_members
        ~value:(fun c -> encode_ct_view (Hashtbl.find member_subs c))
        ~corruption ~adv:adv.eq
    else List.map (fun c -> (c, true)) eq_members
  in
  List.iter
    (fun (c, ok) ->
      if (not ok) && not (is_corrupt c) then
        set_abort c (Outcome.Equality_failed "submission views differ"))
    verdicts;

  (* ---- Step 9: F_Comp,Sign ---- *)
  let comp_members = List.filter active members in
  let designated = match comp_members with c :: _ -> Some c | [] -> None in
  let bundles = ref [||] in
  let comp_results =
    if comp_members = [] then []
    else
      Enc_func.run net rng params ~participants:comp_members
        ~private_input:(fun c ->
          Crypto.Kdf.expand
            ~key:(Bytes.of_string (Printf.sprintf "moskshare/%d" c))
            ~info:"share" (max 8 (params.Params.lambda / 8)))
        ~depth:(Circuit.depth config.circuit)
        ~eval:(fun _ ->
          let canonical =
            let honest_members =
              List.filter (fun c -> Netsim.Corruption.is_honest corruption c) comp_members
            in
            match (honest_members, comp_members) with
            | c :: _, _ -> Hashtbl.find member_subs c
            | [], c :: _ -> Hashtbl.find member_subs c
            | [], [] -> []
          in
          let sk = match !keypair with Some (_, sk) -> sk | None -> assert false in
          let sig_sk = match !sig_keys with Some (sk', _) -> sk' | None -> assert false in
          (* Decrypt inputs and keys. *)
          let decoded =
            List.map
              (fun (i, sub) ->
                match sub with
                | None ->
                  (* A silent honest party: the ideal functionality still
                     computes with its true input and key (same derived-key
                     convention as the submitting path). *)
                  ( i,
                    (if is_corrupt i then 0 else inputs.(i)),
                    Some
                      (Crypto.Ske.of_seed
                         (Crypto.Sha256.digest (Crypto.Ske.key_bytes ske_keys.(i)))) )
                | Some sub -> (
                  match decode_submission sub with
                  | None -> (i, 0, None)
                  | Some (ct, kct) ->
                    let x =
                      match P.decrypt sk ct with
                      | Some pt -> Bitpack.bytes_to_int pt ~width:config.input_width
                      | None -> 0
                    in
                    let k =
                      match P.decrypt sk kct with
                      | Some kb when Bytes.length kb = Crypto.Ske.key_size ->
                        Some (Crypto.Ske.of_seed (Crypto.Sha256.digest kb))
                      | _ -> None
                    in
                    (* Honest parties' keys round-trip exactly; we apply the
                       same seed-derivation on both ends. *)
                    (i, x, k)))
              canonical
          in
          let bit_inputs =
            List.concat_map
              (fun (_, x, _) ->
                List.init config.input_width (fun k -> (x lsr k) land 1 = 1))
              decoded
          in
          let out_bits = Circuit.eval config.circuit (Array.of_list bit_inputs) in
          let bundle_arr =
            Array.of_list
              (List.map
                 (fun (i, _, k) ->
                   let y = slice_output config out_bits i in
                   let ct' =
                     match k with
                     | Some key -> Crypto.Ske.encrypt rng key y
                     | None -> Bytes.empty
                   in
                   let signature = Crypto.Merkle_sig.sign sig_sk ct' in
                   encode_bundle ct' signature)
                 decoded)
          in
          bundles := bundle_arr;
          (* The concatenated signed bundles are delivered to the single
             designated member as its private output. *)
          let concat =
            Util.Codec.encode
              (fun w -> Util.Codec.write_array w (fun w b -> Util.Codec.write_bytes w b))
              bundle_arr
          in
          {
            Enc_func.public_output = Bytes.empty;
            private_outputs =
              (match designated with Some d -> [ (d, concat) ] | None -> []);
          })
        ~corruption ~adv:adv.encf
  in
  let designated_payload = ref None in
  List.iter
    (fun (c, out) ->
      match out with
      | Outcome.Output (_, priv) ->
        if Some c = designated && Bytes.length priv > 0 then designated_payload := Some priv
      | Outcome.Abort r -> set_abort c r)
    comp_results;

  (* ---- Step 10: the designated member forwards each bundle ---- *)
  (match (designated, !designated_payload) with
  | Some d, Some _ when active d ->
    let arr = !bundles in
    for i = 0 to n - 1 do
      if i <> d && i < Array.length arr then begin
        let dropped =
          is_corrupt d && match adv.forwarder_drop with Some f -> f ~dst:i | None -> false
        in
        if not dropped then begin
          let payload =
            match adv.forwarder_tamper with
            | Some f when is_corrupt d -> f ~dst:i arr.(i)
            | _ -> arr.(i)
          in
          Netsim.Net.send net ~src:d ~dst:i payload
        end
      end
    done
  | _ -> ());
  Netsim.Net.step net;

  (* ---- Step 11: verify signature, decrypt own output ---- *)
  Array.init n (fun i ->
      match abort.(i) with
      | Some r -> Outcome.Abort r
      | None -> (
        let received =
          if Some i = designated then
            match !bundles with [||] -> None | arr when i < Array.length arr -> Some arr.(i) | _ -> None
          else
            match Netsim.Net.recv net ~dst:i with
            | [ (_, b) ] -> Some b
            | _ -> None
        in
        match received with
        | None -> Outcome.Abort (Outcome.Missing "no signed output bundle")
        | Some b -> (
          match (decode_bundle b, party_spk.(i)) with
          | None, _ -> Outcome.Abort (Outcome.Malformed "output bundle")
          | _, None -> Outcome.Abort (Outcome.Missing "no signature key")
          | Some (ct', signature), Some spk_bytes ->
            let spk = Crypto.Merkle_sig.public_key_of_bytes spk_bytes in
            if not
                 (match spk with
                 | Some spk -> Crypto.Merkle_sig.verify spk ct' signature
                 | None -> false)
            then
              Outcome.Abort Outcome.Bad_signature
            else begin
              let key = Crypto.Ske.of_seed (Crypto.Sha256.digest (Crypto.Ske.key_bytes ske_keys.(i))) in
              match Crypto.Ske.decrypt key ct' with
              | Some y -> Outcome.Output y
              | None -> Outcome.Abort Outcome.Decryption_failed
            end)))
