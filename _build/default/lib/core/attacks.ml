let flip_byte b =
  if Bytes.length b = 0 then Bytes.make 1 '\255'
  else begin
    let out = Bytes.copy b in
    Bytes.set out 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
    out
  end

(* ---- Broadcast ---- *)

let equivocating_sender ~v1 ~v2 =
  {
    Broadcast.sender_value = Some (fun ~dst -> if dst mod 2 = 0 then v1 else v2);
    echo_value = None;
    drop = None;
  }

let lying_echo ~fake =
  {
    Broadcast.sender_value = None;
    echo_value = Some (fun ~me:_ ~dst:_ _received -> fake);
    drop = None;
  }

let partial_sender ~recipients =
  {
    Broadcast.sender_value = None;
    echo_value = None;
    drop = Some (fun ~src:_ ~dst -> not (Util.Iset.mem dst recipients));
  }

(* ---- All-to-all ---- *)

let split_input ~v1 ~v2 =
  {
    All_to_all.input_value = Some (fun ~me ~dst -> if dst < me then v1 else v2);
    drop = None;
    eq = Equality.honest_adv;
  }

(* ---- Committee election ---- *)

let selective_claim ~cutoff =
  {
    Committee.false_claim = Some (fun ~me:_ -> true);
    claim_subset = Some (fun ~me:_ ~dst -> dst < cutoff);
    eq = Equality.honest_adv;
  }

let claim_all =
  {
    Committee.false_claim = Some (fun ~me:_ -> true);
    claim_subset = None;
    eq = Equality.honest_adv;
  }

let lying_view_check =
  {
    Committee.false_claim = None;
    claim_subset = None;
    eq =
      {
        Equality.tamper_fp = None;
        lie_verdict = Some (fun ~me:_ ~dst:_ _truth -> true);
      };
  }

(* ---- MPC (Algorithm 3) ---- *)

let pk_equivocation =
  {
    Mpc_abort.honest_adv with
    Mpc_abort.pk_forward = Some (fun ~me:_ ~dst pkb -> if dst mod 2 = 0 then flip_byte pkb else pkb);
  }

let ct_equivocation =
  {
    Mpc_abort.honest_adv with
    Mpc_abort.input_ct = Some (fun ~me:_ ~dst ct -> if dst mod 2 = 0 then flip_byte ct else ct);
  }

let bad_partial_decryptions =
  {
    Mpc_abort.honest_adv with
    Mpc_abort.encf =
      {
        Enc_func.honest_adv with
        Enc_func.tamper_partial = Some (fun ~me:_ ~dst:_ -> true);
      };
  }

let output_tamper =
  {
    Mpc_abort.honest_adv with
    Mpc_abort.out_forward = Some (fun ~me:_ ~dst out -> if dst mod 2 = 0 then flip_byte out else out);
  }

(* ---- Gossip ---- *)

let gossip_equivocate =
  {
    Gossip.honest_adv with
    Gossip.equivocate =
      Some (fun ~me ~origin:_ ~dst v -> if dst > me then Some (flip_byte v) else None);
  }

let gossip_forge ~origin ~value =
  { Gossip.honest_adv with Gossip.forge = Some (fun ~me:_ -> [ (origin, value) ]) }

let gossip_suppress_warnings = { Gossip.honest_adv with Gossip.spread_warning = false }

(* ---- Sparse network ---- *)

let flood_victim ~victim =
  {
    Sparse_network.extra_targets = Some (fun ~me:_ -> [ victim ]);
    drop_notify = None;
  }

(* ---- Theorem 4 ---- *)

let exchange_tamper =
  {
    Local_mpc.honest_theorem4_adv with
    Local_mpc.exchange_tamper =
      Some (fun ~me:_ ~dst ~party:_ ct -> if dst mod 2 = 0 then flip_byte ct else ct);
  }

let t4_output_tamper =
  {
    Local_mpc.honest_theorem4_adv with
    Local_mpc.out_forward =
      Some (fun ~me:_ ~dst out -> if dst mod 2 = 0 then flip_byte out else out);
  }
