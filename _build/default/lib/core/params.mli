(** Protocol parameters, shared by every algorithm in the paper.

    - [n] — total number of parties;
    - [h] — a lower bound on the number of honest parties ([1 ≤ h ≤ n]);
    - [lambda] — the security parameter λ controlling the error of the
      equality tests and of the key material sizes;
    - [alpha] — the concentration parameter α used by the committee
      election (Algorithm 2), the sparse network (Algorithm 5) and the
      local committee election (Algorithm 7).  The paper sets α = λ for the
      final bounds; keeping it separate lets the experiments sweep it.

    Derived quantities implement the paper's formulas exactly:
    committee sampling probability [p = min(1, α·ln n / h)] (Algorithm 2
    step 1), routing degree [d = α·(n/h)·ln n] (Algorithm 5 step 1), local
    committee probability [p = min(1, α·ln n / √h)] (Algorithm 7 step 2),
    and cover size [s = n/√h] (Algorithm 8 step 3). *)

type t = {
  n : int;
  h : int;
  lambda : int;
  alpha : int;
}

(** [make ~n ~h ?lambda ?alpha ()] with defaults [lambda = 8], [alpha = 4].
    Raises [Invalid_argument] unless [1 <= h <= n] and [n >= 2]. *)
val make : n:int -> h:int -> ?lambda:int -> ?alpha:int -> unit -> t

(** Natural log of [n], floored at 1 so small networks stay sane. *)
val log_n : t -> float

(** Committee sampling probability of Algorithm 2. *)
val committee_prob : t -> float

(** Committee-size abort threshold [2·p·n] of Algorithm 2 step 3. *)
val committee_bound : t -> int

(** Routing out-degree of Algorithm 5 step 1 (at least 1, at most n-1). *)
val sparse_degree : t -> int

(** Incoming-degree abort threshold [2·d] of Algorithm 5 step 3. *)
val degree_bound : t -> int

(** Local committee sampling probability of Algorithm 7 step 2. *)
val local_committee_prob : t -> float

(** Local committee-size abort threshold [2·p·n] of Algorithm 7 step 4. *)
val local_committee_bound : t -> int

(** Cover size [s = ⌈n/√h⌉] of Algorithm 8 step 3. *)
val cover_size : t -> int

(** Number of fingerprint primes for an equality test on messages of
    [msg_len] bytes at this [lambda] (see {!Crypto.Fingerprint}). *)
val fingerprint_t : t -> msg_len:int -> int

val pp : Format.formatter -> t -> unit
