(** Algorithm 4 (§4.3) — multi-output MPC with abort: [f] maps [n] inputs
    to [n] {e per-party} outputs, and each party must learn only its own.

    Two additions over Algorithm 3:

    + each party samples a symmetric key [kᵢ] ({!Crypto.Ske}) and submits
      it encrypted alongside its input; the functionality returns party
      [i]'s output encrypted under [kᵢ], so committee members and the
      forwarder learn nothing about others' outputs;
    + the functionality {b signs} each encrypted output
      ({!Crypto.Merkle_sig}, standing in for the generic EUF-CMA scheme)
      under a key pair generated from joint randomness by [F_Gen,2].
      Because forging is infeasible, a {e single} — possibly corrupted —
      designated committee member suffices to forward the outputs, which
      is what keeps the communication at [Õ(n²/h)] instead of the naive
      [Õ(n³/h²)] (every member forwarding every output).

    Per-party result: its own [ℓ']-bit output (packed), or abort. *)

type config = {
  params : Params.t;
  pke : (module Crypto.Pke.S);
  circuit : Circuit.t;   (** must have [n·output_width] output bits *)
  input_width : int;
  output_width : int;    (** bits of output per party *)
}

type adv = {
  committee : Committee.adv;
  encf : Enc_func.adv;
  pk_forward : (me:int -> dst:int -> bytes -> bytes) option;
  input_ct : (me:int -> dst:int -> bytes -> bytes) option;
  eq : Equality.adv;
  forwarder_tamper : (dst:int -> bytes -> bytes) option;
      (** the designated forwarder alters the signed bundle for [dst] —
          must be caught by signature verification *)
  forwarder_drop : (dst:int -> bool) option;
}

val honest_adv : adv

val run :
  Netsim.Net.t ->
  Util.Prng.t ->
  config ->
  corruption:Netsim.Corruption.t ->
  inputs:int array ->
  adv:adv ->
  bytes Outcome.t array

(** [expected_outputs config ~inputs] — party [i]'s honest output bytes. *)
val expected_outputs : config -> inputs:int array -> bytes array
