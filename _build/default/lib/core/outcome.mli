(** Per-party protocol outcomes and the paper's correctness predicates.

    Every protocol returns one {!t} per party.  The paper's guarantee for
    MPC with {e selective} abort is precisely {!agreement_or_abort}: in
    every execution, either all honest parties that produce output agree,
    or at least one honest party aborted (and individual honest parties may
    each abort independently — hence "selective"). *)

type abort_reason =
  | Equivocation of string     (** two different messages where one was expected *)
  | Equality_failed of string  (** a fingerprint equality test rejected *)
  | Flooded of string          (** more messages/bits than the protocol prescribes *)
  | Missing of string          (** an expected message never arrived *)
  | Malformed of string        (** an undecodable or ill-typed message *)
  | Bad_signature              (** signature verification failed (Algorithm 4) *)
  | Bad_proof of string        (** a (simulated) NIZK proof rejected *)
  | Decryption_failed          (** authenticated decryption failed *)
  | Upstream of string         (** a sub-protocol aborted *)

type 'a t = Output of 'a | Abort of abort_reason

val is_output : 'a t -> bool
val is_abort : 'a t -> bool
val get : 'a t -> 'a option
val map : ('a -> 'b) -> 'a t -> 'b t

val reason_to_string : abort_reason -> string
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

(** {1 Execution-level predicates}

    These take the whole per-party outcome array plus the corruption
    pattern and check the paper's properties over the {e honest} parties
    only (corrupted parties' outcomes are meaningless). *)

(** [honest_outputs outs corruption] — the outputs produced by honest
    parties (aborting parties excluded). *)
val honest_outputs : 'a t array -> Netsim.Corruption.t -> 'a list

(** [some_honest_aborted outs corruption]. *)
val some_honest_aborted : 'a t array -> Netsim.Corruption.t -> bool

(** [agreement_or_abort ~equal outs corruption] — the security-with-abort
    guarantee: all honest outputs pairwise [equal], or at least one honest
    party aborted. The vacuous cases (no honest outputs) count as true. *)
val agreement_or_abort : equal:('a -> 'a -> bool) -> 'a t array -> Netsim.Corruption.t -> bool

(** [all_honest_output_value ~equal ~expected outs corruption] — every
    honest party produced a value [equal] to [expected] (the all-honest
    correctness property, Remark 7). *)
val all_honest_output_value :
  equal:('a -> 'a -> bool) -> expected:'a -> 'a t array -> Netsim.Corruption.t -> bool
