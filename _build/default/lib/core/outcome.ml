type abort_reason =
  | Equivocation of string
  | Equality_failed of string
  | Flooded of string
  | Missing of string
  | Malformed of string
  | Bad_signature
  | Bad_proof of string
  | Decryption_failed
  | Upstream of string

type 'a t = Output of 'a | Abort of abort_reason

let is_output = function Output _ -> true | Abort _ -> false
let is_abort = function Abort _ -> true | Output _ -> false
let get = function Output v -> Some v | Abort _ -> None
let map f = function Output v -> Output (f v) | Abort r -> Abort r

let reason_to_string = function
  | Equivocation s -> "equivocation: " ^ s
  | Equality_failed s -> "equality test failed: " ^ s
  | Flooded s -> "flooded: " ^ s
  | Missing s -> "missing message: " ^ s
  | Malformed s -> "malformed message: " ^ s
  | Bad_signature -> "bad signature"
  | Bad_proof s -> "bad proof: " ^ s
  | Decryption_failed -> "decryption failed"
  | Upstream s -> "sub-protocol aborted: " ^ s

let pp pp_val fmt = function
  | Output v -> Format.fprintf fmt "Output %a" pp_val v
  | Abort r -> Format.fprintf fmt "Abort (%s)" (reason_to_string r)

let honest_outputs outs corruption =
  let acc = ref [] in
  Array.iteri
    (fun i o ->
      if Netsim.Corruption.is_honest corruption i then
        match o with Output v -> acc := v :: !acc | Abort _ -> ())
    outs;
  List.rev !acc

let some_honest_aborted outs corruption =
  let found = ref false in
  Array.iteri
    (fun i o ->
      if Netsim.Corruption.is_honest corruption i && is_abort o then found := true)
    outs;
  !found

let agreement_or_abort ~equal outs corruption =
  if some_honest_aborted outs corruption then true
  else
    match honest_outputs outs corruption with
    | [] -> true
    | first :: rest -> List.for_all (equal first) rest

let all_honest_output_value ~equal ~expected outs corruption =
  let ok = ref true in
  Array.iteri
    (fun i o ->
      if Netsim.Corruption.is_honest corruption i then
        match o with
        | Output v -> if not (equal expected v) then ok := false
        | Abort _ -> ok := false)
    outs;
  !ok
