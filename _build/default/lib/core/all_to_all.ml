type variant = Naive | Fingerprinted

type adv = {
  input_value : (me:int -> dst:int -> bytes) option;
  drop : (src:int -> dst:int -> bool) option;
  eq : Equality.adv;
}

let honest_adv = { input_value = None; drop = None; eq = Equality.honest_adv }

(* A party's "view" after the distribution round: its own input plus what it
   heard from each other participant ([None] = silence). *)
let encode_view view =
  Util.Codec.encode
    (fun w ->
      Util.Codec.write_list w (fun w (id, v) ->
          Util.Codec.write_varint w id;
          Util.Codec.write_option w Util.Codec.write_bytes v))
    view

let run net rng params ~variant ~participants ~input ~corruption ~adv =
  (* Input thunks may consume randomness; evaluate once per participant so
     the value sent, echoed and placed in views is identical. *)
  let input =
    let cache = Hashtbl.create 16 in
    fun i ->
      match Hashtbl.find_opt cache i with
      | Some v -> v
      | None ->
        let v = input i in
        Hashtbl.replace cache i v;
        v
  in
  let is_corrupt i = Netsim.Corruption.is_corrupted corruption i in
  let should_drop ~src ~dst =
    is_corrupt src && match adv.drop with Some f -> f ~src ~dst | None -> false
  in
  let members = List.sort_uniq compare participants in
  match variant with
  | Naive ->
    (* |S| parallel single-source broadcasts restricted to the subset.  We
       run them sequentially on the wire (same total bits; the paper's
       parallel composition only affects round count, which we report as
       the sum — the naive baseline is a cost reference, not a round-
       optimized implementation). *)
    let results =
      List.map
        (fun sender ->
          let badv =
            {
              Broadcast.sender_value =
                (match adv.input_value with
                | Some f -> Some (fun ~dst -> f ~me:sender ~dst)
                | None -> None);
              echo_value = None;
              drop = adv.drop;
            }
          in
          (* Restrict to the participant subset by building a small net? The
             broadcast module spans the whole net; for subset runs we only
             charge subset traffic by having non-participants excluded.  We
             reuse the full-network broadcast when the subset is everyone;
             otherwise we inline a subset version below. *)
          (sender, badv))
        members
    in
    let n_members = List.length members in
    let received = Hashtbl.create 16 in
    (* Distribution + full echo per sender, restricted to [members]. *)
    List.iter
      (fun (sender, badv) ->
        let value = input sender in
        List.iter
          (fun dst ->
            if dst <> sender && not (should_drop ~src:sender ~dst) then begin
              let v =
                match badv.Broadcast.sender_value with
                | Some f when is_corrupt sender -> f ~dst
                | _ -> value
              in
              Netsim.Net.send net ~src:sender ~dst v
            end)
          members;
        Netsim.Net.step net;
        List.iter
          (fun i ->
            let v =
              if i = sender then Some value
              else
                match Netsim.Net.recv_from net ~dst:i ~src:sender with
                | [ v ] -> Some v
                | _ -> None
            in
            Hashtbl.replace received (sender, i) v)
          members;
        (* Echo round: full values. *)
        List.iter
          (fun i ->
            let mine = Hashtbl.find received (sender, i) in
            let payload =
              Util.Codec.encode (fun w -> Util.Codec.write_option w Util.Codec.write_bytes) mine
            in
            List.iter
              (fun dst ->
                if dst <> i && not (should_drop ~src:i ~dst) then
                  Netsim.Net.send net ~src:i ~dst payload)
              members)
          members;
        Netsim.Net.step net;
        List.iter
          (fun i ->
            let mine = Hashtbl.find received (sender, i) in
            let msgs = Netsim.Net.recv net ~dst:i in
            let consistent = ref (List.length msgs >= n_members - 1) in
            List.iter
              (fun (_, payload) ->
                match
                  Util.Codec.decode (fun r -> Util.Codec.read_option r Util.Codec.read_bytes) payload
                with
                | theirs ->
                  let same =
                    match (mine, theirs) with
                    | Some a, Some b -> Bytes.equal a b
                    | None, None -> true
                    | _ -> false
                  in
                  if not same then consistent := false
                | exception Util.Codec.Decode_error _ -> consistent := false)
              msgs;
            if not !consistent then Hashtbl.replace received (sender, i) None;
            Hashtbl.replace received ((-1 - sender), i) (Some (Bytes.make 1 (if !consistent then '\001' else '\000'))))
          members)
      results;
    List.map
      (fun i ->
        let ok =
          List.for_all
            (fun sender ->
              match Hashtbl.find_opt received ((-1 - sender), i) with
              | Some (Some b) -> Bytes.get b 0 = '\001'
              | _ -> false)
            members
        in
        let view =
          List.filter_map
            (fun sender ->
              match Hashtbl.find_opt received (sender, i) with
              | Some (Some v) -> Some (sender, v)
              | _ -> None)
            members
        in
        if ok && List.length view = n_members then (i, Outcome.Output view)
        else (i, Outcome.Abort (Outcome.Equivocation "all-to-all naive mismatch")))
      members
  | Fingerprinted ->
    (* Round 1: everyone sends their input to every other participant. *)
    List.iter
      (fun src ->
        let value = input src in
        List.iter
          (fun dst ->
            if dst <> src && not (should_drop ~src ~dst) then begin
              let v =
                match adv.input_value with
                | Some f when is_corrupt src -> f ~me:src ~dst
                | _ -> value
              in
              Netsim.Net.send net ~src ~dst v
            end)
          members)
      members;
    Netsim.Net.step net;
    let views = Hashtbl.create 16 in
    List.iter
      (fun i ->
        let view =
          List.map
            (fun src ->
              if src = i then (src, Some (input src))
              else
                match Netsim.Net.recv_from net ~dst:i ~src with
                | [ v ] -> (src, Some v)
                | _ -> (src, None))
            members
        in
        Hashtbl.replace views i view)
      members;
    (* Round 2: pairwise equality over the concatenated views. *)
    let verdicts =
      Equality.pairwise net rng params ~members
        ~value:(fun i -> encode_view (Hashtbl.find views i))
        ~corruption ~adv:adv.eq
    in
    List.map
      (fun (i, passed) ->
        let view = Hashtbl.find views i in
        let complete = List.for_all (fun (_, v) -> v <> None) view in
        if passed && complete then
          (i, Outcome.Output (List.map (fun (id, v) -> (id, Option.get v)) view))
        else if not complete then (i, Outcome.Abort (Outcome.Missing "silent participant"))
        else (i, Outcome.Abort (Outcome.Equality_failed "view fingerprints differ")))
      verdicts
