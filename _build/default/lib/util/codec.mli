(** Binary serialization for protocol messages.

    Every message that crosses the simulated network is encoded through this
    module, so communication complexity is measured on real byte strings
    rather than on abstract message counts.  The format is a simple
    length-prefixed binary encoding: varints for integers, raw bytes for
    strings, and recursively encoded containers. *)

(** {1 Writer} *)

type writer

val writer : unit -> writer

(** [contents w] returns the bytes written so far. *)
val contents : writer -> bytes

val write_varint : writer -> int -> unit
val write_int64 : writer -> int64 -> unit
val write_bool : writer -> bool -> unit
val write_byte : writer -> int -> unit
val write_bytes : writer -> bytes -> unit

(** [write_raw w b] appends [b] without a length prefix. *)
val write_raw : writer -> bytes -> unit

val write_string : writer -> string -> unit
val write_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val write_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val write_pair : writer -> (writer -> 'a -> unit) -> (writer -> 'b -> unit) -> 'a * 'b -> unit
val write_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit

(** {1 Reader} *)

type reader

exception Decode_error of string

val reader : bytes -> reader

(** [at_end r] is true when every byte has been consumed. *)
val at_end : reader -> bool

val read_varint : reader -> int
val read_int64 : reader -> int64
val read_bool : reader -> bool
val read_byte : reader -> int
val read_bytes : reader -> bytes

(** [read_raw r len] reads exactly [len] bytes with no length prefix. *)
val read_raw : reader -> int -> bytes

val read_string : reader -> string
val read_list : reader -> (reader -> 'a) -> 'a list
val read_array : reader -> (reader -> 'a) -> 'a array
val read_pair : reader -> (reader -> 'a) -> (reader -> 'b) -> 'a * 'b
val read_option : reader -> (reader -> 'a) -> 'a option

(** {1 Whole-message helpers} *)

(** [encode f v] runs [f] on a fresh writer and returns the bytes. *)
val encode : (writer -> 'a -> unit) -> 'a -> bytes

(** [decode f b] decodes [b] entirely; raises {!Decode_error} on trailing or
    missing bytes. *)
val decode : (reader -> 'a) -> bytes -> 'a

(** [varint_size v] is the encoded size of [v] in bytes (for cost models). *)
val varint_size : int -> int

(** Encoders for common shapes used across protocols. *)
val encode_int_list : int list -> bytes
val decode_int_list : bytes -> int list
