(** Integer-keyed maps; see {!Iset} for the rationale. *)

include Map.Make (Int)

let keys m = fold (fun k _ acc -> k :: acc) m [] |> List.rev
let values m = fold (fun _ v acc -> v :: acc) m [] |> List.rev

(** [add_multi k v m] conses [v] onto the list bound to [k]. *)
let add_multi k v m =
  update k (function None -> Some [ v ] | Some vs -> Some (v :: vs)) m

(** [find_list k m] is the list bound to [k], or [[]]. *)
let find_list k m = match find_opt k m with None -> [] | Some vs -> vs
