(** Descriptive statistics and regression, used by the experiment harness to
    summarize measurements and fit communication-complexity exponents. *)

(** [mean xs] is the arithmetic mean. Requires a non-empty list. *)
val mean : float list -> float

(** [variance xs] is the (population) variance. *)
val variance : float list -> float

(** [stddev xs] is the (population) standard deviation. *)
val stddev : float list -> float

(** [median xs] is the median (average of the middle two for even lengths). *)
val median : float list -> float

(** [percentile xs p] is the [p]-th percentile by linear interpolation,
    [p] in [\[0, 100\]]. *)
val percentile : float list -> float -> float

(** [minimum xs] / [maximum xs]. *)
val minimum : float list -> float
val maximum : float list -> float

(** Least-squares line fit: [linear_fit pts] returns [(slope, intercept, r2)]
    for points [(x, y)]. Requires at least two distinct x values. *)
val linear_fit : (float * float) list -> float * float * float

(** [loglog_exponent pts] fits [y = c * x^k] by linear regression in log-log
    space and returns [(k, c, r2)].  Requires strictly positive coordinates.
    This is how we estimate the exponent of measured communication cost as a
    function of [n] or [h]. *)
val loglog_exponent : (float * float) list -> float * float * float

(** [histogram xs ~bins] buckets values into [bins] equal-width bins over
    [\[min, max\]]; returns [(lower_edge, count)] per bin. *)
val histogram : float list -> bins:int -> (float * int) list

(** [binomial_ci ~successes ~trials] returns a 95% Wilson score interval for
    a proportion, as [(low, high)]. *)
val binomial_ci : successes:int -> trials:int -> float * float
