include Set.Make (Int)

let of_list' = of_list
let to_sorted_list s = elements s

let range lo hi =
  let rec go i acc = if i > hi then acc else go (i + 1) (add i acc) in
  go lo empty

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       Format.pp_print_int)
    (elements s)
