let check_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ -> ()

let mean xs =
  check_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let sorted xs = List.sort compare xs

let median xs =
  check_nonempty "Stats.median" xs;
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  List.fold_left min infinity xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  List.fold_left max neg_infinity xs

let linear_fit pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  (* Coefficient of determination. *)
  let ybar = sy /. fn in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. ybar) *. (y -. ybar))) 0.0 pts in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        a +. (e *. e))
      0.0 pts
  in
  let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  (slope, intercept, r2)

let loglog_exponent pts =
  List.iter
    (fun (x, y) ->
      if x <= 0.0 || y <= 0.0 then
        invalid_arg "Stats.loglog_exponent: coordinates must be positive")
    pts;
  let logs = List.map (fun (x, y) -> (log x, log y)) pts in
  let slope, intercept, r2 = linear_fit logs in
  (slope, exp intercept, r2)

let histogram xs ~bins =
  check_nonempty "Stats.histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = minimum xs and hi = maximum xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  List.iter
    (fun x ->
      let idx = int_of_float ((x -. lo) /. width) in
      let idx = if idx >= bins then bins - 1 else if idx < 0 then 0 else idx in
      counts.(idx) <- counts.(idx) + 1)
    xs;
  List.init bins (fun i -> (lo +. (float_of_int i *. width), counts.(i)))

let binomial_ci ~successes ~trials =
  if trials <= 0 then invalid_arg "Stats.binomial_ci: trials must be positive";
  let z = 1.96 in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z *. sqrt (((p *. (1.0 -. p)) +. (z2 /. (4.0 *. n))) /. n) /. denom
  in
  (max 0.0 (center -. half), min 1.0 (center +. half))
