lib/util/codec.mli:
