lib/util/prng.mli:
