lib/util/stats.mli:
