lib/util/codec.ml: Array Buffer Bytes Char Int64 List Printf String
