lib/util/prng.ml: Array Bytes Char Hashtbl Int64 List
