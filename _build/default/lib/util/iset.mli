(** Integer sets specialized for party-id bookkeeping.

    A thin layer over [Set.Make (Int)] with the handful of operations the
    protocol code uses constantly (construction from lists, sampling-friendly
    conversions, pretty-printing). *)

include Set.S with type elt = int

(** [of_list'] is {!of_list} (re-exported for symmetry with {!to_sorted_list}). *)
val of_list' : int list -> t

(** [to_sorted_list s] lists elements in increasing order. *)
val to_sorted_list : t -> int list

(** [range lo hi] is the set [{lo, lo+1, ..., hi}] (empty when [lo > hi]). *)
val range : int -> int -> t

(** [pp] prints as [{1, 2, 5}]. *)
val pp : Format.formatter -> t -> unit
