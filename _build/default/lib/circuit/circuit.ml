type gate =
  | Input of int
  | Const of bool
  | Not of gate
  | And of gate * gate
  | Or of gate * gate
  | Xor of gate * gate

type t = { num_inputs : int; outputs : gate list }

(* Note: every traversal over gates must be memoized on physical identity —
   circuits are DAGs with heavy sharing, and a plain recursion unfolds them
   into exponentially large trees. *)

(* Memoized traversal over physical node identity: shared sub-DAGs are
   visited once, so eval/size/depth are linear in circuit size. *)
module Memo = struct
  type 'a t = (Obj.t * 'a) list ref array

  let buckets = 1024
  let create () : 'a t = Array.init buckets (fun _ -> ref [])

  let slot tbl (g : gate) =
    let r = Obj.repr g in
    (* Hash the physical address via the generic hash of the boxed value's
       tag+fields identity; collisions only cost list scans with ==. *)
    tbl.((Hashtbl.hash g) land (buckets - 1)), r

  let find tbl g =
    let bucket, r = slot tbl g in
    let rec scan = function
      | [] -> None
      | (r', v) :: _ when r' == r -> Some v
      | _ :: rest -> scan rest
    in
    scan !bucket

  let add tbl g v =
    let bucket, r = slot tbl g in
    bucket := (r, v) :: !bucket
end

let max_input outputs =
  let memo = Memo.create () in
  let best = ref (-1) in
  let rec go g =
    match Memo.find memo g with
    | Some () -> ()
    | None ->
      Memo.add memo g ();
      (match g with
      | Input i -> if i > !best then best := i
      | Const _ -> ()
      | Not a -> go a
      | And (a, b) | Or (a, b) | Xor (a, b) ->
        go a;
        go b)
  in
  List.iter go outputs;
  !best

let make ~num_inputs ~outputs =
  let needed = max_input outputs in
  if needed >= num_inputs then
    invalid_arg
      (Printf.sprintf "Circuit.make: input wire %d out of %d declared" needed num_inputs);
  { num_inputs; outputs }

let eval t inputs =
  if Array.length inputs <> t.num_inputs then
    invalid_arg
      (Printf.sprintf "Circuit.eval: expected %d inputs, got %d" t.num_inputs
         (Array.length inputs));
  let memo = Memo.create () in
  let rec go g =
    match Memo.find memo g with
    | Some v -> v
    | None ->
      let v =
        match g with
        | Input i -> inputs.(i)
        | Const b -> b
        | Not a -> not (go a)
        | And (a, b) -> go a && go b
        | Or (a, b) -> go a || go b
        | Xor (a, b) -> go a <> go b
      in
      Memo.add memo g v;
      v
  in
  Array.of_list (List.map go t.outputs)

let depth t =
  let memo = Memo.create () in
  let rec go g =
    match Memo.find memo g with
    | Some v -> v
    | None ->
      let v =
        match g with
        | Input _ | Const _ -> 0
        | Not a -> go a
        | And (a, b) | Or (a, b) | Xor (a, b) -> 1 + max (go a) (go b)
      in
      Memo.add memo g v;
      v
  in
  List.fold_left (fun acc g -> max acc (go g)) 0 t.outputs

let size t =
  let memo = Memo.create () in
  let count = ref 0 in
  let rec go g =
    match Memo.find memo g with
    | Some () -> ()
    | None ->
      Memo.add memo g ();
      incr count;
      (match g with
      | Input _ | Const _ -> ()
      | Not a -> go a
      | And (a, b) | Or (a, b) | Xor (a, b) ->
        go a;
        go b)
  in
  List.iter go t.outputs;
  !count

let num_outputs t = List.length t.outputs

type word = gate list

module Builder = struct
  let input_word ~offset ~width = List.init width (fun i -> Input (offset + i))

  let const_word ~width v =
    List.init width (fun i -> Const ((v lsr i) land 1 = 1))

  let check_same_width a b name =
    if List.length a <> List.length b then
      invalid_arg (Printf.sprintf "Circuit.Builder.%s: width mismatch" name)

  let xor_word a b =
    check_same_width a b "xor_word";
    List.map2 (fun x y -> Xor (x, y)) a b

  let and_bit bit w = List.map (fun x -> And (bit, x)) w

  let full_adder a b cin =
    let s = Xor (Xor (a, b), cin) in
    let cout = Or (And (a, b), And (cin, Xor (a, b))) in
    (s, cout)

  let add_word a b =
    check_same_width a b "add_word";
    let rec go a b cin acc =
      match (a, b) with
      | [], [] -> List.rev (cin :: acc)
      | x :: xs, y :: ys ->
        let s, cout = full_adder x y cin in
        go xs ys cout (s :: acc)
      | _ -> assert false
    in
    go a b (Const false) []

  let add_word_mod a b =
    let s = add_word a b in
    List.filteri (fun i _ -> i < List.length a) s

  (* a < b: scan from least significant; lt = (¬aᵢ ∧ bᵢ) ∨ ((aᵢ = bᵢ) ∧ lt). *)
  let lt_word a b =
    check_same_width a b "lt_word";
    List.fold_left2
      (fun lt x y -> Or (And (Not x, y), And (Not (Xor (x, y)), lt)))
      (Const false) a b

  let le_word a b = Not (lt_word b a)

  let eq_word a b =
    check_same_width a b "eq_word";
    match List.map2 (fun x y -> Not (Xor (x, y))) a b with
    | [] -> Const true
    | bits ->
      let rec tree = function
        | [ g ] -> g
        | gs ->
          let rec halve = function
            | x :: y :: rest -> And (x, y) :: halve rest
            | [ x ] -> [ x ]
            | [] -> []
          in
          tree (halve gs)
      in
      tree bits

  let mux bit a b =
    check_same_width a b "mux";
    List.map2 (fun x y -> Or (And (bit, x), And (Not bit, y))) a b

  let rec tree_fold op = function
    | [] -> invalid_arg "Circuit.Builder: empty tree"
    | [ g ] -> g
    | gs ->
      let rec halve = function
        | x :: y :: rest -> op x y :: halve rest
        | [ x ] -> [ x ]
        | [] -> []
      in
      tree_fold op (halve gs)

  let and_tree gs = tree_fold (fun a b -> And (a, b)) gs
  let or_tree gs = tree_fold (fun a b -> Or (a, b)) gs
  let xor_tree gs = tree_fold (fun a b -> Xor (a, b)) gs

  (* Balanced-tree sum with width growth: summing 2^k words of width w gives
     width w + k. *)
  let sum_words ws =
    match ws with
    | [] -> invalid_arg "Circuit.Builder.sum_words: empty"
    | _ ->
      let pad_to width w =
        w @ List.init (max 0 (width - List.length w)) (fun _ -> Const false)
      in
      let rec level = function
        | [] -> []
        | [ w ] -> [ w ]
        | a :: b :: rest ->
          let width = max (List.length a) (List.length b) in
          add_word (pad_to width a) (pad_to width b) :: level rest
      in
      let rec go = function
        | [ w ] -> w
        | ws -> go (level ws)
      in
      go ws
end

let majority ~n =
  if n <= 0 then invalid_arg "Circuit.majority";
  let bits = List.init n (fun i -> [ Input i ]) in
  let total = Builder.sum_words bits in
  let width = List.length total in
  (* more than n/2 ones: total >= floor(n/2) + 1 *)
  let threshold = Builder.const_word ~width ((n / 2) + 1) in
  make ~num_inputs:n ~outputs:[ Builder.le_word threshold total ]

let parity ~n =
  if n <= 0 then invalid_arg "Circuit.parity";
  make ~num_inputs:n ~outputs:[ Builder.xor_tree (List.init n (fun i -> Input i)) ]

let sum ~n ~width =
  if n <= 0 || width <= 0 then invalid_arg "Circuit.sum";
  let words = List.init n (fun i -> Builder.input_word ~offset:(i * width) ~width) in
  make ~num_inputs:(n * width) ~outputs:(Builder.sum_words words)

let maximum ~n ~width =
  if n <= 0 || width <= 0 then invalid_arg "Circuit.maximum";
  let words = List.init n (fun i -> Builder.input_word ~offset:(i * width) ~width) in
  let best =
    List.fold_left
      (fun best w -> Builder.mux (Builder.lt_word best w) w best)
      (List.hd words) (List.tl words)
  in
  make ~num_inputs:(n * width) ~outputs:best

let index_bits n = max 1 (int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0)))

let second_price_auction ~n ~width =
  if n < 2 || width <= 0 then invalid_arg "Circuit.second_price_auction";
  let words = List.init n (fun i -> Builder.input_word ~offset:(i * width) ~width) in
  let iw = index_bits n in
  (* Tournament keeping (best, best_index, second). *)
  let step (best, bidx, second) (w, widx) =
    let w_wins = Builder.lt_word best w in
    let new_best = Builder.mux w_wins w best in
    let new_bidx = Builder.mux w_wins widx bidx in
    (* The loser of this comparison competes for second place. *)
    let loser = Builder.mux w_wins best w in
    let loser_beats_second = Builder.lt_word second loser in
    let new_second = Builder.mux loser_beats_second loser second in
    (new_best, new_bidx, new_second)
  in
  let indexed = List.mapi (fun i w -> (w, Builder.const_word ~width:iw i)) words in
  match indexed with
  | [] -> assert false
  | (w0, i0) :: rest ->
    let zero = Builder.const_word ~width 0 in
    let _, bidx, second = List.fold_left step (w0, i0, zero) rest in
    make ~num_inputs:(n * width) ~outputs:(bidx @ second)

let equality_check ~n ~width =
  if n <= 0 || width <= 0 then invalid_arg "Circuit.equality_check";
  let words = List.init n (fun i -> Builder.input_word ~offset:(i * width) ~width) in
  match words with
  | [] -> assert false
  | first :: rest ->
    let eqs = List.map (fun w -> Builder.eq_word first w) rest in
    let out = match eqs with [] -> Const true | _ -> Builder.and_tree eqs in
    make ~num_inputs:(n * width) ~outputs:[ out ]

let pack_inputs ~width values =
  let n = List.length values in
  let arr = Array.make (n * width) false in
  List.iteri
    (fun i v ->
      for b = 0 to width - 1 do
        arr.((i * width) + b) <- (v lsr b) land 1 = 1
      done)
    values;
  arr

let bits_to_int bits =
  List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0 (List.rev bits)

let unpack_output ~width bits =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v lsl 1) lor (if bits.(i) then 1 else 0)
  done;
  !v
