(** Boolean circuits — the functionality [f] the parties compute.

    The paper's cost bounds are parameterized by the {b depth} [D] of [f]
    (the MKFHE parameters of Theorem 9 grow with [poly(λ, D)]).  This module
    gives protocols a concrete circuit representation with exact size and
    depth metrics, an evaluator, and builders for the workloads used by the
    examples and benchmarks (majority voting, sums, maxima, second-price
    auctions).

    Circuits are DAGs of AND/XOR/NOT/OR gates with hash-consing-free simple
    construction: [gate] values are nodes; sharing is by physical reuse of
    nodes.  Inputs are indexed globally; use {!Builder} helpers to slice a
    flat input vector into per-party words. *)

type gate =
  | Input of int
  | Const of bool
  | Not of gate
  | And of gate * gate
  | Or of gate * gate
  | Xor of gate * gate

(** A circuit: output gates over [num_inputs] input wires. *)
type t = { num_inputs : int; outputs : gate list }

val make : num_inputs:int -> outputs:gate list -> t

(** [eval t inputs] — [Invalid_argument] if the input vector has the wrong
    length.  Linear in circuit size (memoized over shared nodes). *)
val eval : t -> bool array -> bool array

(** [depth t] — the longest input-to-output path, counting binary gates
    (NOTs are free, matching the FHE convention where XOR/NOT are cheap but
    we conservatively count XOR too). *)
val depth : t -> int

(** [size t] — the number of distinct gates. *)
val size : t -> int

val num_outputs : t -> int

(** {1 Multi-bit words} *)

(** A little-endian word of wires. *)
type word = gate list

module Builder : sig
  (** [input_word ~offset ~width] — input wires [offset..offset+width-1] as
      a word. *)
  val input_word : offset:int -> width:int -> word

  val const_word : width:int -> int -> word

  (** Bitwise ops (equal widths required). *)
  val xor_word : word -> word -> word

  val and_bit : gate -> word -> word

  (** [add_word a b] — ripple-carry addition, result has [width+1] bits. *)
  val add_word : word -> word -> word

  (** [add_word_mod a b] — addition dropping the final carry. *)
  val add_word_mod : word -> word -> word

  (** [lt_word a b] / [le_word a b] / [eq_word a b] — unsigned comparisons,
      single output bit. *)
  val lt_word : word -> word -> gate
  val le_word : word -> word -> gate
  val eq_word : word -> word -> gate

  (** [mux bit a b] — [a] when [bit] else [b]. *)
  val mux : gate -> word -> word -> word

  (** [sum_words ws] — balanced-tree sum of words (log depth). *)
  val sum_words : word list -> word

  (** [and_tree gs] / [or_tree gs] / [xor_tree gs] — balanced trees. *)
  val and_tree : gate list -> gate
  val or_tree : gate list -> gate
  val xor_tree : gate list -> gate
end

(** {1 Ready-made functionalities} *)

(** [majority ~n] — [n] single-bit inputs, one output: 1 iff more than
    [n/2] ones. *)
val majority : n:int -> t

(** [parity ~n] — XOR of [n] bits (depth [⌈log n⌉], the minimal
    interesting circuit). *)
val parity : n:int -> t

(** [sum ~n ~width] — sum of [n] unsigned [width]-bit inputs, output width
    [width + ⌈log n⌉]. *)
val sum : n:int -> width:int -> t

(** [maximum ~n ~width] — maximum of [n] unsigned [width]-bit inputs. *)
val maximum : n:int -> width:int -> t

(** [second_price_auction ~n ~width] — [n] bids; outputs the winner index
    (⌈log n⌉ bits) followed by the second-highest bid ([width] bits).
    The workload of the auction example. *)
val second_price_auction : n:int -> width:int -> t

(** [equality_check ~n ~width] — 1 iff all [n] inputs are equal. *)
val equality_check : n:int -> width:int -> t

(** {1 Word-level evaluation helpers} *)

(** [pack_inputs ~width values] — flatten per-party ints into a bit vector
    (little-endian per word). *)
val pack_inputs : width:int -> int list -> bool array

(** [unpack_output ~width bits] — read the first [width] bits as an int. *)
val unpack_output : width:int -> bool array -> int

(** [bits_to_int bits] — little-endian. *)
val bits_to_int : bool list -> int
