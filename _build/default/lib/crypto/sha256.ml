type digest = bytes

let digest_size = 32

(* Round constants: first 32 bits of the fractional parts of the cube roots
   of the first 64 primes. *)
let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array; (* eight 32-bit words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* total message bytes *)
  mutable finalized : bool;
}

let init () =
  {
    h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0L;
    finalized = false;
  }

let mask = 0xFFFFFFFF
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress ctx block off =
  let w = Array.make 64 0 in
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get block (off + (4 * i))) lsl 24)
      lor (Char.code (Bytes.get block (off + (4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get block (off + (4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get block (off + (4 * i) + 3))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let temp1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let update ctx data =
  if ctx.finalized then invalid_arg "Sha256.update: already finalized";
  let len = Bytes.length data in
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref 0 in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) len in
    Bytes.blit data 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= 64 do
    compress ctx data !pos;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit data !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let update_string ctx s = update ctx (Bytes.unsafe_of_string s)

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.finalize: already finalized";
  ctx.finalized <- true;
  let bitlen = Int64.mul ctx.total 8L in
  (* Padding: 0x80 then zeros to 56 mod 64, then 64-bit big-endian length. *)
  let pad_len =
    let r = (ctx.buf_len + 1 + 8) mod 64 in
    if r = 0 then 1 + 8 else 1 + 8 + (64 - r)
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len - 1 - i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical bitlen (8 * i)) land 0xFF))
  done;
  (* Feed the padding through the normal path (total is already counted, but
     finalize only reads the precomputed bitlen). *)
  ctx.finalized <- false;
  update ctx pad;
  ctx.finalized <- true;
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  Array.iteri
    (fun i word ->
      Bytes.set out (4 * i) (Char.chr ((word lsr 24) land 0xFF));
      Bytes.set out ((4 * i) + 1) (Char.chr ((word lsr 16) land 0xFF));
      Bytes.set out ((4 * i) + 2) (Char.chr ((word lsr 8) land 0xFF));
      Bytes.set out ((4 * i) + 3) (Char.chr (word land 0xFF)))
    ctx.h;
  out

let digest b =
  let ctx = init () in
  update ctx b;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)

let hex_chars = "0123456789abcdef"

let to_hex d =
  let n = Bytes.length d in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let v = Char.code (Bytes.get d i) in
    Bytes.set out (2 * i) hex_chars.[v lsr 4];
    Bytes.set out ((2 * i) + 1) hex_chars.[v land 0xF]
  done;
  Bytes.to_string out

let of_hex s =
  let len = String.length s in
  if len mod 2 <> 0 then invalid_arg "Sha256.of_hex: odd length";
  let nib c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Sha256.of_hex: bad character"
  in
  Bytes.init (len / 2) (fun i -> Char.chr ((nib s.[2 * i] lsl 4) lor nib s.[(2 * i) + 1]))
