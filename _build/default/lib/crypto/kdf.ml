let block ~key ~info counter =
  let w = Util.Codec.writer () in
  Util.Codec.write_string w info;
  Util.Codec.write_varint w counter;
  Hmac.mac ~key (Util.Codec.contents w)

let expand ~key ~info len =
  if len < 0 then invalid_arg "Kdf.expand: negative length";
  let out = Buffer.create len in
  let counter = ref 0 in
  while Buffer.length out < len do
    Buffer.add_bytes out (block ~key ~info !counter);
    incr counter
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len

let derive_int ~key ~info ~bound =
  if bound <= 0 then invalid_arg "Kdf.derive_int: bound must be positive";
  (* 8 bytes gives negligible modulo bias for bounds < 2^32. *)
  let b = expand ~key ~info 8 in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  (!v land max_int) mod bound

let prf_stream ~key ~info =
  let counter = ref 0 in
  fun () ->
    let b = block ~key ~info !counter in
    incr counter;
    b
