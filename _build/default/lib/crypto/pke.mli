(** Public-key encryption abstraction.

    The MPC protocols are written against this signature so the same
    protocol code runs with:

    - {!Regev}: the real LWE-based scheme of {!Lwe} (tests, examples,
      small-scale benches), and
    - {!make_simulated}: a size-faithful simulated PKE for large-[n] sweeps,
      where per-bit lattice operations would dominate wall time without
      changing a single communicated bit.  Internally it is
      encrypt-then-MAC under a hidden "trapdoor" key held by the module
      instance (standing in for the ideal encryption oracle), padded so
      ciphertext and key sizes match {!Regev} exactly.  DESIGN.md §3
      documents this substitution. *)

module type S = sig
  val name : string

  type public_key
  type secret_key

  val keygen : Util.Prng.t -> public_key * secret_key

  (** Deterministic keygen from joint randomness (for [F_Gen]). *)
  val keygen_seeded : bytes -> public_key * secret_key

  (** [encrypt rng pk plaintext] returns an encoded ciphertext blob. *)
  val encrypt : Util.Prng.t -> public_key -> bytes -> bytes

  (** [decrypt sk blob] is [None] on malformed or mismatched input. *)
  val decrypt : secret_key -> bytes -> bytes option

  (** Encoded sizes, for building messages and for cost accounting. *)
  val public_key_bytes : public_key -> bytes
  val public_key_of_bytes : bytes -> public_key option
  val public_key_size : int
  val ciphertext_size : plaintext_len:int -> int
end

(** The real Regev scheme with {!Lwe.default_params}. *)
module Regev : S

(** [make_simulated ?lwe_params ~seed] builds a fresh simulated-PKE
    instance whose trapdoor is derived from [seed].  Distinct instances
    cannot decrypt each other's ciphertexts.  [lwe_params] selects the
    Regev parameter set whose key/ciphertext sizes are mimicked (default
    {!Lwe.default_params}); benchmarks use {!bench_lwe_params} to keep the
    constant factors tractable at thousands of parties. *)
val make_simulated : ?lwe_params:Lwe.params -> seed:int -> unit -> (module S)

(** A small but still correct Regev parameter set (dimension 16,
    64 samples), used to size benchmark runs. *)
val bench_lwe_params : Lwe.params
