module Additive = struct
  let share rng ~parties secret =
    if parties <= 0 then invalid_arg "Additive.share: parties must be positive";
    let len = Bytes.length secret in
    let randoms = List.init (parties - 1) (fun _ -> Util.Prng.bytes rng len) in
    let last = Bytes.copy secret in
    List.iter
      (fun r ->
        for i = 0 to len - 1 do
          Bytes.set last i
            (Char.chr (Char.code (Bytes.get last i) lxor Char.code (Bytes.get r i)))
        done)
      randoms;
    randoms @ [ last ]

  let reconstruct shares =
    match shares with
    | [] -> invalid_arg "Additive.reconstruct: no shares"
    | first :: rest ->
      let len = Bytes.length first in
      let out = Bytes.copy first in
      List.iter
        (fun s ->
          if Bytes.length s <> len then
            invalid_arg "Additive.reconstruct: share length mismatch";
          for i = 0 to len - 1 do
            Bytes.set out i
              (Char.chr (Char.code (Bytes.get out i) lxor Char.code (Bytes.get s i)))
          done)
        rest;
      out
end

module Shamir = struct
  module Make (F : Field.Gf.S) = struct
    module P = Field.Poly.Make (F)

    type share = { x : F.t; y : F.t }

    let share rng ~threshold ~parties secret =
      if threshold < 1 || threshold > parties then
        invalid_arg "Shamir.share: need 1 <= threshold <= parties";
      if parties >= F.p then invalid_arg "Shamir.share: too many parties for field";
      let poly = P.random rng ~degree:(threshold - 1) ~const:secret in
      List.init parties (fun i ->
          let x = F.of_int (i + 1) in
          { x; y = P.eval poly x })

    let reconstruct shares =
      P.interpolate_at_zero (List.map (fun s -> (s.x, s.y)) shares)

    let encode_share w s =
      Util.Codec.write_varint w s.x;
      Util.Codec.write_varint w s.y

    let decode_share r =
      let x = Util.Codec.read_varint r in
      let y = Util.Codec.read_varint r in
      { x; y }
  end
end

module S30 = Shamir.Make (Field.Gf.F30)

(* Bytewise packing: 3 bytes per GF(2^30-35) element. *)
let pack_elements secret =
  let len = Bytes.length secret in
  let n_elems = (len + 2) / 3 in
  Array.init n_elems (fun i ->
      let get j = if (3 * i) + j < len then Char.code (Bytes.get secret ((3 * i) + j)) else 0 in
      (get 0 lsl 16) lor (get 1 lsl 8) lor get 2)

let unpack_elements ~len elems =
  Bytes.init len (fun i ->
      let e = elems.(i / 3) in
      Char.chr ((e lsr (8 * (2 - (i mod 3)))) land 0xFF))

let share_bytes_shamir rng ~threshold ~parties secret =
  let elems = pack_elements secret in
  (* shares_per_party.(p) collects party p's y-values across all elements. *)
  let shares_per_party = Array.make parties [] in
  Array.iter
    (fun e ->
      let shares = S30.share rng ~threshold ~parties (Field.Gf.F30.of_int e) in
      List.iteri (fun p s -> shares_per_party.(p) <- s.S30.y :: shares_per_party.(p)) shares)
    elems;
  List.init parties (fun p ->
      let w = Util.Codec.writer () in
      Util.Codec.write_varint w (Bytes.length secret);
      Util.Codec.write_varint w threshold;
      List.iter (Util.Codec.write_varint w) (List.rev shares_per_party.(p));
      Util.Codec.contents w)

let reconstruct_bytes_shamir shares =
  match shares with
  | [] -> None
  | _ -> (
    try
      let parsed =
        List.map
          (fun (idx, blob) ->
            let r = Util.Codec.reader blob in
            let len = Util.Codec.read_varint r in
            let threshold = Util.Codec.read_varint r in
            let n_elems = (len + 2) / 3 in
            let ys = Array.init n_elems (fun _ -> Util.Codec.read_varint r) in
            (idx, len, threshold, ys))
          shares
      in
      match parsed with
      | [] -> None
      | (_, len, threshold, _) :: _ ->
        if List.length parsed < threshold then None
        else if List.exists (fun (_, l, t, _) -> l <> len || t <> threshold) parsed then None
        else begin
          let n_elems = (len + 2) / 3 in
          let elems =
            Array.init n_elems (fun e ->
                let pts =
                  List.map
                    (fun (idx, _, _, ys) ->
                      { S30.x = Field.Gf.F30.of_int idx; S30.y = ys.(e) })
                    parsed
                in
                S30.reconstruct pts)
          in
          Some (unpack_elements ~len elems)
        end
    with Util.Codec.Decode_error _ | Invalid_argument _ -> None)
