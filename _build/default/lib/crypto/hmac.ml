let block_size = 64

let normalize_key key =
  let key = if Bytes.length key > block_size then Sha256.digest key else key in
  let out = Bytes.make block_size '\000' in
  Bytes.blit key 0 out 0 (Bytes.length key);
  out

let xor_pad key pad =
  Bytes.init block_size (fun i ->
      Char.chr (Char.code (Bytes.get key i) lxor pad))

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.update inner (xor_pad key 0x36);
  Sha256.update inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.update outer (xor_pad key 0x5c);
  Sha256.update outer inner_digest;
  Sha256.finalize outer

let verify ~key msg tag =
  let expected = mac ~key msg in
  if Bytes.length tag <> Bytes.length expected then false
  else begin
    (* Constant-time comparison. *)
    let diff = ref 0 in
    for i = 0 to Bytes.length expected - 1 do
      diff := !diff lor (Char.code (Bytes.get expected i) lxor Char.code (Bytes.get tag i))
    done;
    !diff = 0
  end
