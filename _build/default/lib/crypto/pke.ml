module type S = sig
  val name : string

  type public_key
  type secret_key

  val keygen : Util.Prng.t -> public_key * secret_key
  val keygen_seeded : bytes -> public_key * secret_key
  val encrypt : Util.Prng.t -> public_key -> bytes -> bytes
  val decrypt : secret_key -> bytes -> bytes option
  val public_key_bytes : public_key -> bytes
  val public_key_of_bytes : bytes -> public_key option
  val public_key_size : int
  val ciphertext_size : plaintext_len:int -> int
end

module Regev : S = struct
  let name = "regev-lwe"

  type public_key = Lwe.public_key
  type secret_key = Lwe.secret_key

  let keygen rng = Lwe.keygen rng
  let keygen_seeded seed = Lwe.keygen_seeded seed
  let encrypt rng pk pt = Lwe.encrypt_bytes rng pk pt
  let decrypt sk blob = Lwe.decrypt_bytes sk blob
  let public_key_bytes pk = Util.Codec.encode Lwe.encode_public_key pk

  let public_key_of_bytes b =
    match Util.Codec.decode Lwe.decode_public_key b with
    | pk -> Some pk
    | exception Util.Codec.Decode_error _ -> None

  let public_key_size =
    (* params header + matrix + vector, under the default parameters *)
    Bytes.length
      (public_key_bytes (fst (Lwe.keygen ~params:Lwe.default_params (Util.Prng.create 0))))

  let ciphertext_size ~plaintext_len =
    Lwe.ciphertext_blob_size Lwe.default_params ~plaintext_len
end

let bench_lwe_params = { Lwe.dim = 16; samples = 64; q = 12289; err_bound = 2 }

let make_simulated ?(lwe_params = Lwe.default_params) ~seed () : (module S) =
  (module struct
    let name = "simulated-pke"

    (* The "trapdoor" stands in for the ideal encryption oracle: everything
       is symmetric AE under a key hidden inside this module instance,
       padded out to Regev sizes. *)
    let trapdoor =
      Kdf.expand
        ~key:(Bytes.of_string (Printf.sprintf "sim-pke-trapdoor-%d" seed))
        ~info:"root" 32

    type public_key = bytes (* a 32-byte key identifier *)
    type secret_key = bytes (* the same identifier *)

    let kid_size = 32

    (* Measured on a real encoded key so the simulated size matches the
       Regev wire format exactly (params header included). *)
    let model_pk_size =
      Bytes.length
        (Util.Codec.encode Lwe.encode_public_key
           (fst (Lwe.keygen ~params:lwe_params (Util.Prng.create 0))))
    let pk_pad = max 0 (model_pk_size - kid_size)

    let keygen rng =
      let kid = Util.Prng.bytes rng kid_size in
      (kid, kid)

    let keygen_seeded s =
      let kid = Kdf.expand ~key:s ~info:"sim-pke/kid" kid_size in
      (kid, kid)

    let ae_key kid = Ske.of_seed (Hmac.mac ~key:trapdoor kid)

    let ciphertext_size ~plaintext_len =
      Lwe.ciphertext_blob_size lwe_params ~plaintext_len

    let encrypt rng pk pt =
      let inner = Ske.encrypt rng (ae_key pk) pt in
      (* Pad to exactly the Regev ciphertext size for the same plaintext. *)
      let target = ciphertext_size ~plaintext_len:(Bytes.length pt) in
      let w = Util.Codec.writer () in
      Util.Codec.write_bytes w inner;
      let body = Util.Codec.contents w in
      if Bytes.length body > target then body
      else Bytes.cat body (Bytes.make (target - Bytes.length body) '\000')

    let decrypt sk blob =
      match
        let r = Util.Codec.reader blob in
        Util.Codec.read_bytes r
      with
      | inner -> Ske.decrypt (ae_key sk) inner
      | exception Util.Codec.Decode_error _ -> None

    let public_key_bytes pk = Bytes.cat pk (Bytes.make pk_pad '\000')

    let public_key_of_bytes b =
      if Bytes.length b < kid_size then None else Some (Bytes.sub b 0 kid_size)

    let public_key_size = model_pk_size
  end)
