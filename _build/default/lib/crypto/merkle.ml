(* Domain separation: leaf hashes are H(0x00 || payload), internal nodes are
   H(0x01 || left || right).  Odd nodes at a level are promoted unchanged. *)

let hash_leaf payload =
  let ctx = Sha256.init () in
  Sha256.update ctx (Bytes.make 1 '\000');
  Sha256.update ctx payload;
  Sha256.finalize ctx

let hash_node left right =
  let ctx = Sha256.init () in
  Sha256.update ctx (Bytes.make 1 '\001');
  Sha256.update ctx left;
  Sha256.update ctx right;
  Sha256.finalize ctx

type tree = { levels : bytes array array (* levels.(0) = leaf hashes *) }

type proof = { index : int; path : (bool * bytes) list (* (sibling_is_right, sibling) *) }

let build leaves =
  if leaves = [] then invalid_arg "Merkle.build: no leaves";
  let level0 = Array.of_list (List.map hash_leaf leaves) in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let parent =
        Array.init
          ((n + 1) / 2)
          (fun i ->
            let l = level.(2 * i) in
            if (2 * i) + 1 < n then hash_node l level.((2 * i) + 1) else l)
      in
      up (level :: acc) parent
    end
  in
  { levels = Array.of_list (up [] level0) }

let root t = Bytes.copy t.levels.(Array.length t.levels - 1).(0)
let num_leaves t = Array.length t.levels.(0)

let prove t i =
  if i < 0 || i >= num_leaves t then invalid_arg "Merkle.prove: bad index";
  let path = ref [] in
  let idx = ref i in
  for lvl = 0 to Array.length t.levels - 2 do
    let level = t.levels.(lvl) in
    let sibling = !idx lxor 1 in
    if sibling < Array.length level then begin
      let sibling_is_right = sibling > !idx in
      path := (sibling_is_right, Bytes.copy level.(sibling)) :: !path
    end;
    idx := !idx / 2
  done;
  { index = i; path = List.rev !path }

let verify ~root:r ~leaf proof =
  let acc = ref (hash_leaf leaf) in
  let idx = ref proof.index in
  List.iter
    (fun (sibling_is_right, sibling) ->
      acc := if sibling_is_right then hash_node !acc sibling else hash_node sibling !acc;
      idx := !idx / 2)
    proof.path;
  Bytes.equal !acc r

let proof_index p = p.index

let encode_proof w p =
  Util.Codec.write_varint w p.index;
  Util.Codec.write_list w
    (fun w (right, sib) ->
      Util.Codec.write_bool w right;
      Util.Codec.write_bytes w sib)
    p.path

let decode_proof r =
  let index = Util.Codec.read_varint r in
  let path =
    Util.Codec.read_list r (fun r ->
        let right = Util.Codec.read_bool r in
        let sib = Util.Codec.read_bytes r in
        (right, sib))
  in
  { index; path }

let proof_size_bytes p =
  Bytes.length (Util.Codec.encode encode_proof p)
