(** Hash-based commitments: [com = H(randomness ‖ message)] with 32 bytes of
    randomness.  Hiding under the random-oracle heuristic for SHA-256,
    binding under collision resistance.  Used by tests and examples that
    need parties to bind to values before revealing them. *)

type commitment = bytes
type opening

(** [commit rng msg] returns the commitment and its opening. *)
val commit : Util.Prng.t -> bytes -> commitment * opening

(** [verify com msg opening]. *)
val verify : commitment -> bytes -> opening -> bool

val commitment_size : int

val encode_opening : Util.Codec.writer -> opening -> unit
val decode_opening : Util.Codec.reader -> opening
