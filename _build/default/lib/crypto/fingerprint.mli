(** Succinct string fingerprints — the substrate of the paper's
    [Equality_λ] test (Algorithm 1 / Lemma 5).

    The paper samples one random prime [p ∈ [n^λ]] and exchanges [m mod p].
    To avoid arbitrary-precision arithmetic we instead sample [t]
    independent 29-bit primes and send the [t] residues: a single random
    29-bit prime is wrong on a fixed pair [m₁ ≠ m₂] with probability at most
    [log₂(max|m|·256) / π(2²⁹) ≲ |m|·2⁻²⁴] ... concretely, the number of
    prime divisors of [m₁ - m₂] below 2²⁹ is at most [8·|m|/29], while there
    are more than 2²⁴ such primes, so each prime fails with probability
    [< |m|/2²¹] and [t] independent primes fail with probability
    [< (|m|/2²¹)^t].  {!residues_needed} picks [t] to reach the paper's
    [n^{-λ}] target.  The communicated size is [t·(4+4)] bytes =
    [O(λ log n)] bits, exactly the paper's cost. *)

type fp = { primes : int array; residues : int array }

(** [residues_needed ~lambda ~n ~msg_len] — the number [t] of independent
    primes needed so the failure probability is at most [n^-lambda]. *)
val residues_needed : lambda:int -> n:int -> msg_len:int -> int

(** [sample_primes rng t] draws [t] random 29-bit primes. *)
val sample_primes : Util.Prng.t -> int -> int array

(** [residue msg p] is the big-endian integer value of [msg] mod [p]
    (Horner; [p < 2³¹]). *)
val residue : bytes -> int -> int

(** [make rng ~t msg] samples primes and computes the fingerprint. *)
val make : Util.Prng.t -> t:int -> bytes -> fp

(** [check fp msg] recomputes the residues of [msg] at [fp.primes] and
    compares — the receiver side of Algorithm 1. *)
val check : fp -> bytes -> bool

(** [matches fp1 fp2] — equality of two fingerprints over the same primes;
    [Invalid_argument] if the primes differ. *)
val matches : fp -> fp -> bool

val size_bytes : fp -> int

(** Serialization. *)
val encode : Util.Codec.writer -> fp -> unit
val decode : Util.Codec.reader -> fp
