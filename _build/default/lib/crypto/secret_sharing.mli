(** Secret sharing.

    Two schemes, matching the two uses in the paper:

    - {b Additive k-out-of-k} over bytes (XOR): the committee's TFHE secret
      key is "k-out-of-k secret shared among the parties" (§2.2).  All [k]
      shares are required; any [k-1] shares are uniformly random.

    - {b Shamir t-out-of-n} over GF(p): provided as the general-purpose
      threshold substrate (and to test the {!Field.Poly} machinery); the
      locality protocols can trade the k-of-k sharing for threshold sharing
      when committee dropout is a concern (a noted extension, not used by
      the paper's main protocols). *)

module Additive : sig
  (** [share rng ~parties secret] splits [secret] into [parties] XOR shares. *)
  val share : Util.Prng.t -> parties:int -> bytes -> bytes list

  (** [reconstruct shares] XORs all shares together.  Requires a non-empty
      list of equal-length shares. *)
  val reconstruct : bytes list -> bytes
end

module Shamir : sig
  module Make (F : Field.Gf.S) : sig
    type share = { x : F.t; y : F.t }

    (** [share rng ~threshold ~parties secret] — any [threshold] shares
        reconstruct; fewer reveal nothing.  Requires
        [1 <= threshold <= parties < F.p]. *)
    val share : Util.Prng.t -> threshold:int -> parties:int -> F.t -> share list

    (** [reconstruct shares] interpolates at zero.  Correct when given at
        least [threshold] valid shares with distinct x. *)
    val reconstruct : share list -> F.t

    val encode_share : Util.Codec.writer -> share -> unit
    val decode_share : Util.Codec.reader -> share
  end
end

(** [share_bytes_shamir rng ~threshold ~parties secret] — Shamir-shares an
    arbitrary byte string bytewise over GF(257)... no: over {!Field.Gf.F30}
    packing 3 bytes per element. Returns one blob per party. *)
val share_bytes_shamir :
  Util.Prng.t -> threshold:int -> parties:int -> bytes -> bytes list

(** [reconstruct_bytes_shamir shares] — inverse of {!share_bytes_shamir};
    [None] on malformed input. Each element of [shares] is [(party_index,
    blob)] with 1-based party indices as produced by sharing. *)
val reconstruct_bytes_shamir : (int * bytes) list -> bytes option
