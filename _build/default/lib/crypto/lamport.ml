(* 256 message bits, two 32-byte secrets per bit. *)
let bits = 256
let secret_size = 32

type secret_key = bytes array array (* [bit].[value] -> 32-byte preimage *)
type public_key = bytes array array (* [bit].[value] -> 32-byte hash *)
type signature = bytes array (* [bit] -> revealed preimage *)

let keygen ~seed =
  let sk =
    Array.init bits (fun i ->
        Array.init 2 (fun v ->
            Kdf.expand ~key:seed ~info:(Printf.sprintf "lamport/%d/%d" i v) secret_size))
  in
  let pk = Array.map (Array.map Sha256.digest) sk in
  (sk, pk)

let message_bits msg =
  let d = Sha256.digest msg in
  Array.init bits (fun i ->
      (Char.code (Bytes.get d (i / 8)) lsr (7 - (i mod 8))) land 1)

let sign sk msg =
  let mb = message_bits msg in
  Array.init bits (fun i -> sk.(i).(mb.(i)))

let verify pk msg signature =
  Array.length signature = bits
  &&
  let mb = message_bits msg in
  let ok = ref true in
  Array.iteri
    (fun i preimage ->
      if not (Bytes.equal (Sha256.digest preimage) pk.(i).(mb.(i))) then ok := false)
    signature;
  !ok

let public_key_size = bits * 2 * 32
let signature_size = bits * 32

let encode_public_key w pk =
  Array.iter (fun pair -> Array.iter (fun h -> Util.Codec.write_raw w h) pair) pk

let decode_public_key r =
  Array.init bits (fun _ -> Array.init 2 (fun _ -> Util.Codec.read_raw r 32))

let encode_signature w s = Array.iter (fun b -> Util.Codec.write_raw w b) s
let decode_signature r = Array.init bits (fun _ -> Util.Codec.read_raw r secret_size)
