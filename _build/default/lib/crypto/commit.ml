type commitment = bytes
type opening = bytes (* the 32-byte randomness *)

let randomness_size = 32
let commitment_size = 32

let hash randomness msg =
  let ctx = Sha256.init () in
  Sha256.update ctx randomness;
  Sha256.update ctx msg;
  Sha256.finalize ctx

let commit rng msg =
  let randomness = Util.Prng.bytes rng randomness_size in
  (hash randomness msg, randomness)

let verify com msg opening =
  Bytes.length opening = randomness_size && Bytes.equal (hash opening msg) com

let encode_opening w o = Util.Codec.write_raw w o
let decode_opening r = Util.Codec.read_raw r randomness_size
