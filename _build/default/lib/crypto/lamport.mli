(** Lamport one-time signatures over SHA-256.

    The secret key is derived deterministically from a 32-byte seed (so the
    "encrypted functionality" of Algorithm 4 can generate it from shared
    randomness); the public key is the per-position hashes.  Messages are
    hashed to 256 bits and each bit reveals one preimage.

    Security rests only on one-wayness of SHA-256, matching the paper's use
    of a generic EUF-CMA digital signature scheme in §4.3. *)

type secret_key
type public_key
type signature

(** [keygen ~seed] derives a key pair deterministically from [seed]. *)
val keygen : seed:bytes -> secret_key * public_key

(** [sign sk msg] signs an arbitrary-length message (hashed internally).
    One-time: signing two different messages with the same key leaks it. *)
val sign : secret_key -> bytes -> signature

(** [verify pk msg signature]. *)
val verify : public_key -> bytes -> signature -> bool

(** Sizes in bytes, for communication accounting. *)
val public_key_size : int
val signature_size : int

(** Serialization. *)
val encode_public_key : Util.Codec.writer -> public_key -> unit
val decode_public_key : Util.Codec.reader -> public_key
val encode_signature : Util.Codec.writer -> signature -> unit
val decode_signature : Util.Codec.reader -> signature
