type public_key = bytes

type secret_key = {
  seed : bytes;
  total : int;
  mutable next : int;
  tree : Merkle.tree;
  lamport_pks : bytes list; (* encoded one-time pks, the tree leaves *)
}

type signature = {
  leaf_index : int;
  ots_pk : Lamport.public_key;
  ots_sig : Lamport.signature;
  proof : Merkle.proof;
}

exception Out_of_signatures

let leaf_seed seed i = Kdf.expand ~key:seed ~info:(Printf.sprintf "merkle-sig/leaf/%d" i) 32

let encoded_lamport_pk pk = Util.Codec.encode Lamport.encode_public_key pk

let keygen ~seed ~height =
  if height < 0 || height > 20 then invalid_arg "Merkle_sig.keygen: bad height";
  let total = 1 lsl height in
  let lamport_pks =
    List.init total (fun i ->
        let _, pk = Lamport.keygen ~seed:(leaf_seed seed i) in
        encoded_lamport_pk pk)
  in
  let tree = Merkle.build lamport_pks in
  ({ seed; total; next = 0; tree; lamport_pks }, Merkle.root tree)

let signatures_remaining sk = sk.total - sk.next

let sign sk msg =
  if sk.next >= sk.total then raise Out_of_signatures;
  let i = sk.next in
  sk.next <- i + 1;
  let ots_sk, ots_pk = Lamport.keygen ~seed:(leaf_seed sk.seed i) in
  let ots_sig = Lamport.sign ots_sk msg in
  { leaf_index = i; ots_pk; ots_sig; proof = Merkle.prove sk.tree i }

let verify root msg s =
  Merkle.proof_index s.proof = s.leaf_index
  && Merkle.verify ~root ~leaf:(encoded_lamport_pk s.ots_pk) s.proof
  && Lamport.verify s.ots_pk msg s.ots_sig

let public_key_size = 32

let public_key_bytes pk = Bytes.copy pk
let public_key_of_bytes b = if Bytes.length b = 32 then Some (Bytes.copy b) else None

let encode_public_key w pk = Util.Codec.write_bytes w pk
let decode_public_key r = Util.Codec.read_bytes r

let encode_signature w s =
  Util.Codec.write_varint w s.leaf_index;
  Lamport.encode_public_key w s.ots_pk;
  Lamport.encode_signature w s.ots_sig;
  Merkle.encode_proof w s.proof

let decode_signature r =
  let leaf_index = Util.Codec.read_varint r in
  let ots_pk = Lamport.decode_public_key r in
  let ots_sig = Lamport.decode_signature r in
  let proof = Merkle.decode_proof r in
  { leaf_index; ots_pk; ots_sig; proof }

let signature_size s = Bytes.length (Util.Codec.encode encode_signature s)
