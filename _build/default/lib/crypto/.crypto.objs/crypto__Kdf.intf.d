lib/crypto/kdf.mli:
