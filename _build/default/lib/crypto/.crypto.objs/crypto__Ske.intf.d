lib/crypto/ske.mli: Util
