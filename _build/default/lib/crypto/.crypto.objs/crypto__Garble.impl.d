lib/crypto/garble.ml: Array Bytes Char Circuit Hashtbl List Obj Sha256 Util
