lib/crypto/ot.mli: Util
