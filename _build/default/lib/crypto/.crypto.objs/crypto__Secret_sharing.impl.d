lib/crypto/secret_sharing.ml: Array Bytes Char Field List Util
