lib/crypto/merkle_sig.ml: Bytes Kdf Lamport List Merkle Printf Util
