lib/crypto/lamport.ml: Array Bytes Char Kdf Printf Sha256 Util
