lib/crypto/merkle.mli: Util
