lib/crypto/commit.ml: Bytes Sha256 Util
