lib/crypto/ske.ml: Buffer Bytes Char Hmac Kdf Util
