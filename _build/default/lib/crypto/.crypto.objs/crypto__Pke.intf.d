lib/crypto/pke.mli: Lwe Util
