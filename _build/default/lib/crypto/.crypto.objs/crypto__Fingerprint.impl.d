lib/crypto/fingerprint.ml: Array Bytes Char Field Util
