lib/crypto/hmac.mli:
