lib/crypto/ot.ml: Lwe Util
