lib/crypto/sha256.ml: Array Bytes Char Int64 String
