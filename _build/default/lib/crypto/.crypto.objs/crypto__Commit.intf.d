lib/crypto/commit.mli: Util
