lib/crypto/pke.ml: Bytes Hmac Kdf Lwe Printf Ske Util
