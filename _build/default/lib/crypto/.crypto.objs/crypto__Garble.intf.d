lib/crypto/garble.mli: Circuit Util
