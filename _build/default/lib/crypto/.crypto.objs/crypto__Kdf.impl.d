lib/crypto/kdf.ml: Buffer Bytes Char Hmac Util
