lib/crypto/lamport.mli: Util
