lib/crypto/lwe.mli: Util
