lib/crypto/merkle_sig.mli: Util
