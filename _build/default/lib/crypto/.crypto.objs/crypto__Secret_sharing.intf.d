lib/crypto/secret_sharing.mli: Field Util
