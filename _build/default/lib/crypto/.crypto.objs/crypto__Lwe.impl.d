lib/crypto/lwe.ml: Array Bytes Char Field Kdf Util
