lib/crypto/fingerprint.mli: Util
