(** Key derivation (HKDF-expand style, RFC 5869) over HMAC-SHA256.

    [expand ~key ~info len] produces [len] pseudorandom bytes bound to the
    context string [info].  Used to derive independent subkeys (encryption
    key, MAC key, per-party keys) from one master secret. *)

val expand : key:bytes -> info:string -> int -> bytes

(** [derive_int ~key ~info ~bound] derives a pseudorandom int in
    [\[0, bound)]. Requires [bound > 0]. *)
val derive_int : key:bytes -> info:string -> bound:int -> int

(** [prf_stream ~key ~info] is an infinite deterministic byte stream reader:
    each call returns the next block of 32 bytes. *)
val prf_stream : key:bytes -> info:string -> unit -> bytes
