(** SHA-256 (FIPS 180-4), implemented from scratch.

    This is the hash underlying every other primitive in the library:
    HMAC, the KDF, commitments, Merkle trees, Lamport signatures, and the
    counter-mode stream cipher.  Verified against the FIPS test vectors in
    the test suite. *)

(** A 32-byte digest. *)
type digest = bytes

val digest_size : int

(** [digest b] hashes a byte string. *)
val digest : bytes -> digest

(** [digest_string s] hashes a string. *)
val digest_string : string -> digest

(** Incremental interface. *)
type ctx

val init : unit -> ctx
val update : ctx -> bytes -> unit
val update_string : ctx -> string -> unit

(** [finalize ctx] pads, produces the digest, and invalidates [ctx]. *)
val finalize : ctx -> digest

(** [to_hex d] renders a digest (or any bytes) in lowercase hex. *)
val to_hex : bytes -> string

(** [of_hex s] parses hex; raises [Invalid_argument] on bad input. *)
val of_hex : string -> bytes
