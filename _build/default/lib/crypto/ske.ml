type key = bytes (* 32 bytes *)

let key_size = 32
let nonce_size = 16
let tag_size = 32

let keygen rng = Util.Prng.bytes rng key_size
let of_seed seed = Kdf.expand ~key:seed ~info:"ske/key" key_size

let subkey key purpose = Kdf.expand ~key ~info:("ske/" ^ purpose) key_size

let keystream key nonce len =
  let enc_key = subkey key "enc" in
  let out = Buffer.create len in
  let counter = ref 0 in
  while Buffer.length out < len do
    let w = Util.Codec.writer () in
    Util.Codec.write_bytes w nonce;
    Util.Codec.write_varint w !counter;
    Buffer.add_bytes out (Hmac.mac ~key:enc_key (Util.Codec.contents w));
    incr counter
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len

let xor_into dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let encrypt rng key pt =
  let nonce = Util.Prng.bytes rng nonce_size in
  let body = Bytes.copy pt in
  xor_into body (keystream key nonce (Bytes.length pt));
  let mac_input = Bytes.cat nonce body in
  let tag = Hmac.mac ~key:(subkey key "mac") mac_input in
  Bytes.concat Bytes.empty [ nonce; body; tag ]

let decrypt key ct =
  let len = Bytes.length ct in
  if len < nonce_size + tag_size then None
  else begin
    let nonce = Bytes.sub ct 0 nonce_size in
    let body = Bytes.sub ct nonce_size (len - nonce_size - tag_size) in
    let tag = Bytes.sub ct (len - tag_size) tag_size in
    let mac_input = Bytes.cat nonce body in
    if not (Hmac.verify ~key:(subkey key "mac") mac_input tag) then None
    else begin
      xor_into body (keystream key nonce (Bytes.length body));
      Some body
    end
  end

let ciphertext_size ~plaintext_len = nonce_size + plaintext_len + tag_size

let encode_key w k = Util.Codec.write_raw w k
let decode_key r = Util.Codec.read_raw r key_size
let key_bytes k = Bytes.copy k
