(** Many-time hash-based signatures: a Merkle tree over [2^height] Lamport
    one-time keys.

    This instantiates the digital signature scheme [DS = (Gen_sig, Sign,
    Vrfy)] used by the multi-output protocol (Algorithm 4, §4.3): the
    committee's encrypted functionality generates the key from joint
    randomness and signs each party's encrypted output; forging a signature
    on a tampered output requires inverting SHA-256.

    Keys are deterministic from a seed; signing is stateful (each signature
    consumes one leaf) and raises once all [2^height] slots are used. *)

type secret_key
type public_key (* the Merkle root *)
type signature

exception Out_of_signatures

(** [keygen ~seed ~height] — [2^height] one-time slots.  [height] up to 12
    is practical. *)
val keygen : seed:bytes -> height:int -> secret_key * public_key

(** [sign sk msg] uses (and consumes) the next one-time key. *)
val sign : secret_key -> bytes -> signature

(** [signatures_remaining sk]. *)
val signatures_remaining : secret_key -> int

val verify : public_key -> bytes -> signature -> bool

(** Size in bytes of an encoded signature, for cost accounting. *)
val signature_size : signature -> int

val public_key_size : int

(** Raw (32-byte root) conversions, for sending keys over the network. *)
val public_key_bytes : public_key -> bytes
val public_key_of_bytes : bytes -> public_key option

(** Serialization. *)
val encode_public_key : Util.Codec.writer -> public_key -> unit
val decode_public_key : Util.Codec.reader -> public_key
val encode_signature : Util.Codec.writer -> signature -> unit
val decode_signature : Util.Codec.reader -> signature
