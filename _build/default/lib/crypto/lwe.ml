type params = { dim : int; samples : int; q : int; err_bound : int }

(* q = 12289 is prime; correctness needs samples * err_bound < q / 4,
   here 256 * 2 = 512 < 3072. *)
let default_params = { dim = 48; samples = 256; q = 12289; err_bound = 2 }

type public_key = {
  p : params;
  a : int array array; (* samples x dim *)
  b : int array;       (* samples *)
}

type secret_key = { sp : params; s : int array }
type ciphertext = { u : int array; v : int }

let check_params p =
  if p.dim <= 0 || p.samples <= 0 then invalid_arg "Lwe: bad dimensions";
  if p.q >= 1 lsl 16 then invalid_arg "Lwe: q must fit 16 bits";
  if not (Field.Primality.is_prime p.q) then invalid_arg "Lwe: q not prime";
  if p.samples * p.err_bound >= p.q / 4 then invalid_arg "Lwe: decryption not correct"

let sample_error rng p = Util.Prng.int_in rng (-p.err_bound) p.err_bound

let keygen ?(params = default_params) rng =
  check_params params;
  let p = params in
  let s = Array.init p.dim (fun _ -> Util.Prng.int rng p.q) in
  let a = Array.init p.samples (fun _ -> Array.init p.dim (fun _ -> Util.Prng.int rng p.q)) in
  let b =
    Array.map
      (fun row ->
        let dot = ref 0 in
        Array.iteri (fun j aj -> dot := (!dot + (aj * s.(j))) mod p.q) row;
        (((!dot + sample_error rng p) mod p.q) + p.q) mod p.q)
      a
  in
  ({ p; a; b }, { sp = p; s })

let keygen_seeded ?(params = default_params) seed =
  (* Derive a PRNG seed from the joint randomness; the simulation treats the
     KDF output as ideal randomness (documented in DESIGN.md §3). *)
  let d = Kdf.expand ~key:seed ~info:"lwe/keygen" 8 in
  let s = ref 0 in
  Bytes.iter (fun c -> s := (!s lsl 8) lor Char.code c) d;
  keygen ~params (Util.Prng.create (!s land max_int))

let encrypt_bit rng pk bit =
  let p = pk.p in
  (* Random subset of the rows. *)
  let x = Array.init p.samples (fun _ -> Util.Prng.bool rng) in
  let u = Array.make p.dim 0 in
  let v = ref 0 in
  Array.iteri
    (fun i included ->
      if included then begin
        let row = pk.a.(i) in
        for j = 0 to p.dim - 1 do
          u.(j) <- (u.(j) + row.(j)) mod p.q
        done;
        v := (!v + pk.b.(i)) mod p.q
      end)
    x;
  let v = if bit then (!v + (p.q / 2)) mod p.q else !v in
  { u; v }

let decrypt_bit sk ct =
  let p = sk.sp in
  let dot = ref 0 in
  Array.iteri (fun j uj -> dot := (!dot + (uj * sk.s.(j))) mod p.q) ct.u;
  let diff = ((ct.v - !dot) mod p.q + p.q) mod p.q in
  (* Distance to 0 vs distance to q/2. *)
  let dist0 = min diff (p.q - diff) in
  let half = p.q / 2 in
  let dist_half = abs (diff - half) in
  dist_half < dist0

let add_ct pk c1 c2 =
  let p = pk.p in
  {
    u = Array.init p.dim (fun j -> (c1.u.(j) + c2.u.(j)) mod p.q);
    v = (c1.v + c2.v) mod p.q;
  }

(* Fixed-width 2-byte little-endian coordinates: q < 2^16. *)
let write_coord w v =
  Util.Codec.write_byte w (v land 0xFF);
  Util.Codec.write_byte w ((v lsr 8) land 0xFF)

let read_coord r =
  let lo = Util.Codec.read_byte r in
  let hi = Util.Codec.read_byte r in
  lo lor (hi lsl 8)

let encode_ciphertext w ct =
  Array.iter (write_coord w) ct.u;
  write_coord w ct.v

let decode_ciphertext r ~dim =
  let u = Array.init dim (fun _ -> read_coord r) in
  let v = read_coord r in
  { u; v }

let encrypt_bytes rng pk pt =
  let w = Util.Codec.writer () in
  Util.Codec.write_varint w (Bytes.length pt);
  Bytes.iter
    (fun c ->
      let byte = Char.code c in
      for bit = 7 downto 0 do
        encode_ciphertext w (encrypt_bit rng pk ((byte lsr bit) land 1 = 1))
      done)
    pt;
  Util.Codec.contents w

let decrypt_bytes sk blob =
  match
    Util.Codec.decode
      (fun r ->
        let len = Util.Codec.read_varint r in
        Bytes.init len (fun _ ->
            let byte = ref 0 in
            for _bit = 0 to 7 do
              let ct = decode_ciphertext r ~dim:sk.sp.dim in
              byte := (!byte lsl 1) lor (if decrypt_bit sk ct then 1 else 0)
            done;
            Char.chr !byte))
      blob
  with
  | pt -> Some pt
  | exception Util.Codec.Decode_error _ -> None
  | exception Invalid_argument _ -> None

let public_key_size p = 2 * p.samples * (p.dim + 1)

let ciphertext_blob_size p ~plaintext_len =
  Util.Codec.varint_size plaintext_len + (8 * plaintext_len * 2 * (p.dim + 1))

let params_of_pk pk = pk.p

let encode_params w p =
  Util.Codec.write_varint w p.dim;
  Util.Codec.write_varint w p.samples;
  Util.Codec.write_varint w p.q;
  Util.Codec.write_varint w p.err_bound

let decode_params r =
  let dim = Util.Codec.read_varint r in
  let samples = Util.Codec.read_varint r in
  let q = Util.Codec.read_varint r in
  let err_bound = Util.Codec.read_varint r in
  { dim; samples; q; err_bound }

let encode_public_key w pk =
  encode_params w pk.p;
  Array.iter (fun row -> Array.iter (write_coord w) row) pk.a;
  Array.iter (write_coord w) pk.b

let decode_public_key r =
  let p = decode_params r in
  let a = Array.init p.samples (fun _ -> Array.init p.dim (fun _ -> read_coord r)) in
  let b = Array.init p.samples (fun _ -> read_coord r) in
  { p; a; b }

let encode_secret_key w sk =
  encode_params w sk.sp;
  Array.iter (write_coord w) sk.s

let decode_secret_key r =
  let sp = decode_params r in
  let s = Array.init sp.dim (fun _ -> read_coord r) in
  { sp; s }
