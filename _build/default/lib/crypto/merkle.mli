(** Merkle trees over SHA-256 with inclusion proofs.

    Used by {!Merkle_sig} to turn Lamport one-time keys into a many-time
    signature scheme, and available to protocols that need to commit to a
    vector of values with short openings. *)

type tree

(** An inclusion proof: the leaf index plus the authentication path. *)
type proof

(** [build leaves] constructs a tree over the given leaf payloads.  Leaves
    are domain-separated from internal nodes so no second-preimage confusion
    is possible.  Requires at least one leaf. *)
val build : bytes list -> tree

(** [root t] is the 32-byte root digest. *)
val root : tree -> bytes

(** [num_leaves t]. *)
val num_leaves : tree -> int

(** [prove t i] is an inclusion proof for leaf [i]. *)
val prove : tree -> int -> proof

(** [verify ~root ~leaf proof] checks the proof for the leaf payload. *)
val verify : root:bytes -> leaf:bytes -> proof -> bool

(** [proof_index p] is the leaf index the proof speaks for. *)
val proof_index : proof -> int

(** [proof_size_bytes p] — size of the encoded proof, for cost accounting. *)
val proof_size_bytes : proof -> int

(** Serialization, for sending proofs over the simulated network. *)
val encode_proof : Util.Codec.writer -> proof -> unit
val decode_proof : Util.Codec.reader -> proof
