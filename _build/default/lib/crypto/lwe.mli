(** Regev public-key encryption from Learning with Errors (Regev '05).

    The paper's protocols assume LWE-based encryption for the parties'
    inputs; this module implements the actual scheme (not a mock): keys are
    [(A, b = A·s + e)] over [Z_q], each plaintext bit is encrypted as a
    random subset-sum of the rows plus [bit·⌊q/2⌋].

    Parameters are simulation-scale (q = 12289, dimension 48, 256 samples,
    errors in [\[-2, 2\]]), giving perfect correctness (m·B < q/4) and a
    meaningful — though of course not production-hardened — LWE instance.
    Ciphertext and key sizes are what the communication accounting measures.

    The scheme is additively homomorphic modulo 2: adding ciphertexts
    coordinate-wise yields an encryption of the XOR, with error growth
    bounded by the number of summands (exposed as {!add_ct} and used in
    tests to exercise the homomorphic code path of the encrypted
    functionality). *)

type params = {
  dim : int;      (** secret dimension d *)
  samples : int;  (** public-key rows m *)
  q : int;        (** prime modulus *)
  err_bound : int (** errors uniform in [-err_bound, err_bound] *)
}

val default_params : params

type public_key
type secret_key
type ciphertext (* encryption of a single bit *)

(** [keygen ?params rng]. *)
val keygen : ?params:params -> Util.Prng.t -> public_key * secret_key

(** [keygen_seeded ?params seed] — deterministic keygen from a seed, used by
    the encrypted functionality to derive the key from the parties' joint
    randomness [⊕ rᵢ]. *)
val keygen_seeded : ?params:params -> bytes -> public_key * secret_key

(** [encrypt_bit rng pk b]. *)
val encrypt_bit : Util.Prng.t -> public_key -> bool -> ciphertext

(** [decrypt_bit sk ct]. *)
val decrypt_bit : secret_key -> ciphertext -> bool

(** [add_ct pk c1 c2] is a ciphertext of [b1 xor b2] (error grows). *)
val add_ct : public_key -> ciphertext -> ciphertext -> ciphertext

(** [encrypt_bytes rng pk pt] encrypts a byte string bitwise, returning the
    encoded ciphertext blob. *)
val encrypt_bytes : Util.Prng.t -> public_key -> bytes -> bytes

(** [decrypt_bytes sk blob] — [None] if the blob is malformed. *)
val decrypt_bytes : secret_key -> bytes -> bytes option

(** Sizes in bytes, for communication accounting. *)
val public_key_size : params -> int
val ciphertext_blob_size : params -> plaintext_len:int -> int

(** [params_of_pk pk]. *)
val params_of_pk : public_key -> params

(** Serialization. *)
val encode_public_key : Util.Codec.writer -> public_key -> unit
val decode_public_key : Util.Codec.reader -> public_key
val encode_secret_key : Util.Codec.writer -> secret_key -> unit
val decode_secret_key : Util.Codec.reader -> secret_key
