(** HMAC-SHA256 (RFC 2104), built on {!Sha256}.

    Used for authenticated encryption in {!Ske} and for deriving
    pseudorandom values in {!Kdf}. *)

(** [mac ~key msg] is the 32-byte HMAC tag. *)
val mac : key:bytes -> bytes -> bytes

(** [verify ~key msg tag] checks a tag in constant time. *)
val verify : key:bytes -> bytes -> bytes -> bool
