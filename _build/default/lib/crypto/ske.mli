(** Symmetric authenticated encryption: SHA-256 in counter mode for the
    keystream, HMAC-SHA256 over nonce‖ciphertext for integrity
    (encrypt-then-MAC).

    Instantiates the secret-key scheme [SKE = (Gen', Enc', Dec')] of the
    multi-output protocol (§4.3): each party samples [kᵢ], the committee's
    functionality encrypts party [i]'s output under [kᵢ], and only party [i]
    can read it. *)

type key

(** [keygen rng] samples a fresh 32-byte key. *)
val keygen : Util.Prng.t -> key

(** [of_seed seed] derives a key deterministically. *)
val of_seed : bytes -> key

(** [encrypt rng key pt] — random 16-byte nonce, keystream XOR, 32-byte tag. *)
val encrypt : Util.Prng.t -> key -> bytes -> bytes

(** [decrypt key ct] is [None] when authentication fails. *)
val decrypt : key -> bytes -> bytes option

(** [ciphertext_size ~plaintext_len] = nonce + plaintext + tag. *)
val ciphertext_size : plaintext_len:int -> int

val key_size : int

(** Serialization (a key is sent encrypted under the committee's PKE). *)
val encode_key : Util.Codec.writer -> key -> unit
val decode_key : Util.Codec.reader -> key
val key_bytes : key -> bytes
