(** Polynomials over a prime field, as needed by Shamir secret sharing:
    random polynomials with a fixed constant term, evaluation, and Lagrange
    interpolation at zero. *)

module Make (F : Gf.S) : sig
  (** Coefficients in increasing degree order; invariant: no trailing zeros
      (the zero polynomial is the empty array). *)
  type t

  val zero : t
  val of_coeffs : F.t array -> t
  val coeffs : t -> F.t array

  (** [degree p] is [-1] for the zero polynomial. *)
  val degree : t -> int

  val eval : t -> F.t -> F.t
  val add : t -> t -> t
  val mul : t -> t -> t
  val scale : F.t -> t -> t

  (** [random rng ~degree ~const] samples a uniformly random polynomial of
      degree at most [degree] whose constant coefficient is [const] — the
      Shamir dealer's polynomial. *)
  val random : Util.Prng.t -> degree:int -> const:F.t -> t

  (** [interpolate pts] returns the unique polynomial of degree
      [< length pts] through the given (distinct-x) points. *)
  val interpolate : (F.t * F.t) list -> t

  (** [interpolate_at_zero pts] evaluates the interpolating polynomial at 0
      without materializing it (Lagrange) — Shamir reconstruction. *)
  val interpolate_at_zero : (F.t * F.t) list -> F.t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
