(** Primality testing and random prime sampling.

    The succinct equality test (Lemma 5 of the paper) needs uniformly random
    primes; we use a Miller–Rabin test that is deterministic for all inputs
    below 3,215,031,751 with witness set {2, 3, 5, 7}, which covers every
    modulus this library ever samples (all < 2³¹). *)

(** [is_prime n] decides primality for [0 <= n < 2^31]. *)
val is_prime : int -> bool

(** [random_prime rng ~lo ~hi] samples a uniformly random prime in
    [\[lo, hi\]] by rejection.  Raises [Invalid_argument] when the interval
    contains no prime or [hi >= 2^31]. *)
val random_prime : Util.Prng.t -> lo:int -> hi:int -> int

(** [random_prime_bits rng ~bits] samples a prime with exactly [bits] bits
    (i.e. in [\[2^(bits-1), 2^bits)]). Requires [2 <= bits <= 30]. *)
val random_prime_bits : Util.Prng.t -> bits:int -> int

(** [next_prime n] is the smallest prime [>= n]. *)
val next_prime : int -> int
