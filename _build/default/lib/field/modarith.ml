let add_mod a b m =
  let s = a + b in
  if s >= m then s - m else s

let sub_mod a b m =
  let d = a - b in
  if d < 0 then d + m else d

let mul_mod a b m = a * b mod m

let pow_mod b e m =
  if e < 0 then invalid_arg "Modarith.pow_mod: negative exponent";
  let rec go b e acc =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul_mod acc b m else acc in
      go (mul_mod b b m) (e lsr 1) acc
  in
  go (b mod m) e 1

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let egcd a b =
  let rec go r0 r1 x0 x1 y0 y1 =
    if r1 = 0 then (r0, x0, y0)
    else
      let q = r0 / r1 in
      go r1 (r0 - (q * r1)) x1 (x0 - (q * x1)) y1 (y0 - (q * y1))
  in
  go a b 1 0 0 1

let inv_mod a m =
  let a = ((a mod m) + m) mod m in
  let g, x, _ = egcd a m in
  if g <> 1 then invalid_arg "Modarith.inv_mod: not invertible";
  ((x mod m) + m) mod m
