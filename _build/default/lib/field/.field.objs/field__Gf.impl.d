lib/field/gf.ml: Format Int Modarith Primality Util
