lib/field/primality.mli: Util
