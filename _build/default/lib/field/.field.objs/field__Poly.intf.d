lib/field/poly.mli: Format Gf Util
