lib/field/modarith.ml:
