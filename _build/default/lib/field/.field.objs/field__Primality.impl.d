lib/field/primality.ml: List Modarith Util
