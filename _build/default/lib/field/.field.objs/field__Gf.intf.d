lib/field/gf.mli: Format Util
