lib/field/modarith.mli:
