lib/field/poly.ml: Array Format Gf List
