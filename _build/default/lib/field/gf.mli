(** Prime fields GF(p) for p < 2³¹.

    Used by Shamir secret sharing ({!Crypto.Secret_sharing}) and by the Regev
    encryption scheme ({!Crypto.Lwe}).  Elements are canonical ints in
    [\[0, p)]. *)

module type S = sig
  (** The prime modulus. *)
  val p : int

  type t = int

  val zero : t
  val one : t

  (** [of_int v] reduces [v] (possibly negative) into [\[0, p)]. *)
  val of_int : int -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  (** [inv a] — raises [Invalid_argument] on [zero]. *)
  val inv : t -> t

  (** [div a b] is [mul a (inv b)]. *)
  val div : t -> t -> t

  val pow : t -> int -> t

  (** [random rng] is a uniform field element. *)
  val random : Util.Prng.t -> t

  (** [random_nonzero rng] is uniform over [\[1, p)]. *)
  val random_nonzero : Util.Prng.t -> t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** [make p] builds the field.  Raises [Invalid_argument] if [p] is not a
    prime below 2³¹. *)
val make : int -> (module S)

(** A convenient default field with p = 2³⁰ − 35 (the largest 30-bit prime),
    used where any big prime field will do. *)
module F30 : S
