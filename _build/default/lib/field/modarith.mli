(** Modular arithmetic on moduli below 2³¹.

    All protocol-level number theory (fingerprints, Shamir shares, Regev
    ciphertext coordinates) uses moduli under 2³¹ so that every intermediate
    product fits in OCaml's native 63-bit integers — no bignum dependency.
    See DESIGN.md §3 for why 30-bit primes suffice for Lemma 5. *)

(** [add_mod a b m] is [(a + b) mod m] for [0 <= a, b < m < 2^31]. *)
val add_mod : int -> int -> int -> int

(** [sub_mod a b m] is [(a - b) mod m], always in [\[0, m)]. *)
val sub_mod : int -> int -> int -> int

(** [mul_mod a b m] is [(a * b) mod m]. Requires [m < 2^31] so the product
    fits in 62 bits. *)
val mul_mod : int -> int -> int -> int

(** [pow_mod b e m] is [b^e mod m] by square-and-multiply. Requires [e >= 0]. *)
val pow_mod : int -> int -> int -> int

(** [inv_mod a m] is the inverse of [a] modulo [m] via the extended Euclidean
    algorithm. Raises [Invalid_argument] if [gcd a m <> 1]. *)
val inv_mod : int -> int -> int

(** [gcd a b] for non-negative ints. *)
val gcd : int -> int -> int

(** [egcd a b] returns [(g, x, y)] with [a*x + b*y = g = gcd a b]. *)
val egcd : int -> int -> int * int * int
