module Make (F : Gf.S) = struct
  type t = F.t array

  let normalize arr =
    let n = Array.length arr in
    let rec last i = if i >= 0 && F.equal arr.(i) F.zero then last (i - 1) else i in
    let d = last (n - 1) in
    if d = n - 1 then arr else Array.sub arr 0 (d + 1)

  let zero = [||]
  let of_coeffs arr = normalize (Array.copy arr)
  let coeffs p = Array.copy p
  let degree p = Array.length p - 1

  let eval p x =
    (* Horner's rule. *)
    let acc = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      acc := F.add (F.mul !acc x) p.(i)
    done;
    !acc

  let add a b =
    let n = max (Array.length a) (Array.length b) in
    let get arr i = if i < Array.length arr then arr.(i) else F.zero in
    normalize (Array.init n (fun i -> F.add (get a i) (get b i)))

  let mul a b =
    if Array.length a = 0 || Array.length b = 0 then zero
    else begin
      let out = Array.make (Array.length a + Array.length b - 1) F.zero in
      Array.iteri
        (fun i ai ->
          Array.iteri (fun j bj -> out.(i + j) <- F.add out.(i + j) (F.mul ai bj)) b)
        a;
      normalize out
    end

  let scale c p = normalize (Array.map (F.mul c) p)

  let random rng ~degree ~const =
    if degree < 0 then invalid_arg "Poly.random: negative degree";
    normalize
      (Array.init (degree + 1) (fun i -> if i = 0 then const else F.random rng))

  let check_distinct pts =
    let xs = List.map fst pts in
    let sorted = List.sort compare xs in
    let rec dup = function
      | a :: b :: _ when F.equal a b -> true
      | _ :: rest -> dup rest
      | [] -> false
    in
    if dup sorted then invalid_arg "Poly.interpolate: duplicate x coordinates"

  let interpolate pts =
    check_distinct pts;
    (* Sum of y_i * prod_{j<>i} (X - x_j)/(x_i - x_j). *)
    List.fold_left
      (fun acc (xi, yi) ->
        let num, den =
          List.fold_left
            (fun (num, den) (xj, _) ->
              if F.equal xi xj then (num, den)
              else (mul num (of_coeffs [| F.neg xj; F.one |]), F.mul den (F.sub xi xj)))
            (of_coeffs [| F.one |], F.one)
            pts
        in
        add acc (scale (F.mul yi (F.inv den)) num))
      zero pts

  let interpolate_at_zero pts =
    check_distinct pts;
    List.fold_left
      (fun acc (xi, yi) ->
        let weight =
          List.fold_left
            (fun w (xj, _) ->
              if F.equal xi xj then w
              else F.mul w (F.div xj (F.sub xj xi)))
            F.one pts
        in
        F.add acc (F.mul yi weight))
      F.zero pts

  let equal a b =
    Array.length a = Array.length b && Array.for_all2 F.equal a b

  let pp fmt p =
    if Array.length p = 0 then Format.fprintf fmt "0"
    else
      Array.iteri
        (fun i c ->
          if i > 0 then Format.fprintf fmt " + ";
          Format.fprintf fmt "%a*X^%d" F.pp c i)
        p
end
