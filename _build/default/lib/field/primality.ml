let small_primes = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

(* Deterministic Miller-Rabin for n < 3,215,031,751 with bases {2,3,5,7}
   (Jaeschke 1993).  All moduli in this library are < 2^31, well inside. *)
let miller_rabin_witness n d r a =
  let x = Modarith.pow_mod a d n in
  if x = 1 || x = n - 1 then false
  else
    let rec squares i x =
      if i >= r - 1 then true
      else
        let x = Modarith.mul_mod x x n in
        if x = n - 1 then false else squares (i + 1) x
    in
    squares 0 x

let is_prime n =
  if n < 2 then false
  else if List.mem n small_primes then true
  else if List.exists (fun p -> n mod p = 0) small_primes then false
  else begin
    (* Write n-1 = d * 2^r with d odd. *)
    let rec split d r = if d land 1 = 0 then split (d lsr 1) (r + 1) else (d, r) in
    let d, r = split (n - 1) 0 in
    not (List.exists (fun a -> miller_rabin_witness n d r a) [ 2; 3; 5; 7 ])
  end

let random_prime rng ~lo ~hi =
  if hi >= 1 lsl 31 then invalid_arg "Primality.random_prime: hi >= 2^31";
  if lo > hi then invalid_arg "Primality.random_prime: lo > hi";
  (* Expected O(log hi) rejection rounds by the prime number theorem; bail
     out after a generous budget in case the interval has no primes. *)
  let budget = 64 * (64 - (if hi > 0 then 0 else 1)) * 8 in
  let rec go tries =
    if tries > budget then begin
      (* Exhaustive fallback for adversarially small intervals. *)
      let rec scan n = if n > hi then None else if is_prime n then Some n else scan (n + 1) in
      match scan lo with
      | Some _ ->
        (* Primes exist; keep rejecting (the budget was just unlucky). *)
        let candidate = Util.Prng.int_in rng lo hi in
        if is_prime candidate then candidate else go tries
      | None -> invalid_arg "Primality.random_prime: no prime in interval"
    end
    else
      let candidate = Util.Prng.int_in rng lo hi in
      if is_prime candidate then candidate else go (tries + 1)
  in
  go 0

let random_prime_bits rng ~bits =
  if bits < 2 || bits > 30 then invalid_arg "Primality.random_prime_bits";
  random_prime rng ~lo:(1 lsl (bits - 1)) ~hi:((1 lsl bits) - 1)

let next_prime n =
  let rec go n = if is_prime n then n else go (n + 1) in
  go (max n 2)
