module type S = sig
  val p : int

  type t = int

  val zero : t
  val one : t
  val of_int : int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val inv : t -> t
  val div : t -> t -> t
  val pow : t -> int -> t
  val random : Util.Prng.t -> t
  val random_nonzero : Util.Prng.t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (P : sig
  val p : int
end) : S = struct
  let p = P.p

  type t = int

  let zero = 0
  let one = 1 mod p
  let of_int v = ((v mod p) + p) mod p
  let add a b = Modarith.add_mod a b p
  let sub a b = Modarith.sub_mod a b p
  let neg a = if a = 0 then 0 else p - a
  let mul a b = Modarith.mul_mod a b p

  let inv a =
    if a = 0 then invalid_arg "Gf.inv: zero";
    Modarith.inv_mod a p

  let div a b = mul a (inv b)
  let pow a e = Modarith.pow_mod a e p
  let random rng = Util.Prng.int rng p
  let random_nonzero rng = 1 + Util.Prng.int rng (p - 1)
  let equal = Int.equal
  let pp fmt a = Format.fprintf fmt "%d" a
end

let make p =
  if p >= 1 lsl 31 then invalid_arg "Gf.make: p >= 2^31";
  if not (Primality.is_prime p) then invalid_arg "Gf.make: p not prime";
  (module Make (struct
    let p = p
  end) : S)

module F30 = Make (struct
  let p = (1 lsl 30) - 35
end)
